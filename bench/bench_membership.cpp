// Experiment E11 — membership-change cost and the sponsor-policy ablation.
//
// Cost of the connection protocol as the group grows (the joining member
// must be validated by every current member and receive the full agreed
// state), of evictions and voluntary departures, and a comparison of the
// rotating-sponsor policy (§4.5.1) against the fixed-initial-sponsor
// variant of footnote 2. Expected shape: messages per connect grow
// linearly (request + propose/respond/decide fan-out + welcome); the two
// sponsor policies cost the same per change — rotation buys resilience
// (no fixed coordinator), not speed.
#include <cinttypes>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::WallClock;
using test::TestRegister;

namespace {

struct GrowingWorld {
  std::vector<std::string> names;
  core::Federation fed;
  std::vector<std::unique_ptr<TestRegister>> objects;
  ObjectId object{"membership-bench"};

  GrowingWorld(std::size_t capacity, core::SponsorPolicy policy)
      : names(bench::RegisterFederation::make_names(capacity)),
        fed(names,
            [&] {
              core::Federation::Options o;
              o.sponsor_policy = policy;
              return o;
            }()) {
    for (std::size_t i = 0; i < capacity; ++i) {
      objects.push_back(std::make_unique<TestRegister>());
      fed.register_object(names[i], object, *objects[i]);
    }
    // Start with two genesis members; the rest join via the protocol.
    fed.bootstrap_object(object, {names[0], names[1]}, bytes_of("genesis"));
  }

  std::uint64_t total_messages() {
    std::uint64_t total = 0;
    for (const auto& name : names) {
      total += fed.coordinator(name).protocol_stats().envelopes_sent;
    }
    return total;
  }

  void reset_stats() {
    for (const auto& name : names) {
      fed.coordinator(name).reset_protocol_stats();
    }
  }
};

}  // namespace

int main() {
  constexpr std::size_t kCapacity = 17;

  bench::print_header(
      "E11a: connection protocol cost as the group grows (rotating sponsor)",
      "  join # | group before | msgs | wall ms");
  {
    GrowingWorld world(kCapacity, core::SponsorPolicy::kRotating);
    for (std::size_t joiner = 2; joiner < kCapacity; ++joiner) {
      world.reset_stats();
      WallClock wall;
      core::RunHandle h = world.fed.coordinator(world.names[joiner])
                              .propagate_connect(world.object,
                                                 PartyId{world.names[0]});
      world.fed.run_until_done(h);
      world.fed.settle();
      if (h->outcome != core::RunResult::Outcome::kAgreed) {
        std::printf("  join %zu FAILED: %s\n", joiner, h->diagnostic.c_str());
        return 1;
      }
      if (joiner % 2 == 0 || joiner == kCapacity - 1) {
        std::printf("  %6zu | %12zu | %4" PRIu64 " | %7.2f\n", joiner - 1,
                    joiner, world.total_messages(),
                    wall.elapsed_us() / 1000.0);
      }
    }
  }

  bench::print_header(
      "E11b: sponsor-policy ablation — total cost of 10 joins + 5 churn "
      "cycles",
      "  policy        | msgs  | wall ms | runs agreed");
  for (auto [policy, label] :
       {std::pair{core::SponsorPolicy::kRotating, "rotating (§4.5.1)"},
        std::pair{core::SponsorPolicy::kFixedInitial,
                  "fixed (footnote 2)"}}) {
    GrowingWorld world(12, policy);
    WallClock wall;
    int agreed = 0;
    // Ten joins.
    for (std::size_t joiner = 2; joiner < 12; ++joiner) {
      core::RunHandle h = world.fed.coordinator(world.names[joiner])
                              .propagate_connect(world.object,
                                                 PartyId{world.names[0]});
      world.fed.run_until_done(h);
      world.fed.settle();
      if (h->outcome == core::RunResult::Outcome::kAgreed) ++agreed;
    }
    // Five churn cycles: a middle member leaves and rejoins.
    for (int cycle = 0; cycle < 5; ++cycle) {
      core::RunHandle leave = world.fed.coordinator(world.names[5])
                                  .propagate_disconnect(world.object);
      world.fed.run_until_done(leave);
      world.fed.settle();
      if (leave->outcome == core::RunResult::Outcome::kAgreed) ++agreed;
      core::RunHandle rejoin = world.fed.coordinator(world.names[5])
                                   .propagate_connect(world.object,
                                                      PartyId{world.names[0]});
      world.fed.run_until_done(rejoin);
      world.fed.settle();
      if (rejoin->outcome == core::RunResult::Outcome::kAgreed) ++agreed;
    }
    std::printf("  %-13s | %5" PRIu64 " | %7.2f | %d/20\n", label,
                world.total_messages(), wall.elapsed_us() / 1000.0, agreed);
  }

  bench::print_header(
      "E11c: disconnection variants at group size 8",
      "  variant               | msgs | wall ms | agreed");
  for (int variant = 0; variant < 3; ++variant) {
    GrowingWorld world(9, core::SponsorPolicy::kRotating);
    for (std::size_t joiner = 2; joiner < 9; ++joiner) {
      core::RunHandle h = world.fed.coordinator(world.names[joiner])
                              .propagate_connect(world.object,
                                                 PartyId{world.names[0]});
      world.fed.run_until_done(h);
      world.fed.settle();
    }
    world.reset_stats();
    WallClock wall;
    core::RunHandle h;
    const char* label;
    switch (variant) {
      case 0:
        label = "voluntary departure  ";
        h = world.fed.coordinator(world.names[3])
                .propagate_disconnect(world.object);
        break;
      case 1:
        label = "eviction (by sponsor)";
        h = world.fed.coordinator(world.names[8])
                .propagate_eviction(world.object, {PartyId{world.names[3]}});
        break;
      default:
        label = "subset eviction (x3) ";
        h = world.fed.coordinator(world.names[8])
                .propagate_eviction(world.object,
                                    {PartyId{world.names[2]},
                                     PartyId{world.names[3]},
                                     PartyId{world.names[4]}});
        break;
    }
    world.fed.run_until_done(h);
    world.fed.settle();
    std::printf("  %s | %4" PRIu64 " | %7.2f | %s\n", label,
                world.total_messages(), wall.elapsed_us() / 1000.0,
                h->outcome == core::RunResult::Outcome::kAgreed ? "yes"
                                                                : "NO");
  }
  return 0;
}
