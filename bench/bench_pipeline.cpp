// Experiment E24 — killing the RSA floor with run pipelining (DESIGN.md
// §13).
//
// E9/E12 established that a coordination run's cost is an RSA floor:
// with cheap validation, virtually all CPU goes into the fixed per-run
// signature work (one signed propose, one signed response per recipient,
// TSS stamps), not into the state being moved. Run pipelining attacks
// exactly that floor: a batch of K state changes rides ONE run — one
// hash-chained signed propose, one signed response per recipient, one
// decide revealing K authenticators — so the signature work is paid once
// per batch instead of once per change.
//
// Harness: 3 organisations on the deterministic simulator (inline
// delivery: wall time = protocol CPU), RSA-512 (the test
// configuration), cheap (accept-everything) validation, journaling off —
// the workload is the RSA floor and nothing else. A fixed budget of
// overwrites is moved either as sequential runs (K=1, pipelining off)
// or as batches of K. The table reports items/s and the speedup over
// the unpipelined baseline; the acceptance bar is ≥5× at K=16.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::WallClock;

namespace {

constexpr std::size_t kParties = 3;
constexpr std::size_t kItems = 64;  // state changes moved per config

struct Row {
  std::size_t batch = 1;
  double wall_ms = 0;
  double items_per_s = 0;
  std::uint64_t messages = 0;
};

Row run_config(std::size_t batch) {
  core::Federation::Options options;
  // The deterministic simulator delivers inline on one thread, so wall
  // time here IS protocol CPU — overwhelmingly the RSA floor this
  // experiment prices. (The threaded runtime adds ~2.5 ms/run of thread
  // handoff that buries the crypto; E18/E20 price transports.)
  options.runtime = core::RuntimeKind::kSim;
  options.seed = 24;
  options.pipeline = batch > 1;
  bench::RegisterFederation f(kParties, options);
  f.agree_once(bytes_of("warm"));  // exclude bootstrap/warm-up from timing
  // reset_stats() needs the sim network; on the threaded runtime count
  // protocol messages by delta instead.
  const std::uint64_t messages_before = f.total_protocol_messages();

  WallClock clock;
  std::size_t next = 0;
  while (next < kItems) {
    core::RunHandle h;
    if (batch == 1) {
      f.objects[0]->value = bytes_of("v" + std::to_string(next++));
      h = f.fed.coordinator(f.names[0])
              .propagate_new_state(f.object, f.objects[0]->get_state());
    } else {
      std::vector<core::Replica::BatchOp> ops;
      for (std::size_t i = 0; i < batch && next < kItems; ++i) {
        Bytes value = bytes_of("v" + std::to_string(next++));
        ops.push_back({false, value, value});
      }
      h = f.fed.coordinator(f.names[0]).propagate_batch(f.object,
                                                        std::move(ops));
    }
    f.fed.run_until_done(h);
    // Drain the decide to every responder before the next propose; on
    // the sim this is inline CPU like everything else.
    f.fed.settle();
    if (h->outcome != core::RunResult::Outcome::kAgreed) {
      std::fprintf(stderr, "E24: run failed: %s\n", h->diagnostic.c_str());
      std::exit(1);
    }
  }

  Row row;
  row.batch = batch;
  row.wall_ms = clock.elapsed_us() / 1000.0;
  row.items_per_s = kItems / (clock.elapsed_us() / 1e6);
  row.messages = f.total_protocol_messages() - messages_before;
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "E24: run pipelining vs sequential runs — " +
          std::to_string(kItems) + " overwrites, 3 parties, sim "
          "runtime (inline CPU), RSA-512, cheap validation",
      "  batch K    wall ms     items/s    msgs   msgs/item   speedup");
  double baseline = 0;
  for (std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, std::size_t{16}}) {
    Row row = run_config(batch);
    if (batch == 1) baseline = row.items_per_s;
    std::printf("  %7zu  %9.1f  %10.1f  %6llu  %9.2f  %7.2fx\n", row.batch,
                row.wall_ms, row.items_per_s,
                static_cast<unsigned long long>(row.messages),
                static_cast<double>(row.messages) / kItems,
                row.items_per_s / baseline);
  }
  std::printf(
      "\nThe fixed per-run signature work (propose sign, per-recipient\n"
      "response signs, TSS stamps, verifies) is paid once per batch, so\n"
      "throughput scales with K until the per-item work (hashing, state\n"
      "application, decide size) becomes the new floor.\n");
  return 0;
}
