// Experiment E6 — message complexity and latency vs. group size.
//
// Reproduces the paper's §7 claim that the state coordination protocol is
// "efficient in terms of the number of messages required (O(N) for N
// parties)". Expected shape: protocol messages per run are exactly
// 3(N-1); bytes grow linearly with a slope dominated by the aggregated
// decide message; virtual-time latency is ~3 one-way delays regardless of
// N (the phases are parallel across recipients).
#include <cinttypes>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::RegisterFederation;
using bench::WallClock;

int main() {
  bench::print_header(
      "E6: state coordination cost vs. group size N (one overwrite of 256 B)",
      "     N |  msgs | 3(N-1) |  proto KB | datagrams |  virt ms | wall ms");

  for (std::size_t n : {2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    RegisterFederation world(n);
    // Warm-up round so every endpoint has exchanged channel state.
    world.agree_once(Bytes(256, 0x01));
    world.reset_stats();

    net::SimTime start_virtual = world.fed.scheduler().now();
    WallClock wall;
    core::RunHandle h = world.agree_once(Bytes(256, 0x02));
    double wall_ms = wall.elapsed_us() / 1000.0;
    if (h->outcome != core::RunResult::Outcome::kAgreed) {
      std::printf("  N=%zu FAILED: %s\n", n, h->diagnostic.c_str());
      return 1;
    }
    double virtual_ms =
        static_cast<double>(world.fed.scheduler().now() - start_virtual) /
        1000.0;

    std::printf("  %4zu | %5" PRIu64 " | %6zu | %9.2f | %9" PRIu64
                " | %8.2f | %7.2f\n",
                n, world.total_protocol_messages(), 3 * (n - 1),
                static_cast<double>(world.total_protocol_bytes()) / 1024.0,
                world.fed.network().stats().datagrams_sent, virtual_ms,
                wall_ms);
  }

  bench::print_header(
      "E6b: per-phase message counts at N=8 (propose / respond / decide)",
      "  phase    | msgs");
  {
    RegisterFederation world(8);
    world.agree_once(Bytes(256, 0x01));
    world.reset_stats();
    world.agree_once(Bytes(256, 0x02));
    std::map<core::MsgType, std::uint64_t> by_type;
    for (const auto& name : world.names) {
      for (const auto& [type, count] :
           world.fed.coordinator(name).protocol_stats().sent_by_type) {
        by_type[type] += count;
      }
    }
    std::printf("  propose  | %4" PRIu64 "\n",
                by_type[core::MsgType::kPropose]);
    std::printf("  respond  | %4" PRIu64 "\n",
                by_type[core::MsgType::kRespond]);
    std::printf("  decide   | %4" PRIu64 "\n", by_type[core::MsgType::kDecide]);
  }
  return 0;
}
