// Experiment E19 — what per-object sharding buys (§4.1 coordinator,
// this repo's shard/router split).
//
// K independent objects are driven concurrently on the threaded runtime
// (3 organisations, one state run per object per round, all proposed at
// once). Two coordinator configurations run the identical workload:
//
//   coarse  — LockMode::kCoarse, no dispatch lanes: every replica at a
//             party shares one mutex and inbound dispatch runs inline on
//             the transport's delivery thread, so independent objects
//             serialise (the pre-shard coordinator's behaviour).
//   sharded — LockMode::kPerObject with per-shard dispatch lanes: each
//             object owns its mutex and its lane thread, so runs on
//             distinct objects overlap end to end.
//
// Table 1 models the paper's B2B deployment: each responder's validate
// upcall sleeps 10 ms (an organisation's local policy check hits its own
// back-office systems — §3's "local validation"). That is where sharding
// pays: with one lock the sleeps on distinct objects queue behind each
// other; with lanes they overlap, so the round takes ~one sleep instead
// of ~K of them.
//
// Table 2 is the honest null result: the same workload with no sleep is
// RSA-bound, and this container has a single CPU core, so overlapping
// pure-CPU work buys nothing (speedup ~1x). On a multi-core host the
// signing work itself would also spread across lanes.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::WallClock;

namespace {

constexpr std::size_t kMaxObjects = 8;
constexpr int kRounds = 10;
constexpr int kValidateSleepMicros = 10'000;

core::Federation::Options make_options(bool sharded) {
  core::Federation::Options options;
  options.runtime = core::RuntimeKind::kThreaded;
  options.seed = 19;
  options.lock_mode = sharded ? core::Coordinator::LockMode::kPerObject
                              : core::Coordinator::LockMode::kCoarse;
  options.shard_lanes = sharded;
  return options;
}

/// Mean wall time (ms) of one round of K concurrent runs, one per object.
double run_config(bool sharded, std::size_t num_objects, bool sleepy) {
  const std::vector<std::string> names = {"org0", "org1", "org2"};
  // Registers outlive the federation: runtime threads stop first.
  test::TestRegister regs[3][kMaxObjects];
  core::Federation fed(names, make_options(sharded));

  std::vector<ObjectId> objects;
  for (std::size_t k = 0; k < num_objects; ++k) {
    objects.push_back(ObjectId{"obj" + std::to_string(k)});
    for (std::size_t p = 0; p < names.size(); ++p) {
      if (sleepy && p != 0) {
        // Responder-side local policy check against the organisation's
        // own back-office systems.
        regs[p][k].policy = [](BytesView, const core::ValidationContext&) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(kValidateSleepMicros));
          return core::Decision::accepted();
        };
      }
      fed.register_object(names[p], objects[k], regs[p][k]);
    }
    fed.bootstrap_object(objects[k], names, bytes_of("genesis"));
  }

  auto drive_round = [&](int round) {
    std::vector<core::RunHandle> handles;
    for (std::size_t k = 0; k < num_objects; ++k) {
      regs[0][k].value =
          bytes_of("r" + std::to_string(round) + "-o" + std::to_string(k));
      handles.push_back(fed.coordinator("org0").propagate_new_state(
          objects[k], regs[0][k].get_state()));
    }
    for (const core::RunHandle& h : handles) {
      if (!fed.run_until_done(h) ||
          h->outcome != core::RunResult::Outcome::kAgreed) {
        std::fprintf(stderr, "E19: run failed: %s\n", h->diagnostic.c_str());
        std::exit(1);
      }
    }
  };

  drive_round(-1);  // warm-up: connections + first-run costs off the clock
  WallClock wall;
  for (int round = 0; round < kRounds; ++round) drive_round(round);
  const double total_ms = wall.elapsed_us() / 1'000.0;
  fed.settle();
  return total_ms / kRounds;
}

void run_table(bool sleepy) {
  std::printf("  K | coarse ms/round | sharded ms/round | speedup\n");
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    const double coarse = run_config(/*sharded=*/false, k, sleepy);
    const double sharded = run_config(/*sharded=*/true, k, sleepy);
    std::printf("  %zu | %15.2f | %16.2f | %6.2fx\n", k, coarse, sharded,
                coarse / sharded);
  }
}

}  // namespace

int main() {
  std::printf(
      "E19 — per-object sharding: K independent objects, threaded runtime, "
      "3 orgs, %d rounds\n\n", kRounds);
  std::printf("Table 1: responder validate sleeps %d us (org-local policy "
              "check)\n", kValidateSleepMicros);
  run_table(/*sleepy=*/true);
  std::printf("\nTable 2: no validation sleep (RSA-bound; single-core "
              "container)\n");
  run_table(/*sleepy=*/false);
  return 0;
}
