// Experiment E9 — the price of dependability: B2BObjects vs. plain 2PC.
//
// Both stacks run the identical workload (agreed overwrites of varying
// size across N parties) over the same simulated network. The baseline
// strips signatures, tuples, authenticators, evidence logging and
// time-stamping. Expected shape: message *counts* identical (3(N-1));
// B2BObjects pays a constant CPU factor per run dominated by RSA
// signatures (2 per responder + 1 for the proposer + TSS stamps) and a
// per-message byte overhead dominated by signatures and tuples.
#include <cinttypes>

#include "baseline/plain2pc.hpp"
#include "bench/support/bench_util.hpp"
#include "net/reliable.hpp"
#include "net/scheduler.hpp"
#include "net/sim_runtime.hpp"

using namespace b2b;
using bench::RegisterFederation;
using bench::WallClock;

namespace {

struct PlainWorld {
  net::EventScheduler scheduler;
  net::SimNetwork net{scheduler, 77};
  std::vector<std::unique_ptr<net::ReliableEndpoint>> endpoints;
  std::vector<std::unique_ptr<net::SimTransport>> transports;
  std::vector<std::unique_ptr<b2b::test::TestRegister>> objects;
  std::vector<std::unique_ptr<baseline::PlainReplica>> replicas;

  explicit PlainWorld(std::size_t n) {
    std::vector<PartyId> members;
    for (std::size_t i = 0; i < n; ++i) {
      members.emplace_back("org" + std::to_string(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      endpoints.push_back(
          std::make_unique<net::ReliableEndpoint>(net, members[i]));
      transports.push_back(
          std::make_unique<net::SimTransport>(*endpoints.back()));
      objects.push_back(std::make_unique<b2b::test::TestRegister>());
      replicas.push_back(std::make_unique<baseline::PlainReplica>(
          members[i], ObjectId{"bench-object"}, *objects.back(),
          *transports.back()));
    }
    for (auto& replica : replicas) {
      replica->bootstrap(members, bytes_of("genesis"));
    }
  }

  void agree_once(Bytes state) {
    objects[0]->value = std::move(state);
    core::RunHandle h = replicas[0]->propose_state(objects[0]->get_state());
    scheduler.run();
    if (h->outcome != core::RunResult::Outcome::kAgreed) {
      std::fprintf(stderr, "baseline run failed\n");
      std::exit(1);
    }
  }

  std::uint64_t protocol_bytes() {
    std::uint64_t total = 0;
    for (auto& r : replicas) total += r->bytes_sent();
    return total;
  }
};

}  // namespace

int main() {
  constexpr int kRounds = 20;
  bench::print_header(
      "E9: dependability overhead — B2BObjects vs plain 2PC "
      "(20 agreed overwrites, N=4)",
      "  state B |  b2b wall ms | 2pc wall ms | cpu factor | b2b KB | 2pc KB "
      "| byte factor");

  for (std::size_t state_bytes : {64u, 1024u, 16384u}) {
    // --- B2BObjects ---
    RegisterFederation b2b_world(4);
    b2b_world.agree_once(Bytes(state_bytes, 0x01));  // warm-up
    b2b_world.reset_stats();
    WallClock b2b_wall;
    for (int round = 0; round < kRounds; ++round) {
      b2b_world.agree_once(Bytes(state_bytes, static_cast<uint8_t>(round + 2)));
    }
    double b2b_ms = b2b_wall.elapsed_us() / 1000.0;
    double b2b_kb =
        static_cast<double>(b2b_world.total_protocol_bytes()) / 1024.0;

    // --- plain 2PC ---
    PlainWorld plain_world(4);
    plain_world.agree_once(Bytes(state_bytes, 0x01));  // warm-up
    std::uint64_t bytes_before = plain_world.protocol_bytes();
    WallClock plain_wall;
    for (int round = 0; round < kRounds; ++round) {
      plain_world.agree_once(
          Bytes(state_bytes, static_cast<uint8_t>(round + 2)));
    }
    double plain_ms = plain_wall.elapsed_us() / 1000.0;
    double plain_kb =
        static_cast<double>(plain_world.protocol_bytes() - bytes_before) /
        1024.0;

    std::printf("  %7zu | %12.2f | %11.2f | %10.1fx | %6.1f | %6.1f | %10.2fx\n",
                state_bytes, b2b_ms, plain_ms,
                plain_ms > 0 ? b2b_ms / plain_ms : 0.0, b2b_kb, plain_kb,
                plain_kb > 0 ? b2b_kb / plain_kb : 0.0);
  }

  std::printf(
      "\nNote: the CPU factor is the cost of RSA signing/verification,\n"
      "evidence logging and TSS stamping; the byte factor is signatures +\n"
      "identifier tuples on the wire. Message counts are identical (3(N-1)\n"
      "per run) by construction — see E6 and the baseline tests.\n");
  return 0;
}
