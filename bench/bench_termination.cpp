// Experiment E13 — the §7 termination extensions, quantified.
//
// (a) TTP-certified abort: how long after its deadline does a blocked
//     party terminate, and does everyone get the same verdict?
// (b) Decision-rule ablation: availability of a group containing one
//     permanently vetoing member, under unanimity vs majority.
// (c) Overhead: do the deadline timers cost anything when runs complete
//     normally?
#include <cinttypes>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::RegisterFederation;
using bench::WallClock;
using test::TestRegister;

int main() {
  bench::print_header(
      "E13a: TTP-certified abort latency vs deadline (proposer blocked by a "
      "silent member, N=3)",
      "  deadline ms | virt ms to abort | verdicts | consistent");
  for (std::uint64_t deadline_ms : {100u, 500u, 2000u, 10000u}) {
    RegisterFederation world(3);
    world.fed.enable_ttp_termination(world.object, deadline_ms * 1000);
    // Silence org2 by detaching its coordinator from the endpoint.
    world.fed.endpoint("org2").set_handler([](const PartyId&, const Bytes&) {});
    net::SimTime start = world.fed.scheduler().now();
    world.objects[0]->value = Bytes(64, 0x42);
    core::RunHandle h = world.fed.coordinator("org0").propagate_new_state(
        world.object, world.objects[0]->get_state());
    world.fed.settle();
    double virt_ms =
        static_cast<double>(world.fed.scheduler().now() - start) / 1000.0;
    bool consistent =
        h->done() &&
        world.fed.coordinator("org0").replica(world.object).active_run_labels().empty() &&
        world.fed.coordinator("org1").replica(world.object).active_run_labels().empty();
    std::printf("  %11" PRIu64 " | %16.2f | %8" PRIu64 " | %s\n", deadline_ms,
                virt_ms, world.fed.termination_ttp().aborts_issued(),
                consistent ? "yes" : "NO");
  }

  bench::print_header(
      "E13b: decision-rule ablation — 20 proposals with one permanent "
      "dissenter (N=4)",
      "  rule      | agreed | vetoed | dissents recorded");
  for (auto [rule, label] :
       {std::pair{core::DecisionRule::kUnanimous, "unanimous"},
        std::pair{core::DecisionRule::kMajority, "majority "}}) {
    core::Federation::Options options;
    options.decision_rule = rule;
    RegisterFederation world(4, options);
    world.objects[3]->policy = [](BytesView,
                                  const core::ValidationContext&) {
      return core::Decision::rejected("org3 dissents on principle");
    };
    int agreed = 0, vetoed = 0, dissents = 0;
    for (int round = 0; round < 20; ++round) {
      core::RunHandle h = world.agree_once(
          Bytes(64, static_cast<uint8_t>(round + 1)));
      if (h->outcome == core::RunResult::Outcome::kAgreed) {
        ++agreed;
        dissents += static_cast<int>(h->vetoers.size());
      } else {
        ++vetoed;
      }
    }
    std::printf("  %s | %6d | %6d | %17d\n", label, agreed, vetoed, dissents);
  }

  bench::print_header(
      "E13c: deadline-timer overhead on the happy path (100 agreed runs, "
      "N=3)",
      "  configuration  | wall ms | ttp verdicts");
  for (bool with_ttp : {false, true}) {
    RegisterFederation world(3);
    if (with_ttp) world.fed.enable_ttp_termination(world.object, 60'000'000);
    WallClock wall;
    for (int round = 0; round < 100; ++round) {
      core::RunHandle h = world.agree_once(
          Bytes(64, static_cast<uint8_t>((round % 200) + 1)));
      if (h->outcome != core::RunResult::Outcome::kAgreed) return 1;
    }
    std::uint64_t verdicts =
        with_ttp ? world.fed.termination_ttp().aborts_issued() +
                       world.fed.termination_ttp().decisions_issued()
                 : 0;
    std::printf("  %s | %7.2f | %12" PRIu64 "\n",
                with_ttp ? "ttp enabled   " : "base protocol ",
                wall.elapsed_us() / 1000.0, verdicts);
  }
  return 0;
}
