// Experiment E16 — the price of durability and the speed of recovery.
//
// Table 1: steady-state overhead of the write-ahead journal. The same
// workload (20 agreed overwrites, N=3) runs with journaling off, with
// the journal on but barriers buffered (fsync off), and with full fsync
// barriers. The gap between the last two is the physical price of
// crash-atomicity; the gap between the first two is the bookkeeping
// (framing, CRC, extra serialisation).
//
// Table 2: time-to-recover as a function of how much was in flight at
// the crash. org2 is held down so runs across k objects park at org1
// (responder runs open, awaiting a decide that cannot form under the
// unanimous rule); org1 is then crashed and the stopwatch covers its
// full restart: journal replay (Coordinator construction), object
// re-registration, and resume_recovered_runs().
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::RegisterFederation;
using bench::WallClock;

namespace {

namespace fs = std::filesystem;

std::string fresh_root(const std::string& tag) {
  fs::path root = fs::temp_directory_path() / ("b2b_bench_recovery_" + tag);
  fs::remove_all(root);
  return root.string();
}

double overwrite_workload_ms(const core::Federation::Options& options) {
  constexpr int kRounds = 20;
  RegisterFederation world(3, options);
  world.agree_once(Bytes(1024, 0x01));  // warm-up
  WallClock wall;
  for (int round = 0; round < kRounds; ++round) {
    core::RunHandle h =
        world.agree_once(Bytes(1024, static_cast<uint8_t>(round + 2)));
    if (h->outcome != core::RunResult::Outcome::kAgreed) {
      std::fprintf(stderr, "bench run failed: %s\n", h->diagnostic.c_str());
      std::exit(1);
    }
  }
  return wall.elapsed_us() / 1000.0;
}

}  // namespace

int main() {
  bench::print_header(
      "E16a: write-ahead journal overhead "
      "(20 agreed 1 KiB overwrites, N=3)",
      "  journal | fsync |  wall ms | vs off");

  core::Federation::Options off;
  double off_ms = overwrite_workload_ms(off);
  std::printf("      off |     - | %8.2f | %5.2fx\n", off_ms, 1.0);

  for (bool fsync : {false, true}) {
    core::Federation::Options on;
    on.journal_root = fresh_root(fsync ? "fsync" : "nofsync");
    on.journal_fsync = fsync;
    double on_ms = overwrite_workload_ms(on);
    std::printf("       on |   %s | %8.2f | %5.2fx\n", fsync ? " on" : "off",
                on_ms, off_ms > 0 ? on_ms / off_ms : 0.0);
    fs::remove_all(on.journal_root);
  }

  bench::print_header(
      "E16b: time-to-recover vs. in-flight runs "
      "(org1 crashes with k responder runs parked)",
      "  in-flight | journal records |  replay+resume ms");

  for (std::size_t k : {1u, 4u, 16u, 64u}) {
    core::Federation::Options options;
    options.journal_root = fresh_root("inflight_" + std::to_string(k));
    options.seed = 42;

    std::vector<std::string> names = {"org0", "org1", "org2"};
    std::vector<std::unique_ptr<test::TestRegister>> objects;
    core::Federation fed(names, options);
    std::vector<ObjectId> ids;
    for (std::size_t i = 0; i < k; ++i) {
      ids.emplace_back("obj" + std::to_string(i));
      for (const auto& name : names) {
        objects.push_back(std::make_unique<test::TestRegister>());
        fed.register_object(name, ids.back(), *objects.back());
      }
      fed.bootstrap_object(ids.back(), names, bytes_of("genesis"));
    }

    // Park k runs: org2 is down, so unanimous agreement cannot complete;
    // org1 responds to every propose and its responder runs stay open.
    fed.crash_party("org2");
    std::size_t proposer_index = 0;
    for (const ObjectId& id : ids) {
      test::TestRegister& obj = *objects[proposer_index];
      proposer_index += names.size();
      obj.value = bytes_of("inflight-" + id.str());
      fed.coordinator("org0").propagate_new_state(id, obj.get_state());
    }
    fed.scheduler().run_until(fed.scheduler().now() + 200'000);

    fed.crash_party("org1");

    WallClock wall;
    core::Coordinator& revived = fed.recover_party("org1");
    for (std::size_t i = 0; i < k; ++i) {
      // org1's register for object i sits at index i*3 + 1.
      fed.register_object("org1", ids[i], *objects[i * names.size() + 1]);
    }
    revived.resume_recovered_runs();
    double recover_ms = wall.elapsed_us() / 1000.0;

    std::printf("  %9zu | %15zu | %17.2f\n", k,
                revived.journal()->records().size(), recover_ms);
    fs::remove_all(options.journal_root);
  }

  std::printf(
      "\nNote: E16a isolates the durability tax on the happy path; the\n"
      "fsync row is the honest configuration (a barrier before every\n"
      "send). E16b's stopwatch covers journal replay, re-registration\n"
      "and the re-send of every parked run's response.\n");
  return 0;
}
