// Experiment E20 — what the event loop buys (and that it changes nothing).
//
// Table a: C10K-style fan-in. N sender parties push a burst of payloads
// each into one hub party — thousands of concurrent exchanges in flight —
// once over ReactorTransport (every party on ONE epoll loop plus a small
// executor pool) and once over TcpTransport (per-party acceptor, reader
// and retransmit threads). The columns that matter: the process thread
// count, which stays flat for the reactor as N grows and scales linearly
// for the thread-per-party stack, and the loop-level counters
// (epoll_wakeups / timers_fired / executor_queue_peak) that only the
// reactor reports.
//
// Table b: equivalence. The identical scripted sequence of agreed
// overwrites (same seed, same payloads, N=3) on RuntimeKind::kTcp and
// RuntimeKind::kReactor must install byte-identical agreed tuples
// (SN, H(r), H(state)) on every party. The reactor is a transport/runtime
// swap below the coordinator; any digest divergence is a bug, so the
// harness exits non-zero on mismatch.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/support/bench_util.hpp"
#include "common/bytes.hpp"
#include "net/reactor_runtime.hpp"
#include "net/tcp_runtime.hpp"
#include "net/wire_auth.hpp"

using namespace b2b;
using bench::WallClock;

namespace {

/// Live thread count of this process (field "Threads:" of
/// /proc/self/status).
int thread_count() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return -1;
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof line, f)) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}

struct FanInResult {
  double wall_ms = 0;
  int threads = 0;
  net::Transport::Stats hub_stats;
  bool ok = false;
};

/// N senders, `burst` payloads each, all into one hub; returns once the
/// hub delivered everything and every sender drained its ack window.
template <typename MakeParty>
FanInResult fan_in(int n_senders, int burst, MakeParty&& make) {
  auto hub = make("hub");
  std::vector<decltype(make(""))> senders;
  senders.reserve(static_cast<std::size_t>(n_senders));
  for (int i = 0; i < n_senders; ++i) {
    senders.push_back(make("s" + std::to_string(i)));
  }

  std::atomic<std::uint64_t> delivered{0};
  hub->set_handler([&](const PartyId&, const Bytes&) {
    delivered.fetch_add(1, std::memory_order_release);
  });

  const auto want =
      static_cast<std::uint64_t>(n_senders) * static_cast<std::uint64_t>(burst);
  const Bytes payload(64, 0x5a);
  FanInResult out;
  WallClock wall;
  for (auto& sender : senders) {
    for (int i = 0; i < burst; ++i) sender->send(PartyId{"hub"}, payload);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(120);
  auto drained = [&] {
    if (delivered.load(std::memory_order_acquire) < want) return false;
    for (auto& sender : senders) {
      if (sender->unacked() != 0) return false;
    }
    return true;
  };
  while (!drained()) {
    if (std::chrono::steady_clock::now() > deadline) {
      out.wall_ms = wall.elapsed_us() / 1000.0;
      out.threads = thread_count();
      out.hub_stats = hub->stats();
      return out;  // ok stays false
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  out.wall_ms = wall.elapsed_us() / 1000.0;
  out.threads = thread_count();  // sampled at peak, before teardown
  out.hub_stats = hub->stats();
  out.ok = true;
  return out;
}

/// Wire v3 session auth for the fan-in parties: the hub keys as pool
/// index 0, every sender as index 1 (a bench needs the per-frame MAC
/// cost, not 500 distinct RSA keygens — sharing the senders' keypair
/// changes neither the handshake count nor the per-frame work).
net::WireAuth fan_in_auth(const std::string& self) {
  auto key_index = [](const std::string& name) -> std::size_t {
    return name == "hub" ? 0 : 1;
  };
  net::WireAuth auth;
  auth.enabled = true;
  auth.private_key = std::shared_ptr<const crypto::RsaPrivateKey>(
      std::shared_ptr<const void>{},
      &core::Federation::shared_keypair(512, key_index(self)));
  auth.peer_key = [key_index](const PartyId& peer)
      -> std::shared_ptr<const crypto::RsaPublicKey> {
    return std::make_shared<crypto::RsaPublicKey>(
        core::Federation::shared_keypair(512, key_index(peer.str()))
            .public_key());
  };
  return auth;
}

void print_fan_in_row(const char* stack, int n, int burst,
                      const FanInResult& r) {
  std::printf(
      "  %-12s | %5d | %8llu | %8.1f | %7d | %12llu | %11llu | %10llu\n",
      stack, n,
      static_cast<unsigned long long>(n) * static_cast<unsigned long long>(
                                               burst),
      r.wall_ms, r.threads,
      static_cast<unsigned long long>(r.hub_stats.epoll_wakeups),
      static_cast<unsigned long long>(r.hub_stats.timers_fired),
      static_cast<unsigned long long>(r.hub_stats.executor_queue_peak));
  // Adversarial-pressure counters (DESIGN.md §11) at the hub, printed on
  // every row: a clean fan-in documents the zero; any non-zero means
  // hostile bytes arrived (or a MAC-verifying wire rejected some).
  std::printf(
      "  %-12s | hub: frames_rejected_auth=%llu replays_suppressed=%llu\n",
      stack, static_cast<unsigned long long>(r.hub_stats.frames_rejected_auth),
      static_cast<unsigned long long>(r.hub_stats.replays_suppressed));
  if (!r.ok) {
    std::fprintf(stderr, "E20a: %s fan-in at N=%d did not drain\n", stack, n);
    std::exit(1);
  }
}

/// The agreed-tuple script of one runtime: for each scripted overwrite,
/// every party's installed (SN, H(r), H(state)) tuple, hex-encoded. The
/// run aborts if parties within one runtime ever disagree.
std::vector<std::string> tuple_script(core::RuntimeKind kind, int rounds) {
  core::Federation::Options options;
  options.runtime = kind;
  options.seed = 42;
  bench::RegisterFederation world(3, options);
  std::vector<std::string> script;
  for (int round = 0; round < rounds; ++round) {
    core::RunHandle h =
        world.agree_once(Bytes(256, static_cast<uint8_t>(round + 1)));
    if (h->outcome != core::RunResult::Outcome::kAgreed) {
      std::fprintf(stderr, "E20b: run %d failed: %s\n", round,
                   h->diagnostic.c_str());
      std::exit(1);
    }
    std::string hex;
    for (const std::string& name : world.names) {
      const core::StateTuple& tuple =
          world.fed.coordinator(name).replica(world.object).agreed_tuple();
      std::string party_hex = to_hex(tuple.encode());
      if (hex.empty()) {
        hex = party_hex;
      } else if (hex != party_hex) {
        std::fprintf(stderr, "E20b: intra-runtime divergence at round %d\n",
                     round);
        std::exit(1);
      }
    }
    script.push_back(std::move(hex));
  }
  return script;
}

}  // namespace

int main() {
  constexpr int kBurst = 20;

  bench::print_header(
      "E20a: fan-in, N senders x 20 payloads into one hub "
      "(tcp = threads per party, reactor = one epoll loop)",
      "  stack    |   N   | payloads |  wall ms | threads | "
      "epoll_wakeups | timers_fired | queue_peak");

  for (int n : {50, 200}) {
    auto directory = std::make_shared<net::PeerDirectory>();
    std::vector<std::unique_ptr<net::TcpTransport>> keep;
    auto make = [&](const std::string& name) {
      auto t = std::make_unique<net::TcpTransport>(PartyId{name}, "127.0.0.1",
                                                   std::uint16_t{0}, directory,
                                                   net::TcpTransport::Config{});
      directory->set(PartyId{name}, net::PeerAddress{"127.0.0.1", t->port()});
      return t;
    };
    print_fan_in_row("tcp", n, kBurst, fan_in(n, kBurst, make));
  }

  for (int n : {50, 200, 500}) {
    auto directory = std::make_shared<net::PeerDirectory>();
    net::Reactor reactor;
    auto pool = std::make_shared<net::TaskPool>(4);
    auto make = [&](const std::string& name) {
      auto t = std::make_unique<net::ReactorTransport>(
          PartyId{name}, "127.0.0.1", std::uint16_t{0}, directory,
          net::ReactorTransport::Config{}, reactor, pool);
      directory->set(PartyId{name}, net::PeerAddress{"127.0.0.1", t->port()});
      return t;
    };
    print_fan_in_row("reactor", n, kBurst, fan_in(n, kBurst, make));
  }

  // E22: the fan-in under wire v3 session authentication — N RSA
  // handshakes at connect, then two HMAC-SHA256 passes per frame hop.
  // The delta against the matching "reactor" row is the MAC tax at
  // C10K-style concurrency.
  for (int n : {50, 200}) {
    auto directory = std::make_shared<net::PeerDirectory>();
    net::Reactor reactor;
    auto pool = std::make_shared<net::TaskPool>(4);
    auto make = [&](const std::string& name) {
      net::ReactorTransport::Config config;
      config.auth = fan_in_auth(name);
      auto t = std::make_unique<net::ReactorTransport>(
          PartyId{name}, "127.0.0.1", std::uint16_t{0}, directory, config,
          reactor, pool);
      directory->set(PartyId{name}, net::PeerAddress{"127.0.0.1", t->port()});
      return t;
    };
    print_fan_in_row("reactor+auth", n, kBurst, fan_in(n, kBurst, make));
  }

  bench::print_header(
      "E20b: agreed-tuple digest equivalence, 10 scripted overwrites "
      "(seed 42, N=3)",
      "  round | tuple (SN, H(r), H(state)) identical on tcp and reactor");
  const std::vector<std::string> tcp_script =
      tuple_script(core::RuntimeKind::kTcp, 10);
  const std::vector<std::string> reactor_script =
      tuple_script(core::RuntimeKind::kReactor, 10);
  bool equal = tcp_script.size() == reactor_script.size();
  for (std::size_t i = 0; equal && i < tcp_script.size(); ++i) {
    equal = tcp_script[i] == reactor_script[i];
  }
  if (!equal) {
    std::fprintf(stderr, "E20b: DIGEST MISMATCH between tcp and reactor\n");
    for (std::size_t i = 0;
         i < std::max(tcp_script.size(), reactor_script.size()); ++i) {
      std::fprintf(stderr, "  round %zu\n    tcp:     %s\n    reactor: %s\n",
                   i, i < tcp_script.size() ? tcp_script[i].c_str() : "-",
                   i < reactor_script.size() ? reactor_script[i].c_str()
                                             : "-");
    }
    return 1;
  }
  for (std::size_t i = 0; i < tcp_script.size(); ++i) {
    std::printf("  %5zu | %.24s... ok\n", i, tcp_script[i].c_str());
  }
  std::printf("  all %zu rounds byte-identical across runtimes\n",
              tcp_script.size());
  return 0;
}
