// Experiment E23 — the price of atomicity (DESIGN.md §12 deals).
//
// K independent objects are updated every round by the same initiator on
// the threaded runtime (3 organisations, everyone a member of every
// object, journals on with fsync off). Three ways to move the same K
// states:
//
//   independent — K concurrent propagate_new_state runs, one per object:
//                 the non-atomic baseline. A crash or veto can strand a
//                 prefix of the objects updated and the rest not.
//   deal        — one K-leg deal (stage → open → prepare parked →
//                 signed decision → replicate): all-or-nothing, plus a
//                 signed cross-leg enlist/decision on every leg's record.
//   deal+TTP    — the same deal with the §12 escape hatch enabled: every
//                 commit is first registered atomically with the §7 TTP
//                 (one more signed round trip) before any leg installs.
//
// Table 1 prices the deal layer against the baseline per leg count;
// Table 2 prices the TTP registration detour on top. Everything is
// RSA-bound on this container's single core, so the interesting number
// is the RATIO, not the absolute milliseconds: a deal adds one signed
// verdict + one enlist per leg on top of the per-leg runs themselves,
// so the overhead shrinks as K grows and the per-leg work dominates.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::WallClock;

namespace {

constexpr std::size_t kMaxObjects = 8;
constexpr int kRounds = 10;

enum class Mode { kIndependent, kDeal, kDealTtp };

core::Federation::Options make_options(const std::string& tag) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / ("b2b_bench_deals_" + tag);
  fs::remove_all(root);
  core::Federation::Options options;
  options.runtime = core::RuntimeKind::kThreaded;
  options.seed = 23;
  // The deal layer assumes the paper's stable storage (§4.2); fsync off
  // so the table prices the protocol, not the disk (E16 prices fsync).
  options.journal_root = (root / "journals").string();
  options.journal_fsync = false;
  return options;
}

/// Mean wall time (ms) of one round moving K object states as `mode`.
double run_config(Mode mode, std::size_t num_objects) {
  const std::vector<std::string> names = {"org0", "org1", "org2"};
  const std::string tag = std::to_string(static_cast<int>(mode)) + "_" +
                          std::to_string(num_objects);
  // Registers outlive the federation: runtime threads stop first.
  test::TestRegister regs[3][kMaxObjects];
  core::Federation fed(names, make_options(tag));

  std::vector<ObjectId> objects;
  for (std::size_t k = 0; k < num_objects; ++k) {
    objects.push_back(ObjectId{"obj" + std::to_string(k)});
    for (std::size_t p = 0; p < names.size(); ++p) {
      fed.register_object(names[p], objects[k], regs[p][k]);
    }
    fed.bootstrap_object(objects[k], names, bytes_of("genesis"));
  }
  if (mode == Mode::kDealTtp) fed.enable_deal_escape();

  auto fail = [](const core::RunHandle& h) {
    std::fprintf(stderr, "E23: run failed: %s\n", h->diagnostic.c_str());
    std::exit(1);
  };
  auto drive_round = [&](int round) {
    std::vector<core::RunHandle> handles;
    if (mode == Mode::kIndependent) {
      for (std::size_t k = 0; k < num_objects; ++k) {
        handles.push_back(fed.coordinator("org0").propagate_new_state(
            objects[k],
            bytes_of("r" + std::to_string(round) + "-o" + std::to_string(k))));
      }
    } else {
      core::DealCoordinator::DealSpec spec;
      for (std::size_t k = 0; k < num_objects; ++k) {
        core::DealCoordinator::LegSpec leg;
        leg.object = objects[k];
        leg.new_state =
            bytes_of("r" + std::to_string(round) + "-o" + std::to_string(k));
        leg.payload = leg.new_state;
        leg.is_update = false;
        spec.legs.push_back(std::move(leg));
      }
      handles.push_back(fed.start_deal("org0", std::move(spec)));
    }
    for (const core::RunHandle& h : handles) {
      if (!fed.run_until_done(h) ||
          h->outcome != core::RunResult::Outcome::kAgreed) {
        fail(h);
      }
    }
  };

  drive_round(-1);  // warm-up: connections + first-run costs off the clock
  WallClock wall;
  for (int round = 0; round < kRounds; ++round) drive_round(round);
  const double total_ms = wall.elapsed_us() / 1'000.0;
  fed.settle();
  return total_ms / kRounds;
}

}  // namespace

int main() {
  std::printf(
      "E23 — the price of atomicity: K-leg deals vs K independent runs, "
      "threaded runtime, 3 orgs, %d rounds\n\n",
      kRounds);

  std::printf("Table 1: deal layer vs non-atomic baseline\n");
  std::printf("  K | independent ms/round | deal ms/round | atomicity tax\n");
  std::vector<double> deal_ms(kMaxObjects + 1, 0.0);
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    const double indep = run_config(Mode::kIndependent, k);
    deal_ms[k] = run_config(Mode::kDeal, k);
    std::printf("  %zu | %20.2f | %13.2f | %12.2fx\n", k, indep, deal_ms[k],
                deal_ms[k] / indep);
  }

  std::printf("\nTable 2: the TTP escape hatch (atomic commit registration)\n");
  std::printf("  K | deal ms/round | deal+TTP ms/round | escape tax\n");
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    const double ttp = run_config(Mode::kDealTtp, k);
    std::printf("  %zu | %13.2f | %17.2f | %9.2fx\n", k, deal_ms[k], ttp,
                ttp / deal_ms[k]);
  }
  return 0;
}
