// Experiment E12 — cost of the cryptographic primitives of §4.2.
//
// Every coordination run pays: 1 signature at the proposer, 1 signature +
// 1 verification per recipient, hashing of the state and of every
// message, plus TSS stamps per evidence record. These micro-benchmarks
// explain the constant factor measured in E9.
#include <benchmark/benchmark.h>

#include "b2b/federation.hpp"
#include "crypto/bigint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

using namespace b2b;
using crypto::BigInt;
using crypto::ChaCha20Rng;
using crypto::Sha256;

namespace {

void BM_Sha256(benchmark::State& state) {
  std::size_t size = static_cast<std::size_t>(state.range(0));
  Bytes data(size, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_ChaCha20(benchmark::State& state) {
  std::size_t size = static_cast<std::size_t>(state.range(0));
  ChaCha20Rng rng(std::uint64_t{1});
  Bytes out(size);
  for (auto _ : state) {
    rng.fill(out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(4096);

void BM_RsaSign(benchmark::State& state) {
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  const crypto::RsaPrivateKey& key =
      core::Federation::shared_keypair(bits, 0);
  Bytes message = bytes_of("a state transition proposal to sign");
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(message));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  const crypto::RsaPrivateKey& key =
      core::Federation::shared_keypair(bits, 0);
  Bytes message = bytes_of("a state transition proposal to verify");
  Bytes signature = key.sign(message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.public_key().verify(message, signature));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_ModExp(benchmark::State& state) {
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  ChaCha20Rng rng(std::uint64_t{7});
  Bytes mod_bytes = rng.bytes(bits / 8);
  mod_bytes.back() |= 1;
  mod_bytes.front() |= 0x80;
  BigInt modulus = BigInt::from_bytes_be(mod_bytes);
  BigInt base = BigInt::from_bytes_be(rng.bytes(bits / 8)) % modulus;
  BigInt exponent = BigInt::from_bytes_be(rng.bytes(bits / 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::mod_exp(base, exponent, modulus));
  }
}
BENCHMARK(BM_ModExp)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaKeygen(benchmark::State& state) {
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ChaCha20Rng rng(seed++);
    benchmark::DoNotOptimize(crypto::generate_rsa_keypair(bits, rng));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_TimestampStamp(benchmark::State& state) {
  crypto::TimestampService tss(core::Federation::shared_keypair(512, 1),
                               [] { return std::uint64_t{42}; });
  Bytes evidence = bytes_of("an evidence record payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tss.stamp(evidence));
  }
}
BENCHMARK(BM_TimestampStamp)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
