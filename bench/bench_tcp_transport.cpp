// Experiment E18 — what real kernel sockets cost.
//
// Table 1: raw transport round-trip latency. A two-party ping-pong
// (handler of b echoes back to a) over the in-process threaded fabric
// and over TcpTransport on localhost, same ack/retransmit/dedup stack on
// both. The gap is the price of the kernel boundary: syscalls, TCP
// framing, loopback scheduling.
//
// Table 2: protocol-level agreed-overwrite latency. The identical
// workload (agreed 1 KiB overwrites, N=3) on all three runtimes. The
// simulator row reports wall time of the discrete-event run (virtual
// latency is free); threaded and tcp rows are honest end-to-end numbers
// including RSA signing, which dominates — so the transport gap largely
// disappears at the protocol level.
#include <atomic>
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/support/bench_util.hpp"
#include "net/intruder_proxy.hpp"
#include "net/tcp_runtime.hpp"
#include "net/threaded_runtime.hpp"
#include "net/wire_auth.hpp"

using namespace b2b;
using bench::WallClock;

namespace {

struct LatencyStats {
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
};

LatencyStats summarize(std::vector<double> samples) {
  LatencyStats out;
  if (samples.empty()) return out;
  double total = 0;
  for (double s : samples) total += s;
  out.mean_us = total / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  out.p50_us = samples[samples.size() / 2];
  out.p99_us = samples[(samples.size() * 99) / 100];
  return out;
}

/// One ping-pong round trip measured at party a; b echoes every payload.
/// Works against any pair of transports that already know each other.
LatencyStats ping_pong(net::Transport& a, net::Transport& b,
                       const PartyId& a_id, const PartyId& b_id,
                       int rounds, std::size_t payload_bytes) {
  std::atomic<int> pongs{0};
  b.set_handler([&](const PartyId& from, const Bytes& payload) {
    b.send(from, payload);
  });
  a.set_handler([&](const PartyId&, const Bytes&) {
    pongs.fetch_add(1, std::memory_order_release);
  });

  const Bytes payload(payload_bytes, 0x5a);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(rounds));
  // Warm-up round establishes connections outside the measurement.
  a.send(b_id, payload);
  while (pongs.load(std::memory_order_acquire) < 1) {}
  for (int i = 0; i < rounds; ++i) {
    const int before = pongs.load(std::memory_order_acquire);
    WallClock wall;
    a.send(b_id, payload);
    while (pongs.load(std::memory_order_acquire) <= before) {}
    samples.push_back(wall.elapsed_us());
  }
  (void)a_id;
  return summarize(std::move(samples));
}

void print_row(const char* runtime, int rounds, const LatencyStats& stats) {
  std::printf("  %-12s | %6d | %8.1f | %8.1f | %8.1f\n", runtime, rounds,
              stats.mean_us, stats.p50_us, stats.p99_us);
}

double agreed_overwrites_ms(core::RuntimeKind kind, int rounds,
                            bool wire_auth = false) {
  core::Federation::Options options;
  options.runtime = kind;
  options.wire_auth = wire_auth;
  bench::RegisterFederation world(3, options);
  world.agree_once(Bytes(1024, 0x01));  // warm-up
  WallClock wall;
  for (int round = 0; round < rounds; ++round) {
    core::RunHandle h =
        world.agree_once(Bytes(1024, static_cast<uint8_t>(round + 2)));
    if (h->outcome != core::RunResult::Outcome::kAgreed) {
      std::fprintf(stderr, "bench run failed: %s\n", h->diagnostic.c_str());
      std::exit(1);
    }
  }
  return wall.elapsed_us() / 1000.0;
}

const char* runtime_name(core::RuntimeKind kind) {
  switch (kind) {
    case core::RuntimeKind::kSim: return "sim";
    case core::RuntimeKind::kThreaded: return "threaded";
    case core::RuntimeKind::kTcp: return "tcp";
    case core::RuntimeKind::kReactor: return "reactor";
  }
  return "?";
}

/// The loop-level counters are defined across every Transport but only a
/// reactor-backed one moves them; printing them here documents the zero.
void print_loop_stats(const char* runtime, const net::Transport::Stats& s) {
  std::printf(
      "  %-8s | epoll_wakeups=%llu timers_fired=%llu "
      "executor_queue_peak=%llu\n",
      runtime, static_cast<unsigned long long>(s.epoll_wakeups),
      static_cast<unsigned long long>(s.timers_fired),
      static_cast<unsigned long long>(s.executor_queue_peak));
}

/// Adversarial-pressure counters (DESIGN.md §11): a clean bench run
/// documents the zero; any non-zero here means the wire saw hostility.
/// Printed for EVERY row — the counters exist on every Transport, and a
/// uniform report is what lets a reader spot the one row that moved.
void print_adversarial_stats(const char* runtime,
                             const net::Transport::Stats& s) {
  std::printf(
      "  %-12s | frames_rejected_auth=%llu replays_suppressed=%llu "
      "duplicates_suppressed=%llu\n",
      runtime, static_cast<unsigned long long>(s.frames_rejected_auth),
      static_cast<unsigned long long>(s.replays_suppressed),
      static_cast<unsigned long long>(s.duplicates_suppressed));
}

/// Wire v3 session auth for the two bench parties, keyed from the
/// federation's deterministic pool ("a" → 0, "b" → 1). The pool entries
/// live for the process, so non-owning aliases are safe.
net::WireAuth bench_auth(const std::string& self) {
  auto key_index = [](const std::string& name) -> std::size_t {
    return name == "a" ? 0 : 1;
  };
  net::WireAuth auth;
  auth.enabled = true;
  auth.private_key = std::shared_ptr<const crypto::RsaPrivateKey>(
      std::shared_ptr<const void>{},
      &core::Federation::shared_keypair(512, key_index(self)));
  auth.peer_key = [key_index](const PartyId& peer)
      -> std::shared_ptr<const crypto::RsaPublicKey> {
    return std::make_shared<crypto::RsaPublicKey>(
        core::Federation::shared_keypair(512, key_index(peer.str()))
            .public_key());
  };
  return auth;
}

}  // namespace

int main() {
  constexpr int kRounds = 2000;
  constexpr std::size_t kPayload = 1024;

  bench::print_header(
      "E18a: transport round-trip latency "
      "(1 KiB ping-pong, ack/dedup stack on both)",
      "  runtime      | rounds |  mean us |  p50 us  |  p99 us");

  {
    net::ThreadedRuntime::Options options;
    net::ThreadedRuntime runtime(options);
    net::Transport& a = runtime.add_party(PartyId{"a"});
    net::Transport& b = runtime.add_party(PartyId{"b"});
    print_row("threaded", kRounds,
              ping_pong(a, b, PartyId{"a"}, PartyId{"b"}, kRounds, kPayload));
    print_adversarial_stats("threaded", a.stats());
  }
  {
    auto directory = std::make_shared<net::PeerDirectory>();
    net::TcpTransport a(PartyId{"a"}, "127.0.0.1", 0, directory, {});
    net::TcpTransport b(PartyId{"b"}, "127.0.0.1", 0, directory, {});
    directory->set(PartyId{"a"}, net::PeerAddress{"127.0.0.1", a.port()});
    directory->set(PartyId{"b"}, net::PeerAddress{"127.0.0.1", b.port()});
    print_row("tcp", kRounds,
              ping_pong(a, b, PartyId{"a"}, PartyId{"b"}, kRounds, kPayload));
    print_loop_stats("tcp", a.stats());
    print_adversarial_stats("tcp", a.stats());
  }
  {
    // E22 overhead row: the same ping-pong with wire v3 session
    // authentication on — per-connection HMAC keys negotiated at the
    // hello, every data/ack frame MAC'd and verified. The delta against
    // the "tcp" row is the per-frame price of the authenticated wire
    // (two HMAC-SHA256 passes per hop; the RSA handshake happened once,
    // outside the measurement).
    auto directory = std::make_shared<net::PeerDirectory>();
    net::TcpTransport::Config a_config, b_config;
    a_config.auth = bench_auth("a");
    b_config.auth = bench_auth("b");
    net::TcpTransport a(PartyId{"a"}, "127.0.0.1", 0, directory, a_config);
    net::TcpTransport b(PartyId{"b"}, "127.0.0.1", 0, directory, b_config);
    directory->set(PartyId{"a"}, net::PeerAddress{"127.0.0.1", a.port()});
    directory->set(PartyId{"b"}, net::PeerAddress{"127.0.0.1", b.port()});
    print_row("tcp+auth", kRounds,
              ping_pong(a, b, PartyId{"a"}, PartyId{"b"}, kRounds, kPayload));
    print_adversarial_stats("tcp+auth", a.stats());
  }
  {
    // E21 overhead row: the same ping-pong with every byte relayed
    // through a PASSIVE IntruderProxy (the §11 MITM in pure-relay mode,
    // both parties interposed). The delta against the "tcp" row is the
    // campaign harness tax, not an attack cost.
    auto directory = std::make_shared<net::PeerDirectory>();
    net::IntruderProxy::Config pconfig;
    pconfig.active = false;
    net::IntruderProxy proxy(directory, pconfig);
    net::TcpTransport a(PartyId{"a"}, "127.0.0.1", 0, directory, {});
    net::TcpTransport b(PartyId{"b"}, "127.0.0.1", 0, directory, {});
    directory->set(PartyId{"a"}, net::PeerAddress{"127.0.0.1", a.port()});
    directory->set(PartyId{"b"}, net::PeerAddress{"127.0.0.1", b.port()});
    proxy.interpose(PartyId{"a"});
    proxy.interpose(PartyId{"b"});
    print_row("tcp+mitm", kRounds,
              ping_pong(a, b, PartyId{"a"}, PartyId{"b"}, kRounds, kPayload));
    print_adversarial_stats("tcp+mitm", a.stats());
    proxy.shutdown();
  }
  {
    // E22: the authenticated wire THROUGH the passive MITM — the full
    // campaign harness with the defence on. The relay cannot tell a
    // MAC'd frame from a plain one (it only re-frames), so the delta
    // against "tcp+mitm" isolates the MAC cost under relay conditions.
    auto directory = std::make_shared<net::PeerDirectory>();
    net::IntruderProxy::Config pconfig;
    pconfig.active = false;
    net::IntruderProxy proxy(directory, pconfig);
    net::TcpTransport::Config a_config, b_config;
    a_config.auth = bench_auth("a");
    b_config.auth = bench_auth("b");
    net::TcpTransport a(PartyId{"a"}, "127.0.0.1", 0, directory, a_config);
    net::TcpTransport b(PartyId{"b"}, "127.0.0.1", 0, directory, b_config);
    directory->set(PartyId{"a"}, net::PeerAddress{"127.0.0.1", a.port()});
    directory->set(PartyId{"b"}, net::PeerAddress{"127.0.0.1", b.port()});
    proxy.interpose(PartyId{"a"});
    proxy.interpose(PartyId{"b"});
    print_row("tcp+auth+mitm", kRounds,
              ping_pong(a, b, PartyId{"a"}, PartyId{"b"}, kRounds, kPayload));
    print_adversarial_stats("tcp+auth+mitm", a.stats());
    proxy.shutdown();
  }

  bench::print_header(
      "E18b: agreed 1 KiB overwrites, N=3 (20 runs, wall ms total)",
      "  runtime      |  wall ms | ms/run");
  for (core::RuntimeKind kind :
       {core::RuntimeKind::kSim, core::RuntimeKind::kThreaded,
        core::RuntimeKind::kTcp}) {
    const double ms = agreed_overwrites_ms(kind, 20);
    std::printf("  %-12s | %8.2f | %6.2f\n", runtime_name(kind), ms,
                ms / 20.0);
  }
  {
    // E22: the same protocol workload on a session-authenticated tcp
    // federation. RSA signing dominates the run; the MAC tax is expected
    // to vanish at this level.
    const double ms = agreed_overwrites_ms(core::RuntimeKind::kTcp, 20,
                                           /*wire_auth=*/true);
    std::printf("  %-12s | %8.2f | %6.2f\n", "tcp+auth", ms, ms / 20.0);
  }
  return 0;
}
