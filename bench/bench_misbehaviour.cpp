// Experiment E7 — detection coverage and cost of misbehaviour handling.
//
// For each misbehaviour class of §4.4, a dishonest-but-properly-keyed
// member injects crafted messages; the table reports whether honest
// parties detected it, whether any honest party installed invalid state
// (must always be "no" — the fail-safe guarantee), and the wall-time cost
// of the detection machinery relative to an honest run.
#include <cinttypes>
#include <functional>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::WallClock;
using test::TestRegister;

namespace {

struct MalloryWorld {
  core::Federation fed{{"bob", "carol", "mallory"}};
  TestRegister bob_obj, carol_obj, mallory_obj;
  crypto::ChaCha20Rng rng{0xbadc0deULL};
  Bytes authenticator;
  std::vector<std::pair<PartyId, Bytes>> inbox;
  const ObjectId object{"doc"};

  MalloryWorld() {
    fed.register_object("bob", object, bob_obj);
    fed.register_object("carol", object, carol_obj);
    fed.coordinator("mallory").register_object(object, mallory_obj);
    fed.bootstrap_object(object, {"bob", "carol", "mallory"},
                         bytes_of("genesis"));
    fed.endpoint("mallory").set_handler(
        [this](const PartyId& from, const Bytes& payload) {
          inbox.emplace_back(from, payload);
        });
  }

  core::ProposeMsg make_proposal(Bytes new_state) {
    const core::Replica& view = fed.coordinator("bob").replica(object);
    core::ProposeMsg msg;
    core::Proposal& prop = msg.proposal;
    prop.proposer = PartyId{"mallory"};
    prop.object = object;
    prop.group = view.group_tuple();
    prop.agreed = view.agreed_tuple();
    authenticator = rng.bytes(32);
    prop.proposed = core::StateTuple{view.last_seen_sequence() + 1,
                                     crypto::Sha256::hash(authenticator),
                                     crypto::Sha256::hash(new_state)};
    prop.payload_hash = crypto::Sha256::hash(new_state);
    msg.payload = std::move(new_state);
    sign(msg);
    return msg;
  }

  void sign(core::ProposeMsg& msg) {
    msg.signature =
        fed.keypair("mallory").sign(msg.proposal.signed_bytes());
  }

  void send(const std::string& to, core::MsgType type, Bytes body) {
    core::Envelope env{type, object, std::move(body)};
    fed.endpoint("mallory").send(PartyId{to}, env.encode());
  }

  std::vector<core::RespondMsg> responses() {
    std::vector<core::RespondMsg> out;
    for (const auto& [from, payload] : inbox) {
      core::Envelope env = core::Envelope::decode(payload);
      if (env.type == core::MsgType::kRespond) {
        out.push_back(core::RespondMsg::decode(env.body));
      }
    }
    return out;
  }

  std::uint64_t violations() {
    return fed.coordinator("bob").violations_detected() +
           fed.coordinator("carol").violations_detected();
  }

  bool invalid_state_installed() {
    return bob_obj.value != bytes_of("genesis") ||
           carol_obj.value != bytes_of("genesis");
  }
};

struct Attack {
  const char* name;
  std::function<void(MalloryWorld&)> run;
};

}  // namespace

int main() {
  std::vector<Attack> attacks{
      {"tampered payload",
       [](MalloryWorld& w) {
         core::ProposeMsg msg = w.make_proposal(bytes_of("evil"));
         msg.payload = bytes_of("different");
         w.send("bob", core::MsgType::kPropose, msg.encode());
         w.fed.settle();
       }},
      {"inconsistent signed content",
       [](MalloryWorld& w) {
         core::ProposeMsg msg = w.make_proposal(bytes_of("evil"));
         msg.proposal.proposed.state_hash =
             crypto::Sha256::hash(bytes_of("other"));
         w.sign(msg);
         w.send("bob", core::MsgType::kPropose, msg.encode());
         w.fed.settle();
       }},
      {"replayed proposal",
       [](MalloryWorld& w) {
         core::ProposeMsg msg = w.make_proposal(bytes_of("evil"));
         w.send("bob", core::MsgType::kPropose, msg.encode());
         w.fed.settle();
         w.send("bob", core::MsgType::kPropose, msg.encode());
         w.fed.settle();
       }},
      {"selective send + partial decide",
       [](MalloryWorld& w) {
         core::ProposeMsg msg = w.make_proposal(bytes_of("selective"));
         w.send("bob", core::MsgType::kPropose, msg.encode());
         w.fed.settle();
         core::DecideMsg decide;
         decide.proposer = PartyId{"mallory"};
         decide.object = w.object;
         decide.proposed = msg.proposal.proposed;
         decide.responses = w.responses();
         decide.authenticator = w.authenticator;
         w.send("bob", core::MsgType::kDecide, decide.encode());
         w.fed.settle();
       }},
      {"forged decide authenticator",
       [](MalloryWorld& w) {
         core::ProposeMsg msg = w.make_proposal(bytes_of("forged"));
         w.send("bob", core::MsgType::kPropose, msg.encode());
         w.send("carol", core::MsgType::kPropose, msg.encode());
         w.fed.settle();
         core::DecideMsg decide;
         decide.proposer = PartyId{"mallory"};
         decide.object = w.object;
         decide.proposed = msg.proposal.proposed;
         decide.responses = w.responses();
         decide.authenticator = bytes_of("wrong");
         w.send("bob", core::MsgType::kDecide, decide.encode());
         w.send("carol", core::MsgType::kDecide, decide.encode());
         w.fed.settle();
       }},
      {"impersonation",
       [](MalloryWorld& w) {
         core::ProposeMsg msg = w.make_proposal(bytes_of("evil"));
         msg.proposal.proposer = PartyId{"bob"};
         w.sign(msg);
         w.send("carol", core::MsgType::kPropose, msg.encode());
         w.fed.settle();
       }},
  };

  // Honest reference: mallory behaves correctly.
  double honest_ms;
  {
    MalloryWorld w;
    WallClock wall;
    core::ProposeMsg msg = w.make_proposal(bytes_of("honest"));
    w.send("bob", core::MsgType::kPropose, msg.encode());
    w.send("carol", core::MsgType::kPropose, msg.encode());
    w.fed.settle();
    core::DecideMsg decide;
    decide.proposer = PartyId{"mallory"};
    decide.object = w.object;
    decide.proposed = msg.proposal.proposed;
    decide.responses = w.responses();
    decide.authenticator = w.authenticator;
    w.send("bob", core::MsgType::kDecide, decide.encode());
    w.send("carol", core::MsgType::kDecide, decide.encode());
    w.fed.settle();
    honest_ms = wall.elapsed_us() / 1000.0;
    if (w.bob_obj.value != bytes_of("honest")) {
      std::fprintf(stderr, "honest reference run failed!\n");
      return 1;
    }
  }

  bench::print_header(
      "E7: misbehaviour detection coverage and cost (honest run: reference)",
      "  attack                         | detected | invalid state | wall ms "
      "| vs honest");
  std::printf("  %-30s | %8s | %13s | %7.2f | %9s\n", "(honest run)", "-",
              "no", honest_ms, "1.0x");

  for (const auto& attack : attacks) {
    MalloryWorld w;
    WallClock wall;
    attack.run(w);
    double ms = wall.elapsed_us() / 1000.0;
    std::printf("  %-30s | %8s | %13s | %7.2f | %8.1fx\n", attack.name,
                w.violations() > 0 ? "yes" : "NO",
                w.invalid_state_installed() ? "YES (BUG!)" : "no", ms,
                honest_ms > 0 ? ms / honest_ms : 0.0);
    if (w.invalid_state_installed()) return 1;
  }
  return 0;
}
