// Experiment E10 — §4.3.1's update variant vs full-state overwrite.
//
// Workload: a large shared register receives a small append. Overwrite
// ships the whole state; update ships only the delta (both still agree on
// the hash of the resulting state). Expected shape: bytes on the wire for
// update stay flat as state grows while overwrite grows linearly; the
// crossover in wall time appears as soon as hashing/shipping the state
// dominates the fixed signature cost.
#include <cinttypes>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::RegisterFederation;
using bench::WallClock;

int main() {
  constexpr std::size_t kDeltaBytes = 64;
  bench::print_header(
      "E10: overwrite vs update for a 64 B append to a large state (N=2)",
      "  state KB | ow KB wire | up KB wire | byte ratio | ow ms | up ms");

  for (std::size_t state_kb : {1u, 4u, 16u, 64u, 256u}) {
    std::size_t state_bytes = state_kb * 1024;

    // --- overwrite ---
    double overwrite_kb, overwrite_ms;
    {
      RegisterFederation world(2);
      Bytes base(state_bytes, 0xaa);
      world.agree_once(base);
      world.reset_stats();
      Bytes next = base;
      next.insert(next.end(), kDeltaBytes, 0xbb);
      WallClock wall;
      core::RunHandle h = world.agree_once(next);
      overwrite_ms = wall.elapsed_us() / 1000.0;
      if (h->outcome != core::RunResult::Outcome::kAgreed) return 1;
      overwrite_kb =
          static_cast<double>(world.total_protocol_bytes()) / 1024.0;
    }

    // --- update ---
    double update_kb, update_ms;
    {
      RegisterFederation world(2);
      Bytes base(state_bytes, 0xaa);
      world.agree_once(base);
      world.reset_stats();
      Bytes delta(kDeltaBytes, 0xbb);
      Bytes next = base;
      next.insert(next.end(), delta.begin(), delta.end());
      world.objects[0]->value = next;
      world.objects[0]->pending_suffix = delta;
      WallClock wall;
      core::RunHandle h = world.fed.coordinator("org0").propagate_update(
          world.object, delta, next);
      world.fed.run_until_done(h);
      world.fed.settle();
      update_ms = wall.elapsed_us() / 1000.0;
      if (h->outcome != core::RunResult::Outcome::kAgreed) return 1;
      update_kb = static_cast<double>(world.total_protocol_bytes()) / 1024.0;
    }

    std::printf("  %8zu | %10.2f | %10.2f | %9.1fx | %5.2f | %5.2f\n",
                state_kb, overwrite_kb, update_kb,
                update_kb > 0 ? overwrite_kb / update_kb : 0.0, overwrite_ms,
                update_ms);
  }
  std::printf(
      "\nNote: with updates, recipients still verify that applying the\n"
      "delta yields exactly the proposed state hash (apply-and-check), so\n"
      "the saving is wire bytes, not validation work.\n");
  return 0;
}
