// Experiment E17 — what the journal costs a membership run, and how fast
// an interrupted one recovers, as the group grows.
//
// Table 1: wall time of a connect+disconnect cycle (one outsider joins
// via the rotating sponsor, then leaves) at group size N, with the
// write-ahead journal off, on without fsync barriers, and on with full
// fsync. Membership runs journal more than state runs (the sponsor run
// with its request echo, every counted response, the aggregated decide,
// the subject's own request), so the durability tax is measured on this
// path separately from E16a.
//
// Table 2: the sponsor crashes at `m-decide.journaled` — the worst-case
// point, where the decide for the join is durable but nothing was sent —
// and the stopwatch covers its full restart: journal replay (Coordinator
// construction), object re-registration, and resume_recovered_runs()
// (which re-sends the journaled decide as-is). A second stopwatch covers
// convergence: virtual time until all N+1 parties hold the enlarged
// group tuple.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::WallClock;

namespace {

namespace fs = std::filesystem;

const ObjectId kObj{"ledger"};

std::string fresh_root(const std::string& tag) {
  fs::path root = fs::temp_directory_path() / ("b2b_bench_mrecovery_" + tag);
  fs::remove_all(root);
  return root.string();
}

std::vector<std::string> member_names(std::size_t n) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) names.push_back("org" + std::to_string(i));
  return names;
}

/// One federation of n members plus an outsider ("joiner"), bootstrapped
/// on kObj.
struct MembershipWorld {
  std::vector<std::unique_ptr<test::TestRegister>> objects;
  core::Federation fed;

  MembershipWorld(std::size_t n, const core::Federation::Options& options)
      : fed(with_joiner(member_names(n)), options) {
    for (const std::string& name : with_joiner(member_names(n))) {
      objects.push_back(std::make_unique<test::TestRegister>());
      fed.register_object(name, kObj, *objects.back());
    }
    fed.bootstrap_object(kObj, member_names(n), bytes_of("genesis"));
  }

  static std::vector<std::string> with_joiner(std::vector<std::string> names) {
    names.push_back("joiner");
    return names;
  }
};

double connect_cycle_ms(std::size_t n,
                        const core::Federation::Options& options) {
  constexpr int kRounds = 5;
  MembershipWorld world(n, options);
  const std::string sponsor = "org" + std::to_string(n - 1);
  WallClock wall;
  for (int round = 0; round < kRounds; ++round) {
    core::RunHandle h = world.fed.coordinator("joiner").propagate_connect(
        kObj, PartyId{round == 0 ? sponsor : "org0"});
    if (!world.fed.run_until_done(h) ||
        h->outcome != core::RunResult::Outcome::kAgreed) {
      std::fprintf(stderr, "connect failed: %s\n", h->diagnostic.c_str());
      std::exit(1);
    }
    world.fed.settle();
    core::RunHandle d = world.fed.coordinator("joiner").propagate_disconnect(kObj);
    if (!world.fed.run_until_done(d) ||
        d->outcome != core::RunResult::Outcome::kAgreed) {
      std::fprintf(stderr, "disconnect failed: %s\n", d->diagnostic.c_str());
      std::exit(1);
    }
    world.fed.settle();
  }
  return wall.elapsed_us() / 1000.0;
}

}  // namespace

int main() {
  bench::print_header(
      "E17a: journal overhead on membership runs "
      "(5 connect+disconnect cycles of one joiner)",
      "  N | journal | fsync |  wall ms | vs off");

  for (std::size_t n : {2u, 4u, 8u}) {
    core::Federation::Options off;
    off.seed = 7;
    double off_ms = connect_cycle_ms(n, off);
    std::printf("  %zu |     off |     - | %8.2f | %5.2fx\n", n, off_ms, 1.0);
    for (bool fsync : {false, true}) {
      core::Federation::Options on;
      on.seed = 7;
      on.journal_root = fresh_root("tax_" + std::to_string(n) +
                                   (fsync ? "_fsync" : "_nofsync"));
      on.journal_fsync = fsync;
      double on_ms = connect_cycle_ms(n, on);
      std::printf("  %zu |      on |   %s | %8.2f | %5.2fx\n", n,
                  fsync ? " on" : "off", on_ms,
                  off_ms > 0 ? on_ms / off_ms : 0.0);
      fs::remove_all(on.journal_root);
    }
  }

  bench::print_header(
      "E17b: sponsor recovery from m-decide.journaled vs. group size",
      "  N | journal records |  replay+resume ms |  converge ms (virtual)");

  for (std::size_t n : {2u, 4u, 8u}) {
    core::Federation::Options options;
    options.seed = 42;
    options.journal_root = fresh_root("crash_" + std::to_string(n));

    MembershipWorld world(n, options);
    const std::string sponsor = "org" + std::to_string(n - 1);
    world.fed.coordinator(sponsor).arm_crash_point("m-decide.journaled");
    core::RunHandle h = world.fed.coordinator("joiner").propagate_connect(
        kObj, PartyId{sponsor});
    if (!world.fed.executor().run_until([&] {
          return world.fed.coordinator(sponsor).crashed();
        })) {
      std::fprintf(stderr, "crash point never hit at N=%zu\n", n);
      std::exit(1);
    }
    world.fed.crash_party(sponsor);
    world.fed.scheduler().run_until(world.fed.scheduler().now() + 100'000);

    WallClock wall;
    core::Coordinator& revived = world.fed.recover_party(sponsor);
    world.fed.register_object(sponsor, kObj, *world.objects[n - 1]);
    revived.resume_recovered_runs();
    double recover_ms = wall.elapsed_us() / 1000.0;

    net::SimTime converge_start = world.fed.scheduler().now();
    if (!world.fed.run_until_done(h) ||
        h->outcome != core::RunResult::Outcome::kAgreed) {
      std::fprintf(stderr, "join did not survive the crash at N=%zu\n", n);
      std::exit(1);
    }
    world.fed.settle();
    double converge_ms =
        (world.fed.scheduler().now() - converge_start) / 1000.0;

    std::printf("  %zu | %15zu | %17.2f | %22.2f\n", n,
                revived.journal()->records().size(), recover_ms, converge_ms);
    fs::remove_all(options.journal_root);
  }

  std::printf(
      "\nNote: E17a's fsync row is the honest configuration (a barrier\n"
      "before every send on the membership path too). E17b's first\n"
      "stopwatch is wall time for replay + re-registration + the decide\n"
      "re-send; the second is virtual time from resume to the whole\n"
      "deployment holding the (N+1)-member group tuple.\n");
  return 0;
}
