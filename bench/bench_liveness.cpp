// Experiment E8 — liveness under bounded temporary failures.
//
// §4.1: "if no party misbehaves, agreed interactions will take place
// despite a bounded number of temporary network and computer related
// failures." Sweep message-loss probability (with duplication mixed in)
// and crash/recovery cycles; expected shape: 100% of runs terminate with
// agreement at every bounded fault level, while virtual time-to-agreement
// and transport retransmissions grow with the fault rate.
#include <cinttypes>

#include "bench/support/bench_util.hpp"

using namespace b2b;
using bench::RegisterFederation;

int main() {
  constexpr int kRounds = 10;

  bench::print_header(
      "E8a: completion and time-to-agreement vs message loss "
      "(N=3, 10 runs each)",
      "  loss %% | completed | mean virt ms | retransmissions");
  for (double drop : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    core::Federation::Options options;
    options.seed = 13;
    options.faults.drop_probability = drop;
    options.faults.duplicate_probability = drop / 2;
    options.faults.min_delay_micros = 500;
    options.faults.max_delay_micros = 20'000;
    options.reliable.retransmit_interval_micros = 40'000;

    RegisterFederation world(3, options);
    int completed = 0;
    double total_virtual_ms = 0;
    for (int round = 0; round < kRounds; ++round) {
      net::SimTime before = world.fed.scheduler().now();
      core::RunHandle h = world.agree_once(
          Bytes(256, static_cast<uint8_t>(round + 1)));
      if (h->outcome == core::RunResult::Outcome::kAgreed) {
        ++completed;
        total_virtual_ms +=
            static_cast<double>(world.fed.scheduler().now() - before) / 1000.0;
      }
    }
    std::uint64_t retransmissions = 0;
    for (const auto& name : world.names) {
      retransmissions += world.fed.endpoint(name).stats().retransmissions;
    }
    std::printf("  %5.0f%% | %6d/%2d | %12.2f | %15" PRIu64 "\n", drop * 100,
                completed, kRounds,
                completed > 0 ? total_virtual_ms / completed : 0.0,
                retransmissions);
  }

  bench::print_header(
      "E8b: time-to-agreement vs responder crash duration (N=2)",
      "  crash ms | completed | virt ms to agreement");
  for (net::SimTime crash_ms : {0u, 100u, 500u, 2000u, 10000u}) {
    core::Federation::Options options;
    options.seed = 29;
    RegisterFederation world(2, options);
    world.agree_once(Bytes(64, 0x01));  // warm-up
    // Crash org1, start a run, recover after crash_ms of virtual time.
    world.fed.network().set_alive(PartyId{"org1"}, false);
    net::SimTime before = world.fed.scheduler().now();
    world.objects[0]->value = Bytes(64, 0x02);
    core::RunHandle h = world.fed.coordinator("org0").propagate_new_state(
        world.object, world.objects[0]->get_state());
    world.fed.scheduler().run_until(before + crash_ms * 1000);
    world.fed.network().set_alive(PartyId{"org1"}, true);
    bool done = world.fed.run_until_done(h);
    world.fed.settle();
    std::printf("  %8" PRIu64 " | %9s | %10.2f\n",
                static_cast<std::uint64_t>(crash_ms),
                done && h->outcome == core::RunResult::Outcome::kAgreed
                    ? "yes"
                    : "NO",
                static_cast<double>(world.fed.scheduler().now() - before) /
                    1000.0);
  }

  bench::print_header(
      "E8c: partition-and-heal (N=2): run proposed mid-partition",
      "  partition ms | completed | virt ms to agreement");
  for (net::SimTime part_ms : {100u, 1000u, 5000u, 30000u}) {
    core::Federation::Options options;
    options.seed = 31;
    RegisterFederation world(2, options);
    world.agree_once(Bytes(64, 0x01));
    net::SimTime before = world.fed.scheduler().now();
    world.fed.network().partition({PartyId{"org0"}}, {PartyId{"org1"}},
                                  before + part_ms * 1000);
    world.objects[0]->value = Bytes(64, 0x02);
    core::RunHandle h = world.fed.coordinator("org0").propagate_new_state(
        world.object, world.objects[0]->get_state());
    bool done = world.fed.run_until_done(h);
    world.fed.settle();
    std::printf("  %12" PRIu64 " | %9s | %10.2f\n",
                static_cast<std::uint64_t>(part_ms),
                done && h->outcome == core::RunResult::Outcome::kAgreed
                    ? "yes"
                    : "NO",
                static_cast<double>(world.fed.scheduler().now() - before) /
                    1000.0);
  }
  return 0;
}
