// Shared helpers for the experiment harnesses in bench/.
//
// Most experiments are protocol-level "table" benches: they run workloads
// on the deterministic simulator and print one row per configuration
// (messages, bytes, virtual-time latency, wall time). Micro-benches use
// google-benchmark instead.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "b2b/federation.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::bench {

/// Wall-clock stopwatch (microseconds).
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A federation of n parties named org0..org{n-1}, each holding a
/// TestRegister replica of one shared object, bootstrapped together.
struct RegisterFederation {
  std::vector<std::string> names;
  core::Federation fed;
  std::vector<std::unique_ptr<test::TestRegister>> objects;
  ObjectId object{"bench-object"};

  static std::vector<std::string> make_names(std::size_t n) {
    std::vector<std::string> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back("org" + std::to_string(i));
    return out;
  }

  explicit RegisterFederation(std::size_t n,
                              const core::Federation::Options& options = {})
      : names(make_names(n)), fed(names, options) {
    for (std::size_t i = 0; i < n; ++i) {
      objects.push_back(std::make_unique<test::TestRegister>());
      fed.register_object(names[i], object, *objects[i]);
    }
    fed.bootstrap_object(object, names, bytes_of("genesis"));
  }

  /// Run one agreed overwrite from party 0 with the given state; returns
  /// the handle (asserting completion is the caller's business).
  core::RunHandle agree_once(Bytes state) {
    objects[0]->value = std::move(state);
    core::RunHandle h = fed.coordinator(names[0])
                            .propagate_new_state(object, objects[0]->get_state());
    fed.run_until_done(h);
    fed.settle();
    return h;
  }

  std::uint64_t total_protocol_messages() {
    std::uint64_t total = 0;
    for (const auto& name : names) {
      total += fed.coordinator(name).protocol_stats().envelopes_sent;
    }
    return total;
  }

  std::uint64_t total_protocol_bytes() {
    std::uint64_t total = 0;
    for (const auto& name : names) {
      total += fed.coordinator(name).protocol_stats().envelope_bytes_sent;
    }
    return total;
  }

  void reset_stats() {
    for (const auto& name : names) {
      fed.coordinator(name).reset_protocol_stats();
    }
    fed.network().reset_stats();
  }
};

inline void print_header(const std::string& title,
                         const std::string& columns) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
}

}  // namespace b2b::bench
