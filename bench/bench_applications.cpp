// Experiments E1/E3/E5 — application-level throughput of the paper's
// proof-of-concept workloads: full Tic-Tac-Toe games (Figure 5 sequence,
// cheat included), Figure 7 order-processing rounds, and auction bidding
// across three houses.
#include <benchmark/benchmark.h>

#include "apps/auction.hpp"
#include "apps/order.hpp"
#include "apps/tictactoe.hpp"
#include "b2b/federation.hpp"

using namespace b2b;

namespace {

void BM_TicTacToeFigure5Game(benchmark::State& state) {
  // One iteration = a fresh two-party game playing the Figure 5 sequence
  // (three agreed moves + one vetoed cheat).
  std::uint64_t moves = 0;
  for (auto _ : state) {
    core::Federation fed{{"cross", "nought"}};
    apps::TicTacToeObject cross{PartyId{"cross"}, PartyId{"nought"}};
    apps::TicTacToeObject nought{PartyId{"cross"}, PartyId{"nought"}};
    const ObjectId game{"g"};
    fed.register_object("cross", game, cross);
    fed.register_object("nought", game, nought);
    fed.bootstrap_object(game, {"cross", "nought"}, apps::Board{}.encode());

    auto save = [&](const std::string& player, apps::TicTacToeObject& obj,
                    int row, int col, apps::Mark mark) {
      apps::Board board = obj.board();
      if (!board.play(row, col, mark)) board.set(row, col, mark);
      obj.board() = board;
      core::RunHandle h =
          fed.coordinator(player).propagate_new_state(game, obj.get_state());
      fed.run_until_done(h);
      fed.settle();
      ++moves;
      return h->outcome.load();
    };
    save("cross", cross, 1, 1, apps::Mark::kCross);
    save("nought", nought, 0, 0, apps::Mark::kNought);
    save("cross", cross, 1, 2, apps::Mark::kCross);
    if (save("cross", cross, 2, 1, apps::Mark::kNought) !=
        core::RunResult::Outcome::kVetoed) {
      state.SkipWithError("cheat was not vetoed");
    }
  }
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TicTacToeFigure5Game)->Unit(benchmark::kMillisecond);

void BM_OrderFigure7Round(benchmark::State& state) {
  // Iteration = customer adds an item, supplier prices it (two agreed
  // coordinations on a long-lived order).
  std::map<PartyId, apps::OrderRole> roles{
      {PartyId{"customer"}, apps::OrderRole::kCustomer},
      {PartyId{"supplier"}, apps::OrderRole::kSupplier}};
  core::Federation fed{{"customer", "supplier"}};
  apps::OrderObject customer{roles}, supplier{roles};
  const ObjectId order{"o"};
  fed.register_object("customer", order, customer);
  fed.register_object("supplier", order, supplier);
  fed.bootstrap_object(order, {"customer", "supplier"},
                       apps::OrderDocument{}.encode());
  int item = 0;
  for (auto _ : state) {
    std::string name = "item" + std::to_string(item++);
    customer.doc().add_line(name, 2);
    core::RunHandle h1 =
        fed.coordinator("customer").propagate_new_state(order,
                                                        customer.get_state());
    fed.run_until_done(h1);
    fed.settle();
    supplier.doc().find(name)->unit_price_cents = 1000;
    core::RunHandle h2 =
        fed.coordinator("supplier").propagate_new_state(order,
                                                        supplier.get_state());
    fed.run_until_done(h2);
    fed.settle();
    if (h1->outcome != core::RunResult::Outcome::kAgreed ||
        h2->outcome != core::RunResult::Outcome::kAgreed) {
      state.SkipWithError("round not agreed");
    }
  }
  state.counters["coordinations/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 2), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OrderFigure7Round)->Unit(benchmark::kMillisecond);

void BM_AuctionBidding(benchmark::State& state) {
  // Iteration = one accepted bid, validated by all three houses.
  core::Federation fed{{"h1", "h2", "h3"}};
  apps::AuctionObject a1{PartyId{"h1"}}, a2{PartyId{"h1"}}, a3{PartyId{"h1"}};
  const ObjectId lot{"lot"};
  fed.register_object("h1", lot, a1);
  fed.register_object("h2", lot, a2);
  fed.register_object("h3", lot, a3);
  apps::AuctionState opening;
  opening.item = "lot";
  opening.reserve_cents = 100;
  fed.bootstrap_object(lot, {"h1", "h2", "h3"}, opening.encode());

  std::uint64_t amount = 100;
  apps::AuctionObject* houses[] = {&a1, &a2, &a3};
  const char* names[] = {"h1", "h2", "h3"};
  int turn = 0;
  for (auto _ : state) {
    int house = turn++ % 3;
    houses[house]->place_bid(PartyId{names[house]}, "client", ++amount);
    core::RunHandle h = fed.coordinator(names[house])
                            .propagate_new_state(lot,
                                                 houses[house]->get_state());
    fed.run_until_done(h);
    fed.settle();
    if (h->outcome != core::RunResult::Outcome::kAgreed) {
      state.SkipWithError("bid not agreed");
    }
  }
  state.counters["bids/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AuctionBidding)->Unit(benchmark::kMillisecond);

void BM_CoordinationRoundTrip(benchmark::State& state) {
  // The minimal end-to-end unit: one agreed 64 B overwrite between two
  // parties (useful as the "protocol floor" under the app numbers).
  core::Federation fed{{"a", "b"}};
  struct Reg : core::B2BObject {
    Bytes value;
    Bytes get_state() const override { return value; }
    void apply_state(BytesView s) override { value.assign(s.begin(), s.end()); }
    core::Decision validate_state(BytesView,
                                  const core::ValidationContext&) override {
      return core::Decision::accepted();
    }
  } ra, rb;
  const ObjectId obj{"reg"};
  fed.register_object("a", obj, ra);
  fed.register_object("b", obj, rb);
  fed.bootstrap_object(obj, {"a", "b"}, Bytes(64, 0));
  std::uint8_t round = 0;
  for (auto _ : state) {
    ra.value = Bytes(64, ++round);
    core::RunHandle h =
        fed.coordinator("a").propagate_new_state(obj, ra.get_state());
    fed.run_until_done(h);
    fed.settle();
    if (h->outcome != core::RunResult::Outcome::kAgreed) {
      state.SkipWithError("not agreed");
    }
  }
}
BENCHMARK(BM_CoordinationRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
