// The four-party order-processing variant §5.2 sketches: customer,
// supplier, approver and dispatcher share one order, each restricted to
// their own role. Also demonstrates dynamic membership: the dispatcher
// joins the running interaction through the connection protocol (§4.5)
// rather than being present from genesis.
#include <iostream>

#include "apps/order.hpp"
#include "b2b/federation.hpp"

using namespace b2b;
using apps::OrderDocument;
using apps::OrderObject;
using apps::OrderRole;

int main() {
  std::map<PartyId, OrderRole> roles{
      {PartyId{"customer"}, OrderRole::kCustomer},
      {PartyId{"supplier"}, OrderRole::kSupplier},
      {PartyId{"approver"}, OrderRole::kApprover},
      {PartyId{"dispatcher"}, OrderRole::kDispatcher}};

  core::Federation fed{{"customer", "supplier", "approver", "dispatcher"}};
  OrderObject customer_obj{roles}, supplier_obj{roles}, approver_obj{roles},
      dispatcher_obj{roles};
  const ObjectId order{"order-2201"};
  fed.register_object("customer", order, customer_obj);
  fed.register_object("supplier", order, supplier_obj);
  fed.register_object("approver", order, approver_obj);
  fed.register_object("dispatcher", order, dispatcher_obj);
  // Genesis: three parties. The dispatcher joins later.
  fed.bootstrap_object(order, {"customer", "supplier", "approver"},
                       OrderDocument{}.encode());

  auto coordinate = [&](const std::string& who, OrderObject& obj,
                        const char* what) {
    core::RunHandle h =
        fed.coordinator(who).propagate_new_state(order, obj.get_state());
    fed.run_until_done(h);
    fed.settle();
    std::cout << what << " -> "
              << (h->outcome == core::RunResult::Outcome::kAgreed
                      ? "agreed"
                      : "vetoed: " + h->diagnostic)
              << "\n";
  };

  customer_obj.doc().add_line("server-rack", 4);
  coordinate("customer", customer_obj, "customer orders 4 server-racks");

  supplier_obj.doc().find("server-rack")->unit_price_cents = 250'000;
  coordinate("supplier", supplier_obj, "supplier prices at 2500.00");

  approver_obj.doc().find("server-rack")->approved = true;
  coordinate("approver", approver_obj, "approver sanctions the purchase");

  // The dispatcher now joins the interaction: connection protocol, with
  // the most recently joined member (the approver) as sponsor.
  std::cout << "\ndispatcher requests to connect (sponsor: approver)\n";
  core::RunHandle join =
      fed.coordinator("dispatcher").propagate_connect(order,
                                                      PartyId{"approver"});
  fed.run_until_done(join);
  fed.settle();
  std::cout << "connection "
            << (join->outcome == core::RunResult::Outcome::kAgreed
                    ? "agreed; dispatcher received the agreed order state"
                    : "rejected")
            << "\n";
  std::cout << "group is now: ";
  for (const auto& member :
       fed.coordinator("customer").replica(order).members()) {
    std::cout << member << " ";
  }
  std::cout << "\n\n";

  // A premature delivery commitment would have been vetoed; after
  // approval it is fine.
  dispatcher_obj.doc().find("server-rack")->delivery_days = 14;
  coordinate("dispatcher", dispatcher_obj,
             "dispatcher commits to delivery in 14 days");

  // And role enforcement still applies to the newcomer:
  dispatcher_obj.doc().find("server-rack")->quantity = 2;
  coordinate("dispatcher", dispatcher_obj,
             "dispatcher tries to halve the quantity");

  const auto& line = *customer_obj.doc().find("server-rack");
  std::cout << "\nfinal agreed order at the customer: " << line.quantity
            << " x " << line.item << " @ " << line.unit_price_cents / 100
            << " cents, approved=" << std::boolalpha << line.approved
            << ", delivery in " << line.delivery_days << " days\n";
  return 0;
}
