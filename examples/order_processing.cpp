// Figure 7 of the paper: customer and supplier share an order under
// asymmetric validation rules. The exact sequence of the figure is
// replayed, ending with the supplier's attempt to price an item AND
// change its quantity in one update — rejected by the customer's local
// policy and never reflected in the customer's copy.
#include <iomanip>
#include <iostream>

#include "apps/order.hpp"
#include "b2b/federation.hpp"

using namespace b2b;
using apps::OrderDocument;
using apps::OrderObject;
using apps::OrderRole;

namespace {

void show(const char* whose, const OrderDocument& doc) {
  std::cout << "  [" << whose << "] ";
  if (doc.lines().empty()) {
    std::cout << "(empty order)\n";
    return;
  }
  bool first = true;
  for (const auto& line : doc.lines()) {
    if (!first) std::cout << "; ";
    first = false;
    std::cout << line.quantity << " x " << line.item;
    if (line.unit_price_cents != 0) {
      std::cout << " @ " << line.unit_price_cents / 100 << "."
                << std::setfill('0') << std::setw(2)
                << line.unit_price_cents % 100;
    } else {
      std::cout << " (unpriced)";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::map<PartyId, OrderRole> roles{
      {PartyId{"customer"}, OrderRole::kCustomer},
      {PartyId{"supplier"}, OrderRole::kSupplier}};

  core::Federation fed{{"customer", "supplier"}};
  OrderObject customer_obj{roles};
  OrderObject supplier_obj{roles};
  const ObjectId order{"order-1007"};
  fed.register_object("customer", order, customer_obj);
  fed.register_object("supplier", order, supplier_obj);
  fed.bootstrap_object(order, {"customer", "supplier"},
                       OrderDocument{}.encode());

  core::Controller customer = fed.make_controller("customer", order);
  core::Controller supplier = fed.make_controller("supplier", order);

  std::cout << "1. The customer orders 2 widget1s.\n";
  customer.enter();
  customer.overwrite();
  customer_obj.doc().add_line("widget1", 2);
  customer.leave();
  fed.settle();
  show("supplier's copy", supplier_obj.doc());

  std::cout << "2. The supplier prices widget1 at 10 per unit.\n";
  supplier.enter();
  supplier.overwrite();
  supplier_obj.doc().find("widget1")->unit_price_cents = 1000;
  supplier.leave();
  fed.settle();
  show("customer's copy", customer_obj.doc());

  std::cout << "3. The customer amends the order: 10 widget2s.\n";
  customer.enter();
  customer.overwrite();
  customer_obj.doc().add_line("widget2", 10);
  customer.leave();
  fed.settle();
  show("supplier's copy", supplier_obj.doc());

  std::cout << "4. The supplier attempts to price widget2 (valid) AND "
               "change its quantity (invalid).\n";
  supplier.enter();
  supplier.overwrite();
  supplier_obj.doc().find("widget2")->unit_price_cents = 500;
  supplier_obj.doc().find("widget2")->quantity = 100;
  try {
    supplier.leave();
  } catch (const ValidationError& e) {
    std::cout << "  -> REJECTED: " << e.what() << "\n";
  }
  fed.settle();
  std::cout << "  The update is not reflected in the customer's copy, and "
               "the supplier's replica rolled back:\n";
  show("customer's copy", customer_obj.doc());
  show("supplier's copy", supplier_obj.doc());

  std::cout << "\n5. Priced correctly (no quantity change), it goes "
               "through:\n";
  supplier.enter();
  supplier.overwrite();
  supplier_obj.doc().find("widget2")->unit_price_cents = 500;
  supplier.leave();
  fed.settle();
  show("customer's copy", customer_obj.doc());

  std::cout << "\nEvidence held by the customer: "
            << fed.coordinator("customer").evidence().size()
            << " time-stamped records, chain intact: " << std::boolalpha
            << fed.coordinator("customer").evidence().verify_chain() << "\n";
  return 0;
}
