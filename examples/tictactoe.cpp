// Figure 5 of the paper, as a runnable program: a Tic-Tac-Toe game between
// two organisations' servers, ending with Cross's attempt to cheat by
// marking a square with a zero — vetoed by Nought's server, leaving the
// agreed game state untouched and evidence of the attempt in Nought's
// non-repudiation log.
#include <iostream>

#include "apps/tictactoe.hpp"
#include "b2b/federation.hpp"

using namespace b2b;
using apps::Board;
using apps::Mark;
using apps::TicTacToeObject;

namespace {

void show(const char* title, const Board& cross_view,
          const Board& nought_view) {
  std::cout << "--- " << title << " ---\n";
  std::cout << "Cross's server:        Nought's server:\n";
  std::string left = cross_view.render();
  std::string right = nought_view.render();
  std::size_t lpos = 0, rpos = 0;
  for (int line = 0; line < 3; ++line) {
    std::size_t lend = left.find('\n', lpos);
    std::size_t rend = right.find('\n', rpos);
    std::cout << left.substr(lpos, lend - lpos) << "                  "
              << right.substr(rpos, rend - rpos) << "\n";
    lpos = lend + 1;
    rpos = rend + 1;
  }
}

}  // namespace

int main() {
  core::Federation fed{{"cross", "nought"}};
  TicTacToeObject cross_obj{PartyId{"cross"}, PartyId{"nought"}};
  TicTacToeObject nought_obj{PartyId{"cross"}, PartyId{"nought"}};
  const ObjectId game{"tictactoe"};
  fed.register_object("cross", game, cross_obj);
  fed.register_object("nought", game, nought_obj);
  fed.bootstrap_object(game, {"cross", "nought"}, Board{}.encode());

  core::Controller cross = fed.make_controller("cross", game);
  core::Controller nought = fed.make_controller("nought", game);

  auto save = [&](core::Controller& ctl, TicTacToeObject& obj, int row,
                  int col, Mark mark, const char* describe) {
    std::cout << "\n" << describe << "\n";
    ctl.enter();
    ctl.overwrite();
    Board board = obj.board();
    if (!board.play(row, col, mark)) board.set(row, col, mark);  // cheat path
    obj.board() = board;
    try {
      ctl.leave();
      std::cout << "  -> agreed by all parties\n";
    } catch (const ValidationError& e) {
      std::cout << "  -> VETOED: " << e.what() << "\n";
    }
    fed.settle();
  };

  // The exact Figure 5 sequence.
  save(cross, cross_obj, 1, 1, Mark::kCross,
       "Cross claims middle row, centre square.");
  save(nought, nought_obj, 0, 0, Mark::kNought,
       "Nought claims top row, left square.");
  save(cross, cross_obj, 1, 2, Mark::kCross,
       "Cross claims middle row, right square.");
  show("position before the cheat", cross_obj.board(), nought_obj.board());

  save(cross, cross_obj, 2, 1, Mark::kNought,
       "Cross attempts to mark bottom row, centre square with a zero "
       "(pre-empting Nought's next move).");
  show("after the attempted cheat", cross_obj.board(), nought_obj.board());

  std::cout << "\nNought holds evidence of the attempt:\n";
  const auto& log = fed.coordinator("nought").evidence();
  std::cout << "  " << log.size()
            << " evidence records, hash chain intact: " << std::boolalpha
            << log.verify_chain() << "\n";
  std::cout << "  proposals received: "
            << log.find_kind("propose.recv").size()
            << ", signed responses sent: "
            << log.find_kind("respond.sent").size() << "\n";
  std::cout << "\nCross forfeits the game.\n";
  return 0;
}
