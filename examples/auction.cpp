// Scenario 3 of §2: geographically dispersed auction houses jointly run a
// trusted auction. Clients bid through whichever house they like; every
// bid is validated by all houses, so no house can favour its clients, and
// an attempt to do so is vetoed with evidence. Demonstrates asynchronous
// coordination mode and a membership change (a house leaving the
// consortium mid-auction).
#include <iostream>

#include "apps/auction.hpp"
#include "b2b/federation.hpp"

using namespace b2b;
using apps::AuctionObject;
using apps::AuctionState;

int main() {
  core::Federation fed{{"london", "newyork", "tokyo"}};
  AuctionObject london{PartyId{"london"}};
  AuctionObject newyork{PartyId{"london"}};
  AuctionObject tokyo{PartyId{"london"}};
  const ObjectId lot{"lot-17"};
  fed.register_object("london", lot, london);
  fed.register_object("newyork", lot, newyork);
  fed.register_object("tokyo", lot, tokyo);

  AuctionState opening;
  opening.item = "painting: 'Virtual Space'";
  opening.reserve_cents = 100'000;
  fed.bootstrap_object(lot, {"london", "newyork", "tokyo"},
                       opening.encode());

  auto house_obj = [&](const std::string& name) -> AuctionObject& {
    if (name == "london") return london;
    if (name == "newyork") return newyork;
    return tokyo;
  };

  auto bid = [&](const std::string& house, const std::string& client,
                 std::uint64_t amount) {
    AuctionObject& obj = house_obj(house);
    obj.place_bid(PartyId{house}, client, amount);
    core::RunHandle h =
        fed.coordinator(house).propagate_new_state(lot, obj.get_state());
    fed.run_until_done(h);
    fed.settle();
    std::cout << client << " bids " << amount / 100 << " via " << house
              << ": "
              << (h->outcome == core::RunResult::Outcome::kAgreed
                      ? "accepted"
                      : "REJECTED (" + h->diagnostic + ")")
              << "\n";
  };

  std::cout << "Lot: " << opening.item << ", reserve "
            << opening.reserve_cents / 100 << "\n\n";

  bid("newyork", "alice", 120'000);
  bid("tokyo", "bob", 150'000);
  bid("london", "carol", 90'000);   // below reserve history -> rejected
  bid("london", "carol", 151'000);  // must strictly beat bob

  // tokyo leaves the consortium mid-auction (voluntary disconnection).
  std::cout << "\ntokyo disconnects from the consortium...\n";
  core::RunHandle leave = fed.coordinator("tokyo").propagate_disconnect(lot);
  fed.run_until_done(leave);
  fed.settle();
  std::cout << "remaining houses: ";
  for (const auto& member : fed.coordinator("london").replica(lot).members()) {
    std::cout << member << " ";
  }
  std::cout << "\n\n";

  // Bidding continues among the remaining houses (2 validators now).
  bid("newyork", "dave", 200'000);

  // Only the selling house may close.
  AuctionObject& ny = house_obj("newyork");
  ny.close();
  core::RunHandle bad_close =
      fed.coordinator("newyork").propagate_new_state(lot, ny.get_state());
  fed.run_until_done(bad_close);
  fed.settle();
  std::cout << "newyork tries to close the sale: "
            << (bad_close->outcome == core::RunResult::Outcome::kVetoed
                    ? "vetoed (" + bad_close->diagnostic + ")"
                    : "agreed?!")
            << "\n";

  london.close();
  core::RunHandle close_h =
      fed.coordinator("london").propagate_new_state(lot, london.get_state());
  fed.run_until_done(close_h);
  fed.settle();

  const AuctionState& final_state = newyork.state();
  std::cout << "london closes the sale: "
            << (close_h->outcome == core::RunResult::Outcome::kAgreed
                    ? "agreed"
                    : "vetoed")
            << "\n\nSOLD to " << final_state.highest_bidder << " for "
            << final_state.highest_bid_cents / 100 << " ("
            << final_state.bid_count << " accepted bids), via "
            << final_state.bidder_house << "\n";
  return 0;
}
