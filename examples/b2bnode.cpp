// b2bnode: one organisation's coordinator as its own OS process.
//
// Where the other examples assemble a whole federation inside one process,
// this daemon runs exactly ONE party over the TCP runtime and finds its
// peers through a PeerDirectory file, so a federation can span real
// processes and hosts. Two cooperating b2bnode processes play the paper's
// §5.1 Tic-Tac-Toe game to completion; each prints a canonical FINAL line
// and exits 0 only if its own evidence chain verifies and the agreed game
// reached the expected terminal state, so a driver script can assert
// cross-process agreement from exit codes and output alone.
//
// Address bootstrap: each node binds an ephemeral port and publishes it as
// <port-dir>/<party>.port; peers listed with port 0 are resolved by
// polling for their port files. A restarted node binds a NEW port and
// republishes; surviving peers watch the port file and refresh their
// directory entry, so retransmissions dial the new address.
//
// --crash-after K makes the process _Exit (no destructors, no flush —
// a real crash) right after its K-th own move is agreed. Restarting with
// the same --journal directory replays the write-ahead journal, resumes
// any in-flight runs, and continues the game from the recovered state.
//
// --deal switches to the §12 deal demo instead of the game: the first
// party (name order) drives four scripted two-leg deals across two
// shared registers — a commit, a deal the peer vetoes (all legs roll
// back), a commit, a final commit — and both processes print the same
// canonical FINAL line. In deal mode --crash-after K arms the
// deal-decide.journaled crash point before the K-th deal, so the
// process dies with the signed decision journaled but NOT replicated;
// the restart resumes the deal from the journal and must drive it to
// the same all-or-nothing outcome the decision fixed.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "apps/tictactoe.hpp"
#include "b2b/coordinator.hpp"
#include "b2b/federation.hpp"
#include "net/reactor_runtime.hpp"
#include "net/tcp_runtime.hpp"

using namespace b2b;
using apps::Board;
using apps::GameStatus;
using apps::Mark;
using apps::TicTacToeObject;

namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr auto kWaitBudget = 120s;

struct Args {
  std::string party;
  std::string peers_file;
  std::string port_dir;
  std::string journal_root;
  std::size_t rsa_bits = 512;
  std::uint64_t seed = 1;
  int crash_after = 0;  // 0 = never crash
  std::string transport = "tcp";  // "tcp" | "reactor"
  bool auth = false;  // wire v3 session authentication
  bool deal = false;  // §12 deal demo instead of the game
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --party NAME --peers FILE --port-dir DIR"
               " [--journal DIR] [--rsa-bits N] [--seed N]"
               " [--crash-after K] [--transport tcp|reactor] [--auth]"
               " [--deal]\n";
  return 1;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--auth") {  // boolean flag: takes no value token
      args.auth = true;
      continue;
    }
    if (flag == "--deal") {
      args.deal = true;
      continue;
    }
    if (i + 1 >= argc) return false;
    std::string value = argv[++i];
    if (flag == "--party") {
      args.party = value;
    } else if (flag == "--peers") {
      args.peers_file = value;
    } else if (flag == "--port-dir") {
      args.port_dir = value;
    } else if (flag == "--journal") {
      args.journal_root = value;
    } else if (flag == "--rsa-bits") {
      args.rsa_bits = static_cast<std::size_t>(std::stoul(value));
    } else if (flag == "--seed") {
      args.seed = std::stoull(value);
    } else if (flag == "--crash-after") {
      args.crash_after = std::stoi(value);
    } else if (flag == "--transport") {
      args.transport = value;
    } else {
      return false;
    }
  }
  return !args.party.empty() && !args.peers_file.empty() &&
         !args.port_dir.empty() &&
         (args.transport == "tcp" || args.transport == "reactor");
}

/// Spin until `predicate` holds; false on budget exhaustion.
bool wait_for(const std::function<bool()>& predicate) {
  auto deadline = std::chrono::steady_clock::now() + kWaitBudget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return predicate();
}

void publish_port(const fs::path& dir, const std::string& party,
                  std::uint16_t port) {
  // Write-then-rename so a polling peer never reads a torn file.
  fs::path tmp = dir / (party + ".port.tmp");
  fs::path final_path = dir / (party + ".port");
  std::ofstream out(tmp);
  out << port << "\n";
  out.close();
  fs::rename(tmp, final_path);
}

std::uint16_t poll_port(const fs::path& dir, const std::string& party) {
  fs::path path = dir / (party + ".port");
  unsigned port = 0;
  wait_for([&] {
    std::ifstream in(path);
    return static_cast<bool>(in >> port) && port != 0;
  });
  return static_cast<std::uint16_t>(port);
}

/// Keeps the peer's directory entry in sync with its port file. A node
/// that crashes and restarts comes back on a NEW ephemeral port; its
/// outbound handshake reaches us only once it has traffic to send, so a
/// waiting proposer must also refresh its dial target (TcpTransport
/// re-reads the directory on every dial attempt).
struct DirectoryRefresher {
  std::shared_ptr<net::PeerDirectory> directory;
  fs::path port_file;
  PartyId peer;
  std::string host;
  std::atomic<bool> stop{false};
  std::thread thread;

  DirectoryRefresher(std::shared_ptr<net::PeerDirectory> dir, fs::path file,
                     PartyId peer_id, std::string peer_host)
      : directory(std::move(dir)),
        port_file(std::move(file)),
        peer(std::move(peer_id)),
        host(std::move(peer_host)),
        thread([this] { loop(); }) {}

  ~DirectoryRefresher() {
    stop = true;
    thread.join();
  }

  void loop() {
    while (!stop) {
      unsigned port = 0;
      std::ifstream in(port_file);
      if (in >> port && port != 0) {
        auto current = directory->lookup(peer);
        if (!current || current->port != port) {
          directory->set(peer, net::PeerAddress{
                                   host, static_cast<std::uint16_t>(port)});
        }
      }
      std::this_thread::sleep_for(100ms);
    }
  }
};

std::string board_fingerprint(const Board& board) {
  std::string out;
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      out += static_cast<char>('0' + static_cast<int>(board.at(row, col)));
    }
  }
  return out;
}

/// A minimal shared register for the deal demo: opaque bytes plus an
/// optional local veto policy.
class DemoRegister : public core::B2BObject {
 public:
  Bytes value;
  std::function<core::Decision(BytesView)> policy;

  Bytes get_state() const override { return value; }
  void apply_state(BytesView state) override {
    value.assign(state.begin(), state.end());
  }
  core::Decision validate_state(BytesView proposed,
                                const core::ValidationContext&) override {
    if (policy) return policy(proposed);
    return core::Decision::accepted();
  }

  std::string str() const { return std::string(value.begin(), value.end()); }
};

/// The --deal demo (DESIGN.md §12). The first roster party initiates
/// four scripted two-leg deals over "ledger" and "orders"; the second
/// participates, vetoing any orders state containing "bad". In the
/// crash phase the initiator dies between journaling the signed commit
/// decision and replicating it; the restart must finish that deal from
/// the journal before the script moves on.
int run_deal_demo(const Args& args, core::Coordinator& coordinator,
                  net::Transport& transport,
                  const std::vector<PartyId>& roster, const PartyId& self,
                  const PartyId& peer,
                  const std::shared_ptr<net::PeerDirectory>& directory,
                  std::uint16_t listen_port) {
  const ObjectId ledger{"ledger"};
  const ObjectId orders{"orders"};
  DemoRegister ledger_obj, orders_obj;
  const bool initiator = (self == roster[0]);
  if (!initiator) {
    orders_obj.policy = [](BytesView proposed) {
      const std::string value(proposed.begin(), proposed.end());
      if (value.find("bad") != std::string::npos) {
        return core::Decision::rejected("orders policy refuses " + value);
      }
      return core::Decision::accepted();
    };
  }
  coordinator.register_object(ledger, ledger_obj);
  coordinator.register_object(orders, orders_obj);

  const bool recovered = coordinator.recovered();
  if (!recovered) {
    coordinator.replica(ledger).bootstrap(roster, bytes_of("L0"));
    coordinator.replica(orders).bootstrap(roster, bytes_of("O0"));
  }

  publish_port(args.port_dir, args.party, listen_port);
  std::uint16_t peer_port = poll_port(args.port_dir, peer.str());
  auto peer_address = directory->lookup(peer);
  const std::string peer_host =
      peer_address ? peer_address->host : "127.0.0.1";
  directory->set(peer, net::PeerAddress{peer_host, peer_port});
  DirectoryRefresher refresher(
      directory, fs::path(args.port_dir) / (peer.str() + ".port"), peer,
      peer_host);
  std::cout << "[" << args.party << "] listening on " << listen_port << " ("
            << args.transport << (args.auth ? "+auth" : "")
            << ", deal demo), peer " << peer.str() << " on " << peer_port
            << std::endl;

  struct DealStep {
    const char* ledger_value;
    const char* orders_value;
    bool veto;
  };
  const std::vector<DealStep> kDeals = {
      {"L1", "O1", false},
      {"L2", "O2-bad", true},  // the peer's orders policy vetoes
      {"L3", "O3", false},     // the crash phase dies mid-decision here
      {"L4", "O4", false},
  };

  if (initiator) {
    if (recovered) {
      std::cout << "[" << args.party
                << "] recovered from journal, resuming in-flight deals"
                << std::endl;
      for (const core::RunHandle& handle :
           coordinator.resume_recovered_runs()) {
        if (!wait_for([&] { return handle->done(); })) {
          std::cerr << "[" << args.party << "] resumed deal never finished\n";
          return 3;
        }
      }
    }
    // Where the script resumes: the highest step whose ledger value is
    // already installed (vetoed steps install nothing, so the value
    // identifies the last COMMITTED step).
    std::size_t next = 0;
    for (std::size_t i = 0; i < kDeals.size(); ++i) {
      if (ledger_obj.value == bytes_of(kDeals[i].ledger_value)) next = i + 1;
    }
    for (std::size_t i = next; i < kDeals.size(); ++i) {
      if (!recovered && args.crash_after > 0 &&
          static_cast<std::size_t>(args.crash_after) == i + 1) {
        coordinator.arm_crash_point("deal-decide.journaled");
      }
      core::DealCoordinator::DealSpec spec;
      for (const auto& [object, value] :
           {std::pair{ledger, kDeals[i].ledger_value},
            std::pair{orders, kDeals[i].orders_value}}) {
        core::DealCoordinator::LegSpec leg;
        leg.object = object;
        leg.new_state = bytes_of(value);
        leg.payload = leg.new_state;
        leg.is_update = false;
        spec.legs.push_back(std::move(leg));
      }
      core::RunHandle handle = coordinator.start_deal(std::move(spec));
      if (!wait_for([&] { return handle->done() || coordinator.crashed(); })) {
        std::cerr << "[" << args.party << "] deal " << i + 1 << " wedged\n";
        return 3;
      }
      if (coordinator.crashed()) {
        std::cout << "[" << args.party << "] CRASH mid-deal " << i + 1
                  << " (decision journaled, not replicated)" << std::endl;
        std::_Exit(42);  // no destructors, no flush: a real process crash
      }
      const auto want = kDeals[i].veto ? core::RunResult::Outcome::kVetoed
                                       : core::RunResult::Outcome::kAgreed;
      if (handle->outcome != want) {
        std::cerr << "[" << args.party << "] deal " << i + 1
                  << " unexpected outcome: " << handle->diagnostic << "\n";
        return 2;
      }
      std::cout << "[" << args.party << "] deal " << i + 1 << " "
                << (kDeals[i].veto ? "vetoed, all legs rolled back"
                                   : "committed")
                << std::endl;
    }
    // The peer installs asynchronously: drain our send queue so every
    // final decide is acked before this process exits.
    if (!wait_for([&] { return transport.unacked() == 0; })) {
      std::cerr << "[" << args.party << "] final decides never acked\n";
      return 3;
    }
  } else {
    if (!wait_for([&] {
          coordinator.synchronize();
          return ledger_obj.value == bytes_of("L4") &&
                 orders_obj.value == bytes_of("O4");
        })) {
      std::cerr << "[" << args.party << "] timed out waiting for final deal\n";
      return 3;
    }
  }

  coordinator.synchronize();
  const bool chain_ok = coordinator.evidence().verify_chain();
  const std::uint64_t violations = coordinator.violations_detected();
  std::cout << "[" << args.party
            << "] evidence records: " << coordinator.evidence().size()
            << ", chain intact: " << std::boolalpha << chain_ok
            << ", violations: " << violations << std::endl;
  // The canonical line the driver script compares across processes.
  std::cout << "FINAL deal " << ledger_obj.str() << "/" << orders_obj.str()
            << " chain=" << std::boolalpha << chain_ok
            << " violations=" << violations << std::endl;
  return (chain_ok && violations == 0 && ledger_obj.str() == "L4" &&
          orders_obj.str() == "O4")
             ? 0
             : 4;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  // The peers file fixes the federation roster AND the deterministic
  // keypair assignment: parties are numbered in directory (name) order,
  // which every process derives identically, exactly as an in-process
  // Federation numbers its parties. This stands in for the out-of-band
  // PKI exchange between organisations.
  auto directory = std::make_shared<net::PeerDirectory>(
      net::PeerDirectory::load_file(args.peers_file));
  std::vector<PartyId> roster;
  std::size_t self_index = ~std::size_t{0};
  for (const auto& [party, address] : directory->entries()) {
    if (party.str() == args.party) self_index = roster.size();
    roster.push_back(party);
  }
  if (self_index == ~std::size_t{0}) {
    std::cerr << args.party << ": not in " << args.peers_file << "\n";
    return 1;
  }
  if (roster.size() != 2) {
    std::cerr << "expected exactly two parties in " << args.peers_file
              << "\n";
    return 1;
  }
  const PartyId self{args.party};
  const PartyId cross = roster[0];
  const PartyId nought = roster[1];
  const PartyId peer = (self == cross) ? nought : cross;

  // Wire v3 session authentication (--auth): both processes derive the
  // same name-ordered key assignment from the peers file, so the MAC'd
  // wire needs no out-of-band state beyond the roster the PKI already
  // fixed. An --auth node refuses unauthenticated hellos (and vice
  // versa), so the flag must match across the federation.
  net::WireAuth wire_auth;
  if (args.auth) {
    wire_auth.enabled = true;
    wire_auth.private_key = std::shared_ptr<const crypto::RsaPrivateKey>(
        std::shared_ptr<const void>{},
        &core::Federation::shared_keypair(args.rsa_bits, self_index));
    const std::vector<PartyId> key_roster = roster;
    const std::size_t bits = args.rsa_bits;
    wire_auth.peer_key = [key_roster, bits](const PartyId& who)
        -> std::shared_ptr<const crypto::RsaPublicKey> {
      for (std::size_t i = 0; i < key_roster.size(); ++i) {
        if (key_roster[i] == who) {
          return std::make_shared<crypto::RsaPublicKey>(
              core::Federation::shared_keypair(bits, i).public_key());
        }
      }
      return nullptr;  // fail closed: unknown peers get no session
    };
  }

  // Bind an ephemeral port, publish it, and resolve the peer's. Either
  // stack speaks the same wire protocol, so the two processes of one
  // federation may even mix --transport values.
  std::unique_ptr<net::TcpTransport> tcp_transport;
  std::unique_ptr<net::Reactor> reactor;
  std::shared_ptr<net::TaskPool> lane_pool;
  std::unique_ptr<net::ReactorTransport> reactor_transport;
  net::Transport* transport = nullptr;
  std::uint16_t listen_port = 0;
  if (args.transport == "reactor") {
    reactor = std::make_unique<net::Reactor>();
    lane_pool = std::make_shared<net::TaskPool>(4);
    net::ReactorTransport::Config reactor_config;
    reactor_config.retransmit_interval_micros = 20'000;
    reactor_config.auth = wire_auth;
    reactor_transport = std::make_unique<net::ReactorTransport>(
        self, "127.0.0.1", std::uint16_t{0}, directory, reactor_config,
        *reactor, lane_pool);
    transport = reactor_transport.get();
    listen_port = reactor_transport->port();
  } else {
    net::TcpTransport::Config transport_config;
    transport_config.retransmit_interval_micros = 20'000;
    transport_config.auth = wire_auth;
    tcp_transport = std::make_unique<net::TcpTransport>(
        self, "127.0.0.1", std::uint16_t{0}, directory, transport_config);
    transport = tcp_transport.get();
    listen_port = tcp_transport->port();
  }
  directory->set(self, net::PeerAddress{"127.0.0.1", listen_port});

  net::SystemClock clock;

  core::Coordinator::Config config;
  config.self = self;
  config.key = core::Federation::shared_keypair(args.rsa_bits, self_index);
  config.rng_seed = args.seed * 1000003 + self_index;
  if (!args.journal_root.empty()) {
    config.journal_dir = args.journal_root + "/" + args.party;
  }
  config.run_probe_interval_micros = 200'000;
  config.max_run_probes = 100;
  // Real deployment: per-object dispatch lanes, so a slow run on one
  // shared object never delays another object's runs.
  config.shard_lanes = true;
  // On the reactor stack, lanes drain on the shared executor pool
  // instead of one thread per object shard.
  config.lane_pool = lane_pool;
  core::Coordinator coordinator(config, *transport, clock, nullptr);
  for (std::size_t i = 0; i < roster.size(); ++i) {
    if (roster[i] == self) continue;
    coordinator.add_known_party(
        roster[i],
        core::Federation::shared_keypair(args.rsa_bits, i).public_key());
  }

  if (args.deal) {
    return run_deal_demo(args, coordinator, *transport, roster, self, peer,
                         directory, listen_port);
  }

  const ObjectId game{"tictactoe"};
  TicTacToeObject object{cross, nought};
  coordinator.register_object(game, object);
  const bool recovered = coordinator.recovered();
  if (recovered) {
    std::cout << "[" << args.party << "] recovered from journal, board:\n"
              << object.board().render();
    for (const core::RunHandle& handle :
         coordinator.resume_recovered_runs()) {
      wait_for([&] { return handle->done(); });
    }
  } else {
    coordinator.replica(game).bootstrap(roster, Board{}.encode());
  }

  // Only now is this node ready to serve; publishing the port is the
  // "open for business" signal peers wait on.
  publish_port(args.port_dir, args.party, listen_port);
  std::uint16_t peer_port = poll_port(args.port_dir, peer.str());
  auto peer_address = directory->lookup(peer);
  const std::string peer_host =
      peer_address ? peer_address->host : "127.0.0.1";
  directory->set(peer, net::PeerAddress{peer_host, peer_port});
  // Track peer restarts (new port file contents) for the rest of the run.
  DirectoryRefresher refresher(
      directory, fs::path(args.port_dir) / (peer.str() + ".port"), peer,
      peer_host);
  std::cout << "[" << args.party << "] listening on " << listen_port
            << " (" << args.transport << (args.auth ? "+auth" : "")
            << "), peer " << peer.str() << " on " << peer_port << std::endl;

  // The scripted game: X top row in three, O answering twice.
  struct Move {
    int row, col;
  };
  const std::vector<Move> kMoves = {
      {0, 0}, {1, 1}, {0, 1}, {2, 2}, {0, 2}};
  const Mark my_mark = (self == cross) ? Mark::kCross : Mark::kNought;
  int own_agreed = 0;

  for (std::size_t i = 0; i < kMoves.size(); ++i) {
    const bool my_turn = (i % 2 == 0) == (self == cross);
    // Wait until every earlier move is on the local agreed board.
    if (!wait_for([&] {
          coordinator.synchronize();
          return object.board().move_count() >=
                 static_cast<int>(i);
        })) {
      std::cerr << "[" << args.party << "] timed out waiting for move " << i
                << "\n";
      return 3;
    }
    coordinator.synchronize();
    if (object.board().move_count() > static_cast<int>(i)) {
      continue;  // already played (recovered from the journal)
    }
    if (!my_turn) {
      continue;  // the next wait_for picks up the opponent's move
    }

    Board next = object.board();
    if (!next.play(kMoves[i].row, kMoves[i].col, my_mark)) {
      std::cerr << "[" << args.party << "] illegal scripted move " << i
                << "\n";
      return 2;
    }
    object.board() = next;
    core::RunHandle handle =
        coordinator.propagate_new_state(game, object.get_state());
    if (!wait_for([&] { return handle->done(); }) ||
        handle->outcome != core::RunResult::Outcome::kAgreed) {
      std::cerr << "[" << args.party << "] move " << i
                << " not agreed: " << handle->diagnostic << "\n";
      return 2;
    }
    ++own_agreed;
    std::cout << "[" << args.party << "] move " << i << " agreed"
              << std::endl;
    if (args.crash_after > 0 && own_agreed == args.crash_after) {
      std::cout << "[" << args.party << "] CRASH after " << own_agreed
                << " own moves" << std::endl;
      std::_Exit(42);  // no destructors, no flush: a real process crash
    }
  }

  if (!wait_for([&] {
        coordinator.synchronize();
        return object.board().move_count() == 5;
      })) {
    std::cerr << "[" << args.party << "] timed out waiting for game end\n";
    return 3;
  }

  coordinator.synchronize();
  const bool chain_ok = coordinator.evidence().verify_chain();
  const GameStatus status = object.board().status();
  std::cout << object.board().render();
  std::cout << "[" << args.party << "] evidence records: "
            << coordinator.evidence().size()
            << ", chain intact: " << std::boolalpha << chain_ok << std::endl;
  // The canonical line the driver script compares across processes.
  std::cout << "FINAL " << board_fingerprint(object.board()) << " status="
            << static_cast<int>(status) << " chain=" << chain_ok
            << std::endl;
  return (chain_ok && status == GameStatus::kCrossWins) ? 0 : 4;
}
