// Quickstart: two organisations share a document and coordinate changes.
//
// Demonstrates the full public API surface in ~100 lines:
//  1. implement B2BObject for your application state,
//  2. assemble a Federation (scheduler + network + TSS + coordinators),
//  3. register + bootstrap the shared object,
//  4. wrap mutations in Controller enter/overwrite/leave,
//  5. observe validation: a change the peer's local policy rejects is
//     vetoed and rolled back, with non-repudiation evidence retained.
#include <iostream>
#include <string>

#include "b2b/federation.hpp"

using namespace b2b;

namespace {

/// A shared text document. Local policy at every organisation: the
/// document may only grow (no destructive edits).
class SharedDocument : public core::B2BObject {
 public:
  std::string text;

  Bytes get_state() const override { return bytes_of(text); }
  void apply_state(BytesView state) override { text = string_of(state); }

  core::Decision validate_state(BytesView proposed,
                                const core::ValidationContext& ctx) override {
    std::string next = string_of(proposed);
    if (next.size() < text.size() || next.compare(0, text.size(), text) != 0) {
      return core::Decision::rejected("document may only be appended to (" +
                                      ctx.proposer.str() +
                                      " tried a destructive edit)");
    }
    return core::Decision::accepted();
  }
};

}  // namespace

int main() {
  // One call assembles virtual time, the simulated network, a trusted
  // time-stamping service and a coordinator per organisation.
  core::Federation fed{{"acme", "globex"}};

  SharedDocument acme_doc, globex_doc;
  const ObjectId contract{"contract-42"};
  fed.register_object("acme", contract, acme_doc);
  fed.register_object("globex", contract, globex_doc);
  fed.bootstrap_object(contract, {"acme", "globex"}, bytes_of("DRAFT: "));

  core::Controller acme = fed.make_controller("acme", contract);
  core::Controller globex = fed.make_controller("globex", contract);

  // A valid change: acme appends. Synchronous mode blocks until the
  // coordination protocol (propose -> respond -> decide) completes.
  acme.enter();
  acme.overwrite();
  acme_doc.text += "Party A supplies 100 widgets. ";
  acme.leave();
  // leave() returns once *this* party's run completed; settle() drains the
  // remaining in-flight events (the peer installing the decide).
  fed.settle();
  std::cout << "globex now sees: \"" << globex_doc.text << "\"\n";

  // Another valid change from the other side.
  globex.enter();
  globex.overwrite();
  globex_doc.text += "Party B pays 90 days net. ";
  globex.leave();
  fed.settle();
  std::cout << "acme now sees:   \"" << acme_doc.text << "\"\n";

  // An invalid change: globex attempts to rewrite history. acme's local
  // policy vetoes it; globex's replica is rolled back automatically.
  globex.enter();
  globex.overwrite();
  globex_doc.text = "Party B owes nothing.";
  try {
    globex.leave();
  } catch (const ValidationError& e) {
    std::cout << "rewrite vetoed:  " << e.what() << "\n";
  }
  fed.settle();
  std::cout << "globex rolled back to: \"" << globex_doc.text << "\"\n";

  // Both organisations hold tamper-evident, time-stamped evidence of
  // everything that happened — including the attempted rewrite.
  const auto& evidence = fed.coordinator("acme").evidence();
  std::cout << "acme evidence records: " << evidence.size()
            << " (chain intact: " << std::boolalpha
            << evidence.verify_chain() << ")\n";
  return 0;
}
