// Scenario 2 of §2: dispersal of operational support to the customer.
//
// Instead of phoning the provider's monolithic OSS, the customer holds a
// replica of its own service configuration and changes what logically
// belongs to it — bandwidth, QoS class, fault contact — directly, within
// an envelope the provider publishes. Both sides' local policies police
// the split, and every change (including every rejected overreach) leaves
// non-repudiable evidence on both sides.
#include <iostream>

#include "apps/service_config.hpp"
#include "b2b/federation.hpp"

using namespace b2b;
using apps::ServiceConfig;
using apps::ServiceConfigObject;

namespace {

void show(const ServiceConfig& c) {
  std::cout << "    bandwidth " << c.bandwidth_mbps << "/"
            << c.max_bandwidth_mbps << " Mbps, QoS " << int{c.qos_class}
            << "/" << int{c.max_qos_class} << ", faults -> "
            << c.fault_contact << ", maintenance " << c.maintenance_window
            << "\n";
}

}  // namespace

int main() {
  core::Federation fed{{"telco", "acme"}};
  ServiceConfigObject telco_obj{PartyId{"telco"}, PartyId{"acme"}};
  ServiceConfigObject acme_obj{PartyId{"telco"}, PartyId{"acme"}};
  const ObjectId svc{"acme-leased-line"};
  fed.register_object("telco", svc, telco_obj);
  fed.register_object("acme", svc, acme_obj);

  ServiceConfig initial;
  initial.max_bandwidth_mbps = 100;
  initial.max_qos_class = 3;
  initial.maintenance_window = "Sun 02:00-04:00";
  initial.bandwidth_mbps = 10;
  initial.fault_contact = "ops@acme.example";
  fed.bootstrap_object(svc, {"telco", "acme"}, initial.encode());

  core::Controller telco = fed.make_controller("telco", svc);
  core::Controller acme = fed.make_controller("acme", svc);

  auto attempt = [&](core::Controller& ctl, const char* what,
                     auto mutate) {
    std::cout << what << "\n";
    ctl.enter();
    ctl.overwrite();
    mutate();
    try {
      ctl.leave();
      std::cout << "  -> agreed\n";
    } catch (const ValidationError& e) {
      std::cout << "  -> VETOED: " << e.what() << "\n";
    }
    fed.settle();
    show(telco_obj.config());
  };

  std::cout << "Initial configuration:\n";
  show(acme_obj.config());

  attempt(acme, "\nacme raises its own bandwidth to 80 Mbps (self-service):",
          [&] { acme_obj.config().bandwidth_mbps = 80; });

  attempt(acme, "\nacme tries to raise its own LIMIT to 10 Gbps:",
          [&] { acme_obj.config().max_bandwidth_mbps = 10'000; });

  attempt(telco, "\ntelco tries to quietly throttle acme to 1 Mbps:",
          [&] { telco_obj.config().bandwidth_mbps = 1; });

  attempt(telco, "\ntelco upgrades the envelope to 1 Gbps:",
          [&] { telco_obj.config().max_bandwidth_mbps = 1'000; });

  attempt(acme, "\nacme now self-services up to 800 Mbps:",
          [&] { acme_obj.config().bandwidth_mbps = 800; });

  std::cout << "\nEvidence retained: telco "
            << fed.coordinator("telco").evidence().size() << " records, acme "
            << fed.coordinator("acme").evidence().size()
            << " records (chains intact: " << std::boolalpha
            << (fed.coordinator("telco").evidence().verify_chain() &&
                fed.coordinator("acme").evidence().verify_chain())
            << ")\n";
  return 0;
}
