// Figure 6 of the paper: the same game played through a trusted third
// party. The TTP holds a replica and validates every move before it can
// become agreed state — so a move the TTP's copy of the rules rejects
// never reaches the opponent as valid, and the TTP itself cannot move.
#include <iostream>

#include "apps/tictactoe.hpp"
#include "b2b/federation.hpp"

using namespace b2b;
using apps::Board;
using apps::Mark;
using apps::TicTacToeObject;

int main() {
  core::Federation fed{{"cross", "nought", "ttp"}};
  TicTacToeObject cross_obj{PartyId{"cross"}, PartyId{"nought"}};
  TicTacToeObject nought_obj{PartyId{"cross"}, PartyId{"nought"}};
  TicTacToeObject ttp_obj{PartyId{"cross"}, PartyId{"nought"}};
  const ObjectId game{"tictactoe-ttp"};
  fed.register_object("cross", game, cross_obj);
  fed.register_object("nought", game, nought_obj);
  fed.register_object("ttp", game, ttp_obj);
  fed.bootstrap_object(game, {"cross", "nought", "ttp"}, Board{}.encode());

  auto save = [&](const std::string& player, TicTacToeObject& obj, int row,
                  int col, Mark mark) {
    Board board = obj.board();
    if (!board.play(row, col, mark)) board.set(row, col, mark);
    obj.board() = board;
    core::RunHandle h =
        fed.coordinator(player).propagate_new_state(game, obj.get_state());
    fed.run_until_done(h);
    fed.settle();
    return h;
  };

  std::cout << "Every move is validated by the opponent AND the TTP "
               "(3-party coordination, 3(N-1) = 6 messages per move).\n\n";

  auto m1 = save("cross", cross_obj, 1, 1, Mark::kCross);
  std::cout << "Cross plays centre: "
            << (m1->outcome == core::RunResult::Outcome::kAgreed ? "agreed"
                                                                 : "vetoed")
            << "\n";
  auto m2 = save("nought", nought_obj, 0, 0, Mark::kNought);
  std::cout << "Nought plays top-left: "
            << (m2->outcome == core::RunResult::Outcome::kAgreed ? "agreed"
                                                                 : "vetoed")
            << "\n";

  // The cheat of Figure 5 — now caught by TWO independent validators.
  auto cheat = save("cross", cross_obj, 2, 1, Mark::kNought);
  std::cout << "Cross tries to mark a square with a zero: "
            << (cheat->outcome == core::RunResult::Outcome::kVetoed
                    ? "vetoed (" + cheat->diagnostic + ")"
                    : "agreed?!")
            << "\n";
  std::cout << "vetoed by: ";
  for (const auto& vetoer : cheat->vetoers) std::cout << vetoer << " ";
  std::cout << "\n";

  // The TTP can validate but cannot play.
  Board ttp_move = ttp_obj.board();
  ttp_move.set(2, 2, Mark::kCross);
  Bytes raw = ttp_move.encode();
  raw[10] = static_cast<std::uint8_t>(ttp_obj.board().move_count() + 1);
  ttp_obj.apply_state(raw);
  core::RunHandle ttp_h =
      fed.coordinator("ttp").propagate_new_state(game, ttp_obj.get_state());
  fed.run_until_done(ttp_h);
  fed.settle();
  std::cout << "TTP attempts a move of its own: "
            << (ttp_h->outcome == core::RunResult::Outcome::kVetoed
                    ? "vetoed (" + ttp_h->diagnostic + ")"
                    : "agreed?!")
            << "\n";

  std::cout << "\nFinal agreed position at the TTP:\n"
            << ttp_obj.board().render();
  return 0;
}
