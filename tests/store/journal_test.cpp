// Write-ahead journal: crash-atomic append semantics. Round trips,
// torn-tail truncation (what an interrupted append leaves behind),
// refusal to guess at non-tail corruption, incarnation counting,
// segment rolling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/error.hpp"
#include "store/journal.hpp"

namespace b2b::store {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("b2b_journal_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string segment(std::uint64_t index) const {
    char name[32];
    std::snprintf(name, sizeof(name), "wal-%08llu.seg",
                  static_cast<unsigned long long>(index));
    return dir_ + "/" + name;
  }

  void flip_byte_at(const std::string& path, long offset) {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, offset, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, offset, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }

  std::string dir_;
};

TEST_F(JournalTest, RoundTripAcrossReopen) {
  {
    Journal journal(dir_);
    EXPECT_EQ(journal.incarnation(), 1u);
    EXPECT_TRUE(journal.records().empty());
    journal.append(1, bytes_of("alpha"));
    journal.append(7, {});  // empty payload is a valid record
    journal.append(200, Bytes(1000, 0xab));
    journal.sync();
  }
  Journal reopened(dir_);
  EXPECT_EQ(reopened.incarnation(), 2u);
  EXPECT_EQ(reopened.truncated_bytes(), 0u);
  ASSERT_EQ(reopened.records().size(), 3u);
  EXPECT_EQ(reopened.records()[0].type, 1);
  EXPECT_EQ(reopened.records()[0].payload, bytes_of("alpha"));
  EXPECT_EQ(reopened.records()[1].type, 7);
  EXPECT_TRUE(reopened.records()[1].payload.empty());
  EXPECT_EQ(reopened.records()[2].type, 200);
  EXPECT_EQ(reopened.records()[2].payload, Bytes(1000, 0xab));
}

TEST_F(JournalTest, IncarnationCountsOpens) {
  for (std::uint64_t expected = 1; expected <= 4; ++expected) {
    Journal journal(dir_);
    EXPECT_EQ(journal.incarnation(), expected);
  }
}

TEST_F(JournalTest, TornTailPartialFrameIsTruncated) {
  {
    Journal journal(dir_);
    journal.append(1, bytes_of("keep me"));
    journal.sync();
  }
  // Simulate an append interrupted mid-frame: a few garbage bytes too
  // short to even hold the [len][crc] frame header.
  {
    std::FILE* f = std::fopen(segment(1).c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputc(0x42, f);
    std::fputc(0x42, f);
    std::fputc(0x42, f);
    std::fclose(f);
  }
  Journal reopened(dir_);
  EXPECT_EQ(reopened.truncated_bytes(), 3u);
  ASSERT_EQ(reopened.records().size(), 1u);
  EXPECT_EQ(reopened.records()[0].payload, bytes_of("keep me"));
  // The journal stays writable after truncating a torn tail.
  reopened.append(2, bytes_of("after recovery"));
  reopened.sync();
}

TEST_F(JournalTest, TornTailBadCrcIsTruncatedToValidPrefix) {
  {
    Journal journal(dir_);
    journal.append(1, bytes_of("first"));
    journal.append(2, bytes_of("second"));
    journal.sync();
  }
  // Flip a byte inside the *last* record's payload: exactly what a torn
  // write can leave behind. The valid prefix must survive.
  flip_byte_at(segment(1), static_cast<long>(fs::file_size(segment(1))) - 2);
  Journal reopened(dir_);
  EXPECT_GT(reopened.truncated_bytes(), 0u);
  ASSERT_EQ(reopened.records().size(), 1u);
  EXPECT_EQ(reopened.records()[0].payload, bytes_of("first"));
}

TEST_F(JournalTest, GarbageHeaderThrowsTypedError) {
  {
    Journal journal(dir_);
    journal.append(1, bytes_of("x"));
    journal.sync();
  }
  flip_byte_at(segment(1), 0);  // corrupt the magic
  EXPECT_THROW(Journal{dir_}, StoreError);
}

TEST_F(JournalTest, MidLogCorruptionInOlderSegmentThrows) {
  Journal::Options options;
  options.segment_bytes = 64;  // force rolling
  {
    Journal journal(dir_, options);
    for (int i = 0; i < 10; ++i) {
      journal.append(1, Bytes(40, static_cast<std::uint8_t>(i)));
    }
    journal.sync();
  }
  ASSERT_TRUE(fs::exists(segment(2)));
  // Corruption in a non-tail segment cannot be a torn append under the
  // write discipline: the journal must refuse rather than drop records.
  flip_byte_at(segment(1), 20);
  EXPECT_THROW(Journal(dir_, options), StoreError);
}

TEST_F(JournalTest, SegmentRollingPreservesOrder) {
  Journal::Options options;
  options.segment_bytes = 128;
  {
    Journal journal(dir_, options);
    for (std::uint8_t i = 0; i < 50; ++i) {
      journal.append(1, Bytes{i});
    }
    journal.sync();
  }
  std::size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++segments;
  }
  EXPECT_GT(segments, 1u);
  Journal reopened(dir_, options);
  ASSERT_EQ(reopened.records().size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(reopened.records()[i].payload, Bytes{i});
  }
}

TEST_F(JournalTest, FsyncOffStillRoundTrips) {
  Journal::Options options;
  options.fsync = false;
  {
    Journal journal(dir_, options);
    journal.append(3, bytes_of("no fsync"));
    journal.sync();
  }
  Journal reopened(dir_, options);
  ASSERT_EQ(reopened.records().size(), 1u);
  EXPECT_EQ(reopened.records()[0].payload, bytes_of("no fsync"));
}

}  // namespace
}  // namespace b2b::store
