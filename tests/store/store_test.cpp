// Persistence substrate: hash-chained evidence log (incl. tamper
// detection and file round trips), checkpoint store, message store.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "store/checkpoint_store.hpp"
#include "store/evidence_log.hpp"
#include "store/message_store.hpp"

namespace b2b::store {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("b2b_test_" + name))
      .string();
}

// --- EvidenceLog --------------------------------------------------------------

TEST(EvidenceLogTest, AppendAssignsIndicesAndChains) {
  EvidenceLog log;
  const EvidenceRecord& first = log.append("kind.a", Bytes{1}, 100);
  EXPECT_EQ(first.index, 0u);
  EXPECT_EQ(first.prev_hash, crypto::Digest{});
  const EvidenceRecord& second = log.append("kind.b", Bytes{2}, 200);
  EXPECT_EQ(second.index, 1u);
  EXPECT_EQ(second.prev_hash, log.at(0).record_hash);
  EXPECT_TRUE(log.verify_chain());
}

TEST(EvidenceLogTest, EmptyChainVerifies) {
  EvidenceLog log;
  EXPECT_TRUE(log.verify_chain());
  EXPECT_TRUE(log.empty());
}

TEST(EvidenceLogTest, FindKindFiltersRecords) {
  EvidenceLog log;
  log.append("violation", Bytes{1}, 1);
  log.append("propose.sent", Bytes{2}, 2);
  log.append("violation", Bytes{3}, 3);
  auto violations = log.find_kind("violation");
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0]->payload, Bytes{1});
  EXPECT_EQ(violations[1]->payload, Bytes{3});
  EXPECT_TRUE(log.find_kind("absent").empty());
}

TEST(EvidenceLogTest, AtOutOfRangeThrows) {
  EvidenceLog log;
  EXPECT_THROW(log.at(0), std::out_of_range);
}

TEST(EvidenceLogTest, RecordRoundTripsThroughBytes) {
  EvidenceLog log;
  log.append("k", Bytes{9, 9, 9}, 123456);
  EvidenceRecord decoded = EvidenceRecord::decode(log.at(0).encode());
  EXPECT_EQ(decoded, log.at(0));
}

TEST(EvidenceLogTest, SaveLoadRoundTrip) {
  std::string path = temp_path("evidence.log");
  EvidenceLog log;
  for (int i = 0; i < 20; ++i) {
    log.append("kind." + std::to_string(i % 3),
               Bytes(static_cast<std::size_t>(i), static_cast<uint8_t>(i)),
               static_cast<std::uint64_t>(i) * 1000);
  }
  log.save(path);
  EvidenceLog loaded = EvidenceLog::load(path);
  EXPECT_EQ(loaded.size(), 20u);
  EXPECT_TRUE(loaded.verify_chain());
  EXPECT_EQ(loaded.records(), log.records());
  std::remove(path.c_str());
}

TEST(EvidenceLogTest, LoadMissingFileThrows) {
  EXPECT_THROW(EvidenceLog::load("/nonexistent/dir/evidence.log"),
               StoreError);
}

TEST(EvidenceLogTest, TamperedFileFailsChainVerification) {
  std::string path = temp_path("tampered.log");
  EvidenceLog log;
  log.append("a", bytes_of("first"), 1);
  log.append("b", bytes_of("second"), 2);
  log.save(path);

  // Flip one payload byte in the file.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 60, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 60, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);

  bool detected = false;
  try {
    EvidenceLog loaded = EvidenceLog::load(path);
    detected = !loaded.verify_chain();
  } catch (const StoreError&) {
    detected = true;  // corruption broke framing entirely
  }
  EXPECT_TRUE(detected);
  std::remove(path.c_str());
}

TEST(EvidenceLogTest, TruncatedFileThrows) {
  std::string path = temp_path("truncated.log");
  EvidenceLog log;
  log.append("a", Bytes(100, 7), 1);
  log.save(path);
  std::filesystem::resize_file(path, 50);
  EXPECT_THROW(EvidenceLog::load(path), StoreError);
  std::remove(path.c_str());
}

// --- CheckpointStore ------------------------------------------------------------

TEST(CheckpointStoreTest, LatestReturnsMostRecent) {
  CheckpointStore store;
  ObjectId obj{"o"};
  EXPECT_FALSE(store.latest(obj).has_value());
  store.put(obj, Checkpoint{1, Bytes{1}, bytes_of("s1"), 10});
  store.put(obj, Checkpoint{2, Bytes{2}, bytes_of("s2"), 20});
  auto latest = store.latest(obj);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->sequence, 2u);
  EXPECT_EQ(latest->state, bytes_of("s2"));
}

TEST(CheckpointStoreTest, AtSequenceFindsHistoricStates) {
  CheckpointStore store;
  ObjectId obj{"o"};
  for (std::uint64_t s = 1; s <= 5; ++s) {
    store.put(obj, Checkpoint{s, {}, bytes_of("v" + std::to_string(s)), s});
  }
  auto cp = store.at_sequence(obj, 3);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->state, bytes_of("v3"));
  EXPECT_FALSE(store.at_sequence(obj, 99).has_value());
}

TEST(CheckpointStoreTest, HistoryIsOrderedAndCounted) {
  CheckpointStore store;
  ObjectId obj{"o"};
  store.put(obj, Checkpoint{1, {}, bytes_of("a"), 1});
  store.put(obj, Checkpoint{2, {}, bytes_of("b"), 2});
  EXPECT_EQ(store.count(obj), 2u);
  EXPECT_EQ(store.history(obj)[0].state, bytes_of("a"));
  EXPECT_TRUE(store.history(ObjectId{"other"}).empty());
  EXPECT_EQ(store.count(ObjectId{"other"}), 0u);
}

TEST(CheckpointStoreTest, SaveLoadRoundTrip) {
  std::string path = temp_path("checkpoints.bin");
  CheckpointStore store;
  store.put(ObjectId{"x"}, Checkpoint{1, Bytes{1, 2}, bytes_of("xs"), 11});
  store.put(ObjectId{"y"}, Checkpoint{5, Bytes{3}, bytes_of("ys"), 22});
  store.put(ObjectId{"y"}, Checkpoint{6, Bytes{4}, bytes_of("ys2"), 33});
  store.save(path);
  CheckpointStore loaded = CheckpointStore::load(path);
  EXPECT_EQ(loaded.count(ObjectId{"x"}), 1u);
  EXPECT_EQ(loaded.count(ObjectId{"y"}), 2u);
  EXPECT_EQ(loaded.latest(ObjectId{"y"})->state, bytes_of("ys2"));
  EXPECT_EQ(loaded.history(ObjectId{"x"}), store.history(ObjectId{"x"}));
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, LoadCorruptFileThrows) {
  std::string path = temp_path("corrupt_checkpoints.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage that is not a checkpoint store", f);
  std::fclose(f);
  EXPECT_THROW(CheckpointStore::load(path), StoreError);
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, LoadTruncatedFileThrows) {
  std::string path = temp_path("truncated_checkpoints.bin");
  CheckpointStore store;
  store.put(ObjectId{"x"}, Checkpoint{1, Bytes{1, 2}, Bytes(200, 0x5a), 11});
  store.save(path);
  std::filesystem::resize_file(
      path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW(CheckpointStore::load(path), StoreError);
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, LoadBitFlippedFileThrows) {
  std::string path = temp_path("bitflip_checkpoints.bin");
  CheckpointStore store;
  store.put(ObjectId{"x"}, Checkpoint{1, Bytes{1, 2}, bytes_of("state"), 11});
  store.save(path);
  // Flip a byte in the body: the CRC header must reject the file rather
  // than let damaged bytes reach the decoder.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -3, SEEK_END);
  int c = std::fgetc(f);
  std::fseek(f, -3, SEEK_END);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  EXPECT_THROW(CheckpointStore::load(path), StoreError);
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, ObserverSeesEveryPut) {
  CheckpointStore store;
  std::vector<std::pair<ObjectId, std::uint64_t>> seen;
  store.set_observer([&](const ObjectId& object, const Checkpoint& cp) {
    seen.emplace_back(object, cp.sequence);
  });
  store.put(ObjectId{"a"}, Checkpoint{1, {}, {}, 0});
  store.put(ObjectId{"b"}, Checkpoint{2, {}, {}, 0});
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, ObjectId{"a"});
  EXPECT_EQ(seen[1].second, 2u);
}

// --- MessageStore -----------------------------------------------------------------

TEST(MessageStoreTest, GroupsMessagesByRun) {
  MessageStore store;
  store.add("run1", {"sent", "propose", "bob", Bytes{1}});
  store.add("run1", {"received", "respond", "bob", Bytes{2}});
  store.add("run2", {"sent", "decide", "carol", Bytes{3}});
  EXPECT_EQ(store.run("run1").size(), 2u);
  EXPECT_EQ(store.run("run2").size(), 1u);
  EXPECT_TRUE(store.run("run3").empty());
  EXPECT_EQ(store.total_messages(), 3u);
  EXPECT_TRUE(store.has_run("run1"));
  EXPECT_FALSE(store.has_run("run3"));
}

TEST(MessageStoreTest, PreservesOrderWithinRun) {
  MessageStore store;
  for (int i = 0; i < 10; ++i) {
    store.add("r", {"sent", "propose", "peer", Bytes{static_cast<uint8_t>(i)}});
  }
  const auto& messages = store.run("r");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(messages[static_cast<std::size_t>(i)].payload[0], i);
  }
}

TEST(MessageStoreTest, RunLabelsSorted) {
  MessageStore store;
  store.add("b", {"sent", "k", "x", {}});
  store.add("a", {"sent", "k", "x", {}});
  store.add("c", {"sent", "k", "x", {}});
  EXPECT_EQ(store.run_labels(), (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace b2b::store
