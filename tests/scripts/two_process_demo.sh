#!/usr/bin/env sh
# Two-process federation demo: two b2bnode processes — separate OS
# processes wired only by a peers file and TCP on localhost — play the
# scripted Tic-Tac-Toe game to completion. Run twice:
#
#   Phase 1: plain game. Both processes must exit 0 (their own evidence
#            chains verify, the agreed game reaches Cross-wins) and print
#            identical FINAL lines (cross-process agreement).
#   Phase 2: cross _Exit()s mid-game right after its second agreed move,
#            then restarts from its write-ahead journal with a NEW port
#            and incarnation; the game must still complete identically.
#   Phase 3: same plain game on the reactor stack (--transport reactor,
#            one epoll loop per process instead of threads per peer).
#   Phase 4: mixed stacks — cross on reactor, nought on tcp — proving the
#            two runtimes speak one wire protocol across processes.
#   Phase 5: session-authenticated wire (--auth on both): per-connection
#            HMAC keys negotiated at each hello, every data/ack frame
#            MAC'd and verified — across real process boundaries.
#   Phase 6: auth on mixed stacks — the two runtimes negotiate and verify
#            the same session MACs against each other.
#   Phase 7: --deal — four scripted two-leg deals (§12) across two shared
#            registers: a commit, a vetoed deal whose legs all roll back,
#            and two more commits; both processes print the same FINAL.
#   Phase 8: deal crash — the initiator _Exit()s between journaling its
#            signed commit decision and replicating it (the
#            deal-decide.journaled crash point); the restart resumes the
#            deal from the write-ahead journal and must drive it to the
#            outcome the journaled decision fixed.
#
# usage: two_process_demo.sh /path/to/b2bnode
set -eu

B2BNODE="$1"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/b2bdemo.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

run_phase() {
    phase="$1"
    crash_flags="$2"
    cross_transport="${3:-tcp}"
    nought_transport="${4:-tcp}"
    extra_flags="${5:-}"
    dir="$WORK/$phase"
    mkdir -p "$dir/ports"

    cat > "$dir/peers.txt" <<EOF
# party host:port (0 = resolved via the port-dir port files)
cross 127.0.0.1:0
nought 127.0.0.1:0
EOF

    # shellcheck disable=SC2086  # crash/extra flags intentionally word-split
    "$B2BNODE" --party cross --peers "$dir/peers.txt" \
        --port-dir "$dir/ports" --journal "$dir/journal" \
        --transport "$cross_transport" $crash_flags $extra_flags \
        > "$dir/cross.log" 2>&1 &
    cross_pid=$!
    "$B2BNODE" --party nought --peers "$dir/peers.txt" \
        --port-dir "$dir/ports" --journal "$dir/journal" \
        --transport "$nought_transport" $extra_flags \
        > "$dir/nought.log" 2>&1 &
    nought_pid=$!

    cross_rc=0
    wait "$cross_pid" || cross_rc=$?
    if [ "$cross_rc" = 42 ]; then
        # The scripted crash. Restart from the journal; the surviving
        # nought process keeps retransmitting meanwhile.
        echo "[$phase] cross crashed as scripted, restarting from journal"
        "$B2BNODE" --party cross --peers "$dir/peers.txt" \
            --port-dir "$dir/ports" --journal "$dir/journal" \
            --transport "$cross_transport" $extra_flags \
            >> "$dir/cross.log" 2>&1 &
        cross_pid=$!
        cross_rc=0
        wait "$cross_pid" || cross_rc=$?
    fi
    nought_rc=0
    wait "$nought_pid" || nought_rc=$?

    if [ "$cross_rc" != 0 ] || [ "$nought_rc" != 0 ]; then
        echo "[$phase] FAIL: exit codes cross=$cross_rc nought=$nought_rc"
        sed 's/^/  cross  | /' "$dir/cross.log"
        sed 's/^/  nought | /' "$dir/nought.log"
        exit 1
    fi

    cross_final="$(grep '^FINAL ' "$dir/cross.log" | tail -n 1)"
    nought_final="$(grep '^FINAL ' "$dir/nought.log" | tail -n 1)"
    if [ -z "$cross_final" ] || [ "$cross_final" != "$nought_final" ]; then
        echo "[$phase] FAIL: FINAL lines disagree"
        echo "  cross:  $cross_final"
        echo "  nought: $nought_final"
        exit 1
    fi
    echo "[$phase] OK: $cross_final"
}

run_phase plain ""
run_phase crash "--crash-after 2"
run_phase reactor "" reactor reactor
run_phase mixed "" reactor tcp
run_phase auth "" tcp tcp "--auth"
run_phase auth_mixed "" reactor tcp "--auth"
run_phase deal "" tcp tcp "--deal"
run_phase deal_crash "--crash-after 3" tcp tcp "--deal"
echo "two-process demo passed"
