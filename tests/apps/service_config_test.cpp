// OSS dispersal (§2 scenario 2): rule units and end-to-end sharing of a
// service configuration between provider and customer.
#include "apps/service_config.hpp"

#include <gtest/gtest.h>

#include "b2b/federation.hpp"

namespace b2b::apps {
namespace {

using core::RunHandle;
using core::RunResult;

ServiceConfig base_config() {
  ServiceConfig c;
  c.max_bandwidth_mbps = 100;
  c.max_qos_class = 3;
  c.maintenance_window = "Sun 02:00-04:00";
  c.bandwidth_mbps = 10;
  c.qos_class = 1;
  c.fault_contact = "noc@customer.example";
  return c;
}

// --- rule units -----------------------------------------------------------------

TEST(OssRulesTest, CustomerTunesWithinEnvelope) {
  ServiceConfig current = base_config();
  ServiceConfig proposed = current;
  proposed.bandwidth_mbps = 50;
  proposed.qos_class = 3;
  EXPECT_FALSE(
      oss_rule_violation(current, proposed, OssRole::kCustomer).has_value());
}

TEST(OssRulesTest, CustomerCannotExceedEnvelope) {
  ServiceConfig current = base_config();
  ServiceConfig proposed = current;
  proposed.bandwidth_mbps = 101;
  auto veto = oss_rule_violation(current, proposed, OssRole::kCustomer);
  ASSERT_TRUE(veto.has_value());
  EXPECT_NE(veto->find("envelope"), std::string::npos);

  proposed = current;
  proposed.qos_class = 4;
  EXPECT_TRUE(
      oss_rule_violation(current, proposed, OssRole::kCustomer).has_value());
}

TEST(OssRulesTest, CustomerCannotTouchProviderFields) {
  ServiceConfig current = base_config();
  ServiceConfig proposed = current;
  proposed.max_bandwidth_mbps = 1000;  // self-upgrade attempt
  EXPECT_TRUE(
      oss_rule_violation(current, proposed, OssRole::kCustomer).has_value());
  proposed = current;
  proposed.maintenance_window = "never";
  EXPECT_TRUE(
      oss_rule_violation(current, proposed, OssRole::kCustomer).has_value());
}

TEST(OssRulesTest, ProviderOwnsEnvelopeButNotSelection) {
  ServiceConfig current = base_config();
  ServiceConfig proposed = current;
  proposed.max_bandwidth_mbps = 200;
  proposed.maintenance_window = "Sat 01:00-03:00";
  EXPECT_FALSE(
      oss_rule_violation(current, proposed, OssRole::kProvider).has_value());

  proposed = current;
  proposed.bandwidth_mbps = 1;  // throttling the customer's selection
  EXPECT_TRUE(
      oss_rule_violation(current, proposed, OssRole::kProvider).has_value());
}

TEST(OssRulesTest, ProviderCannotShrinkEnvelopeBelowUsage) {
  ServiceConfig current = base_config();
  current.bandwidth_mbps = 80;
  ServiceConfig proposed = current;
  proposed.max_bandwidth_mbps = 50;  // below the customer's current 80
  auto veto = oss_rule_violation(current, proposed, OssRole::kProvider);
  ASSERT_TRUE(veto.has_value());
  EXPECT_NE(veto->find("shrink"), std::string::npos);
}

TEST(OssRulesTest, EnabledServiceNeedsBandwidth) {
  ServiceConfig current = base_config();
  ServiceConfig proposed = current;
  proposed.bandwidth_mbps = 0;
  EXPECT_TRUE(
      oss_rule_violation(current, proposed, OssRole::kCustomer).has_value());
  proposed.service_enabled = false;  // disabling with 0 bandwidth is fine
  EXPECT_FALSE(
      oss_rule_violation(current, proposed, OssRole::kCustomer).has_value());
}

TEST(OssConfigTest, EncodeDecodeRoundTrip) {
  ServiceConfig c = base_config();
  EXPECT_EQ(ServiceConfig::decode(c.encode()), c);
}

// --- end-to-end -------------------------------------------------------------------

const ObjectId kSvc{"service-config"};

struct OssFixture {
  core::Federation fed{{"provider", "customer"}};
  ServiceConfigObject provider_obj{PartyId{"provider"}, PartyId{"customer"}};
  ServiceConfigObject customer_obj{PartyId{"provider"}, PartyId{"customer"}};

  OssFixture() {
    fed.register_object("provider", kSvc, provider_obj);
    fed.register_object("customer", kSvc, customer_obj);
    fed.bootstrap_object(kSvc, {"provider", "customer"},
                         base_config().encode());
  }

  RunHandle coordinate(const std::string& who, ServiceConfigObject& obj) {
    RunHandle h =
        fed.coordinator(who).propagate_new_state(kSvc, obj.get_state());
    fed.run_until_done(h);
    fed.settle();
    return h;
  }
};

TEST(OssDispersal, CustomerSelfServiceWithinEnvelope) {
  OssFixture t;
  t.customer_obj.config().bandwidth_mbps = 75;
  t.customer_obj.config().qos_class = 2;
  EXPECT_EQ(t.coordinate("customer", t.customer_obj)->outcome,
            RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.provider_obj.config().bandwidth_mbps, 75u);
}

TEST(OssDispersal, CustomerSelfUpgradeIsVetoedByProvider) {
  OssFixture t;
  t.customer_obj.config().max_bandwidth_mbps = 10'000;
  t.customer_obj.config().bandwidth_mbps = 9'000;
  RunHandle h = t.coordinate("customer", t.customer_obj);
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(t.customer_obj.config(), base_config());  // rolled back
}

TEST(OssDispersal, ProviderUpgradesEnvelopeThenCustomerUsesIt) {
  OssFixture t;
  t.provider_obj.config().max_bandwidth_mbps = 500;
  ASSERT_EQ(t.coordinate("provider", t.provider_obj)->outcome,
            RunResult::Outcome::kAgreed);
  t.customer_obj.config().bandwidth_mbps = 400;
  EXPECT_EQ(t.coordinate("customer", t.customer_obj)->outcome,
            RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.provider_obj.config().bandwidth_mbps, 400u);
}

TEST(OssDispersal, ProviderCannotThrottleCustomer) {
  OssFixture t;
  t.provider_obj.config().bandwidth_mbps = 1;
  RunHandle h = t.coordinate("provider", t.provider_obj);
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  EXPECT_NE(h->diagnostic.find("belongs to the customer"), std::string::npos);
  EXPECT_EQ(t.customer_obj.config().bandwidth_mbps, 10u);
}

}  // namespace
}  // namespace b2b::apps
