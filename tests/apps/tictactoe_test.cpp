// Tic-Tac-Toe: board rules in isolation, then the paper's Figure 5
// scenario end-to-end (including the cheat attempt) and the Figure 6 TTP
// variant.
#include "apps/tictactoe.hpp"

#include <gtest/gtest.h>

#include "b2b/federation.hpp"
#include "common/error.hpp"

namespace b2b::apps {
namespace {

using core::RunHandle;
using core::RunResult;

// --- Board rules ---------------------------------------------------------------

TEST(BoardTest, StartsEmptyCrossToPlay) {
  Board board;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(board.at(r, c), Mark::kEmpty);
  }
  EXPECT_EQ(board.next_turn(), Mark::kCross);
  EXPECT_EQ(board.status(), GameStatus::kInProgress);
}

TEST(BoardTest, PlayAlternatesTurns) {
  Board board;
  EXPECT_TRUE(board.play(1, 1, Mark::kCross));
  EXPECT_EQ(board.next_turn(), Mark::kNought);
  EXPECT_FALSE(board.play(0, 0, Mark::kCross));  // out of turn
  EXPECT_TRUE(board.play(0, 0, Mark::kNought));
}

TEST(BoardTest, CannotClaimOccupiedSquare) {
  Board board;
  board.play(1, 1, Mark::kCross);
  EXPECT_FALSE(board.play(1, 1, Mark::kNought));
}

TEST(BoardTest, DetectsRowColumnDiagonalWins) {
  {
    Board b;  // top row for cross
    b.play(0, 0, Mark::kCross);
    b.play(1, 0, Mark::kNought);
    b.play(0, 1, Mark::kCross);
    b.play(1, 1, Mark::kNought);
    b.play(0, 2, Mark::kCross);
    EXPECT_EQ(b.status(), GameStatus::kCrossWins);
  }
  {
    Board b;  // left column for nought
    b.play(2, 2, Mark::kCross);
    b.play(0, 0, Mark::kNought);
    b.play(2, 1, Mark::kCross);
    b.play(1, 0, Mark::kNought);
    b.play(1, 2, Mark::kCross);
    b.play(2, 0, Mark::kNought);
    EXPECT_EQ(b.status(), GameStatus::kNoughtWins);
  }
  {
    Board b;  // main diagonal for cross
    b.play(0, 0, Mark::kCross);
    b.play(0, 1, Mark::kNought);
    b.play(1, 1, Mark::kCross);
    b.play(0, 2, Mark::kNought);
    b.play(2, 2, Mark::kCross);
    EXPECT_EQ(b.status(), GameStatus::kCrossWins);
  }
}

TEST(BoardTest, DrawAfterNineMoves) {
  Board b;
  // X O X / X O O / O X X — no line.
  b.play(0, 0, Mark::kCross);
  b.play(0, 1, Mark::kNought);
  b.play(0, 2, Mark::kCross);
  b.play(1, 1, Mark::kNought);
  b.play(1, 0, Mark::kCross);
  b.play(1, 2, Mark::kNought);
  b.play(2, 1, Mark::kCross);
  b.play(2, 0, Mark::kNought);
  b.play(2, 2, Mark::kCross);
  EXPECT_EQ(b.status(), GameStatus::kDraw);
}

TEST(BoardTest, NoPlayAfterGameOver) {
  Board b;
  b.play(0, 0, Mark::kCross);
  b.play(1, 0, Mark::kNought);
  b.play(0, 1, Mark::kCross);
  b.play(1, 1, Mark::kNought);
  b.play(0, 2, Mark::kCross);  // cross wins
  EXPECT_FALSE(b.play(2, 2, Mark::kNought));
}

TEST(BoardTest, EncodeDecodeRoundTrip) {
  Board b;
  b.play(1, 1, Mark::kCross);
  b.play(0, 2, Mark::kNought);
  EXPECT_EQ(Board::decode(b.encode()), b);
}

TEST(BoardTest, DecodeRejectsInvalidCells) {
  Board b;
  Bytes data = b.encode();
  data[0] = 9;
  EXPECT_THROW(Board::decode(data), CodecError);
}

TEST(BoardTest, OutOfRangeCellThrows) {
  Board b;
  EXPECT_THROW(b.at(3, 0), std::out_of_range);
  EXPECT_THROW(b.at(0, -1), std::out_of_range);
}

TEST(BoardTest, RenderShowsMarks) {
  Board b;
  b.play(1, 1, Mark::kCross);
  EXPECT_EQ(b.render(), ". . .\n. X .\n. . .\n");
}

// --- transition rules (validation core) -------------------------------------------

TEST(TransitionTest, LegalMoveHasNoViolation) {
  Board before;
  Board after = before;
  after.play(1, 1, Mark::kCross);
  EXPECT_FALSE(illegal_transition(before, after, Mark::kCross).has_value());
}

TEST(TransitionTest, MarkingWithOpponentsSymbolRejected) {
  // The Figure 5 cheat in pure form: Cross writes a Nought.
  Board before;
  Board after = before;
  after.set(2, 1, Mark::kNought);
  // Fake the bookkeeping a cheater would fake:
  Board crafted = Board::decode([&] {
    Bytes raw = after.encode();
    raw[9] = 2;                  // next_turn = nought... keep consistent-ish
    raw[10] = 1;                 // move_count = 1
    return raw;
  }());
  auto veto = illegal_transition(before, crafted, Mark::kCross);
  ASSERT_TRUE(veto.has_value());
  EXPECT_NE(veto->find("opponent"), std::string::npos);
}

TEST(TransitionTest, NonPlayerMayNotMove) {
  Board before;
  Board after = before;
  after.play(0, 0, Mark::kCross);
  auto veto = illegal_transition(before, after, std::nullopt);
  ASSERT_TRUE(veto.has_value());
}

TEST(TransitionTest, MultipleSquaresRejected) {
  Board before;
  Board after = before;
  after.play(0, 0, Mark::kCross);
  Bytes raw = after.encode();
  raw[4] = 1;  // also claim centre
  auto veto = illegal_transition(before, Board::decode(raw), Mark::kCross);
  ASSERT_TRUE(veto.has_value());
  EXPECT_NE(veto->find("more than one"), std::string::npos);
}

// --- Figure 5, end-to-end (experiment E1) ------------------------------------------

const ObjectId kGame{"tictactoe"};

struct GameFixture {
  core::Federation fed{{"cross", "nought"}};
  TicTacToeObject cross_obj{PartyId{"cross"}, PartyId{"nought"}};
  TicTacToeObject nought_obj{PartyId{"cross"}, PartyId{"nought"}};

  GameFixture() {
    fed.register_object("cross", kGame, cross_obj);
    fed.register_object("nought", kGame, nought_obj);
    fed.bootstrap_object(kGame, {"cross", "nought"}, Board{}.encode());
  }

  /// "Save" at the given player's client: apply locally and coordinate.
  RunHandle save_move(const std::string& player, int row, int col,
                      Mark mark) {
    TicTacToeObject& obj =
        player == "cross" ? cross_obj : nought_obj;
    Board updated = obj.board();
    if (!updated.play(row, col, mark)) {
      // Allow deliberately illegal boards to be crafted by the caller.
      updated.set(row, col, mark);
    }
    obj.board() = updated;
    RunHandle h = fed.coordinator(player).propagate_new_state(
        kGame, obj.get_state());
    fed.run_until_done(h);
    fed.settle();
    return h;
  }
};

TEST(TicTacToeFig5, PaperScenarioReplaysExactly) {
  GameFixture t;
  // Cross claims middle row, centre square.
  EXPECT_EQ(t.save_move("cross", 1, 1, Mark::kCross)->outcome,
            RunResult::Outcome::kAgreed);
  // Nought claims top row, left square.
  EXPECT_EQ(t.save_move("nought", 0, 0, Mark::kNought)->outcome,
            RunResult::Outcome::kAgreed);
  // Cross claims middle row, right square.
  EXPECT_EQ(t.save_move("cross", 1, 2, Mark::kCross)->outcome,
            RunResult::Outcome::kAgreed);

  Board before_cheat = t.nought_obj.board();

  // "Cross attempts to mark bottom row, centre square with a zero."
  RunHandle cheat = t.save_move("cross", 2, 1, Mark::kNought);
  EXPECT_EQ(cheat->outcome, RunResult::Outcome::kVetoed);

  // "The state change is invalid and is not reflected at Nought's server."
  EXPECT_EQ(t.nought_obj.board(), before_cheat);
  // "The agreed state of the game has not been updated" — and Cross's own
  // replica rolled back to it.
  EXPECT_EQ(t.cross_obj.board(), before_cheat);
  // "Nought will have evidence of the attempt to cheat": the proposal and
  // Nought's signed veto are in Nought's stores.
  const auto& evidence = t.fed.coordinator("nought").evidence();
  EXPECT_FALSE(evidence.find_kind("propose.recv").empty());
  EXPECT_FALSE(evidence.find_kind("respond.sent").empty());
  EXPECT_TRUE(evidence.verify_chain());
}

TEST(TicTacToeFig5, HonestGamePlaysToWin) {
  GameFixture t;
  EXPECT_EQ(t.save_move("cross", 0, 0, Mark::kCross)->outcome,
            RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.save_move("nought", 1, 0, Mark::kNought)->outcome,
            RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.save_move("cross", 0, 1, Mark::kCross)->outcome,
            RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.save_move("nought", 1, 1, Mark::kNought)->outcome,
            RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.save_move("cross", 0, 2, Mark::kCross)->outcome,
            RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.nought_obj.board().status(), GameStatus::kCrossWins);
  // No further move can be agreed.
  EXPECT_EQ(t.save_move("nought", 2, 2, Mark::kNought)->outcome,
            RunResult::Outcome::kVetoed);
}

TEST(TicTacToeFig5, OutOfTurnMoveVetoed) {
  GameFixture t;
  EXPECT_EQ(t.save_move("cross", 1, 1, Mark::kCross)->outcome,
            RunResult::Outcome::kAgreed);
  // Cross tries to move again immediately.
  RunHandle h = t.save_move("cross", 0, 0, Mark::kCross);
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  EXPECT_NE(h->diagnostic.find("turn"), std::string::npos);
}

// --- Figure 6: play through a TTP (experiment E2) -----------------------------------

TEST(TicTacToeTtp, ThirdPartyValidatesEveryMove) {
  core::Federation fed{{"cross", "nought", "ttp"}};
  TicTacToeObject cross_obj{PartyId{"cross"}, PartyId{"nought"}};
  TicTacToeObject nought_obj{PartyId{"cross"}, PartyId{"nought"}};
  TicTacToeObject ttp_obj{PartyId{"cross"}, PartyId{"nought"}};
  fed.register_object("cross", kGame, cross_obj);
  fed.register_object("nought", kGame, nought_obj);
  fed.register_object("ttp", kGame, ttp_obj);
  fed.bootstrap_object(kGame, {"cross", "nought", "ttp"}, Board{}.encode());

  // A legal move is agreed by opponent AND TTP.
  Board updated = cross_obj.board();
  ASSERT_TRUE(updated.play(1, 1, Mark::kCross));
  cross_obj.board() = updated;
  RunHandle h =
      fed.coordinator("cross").propagate_new_state(kGame, cross_obj.get_state());
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(ttp_obj.board().at(1, 1), Mark::kCross);

  // The TTP itself cannot make moves.
  Board ttp_move = ttp_obj.board();
  ttp_move.set(0, 0, Mark::kNought);
  Bytes raw = ttp_move.encode();
  raw[9] = 1;   // next_turn
  raw[10] = 2;  // move_count
  ttp_obj.apply_state(raw);
  RunHandle bad =
      fed.coordinator("ttp").propagate_new_state(kGame, ttp_obj.get_state());
  ASSERT_TRUE(fed.run_until_done(bad));
  EXPECT_EQ(bad->outcome, RunResult::Outcome::kVetoed);
  EXPECT_NE(bad->diagnostic.find("not a player"), std::string::npos);
}

}  // namespace
}  // namespace b2b::apps
