// Distributed auction (scenario 3 of §2, experiment E5): bid validation by
// all houses, monotone bidding, seller-only closing, and the "same chance
// irrespective of server" property.
#include "apps/auction.hpp"

#include <gtest/gtest.h>

#include "b2b/federation.hpp"

namespace b2b::apps {
namespace {

using core::RunHandle;
using core::RunResult;

AuctionState open_auction() {
  AuctionState s;
  s.item = "painting";
  s.reserve_cents = 10'000;
  return s;
}

// --- rule units -----------------------------------------------------------------

TEST(AuctionRulesTest, FirstBidMustMeetReserve) {
  AuctionState current = open_auction();
  AuctionState proposed = current;
  proposed.highest_bid_cents = 9'999;
  proposed.highest_bidder = "client1";
  proposed.bidder_house = "house1";
  proposed.bid_count = 1;
  auto veto = auction_rule_violation(current, proposed, PartyId{"house1"},
                                     PartyId{"house1"});
  ASSERT_TRUE(veto.has_value());
  EXPECT_NE(veto->find("reserve"), std::string::npos);

  proposed.highest_bid_cents = 10'000;
  EXPECT_FALSE(auction_rule_violation(current, proposed, PartyId{"house1"},
                                      PartyId{"house1"})
                   .has_value());
}

TEST(AuctionRulesTest, BidsMustStrictlyIncrease) {
  AuctionState current = open_auction();
  current.highest_bid_cents = 20'000;
  current.highest_bidder = "client1";
  current.bidder_house = "house1";
  current.bid_count = 1;

  AuctionState proposed = current;
  proposed.highest_bid_cents = 20'000;  // equal, not greater
  proposed.highest_bidder = "client2";
  proposed.bidder_house = "house2";
  proposed.bid_count = 2;
  EXPECT_TRUE(auction_rule_violation(current, proposed, PartyId{"house2"},
                                     PartyId{"house1"})
                  .has_value());
  proposed.highest_bid_cents = 20'001;
  EXPECT_FALSE(auction_rule_violation(current, proposed, PartyId{"house2"},
                                      PartyId{"house1"})
                   .has_value());
}

TEST(AuctionRulesTest, HouseCannotBidThroughAnotherHouse) {
  AuctionState current = open_auction();
  AuctionState proposed = current;
  proposed.highest_bid_cents = 15'000;
  proposed.highest_bidder = "client1";
  proposed.bidder_house = "house2";  // claims house2 relayed it
  proposed.bid_count = 1;
  auto veto = auction_rule_violation(current, proposed, PartyId{"house1"},
                                     PartyId{"house1"});
  ASSERT_TRUE(veto.has_value());
}

TEST(AuctionRulesTest, OnlySellerMayClose) {
  AuctionState current = open_auction();
  AuctionState proposed = current;
  proposed.closed = true;
  EXPECT_TRUE(auction_rule_violation(current, proposed, PartyId{"house2"},
                                     PartyId{"house1"})
                  .has_value());
  EXPECT_FALSE(auction_rule_violation(current, proposed, PartyId{"house1"},
                                      PartyId{"house1"})
                   .has_value());
}

TEST(AuctionRulesTest, ClosingMayNotSmuggleBidChanges) {
  AuctionState current = open_auction();
  AuctionState proposed = current;
  proposed.closed = true;
  proposed.highest_bid_cents = 1;
  proposed.bid_count = 1;
  proposed.highest_bidder = "crony";
  proposed.bidder_house = "house1";
  EXPECT_TRUE(auction_rule_violation(current, proposed, PartyId{"house1"},
                                     PartyId{"house1"})
                  .has_value());
}

TEST(AuctionRulesTest, NoChangesAfterClose) {
  AuctionState current = open_auction();
  current.closed = true;
  AuctionState proposed = current;
  proposed.highest_bid_cents = 99'000;
  proposed.highest_bidder = "late";
  proposed.bidder_house = "house2";
  proposed.bid_count = 1;
  EXPECT_TRUE(auction_rule_violation(current, proposed, PartyId{"house2"},
                                     PartyId{"house1"})
                  .has_value());
}

TEST(AuctionRulesTest, LotIsImmutable) {
  AuctionState current = open_auction();
  AuctionState proposed = current;
  proposed.item = "different painting";
  EXPECT_TRUE(auction_rule_violation(current, proposed, PartyId{"house1"},
                                     PartyId{"house1"})
                  .has_value());
  proposed = current;
  proposed.reserve_cents = 1;
  EXPECT_TRUE(auction_rule_violation(current, proposed, PartyId{"house1"},
                                     PartyId{"house1"})
                  .has_value());
}

TEST(AuctionStateTest, EncodeDecodeRoundTrip) {
  AuctionState s = open_auction();
  s.highest_bid_cents = 42'000;
  s.highest_bidder = "client9";
  s.bidder_house = "house3";
  s.bid_count = 7;
  EXPECT_EQ(AuctionState::decode(s.encode()), s);
}

// --- end-to-end across three auction houses --------------------------------------

const ObjectId kLot{"lot-17"};

struct AuctionFixture {
  core::Federation fed{{"house1", "house2", "house3"}};
  AuctionObject h1{PartyId{"house1"}};
  AuctionObject h2{PartyId{"house1"}};
  AuctionObject h3{PartyId{"house1"}};

  AuctionFixture() {
    fed.register_object("house1", kLot, h1);
    fed.register_object("house2", kLot, h2);
    fed.register_object("house3", kLot, h3);
    fed.bootstrap_object(kLot, {"house1", "house2", "house3"},
                         open_auction().encode());
  }

  AuctionObject& obj(const std::string& house) {
    if (house == "house1") return h1;
    if (house == "house2") return h2;
    return h3;
  }

  RunHandle bid(const std::string& house, const std::string& client,
                std::uint64_t amount) {
    obj(house).place_bid(PartyId{house}, client, amount);
    RunHandle h = fed.coordinator(house).propagate_new_state(
        kLot, obj(house).get_state());
    fed.run_until_done(h);
    fed.settle();
    return h;
  }
};

TEST(AuctionE2E, BidsThroughDifferentHousesInterleave) {
  AuctionFixture t;
  EXPECT_EQ(t.bid("house2", "alice", 12'000)->outcome,
            RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.bid("house3", "bob", 15'000)->outcome,
            RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.bid("house1", "carol", 20'000)->outcome,
            RunResult::Outcome::kAgreed);
  // Every house sees the same winner-so-far.
  for (const char* house : {"house1", "house2", "house3"}) {
    EXPECT_EQ(t.obj(house).state().highest_bidder, "carol") << house;
    EXPECT_EQ(t.obj(house).state().highest_bid_cents, 20'000u) << house;
    EXPECT_EQ(t.obj(house).state().bid_count, 3u) << house;
  }
}

TEST(AuctionE2E, LowballBidIsVetoedByOtherHouses) {
  AuctionFixture t;
  ASSERT_EQ(t.bid("house2", "alice", 12'000)->outcome,
            RunResult::Outcome::kAgreed);
  RunHandle low = t.bid("house3", "bob", 11'000);
  EXPECT_EQ(low->outcome, RunResult::Outcome::kVetoed);
  // house3's replica rolled back: alice still leads everywhere.
  EXPECT_EQ(t.obj("house3").state().highest_bidder, "alice");
}

TEST(AuctionE2E, SellerClosesAndLateBidsFail) {
  AuctionFixture t;
  ASSERT_EQ(t.bid("house2", "alice", 12'000)->outcome,
            RunResult::Outcome::kAgreed);
  t.obj("house1").close();
  RunHandle close_h = t.fed.coordinator("house1").propagate_new_state(
      kLot, t.obj("house1").get_state());
  ASSERT_TRUE(t.fed.run_until_done(close_h));
  EXPECT_EQ(close_h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();

  RunHandle late = t.bid("house2", "dave", 50'000);
  EXPECT_EQ(late->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(t.obj("house2").state().highest_bidder, "alice");
  EXPECT_TRUE(t.obj("house2").state().closed);
}

TEST(AuctionE2E, NonSellerCannotClose) {
  AuctionFixture t;
  t.obj("house2").close();
  RunHandle h = t.fed.coordinator("house2").propagate_new_state(
      kLot, t.obj("house2").get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  t.fed.settle();
  EXPECT_FALSE(t.obj("house1").state().closed);
  EXPECT_FALSE(t.obj("house2").state().closed);  // rolled back
}

}  // namespace
}  // namespace b2b::apps
