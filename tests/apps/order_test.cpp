// Order processing: document/ops units, asymmetric role rules, the paper's
// Figure 7 scenario end-to-end, the four-party variant (E3/E4), and the
// update-variant coordination.
#include "apps/order.hpp"

#include <gtest/gtest.h>

#include "b2b/federation.hpp"
#include "common/error.hpp"

namespace b2b::apps {
namespace {

using core::RunHandle;
using core::RunResult;

// --- OrderDocument units ---------------------------------------------------------

TEST(OrderDocumentTest, AddFindRemove) {
  OrderDocument doc;
  doc.add_line("widget1", 2);
  ASSERT_NE(doc.find("widget1"), nullptr);
  EXPECT_EQ(doc.find("widget1")->quantity, 2u);
  EXPECT_EQ(doc.find("nothing"), nullptr);
  doc.remove_line("widget1");
  EXPECT_EQ(doc.find("widget1"), nullptr);
}

TEST(OrderDocumentTest, RejectsDuplicatesAndZeroQuantity) {
  OrderDocument doc;
  doc.add_line("w", 1);
  EXPECT_THROW(doc.add_line("w", 2), Error);
  EXPECT_THROW(doc.add_line("x", 0), Error);
  EXPECT_THROW(doc.remove_line("absent"), Error);
}

TEST(OrderDocumentTest, EncodeDecodeRoundTrip) {
  OrderDocument doc;
  doc.add_line("widget1", 2);
  doc.find("widget1")->unit_price_cents = 1000;
  doc.add_line("widget2", 10);
  doc.find("widget2")->approved = true;
  doc.find("widget2")->delivery_days = 5;
  EXPECT_EQ(OrderDocument::decode(doc.encode()), doc);
}

TEST(OrderDocumentTest, DecodeRejectsDuplicateItems) {
  OrderDocument doc;
  doc.add_line("w", 1);
  Bytes raw = doc.encode();
  // Craft a two-line doc with the same item by doubling the line.
  wire::Encoder enc;
  enc.varint(2);
  wire::Decoder dec{raw};
  dec.varint();
  Bytes line = dec.raw(dec.remaining());
  enc.raw(line).raw(line);
  EXPECT_THROW(OrderDocument::decode(enc.bytes()), CodecError);
}

// --- ops / diff --------------------------------------------------------------------

TEST(OrderOpsTest, DiffAndApplyRoundTrip) {
  OrderDocument from;
  from.add_line("keep", 1);
  from.add_line("drop", 2);
  from.add_line("reprice", 3);

  OrderDocument to;
  to.add_line("keep", 1);
  to.add_line("reprice", 3);
  to.find("reprice")->unit_price_cents = 999;
  to.add_line("fresh", 7);

  std::vector<OrderOp> ops = diff_orders(from, to);
  OrderDocument applied = from;
  apply_order_ops(applied, ops);
  EXPECT_EQ(applied, to);
}

TEST(OrderOpsTest, EncodeDecodeRoundTrip) {
  std::vector<OrderOp> ops{
      {OrderOp::Kind::kAddLine, "a", 3},
      {OrderOp::Kind::kSetPrice, "a", 12345},
      {OrderOp::Kind::kApprove, "a", 0},
      {OrderOp::Kind::kRemoveLine, "b", 0},
  };
  EXPECT_EQ(decode_order_ops(encode_order_ops(ops)), ops);
}

TEST(OrderOpsTest, InapplicableOpsThrow) {
  OrderDocument doc;
  EXPECT_THROW(
      apply_order_ops(doc, {{OrderOp::Kind::kSetPrice, "missing", 1}}), Error);
  EXPECT_THROW(
      apply_order_ops(doc, {{OrderOp::Kind::kRemoveLine, "missing", 0}}),
      Error);
  doc.add_line("x", 1);
  EXPECT_THROW(
      apply_order_ops(doc, {{OrderOp::Kind::kSetQuantity, "x", 0}}), Error);
}

// --- role rules ---------------------------------------------------------------------

TEST(OrderRulesTest, CustomerMayAddButNotPrice) {
  OrderDocument current;
  OrderDocument proposed;
  proposed.add_line("w", 2);
  EXPECT_FALSE(
      order_rule_violation(current, proposed, OrderRole::kCustomer).has_value());

  proposed.find("w")->unit_price_cents = 100;  // customer self-pricing
  EXPECT_TRUE(
      order_rule_violation(current, proposed, OrderRole::kCustomer).has_value());
}

TEST(OrderRulesTest, SupplierMayPriceButNotAmend) {
  OrderDocument current;
  current.add_line("w", 2);
  OrderDocument proposed = current;
  proposed.find("w")->unit_price_cents = 1000;
  EXPECT_FALSE(
      order_rule_violation(current, proposed, OrderRole::kSupplier).has_value());

  proposed.find("w")->quantity = 99;  // supplier changing quantity
  auto veto = order_rule_violation(current, proposed, OrderRole::kSupplier);
  ASSERT_TRUE(veto.has_value());
  EXPECT_NE(veto->find("customer"), std::string::npos);
}

TEST(OrderRulesTest, SupplierMayNotAddOrRemove) {
  OrderDocument current;
  current.add_line("w", 2);
  OrderDocument added = current;
  added.add_line("extra", 1);
  EXPECT_TRUE(
      order_rule_violation(current, added, OrderRole::kSupplier).has_value());
  OrderDocument removed;
  EXPECT_TRUE(
      order_rule_violation(current, removed, OrderRole::kSupplier).has_value());
}

TEST(OrderRulesTest, ApproverOnlyTogglesApproval) {
  OrderDocument current;
  current.add_line("w", 2);
  OrderDocument proposed = current;
  proposed.find("w")->approved = true;
  EXPECT_FALSE(
      order_rule_violation(current, proposed, OrderRole::kApprover).has_value());
  EXPECT_TRUE(
      order_rule_violation(current, proposed, OrderRole::kCustomer).has_value());
  // Approval is one-way.
  OrderDocument revoked = current;
  EXPECT_TRUE(order_rule_violation(proposed, revoked, OrderRole::kApprover)
                  .has_value());
}

TEST(OrderRulesTest, DispatcherNeedsApprovedItems) {
  OrderDocument current;
  current.add_line("w", 2);
  OrderDocument proposed = current;
  proposed.find("w")->delivery_days = 3;
  auto veto = order_rule_violation(current, proposed, OrderRole::kDispatcher);
  ASSERT_TRUE(veto.has_value());
  EXPECT_NE(veto->find("approved"), std::string::npos);

  current.find("w")->approved = true;
  proposed = current;
  proposed.find("w")->delivery_days = 3;
  EXPECT_FALSE(order_rule_violation(current, proposed, OrderRole::kDispatcher)
                   .has_value());
}

TEST(OrderRulesTest, ObserverMayChangeNothing) {
  OrderDocument current;
  current.add_line("w", 2);
  OrderDocument proposed = current;
  proposed.find("w")->quantity = 3;
  EXPECT_TRUE(
      order_rule_violation(current, proposed, OrderRole::kObserver).has_value());
  EXPECT_FALSE(
      order_rule_violation(current, current, OrderRole::kObserver).has_value());
}

// --- Figure 7, end-to-end (experiment E3) --------------------------------------------

const ObjectId kOrder{"order"};

std::map<PartyId, OrderRole> two_party_roles() {
  return {{PartyId{"customer"}, OrderRole::kCustomer},
          {PartyId{"supplier"}, OrderRole::kSupplier}};
}

struct OrderFixture {
  core::Federation fed{{"customer", "supplier"}};
  OrderObject customer_obj{two_party_roles()};
  OrderObject supplier_obj{two_party_roles()};

  OrderFixture() {
    fed.register_object("customer", kOrder, customer_obj);
    fed.register_object("supplier", kOrder, supplier_obj);
    fed.bootstrap_object(kOrder, {"customer", "supplier"},
                         OrderDocument{}.encode());
  }

  RunHandle coordinate(const std::string& who) {
    OrderObject& obj = who == "customer" ? customer_obj : supplier_obj;
    RunHandle h =
        fed.coordinator(who).propagate_new_state(kOrder, obj.get_state());
    fed.run_until_done(h);
    fed.settle();
    return h;
  }
};

TEST(OrderFig7, PaperScenarioReplaysExactly) {
  OrderFixture t;

  // "The customer orders 2 widget1s. This is a valid entry."
  t.customer_obj.doc().add_line("widget1", 2);
  EXPECT_EQ(t.coordinate("customer")->outcome, RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.supplier_obj.doc().find("widget1")->quantity, 2u);

  // "The supplier then prices widget1 at 10 per unit."
  t.supplier_obj.doc().find("widget1")->unit_price_cents = 1000;
  EXPECT_EQ(t.coordinate("supplier")->outcome, RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.customer_obj.doc().find("widget1")->unit_price_cents, 1000u);

  // "The customer then amends the order for the supply of 10 widget2s."
  t.customer_obj.doc().add_line("widget2", 10);
  EXPECT_EQ(t.coordinate("customer")->outcome, RunResult::Outcome::kAgreed);
  EXPECT_EQ(t.supplier_obj.doc().find("widget2")->quantity, 10u);

  OrderDocument before_cheat = t.customer_obj.doc();

  // "Then the supplier attempts to both price widget2 (a valid action) and
  // change the quantity required (an invalid action)."
  t.supplier_obj.doc().find("widget2")->unit_price_cents = 500;
  t.supplier_obj.doc().find("widget2")->quantity = 100;
  RunHandle cheat = t.coordinate("supplier");

  // "This update to the order is rejected and is not reflected in the
  // customer's copy."
  EXPECT_EQ(cheat->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(t.customer_obj.doc(), before_cheat);
  EXPECT_EQ(t.supplier_obj.doc(), before_cheat);  // rolled back
}

TEST(OrderFig7, CustomerCannotSetPrices) {
  OrderFixture t;
  t.customer_obj.doc().add_line("widget1", 2);
  ASSERT_EQ(t.coordinate("customer")->outcome, RunResult::Outcome::kAgreed);
  t.customer_obj.doc().find("widget1")->unit_price_cents = 1;  // cheeky
  RunHandle h = t.coordinate("customer");
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  EXPECT_NE(h->diagnostic.find("supplier"), std::string::npos);
}

TEST(OrderFig7, UpdateVariantCarriesOnlyTheDelta) {
  OrderFixture t;
  t.customer_obj.doc().add_line("widget1", 2);
  core::Controller ctl = t.fed.make_controller("customer", kOrder);
  // Use the controller's update mode: the wire carries ops, not the doc.
  RunHandle h = t.fed.coordinator("customer").propagate_update(
      kOrder, t.customer_obj.get_update(), t.customer_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  ASSERT_NE(t.supplier_obj.doc().find("widget1"), nullptr);
  EXPECT_EQ(t.supplier_obj.doc().find("widget1")->quantity, 2u);
}

// --- four-party variant (experiment E4) ----------------------------------------------

std::map<PartyId, OrderRole> four_party_roles() {
  return {{PartyId{"customer"}, OrderRole::kCustomer},
          {PartyId{"supplier"}, OrderRole::kSupplier},
          {PartyId{"approver"}, OrderRole::kApprover},
          {PartyId{"dispatcher"}, OrderRole::kDispatcher}};
}

struct MultiOrderFixture {
  core::Federation fed{{"customer", "supplier", "approver", "dispatcher"}};
  std::map<std::string, OrderObject> objects;

  MultiOrderFixture() {
    for (const char* name :
         {"customer", "supplier", "approver", "dispatcher"}) {
      auto [it, inserted] = objects.emplace(name, four_party_roles());
      fed.register_object(name, kOrder, it->second);
    }
    fed.bootstrap_object(kOrder,
                         {"customer", "supplier", "approver", "dispatcher"},
                         OrderDocument{}.encode());
  }

  RunHandle coordinate(const std::string& who) {
    RunHandle h = fed.coordinator(who).propagate_new_state(
        kOrder, objects.at(who).get_state());
    fed.run_until_done(h);
    fed.settle();
    return h;
  }
};

TEST(OrderMultiParty, FullProcurementFlow) {
  MultiOrderFixture t;
  // Customer orders.
  t.objects.at("customer").doc().add_line("server-rack", 4);
  ASSERT_EQ(t.coordinate("customer")->outcome, RunResult::Outcome::kAgreed);
  // Supplier prices.
  t.objects.at("supplier").doc().find("server-rack")->unit_price_cents =
      250'000;
  ASSERT_EQ(t.coordinate("supplier")->outcome, RunResult::Outcome::kAgreed);
  // Approver sanctions.
  t.objects.at("approver").doc().find("server-rack")->approved = true;
  ASSERT_EQ(t.coordinate("approver")->outcome, RunResult::Outcome::kAgreed);
  // Dispatcher commits to delivery terms.
  t.objects.at("dispatcher").doc().find("server-rack")->delivery_days = 14;
  ASSERT_EQ(t.coordinate("dispatcher")->outcome, RunResult::Outcome::kAgreed);

  for (const char* name : {"customer", "supplier", "approver", "dispatcher"}) {
    const OrderLine* line = t.objects.at(name).doc().find("server-rack");
    ASSERT_NE(line, nullptr) << name;
    EXPECT_EQ(line->quantity, 4u);
    EXPECT_EQ(line->unit_price_cents, 250'000u);
    EXPECT_TRUE(line->approved);
    EXPECT_EQ(line->delivery_days, 14u);
  }
}

TEST(OrderMultiParty, DispatcherCannotPreemptApproval) {
  MultiOrderFixture t;
  t.objects.at("customer").doc().add_line("gpu", 8);
  ASSERT_EQ(t.coordinate("customer")->outcome, RunResult::Outcome::kAgreed);
  // Dispatcher tries to set delivery before approval.
  t.objects.at("dispatcher").doc().find("gpu")->delivery_days = 2;
  RunHandle h = t.coordinate("dispatcher");
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(t.objects.at("dispatcher").doc().find("gpu")->delivery_days, 0u);
}

TEST(OrderMultiParty, ApproverCannotChangeQuantities) {
  MultiOrderFixture t;
  t.objects.at("customer").doc().add_line("gpu", 8);
  ASSERT_EQ(t.coordinate("customer")->outcome, RunResult::Outcome::kAgreed);
  auto& approver_doc = t.objects.at("approver").doc();
  approver_doc.find("gpu")->approved = true;
  approver_doc.find("gpu")->quantity = 4;  // sneaky cut
  RunHandle h = t.coordinate("approver");
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
}

}  // namespace
}  // namespace b2b::apps
