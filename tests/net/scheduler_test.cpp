// Discrete-event scheduler: ordering, determinism, budgets.
#include "net/scheduler.hpp"

#include <gtest/gtest.h>

namespace b2b::net {
namespace {

TEST(SchedulerTest, StartsAtTimeZeroIdle) {
  EventScheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.idle());
  EXPECT_FALSE(s.run_one());
}

TEST(SchedulerTest, EventsRunInTimeOrder) {
  EventScheduler s;
  std::vector<int> order;
  s.at(300, [&] { order.push_back(3); });
  s.at(100, [&] { order.push_back(1); });
  s.at(200, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300u);
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  EventScheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.at(50, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, AfterSchedulesRelativeToNow) {
  EventScheduler s;
  std::vector<SimTime> times;
  s.at(100, [&] {
    times.push_back(s.now());
    s.after(50, [&] { times.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(times, (std::vector<SimTime>{100, 150}));
}

TEST(SchedulerTest, PastEventsClampToNow) {
  EventScheduler s;
  bool ran = false;
  s.at(100, [&] {
    s.at(10, [&] {  // in the past
      ran = true;
      EXPECT_EQ(s.now(), 100u);
    });
  });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  EventScheduler s;
  int count = 0;
  s.at(100, [&] { ++count; });
  s.at(200, [&] { ++count; });
  s.at(300, [&] { ++count; });
  s.run_until(200);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 200u);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SchedulerTest, RunUntilAdvancesClockEvenWithoutEvents) {
  EventScheduler s;
  s.run_until(5000);
  EXPECT_EQ(s.now(), 5000u);
}

TEST(SchedulerTest, RunBudgetLimitsExecution) {
  EventScheduler s;
  // A self-perpetuating event chain.
  std::function<void()> tick = [&] { s.after(1, tick); };
  s.after(1, tick);
  std::size_t executed = s.run(1000);
  EXPECT_EQ(executed, 1000u);
  EXPECT_FALSE(s.idle());
}

TEST(SchedulerTest, RunUntilConditionStopsEarly) {
  EventScheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    s.at(static_cast<SimTime>(i * 10), [&] { ++count; });
  }
  bool met = s.run_until_condition([&] { return count == 3; });
  EXPECT_TRUE(met);
  EXPECT_EQ(count, 3);
}

TEST(SchedulerTest, RunUntilConditionReportsFailure) {
  EventScheduler s;
  s.at(10, [] {});
  bool met = s.run_until_condition([] { return false; });
  EXPECT_FALSE(met);
  EXPECT_TRUE(s.idle());
}

TEST(SchedulerTest, EventsExecutedCounterAccumulates) {
  EventScheduler s;
  for (int i = 0; i < 7; ++i) s.at(static_cast<SimTime>(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 7u);
}

}  // namespace
}  // namespace b2b::net
