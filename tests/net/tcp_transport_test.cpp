// TcpTransport: the §4.2 delivery contract (eventual once-only delivery)
// over real TCP sockets on localhost — including the byte-stream failure
// modes the in-process fabrics cannot produce: torn frames, split reads,
// CRC corruption, mid-stream resets, and whole-transport restarts that
// change the peer's incarnation.
#include "net/tcp_runtime.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "crypto/sha256.hpp"
#include "net/frame.hpp"
#include "net/wire_auth.hpp"
#include "store/crc32.hpp"
#include "tests/support/test_keys.hpp"
#include "wire/codec.hpp"

namespace b2b::net {
namespace {

using namespace std::chrono_literals;

/// Spin until `predicate` holds or `timeout` elapses; true on success.
bool wait_for(const std::function<bool()>& predicate,
              std::chrono::milliseconds timeout = 10'000ms) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return predicate();
}

/// A thread-safe payload sink (the handler runs on a reader thread).
struct Sink {
  mutable std::mutex mutex;
  std::vector<Bytes> received;

  Transport::Handler handler() {
    return [this](const PartyId&, const Bytes& payload) {
      std::lock_guard<std::mutex> lock(mutex);
      received.push_back(payload);
    };
  }

  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mutex);
    return received.size();
  }

  std::multiset<Bytes> contents() const {
    std::lock_guard<std::mutex> lock(mutex);
    return {received.begin(), received.end()};
  }
};

/// A pair (or more) of transports sharing one directory on localhost.
struct Fixture {
  std::shared_ptr<PeerDirectory> directory =
      std::make_shared<PeerDirectory>();
  TcpTransport::Config config;

  Fixture() {
    config.retransmit_interval_micros = 5'000;  // keep tests brisk
    config.reconnect_backoff_min_micros = 5'000;
    config.reconnect_backoff_max_micros = 50'000;
  }

  std::unique_ptr<TcpTransport> make(const std::string& name,
                                     std::uint16_t port = 0) {
    auto transport = std::make_unique<TcpTransport>(
        PartyId{name}, "127.0.0.1", port, directory, config);
    directory->set(PartyId{name},
                   PeerAddress{"127.0.0.1", transport->port()});
    return transport;
  }

  /// Like make(), with wire v3 session auth on (test-pool PKI).
  std::unique_ptr<TcpTransport> make_auth(const std::string& name,
                                          std::uint16_t port = 0);
};

// --- wire-format helpers for the raw-socket tests --------------------------

constexpr std::uint32_t kMagic = 0x42'32'42'54;  // must match tcp_runtime.cpp

Bytes frame(const Bytes& payload, std::uint32_t crc) {
  Bytes framed(8 + payload.size());
  for (int i = 0; i < 4; ++i) {
    framed[i] = static_cast<std::uint8_t>(payload.size() >> (8 * i));
    framed[4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  std::copy(payload.begin(), payload.end(), framed.begin() + 8);
  return framed;
}

Bytes frame(const Bytes& payload) {
  return frame(payload, store::crc32(payload));
}

Bytes hello_payload(const std::string& from, const std::string& to,
                    std::uint64_t incarnation) {
  wire::Encoder enc;
  enc.u8(2).u32(kMagic).u16(frame::kVersion).str(from).str(to);
  enc.u64(incarnation).u8(frame::kAuthNone);
  return std::move(enc).take();
}

/// Wire v2: data frames carry the sender incarnation their seq lives in.
Bytes data_payload(std::uint64_t incarnation, std::uint64_t seq,
                   const Bytes& app) {
  wire::Encoder enc;
  enc.u8(0).u64(incarnation).u64(seq).blob(app);
  return std::move(enc).take();
}

Bytes ack_payload(std::uint64_t incarnation, std::uint64_t seq) {
  wire::Encoder enc;
  enc.u8(1).u64(incarnation).u64(seq);
  return std::move(enc).take();
}

bool send_bytes(Socket& socket, const Bytes& bytes) {
  return socket.send_all(bytes.data(), bytes.size());
}

/// Read one [len][crc][payload] frame off a raw socket (blocking).
bool recv_frame(Socket& socket, Bytes* payload) {
  std::uint8_t header[8];
  if (!socket.recv_exact(header, sizeof header)) return false;
  frame::Header hdr;
  if (!frame::decode_header(header, frame::kMaxFrameLen, &hdr)) return false;
  payload->resize(hdr.len);
  return hdr.len == 0 || socket.recv_exact(payload->data(), hdr.len);
}

// --- wire v3 session-auth helpers (DESIGN.md §11) ---------------------------

/// A fixed roster over the shared deterministic test keypairs.
std::size_t roster_index(const std::string& name) {
  if (name == "a") return 0;
  if (name == "b") return 1;
  return 2;  // the third party "x" the raw-socket games play
}

WireAuth test_auth(const std::string& self) {
  WireAuth auth;
  auth.enabled = true;
  // The pool keys are process-lifetime statics; alias, don't own.
  auth.private_key = std::shared_ptr<const crypto::RsaPrivateKey>(
      std::shared_ptr<const void>{},
      &crypto::test::shared_test_key(roster_index(self)));
  auth.peer_key = [](const PartyId& peer) {
    return std::make_shared<crypto::RsaPublicKey>(
        crypto::test::shared_test_key(roster_index(peer.str())).public_key());
  };
  return auth;
}

std::unique_ptr<TcpTransport> Fixture::make_auth(const std::string& name,
                                                 std::uint16_t port) {
  TcpTransport::Config auth_config = config;
  auth_config.auth = test_auth(name);
  auto transport = std::make_unique<TcpTransport>(
      PartyId{name}, "127.0.0.1", port, directory, auth_config);
  directory->set(PartyId{name}, PeerAddress{"127.0.0.1", transport->port()});
  return transport;
}

/// Send `from`'s signed, key-carrying hello on a raw socket and return the
/// derived send-direction keys. The games below use a *real* roster key —
/// they model forgery without the session key, not key theft: everything
/// after the handshake is attacker-crafted bytes.
ConnKeys raw_auth_handshake(Socket& raw, const std::string& from,
                            const std::string& to, std::uint64_t incarnation) {
  ConnKeys keys;
  Bytes hello = build_hello(test_auth(from), PartyId{from}, PartyId{to},
                            incarnation, &keys);
  EXPECT_FALSE(hello.empty());
  EXPECT_TRUE(send_bytes(raw, frame(hello)));
  return keys;
}

// --- transport-level behaviour ---------------------------------------------

TEST(TcpTransportTest, DeliversPayloadsBetweenParties) {
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  Sink a_sink, b_sink;
  a->set_handler(a_sink.handler());
  b->set_handler(b_sink.handler());

  std::multiset<Bytes> a_want, b_want;
  for (int i = 0; i < 10; ++i) {
    Bytes to_b{static_cast<std::uint8_t>(i)};
    Bytes to_a{static_cast<std::uint8_t>(100 + i)};
    a->send(PartyId{"b"}, to_b);
    b->send(PartyId{"a"}, to_a);
    b_want.insert(std::move(to_b));
    a_want.insert(std::move(to_a));
  }

  ASSERT_TRUE(
      wait_for([&] { return a_sink.count() == 10 && b_sink.count() == 10; }));
  EXPECT_EQ(a_sink.contents(), a_want);
  EXPECT_EQ(b_sink.contents(), b_want);
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0 && b->unacked() == 0; }));

  // Wire-level stats: real bytes moved, at least one handshake each way.
  Transport::Stats a_stats = a->stats();
  Transport::Stats b_stats = b->stats();
  EXPECT_EQ(a_stats.app_sent, 10u);
  EXPECT_EQ(b_stats.app_delivered, 10u);
  EXPECT_GT(a_stats.bytes_sent, 0u);
  EXPECT_GT(a_stats.bytes_received, 0u);
  EXPECT_GE(a_stats.connects, 1u);
  EXPECT_GE(b_stats.connects, 1u);
  EXPECT_EQ(a_stats.frames_dropped_crc, 0u);
}

TEST(TcpTransportTest, RetransmitsThroughInjectedLoss) {
  Fixture fx;
  fx.config.faults.drop_probability = 0.5;
  fx.config.fault_seed = 2;
  auto a = fx.make("a");
  fx.config.faults.drop_probability = 0.0;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  for (int i = 0; i < 50; ++i) {
    a->send(PartyId{"b"}, Bytes{static_cast<std::uint8_t>(i)});
  }

  // Despite heavy injected loss, every payload arrives exactly once.
  ASSERT_TRUE(wait_for([&] { return sink.count() == 50; }));
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
  std::multiset<Bytes> want;
  for (int i = 0; i < 50; ++i) {
    want.insert(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_EQ(sink.contents(), want);
  EXPECT_GT(a->stats().retransmissions, 0u);
  EXPECT_GT(a->fabric_stats().frames_dropped_injected, 0u);
}

TEST(TcpTransportTest, MasksDuplicationToOnceOnlyDelivery) {
  Fixture fx;
  fx.config.faults.duplicate_probability = 1.0;
  fx.config.fault_seed = 3;
  auto a = fx.make("a");
  fx.config.faults.duplicate_probability = 0.0;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  for (int i = 0; i < 20; ++i) {
    a->send(PartyId{"b"}, Bytes{static_cast<std::uint8_t>(i)});
  }

  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
  ASSERT_TRUE(wait_for([&] { return b->quiescent(); }));
  EXPECT_EQ(sink.count(), 20u);  // exactly once each, never twice
  EXPECT_GT(a->fabric_stats().frames_duplicated_injected, 0u);
  EXPECT_GT(b->stats().duplicates_suppressed, 0u);
}

TEST(TcpTransportTest, CrashRecoveryKeepsChannelState) {
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  b->set_alive(false);
  a->send(PartyId{"b"}, Bytes{42});
  std::this_thread::sleep_for(30ms);  // several retransmit intervals
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(a->unacked(), 1u);  // still queued: the channel persists

  b->set_alive(true);
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  EXPECT_EQ(sink.contents(), std::multiset<Bytes>{Bytes{42}});
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
}

TEST(TcpTransportTest, ReconnectsToRestartedPeerWithFreshIncarnation) {
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  std::uint16_t b_port = b->port();
  Sink sink;
  b->set_handler(sink.handler());

  a->send(PartyId{"b"}, Bytes{1});
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));

  // Whole-"process" restart of b: the transport object dies (dedup state
  // and connections lost, sequence numbers restart) and a new instance
  // binds the same port with a new incarnation.
  std::uint64_t old_incarnation = b->incarnation();
  b.reset();
  a->send(PartyId{"b"}, Bytes{2});  // queued while the peer is down
  b = fx.make("b", b_port);
  EXPECT_NE(b->incarnation(), old_incarnation);
  Sink sink2;
  b->set_handler(sink2.handler());

  // Retransmission re-establishes a connection and delivers; the new
  // incarnation's handshake resets a's dedup view of b, and b accepts
  // a's in-flight sequence numbers despite having lost its window.
  ASSERT_TRUE(wait_for([&] { return sink2.count() == 1; }));
  EXPECT_EQ(sink2.contents(), std::multiset<Bytes>{Bytes{2}});
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
  Transport::Stats a_stats = a->stats();
  EXPECT_GE(a_stats.connects, 2u);
  EXPECT_GE(a_stats.reconnects, 1u);

  // The channel keeps working in both directions after the restart.
  Sink a_sink;
  a->set_handler(a_sink.handler());
  b->send(PartyId{"a"}, Bytes{3});
  ASSERT_TRUE(wait_for([&] { return a_sink.count() == 1; }));
}

// --- raw-socket byte-stream abuse ------------------------------------------

TEST(TcpTransportTest, TornFrameIsDroppedAndChannelRecovers) {
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  // A client that introduces itself, then dies mid-frame: header claims
  // 100 bytes, only 3 arrive before the close.
  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(send_bytes(raw, frame(hello_payload("torn", "b", 7))));
  Bytes truncated = frame(data_payload(7, 0, Bytes(100, 0xab)));
  truncated.resize(8 + 3);
  ASSERT_TRUE(send_bytes(raw, truncated));
  raw.close();

  // Nothing was delivered from the torn frame, and the transport still
  // serves intact traffic: a's messages arrive exactly once.
  a->send(PartyId{"b"}, Bytes{5});
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  EXPECT_EQ(sink.contents(), std::multiset<Bytes>{Bytes{5}});
  EXPECT_EQ(b->stats().frames_dropped_crc, 0u);  // torn ≠ corrupt
}

TEST(TcpTransportTest, CorruptCrcIsCountedAndNotDelivered) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(send_bytes(raw, frame(hello_payload("evil", "b", 9))));
  // A complete, well-framed data frame whose CRC does not match.
  Bytes payload = data_payload(9, 0, Bytes{1, 2, 3});
  ASSERT_TRUE(send_bytes(raw, frame(payload, store::crc32(payload) ^ 1)));

  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_dropped_crc == 1; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(b->stats().app_delivered, 0u);
}

TEST(TcpTransportTest, SplitWritesReassembleToExactlyOneDelivery) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  raw.set_nodelay();
  Bytes stream = frame(hello_payload("slow", "b", 11));
  Bytes data = frame(data_payload(11, 0, Bytes{9, 8, 7}));
  stream.insert(stream.end(), data.begin(), data.end());
  // One byte per write: every read on the receiver side is short.
  for (std::uint8_t byte : stream) {
    ASSERT_TRUE(raw.send_all(&byte, 1));
    std::this_thread::sleep_for(100us);
  }
  // The same frame again: reassembled fine, suppressed by dedup.
  ASSERT_TRUE(send_bytes(raw, data));

  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().duplicates_suppressed == 1; }));
  EXPECT_EQ(sink.contents(), (std::multiset<Bytes>{Bytes{9, 8, 7}}));
  EXPECT_EQ(b->stats().app_delivered, 1u);
}

TEST(TcpTransportTest, PeerResetMidStreamNeverDuplicatesDelivery) {
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  // A client delivers seq 0, then RSTs mid-frame (SO_LINGER 0 close).
  {
    Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
    ASSERT_TRUE(raw.valid());
    ASSERT_TRUE(send_bytes(raw, frame(hello_payload("rst", "b", 13))));
    ASSERT_TRUE(send_bytes(raw, frame(data_payload(13, 0, Bytes{1}))));
    ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
    Bytes partial = frame(data_payload(13, 1, Bytes{2}));
    partial.resize(10);
    ASSERT_TRUE(send_bytes(raw, partial));
    raw.set_linger_reset();
    raw.close();  // RST races the partial frame through the kernel
  }

  // The reset corrupts nothing already delivered and the same client
  // "reconnecting" (same incarnation) cannot replay seq 0.
  Socket again = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(again.valid());
  ASSERT_TRUE(send_bytes(again, frame(hello_payload("rst", "b", 13))));
  ASSERT_TRUE(send_bytes(again, frame(data_payload(13, 0, Bytes{1}))));
  ASSERT_TRUE(send_bytes(again, frame(data_payload(13, 1, Bytes{2}))));

  ASSERT_TRUE(wait_for([&] { return sink.count() == 2; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 2u);  // seq 0 delivered once, not twice
  EXPECT_EQ(sink.contents(), (std::multiset<Bytes>{Bytes{1}, Bytes{2}}));
  EXPECT_GE(b->stats().duplicates_suppressed, 1u);

  // The transport itself shrugged the RST off entirely.
  a->send(PartyId{"b"}, Bytes{3});
  ASSERT_TRUE(wait_for([&] { return sink.count() == 3; }));
}

TEST(TcpTransportTest, ReplayedAndReorderedFramesStayOnceOnly) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(send_bytes(raw, frame(hello_payload("replay", "b", 17))));
  // Out-of-order arrival followed by a full replay of the window.
  for (std::uint64_t seq : {2u, 0u, 1u, 1u, 0u, 2u}) {
    ASSERT_TRUE(send_bytes(
        raw,
        frame(data_payload(17, seq, Bytes{static_cast<std::uint8_t>(seq)}))));
  }

  ASSERT_TRUE(wait_for([&] { return b->stats().duplicates_suppressed == 3; }));
  EXPECT_EQ(sink.count(), 3u);
  EXPECT_EQ(sink.contents(),
            (std::multiset<Bytes>{Bytes{0}, Bytes{1}, Bytes{2}}));
}

TEST(TcpTransportTest, StaleIncarnationFramesAreDropped) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  // Incarnation 1 of "x" delivers seq 0, then "restarts": incarnation 2
  // handshakes and its fresh seq 0 must be delivered again (new window).
  Socket old_conn = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(old_conn.valid());
  ASSERT_TRUE(send_bytes(old_conn, frame(hello_payload("x", "b", 1))));
  ASSERT_TRUE(send_bytes(old_conn, frame(data_payload(1, 0, Bytes{10}))));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));

  Socket new_conn = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(new_conn.valid());
  ASSERT_TRUE(send_bytes(new_conn, frame(hello_payload("x", "b", 2))));
  ASSERT_TRUE(send_bytes(new_conn, frame(data_payload(2, 0, Bytes{20}))));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 2; }));

  // The old incarnation is superseded: frames still trickling in on its
  // connection are dropped, not delivered against the new window.
  ASSERT_TRUE(send_bytes(old_conn, frame(data_payload(1, 1, Bytes{11}))));
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.contents(), (std::multiset<Bytes>{Bytes{10}, Bytes{20}}));
  EXPECT_GE(b->stats().replays_suppressed, 1u);
}

// --- hostile length prefixes (DESIGN.md §11) --------------------------------

TEST(TcpTransportTest, HostileLengthPrefixIsRejectedAndConnectionReset) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  // An attacker's very first bytes claim a 4 GiB frame. The receiver
  // must refuse to allocate and reset the connection instead of
  // blocking on (or buffering toward) 0xFFFFFFFF bytes.
  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  Bytes evil(8 + 4, 0xee);
  for (int i = 0; i < 4; ++i) {
    evil[i] = 0xFF;  // len = 0xFFFFFFFF
  }
  ASSERT_TRUE(send_bytes(raw, evil));

  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 1; }));
  // The connection is reset: the raw socket drains to EOF.
  raw.set_recv_timeout(2'000'000);
  std::uint8_t scratch[64];
  while (raw.recv_some(scratch, sizeof scratch) > 0) {
  }
  // And the transport is unharmed: honest traffic still flows.
  auto a = fx.make("a");
  a->send(PartyId{"b"}, Bytes{6});
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  EXPECT_EQ(sink.count(), 1u);
}

TEST(TcpTransportTest, FrameLengthOffByOneOverLimitIsRejected) {
  Fixture fx;
  fx.config.max_frame_bytes = 64;  // small limit keeps the test cheap
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(send_bytes(raw, frame(hello_payload("edge", "b", 21))));
  // A payload of exactly max_frame_bytes is legitimate...
  Bytes app(46, 0x5c);  // 1 + 8 + 8 + 1 + 46 = 64-byte frame payload
  Bytes exact = data_payload(21, 0, app);
  ASSERT_EQ(exact.size(), 64u);
  ASSERT_TRUE(send_bytes(raw, frame(exact)));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  EXPECT_EQ(b->stats().frames_rejected_auth, 0u);

  // ...but one byte over the limit is rejected before it is read.
  Bytes over(8 + 4, 0x5d);
  for (int i = 0; i < 4; ++i) {
    over[i] = static_cast<std::uint8_t>(65u >> (8 * i));
  }
  ASSERT_TRUE(send_bytes(raw, over));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 1; }));
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(sink.count(), 1u);
}

// --- cross-incarnation replay (DESIGN.md §11, wire v2) ----------------------

TEST(TcpTransportTest, CrossIncarnationReplayIsSuppressed) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  // Incarnation 1 of "x" delivers seq 0; a wire intruder records the
  // signed-and-framed bytes.
  Socket old_conn = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(old_conn.valid());
  ASSERT_TRUE(send_bytes(old_conn, frame(hello_payload("x", "b", 1))));
  Bytes recorded = frame(data_payload(1, 0, Bytes{10}));
  ASSERT_TRUE(send_bytes(old_conn, recorded));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  old_conn.close();

  // "x" restarts as incarnation 2 and delivers its fresh seq 0.
  Socket new_conn = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(new_conn.valid());
  ASSERT_TRUE(send_bytes(new_conn, frame(hello_payload("x", "b", 2))));
  ASSERT_TRUE(send_bytes(new_conn, frame(data_payload(2, 0, Bytes{20}))));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 2; }));

  // The intruder splices the recorded incarnation-1 frame into the
  // live incarnation-2 connection. Wire v1 would have marked seq 0
  // delivered in the *fresh* window (and falsely acked it); wire v2
  // proves the splice from the embedded incarnation, suppresses the
  // frame and kills the connection.
  ASSERT_TRUE(send_bytes(new_conn, recorded));
  ASSERT_TRUE(wait_for([&] { return b->stats().replays_suppressed >= 1; }));
  new_conn.set_recv_timeout(2'000'000);
  std::uint8_t scratch[64];
  while (new_conn.recv_some(scratch, sizeof scratch) > 0) {
  }
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.contents(), (std::multiset<Bytes>{Bytes{10}, Bytes{20}}));

  // Liveness after the attack: the next incarnation connects fine.
  Socket conn3 = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(conn3.valid());
  ASSERT_TRUE(send_bytes(conn3, frame(hello_payload("x", "b", 3))));
  ASSERT_TRUE(send_bytes(conn3, frame(data_payload(3, 0, Bytes{30}))));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 3; }));
}

TEST(TcpTransportTest, ReplayedAckFromWrongIncarnationCannotRetireMessage) {
  Fixture fx;
  fx.config.retransmit_interval_micros = 50'000;  // quiet retransmits
  auto b = fx.make("b");
  b->set_handler([](const PartyId&, const Bytes&) {});

  // Play the remote party "x" with a raw listener so we control acks.
  Listener listener = Listener::open("127.0.0.1", 0);
  fx.directory->set(PartyId{"x"}, PeerAddress{"127.0.0.1", listener.port()});
  b->send(PartyId{"x"}, Bytes{7});

  Socket conn = listener.accept();
  ASSERT_TRUE(conn.valid());
  conn.set_recv_timeout(5'000'000);
  // b (the dialer) introduces itself first; learn its incarnation.
  Bytes hello;
  ASSERT_TRUE(recv_frame(conn, &hello));
  wire::Decoder dec{hello};
  ASSERT_EQ(dec.u8(), 2);  // kHello
  dec.u32();               // magic
  dec.u16();               // version
  ASSERT_EQ(dec.str(), "b");
  ASSERT_EQ(dec.str(), "x");
  std::uint64_t b_inc = dec.u64();
  ASSERT_TRUE(send_bytes(conn, frame(hello_payload("x", "b", 99))));
  Bytes data;
  ASSERT_TRUE(recv_frame(conn, &data));  // the data frame for seq 0

  // An ack that does not echo b's live incarnation — a recording from
  // before b's restart, or a splice — must not retire the message.
  ASSERT_TRUE(send_bytes(conn, frame(ack_payload(b_inc ^ 0x5a5a, 0))));
  ASSERT_TRUE(wait_for([&] { return b->stats().replays_suppressed >= 1; }));
  EXPECT_EQ(b->unacked(), 1u);

  // The genuine echo retires it.
  ASSERT_TRUE(send_bytes(conn, frame(ack_payload(b_inc, 0))));
  ASSERT_TRUE(wait_for([&] { return b->unacked() == 0; }));
  listener.stop();
}

// --- wire v3 must-fail games (DESIGN.md §11) --------------------------------
//
// Until wire v3 these four attacks were deliberately outside the intruder
// campaign's scope: CRC32 is recomputable, so a live rewrite or forgery
// was indistinguishable from the honest sender. With per-connection MAC
// keys each one must now die at the transport as frames_rejected_auth.

TEST(TcpTransportTest, AuthLiveDataFrameRewriteIsRejected) {
  Fixture fx;
  auto b = fx.make_auth("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ConnKeys keys = raw_auth_handshake(raw, "x", "b", 31);

  // An honestly MAC'd frame flows.
  Bytes d0 = data_payload(31, 0, Bytes{1});
  append_mac(d0, keys.send);
  ASSERT_TRUE(send_bytes(raw, frame(d0)));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));

  // The §11 intruder's signature move: rewrite the payload of a live
  // frame and recompute the CRC. The MAC is now stale — the frame must
  // die before parsing, and the connection with it.
  Bytes d1 = data_payload(31, 1, Bytes{2});
  append_mac(d1, keys.send);
  d1[18] ^= 0xff;  // the app payload byte (type·inc·seq·len precede it)
  ASSERT_TRUE(send_bytes(raw, frame(d1)));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 1; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 1u);  // the forged payload never surfaced

  // Liveness: a fresh handshake rekeys (new ephemeral half) and the
  // honest seq 1 still gets through the same dedup window.
  Socket again = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(again.valid());
  ConnKeys keys2 = raw_auth_handshake(again, "x", "b", 31);
  Bytes d1_honest = data_payload(31, 1, Bytes{2});
  append_mac(d1_honest, keys2.send);
  ASSERT_TRUE(send_bytes(again, frame(d1_honest)));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 2; }));
  EXPECT_EQ(sink.contents(), (std::multiset<Bytes>{Bytes{1}, Bytes{2}}));

  // Rewriting the *sequence number* instead fares no better.
  Bytes d2 = data_payload(31, 2, Bytes{3});
  append_mac(d2, keys2.send);
  d2[9] ^= 0x04;  // a seq byte
  ASSERT_TRUE(send_bytes(again, frame(d2)));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 2; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 2u);
}

TEST(TcpTransportTest, AuthForgedAckCannotRetireMessage) {
  Fixture fx;
  fx.config.retransmit_interval_micros = 20'000;
  auto b = fx.make_auth("b");
  b->set_handler([](const PartyId&, const Bytes&) {});

  // Play the remote party "x" with a raw listener so we control acks.
  Listener listener = Listener::open("127.0.0.1", 0);
  fx.directory->set(PartyId{"x"}, PeerAddress{"127.0.0.1", listener.port()});
  b->send(PartyId{"x"}, Bytes{7});

  Socket conn = listener.accept();
  ASSERT_TRUE(conn.valid());
  conn.set_recv_timeout(5'000'000);
  Bytes hello;
  ASSERT_TRUE(recv_frame(conn, &hello));
  wire::Decoder dec{hello};
  ASSERT_EQ(dec.u8(), 2);  // kHello
  frame::Hello b_hello = frame::decode_hello(dec);
  ASSERT_EQ(b_hello.from, "b");
  ASSERT_EQ(b_hello.auth_flag, frame::kAuthHmac);
  ConnKeys x_keys;
  Bytes reply = build_hello(test_auth("x"), PartyId{"x"}, PartyId{"b"}, 99,
                            &x_keys);
  ASSERT_TRUE(send_bytes(conn, frame(reply)));
  Bytes data;
  ASSERT_TRUE(recv_frame(conn, &data));  // the MAC'd data frame for seq 0

  // An intruder without x's session key forges an ack: correct bytes,
  // wrong tag. The sender must not retire the message.
  Bytes forged = ack_payload(b_hello.incarnation, 0);
  append_mac(forged, crypto::Sha256::hash(bytes_of("not the session key")));
  ASSERT_TRUE(send_bytes(conn, frame(forged)));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth >= 1; }));
  EXPECT_EQ(b->unacked(), 1u);

  // b killed the connection; its retransmission redials. A genuine ack
  // over the rekeyed connection retires the message.
  Socket conn2 = listener.accept();
  ASSERT_TRUE(conn2.valid());
  conn2.set_recv_timeout(5'000'000);
  ASSERT_TRUE(recv_frame(conn2, &hello));
  wire::Decoder dec2{hello};
  ASSERT_EQ(dec2.u8(), 2);
  frame::Hello b_hello2 = frame::decode_hello(dec2);
  ConnKeys x_keys2;
  Bytes reply2 = build_hello(test_auth("x"), PartyId{"x"}, PartyId{"b"}, 99,
                             &x_keys2);
  ASSERT_TRUE(send_bytes(conn2, frame(reply2)));
  ASSERT_TRUE(recv_frame(conn2, &data));  // retransmitted seq 0
  Bytes genuine = ack_payload(b_hello2.incarnation, 0);
  append_mac(genuine, x_keys2.send);
  ASSERT_TRUE(send_bytes(conn2, frame(genuine)));
  ASSERT_TRUE(wait_for([&] { return b->unacked() == 0; }));
  listener.stop();
}

TEST(TcpTransportTest, AuthTruncatedMacFrameIsRejected) {
  Fixture fx;
  auto b = fx.make_auth("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ConnKeys keys = raw_auth_handshake(raw, "x", "b", 41);
  Bytes d0 = data_payload(41, 0, Bytes{1});
  append_mac(d0, keys.send);
  ASSERT_TRUE(send_bytes(raw, frame(d0)));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));

  // A frame whose MAC lost its last byte (re-framed with a valid CRC, so
  // only the tag check can catch it).
  Bytes truncated = data_payload(41, 1, Bytes{2});
  append_mac(truncated, keys.send);
  truncated.pop_back();
  ASSERT_TRUE(send_bytes(raw, frame(truncated)));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 1; }));

  // A frame with no MAC at all dies the same way.
  Socket bare = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(bare.valid());
  raw_auth_handshake(bare, "x", "b", 41);
  ASSERT_TRUE(send_bytes(bare, frame(data_payload(41, 1, Bytes{2}))));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 2; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 1u);

  // Liveness: the honest seq 1 lands over a fresh connection.
  Socket again = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(again.valid());
  ConnKeys keys2 = raw_auth_handshake(again, "x", "b", 41);
  Bytes d1 = data_payload(41, 1, Bytes{2});
  append_mac(d1, keys2.send);
  ASSERT_TRUE(send_bytes(again, frame(d1)));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 2; }));
}

TEST(TcpTransportTest, AuthHelloDowngradeStripIsRefused) {
  Fixture fx;
  auto b = fx.make_auth("b");
  Sink sink;
  b->set_handler(sink.handler());

  // A MITM strips the auth fields from a hello (or an unauthenticated
  // party dials in). The auth-required endpoint refuses the handshake —
  // no silent downgrade to a MAC-less connection.
  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(send_bytes(raw, frame(hello_payload("x", "b", 5))));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 1; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 0u);

  // The mismatch is rejected in the other direction too: an auth-less
  // endpoint refuses an authenticated hello instead of ignoring the
  // fields it cannot check.
  auto p = fx.make("p");
  p->set_handler(sink.handler());
  Socket cross = tcp_connect("127.0.0.1", p->port(), 1'000'000);
  ASSERT_TRUE(cross.valid());
  ConnKeys unused;
  Bytes auth_hello = build_hello(test_auth("x"), PartyId{"x"}, PartyId{"p"},
                                 7, &unused);
  ASSERT_TRUE(send_bytes(cross, frame(auth_hello)));
  ASSERT_TRUE(
      wait_for([&] { return p->stats().frames_rejected_auth == 1; }));

  // Liveness: the honest authenticated pair is unharmed.
  auto a = fx.make_auth("a");
  a->send(PartyId{"b"}, Bytes{6});
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  EXPECT_EQ(sink.contents(), std::multiset<Bytes>{Bytes{6}});
}

// --- runtime bundle ---------------------------------------------------------

TEST(TcpRuntimeTest, ExecutorSettlesOnQuiescence) {
  TcpRuntime::Options options;
  options.transport.retransmit_interval_micros = 5'000;
  TcpRuntime runtime(options);
  Transport& a = runtime.add_party(PartyId{"a"});
  Transport& b = runtime.add_party(PartyId{"b"});
  a.set_handler([](const PartyId&, const Bytes&) {});
  Sink sink;
  b.set_handler(sink.handler());

  for (int i = 0; i < 20; ++i) {
    a.send(PartyId{"b"}, Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(
      runtime.executor().run_until([&] { return sink.count() == 20; }));
  runtime.executor().settle();
  EXPECT_EQ(a.unacked(), 0u);
  EXPECT_EQ(sink.count(), 20u);
}

TEST(TcpRuntimeTest, DirectoryResolvesEphemeralPorts) {
  auto directory = std::make_shared<PeerDirectory>();
  directory->set(PartyId{"a"}, PeerAddress{"127.0.0.1", 0});
  TcpRuntime::Options options;
  options.directory = directory;
  TcpRuntime runtime(options);
  runtime.add_party(PartyId{"a"});
  auto address = directory->lookup(PartyId{"a"});
  ASSERT_TRUE(address.has_value());
  EXPECT_NE(address->port, 0);
  EXPECT_EQ(runtime.transport(PartyId{"a"})->port(), address->port);
}

TEST(TcpRuntimeTest, TimerInFlightCannotRaceBundleTeardown) {
  // Regression for the teardown stop barrier (shared with
  // ThreadedRuntime): destroying the bundle while a schedule_after
  // callback is about to touch a transport must be safe. Run a sweep of
  // delays so some timer lands exactly inside the teardown window; TSan
  // turns any surviving race into a failure.
  for (int i = 0; i < 20; ++i) {
    TcpRuntime::Options options;
    auto runtime = std::make_unique<TcpRuntime>(options);
    Transport& a = runtime->add_party(PartyId{"a"});
    runtime->add_party(PartyId{"b"})
        .set_handler([](const PartyId&, const Bytes&) {});
    runtime->clock().schedule_after(
        static_cast<std::uint64_t>(i) * 100,
        [&a] { a.send(PartyId{"b"}, Bytes{1}); });
    runtime.reset();
  }
}

}  // namespace
}  // namespace b2b::net
