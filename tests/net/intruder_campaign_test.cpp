// Coverage-guided adversarial campaign against the socket runtimes
// (DESIGN.md §11): an in-process MITM proxy (net::IntruderProxy) is
// interposed on the byte streams of real deployments and plays scripted
// and seeded-random games — replay (same and cross incarnation),
// reorder, truncation, unsigned-field mutation, hostile lengths — while
// the paper's safety oracles are asserted after every run:
//
//   * the agreed tuples, group tuples and object values are IDENTICAL
//     to a clean run of the same script (no invalid state installed);
//   * no honest party is blamed (violations_detected() == 0 everywhere);
//   * every party's evidence chain still verifies;
//   * liveness is restored once the intruder goes passive.
//
// The campaign seed comes from B2B_INTRUDER_SEED (default 11); CI sweeps
// several seeds. A failing schedule replays exactly under its seed.
#include "net/intruder_proxy.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "b2b/arbiter.hpp"
#include "b2b/federation.hpp"
#include "net/reactor_runtime.hpp"
#include "net/tcp_runtime.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b {
namespace {

using namespace std::chrono_literals;
namespace fs = std::filesystem;

/// Campaign seed: B2B_INTRUDER_SEED in the environment, default 11.
std::uint64_t intruder_seed() {
  const char* seed = std::getenv("B2B_INTRUDER_SEED");
  return seed != nullptr ? std::strtoull(seed, nullptr, 10) : 11;
}

/// Spin until `predicate` holds or `timeout` elapses; true on success.
bool wait_for(const std::function<bool()>& predicate,
              std::chrono::milliseconds timeout = 20'000ms) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return predicate();
}

/// A thread-safe payload sink (handlers run on runtime threads).
struct Sink {
  mutable std::mutex mutex;
  std::vector<Bytes> received;

  net::Transport::Handler handler() {
    return [this](const PartyId&, const Bytes& payload) {
      std::lock_guard<std::mutex> lock(mutex);
      received.push_back(payload);
    };
  }

  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mutex);
    return received.size();
  }

  std::multiset<Bytes> contents() const {
    std::lock_guard<std::mutex> lock(mutex);
    return {received.begin(), received.end()};
  }
};

// --- transport stacks the scripted games are parameterized over -------------

/// Thread-per-peer TCP transports sharing one directory.
struct TcpStack {
  std::shared_ptr<net::PeerDirectory> directory =
      std::make_shared<net::PeerDirectory>();
  net::TcpTransport::Config config;

  TcpStack() {
    config.retransmit_interval_micros = 5'000;  // keep the games brisk
    config.reconnect_backoff_min_micros = 5'000;
    config.reconnect_backoff_max_micros = 50'000;
  }

  std::unique_ptr<net::TcpTransport> make(const std::string& name,
                                          std::uint16_t port = 0) {
    auto transport = std::make_unique<net::TcpTransport>(
        PartyId{name}, "127.0.0.1", port, directory, config);
    directory->set(PartyId{name},
                   net::PeerAddress{"127.0.0.1", transport->port()});
    return transport;
  }
};

/// Reactor transports sharing one epoll loop, one pool, one directory.
struct ReactorStack {
  std::shared_ptr<net::PeerDirectory> directory =
      std::make_shared<net::PeerDirectory>();
  net::Reactor reactor;
  std::shared_ptr<net::TaskPool> pool = std::make_shared<net::TaskPool>(2);
  net::ReactorTransport::Config config;

  ReactorStack() {
    config.retransmit_interval_micros = 5'000;
    config.reconnect_backoff_min_micros = 5'000;
    config.reconnect_backoff_max_micros = 50'000;
  }

  std::unique_ptr<net::ReactorTransport> make(const std::string& name,
                                              std::uint16_t port = 0) {
    auto transport = std::make_unique<net::ReactorTransport>(
        PartyId{name}, "127.0.0.1", port, directory, config, reactor, pool);
    directory->set(PartyId{name},
                   net::PeerAddress{"127.0.0.1", transport->port()});
    return transport;
  }
};

// --- scripted game 1: truncation storm ---------------------------------------

/// Truncate the FIRST offer of every fifth sequence number mid-frame
/// (killing the connection each time); retransmission over the re-dialed
/// connection must still deliver everything exactly once. Truncating
/// only the first offer matters: a script that truncated every offer of
/// a seq would defeat its own recovery path forever.
template <typename Stack>
void run_truncation_storm() {
  Stack stack;

  net::IntruderProxy::Config config;
  auto torn = std::make_shared<std::set<std::uint64_t>>();
  auto torn_mutex = std::make_shared<std::mutex>();
  config.script = [torn, torn_mutex](const net::FrameInfo& info)
      -> std::optional<net::IntruderAction> {
    if (info.to_victim && info.frame_type == net::frame::kData &&
        info.seq % 5 == 4) {
      std::lock_guard<std::mutex> lock(*torn_mutex);
      if (torn->insert(info.seq).second) return net::IntruderAction::kTruncate;
    }
    return net::IntruderAction::kForward;
  };
  net::IntruderProxy proxy{stack.directory, config};

  auto b = stack.make("b");
  Sink sink;
  b->set_handler(sink.handler());
  proxy.interpose(PartyId{"b"});
  auto a = stack.make("a");

  std::multiset<Bytes> want;
  for (int i = 0; i < 50; ++i) {
    Bytes payload{static_cast<std::uint8_t>(i)};
    want.insert(payload);
    a->send(PartyId{"b"}, payload);
  }

  ASSERT_TRUE(wait_for([&] { return sink.count() == 50; }));
  EXPECT_EQ(sink.contents(), want);
  EXPECT_TRUE(wait_for([&] { return a->unacked() == 0; }));
  EXPECT_EQ(proxy.stats().truncated, 10u);
  EXPECT_GE(a->stats().retransmissions, 1u);
  // Every truncation folds the intercepted pair; the sender re-dialed.
  EXPECT_GE(proxy.stats().connections_intercepted, 11u);
  proxy.shutdown();
}

TEST(IntruderScriptedGames, TruncationStormHealsTcp) {
  run_truncation_storm<TcpStack>();
}

TEST(IntruderScriptedGames, TruncationStormHealsReactor) {
  run_truncation_storm<ReactorStack>();
}

// --- scripted game 2: cross-incarnation replay campaign ----------------------

/// Replay a recorded frame after every genuine data frame, restarting
/// the sender mid-campaign so the arsenal holds frames from a dead
/// incarnation. Wire v2's incarnation binding must suppress every
/// re-injection (replays_suppressed / connection reset) without losing
/// or duplicating a single genuine payload.
template <typename Stack>
void run_cross_incarnation_replay() {
  Stack stack;

  net::IntruderProxy::Config config;
  config.script = [](const net::FrameInfo& info)
      -> std::optional<net::IntruderAction> {
    if (info.to_victim && info.frame_type == net::frame::kData) {
      return net::IntruderAction::kReplay;
    }
    return net::IntruderAction::kForward;
  };
  net::IntruderProxy proxy{stack.directory, config};

  auto b = stack.make("b");
  Sink sink;
  b->set_handler(sink.handler());
  proxy.interpose(PartyId{"b"});

  auto a = stack.make("a");
  const std::uint16_t a_port = a->port();

  std::multiset<Bytes> want;
  for (int i = 0; i < 5; ++i) {
    Bytes payload{static_cast<std::uint8_t>(i)};
    want.insert(payload);
    a->send(PartyId{"b"}, payload);
  }
  ASSERT_TRUE(wait_for([&] { return sink.count() == 5; }));
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));

  // Restart the sender on its pinned port: a fresh incarnation. The
  // recorded inc-1 frames are now cross-incarnation ammunition, and the
  // proxy's replay cursor cycles the whole arsenal.
  a.reset();
  a = stack.make("a", a_port);

  std::size_t extra = 0;
  bool covered = false;
  for (int batch = 0; batch < 20 && !covered; ++batch) {
    for (int i = 0; i < 5; ++i) {
      Bytes payload{static_cast<std::uint8_t>(100 + extra++)};
      want.insert(payload);
      a->send(PartyId{"b"}, payload);
    }
    ASSERT_TRUE(wait_for([&] { return sink.count() == 5 + extra; }))
        << "batch " << batch << " lost traffic under replay storm";
    covered = proxy.stats().replayed_cross_incarnation > 0 &&
              b->stats().replays_suppressed > 0;
  }

  EXPECT_TRUE(covered)
      << "no cross-incarnation replay was provably suppressed: proxy="
      << proxy.stats().replayed_cross_incarnation
      << " receiver=" << b->stats().replays_suppressed;
  EXPECT_EQ(sink.contents(), want);  // exactly once, despite the storm
  EXPECT_TRUE(wait_for([&] { return a->unacked() == 0; }));
  proxy.shutdown();
}

TEST(IntruderScriptedGames, CrossIncarnationReplayIsSuppressedTcp) {
  run_cross_incarnation_replay<TcpStack>();
}

TEST(IntruderScriptedGames, CrossIncarnationReplayIsSuppressedReactor) {
  run_cross_incarnation_replay<ReactorStack>();
}

// --- scripted game 3: respond blackout resolved by the TTP -------------------

/// The intruder silently drops every kRespond toward the proposer — the
/// one wire-level attack retransmission cannot heal (the drop repeats).
/// The §7 TTP must certify a consistent ABORT from the proposer's
/// incomplete transcript: both parties roll back, nobody is blamed, and
/// agreement resumes once the intruder goes passive.
TEST(IntruderTtpGame, RespondBlackoutResolvedByCertifiedAbort) {
  const ObjectId kObj{"doc"};

  auto directory = std::make_shared<net::PeerDirectory>();
  core::Federation::Options options;
  options.runtime = core::RuntimeKind::kTcp;
  options.tcp_directory = directory;
  options.tcp_transport.retransmit_interval_micros = 10'000;
  options.tcp_transport.reconnect_backoff_min_micros = 5'000;
  options.tcp_transport.reconnect_backoff_max_micros = 50'000;
  // Journaling on: when the blackout lifts, the stalled responds land
  // on a CLOSED run — with a journal they are answered as anomalies
  // (re-sent decide / recorded oddity), never branded violations.
  const fs::path root = fs::temp_directory_path() / "b2b_intruder_ttp_game";
  fs::remove_all(root);
  options.journal_root = (root / "journals").string();
  options.journal_fsync = false;

  // Registers before the federation: delivery threads stop first.
  test::TestRegister alpha_obj, beta_obj;
  core::Federation fed{{"alpha", "beta"}, options};

  // Both parties are interposed: connections are reused bidirectionally
  // ("latest handshake wins"), so the respond may ride back on whichever
  // leg exists — only alpha proposes, so every kRespond heads to alpha.
  net::IntruderProxy::Config pconfig;
  pconfig.script = [](const net::FrameInfo& info)
      -> std::optional<net::IntruderAction> {
    if (info.frame_type == net::frame::kData &&
        info.msg_type == static_cast<std::uint8_t>(core::MsgType::kRespond)) {
      return net::IntruderAction::kDrop;
    }
    return net::IntruderAction::kForward;
  };
  net::IntruderProxy proxy{directory, pconfig};
  proxy.interpose(PartyId{"alpha"});
  proxy.interpose(PartyId{"beta"});

  fed.register_object("alpha", kObj, alpha_obj);
  fed.register_object("beta", kObj, beta_obj);
  fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));
  fed.enable_ttp_termination(kObj, 700'000);  // 700 ms real-time deadline

  alpha_obj.value = bytes_of("blocked");
  core::RunHandle h =
      fed.coordinator("alpha").propagate_new_state(kObj, alpha_obj.get_state());
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, core::RunResult::Outcome::kAborted);
  EXPECT_EQ(h->diagnostic, "TTP-certified abort");
  EXPECT_GE(fed.termination_ttp().aborts_issued(), 1u);

  // Fail-safe: the proposer rolled back, the locked responder was
  // released by the same verdict, and neither blames the other.
  EXPECT_EQ(alpha_obj.value, bytes_of("genesis"));
  ASSERT_TRUE(wait_for([&] {
    return fed.coordinator("beta").replica(kObj).active_run_labels().empty();
  }));
  EXPECT_EQ(beta_obj.value, bytes_of("genesis"));

  // Liveness restored once the intruder goes passive — the stalled
  // responds finally land (late traffic for a closed run is an anomaly,
  // not a violation) and a fresh run agrees.
  proxy.set_active(false);
  alpha_obj.value = bytes_of("after-blackout");
  h = fed.coordinator("alpha").propagate_new_state(kObj,
                                                   alpha_obj.get_state());
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, core::RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(beta_obj.value, bytes_of("after-blackout"));
  EXPECT_EQ(fed.coordinator("alpha").violations_detected(), 0u);
  EXPECT_EQ(fed.coordinator("beta").violations_detected(), 0u);
  EXPECT_TRUE(fed.coordinator("alpha").evidence().verify_chain());
  EXPECT_TRUE(fed.coordinator("beta").evidence().verify_chain());
  proxy.shutdown();
}

// --- scripted game 4: the deal layer under wire attack -----------------------

/// Per-party protocol state a deal game must leave intruder-invariant.
struct DealPartyState {
  Bytes ledger_value;
  Bytes audit_value;
  core::StateTuple ledger_agreed;
  core::GroupTuple ledger_group;
  core::StateTuple audit_agreed;
  core::GroupTuple audit_group;

  friend bool operator==(const DealPartyState&, const DealPartyState&) =
      default;
};

struct DealGameOutcome {
  std::vector<DealPartyState> digest;
  core::DealCoordinator::Stats alpha_deals;
  core::DealCoordinator::Stats beta_deals;
  std::uint64_t ttp_deal_commits = 0;
  std::uint64_t violations = 0;
  bool chains_ok = true;
  std::uint64_t frames_rejected_auth = 0;
  net::IntruderStats stats;
};

/// A fixed sequential deal script (DESIGN.md §12) — a two-leg commit, a
/// vetoed deal, a TTP-escaped commit, and a post-attack commit — over
/// TCP with a session-authenticated wire, with or without a scripted
/// intruder aimed at the deal layer specifically:
///
///   * every kRespond — the prepares that park deal legs undecided — is
///     replayed after forwarding (the transport must suppress the echo);
///   * every kDealDecision frame is WITHHELD on its first transmission
///     (dropped; retransmission must re-deliver the signed verdict, and
///     parked participants must do nothing until it lands);
///   * every kDealEnlist draws a cross-flow splice — a frame recorded on
///     a DIFFERENT connection injected here, the wire image of showing
///     one deal's artifacts to another deal's participant. On the
///     authenticated wire each splice must die at the receiving
///     transport as frames_rejected_auth.
///
/// The attacked twin must end bit-identical to the clean twin, and no
/// party may be blamed: the wire intruder is not a provable defector —
/// it can only delay or destroy, never forge a signed artifact — so an
/// arbiter ruling from a participant's store alone must still read
/// COMMITTED/ABORTED with an empty blame list.
void run_deal_game(bool attacked, DealGameOutcome* out) {
  const ObjectId kLedger{"ledger"};
  const ObjectId kAudit{"audit"};
  const std::vector<std::string> names{"alpha", "beta", "gamma"};
  const std::string tag =
      std::string("deal_") + (attacked ? "attacked" : "clean");

  const fs::path root = fs::temp_directory_path() / ("b2b_intruder_" + tag);
  fs::remove_all(root);

  auto directory = std::make_shared<net::PeerDirectory>();
  core::Federation::Options options;
  options.runtime = core::RuntimeKind::kTcp;
  options.seed = 1;
  options.tcp_directory = directory;
  options.wire_auth = true;
  // Journaling on: the deal layer assumes the paper's stable storage
  // (§4.4), under which a response straggling in after a decision closed
  // its leg is answered from the journal, never branded a violation.
  options.journal_root = (root / "journals").string();
  options.journal_fsync = false;
  options.run_probe_interval_micros = 3'600'000'000ULL;
  options.tcp_transport.retransmit_interval_micros = 10'000;
  options.tcp_transport.reconnect_backoff_min_micros = 5'000;
  options.tcp_transport.reconnect_backoff_max_micros = 50'000;

  // Registers before the federation: delivery threads stop first.
  std::vector<std::unique_ptr<test::TestRegister>> ledgers, audits;
  for (std::size_t i = 0; i < names.size(); ++i) {
    ledgers.push_back(std::make_unique<test::TestRegister>());
    audits.push_back(std::make_unique<test::TestRegister>());
  }

  core::Federation fed{names, options};

  net::IntruderProxy::Config pconfig;
  auto withheld = std::make_shared<std::set<std::string>>();
  auto withheld_mutex = std::make_shared<std::mutex>();
  pconfig.script = [withheld, withheld_mutex](const net::FrameInfo& info)
      -> std::optional<net::IntruderAction> {
    if (info.frame_type != net::frame::kData) {
      return net::IntruderAction::kForward;
    }
    if (info.msg_type == static_cast<std::uint8_t>(core::MsgType::kRespond)) {
      return net::IntruderAction::kReplay;
    }
    if (info.msg_type ==
        static_cast<std::uint8_t>(core::MsgType::kDealDecision)) {
      // Withhold each decision frame exactly once per flow incarnation:
      // a repeat drop would defeat the retransmission that heals it.
      const std::string key = info.client + ">" + info.victim +
                              (info.to_victim ? ">v:" : ">c:") +
                              std::to_string(info.incarnation) + ":" +
                              std::to_string(info.seq);
      std::lock_guard<std::mutex> lock(*withheld_mutex);
      if (withheld->insert(key).second) return net::IntruderAction::kDrop;
    }
    if (info.msg_type ==
        static_cast<std::uint8_t>(core::MsgType::kDealEnlist)) {
      return net::IntruderAction::kSplice;
    }
    return net::IntruderAction::kForward;
  };
  net::IntruderProxy proxy{directory, pconfig};
  if (attacked) {
    for (const auto& name : names) proxy.interpose(PartyId{name});
  }

  for (std::size_t i = 0; i < names.size(); ++i) {
    fed.register_object(names[i], kLedger, *ledgers[i]);
    fed.register_object(names[i], kAudit, *audits[i]);
  }
  fed.bootstrap_object(kLedger, {"alpha", "beta", "gamma"}, bytes_of("L0"));
  fed.bootstrap_object(kAudit, {"alpha", "beta", "gamma"}, bytes_of("A0"));

  auto state_leg = [](const ObjectId& object, const std::string& value) {
    core::DealCoordinator::LegSpec leg;
    leg.object = object;
    leg.payload = bytes_of(value);
    leg.new_state = bytes_of(value);
    leg.is_update = false;
    return leg;
  };
  auto run_deal = [&](const std::string& who, const std::string& ledger_value,
                      const std::string& audit_value,
                      core::RunResult::Outcome want) -> core::RunHandle {
    core::DealCoordinator::DealSpec spec;
    spec.legs.push_back(state_leg(kLedger, ledger_value));
    spec.legs.push_back(state_leg(kAudit, audit_value));
    core::RunHandle h = fed.start_deal(who, spec);
    if (!fed.run_until_done(h)) {
      ADD_FAILURE() << tag << ": deal by " << who
                    << " blocked (liveness lost)";
      return {};
    }
    EXPECT_EQ(h->outcome, want)
        << tag << ": deal by " << who << ": " << h->diagnostic;
    fed.settle();
    return h;
  };

  // Deal 1: a clean two-leg commit under the replay/withhold/splice storm.
  core::RunHandle d1 =
      run_deal("alpha", "L1", "A1", core::RunResult::Outcome::kAgreed);
  if (!d1) {
    proxy.shutdown();
    return;
  }

  // Deal 2: gamma's audit policy vetoes — every leg must roll back, and
  // the withheld (then retransmitted) signed abort must release the
  // parked clean leg at every participant.
  audits[2]->policy = [](BytesView, const core::ValidationContext&) {
    return core::Decision::rejected("audit says no");
  };
  core::RunHandle d2 =
      run_deal("beta", "L2", "A2", core::RunResult::Outcome::kVetoed);
  audits[2]->policy = nullptr;
  if (!d2) {
    proxy.shutdown();
    return;
  }
  ASSERT_EQ(d2->vetoers.size(), 1u);
  EXPECT_EQ(d2->vetoers[0], PartyId{"gamma"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(ledgers[i]->value, bytes_of("L1")) << tag << " " << names[i];
    EXPECT_EQ(audits[i]->value, bytes_of("A1")) << tag << " " << names[i];
  }

  // Deal 3: the commit is routed through the TTP's atomic registration —
  // the kDealTerminationRequest/Verdict message kinds join the traffic
  // the intruder sees.
  fed.enable_deal_escape();
  core::RunHandle d3 =
      run_deal("alpha", "L3", "A3", core::RunResult::Outcome::kAgreed);
  if (!d3) {
    proxy.shutdown();
    return;
  }

  // Deal 4: intruder passive — liveness must look like it never left.
  proxy.set_active(false);
  core::RunHandle d4 =
      run_deal("beta", "L4", "A4", core::RunResult::Outcome::kAgreed);
  if (!d4) {
    proxy.shutdown();
    return;
  }
  fed.settle();

  // Arbitration from a PARTICIPANT's store alone: the committed deal's
  // legs rule COMMITTED, the vetoed deal's legs rule ABORTED, and the
  // blame list is empty both times — the wire intruder never produced a
  // conflicting signed artifact to pin on anybody.
  core::Arbiter arbiter{fed.make_verifier()};
  std::map<PartyId, crypto::RsaPublicKey> keys;
  for (const auto& name : names) {
    keys.emplace(PartyId{name}, fed.keypair(name).public_key());
  }
  std::optional<core::DealDecisionMsg> committed =
      fed.coordinator("alpha").deals().decision_of(d1->run_label);
  ASSERT_TRUE(committed.has_value()) << tag;
  for (const core::DealLeg& leg : committed->decision.legs) {
    core::Arbiter::DealArbitrationReport report = arbiter.arbitrate_deal(
        fed.coordinator("gamma").messages(), leg.proposed.label(), keys);
    EXPECT_TRUE(report.enlist_found) << tag << ": " << report.ruling;
    EXPECT_TRUE(report.committed) << tag << ": " << report.ruling;
    EXPECT_FALSE(report.equivocation) << tag << ": " << report.ruling;
    EXPECT_TRUE(report.blamed.empty()) << tag << ": " << report.ruling;
    EXPECT_NE(report.ruling.find("COMMITTED"), std::string::npos)
        << tag << ": " << report.ruling;
  }
  std::optional<core::DealDecisionMsg> aborted =
      fed.coordinator("beta").deals().decision_of(d2->run_label);
  ASSERT_TRUE(aborted.has_value()) << tag;
  for (const core::DealLeg& leg : aborted->decision.legs) {
    core::Arbiter::DealArbitrationReport report = arbiter.arbitrate_deal(
        fed.coordinator("gamma").messages(), leg.proposed.label(), keys);
    EXPECT_TRUE(report.enlist_found) << tag << ": " << report.ruling;
    EXPECT_FALSE(report.committed) << tag << ": " << report.ruling;
    EXPECT_FALSE(report.equivocation) << tag << ": " << report.ruling;
    EXPECT_TRUE(report.blamed.empty()) << tag << ": " << report.ruling;
    EXPECT_NE(report.ruling.find("ABORTED"), std::string::npos)
        << tag << ": " << report.ruling;
  }

  for (std::size_t i = 0; i < names.size(); ++i) {
    core::Coordinator& coord = fed.coordinator(names[i]);
    out->violations += coord.violations_detected();
    out->chains_ok = out->chains_ok && coord.evidence().verify_chain();
    out->frames_rejected_auth +=
        fed.transport(names[i]).stats().frames_rejected_auth;

    DealPartyState d;
    d.ledger_value = ledgers[i]->value;
    d.audit_value = audits[i]->value;
    const core::Replica& lr = coord.replica(kLedger);
    const core::Replica& ar = coord.replica(kAudit);
    d.ledger_agreed = lr.agreed_tuple();
    d.ledger_group = lr.group_tuple();
    d.audit_agreed = ar.agreed_tuple();
    d.audit_group = ar.group_tuple();
    out->digest.push_back(d);
  }
  out->alpha_deals = fed.coordinator("alpha").deals().stats();
  out->beta_deals = fed.coordinator("beta").deals().stats();
  out->ttp_deal_commits = fed.termination_ttp().deal_commits_issued();
  out->stats = proxy.stats();
  proxy.shutdown();
}

TEST(IntruderDealGame, AttackedDealsMatchCleanTwinExactly) {
  DealGameOutcome clean;
  run_deal_game(/*attacked=*/false, &clean);
  ASSERT_FALSE(::testing::Test::HasFailure()) << "clean reference run failed";

  DealGameOutcome attacked;
  run_deal_game(/*attacked=*/true, &attacked);
  ASSERT_FALSE(::testing::Test::HasFailure()) << "attacked deal run failed";

  // Safety: the intruder changed NOTHING either twin agreed on.
  ASSERT_EQ(clean.digest.size(), attacked.digest.size());
  for (std::size_t i = 0; i < clean.digest.size(); ++i) {
    EXPECT_EQ(clean.digest[i].ledger_value, attacked.digest[i].ledger_value)
        << "party " << i;
    EXPECT_EQ(clean.digest[i].audit_value, attacked.digest[i].audit_value)
        << "party " << i;
    EXPECT_TRUE(clean.digest[i] == attacked.digest[i])
        << "party " << i
        << ": tuples diverged between the clean and attacked deal twins";
  }

  // Identical deal ledgers: same commits, same abort, same TTP verdict.
  EXPECT_EQ(attacked.alpha_deals.started, clean.alpha_deals.started);
  EXPECT_EQ(attacked.alpha_deals.committed, clean.alpha_deals.committed);
  EXPECT_EQ(attacked.alpha_deals.aborted, clean.alpha_deals.aborted);
  EXPECT_EQ(attacked.alpha_deals.ttp_registrations,
            clean.alpha_deals.ttp_registrations);
  EXPECT_EQ(attacked.alpha_deals.ttp_verdicts, clean.alpha_deals.ttp_verdicts);
  EXPECT_EQ(attacked.beta_deals.committed, clean.beta_deals.committed);
  EXPECT_EQ(attacked.beta_deals.aborted, clean.beta_deals.aborted);
  EXPECT_EQ(attacked.ttp_deal_commits, clean.ttp_deal_commits);

  // Nobody was blamed, every chain verifies.
  EXPECT_EQ(clean.violations, 0u);
  EXPECT_EQ(attacked.violations, 0u);
  EXPECT_TRUE(clean.chains_ok);
  EXPECT_TRUE(attacked.chains_ok);

  // The attack actually fought: prepares were replayed, decisions were
  // withheld, and cross-flow splices fired — and every splice died at a
  // receiving transport (zero reached an application: see the digests).
  const auto& s = attacked.stats;
  EXPECT_GT(s.replayed, 0u) << "no prepare was ever replayed";
  EXPECT_GT(s.dropped, 0u) << "no deal decision was ever withheld";
  EXPECT_GT(s.spliced, 0u) << "no cross-flow splice ever fired";
  EXPECT_GT(attacked.frames_rejected_auth, 0u)
      << "no spliced frame was rejected at a transport";
  EXPECT_EQ(clean.frames_rejected_auth, 0u)
      << "a clean authenticated run rejected its own traffic";

  std::cout << "[intruder-deal] frames=" << s.frames_seen
            << " replay=" << s.replayed << " withheld=" << s.dropped
            << " splice=" << s.spliced
            << " transport_rejects=" << attacked.frames_rejected_auth
            << std::endl;
}

// --- the coverage-guided campaign --------------------------------------------

/// Everything a party's protocol state that must be intruder-invariant:
/// compared field-by-field between the attacked and the clean run.
struct PartyDigest {
  Bytes ledger_value;
  Bytes audit_value;
  core::StateTuple ledger_agreed;
  core::GroupTuple ledger_group;
  std::vector<PartyId> ledger_members;
  core::StateTuple audit_agreed;
  core::GroupTuple audit_group;
  std::vector<PartyId> audit_members;

  friend bool operator==(const PartyDigest&, const PartyDigest&) = default;
};

struct CampaignOutcome {
  std::vector<PartyDigest> digest;
  net::IntruderStats stats;
  std::vector<std::string> transitions;
  std::size_t actions = 0;
  std::uint64_t violations = 0;
  bool chains_ok = true;
  std::uint64_t frames_rejected_auth = 0;
  std::uint64_t replays_suppressed = 0;
};

/// One full federation campaign: three organisations, two objects, a
/// fixed sequential script of propose/respond/decide runs, a membership
/// join and a TTP-armed run — with or without the seeded intruder on
/// every party's byte streams. The script is strictly sequential, so a
/// clean and an attacked run of the same seed must end bit-identical.
/// With `auth` the federation session-authenticates its wire (v3 MACs)
/// and the intruder draws the widened arsenal — live rewrites, forged
/// acks, hello downgrades, cross-flow splices — every one of which must
/// die at the receiving transport as frames_rejected_auth.
void run_federation_campaign(core::RuntimeKind kind, std::uint64_t seed,
                             bool attacked, bool auth, CampaignOutcome* out) {
  const ObjectId kLedger{"ledger"};
  const ObjectId kAudit{"audit"};
  const std::vector<std::string> names{"alpha", "beta", "gamma"};

  const std::string tag =
      std::string(kind == core::RuntimeKind::kTcp ? "tcp" : "reactor") +
      (auth ? "_auth" : "") + (attacked ? "_attacked_" : "_clean_") +
      std::to_string(seed);
  const fs::path root =
      fs::temp_directory_path() / ("b2b_intruder_campaign_" + tag);
  fs::remove_all(root);

  auto directory = std::make_shared<net::PeerDirectory>();
  core::Federation::Options options;
  options.runtime = kind;
  options.seed = 1;  // the federation seed is FIXED; only the intruder varies
  options.tcp_directory = directory;
  // Journaling on: an app-level replay that survives transport dedup is
  // then answered from the journal (an anomaly), never blamed.
  options.journal_root = (root / "journals").string();
  options.journal_fsync = false;
  // In-flight-run probes are redundant under a healing transport and
  // would make the clean/attacked rng draws diverge.
  options.run_probe_interval_micros = 3'600'000'000ULL;
  options.tcp_transport.retransmit_interval_micros = 10'000;
  options.tcp_transport.reconnect_backoff_min_micros = 5'000;
  options.tcp_transport.reconnect_backoff_max_micros = 50'000;
  options.reactor_transport.retransmit_interval_micros = 10'000;
  options.reactor_transport.reconnect_backoff_min_micros = 5'000;
  options.reactor_transport.reconnect_backoff_max_micros = 50'000;
  options.wire_auth = auth;

  // Registers before the federation: delivery threads stop first.
  std::vector<std::unique_ptr<test::TestRegister>> ledgers, audits;
  for (std::size_t i = 0; i < names.size(); ++i) {
    ledgers.push_back(std::make_unique<test::TestRegister>());
    audits.push_back(std::make_unique<test::TestRegister>());
  }

  core::Federation fed{names, options};

  net::IntruderProxy::Config pconfig;
  pconfig.schedule.seed = seed;
  pconfig.schedule.action_probability = 0.10;
  pconfig.schedule.max_delay_millis = 10;
  // Only an authenticated wire can detect live forgeries — the widened
  // arsenal is drawn exactly when the federation can be expected to win.
  pconfig.schedule.auth_arsenal = auth;
  net::IntruderProxy proxy{directory, pconfig};
  if (attacked) {
    // Interpose between transport bind and the first dial: every
    // connection in the federation then runs through the intruder.
    for (const auto& name : names) proxy.interpose(PartyId{name});
  }

  for (std::size_t i = 0; i < names.size(); ++i) {
    fed.register_object(names[i], kLedger, *ledgers[i]);
    fed.register_object(names[i], kAudit, *audits[i]);
  }
  fed.bootstrap_object(kLedger, {"alpha", "beta"}, bytes_of("ledger-genesis"));
  fed.bootstrap_object(kAudit, {"alpha", "beta", "gamma"},
                       bytes_of("audit-genesis"));

  // On a liveness loss the transport/proxy counters say where frames
  // died (sender gave up? receiver rejecting? proxy holding?) — dump
  // them into the failure so a CI wedge is diagnosable post-mortem.
  auto dump_wedge = [&](const std::string& what) {
    // Two samples 2 s apart: growing counters show what is still
    // moving (retransmit ticks? bytes? proxy frames?) at wedge time.
    for (int sample = 0; sample < 2; ++sample) {
      if (sample > 0) std::this_thread::sleep_for(2s);
      std::cout << "[wedge:" << sample << "] " << tag << " during: " << what
                << "\n";
      for (const auto& name : names) {
        const auto s = fed.transport(name).stats();
        std::cout << "[wedge:" << sample << "] " << name
                  << " unacked=" << fed.transport(name).unacked()
                  << " sent=" << s.app_sent << " delivered=" << s.app_delivered
                  << " retx=" << s.retransmissions << " acks=" << s.acks_sent
                  << " bytes_out=" << s.bytes_sent
                  << " bytes_in=" << s.bytes_received
                  << " dup_supp=" << s.duplicates_suppressed
                  << " rej_auth=" << s.frames_rejected_auth
                  << " replay_supp=" << s.replays_suppressed
                  << " crc_drop=" << s.frames_dropped_crc
                  << " connects=" << s.connects
                  << " reconnects=" << s.reconnects << "\n";
      }
      const auto p = proxy.stats();
      std::cout << "[wedge:" << sample
                << "] proxy pairs=" << p.connections_intercepted
                << " frames=" << p.frames_seen << " fwd=" << p.forwarded
                << " drop=" << p.dropped << " delay=" << p.delayed
                << " dup=" << p.duplicated << " reorder=" << p.reordered
                << " replay=" << p.replayed << " trunc=" << p.truncated
                << " mutate=" << p.mutated << " rewrite=" << p.rewritten
                << " forge_ack=" << p.acks_forged
                << " downgrade=" << p.downgraded << " splice=" << p.spliced
                << std::endl;
    }
  };
  auto agreed = [&](core::RunHandle h, const std::string& what) -> bool {
    if (!fed.run_until_done(h)) {
      dump_wedge(what);
      ADD_FAILURE() << tag << ": " << what << " blocked (liveness lost)";
      return false;
    }
    if (h->outcome != core::RunResult::Outcome::kAgreed) {
      ADD_FAILURE() << tag << ": " << what
                    << " did not agree: " << h->diagnostic;
      return false;
    }
    // The script is strictly sequential: wait until every responder has
    // processed the decide before the next proposer moves.
    fed.settle();
    return true;
  };
  auto propose = [&](const std::string& who, const ObjectId& obj,
                     test::TestRegister& reg, const std::string& value) {
    reg.value = bytes_of(value);
    return agreed(fed.coordinator(who).propagate_new_state(obj, reg.value),
                  who + " proposes " + value);
  };

  // Phase 1: plain propose/respond/decide traffic on both objects.
  if (!propose("alpha", kLedger, *ledgers[0], "L1")) return;
  if (!propose("beta", kLedger, *ledgers[1], "L2")) return;
  if (!propose("beta", kAudit, *audits[1], "A1")) return;
  if (!propose("gamma", kAudit, *audits[2], "A2")) return;
  if (!propose("alpha", kAudit, *audits[0], "A3")) return;

  // Phase 2: membership — gamma joins the ledger through beta, then
  // both the newcomer and an old member drive runs of the grown group.
  if (!agreed(fed.coordinator("gamma").propagate_connect(kLedger,
                                                         PartyId{"beta"}),
              "gamma joins ledger")) {
    return;
  }
  if (!propose("gamma", kLedger, *ledgers[2], "L3")) return;
  if (!propose("alpha", kLedger, *ledgers[0], "L4")) return;

  // The update variant rides the same runs with a different body shape.
  audits[0]->pending_suffix = bytes_of("+u");
  audits[0]->value = bytes_of("A3+u");
  if (!agreed(fed.coordinator("alpha").propagate_update(
                  kAudit, audits[0]->get_update(), audits[0]->get_state()),
              "alpha updates audit")) {
    return;
  }

  // Phase 3: a TTP-armed run. The deadline is far beyond the healing
  // time of any wire attack, so the TTP stays quiet — the armed path
  // (extra message kinds, deadline plumbing) is what is under fire.
  fed.enable_ttp_termination(kAudit, 30'000'000);
  if (!propose("beta", kAudit, *audits[1], "A4")) return;

  // Phase 4: intruder passive — liveness and agreement must look
  // exactly like they never left.
  proxy.set_active(false);
  if (!propose("beta", kLedger, *ledgers[1], "L5")) return;
  if (!propose("gamma", kAudit, *audits[2], "A5")) return;
  fed.settle();

  for (std::size_t i = 0; i < names.size(); ++i) {
    core::Coordinator& coord = fed.coordinator(names[i]);
    out->violations += coord.violations_detected();
    out->chains_ok = out->chains_ok && coord.evidence().verify_chain();
    const auto s = fed.transport(names[i]).stats();
    out->frames_rejected_auth += s.frames_rejected_auth;
    out->replays_suppressed += s.replays_suppressed;

    PartyDigest d;
    d.ledger_value = ledgers[i]->value;
    d.audit_value = audits[i]->value;
    const core::Replica& lr = coord.replica(kLedger);
    const core::Replica& ar = coord.replica(kAudit);
    d.ledger_agreed = lr.agreed_tuple();
    d.ledger_group = lr.group_tuple();
    d.ledger_members = lr.members();
    d.audit_agreed = ar.agreed_tuple();
    d.audit_group = ar.group_tuple();
    d.audit_members = ar.members();
    out->digest.push_back(d);
  }
  out->stats = proxy.stats();
  out->transitions = proxy.transitions_covered();
  out->actions = proxy.actions_taken();
  proxy.shutdown();
}

/// (runtime, session-authenticated wire?) — the campaign matrix.
class IntruderCampaign
    : public ::testing::TestWithParam<std::tuple<core::RuntimeKind, bool>> {};

TEST_P(IntruderCampaign, AttackedFederationMatchesCleanRunExactly) {
  const auto [kind, auth] = GetParam();
  const std::uint64_t seed = intruder_seed();

  CampaignOutcome clean;
  run_federation_campaign(kind, seed, /*attacked=*/false, auth, &clean);
  ASSERT_FALSE(::testing::Test::HasFailure()) << "clean reference run failed";

  CampaignOutcome attacked;
  run_federation_campaign(kind, seed, /*attacked=*/true, auth, &attacked);
  ASSERT_FALSE(::testing::Test::HasFailure())
      << "attacked run failed under seed " << seed;

  // Safety: the intruder changed NOTHING the protocol agreed on.
  ASSERT_EQ(clean.digest.size(), attacked.digest.size());
  for (std::size_t i = 0; i < clean.digest.size(); ++i) {
    EXPECT_EQ(clean.digest[i].ledger_value, attacked.digest[i].ledger_value)
        << "party " << i;
    EXPECT_EQ(clean.digest[i].audit_value, attacked.digest[i].audit_value)
        << "party " << i;
    EXPECT_TRUE(clean.digest[i] == attacked.digest[i])
        << "party " << i
        << ": tuples/membership diverged between clean and attacked runs";
  }
  // No honest party was blamed, and every evidence chain verifies.
  EXPECT_EQ(clean.violations, 0u);
  EXPECT_EQ(attacked.violations, 0u);
  EXPECT_TRUE(attacked.chains_ok);

  // The campaign actually fought: frames flowed through the proxy and
  // the schedule spent adversarial actions on them.
  EXPECT_GT(attacked.stats.frames_seen, 0u);
  EXPECT_GT(attacked.actions, 0u);
  EXPECT_FALSE(attacked.transitions.empty());

  const auto& s = attacked.stats;
  if (auth) {
    // The widened arsenal fired, and every live forgery died at the
    // receiving transport (zero of them reached an application: the
    // digests above are bit-identical to the clean twin).
    EXPECT_GT(s.rewritten + s.acks_forged + s.downgraded + s.spliced, 0u)
        << "the auth arsenal never fired under seed " << seed;
    EXPECT_GT(attacked.frames_rejected_auth, 0u)
        << "no forged/rewritten/spliced frame was rejected at a transport";
    EXPECT_EQ(clean.frames_rejected_auth, 0u)
        << "a clean authenticated run rejected its own traffic";
  }
  // (Without auth the counter still moves — mutated hellos are rejected
  // at the handshake — so only the auth legs pin its behaviour.)

  // Coverage report for EXPERIMENTS.md E21/E22.
  std::cout << "[intruder] seed=" << seed << " runtime="
            << (kind == core::RuntimeKind::kTcp ? "tcp" : "reactor")
            << " auth=" << (auth ? 1 : 0) << " frames=" << s.frames_seen
            << " actions=" << attacked.actions << " (drop=" << s.dropped
            << " delay=" << s.delayed << " dup=" << s.duplicated
            << " reorder=" << s.reordered << " replay=" << s.replayed
            << " xinc=" << s.replayed_cross_incarnation
            << " trunc=" << s.truncated << " mutate=" << s.mutated
            << " rewrite=" << s.rewritten << " forge_ack=" << s.acks_forged
            << " downgrade=" << s.downgraded << " splice=" << s.spliced << ")"
            << " transport_rejects=" << attacked.frames_rejected_auth
            << " transport_replay_suppressed=" << attacked.replays_suppressed
            << "\n[intruder] transitions covered ("
            << attacked.transitions.size() << "):";
  for (const auto& t : attacked.transitions) std::cout << " " << t;
  std::cout << std::endl;
}

INSTANTIATE_TEST_SUITE_P(
    Sockets, IntruderCampaign,
    ::testing::Combine(::testing::Values(core::RuntimeKind::kTcp,
                                         core::RuntimeKind::kReactor),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<core::RuntimeKind, bool>>&
           info) {
      std::string name = std::get<0>(info.param) == core::RuntimeKind::kTcp
                             ? "Tcp"
                             : "Reactor";
      if (std::get<1>(info.param)) name += "Auth";
      return name;
    });

}  // namespace
}  // namespace b2b
