// ThreadedTransport: the same §4.2 delivery contract as ReliableEndpoint
// (eventual once-only delivery across loss, duplication and crash/
// recovery), but on real OS threads over the in-process ThreadedNetwork.
#include "net/threaded_runtime.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace b2b::net {
namespace {

using namespace std::chrono_literals;

/// Spin until `predicate` holds or `timeout` elapses; true on success.
bool wait_for(const std::function<bool()>& predicate,
              std::chrono::milliseconds timeout = 10'000ms) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return predicate();
}

/// A thread-safe payload sink (the handler runs on the receiver thread).
struct Sink {
  mutable std::mutex mutex;
  std::vector<Bytes> received;

  Transport::Handler handler() {
    return [this](const PartyId&, const Bytes& payload) {
      std::lock_guard<std::mutex> lock(mutex);
      received.push_back(payload);
    };
  }

  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mutex);
    return received.size();
  }

  std::multiset<Bytes> contents() const {
    std::lock_guard<std::mutex> lock(mutex);
    return {received.begin(), received.end()};
  }
};

TEST(ThreadedTransportTest, DeliversPayloadsBetweenParties) {
  ThreadedNetwork network(1);
  ThreadedTransport a(network, PartyId{"a"});
  ThreadedTransport b(network, PartyId{"b"});
  Sink a_sink, b_sink;
  a.set_handler(a_sink.handler());
  b.set_handler(b_sink.handler());

  std::multiset<Bytes> a_want, b_want;
  for (int i = 0; i < 10; ++i) {
    Bytes to_b{static_cast<std::uint8_t>(i)};
    Bytes to_a{static_cast<std::uint8_t>(100 + i)};
    a.send(PartyId{"b"}, to_b);
    b.send(PartyId{"a"}, to_a);
    b_want.insert(std::move(to_b));
    a_want.insert(std::move(to_a));
  }

  ASSERT_TRUE(wait_for([&] { return a_sink.count() == 10 && b_sink.count() == 10; }));
  EXPECT_EQ(a_sink.contents(), a_want);
  EXPECT_EQ(b_sink.contents(), b_want);
  ASSERT_TRUE(wait_for([&] { return a.unacked() == 0 && b.unacked() == 0; }));
  EXPECT_EQ(a.stats().app_sent, 10u);
  EXPECT_EQ(b.stats().app_delivered, 10u);
}

TEST(ThreadedTransportTest, RetransmitsThroughInjectedLoss) {
  ThreadedFaults faults;
  faults.drop_probability = 0.5;
  ThreadedNetwork network(2, faults);
  ThreadedTransport a(network, PartyId{"a"});
  ThreadedTransport b(network, PartyId{"b"});
  a.set_handler([](const PartyId&, const Bytes&) {});
  Sink sink;
  b.set_handler(sink.handler());

  for (int i = 0; i < 50; ++i) {
    a.send(PartyId{"b"}, Bytes{static_cast<std::uint8_t>(i)});
  }

  // Despite heavy loss, every payload eventually arrives exactly once.
  ASSERT_TRUE(wait_for([&] { return sink.count() == 50; }));
  ASSERT_TRUE(wait_for([&] { return a.unacked() == 0; }));
  std::multiset<Bytes> want;
  for (int i = 0; i < 50; ++i) {
    want.insert(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_EQ(sink.contents(), want);
  EXPECT_GT(a.stats().retransmissions, 0u);
  EXPECT_GT(network.stats().datagrams_dropped, 0u);
}

TEST(ThreadedTransportTest, MasksDuplicationToOnceOnlyDelivery) {
  ThreadedFaults faults;
  faults.duplicate_probability = 1.0;  // the fabric doubles every datagram
  ThreadedNetwork network(3, faults);
  ThreadedTransport a(network, PartyId{"a"});
  ThreadedTransport b(network, PartyId{"b"});
  a.set_handler([](const PartyId&, const Bytes&) {});
  Sink sink;
  b.set_handler(sink.handler());

  for (int i = 0; i < 20; ++i) {
    a.send(PartyId{"b"}, Bytes{static_cast<std::uint8_t>(i)});
  }

  ASSERT_TRUE(wait_for([&] { return a.unacked() == 0; }));
  ASSERT_TRUE(wait_for([&] { return b.quiescent(); }));
  EXPECT_EQ(sink.count(), 20u);  // exactly once each, never twice
  EXPECT_GT(network.stats().datagrams_duplicated, 0u);
  EXPECT_GT(b.stats().duplicates_suppressed, 0u);
}

TEST(ThreadedTransportTest, ResumesAfterReceiverCrashRecovery) {
  ThreadedNetwork network(4);
  ThreadedTransport a(network, PartyId{"a"});
  ThreadedTransport b(network, PartyId{"b"});
  a.set_handler([](const PartyId&, const Bytes&) {});
  Sink sink;
  b.set_handler(sink.handler());

  network.set_alive(PartyId{"b"}, false);
  a.send(PartyId{"b"}, Bytes{42});
  std::this_thread::sleep_for(20ms);  // several retransmit intervals
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(a.unacked(), 1u);  // still queued: the channel persists

  network.set_alive(PartyId{"b"}, true);
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  EXPECT_EQ(sink.contents(), std::multiset<Bytes>{Bytes{42}});
  ASSERT_TRUE(wait_for([&] { return a.unacked() == 0; }));
}

TEST(ThreadedTransportTest, QuiescenceReflectsOutstandingTraffic) {
  ThreadedNetwork network(5);
  ThreadedTransport a(network, PartyId{"a"});
  ThreadedTransport b(network, PartyId{"b"});
  a.set_handler([](const PartyId&, const Bytes&) {});
  b.set_handler([](const PartyId&, const Bytes&) {});

  EXPECT_TRUE(a.quiescent());  // nothing ever sent

  // With the peer down, the un-acked message keeps `a` non-quiescent.
  network.set_alive(PartyId{"b"}, false);
  a.send(PartyId{"b"}, Bytes{1});
  EXPECT_FALSE(a.quiescent());
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(a.quiescent());

  // Recovery drains the channel; both sides settle.
  network.set_alive(PartyId{"b"}, true);
  ASSERT_TRUE(wait_for([&] { return a.quiescent() && b.quiescent(); }));
  EXPECT_EQ(a.unacked(), 0u);
}

TEST(ThreadedRuntimeTest, TimerInFlightCannotRaceBundleTeardown) {
  // Regression: ThreadedRuntime used to rely on member destruction order
  // to stop its workers, which tore transports down BEFORE joining the
  // SystemClock timer thread — so a schedule_after callback in flight
  // could call into a destroyed transport. The explicit destructor now
  // joins the timer first. Sweep the delay so some callbacks land exactly
  // inside the teardown window; under TSan a surviving race is a failure.
  for (int i = 0; i < 50; ++i) {
    ThreadedRuntime::Options options;
    auto runtime = std::make_unique<ThreadedRuntime>(options);
    Transport& a = runtime->add_party(PartyId{"a"});
    a.set_handler([](const PartyId&, const Bytes&) {});
    runtime->add_party(PartyId{"b"})
        .set_handler([](const PartyId&, const Bytes&) {});
    runtime->clock().schedule_after(
        static_cast<std::uint64_t>(i % 10) * 50,
        [&a] { a.send(PartyId{"b"}, Bytes{1}); });
    runtime.reset();  // destruction races the in-flight timer
  }
}

TEST(ThreadedTransportTest, ExecutorSettlesOnQuiescence) {
  ThreadedFaults faults;
  faults.drop_probability = 0.3;
  ThreadedNetwork network(6, faults);
  ThreadedTransport a(network, PartyId{"a"});
  ThreadedTransport b(network, PartyId{"b"});
  a.set_handler([](const PartyId&, const Bytes&) {});
  Sink sink;
  b.set_handler(sink.handler());
  ThreadedExecutor executor(
      [&] { return a.quiescent() && b.quiescent(); });

  for (int i = 0; i < 20; ++i) {
    a.send(PartyId{"b"}, Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(executor.run_until([&] { return sink.count() == 20; }));
  executor.settle();
  EXPECT_EQ(a.unacked(), 0u);
  EXPECT_EQ(sink.count(), 20u);
}

}  // namespace
}  // namespace b2b::net
