// ReactorTransport: the §4.2 delivery contract (eventual once-only
// delivery) over non-blocking sockets on one epoll loop — the same wire
// protocol and byte-stream failure modes as tcp_transport_test.cpp, plus
// the fan-in shapes only an event loop meets: hundreds of simultaneous
// dials into one acceptor, write backpressure (kernel buffer full →
// EPOLLOUT resume), restart churn, and fd exhaustion at accept.
#include "net/reactor_runtime.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "crypto/sha256.hpp"
#include "net/frame.hpp"
#include "net/wire_auth.hpp"
#include "store/crc32.hpp"
#include "tests/support/test_keys.hpp"
#include "wire/codec.hpp"

namespace b2b::net {
namespace {

using namespace std::chrono_literals;

/// Spin until `predicate` holds or `timeout` elapses; true on success.
bool wait_for(const std::function<bool()>& predicate,
              std::chrono::milliseconds timeout = 10'000ms) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return predicate();
}

/// A thread-safe payload sink (the handler runs on a pool worker).
struct Sink {
  mutable std::mutex mutex;
  std::vector<Bytes> received;

  Transport::Handler handler() {
    return [this](const PartyId&, const Bytes& payload) {
      std::lock_guard<std::mutex> lock(mutex);
      received.push_back(payload);
    };
  }

  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mutex);
    return received.size();
  }

  std::multiset<Bytes> contents() const {
    std::lock_guard<std::mutex> lock(mutex);
    return {received.begin(), received.end()};
  }
};

/// Transports sharing one loop, one pool, one directory on localhost.
struct Fixture {
  std::shared_ptr<PeerDirectory> directory =
      std::make_shared<PeerDirectory>();
  Reactor reactor;
  std::shared_ptr<TaskPool> pool = std::make_shared<TaskPool>(4);
  ReactorTransport::Config config;

  Fixture() {
    config.retransmit_interval_micros = 5'000;  // keep tests brisk
    config.reconnect_backoff_min_micros = 5'000;
    config.reconnect_backoff_max_micros = 50'000;
  }

  std::unique_ptr<ReactorTransport> make(const std::string& name,
                                         std::uint16_t port = 0) {
    auto transport = std::make_unique<ReactorTransport>(
        PartyId{name}, "127.0.0.1", port, directory, config, reactor, pool);
    directory->set(PartyId{name},
                   PeerAddress{"127.0.0.1", transport->port()});
    return transport;
  }

  /// Like make(), with wire v3 session auth on (test-pool PKI).
  std::unique_ptr<ReactorTransport> make_auth(const std::string& name,
                                              std::uint16_t port = 0);
};

// --- wire-format helpers for the raw-socket tests --------------------------

Bytes frame_with_crc(const Bytes& payload, std::uint32_t crc) {
  Bytes framed(8 + payload.size());
  for (int i = 0; i < 4; ++i) {
    framed[i] = static_cast<std::uint8_t>(payload.size() >> (8 * i));
    framed[4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  std::copy(payload.begin(), payload.end(), framed.begin() + 8);
  return framed;
}

Bytes make_frame(const Bytes& payload) {
  return frame_with_crc(payload, store::crc32(payload));
}

Bytes hello_payload(const std::string& from, const std::string& to,
                    std::uint64_t incarnation) {
  return frame::encode_hello(PartyId{from}, PartyId{to}, incarnation);
}

/// Wire v2: data frames carry the sender incarnation their seq lives in.
Bytes data_payload(std::uint64_t incarnation, std::uint64_t seq,
                   const Bytes& app) {
  return frame::encode_data(incarnation, seq, app);
}

bool send_bytes(Socket& socket, const Bytes& bytes) {
  return socket.send_all(bytes.data(), bytes.size());
}

/// Read one [len][crc][payload] frame off a raw socket (blocking).
bool recv_frame(Socket& socket, Bytes* payload) {
  std::uint8_t header[8];
  if (!socket.recv_exact(header, sizeof header)) return false;
  frame::Header hdr;
  if (!frame::decode_header(header, frame::kMaxFrameLen, &hdr)) return false;
  payload->resize(hdr.len);
  return hdr.len == 0 || socket.recv_exact(payload->data(), hdr.len);
}

// --- wire v3 session-auth helpers (DESIGN.md §11) ---------------------------

/// A fixed roster over the shared deterministic test keypairs.
std::size_t roster_index(const std::string& name) {
  if (name == "a") return 0;
  if (name == "b") return 1;
  return 2;  // the third party "x" the raw-socket games play
}

WireAuth test_auth(const std::string& self) {
  WireAuth auth;
  auth.enabled = true;
  // The pool keys are process-lifetime statics; alias, don't own.
  auth.private_key = std::shared_ptr<const crypto::RsaPrivateKey>(
      std::shared_ptr<const void>{},
      &crypto::test::shared_test_key(roster_index(self)));
  auth.peer_key = [](const PartyId& peer) {
    return std::make_shared<crypto::RsaPublicKey>(
        crypto::test::shared_test_key(roster_index(peer.str())).public_key());
  };
  return auth;
}

std::unique_ptr<ReactorTransport> Fixture::make_auth(const std::string& name,
                                                     std::uint16_t port) {
  ReactorTransport::Config auth_config = config;
  auth_config.auth = test_auth(name);
  auto transport = std::make_unique<ReactorTransport>(
      PartyId{name}, "127.0.0.1", port, directory, auth_config, reactor, pool);
  directory->set(PartyId{name}, PeerAddress{"127.0.0.1", transport->port()});
  return transport;
}

/// Send `from`'s signed, key-carrying hello on a raw socket and return the
/// derived send-direction keys. The games below use a *real* roster key —
/// they model forgery without the session key, not key theft.
ConnKeys raw_auth_handshake(Socket& raw, const std::string& from,
                            const std::string& to, std::uint64_t incarnation) {
  ConnKeys keys;
  Bytes hello = build_hello(test_auth(from), PartyId{from}, PartyId{to},
                            incarnation, &keys);
  EXPECT_FALSE(hello.empty());
  EXPECT_TRUE(send_bytes(raw, make_frame(hello)));
  return keys;
}

// --- transport-level behaviour ---------------------------------------------

TEST(ReactorTransportTest, DeliversPayloadsBetweenParties) {
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  Sink a_sink, b_sink;
  a->set_handler(a_sink.handler());
  b->set_handler(b_sink.handler());

  std::multiset<Bytes> a_want, b_want;
  for (int i = 0; i < 10; ++i) {
    Bytes to_b{static_cast<std::uint8_t>(i)};
    Bytes to_a{static_cast<std::uint8_t>(100 + i)};
    a->send(PartyId{"b"}, to_b);
    b->send(PartyId{"a"}, to_a);
    b_want.insert(std::move(to_b));
    a_want.insert(std::move(to_a));
  }

  ASSERT_TRUE(
      wait_for([&] { return a_sink.count() == 10 && b_sink.count() == 10; }));
  EXPECT_EQ(a_sink.contents(), a_want);
  EXPECT_EQ(b_sink.contents(), b_want);
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0 && b->unacked() == 0; }));

  Transport::Stats a_stats = a->stats();
  Transport::Stats b_stats = b->stats();
  EXPECT_EQ(a_stats.app_sent, 10u);
  EXPECT_EQ(b_stats.app_delivered, 10u);
  EXPECT_GT(a_stats.bytes_sent, 0u);
  EXPECT_GT(a_stats.bytes_received, 0u);
  EXPECT_GE(a_stats.connects, 1u);
  EXPECT_GE(b_stats.connects, 1u);
  EXPECT_EQ(a_stats.frames_dropped_crc, 0u);
  // The loop-level counters are live on this runtime (satellite of the
  // Stats seam): the loop woke up, and the wheel fires a retransmit
  // tick within one interval of now.
  EXPECT_GT(a_stats.epoll_wakeups, 0u);
  EXPECT_TRUE(wait_for([&] { return a->stats().timers_fired > 0; }));
}

TEST(ReactorTransportTest, RetransmitsThroughInjectedLoss) {
  Fixture fx;
  fx.config.faults.drop_probability = 0.5;
  fx.config.fault_seed = 2;
  auto a = fx.make("a");
  fx.config.faults.drop_probability = 0.0;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  for (int i = 0; i < 50; ++i) {
    a->send(PartyId{"b"}, Bytes{static_cast<std::uint8_t>(i)});
  }

  ASSERT_TRUE(wait_for([&] { return sink.count() == 50; }));
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
  std::multiset<Bytes> want;
  for (int i = 0; i < 50; ++i) {
    want.insert(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_EQ(sink.contents(), want);
  EXPECT_GT(a->stats().retransmissions, 0u);
  EXPECT_GT(a->fabric_stats().frames_dropped_injected, 0u);
}

TEST(ReactorTransportTest, MasksDuplicationToOnceOnlyDelivery) {
  Fixture fx;
  fx.config.faults.duplicate_probability = 1.0;
  fx.config.fault_seed = 3;
  auto a = fx.make("a");
  fx.config.faults.duplicate_probability = 0.0;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  for (int i = 0; i < 20; ++i) {
    a->send(PartyId{"b"}, Bytes{static_cast<std::uint8_t>(i)});
  }

  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
  ASSERT_TRUE(wait_for([&] { return b->quiescent(); }));
  EXPECT_EQ(sink.count(), 20u);  // exactly once each, never twice
  EXPECT_GT(a->fabric_stats().frames_duplicated_injected, 0u);
  EXPECT_GT(b->stats().duplicates_suppressed, 0u);
}

TEST(ReactorTransportTest, CrashRecoveryKeepsChannelState) {
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  b->set_alive(false);
  a->send(PartyId{"b"}, Bytes{42});
  std::this_thread::sleep_for(30ms);  // several retransmit intervals
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(a->unacked(), 1u);  // still queued: the channel persists

  b->set_alive(true);
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  EXPECT_EQ(sink.contents(), std::multiset<Bytes>{Bytes{42}});
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
}

TEST(ReactorTransportTest, ReconnectsToRestartedPeerWithFreshIncarnation) {
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  std::uint16_t b_port = b->port();
  Sink sink;
  b->set_handler(sink.handler());

  a->send(PartyId{"b"}, Bytes{1});
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));

  // Whole-"process" restart of b on the same loop: the transport dies
  // (dedup state and connections lost) and a new instance binds the
  // same port with a new incarnation.
  std::uint64_t old_incarnation = b->incarnation();
  b.reset();
  a->send(PartyId{"b"}, Bytes{2});  // queued while the peer is down
  b = fx.make("b", b_port);
  EXPECT_NE(b->incarnation(), old_incarnation);
  Sink sink2;
  b->set_handler(sink2.handler());

  ASSERT_TRUE(wait_for([&] { return sink2.count() == 1; }));
  EXPECT_EQ(sink2.contents(), std::multiset<Bytes>{Bytes{2}});
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
  Transport::Stats a_stats = a->stats();
  EXPECT_GE(a_stats.connects, 2u);
  EXPECT_GE(a_stats.reconnects, 1u);

  Sink a_sink;
  a->set_handler(a_sink.handler());
  b->send(PartyId{"a"}, Bytes{3});
  ASSERT_TRUE(wait_for([&] { return a_sink.count() == 1; }));
}

// --- raw-socket byte-stream abuse ------------------------------------------

TEST(ReactorTransportTest, TornFrameIsDroppedAndChannelRecovers) {
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  // A client that introduces itself, then dies mid-frame: the header
  // claims 100 bytes, only 3 arrive before the close (half-open torn).
  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(send_bytes(raw, make_frame(hello_payload("torn", "b", 7))));
  Bytes truncated = make_frame(data_payload(7, 0, Bytes(100, 0xab)));
  truncated.resize(8 + 3);
  ASSERT_TRUE(send_bytes(raw, truncated));
  raw.close();

  a->send(PartyId{"b"}, Bytes{5});
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  EXPECT_EQ(sink.contents(), std::multiset<Bytes>{Bytes{5}});
  EXPECT_EQ(b->stats().frames_dropped_crc, 0u);  // torn ≠ corrupt
}

TEST(ReactorTransportTest, CorruptCrcIsCountedAndNotDelivered) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(send_bytes(raw, make_frame(hello_payload("evil", "b", 9))));
  Bytes payload = data_payload(9, 0, Bytes{1, 2, 3});
  ASSERT_TRUE(
      send_bytes(raw, frame_with_crc(payload, store::crc32(payload) ^ 1)));

  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_dropped_crc == 1; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(b->stats().app_delivered, 0u);
}

TEST(ReactorTransportTest, SplitWritesReassembleToExactlyOneDelivery) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  raw.set_nodelay();
  Bytes stream = make_frame(hello_payload("slow", "b", 11));
  Bytes data = make_frame(data_payload(11, 0, Bytes{9, 8, 7}));
  stream.insert(stream.end(), data.begin(), data.end());
  // One byte per write: every read on the receiver side is short, so the
  // per-connection stream buffer reassembles across many EPOLLIN edges.
  for (std::uint8_t byte : stream) {
    ASSERT_TRUE(raw.send_all(&byte, 1));
    std::this_thread::sleep_for(100us);
  }
  ASSERT_TRUE(send_bytes(raw, data));  // replay: suppressed by dedup

  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().duplicates_suppressed == 1; }));
  EXPECT_EQ(sink.contents(), (std::multiset<Bytes>{Bytes{9, 8, 7}}));
  EXPECT_EQ(b->stats().app_delivered, 1u);
}

TEST(ReactorTransportTest, PeerResetMidStreamNeverDuplicatesDelivery) {
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  {
    Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
    ASSERT_TRUE(raw.valid());
    ASSERT_TRUE(send_bytes(raw, make_frame(hello_payload("rst", "b", 13))));
    ASSERT_TRUE(send_bytes(raw, make_frame(data_payload(13, 0, Bytes{1}))));
    ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
    Bytes partial = make_frame(data_payload(13, 1, Bytes{2}));
    partial.resize(10);
    ASSERT_TRUE(send_bytes(raw, partial));
    raw.set_linger_reset();
    raw.close();  // RST races the partial frame through the kernel
  }

  Socket again = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(again.valid());
  ASSERT_TRUE(send_bytes(again, make_frame(hello_payload("rst", "b", 13))));
  ASSERT_TRUE(send_bytes(again, make_frame(data_payload(13, 0, Bytes{1}))));
  ASSERT_TRUE(send_bytes(again, make_frame(data_payload(13, 1, Bytes{2}))));

  ASSERT_TRUE(wait_for([&] { return sink.count() == 2; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 2u);  // seq 0 delivered once, not twice
  EXPECT_EQ(sink.contents(), (std::multiset<Bytes>{Bytes{1}, Bytes{2}}));
  EXPECT_GE(b->stats().duplicates_suppressed, 1u);

  a->send(PartyId{"b"}, Bytes{3});
  ASSERT_TRUE(wait_for([&] { return sink.count() == 3; }));
}

TEST(ReactorTransportTest, ReplayedAndReorderedFramesStayOnceOnly) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(send_bytes(raw, make_frame(hello_payload("replay", "b", 17))));
  for (std::uint64_t seq : {2u, 0u, 1u, 1u, 0u, 2u}) {
    ASSERT_TRUE(send_bytes(
        raw,
        make_frame(
            data_payload(17, seq, Bytes{static_cast<std::uint8_t>(seq)}))));
  }

  ASSERT_TRUE(wait_for([&] { return b->stats().duplicates_suppressed == 3; }));
  EXPECT_EQ(sink.count(), 3u);
  EXPECT_EQ(sink.contents(),
            (std::multiset<Bytes>{Bytes{0}, Bytes{1}, Bytes{2}}));
}

TEST(ReactorTransportTest, StaleIncarnationFramesAreDropped) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket old_conn = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(old_conn.valid());
  ASSERT_TRUE(send_bytes(old_conn, make_frame(hello_payload("x", "b", 1))));
  ASSERT_TRUE(send_bytes(old_conn, make_frame(data_payload(1, 0, Bytes{10}))));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));

  Socket new_conn = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(new_conn.valid());
  ASSERT_TRUE(send_bytes(new_conn, make_frame(hello_payload("x", "b", 2))));
  ASSERT_TRUE(send_bytes(new_conn, make_frame(data_payload(2, 0, Bytes{20}))));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 2; }));

  ASSERT_TRUE(send_bytes(old_conn, make_frame(data_payload(1, 1, Bytes{11}))));
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.contents(), (std::multiset<Bytes>{Bytes{10}, Bytes{20}}));
  EXPECT_GE(b->stats().replays_suppressed, 1u);
}

// --- hostile length prefixes (DESIGN.md §11) --------------------------------

TEST(ReactorTransportTest, HostileLengthPrefixIsRejectedAndConnectionReset) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  // First bytes on the wire claim a 4 GiB frame: the loop must refuse
  // to buffer toward it and reset the connection.
  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  Bytes evil(8 + 4, 0xee);
  for (int i = 0; i < 4; ++i) {
    evil[i] = 0xFF;  // len = 0xFFFFFFFF
  }
  ASSERT_TRUE(send_bytes(raw, evil));

  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 1; }));
  raw.set_recv_timeout(2'000'000);
  std::uint8_t scratch[64];
  while (raw.recv_some(scratch, sizeof scratch) > 0) {
  }
  auto a = fx.make("a");
  a->send(PartyId{"b"}, Bytes{6});
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
}

TEST(ReactorTransportTest, FrameLengthOffByOneOverLimitIsRejected) {
  Fixture fx;
  fx.config.max_frame_bytes = 64;  // small limit keeps the test cheap
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(send_bytes(raw, make_frame(hello_payload("edge", "b", 21))));
  // A payload of exactly max_frame_bytes is legitimate...
  Bytes app(46, 0x5c);  // 1 + 8 + 8 + 1 + 46 = 64-byte frame payload
  Bytes exact = data_payload(21, 0, app);
  ASSERT_EQ(exact.size(), 64u);
  ASSERT_TRUE(send_bytes(raw, make_frame(exact)));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  EXPECT_EQ(b->stats().frames_rejected_auth, 0u);

  // ...but one byte over the limit is rejected before it is buffered.
  Bytes over(8 + 4, 0x5d);
  for (int i = 0; i < 4; ++i) {
    over[i] = static_cast<std::uint8_t>(65u >> (8 * i));
  }
  ASSERT_TRUE(send_bytes(raw, over));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 1; }));
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(sink.count(), 1u);
}

// --- cross-incarnation replay (DESIGN.md §11, wire v2) ----------------------

TEST(ReactorTransportTest, CrossIncarnationReplayIsSuppressed) {
  Fixture fx;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  // Incarnation 1 of "x" delivers seq 0; the intruder records the frame.
  Socket old_conn = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(old_conn.valid());
  ASSERT_TRUE(send_bytes(old_conn, make_frame(hello_payload("x", "b", 1))));
  Bytes recorded = make_frame(data_payload(1, 0, Bytes{10}));
  ASSERT_TRUE(send_bytes(old_conn, recorded));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  old_conn.close();

  // "x" restarts as incarnation 2 and delivers its fresh seq 0.
  Socket new_conn = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(new_conn.valid());
  ASSERT_TRUE(send_bytes(new_conn, make_frame(hello_payload("x", "b", 2))));
  ASSERT_TRUE(
      send_bytes(new_conn, make_frame(data_payload(2, 0, Bytes{20}))));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 2; }));

  // The recorded incarnation-1 frame spliced into the live connection
  // must be suppressed, not delivered against the fresh dedup window.
  ASSERT_TRUE(send_bytes(new_conn, recorded));
  ASSERT_TRUE(wait_for([&] { return b->stats().replays_suppressed >= 1; }));
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.contents(), (std::multiset<Bytes>{Bytes{10}, Bytes{20}}));

  // Liveness after the attack: the next incarnation connects fine.
  Socket conn3 = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(conn3.valid());
  ASSERT_TRUE(send_bytes(conn3, make_frame(hello_payload("x", "b", 3))));
  ASSERT_TRUE(send_bytes(conn3, make_frame(data_payload(3, 0, Bytes{30}))));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 3; }));
}

TEST(ReactorTransportTest, ReplayedAckFromWrongIncarnationCannotRetire) {
  Fixture fx;
  fx.config.retransmit_interval_micros = 50'000;  // quiet retransmits
  auto b = fx.make("b");
  b->set_handler([](const PartyId&, const Bytes&) {});

  // Play the remote party "x" with a raw listener so we control acks.
  Listener listener = Listener::open("127.0.0.1", 0);
  fx.directory->set(PartyId{"x"}, PeerAddress{"127.0.0.1", listener.port()});
  b->send(PartyId{"x"}, Bytes{7});

  Socket conn = listener.accept();
  ASSERT_TRUE(conn.valid());
  conn.set_recv_timeout(5'000'000);
  Bytes hello;
  ASSERT_TRUE(recv_frame(conn, &hello));
  wire::Decoder dec{hello};
  ASSERT_EQ(dec.u8(), 2);  // kHello
  dec.u32();               // magic
  dec.u16();               // version
  ASSERT_EQ(dec.str(), "b");
  ASSERT_EQ(dec.str(), "x");
  std::uint64_t b_inc = dec.u64();
  ASSERT_TRUE(send_bytes(conn, make_frame(hello_payload("x", "b", 99))));
  Bytes data;
  ASSERT_TRUE(recv_frame(conn, &data));  // the data frame for seq 0

  // An ack that does not echo b's live incarnation must not retire the
  // message; the genuine echo must.
  ASSERT_TRUE(
      send_bytes(conn, make_frame(frame::encode_ack(b_inc ^ 0x5a5a, 0))));
  ASSERT_TRUE(wait_for([&] { return b->stats().replays_suppressed >= 1; }));
  EXPECT_EQ(b->unacked(), 1u);
  ASSERT_TRUE(send_bytes(conn, make_frame(frame::encode_ack(b_inc, 0))));
  ASSERT_TRUE(wait_for([&] { return b->unacked() == 0; }));
  listener.stop();
}

// --- wire v3 must-fail games (DESIGN.md §11) --------------------------------
//
// The same four attacks the TCP suite scripts, replayed against the
// event-loop stack: live frame rewrite, forged ack, truncated MAC, and
// hello downgrade-strip — each must die as frames_rejected_auth.

TEST(ReactorTransportTest, AuthLiveDataFrameRewriteIsRejected) {
  Fixture fx;
  auto b = fx.make_auth("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ConnKeys keys = raw_auth_handshake(raw, "x", "b", 31);
  Bytes d0 = data_payload(31, 0, Bytes{1});
  append_mac(d0, keys.send);
  ASSERT_TRUE(send_bytes(raw, make_frame(d0)));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));

  // Rewrite the payload of a live frame, recompute the CRC, keep the
  // (now stale) MAC: the frame must die before parsing.
  Bytes d1 = data_payload(31, 1, Bytes{2});
  append_mac(d1, keys.send);
  d1[18] ^= 0xff;  // the app payload byte (type·inc·seq·len precede it)
  ASSERT_TRUE(send_bytes(raw, make_frame(d1)));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 1; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 1u);

  // Liveness: a fresh handshake rekeys and the honest seq 1 lands.
  Socket again = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(again.valid());
  ConnKeys keys2 = raw_auth_handshake(again, "x", "b", 31);
  Bytes d1_honest = data_payload(31, 1, Bytes{2});
  append_mac(d1_honest, keys2.send);
  ASSERT_TRUE(send_bytes(again, make_frame(d1_honest)));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 2; }));
  EXPECT_EQ(sink.contents(), (std::multiset<Bytes>{Bytes{1}, Bytes{2}}));

  // A seq rewrite fares no better than a payload rewrite.
  Bytes d2 = data_payload(31, 2, Bytes{3});
  append_mac(d2, keys2.send);
  d2[9] ^= 0x04;  // a seq byte
  ASSERT_TRUE(send_bytes(again, make_frame(d2)));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 2; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 2u);
}

TEST(ReactorTransportTest, AuthForgedAckCannotRetireMessage) {
  Fixture fx;
  fx.config.retransmit_interval_micros = 20'000;
  auto b = fx.make_auth("b");
  b->set_handler([](const PartyId&, const Bytes&) {});

  Listener listener = Listener::open("127.0.0.1", 0);
  fx.directory->set(PartyId{"x"}, PeerAddress{"127.0.0.1", listener.port()});
  b->send(PartyId{"x"}, Bytes{7});

  Socket conn = listener.accept();
  ASSERT_TRUE(conn.valid());
  conn.set_recv_timeout(5'000'000);
  Bytes hello;
  ASSERT_TRUE(recv_frame(conn, &hello));
  wire::Decoder dec{hello};
  ASSERT_EQ(dec.u8(), 2);  // kHello
  frame::Hello b_hello = frame::decode_hello(dec);
  ASSERT_EQ(b_hello.from, "b");
  ASSERT_EQ(b_hello.auth_flag, frame::kAuthHmac);
  ConnKeys x_keys;
  Bytes reply = build_hello(test_auth("x"), PartyId{"x"}, PartyId{"b"}, 99,
                            &x_keys);
  ASSERT_TRUE(send_bytes(conn, make_frame(reply)));
  Bytes data;
  ASSERT_TRUE(recv_frame(conn, &data));  // the MAC'd data frame for seq 0

  // A forged ack — right bytes, wrong tag — must not retire the message.
  Bytes forged = frame::encode_ack(b_hello.incarnation, 0);
  append_mac(forged, crypto::Sha256::hash(bytes_of("not the session key")));
  ASSERT_TRUE(send_bytes(conn, make_frame(forged)));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth >= 1; }));
  EXPECT_EQ(b->unacked(), 1u);

  // b killed the connection and redials; the genuine ack over the
  // rekeyed connection retires the message.
  Socket conn2 = listener.accept();
  ASSERT_TRUE(conn2.valid());
  conn2.set_recv_timeout(5'000'000);
  ASSERT_TRUE(recv_frame(conn2, &hello));
  wire::Decoder dec2{hello};
  ASSERT_EQ(dec2.u8(), 2);
  frame::Hello b_hello2 = frame::decode_hello(dec2);
  ConnKeys x_keys2;
  Bytes reply2 = build_hello(test_auth("x"), PartyId{"x"}, PartyId{"b"}, 99,
                             &x_keys2);
  ASSERT_TRUE(send_bytes(conn2, make_frame(reply2)));
  ASSERT_TRUE(recv_frame(conn2, &data));  // retransmitted seq 0
  Bytes genuine = frame::encode_ack(b_hello2.incarnation, 0);
  append_mac(genuine, x_keys2.send);
  ASSERT_TRUE(send_bytes(conn2, make_frame(genuine)));
  ASSERT_TRUE(wait_for([&] { return b->unacked() == 0; }));
  listener.stop();
}

TEST(ReactorTransportTest, AuthTruncatedMacFrameIsRejected) {
  Fixture fx;
  auto b = fx.make_auth("b");
  Sink sink;
  b->set_handler(sink.handler());

  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ConnKeys keys = raw_auth_handshake(raw, "x", "b", 41);
  Bytes d0 = data_payload(41, 0, Bytes{1});
  append_mac(d0, keys.send);
  ASSERT_TRUE(send_bytes(raw, make_frame(d0)));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));

  // MAC short by one byte, re-framed with a valid CRC.
  Bytes truncated = data_payload(41, 1, Bytes{2});
  append_mac(truncated, keys.send);
  truncated.pop_back();
  ASSERT_TRUE(send_bytes(raw, make_frame(truncated)));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 1; }));

  // No MAC at all dies the same way.
  Socket bare = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(bare.valid());
  raw_auth_handshake(bare, "x", "b", 41);
  ASSERT_TRUE(send_bytes(bare, make_frame(data_payload(41, 1, Bytes{2}))));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 2; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 1u);

  // Liveness: the honest seq 1 lands over a fresh connection.
  Socket again = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(again.valid());
  ConnKeys keys2 = raw_auth_handshake(again, "x", "b", 41);
  Bytes d1 = data_payload(41, 1, Bytes{2});
  append_mac(d1, keys2.send);
  ASSERT_TRUE(send_bytes(again, make_frame(d1)));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 2; }));
}

TEST(ReactorTransportTest, AuthHelloDowngradeStripIsRefused) {
  Fixture fx;
  auto b = fx.make_auth("b");
  Sink sink;
  b->set_handler(sink.handler());

  // A stripped (unauthenticated) hello to an auth-required endpoint.
  Socket raw = tcp_connect("127.0.0.1", b->port(), 1'000'000);
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(send_bytes(raw, make_frame(hello_payload("x", "b", 5))));
  ASSERT_TRUE(
      wait_for([&] { return b->stats().frames_rejected_auth == 1; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.count(), 0u);

  // And the reverse: an auth-less endpoint refuses an authenticated
  // hello instead of ignoring fields it cannot check.
  auto p = fx.make("p");
  p->set_handler(sink.handler());
  Socket cross = tcp_connect("127.0.0.1", p->port(), 1'000'000);
  ASSERT_TRUE(cross.valid());
  ConnKeys unused;
  Bytes auth_hello = build_hello(test_auth("x"), PartyId{"x"}, PartyId{"p"},
                                 7, &unused);
  ASSERT_TRUE(send_bytes(cross, make_frame(auth_hello)));
  ASSERT_TRUE(
      wait_for([&] { return p->stats().frames_rejected_auth == 1; }));

  // Liveness: the honest authenticated pair is unharmed.
  auto a = fx.make_auth("a");
  a->send(PartyId{"b"}, Bytes{6});
  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }));
  EXPECT_EQ(sink.contents(), std::multiset<Bytes>{Bytes{6}});
}

// --- reactor-specific fan-in shapes ----------------------------------------

TEST(ReactorTransportTest, ManySimultaneousDialsFanInToOneAcceptor) {
  // Dozens of parties dial one hub in the same instant — every dial is a
  // non-blocking connect racing through one level-triggered accept loop,
  // all on a single thread.
  Fixture fx;
  auto hub = fx.make("hub");
  Sink sink;
  hub->set_handler(sink.handler());

  constexpr int kSenders = 40;
  std::vector<std::unique_ptr<ReactorTransport>> senders;
  senders.reserve(kSenders);
  for (int i = 0; i < kSenders; ++i) {
    senders.push_back(fx.make("s" + std::to_string(i)));
  }
  for (int i = 0; i < kSenders; ++i) {
    senders[static_cast<std::size_t>(i)]->send(
        PartyId{"hub"}, Bytes{static_cast<std::uint8_t>(i)});
  }

  ASSERT_TRUE(wait_for([&] { return sink.count() == kSenders; }));
  std::multiset<Bytes> want;
  for (int i = 0; i < kSenders; ++i) {
    want.insert(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_EQ(sink.contents(), want);
  for (auto& sender : senders) {
    ASSERT_TRUE(wait_for([&] { return sender->unacked() == 0; }));
  }
}

TEST(ReactorTransportTest, WriteBackpressureDrainsOnEpollout) {
  // A tiny send buffer forces the backpressure path: DATA frames beyond
  // the cap are NOT buffered; the retransmit timer re-offers them once
  // EPOLLOUT has drained the connection. Everything still arrives
  // exactly once.
  Fixture fx;
  fx.config.max_send_buffer_bytes = 16 * 1024;
  auto a = fx.make("a");
  fx.config.max_send_buffer_bytes = 4u << 20;
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  constexpr int kMessages = 100;
  const Bytes big(4 * 1024, 0xcd);
  for (int i = 0; i < kMessages; ++i) {
    Bytes payload = big;
    payload[0] = static_cast<std::uint8_t>(i);
    a->send(PartyId{"b"}, payload);
  }

  ASSERT_TRUE(wait_for([&] { return sink.count() == kMessages; },
                       20'000ms));
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
  EXPECT_EQ(b->stats().app_delivered,
            static_cast<std::uint64_t>(kMessages));
}

TEST(ReactorTransportTest, RestartChurnNeverDuplicatesDelivery) {
  // Kill and rebind the receiver several times mid-traffic: every
  // incarnation change resets the sender's dedup view, and no payload is
  // ever delivered twice to any single incarnation.
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  const std::uint16_t b_port = b->port();

  std::size_t delivered_total = 0;
  for (int round = 0; round < 4; ++round) {
    auto round_sink = std::make_unique<Sink>();
    b->set_handler(round_sink->handler());
    a->send(PartyId{"b"}, Bytes{static_cast<std::uint8_t>(round)});
    ASSERT_TRUE(wait_for([&] { return round_sink->count() >= 1; }));
    ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
    delivered_total += round_sink->count();
    b->set_handler({});
    b.reset();
    b = fx.make("b", b_port);
  }
  EXPECT_GE(delivered_total, 4u);
  EXPECT_GE(a->stats().reconnects, 3u);
}

TEST(ReactorTransportTest, FdExhaustionShedsAcceptsAndRecovers) {
  // Exhaust the process fd table, then dial the transport: accept hits
  // EMFILE, the listener disarms (no spin) and rearms once descriptors
  // return; traffic then flows normally. This is the ulimit smoke CI
  // runs under a lowered RLIMIT_NOFILE.
  Fixture fx;
  auto a = fx.make("a");
  auto b = fx.make("b");
  Sink sink;
  b->set_handler(sink.handler());

  std::vector<int> hogs;
  for (;;) {
    int fd = ::dup(STDOUT_FILENO);
    if (fd < 0) break;  // table full
    hogs.push_back(fd);
  }
  // First contact while starved: the dial may itself fail (no fd for the
  // socket) or reach an acceptor with no fd to accept with. Both sides
  // retry on their timers.
  a->send(PartyId{"b"}, Bytes{7});
  std::this_thread::sleep_for(50ms);
  for (int fd : hogs) ::close(fd);

  ASSERT_TRUE(wait_for([&] { return sink.count() == 1; }, 20'000ms));
  EXPECT_EQ(sink.contents(), std::multiset<Bytes>{Bytes{7}});
  ASSERT_TRUE(wait_for([&] { return a->unacked() == 0; }));
}

// --- interop with the thread-per-peer transport ----------------------------

TEST(ReactorTransportTest, ReactorTalksToTcpTransport) {
  // Wire compatibility is by construction (both sides speak frame.hpp);
  // prove it end to end: a reactor party and a TcpTransport party
  // exchange payloads through one shared directory.
  Fixture fx;
  auto r = fx.make("r");
  TcpTransport::Config tcp_config;
  tcp_config.retransmit_interval_micros = 5'000;
  auto t = std::make_unique<TcpTransport>(PartyId{"t"}, "127.0.0.1", 0,
                                          fx.directory, tcp_config);
  fx.directory->set(PartyId{"t"}, PeerAddress{"127.0.0.1", t->port()});

  Sink r_sink, t_sink;
  r->set_handler(r_sink.handler());
  t->set_handler(t_sink.handler());

  for (int i = 0; i < 10; ++i) {
    r->send(PartyId{"t"}, Bytes{static_cast<std::uint8_t>(i)});
    t->send(PartyId{"r"}, Bytes{static_cast<std::uint8_t>(100 + i)});
  }

  ASSERT_TRUE(
      wait_for([&] { return r_sink.count() == 10 && t_sink.count() == 10; }));
  ASSERT_TRUE(
      wait_for([&] { return r->unacked() == 0 && t->unacked() == 0; }));
  std::multiset<Bytes> r_want, t_want;
  for (int i = 0; i < 10; ++i) {
    t_want.insert(Bytes{static_cast<std::uint8_t>(i)});
    r_want.insert(Bytes{static_cast<std::uint8_t>(100 + i)});
  }
  EXPECT_EQ(r_sink.contents(), r_want);
  EXPECT_EQ(t_sink.contents(), t_want);
}

// --- runtime bundle ---------------------------------------------------------

TEST(ReactorRuntimeTest, ExecutorSettlesOnQuiescence) {
  ReactorRuntime::Options options;
  options.transport.retransmit_interval_micros = 5'000;
  ReactorRuntime runtime(options);
  Transport& a = runtime.add_party(PartyId{"a"});
  Transport& b = runtime.add_party(PartyId{"b"});
  a.set_handler([](const PartyId&, const Bytes&) {});
  Sink sink;
  b.set_handler(sink.handler());

  for (int i = 0; i < 20; ++i) {
    a.send(PartyId{"b"}, Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(
      runtime.executor().run_until([&] { return sink.count() == 20; }));
  runtime.executor().settle();
  EXPECT_EQ(a.unacked(), 0u);
  EXPECT_EQ(sink.count(), 20u);
}

TEST(ReactorRuntimeTest, DirectoryResolvesEphemeralPorts) {
  auto directory = std::make_shared<PeerDirectory>();
  directory->set(PartyId{"a"}, PeerAddress{"127.0.0.1", 0});
  ReactorRuntime::Options options;
  options.directory = directory;
  ReactorRuntime runtime(options);
  runtime.add_party(PartyId{"a"});
  auto address = directory->lookup(PartyId{"a"});
  ASSERT_TRUE(address.has_value());
  EXPECT_NE(address->port, 0);
  EXPECT_EQ(runtime.transport(PartyId{"a"})->port(), address->port);
}

TEST(ReactorRuntimeTest, TimerInFlightCannotRaceBundleTeardown) {
  // Destroying the bundle while a schedule_after callback is about to
  // touch a transport must be safe: the wheel timer hands the callback
  // to the pool, and shutdown stops transports before loop and pool.
  for (int i = 0; i < 20; ++i) {
    ReactorRuntime::Options options;
    auto runtime = std::make_unique<ReactorRuntime>(options);
    Transport& a = runtime->add_party(PartyId{"a"});
    runtime->add_party(PartyId{"b"})
        .set_handler([](const PartyId&, const Bytes&) {});
    runtime->clock().schedule_after(
        static_cast<std::uint64_t>(i) * 100,
        [&a] { a.send(PartyId{"b"}, Bytes{1}); });
    runtime.reset();
  }
}

TEST(ReactorRuntimeTest, ThreadCountStaysFlatAcrossParties) {
  // The C10K shape in miniature: 1 loop + K workers regardless of how
  // many parties (sockets, timers) the bundle hosts.
  auto count_threads = [] {
    // /proc/self/stat field 20 (1-based) is num_threads; parse past the
    // comm field, which may contain spaces, via the closing paren.
    FILE* f = std::fopen("/proc/self/stat", "r");
    if (!f) return -1L;
    char buf[1024];
    std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    const char* p = std::strrchr(buf, ')');
    if (!p) return -1L;
    long value = -1;
    int field = 2;  // the field after ')' is state, field 3
    for (p = p + 1; *p != '\0'; ++p) {
      if (*p == ' ') {
        ++field;
        if (field == 20) {
          value = std::strtol(p + 1, nullptr, 10);
          break;
        }
      }
    }
    return value;
  };

  ReactorRuntime::Options options;
  ReactorRuntime runtime(options);
  runtime.add_party(PartyId{"p0"});
  const long base = count_threads();
  ASSERT_GT(base, 0);
  for (int i = 1; i < 32; ++i) {
    runtime.add_party(PartyId{"p" + std::to_string(i)});
  }
  const long after = count_threads();
  EXPECT_EQ(after, base);  // 31 more parties, zero more threads
}

}  // namespace
}  // namespace b2b::net
