// TimerWheel: the hierarchical wheel that replaces per-party retransmit
// threads in the reactor runtime. The properties that matter to the
// transport sit on top of exact slot math, so they are tested directly:
// never-early firing, deadline ordering, O(1) cancellation, and cascade
// correctness — checked against a naive reference heap under randomised
// schedules that straddle every level boundary.
#include "net/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

namespace b2b::net {
namespace {

/// Advance to `now` and return the ids fired, in firing order.
std::vector<int> advance_ids(TimerWheel& wheel, std::uint64_t now_micros,
                             std::vector<int>& log) {
  log.clear();
  std::vector<std::function<void()>> fired;
  wheel.advance(now_micros, fired);
  for (auto& fn : fired) fn();
  return log;
}

TEST(TimerWheelTest, FiresInDeadlineOrder) {
  TimerWheel wheel(0);
  const std::uint64_t tick = wheel.tick_micros();
  std::vector<int> log;
  // Scheduled out of order; must fire in deadline order.
  wheel.schedule_at(30 * tick, [&] { log.push_back(3); });
  wheel.schedule_at(10 * tick, [&] { log.push_back(1); });
  wheel.schedule_at(20 * tick, [&] { log.push_back(2); });

  EXPECT_EQ(advance_ids(wheel, 35 * tick, log),
            (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(wheel.fired(), 3u);
}

TEST(TimerWheelTest, NeverFiresEarly) {
  TimerWheel wheel(0);
  const std::uint64_t tick = wheel.tick_micros();
  std::vector<int> log;
  // A deadline strictly inside tick 10 rounds UP to tick 10's boundary.
  wheel.schedule_at(9 * tick + 1, [&] { log.push_back(1); });

  EXPECT_TRUE(advance_ids(wheel, 9 * tick, log).empty());
  EXPECT_TRUE(advance_ids(wheel, 10 * tick - 1, log).empty());
  EXPECT_EQ(advance_ids(wheel, 10 * tick, log), std::vector<int>{1});
}

TEST(TimerWheelTest, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel(100 * 1'024);
  std::vector<int> log;
  wheel.schedule_at(0, [&] { log.push_back(1); });  // long past
  EXPECT_EQ(advance_ids(wheel, 101 * 1'024, log), std::vector<int>{1});
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  TimerWheel wheel(0);
  const std::uint64_t tick = wheel.tick_micros();
  std::vector<int> log;
  auto keep = wheel.schedule_at(5 * tick, [&] { log.push_back(1); });
  auto drop = wheel.schedule_at(5 * tick, [&] { log.push_back(2); });
  (void)keep;

  EXPECT_TRUE(wheel.cancel(drop));
  EXPECT_FALSE(wheel.cancel(drop));  // already gone
  EXPECT_FALSE(wheel.cancel(TimerWheel::kInvalidTimer));
  EXPECT_EQ(advance_ids(wheel, 10 * tick, log), std::vector<int>{1});
  EXPECT_FALSE(wheel.cancel(keep));  // already fired
}

TEST(TimerWheelTest, CancelWorksAcrossLevels) {
  TimerWheel wheel(0);
  const std::uint64_t tick = wheel.tick_micros();
  std::vector<int> log;
  // One timer per level: fine, level 1, level 2, level 3, beyond-range.
  std::vector<TimerWheel::TimerId> ids;
  for (std::uint64_t delta :
       {5ull, 100ull, 5'000ull, 300'000ull, 20'000'000ull}) {
    ids.push_back(wheel.schedule_at(delta * tick, [&] { log.push_back(0); }));
  }
  for (auto id : ids) EXPECT_TRUE(wheel.cancel(id));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_TRUE(advance_ids(wheel, 400'000 * tick, log).empty());
}

TEST(TimerWheelTest, CascadeCrossesEveryLevelBoundary) {
  TimerWheel wheel(0);
  const std::uint64_t tick = wheel.tick_micros();
  std::vector<int> log;
  // Deltas straddling each level: 64, 64^2, 64^3 ticks land exactly on
  // cascade boundaries; ±1 neighbours catch off-by-one slotting.
  std::map<std::uint64_t, int> schedule;
  int id = 0;
  for (std::uint64_t base : {64ull, 4'096ull, 262'144ull}) {
    for (std::uint64_t delta : {base - 1, base, base + 1}) {
      schedule[delta] = ++id;
      wheel.schedule_at(delta * tick, [&log, id] { log.push_back(id); });
    }
  }
  std::vector<int> want;
  for (auto& [delta, timer_id] : schedule) want.push_back(timer_id);

  // Walk in coarse steps so multiple cascades happen per advance.
  std::vector<int> got;
  for (std::uint64_t now = 0; now <= 263'000; now += 1'000) {
    auto fired = advance_ids(wheel, now * tick, log);
    got.insert(got.end(), fired.begin(), fired.end());
  }
  EXPECT_EQ(got, want);  // every timer fired, in deadline order
}

TEST(TimerWheelTest, RescheduleFromCallbackIsSafe) {
  // The retransmit tick re-arms itself from inside its own callback.
  TimerWheel wheel(0);
  const std::uint64_t tick = wheel.tick_micros();
  int fires = 0;
  std::function<void()> rearm = [&] {
    ++fires;
    if (fires < 5) wheel.schedule_at((fires + 1) * 10 * tick, rearm);
  };
  wheel.schedule_at(10 * tick, rearm);
  for (std::uint64_t now = 0; now <= 60 * 10; now += 7) {
    std::vector<std::function<void()>> fired;
    wheel.advance(now * tick, fired);
    for (auto& fn : fired) fn();
  }
  EXPECT_EQ(fires, 5);
}

TEST(TimerWheelTest, NextDueIsConservative) {
  TimerWheel wheel(0);
  const std::uint64_t tick = wheel.tick_micros();
  EXPECT_FALSE(wheel.next_due_micros().has_value());

  wheel.schedule_at(10 * tick, [] {});
  auto due = wheel.next_due_micros();
  ASSERT_TRUE(due.has_value());
  EXPECT_LE(*due, 10 * tick);  // never later than the true deadline
  EXPECT_GT(*due, 0u);

  // A coarse-level timer: next_due may point at the cascade boundary,
  // but never past the deadline.
  TimerWheel far(0);
  far.schedule_at(5'000 * tick, [] {});
  auto far_due = far.next_due_micros();
  ASSERT_TRUE(far_due.has_value());
  EXPECT_LE(*far_due, 5'000 * tick);
}

TEST(TimerWheelTest, MatchesReferenceHeapUnderRandomisedSchedules) {
  // Differential test: the wheel against a trivially correct reference
  // (map of deadline -> FIFO ids), with random schedules, cancellations
  // and advance step sizes spanning all four levels.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::mt19937_64 rng(seed);
    TimerWheel wheel(0);
    const std::uint64_t tick = wheel.tick_micros();
    std::vector<int> log;

    std::multimap<std::uint64_t, int> reference;  // due tick -> id
    std::map<int, std::pair<TimerWheel::TimerId,
                            std::multimap<std::uint64_t, int>::iterator>>
        live;
    std::vector<int> expected, got;
    std::uint64_t now_tick = 0;
    int next = 0;

    for (int step = 0; step < 400; ++step) {
      const int action = static_cast<int>(rng() % 10);
      if (action < 6) {
        // Schedule with a delta drawn across all levels (1 .. ~64^3.5).
        const std::uint64_t magnitude = rng() % 4;
        const std::uint64_t delta =
            1 + rng() % (std::uint64_t{1} << (6 * (magnitude + 1)));
        const std::uint64_t due_tick = now_tick + delta;
        const int id = ++next;
        auto timer = wheel.schedule_at(due_tick * tick,
                                       [&log, id] { log.push_back(id); });
        auto ref = reference.emplace(due_tick, id);
        live[id] = {timer, ref};
      } else if (action < 8 && !live.empty()) {
        // Cancel a random live timer.
        auto victim = live.begin();
        std::advance(victim,
                     static_cast<std::ptrdiff_t>(rng() % live.size()));
        EXPECT_TRUE(wheel.cancel(victim->second.first));
        reference.erase(victim->second.second);
        live.erase(victim);
      } else {
        // Advance by a random stride, sometimes far enough to cascade.
        now_tick += 1 + rng() % 5'000;
        while (!reference.empty() && reference.begin()->first <= now_tick) {
          expected.push_back(reference.begin()->second);
          live.erase(reference.begin()->second);
          reference.erase(reference.begin());
        }
        auto fired = advance_ids(wheel, now_tick * tick, log);
        got.insert(got.end(), fired.begin(), fired.end());
      }
    }
    // Drain what's left.
    now_tick += 30'000'000;
    while (!reference.empty() && reference.begin()->first <= now_tick) {
      expected.push_back(reference.begin()->second);
      reference.erase(reference.begin());
    }
    auto fired = advance_ids(wheel, now_tick * tick, log);
    got.insert(got.end(), fired.begin(), fired.end());

    // Same set, and grouped identically by deadline order. Ties within
    // one tick are FIFO in both structures.
    EXPECT_EQ(got, expected) << "seed " << seed;
    EXPECT_EQ(wheel.pending(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace b2b::net
