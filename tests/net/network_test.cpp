// Simulated network: delivery, fault injection, partitions, crash, stats.
#include "net/network.hpp"

#include <gtest/gtest.h>

namespace b2b::net {
namespace {

struct NetFixture {
  EventScheduler scheduler;
  SimNetwork net{scheduler, 42};
  std::vector<std::pair<PartyId, Bytes>> a_inbox;
  std::vector<std::pair<PartyId, Bytes>> b_inbox;

  NetFixture() {
    net.attach(PartyId{"a"}, [this](const PartyId& from, const Bytes& p) {
      a_inbox.emplace_back(from, p);
    });
    net.attach(PartyId{"b"}, [this](const PartyId& from, const Bytes& p) {
      b_inbox.emplace_back(from, p);
    });
  }
};

TEST(NetworkTest, DeliversWithDelay) {
  NetFixture t;
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{1, 2, 3});
  EXPECT_TRUE(t.b_inbox.empty());  // nothing until events run
  t.scheduler.run();
  ASSERT_EQ(t.b_inbox.size(), 1u);
  EXPECT_EQ(t.b_inbox[0].first, PartyId{"a"});
  EXPECT_EQ(t.b_inbox[0].second, (Bytes{1, 2, 3}));
  EXPECT_GT(t.scheduler.now(), 0u);  // a real delay elapsed
}

TEST(NetworkTest, FullDropRateDeliversNothing) {
  NetFixture t;
  LinkFaults faults;
  faults.drop_probability = 1.0;
  t.net.set_default_faults(faults);
  for (int i = 0; i < 10; ++i) {
    t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{1});
  }
  t.scheduler.run();
  EXPECT_TRUE(t.b_inbox.empty());
  EXPECT_EQ(t.net.stats().datagrams_dropped, 10u);
}

TEST(NetworkTest, PartialDropRateDropsSome) {
  NetFixture t;
  LinkFaults faults;
  faults.drop_probability = 0.5;
  t.net.set_default_faults(faults);
  for (int i = 0; i < 200; ++i) {
    t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{1});
  }
  t.scheduler.run();
  EXPECT_GT(t.b_inbox.size(), 50u);
  EXPECT_LT(t.b_inbox.size(), 150u);
}

TEST(NetworkTest, DuplicationDeliversExtraCopies) {
  NetFixture t;
  LinkFaults faults;
  faults.duplicate_probability = 1.0;
  t.net.set_default_faults(faults);
  for (int i = 0; i < 5; ++i) {
    t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{static_cast<uint8_t>(i)});
  }
  t.scheduler.run();
  EXPECT_EQ(t.b_inbox.size(), 10u);
  EXPECT_EQ(t.net.stats().datagrams_duplicated, 5u);
}

TEST(NetworkTest, PerLinkFaultsOverrideDefault) {
  NetFixture t;
  LinkFaults lossy;
  lossy.drop_probability = 1.0;
  t.net.set_link_faults(PartyId{"a"}, PartyId{"b"}, lossy);
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{1});  // dropped
  t.net.send(PartyId{"b"}, PartyId{"a"}, Bytes{2});  // default: delivered
  t.scheduler.run();
  EXPECT_TRUE(t.b_inbox.empty());
  ASSERT_EQ(t.a_inbox.size(), 1u);
}

TEST(NetworkTest, DeadNodeNeitherSendsNorReceives) {
  NetFixture t;
  t.net.set_alive(PartyId{"b"}, false);
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{1});
  t.net.send(PartyId{"b"}, PartyId{"a"}, Bytes{2});
  t.scheduler.run();
  EXPECT_TRUE(t.b_inbox.empty());
  EXPECT_TRUE(t.a_inbox.empty());

  t.net.set_alive(PartyId{"b"}, true);
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{3});
  t.scheduler.run();
  EXPECT_EQ(t.b_inbox.size(), 1u);
}

TEST(NetworkTest, CrashAfterSendDropsInFlight) {
  NetFixture t;
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{1});
  t.net.set_alive(PartyId{"b"}, false);  // dies before delivery
  t.scheduler.run();
  EXPECT_TRUE(t.b_inbox.empty());
  EXPECT_EQ(t.net.stats().datagrams_dropped, 1u);
}

TEST(NetworkTest, PartitionBlocksUntilHeal) {
  NetFixture t;
  t.net.partition({PartyId{"a"}}, {PartyId{"b"}}, 1'000'000);
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{1});
  t.scheduler.run();
  EXPECT_TRUE(t.b_inbox.empty());

  t.scheduler.run_until(1'000'000);
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{2});
  t.scheduler.run();
  ASSERT_EQ(t.b_inbox.size(), 1u);
  EXPECT_EQ(t.b_inbox[0].second, Bytes{2});
}

TEST(NetworkTest, PartitionDoesNotAffectSameSide) {
  EventScheduler scheduler;
  SimNetwork net{scheduler, 1};
  std::vector<Bytes> c_inbox;
  net.attach(PartyId{"a"}, [](const PartyId&, const Bytes&) {});
  net.attach(PartyId{"c"}, [&](const PartyId&, const Bytes& p) {
    c_inbox.push_back(p);
  });
  net.partition({PartyId{"a"}, PartyId{"c"}}, {PartyId{"b"}}, 1'000'000);
  net.send(PartyId{"a"}, PartyId{"c"}, Bytes{7});
  scheduler.run();
  EXPECT_EQ(c_inbox.size(), 1u);
}

TEST(NetworkTest, InjectBypassesFaults) {
  NetFixture t;
  LinkFaults lossy;
  lossy.drop_probability = 1.0;
  t.net.set_default_faults(lossy);
  t.net.inject(PartyId{"a"}, PartyId{"b"}, Bytes{1}, 10);
  t.scheduler.run();
  EXPECT_EQ(t.b_inbox.size(), 1u);
}

TEST(NetworkTest, StatsCountBytes) {
  NetFixture t;
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes(100, 0));
  t.scheduler.run();
  EXPECT_EQ(t.net.stats().bytes_sent, 100u);
  EXPECT_EQ(t.net.stats().bytes_delivered, 100u);
  t.net.reset_stats();
  EXPECT_EQ(t.net.stats().bytes_sent, 0u);
}

TEST(NetworkTest, SameSeedSameDeliverySchedule) {
  auto run_one = [](std::uint64_t seed) {
    EventScheduler scheduler;
    SimNetwork net{scheduler, seed};
    LinkFaults faults;
    faults.drop_probability = 0.3;
    faults.min_delay_micros = 1;
    faults.max_delay_micros = 10'000;
    net.set_default_faults(faults);
    std::vector<SimTime> deliveries;
    net.attach(PartyId{"a"}, [](const PartyId&, const Bytes&) {});
    net.attach(PartyId{"b"}, [&](const PartyId&, const Bytes&) {
      deliveries.push_back(scheduler.now());
    });
    for (int i = 0; i < 50; ++i) {
      net.send(PartyId{"a"}, PartyId{"b"}, Bytes{static_cast<uint8_t>(i)});
    }
    scheduler.run();
    return deliveries;
  };
  EXPECT_EQ(run_one(7), run_one(7));
  EXPECT_NE(run_one(7), run_one(8));
}

class DropEverythingIntruder : public Intruder {
 public:
  Verdict intercept(const PartyId&, const PartyId&, Bytes&,
                    SimTime*) override {
    ++seen;
    return Verdict::kDrop;
  }
  int seen = 0;
};

TEST(NetworkTest, IntruderCanDropEverything) {
  NetFixture t;
  DropEverythingIntruder intruder;
  t.net.set_intruder(&intruder);
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{1});
  t.scheduler.run();
  EXPECT_TRUE(t.b_inbox.empty());
  EXPECT_EQ(intruder.seen, 1);
  t.net.set_intruder(nullptr);
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{2});
  t.scheduler.run();
  EXPECT_EQ(t.b_inbox.size(), 1u);
}

class DelayingIntruder : public Intruder {
 public:
  Verdict intercept(const PartyId&, const PartyId&, Bytes&,
                    SimTime* extra_delay) override {
    *extra_delay = 1'000'000;
    return Verdict::kDelay;
  }
};

TEST(NetworkTest, IntruderCanDelay) {
  NetFixture t;
  DelayingIntruder intruder;
  t.net.set_intruder(&intruder);
  t.net.send(PartyId{"a"}, PartyId{"b"}, Bytes{1});
  t.scheduler.run_until(900'000);
  EXPECT_TRUE(t.b_inbox.empty());
  t.scheduler.run();
  EXPECT_EQ(t.b_inbox.size(), 1u);
}

}  // namespace
}  // namespace b2b::net
