// Reliable once-only layer: eventual delivery under loss/duplication,
// dedup, integrity check, crash persistence. Includes the DedupWindow
// equivalence suite: the bounded watermark+window bookkeeping must decide
// delivery exactly as the unbounded remember-every-sequence set it
// replaced.
#include "net/reliable.hpp"

#include <gtest/gtest.h>

#include <set>

#include "crypto/chacha20.hpp"
#include "net/dedup.hpp"

namespace b2b::net {
namespace {

struct ReliableFixture {
  EventScheduler scheduler;
  SimNetwork net{scheduler, 99};
  ReliableEndpoint a{net, PartyId{"a"}};
  ReliableEndpoint b{net, PartyId{"b"}};
  std::vector<Bytes> a_received;
  std::vector<Bytes> b_received;

  ReliableFixture() {
    a.set_handler([this](const PartyId&, const Bytes& p) {
      a_received.push_back(p);
    });
    b.set_handler([this](const PartyId&, const Bytes& p) {
      b_received.push_back(p);
    });
  }
};

TEST(ReliableTest, DeliversInOrderOfArrivalOnce) {
  ReliableFixture t;
  t.a.send(PartyId{"b"}, Bytes{1});
  t.a.send(PartyId{"b"}, Bytes{2});
  t.scheduler.run();
  ASSERT_EQ(t.b_received.size(), 2u);
  EXPECT_EQ(t.b.stats().app_delivered, 2u);
  EXPECT_EQ(t.a.unacked(), 0u);
}

TEST(ReliableTest, SurvivesHeavyLoss) {
  EventScheduler scheduler;
  SimNetwork net{scheduler, 5};
  LinkFaults faults;
  faults.drop_probability = 0.6;
  net.set_default_faults(faults);
  ReliableEndpoint a{net, PartyId{"a"}};
  ReliableEndpoint b{net, PartyId{"b"}};
  std::vector<Bytes> received;
  b.set_handler([&](const PartyId&, const Bytes& p) { received.push_back(p); });
  a.set_handler([](const PartyId&, const Bytes&) {});
  for (int i = 0; i < 20; ++i) {
    a.send(PartyId{"b"}, Bytes{static_cast<uint8_t>(i)});
  }
  scheduler.run();
  EXPECT_EQ(received.size(), 20u);
  EXPECT_GT(a.stats().retransmissions, 0u);
  EXPECT_EQ(a.unacked(), 0u);
}

TEST(ReliableTest, MasksDuplicationToOnceOnly) {
  EventScheduler scheduler;
  SimNetwork net{scheduler, 6};
  LinkFaults faults;
  faults.duplicate_probability = 1.0;
  net.set_default_faults(faults);
  ReliableEndpoint a{net, PartyId{"a"}};
  ReliableEndpoint b{net, PartyId{"b"}};
  int received = 0;
  b.set_handler([&](const PartyId&, const Bytes&) { ++received; });
  a.set_handler([](const PartyId&, const Bytes&) {});
  for (int i = 0; i < 10; ++i) {
    a.send(PartyId{"b"}, Bytes{static_cast<uint8_t>(i)});
  }
  scheduler.run();
  EXPECT_EQ(received, 10);
  EXPECT_GT(b.stats().duplicates_suppressed, 0u);
}

TEST(ReliableTest, ResumesAfterReceiverCrash) {
  ReliableFixture t;
  t.net.set_alive(PartyId{"b"}, false);
  t.a.send(PartyId{"b"}, Bytes{42});
  t.scheduler.run_until(500'000);
  EXPECT_TRUE(t.b_received.empty());
  EXPECT_EQ(t.a.unacked(), 1u);
  t.net.set_alive(PartyId{"b"}, true);
  t.scheduler.run();
  ASSERT_EQ(t.b_received.size(), 1u);
  EXPECT_EQ(t.b_received[0], Bytes{42});
  EXPECT_EQ(t.a.unacked(), 0u);
}

TEST(ReliableTest, GivesUpAfterMaxRetransmits) {
  EventScheduler scheduler;
  SimNetwork net{scheduler, 7};
  ReliableEndpoint::Config config;
  config.max_retransmits = 5;
  ReliableEndpoint a{net, PartyId{"a"}, config};
  ReliableEndpoint b{net, PartyId{"b"}, config};
  b.set_handler([](const PartyId&, const Bytes&) {});
  a.set_handler([](const PartyId&, const Bytes&) {});
  net.set_alive(PartyId{"b"}, false);  // permanently dead
  a.send(PartyId{"b"}, Bytes{1});
  scheduler.run();  // must terminate
  EXPECT_EQ(a.stats().retransmissions, 5u);
  EXPECT_EQ(a.unacked(), 1u);  // still queued: evidence of the blockage
}

TEST(ReliableTest, BidirectionalTrafficKeepsStreamsSeparate) {
  ReliableFixture t;
  for (int i = 0; i < 5; ++i) {
    t.a.send(PartyId{"b"}, Bytes{static_cast<uint8_t>(i)});
    t.b.send(PartyId{"a"}, Bytes{static_cast<uint8_t>(100 + i)});
  }
  t.scheduler.run();
  // No ordering guarantee is provided (none is assumed by §4.2), but each
  // payload arrives exactly once at the right endpoint.
  std::multiset<Bytes> a_got(t.a_received.begin(), t.a_received.end());
  std::multiset<Bytes> b_got(t.b_received.begin(), t.b_received.end());
  std::multiset<Bytes> a_want, b_want;
  for (int i = 0; i < 5; ++i) {
    a_want.insert(Bytes{static_cast<uint8_t>(100 + i)});
    b_want.insert(Bytes{static_cast<uint8_t>(i)});
  }
  EXPECT_EQ(a_got, a_want);
  EXPECT_EQ(b_got, b_want);
}

TEST(ReliableTest, EmptyPayloadIsDeliverable) {
  ReliableFixture t;
  t.a.send(PartyId{"b"}, Bytes{});
  t.scheduler.run();
  ASSERT_EQ(t.b_received.size(), 1u);
  EXPECT_TRUE(t.b_received[0].empty());
}

TEST(ReliableTest, ManyMessagesUnderCombinedFaults) {
  EventScheduler scheduler;
  SimNetwork net{scheduler, 12};
  LinkFaults faults;
  faults.drop_probability = 0.3;
  faults.duplicate_probability = 0.3;
  faults.min_delay_micros = 10;
  faults.max_delay_micros = 100'000;
  net.set_default_faults(faults);
  ReliableEndpoint a{net, PartyId{"a"}};
  ReliableEndpoint b{net, PartyId{"b"}};
  std::set<std::uint8_t> received;
  int deliveries = 0;
  b.set_handler([&](const PartyId&, const Bytes& p) {
    received.insert(p[0]);
    ++deliveries;
  });
  a.set_handler([](const PartyId&, const Bytes&) {});
  for (int i = 0; i < 100; ++i) {
    a.send(PartyId{"b"}, Bytes{static_cast<uint8_t>(i)});
  }
  scheduler.run();
  EXPECT_EQ(received.size(), 100u);  // all delivered
  EXPECT_EQ(deliveries, 100);        // exactly once each
}

// --- retransmission backoff, jitter, delivery-failure reporting -------------

TEST(ReliableTest, BackoffScheduleDoublesToCap) {
  ReliableEndpoint::Config config;
  config.retransmit_interval_micros = 50'000;
  config.retransmit_backoff = 2.0;
  config.retransmit_cap_micros = 1'000'000;
  EXPECT_EQ(ReliableEndpoint::backoff_delay(config, 1), 50'000u);
  EXPECT_EQ(ReliableEndpoint::backoff_delay(config, 2), 100'000u);
  EXPECT_EQ(ReliableEndpoint::backoff_delay(config, 3), 200'000u);
  EXPECT_EQ(ReliableEndpoint::backoff_delay(config, 4), 400'000u);
  EXPECT_EQ(ReliableEndpoint::backoff_delay(config, 5), 800'000u);
  // Crosses the ceiling: clamped, and stays clamped forever after.
  EXPECT_EQ(ReliableEndpoint::backoff_delay(config, 6), 1'000'000u);
  EXPECT_EQ(ReliableEndpoint::backoff_delay(config, 100), 1'000'000u);
}

TEST(ReliableTest, BackoffFactorOneRestoresFixedInterval) {
  ReliableEndpoint::Config config;
  config.retransmit_interval_micros = 50'000;
  config.retransmit_backoff = 1.0;
  for (std::size_t attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_EQ(ReliableEndpoint::backoff_delay(config, attempt), 50'000u);
  }
}

TEST(ReliableTest, JitteredScheduleIsSeededDeterministic) {
  // The jitter comes from the endpoint's (seeded) Rng seam: the complete
  // retransmission timeline of a run must reproduce bit-for-bit.
  auto run_once = [] {
    EventScheduler scheduler;
    SimNetwork net{scheduler, 7};
    ReliableEndpoint::Config config;
    config.max_retransmits = 6;
    ReliableEndpoint a{net, PartyId{"a"}, config};
    ReliableEndpoint b{net, PartyId{"b"}, config};
    a.set_handler([](const PartyId&, const Bytes&) {});
    b.set_handler([](const PartyId&, const Bytes&) {});
    net.set_alive(PartyId{"b"}, false);
    a.send(PartyId{"b"}, Bytes{1});
    scheduler.run();
    return scheduler.now();
  };
  SimTime first = run_once();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(run_once(), first);
}

TEST(ReliableTest, ReportsDeliveryFailureOncePerGivenUpMessage) {
  EventScheduler scheduler;
  SimNetwork net{scheduler, 7};
  ReliableEndpoint::Config config;
  config.max_retransmits = 3;
  ReliableEndpoint a{net, PartyId{"a"}, config};
  ReliableEndpoint b{net, PartyId{"b"}, config};
  a.set_handler([](const PartyId&, const Bytes&) {});
  b.set_handler([](const PartyId&, const Bytes&) {});
  std::vector<PartyId> failed;
  a.set_delivery_failure_handler(
      [&](const PartyId& to) { failed.push_back(to); });

  net.set_alive(PartyId{"b"}, false);  // permanently dead (for now)
  a.send(PartyId{"b"}, Bytes{1});
  a.send(PartyId{"b"}, Bytes{2});
  scheduler.run();
  ASSERT_EQ(failed.size(), 2u);  // once per undeliverable message
  EXPECT_EQ(failed[0], PartyId{"b"});
  EXPECT_EQ(failed[1], PartyId{"b"});

  // A delivery that succeeds never reports failure.
  net.set_alive(PartyId{"b"}, true);
  a.send(PartyId{"b"}, Bytes{3});
  scheduler.run();
  EXPECT_EQ(failed.size(), 2u);
  EXPECT_GE(b.stats().app_delivered, 1u);
}

// --- DedupWindow: bounded replacement for the unbounded delivered-set ------

TEST(DedupWindowTest, MatchesUnboundedSetOnAdversarialStream) {
  // Reference model: the old implementation remembered every delivered
  // sequence number in a std::set. Feed both models the same stream of
  // duplicates, reorderings and retransmissions; every mark() verdict
  // must agree.
  DedupWindow window;
  std::set<std::uint64_t> reference;
  crypto::ChaCha20Rng rng(0xdedca5e5ULL);
  std::uint64_t next_fresh = 0;
  for (int i = 0; i < 5'000; ++i) {
    std::uint64_t seq;
    switch (rng.next_u64() % 4) {
      case 0:  // a duplicate of something already sent
        seq = next_fresh == 0 ? 0 : rng.next_u64() % next_fresh;
        break;
      case 1:  // a reordered future sequence (bounded look-ahead)
        seq = next_fresh + rng.next_u64() % 8;
        break;
      default:  // the next contiguous sequence
        seq = next_fresh++;
        break;
    }
    bool expect_deliver = reference.insert(seq).second;
    EXPECT_EQ(window.mark(seq), expect_deliver) << "seq=" << seq;
    EXPECT_EQ(window.seen(seq), true);
  }
  // Everything below the contiguous prefix is remembered without being
  // stored individually.
  for (std::uint64_t seq = 0; seq < window.prefix(); ++seq) {
    EXPECT_TRUE(window.seen(seq));
    EXPECT_FALSE(window.mark(seq));
  }
}

TEST(DedupWindowTest, ContiguousStreamCollapsesToWatermark) {
  DedupWindow window;
  for (std::uint64_t seq = 0; seq < 10'000; ++seq) {
    ASSERT_TRUE(window.mark(seq));
    ASSERT_EQ(window.window_size(), 0u);  // never grows in order
  }
  EXPECT_EQ(window.prefix(), 10'000u);
  EXPECT_FALSE(window.mark(123));  // deep history still deduplicated
}

TEST(DedupWindowTest, OutOfOrderHeldThenAbsorbed) {
  DedupWindow window;
  EXPECT_TRUE(window.mark(3));
  EXPECT_TRUE(window.mark(1));
  EXPECT_TRUE(window.mark(2));
  EXPECT_EQ(window.prefix(), 0u);  // gap at 0 holds the watermark back
  EXPECT_EQ(window.window_size(), 3u);
  EXPECT_TRUE(window.mark(0));  // gap filled: prefix sweeps forward
  EXPECT_EQ(window.prefix(), 4u);
  EXPECT_EQ(window.window_size(), 0u);
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    EXPECT_FALSE(window.mark(seq));
  }
}

TEST(DedupWindowTest, MemoryTracksReorderingDepthNotLifetime) {
  // Deliver a long stream in swapped pairs: the transient window never
  // exceeds the reordering depth (1), regardless of stream length.
  DedupWindow window;
  for (std::uint64_t base = 0; base < 20'000; base += 2) {
    ASSERT_TRUE(window.mark(base + 1));
    ASSERT_LE(window.window_size(), 1u);
    ASSERT_TRUE(window.mark(base));
    ASSERT_EQ(window.window_size(), 0u);
  }
  EXPECT_EQ(window.prefix(), 20'000u);
}

}  // namespace
}  // namespace b2b::net
