// Tests for the byte-buffer utilities.
#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace b2b {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes data{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(BytesTest, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, FromHexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(BytesTest, StringConversionRoundTrip) {
  std::string s = "hello \x01 world";
  EXPECT_EQ(string_of(bytes_of(s)), s);
}

TEST(BytesTest, ConcatJoinsInOrder) {
  Bytes a{1, 2};
  Bytes b{};
  Bytes c{3};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
  EXPECT_TRUE(concat({}).empty());
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a{1, 2, 3};
  Bytes b{1, 2, 3};
  Bytes c{1, 2, 4};
  Bytes d{1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

}  // namespace
}  // namespace b2b
