#include "tests/support/test_keys.hpp"

#include <map>
#include <mutex>

namespace b2b::crypto::test {

const RsaPrivateKey& shared_test_key(std::size_t index) {
  static std::mutex mutex;
  static std::map<std::size_t, RsaPrivateKey> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(index);
  if (it == cache.end()) {
    ChaCha20Rng rng(0xb2b0000 + index);
    it = cache.emplace(index, generate_rsa_keypair(512, rng)).first;
  }
  return it->second;
}

}  // namespace b2b::crypto::test
