// Minimal B2BObject implementations for protocol tests.
#pragma once

#include <functional>
#include <vector>

#include "b2b/object.hpp"
#include "common/bytes.hpp"

namespace b2b::test {

/// A shared register holding opaque bytes, with a pluggable validation
/// policy and an event recorder. Supports the update variant: an update is
/// a byte string to append to the current value.
class TestRegister : public core::B2BObject {
 public:
  TestRegister() = default;

  Bytes value;
  /// Local validation policy; default accepts everything.
  std::function<core::Decision(BytesView, const core::ValidationContext&)>
      policy;
  /// Every coord_callback event, in order.
  std::vector<core::CoordEvent> events;

  /// For get_update(): the suffix appended since the last agreed state.
  Bytes pending_suffix;

  Bytes get_state() const override { return value; }

  void apply_state(BytesView state) override {
    value.assign(state.begin(), state.end());
  }

  Bytes get_update() const override { return pending_suffix; }

  void apply_update(BytesView update) override {
    value.insert(value.end(), update.begin(), update.end());
  }

  core::Decision validate_state(BytesView proposed,
                                const core::ValidationContext& ctx) override {
    if (policy) return policy(proposed, ctx);
    return core::Decision::accepted();
  }

  void coord_callback(const core::CoordEvent& event) override {
    events.push_back(event);
  }

  /// Count of events of one kind.
  std::size_t count(core::CoordEvent::Kind kind) const {
    std::size_t n = 0;
    for (const auto& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }
};

}  // namespace b2b::test
