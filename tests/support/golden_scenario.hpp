// A fixed multi-object scenario whose outcome is fingerprinted bit-for-bit.
//
// Four organisations share three objects with different member sets and
// drive state runs, a connect, an update and an eviction with runs on
// *different* objects deliberately in flight at the same time. On the
// deterministic simulator the entire deployment — every evidence chain,
// every agreed/group tuple, every object value, the executed event count
// — is a pure function of the seed, so its SHA-256 fingerprint pins the
// protocol's observable behaviour across refactors: the sharding
// equivalence suite asserts the digest captured on the pre-shard
// coordinator verbatim.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "b2b/federation.hpp"
#include "crypto/sha256.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::test {

/// Runs the scenario on the deterministic simulator and returns the
/// deployment fingerprint as a hex digest. `options` must name the sim
/// runtime; lock-mode knobs may vary (that is the point). When
/// `journal_tag` is non-empty every party journals under a fresh
/// temporary root (removed again before returning), covering the
/// journal-append paths in the fingerprint's event count.
inline std::string run_golden_scenario(core::Federation::Options options,
                                       const std::string& journal_tag = "") {
  namespace fs = std::filesystem;
  using core::RunHandle;
  using core::RunResult;

  fs::path journal_root;
  if (!journal_tag.empty()) {
    journal_root =
        fs::temp_directory_path() / ("b2b_golden_" + journal_tag);
    fs::remove_all(journal_root);
    options.journal_root = journal_root.string();
    options.journal_fsync = false;
  }

  const ObjectId kLedger{"ledger"};
  const ObjectId kOrders{"orders"};
  const ObjectId kAudit{"audit"};
  const std::vector<std::string> kAll = {"alpha", "beta", "gamma", "delta"};

  std::string digest_hex;
  {
    // Registers outlive nothing here (sim runtime, single thread), but
    // keep the declaration order of the other suites for uniformity.
    TestRegister regs[4][3];
    core::Federation fed(std::vector<std::string>(kAll.begin(), kAll.end()),
                         options);
    for (std::size_t p = 0; p < kAll.size(); ++p) {
      fed.register_object(kAll[p], kLedger, regs[p][0]);
      fed.register_object(kAll[p], kOrders, regs[p][1]);
      fed.register_object(kAll[p], kAudit, regs[p][2]);
    }
    fed.bootstrap_object(kLedger, {"alpha", "beta", "gamma"},
                         bytes_of("L0"));
    fed.bootstrap_object(kOrders, {"alpha", "beta", "delta"},
                         bytes_of("O0"));
    fed.bootstrap_object(kAudit, {"alpha", "beta", "gamma", "delta"},
                         bytes_of("A0"));

    // Drives one batch of concurrent runs to completion, then settles so
    // responder-side runs close before the next batch proposes.
    auto drive = [&](std::initializer_list<RunHandle> handles) {
      for (const RunHandle& h : handles) {
        if (!fed.run_until_done(h)) {
          ADD_FAILURE() << "golden scenario run did not terminate";
          return;
        }
        EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
      }
      fed.settle();
    };

    auto index_of = [&](const std::string& name) {
      for (std::size_t p = 0; p < kAll.size(); ++p) {
        if (kAll[p] == name) return p;
      }
      return std::size_t{0};
    };
    // Proposers mutate their object BEFORE proposing (invariant 2: while
    // a proposal is in flight the proposer's object holds the proposed
    // state), exactly as a Controller would.
    auto propose = [&](const std::string& name, std::size_t obj_index,
                       const ObjectId& object, const std::string& value) {
      TestRegister& reg = regs[index_of(name)][obj_index];
      reg.value = bytes_of(value);
      return fed.coordinator(name).propagate_new_state(object,
                                                       reg.get_state());
    };
    auto update = [&](const std::string& name, std::size_t obj_index,
                      const ObjectId& object, const std::string& suffix) {
      TestRegister& reg = regs[index_of(name)][obj_index];
      reg.pending_suffix = bytes_of(suffix);
      reg.value.insert(reg.value.end(), suffix.begin(), suffix.end());
      return fed.coordinator(name).propagate_update(object, reg.get_update(),
                                                    reg.get_state());
    };

    // Phase 1: one state run per object, all in flight together.
    drive({propose("alpha", 0, kLedger, "L1"),
           propose("beta", 1, kOrders, "O1"),
           propose("gamma", 2, kAudit, "A1")});

    // Phase 2: a membership run on one object while a state run is in
    // flight on another.
    drive({fed.coordinator("delta").propagate_connect(kLedger,
                                                      PartyId{"gamma"}),
           propose("alpha", 1, kOrders, "O2")});

    // Phase 3: an update variant next to a plain state run.
    drive({update("alpha", 2, kAudit, "+u"),
           propose("beta", 0, kLedger, "L2")});

    // Phase 4: an eviction (relayed to the rotating sponsor) next to a
    // state run on a third object.
    drive({fed.coordinator("alpha").propagate_eviction(
               kAudit, {PartyId{"delta"}}),
           propose("delta", 1, kOrders, "O3")});

    fed.settle();

    crypto::Sha256 hasher;
    auto mix = [&](const Bytes& bytes) {
      const std::uint64_t n = bytes.size();
      Bytes len(8);
      for (int i = 0; i < 8; ++i) {
        len[i] = static_cast<std::uint8_t>(n >> (8 * i));
      }
      hasher.update(len);
      hasher.update(bytes);
    };
    for (std::size_t p = 0; p < kAll.size(); ++p) {
      core::Coordinator& coord = fed.coordinator(kAll[p]);
      const store::EvidenceLog& evidence = coord.evidence();
      EXPECT_TRUE(evidence.verify_chain()) << kAll[p];
      mix(bytes_of(std::to_string(evidence.size())));
      if (!evidence.empty()) {
        mix(evidence.at(evidence.size() - 1).encode());
      }
      std::size_t o = 0;
      for (const ObjectId& object : {kLedger, kOrders, kAudit}) {
        mix(coord.replica(object).agreed_tuple().encode());
        mix(coord.replica(object).group_tuple().encode());
        mix(regs[p][o].value);
        ++o;
      }
      EXPECT_EQ(coord.violations_detected(), 0u) << kAll[p];
    }
    mix(bytes_of(std::to_string(fed.scheduler().events_executed())));
    digest_hex = to_hex(crypto::digest_bytes(hasher.finish()));
  }
  if (!journal_root.empty()) fs::remove_all(journal_root);
  return digest_hex;
}

}  // namespace b2b::test
