// The canonical crash-point campaign: every named crash point in
// replica.cpp (see src/b2b/recovery.hpp), grouped by the protocol role
// whose code path passes it. Shared by the single-object campaign in
// recovery_test.cpp and the multi-object (sharded) campaign in
// sharding_test.cpp, so neither can silently fall out of date when a
// point is added.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace b2b::test {

// Crash points passed on the proposer's code path.
inline const std::vector<std::string> kProposerPoints = {
    "propose.pre-journal",  "propose.journaled", "propose.mid-send",
    "propose.sent",         "response.pre-journal", "response.journaled",
    "decide.pre-journal",   "decide.journaled",  "decide.mid-send",
    "decide.sent",          "decide.installed",
};

// Crash points passed on a responder's code path.
inline const std::vector<std::string> kResponderPoints = {
    "respond.pre-journal",     "respond.journaled",
    "respond.sent",            "decide-recv.pre-journal",
    "decide-recv.journaled",   "decide-recv.installed",
};

// Membership crash points passed on the sponsor's code path during a
// connect run.
inline const std::vector<std::string> kSponsorMembershipPoints = {
    "m-propose.pre-journal", "m-propose.journaled",  "m-propose.sent",
    "m-response.journaled",  "m-decide.pre-journal", "m-decide.journaled",
    "m-decide.mid-send",     "m-decide.sent",        "m-decide.installed",
};

// Membership crash points passed on a recipient's code path.
inline const std::vector<std::string> kRecipientMembershipPoints = {
    "m-respond.journaled",       "m-respond.sent",
    "m-decide-recv.pre-journal", "m-decide-recv.journaled",
    "m-decide-recv.installed",
};

// The one crash point on the subject's (joiner's) code path.
inline const std::string kSubjectPoint = "m-request.journaled";

// Termination crash points passed at the party that refers a blocked run
// to the arbiter.
inline const std::vector<std::string> kTerminationPoints = {
    "ttp-submit.journaled",
    "verdict.journaled",
};

// Deal crash points passed at the initiator (DESIGN.md §12): staging a
// leg, opening the deal, launching the staged runs, journaling and
// replicating the signed decision.
inline const std::vector<std::string> kDealInitiatorPoints = {
    "deal-stage.pre-journal",  "deal-open.pre-journal",
    "deal-open.journaled",     "deal-launch.mid-send",
    "deal-launch.sent",        "deal-decide.pre-journal",
    "deal-decide.journaled",   "deal-decide.mid-replicate",
};

// Deal crash points passed at a participant: journaling a received
// enlist, and acting on a received abort decision.
inline const std::vector<std::string> kDealParticipantPoints = {
    "deal-enlist-recv.pre-journal", "deal-enlist-recv.journaled",
    "deal-abort-recv.pre-journal",  "deal-abort-recv.journaled",
};

// Pipelined-batch crash points passed on the batch proposer's code path
// (DESIGN.md §13): opening the batch (journal/sign/send), and sending /
// installing the batch decide.
inline const std::vector<std::string> kBatchProposerPoints = {
    "batch-open.pre-journal",   "batch-chain-head.signed",
    "batch-open.journaled",     "batch-open.mid-send",
    "batch-open.sent",          "batch-decide.pre-journal",
    "batch-decide.journaled",   "batch-decide.mid-send",
    "batch-decide.sent",        "batch-decide.installed",
};

// Pipelined-batch crash points passed on a batch responder's code path:
// mid-validation of the batch, journaling/sending the single signed
// response, and receiving/installing the batch decide.
inline const std::vector<std::string> kBatchResponderPoints = {
    "batch-respond.mid",            "batch-respond.journaled",
    "batch-respond.sent",           "batch-decide-recv.pre-journal",
    "batch-decide-recv.journaled",  "batch-decide-recv.installed",
};

/// CI sweeps the campaigns under several seeds via this env var; the
/// default matches the historical hardcoded seed.
inline std::uint64_t campaign_seed() {
  const char* seed = std::getenv("B2B_CRASH_SEED");
  return seed != nullptr ? std::strtoull(seed, nullptr, 10) : 11;
}

/// Crash-point name as a filesystem-safe tag fragment.
inline std::string sanitized_point(const std::string& point) {
  std::string out = point;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace b2b::test
