// Shared RSA test keys.
//
// Key generation is the slowest crypto operation; tests that just need
// "some valid keypair" share a small pool of lazily generated 512-bit keys
// (deterministic seeds, so failures reproduce).
#pragma once

#include <cstddef>

#include "crypto/rsa.hpp"

namespace b2b::crypto::test {

/// A process-wide pool of deterministic 512-bit keypairs. `index` picks a
/// distinct identity; the same index always returns the same key.
const RsaPrivateKey& shared_test_key(std::size_t index);

}  // namespace b2b::crypto::test
