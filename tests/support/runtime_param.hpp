// Support for running protocol suites over all four runtimes.
//
// A suite derives its fixture from RuntimeParamTest and instantiates with
// B2B_INSTANTIATE_RUNTIME_SUITE: every TEST_P then runs once on the
// deterministic simulator, once on real threads over the in-process
// fabric, once over real TCP sockets on localhost (thread-per-peer), and
// once over the same sockets on the epoll reactor (one loop + bounded
// pool), proving the protocol layer depends only on the abstract runtime
// seam (eventual once-only delivery), not on the discrete-event substrate
// or the threading model underneath.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "b2b/federation.hpp"

namespace b2b::test {

/// Options preset mapping the same logical deployment (seed, loss,
/// duplication) onto whichever runtime is under test.
inline core::Federation::Options runtime_options(core::RuntimeKind kind,
                                                 std::uint64_t seed = 1,
                                                 double drop = 0.0,
                                                 double dup = 0.0) {
  core::Federation::Options options;
  options.runtime = kind;
  options.seed = seed;
  if (kind == core::RuntimeKind::kSim) {
    options.faults.drop_probability = drop;
    options.faults.duplicate_probability = dup;
    if (drop > 0.0 || dup > 0.0) {
      options.faults.min_delay_micros = 500;
      options.faults.max_delay_micros = 20'000;
      options.reliable.retransmit_interval_micros = 40'000;
    }
  } else if (kind == core::RuntimeKind::kThreaded) {
    options.threaded_faults.drop_probability = drop;
    options.threaded_faults.duplicate_probability = dup;
  } else if (kind == core::RuntimeKind::kTcp) {
    options.tcp_faults.drop_probability = drop;
    options.tcp_faults.duplicate_probability = dup;
  } else {
    options.reactor_faults.drop_probability = drop;
    options.reactor_faults.duplicate_probability = dup;
  }
  return options;
}

/// Datagram-level fault counters of whichever fabric is active.
struct FabricStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
};

inline FabricStats fabric_stats(core::Federation& fed) {
  if (fed.runtime() == core::RuntimeKind::kSim) {
    const auto& stats = fed.network().stats();
    return {stats.datagrams_dropped, stats.datagrams_duplicated};
  }
  if (fed.runtime() == core::RuntimeKind::kThreaded) {
    const auto stats = fed.threaded_network().stats();
    return {stats.datagrams_dropped, stats.datagrams_duplicated};
  }
  if (fed.runtime() == core::RuntimeKind::kTcp) {
    const auto stats = fed.tcp_runtime().fabric_stats();
    return {stats.frames_dropped_injected, stats.frames_duplicated_injected};
  }
  const auto stats = fed.reactor_runtime().fabric_stats();
  return {stats.frames_dropped_injected, stats.frames_duplicated_injected};
}

/// Base fixture for suites instantiated over both runtimes.
class RuntimeParamTest : public ::testing::TestWithParam<core::RuntimeKind> {
 protected:
  core::Federation::Options options(std::uint64_t seed = 1, double drop = 0.0,
                                    double dup = 0.0) const {
    return runtime_options(GetParam(), seed, drop, dup);
  }
};

inline std::string runtime_suffix(core::RuntimeKind kind) {
  switch (kind) {
    case core::RuntimeKind::kSim:
      return "Sim";
    case core::RuntimeKind::kThreaded:
      return "Threaded";
    case core::RuntimeKind::kTcp:
      return "Tcp";
    case core::RuntimeKind::kReactor:
      return "Reactor";
  }
  return "Unknown";
}

}  // namespace b2b::test

#define B2B_INSTANTIATE_RUNTIME_SUITE(suite)                             \
  INSTANTIATE_TEST_SUITE_P(                                              \
      Runtimes, suite,                                                   \
      ::testing::Values(b2b::core::RuntimeKind::kSim,                    \
                        b2b::core::RuntimeKind::kThreaded,               \
                        b2b::core::RuntimeKind::kTcp,                    \
                        b2b::core::RuntimeKind::kReactor),               \
      [](const ::testing::TestParamInfo<b2b::core::RuntimeKind>& info) { \
        return b2b::test::runtime_suffix(info.param);                    \
      })
