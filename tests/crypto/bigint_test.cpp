// Unit and property tests for the arbitrary-precision integer substrate.
#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/error.hpp"
#include "crypto/chacha20.hpp"

namespace b2b::crypto {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");
  EXPECT_EQ(zero.to_decimal(), "0");
  EXPECT_TRUE(zero.to_bytes_be().empty());
}

TEST(BigIntTest, SmallValueRoundTrips) {
  BigInt v(0xdeadbeefULL);
  EXPECT_EQ(v.to_hex(), "deadbeef");
  EXPECT_EQ(v.low_u64(), 0xdeadbeefULL);
  EXPECT_EQ(BigInt::from_hex("deadbeef"), v);
  EXPECT_EQ(BigInt::from_decimal("3735928559"), v);
  EXPECT_EQ(v.to_decimal(), "3735928559");
}

TEST(BigIntTest, BytesBigEndianRoundTrip) {
  Bytes raw = from_hex("0102030405060708090a0b0c0d0e0f10");
  BigInt v = BigInt::from_bytes_be(raw);
  EXPECT_EQ(v.to_bytes_be(), raw);
  EXPECT_EQ(v.to_hex(), "102030405060708090a0b0c0d0e0f10");
}

TEST(BigIntTest, FromBytesIgnoresLeadingZeros) {
  EXPECT_EQ(BigInt::from_bytes_be(from_hex("000000ff")), BigInt(255));
}

TEST(BigIntTest, FixedWidthBytesPadsAndThrows) {
  BigInt v(0x1234);
  EXPECT_EQ(v.to_bytes_be(4), from_hex("00001234"));
  EXPECT_THROW(v.to_bytes_be(1), std::invalid_argument);
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt max64 = BigInt::from_hex("ffffffffffffffff");
  EXPECT_EQ(max64 + BigInt(1), BigInt::from_hex("10000000000000000"));
}

TEST(BigIntTest, SubtractionBorrowsAcrossLimbs) {
  BigInt big = BigInt::from_hex("10000000000000000");
  EXPECT_EQ(big - BigInt(1), BigInt::from_hex("ffffffffffffffff"));
}

TEST(BigIntTest, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigInt(1) - BigInt(2), std::invalid_argument);
}

TEST(BigIntTest, MultiplicationMatchesKnownProduct) {
  // 2^128 - 1 squared.
  BigInt v = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((v * v).to_hex(),
            "fffffffffffffffffffffffffffffffe"
            "00000000000000000000000000000001");
}

TEST(BigIntTest, ShiftLeftRightInverse) {
  BigInt v = BigInt::from_hex("123456789abcdef0123456789abcdef");
  for (std::size_t shift : {1u, 7u, 64u, 65u, 130u}) {
    EXPECT_EQ((v << shift) >> shift, v) << "shift=" << shift;
  }
}

TEST(BigIntTest, ShiftRightDropsLowBits) {
  EXPECT_EQ(BigInt(0xff) >> 4, BigInt(0x0f));
  EXPECT_EQ(BigInt(1) >> 1, BigInt(0));
}

TEST(BigIntTest, DivModByZeroThrows) {
  EXPECT_THROW(BigInt::divmod(BigInt(1), BigInt(0)), std::domain_error);
}

TEST(BigIntTest, DivModSingleLimb) {
  auto [q, r] = BigInt::divmod(BigInt::from_decimal("1000000000000000000007"),
                               BigInt(10));
  EXPECT_EQ(q.to_decimal(), "100000000000000000000");
  EXPECT_EQ(r, BigInt(7));
}

TEST(BigIntTest, DivModMultiLimbKnownValues) {
  BigInt n = BigInt::from_hex(
      "1a2b3c4d5e6f708192a3b4c5d6e7f8091a2b3c4d5e6f708192a3b4c5d6e7f809");
  BigInt d = BigInt::from_hex("fedcba98765432100123456789abcdef");
  auto [q, r] = BigInt::divmod(n, d);
  EXPECT_EQ(q * d + r, n);
  EXPECT_LT(r, d);
}

TEST(BigIntTest, ComparisonOrdering) {
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_GT(BigInt::from_hex("10000000000000000"), BigInt(2));
  EXPECT_EQ(BigInt(5) <=> BigInt(5), std::strong_ordering::equal);
}

TEST(BigIntTest, DecimalRoundTripLargeValue) {
  std::string dec = "123456789012345678901234567890123456789012345678901234";
  EXPECT_EQ(BigInt::from_decimal(dec).to_decimal(), dec);
}

// Property: (a*b) / b == a and (a*b) % b == 0 for random a, b.
class BigIntPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntPropertyTest, DivModInvertsMultiplication) {
  ChaCha20Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::from_bytes_be(rng.bytes(1 + rng.next_below(40)));
    BigInt b = BigInt::from_bytes_be(rng.bytes(1 + rng.next_below(40)));
    if (b.is_zero()) continue;
    BigInt product = a * b;
    auto [q, r] = BigInt::divmod(product, b);
    EXPECT_EQ(q, a);
    EXPECT_TRUE(r.is_zero());
  }
}

TEST_P(BigIntPropertyTest, DivModIdentityForRandomPairs) {
  ChaCha20Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ULL);
  for (int i = 0; i < 20; ++i) {
    BigInt n = BigInt::from_bytes_be(rng.bytes(1 + rng.next_below(64)));
    BigInt d = BigInt::from_bytes_be(rng.bytes(1 + rng.next_below(32)));
    if (d.is_zero()) continue;
    auto [q, r] = BigInt::divmod(n, d);
    EXPECT_EQ(q * d + r, n);
    EXPECT_LT(r, d);
  }
}

TEST_P(BigIntPropertyTest, AdditionSubtractionInverse) {
  ChaCha20Rng rng(GetParam() + 17);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::from_bytes_be(rng.bytes(1 + rng.next_below(48)));
    BigInt b = BigInt::from_bytes_be(rng.bytes(1 + rng.next_below(48)));
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST_P(BigIntPropertyTest, HexRoundTrip) {
  ChaCha20Rng rng(GetParam() + 101);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::from_bytes_be(rng.bytes(1 + rng.next_below(64)));
    EXPECT_EQ(BigInt::from_hex(a.to_hex()), a);
    EXPECT_EQ(BigInt::from_decimal(a.to_decimal()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 2026));

TEST(BigIntModExpTest, KnownSmallValues) {
  EXPECT_EQ(mod_exp(BigInt(4), BigInt(13), BigInt(497)), BigInt(445));
  EXPECT_EQ(mod_exp(BigInt(2), BigInt(10), BigInt(1025)), BigInt(1024));
  EXPECT_EQ(mod_exp(BigInt(0), BigInt(0), BigInt(7)), BigInt(1));
}

TEST(BigIntModExpTest, ZeroModulusThrows) {
  EXPECT_THROW(mod_exp(BigInt(2), BigInt(2), BigInt(0)), std::domain_error);
}

TEST(BigIntModExpTest, ModulusOneGivesZero) {
  EXPECT_EQ(mod_exp(BigInt(123), BigInt(456), BigInt(1)), BigInt(0));
}

TEST(BigIntModExpTest, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p not dividing a.
  BigInt p = BigInt::from_decimal("1000000007");
  for (std::uint64_t a : {2ULL, 3ULL, 999999999ULL}) {
    EXPECT_EQ(mod_exp(BigInt(a), p - BigInt(1), p), BigInt(1));
  }
}

TEST(BigIntModExpTest, EvenModulusPathAgrees) {
  // Cross-check the non-Montgomery path against known identity:
  // 3^5 mod 16 = 243 mod 16 = 3.
  EXPECT_EQ(mod_exp(BigInt(3), BigInt(5), BigInt(16)), BigInt(3));
}

TEST(BigIntModExpTest, MontgomeryMatchesNaiveOnRandomInputs) {
  ChaCha20Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    Bytes mod_bytes = rng.bytes(24);
    mod_bytes.back() |= 1;  // odd
    mod_bytes.front() |= 0x80;
    BigInt m = BigInt::from_bytes_be(mod_bytes);
    BigInt base = BigInt::from_bytes_be(rng.bytes(24)) % m;
    BigInt exp = BigInt::from_bytes_be(rng.bytes(8));
    // Naive: repeated square-and-multiply with divmod reduction.
    BigInt expect(1);
    for (std::size_t bit = exp.bit_length(); bit-- > 0;) {
      expect = (expect * expect) % m;
      if (exp.bit(bit)) expect = (expect * base) % m;
    }
    EXPECT_EQ(mod_exp(base, exp, m), expect) << "iteration " << i;
  }
}

TEST(MontgomeryContextTest, RequiresOddModulus) {
  EXPECT_THROW(MontgomeryContext(BigInt(10)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigInt(1)), std::invalid_argument);
}

TEST(MontgomeryContextTest, ToFromMontRoundTrip) {
  BigInt m = BigInt::from_decimal("1000000000000000000000000000057");
  MontgomeryContext ctx(m);
  ChaCha20Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    BigInt v = BigInt::from_bytes_be(rng.bytes(12)) % m;
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(v)), v);
  }
}

TEST(MontgomeryContextTest, MulMatchesPlainModularProduct) {
  BigInt m = BigInt::from_decimal("982451653");
  MontgomeryContext ctx(m);
  BigInt a(123456789), b(987654321);
  BigInt got = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
  EXPECT_EQ(got, (a * b) % m);
}

TEST(NumberTheoryTest, GcdKnownValues) {
  EXPECT_EQ(gcd(BigInt(48), BigInt(18)), BigInt(6));
  EXPECT_EQ(gcd(BigInt(17), BigInt(13)), BigInt(1));
  EXPECT_EQ(gcd(BigInt(0), BigInt(5)), BigInt(5));
}

TEST(NumberTheoryTest, LcmKnownValuesAndZeroThrows) {
  EXPECT_EQ(lcm(BigInt(4), BigInt(6)), BigInt(12));
  EXPECT_THROW(lcm(BigInt(0), BigInt(6)), std::domain_error);
}

TEST(NumberTheoryTest, ModInverseRoundTrip) {
  BigInt m = BigInt::from_decimal("1000000007");
  ChaCha20Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt(1 + rng.next_below(1000000006));
    BigInt inv = mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
}

TEST(NumberTheoryTest, ModInverseNonexistentThrows) {
  EXPECT_THROW(mod_inverse(BigInt(4), BigInt(8)), CryptoError);
}

}  // namespace
}  // namespace b2b::crypto
