// HMAC-SHA256 against the RFC 4231 test vectors, the HKDF extract/expand
// pair against the RFC 5869 SHA-256 vectors, and the constant-time
// comparison wire v3 relies on for MAC verification.
#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/bytes.hpp"

namespace b2b::crypto {
namespace {

std::string mac_hex(const Bytes& key, const Bytes& data) {
  return to_hex(digest_bytes(HmacSha256::mac(key, data)));
}

// --- RFC 4231 HMAC-SHA-256 test cases ---------------------------------------

TEST(HmacSha256Test, Rfc4231Case1) {
  EXPECT_EQ(
      mac_hex(Bytes(20, 0x0b), bytes_of("Hi There")),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2ShortKey) {
  EXPECT_EQ(
      mac_hex(bytes_of("Jefe"), bytes_of("what do ya want for nothing?")),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  EXPECT_EQ(
      mac_hex(Bytes(20, 0xaa), Bytes(50, 0xdd)),
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, Rfc4231Case4) {
  EXPECT_EQ(
      mac_hex(from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
              Bytes(50, 0xcd)),
      "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256Test, Rfc4231Case6KeyLargerThanBlock) {
  // 131-byte key: must be pre-hashed before the pad schedule.
  EXPECT_EQ(
      mac_hex(Bytes(131, 0xaa),
              bytes_of("Test Using Larger Than Block-Size Key - Hash "
                       "Key First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, Rfc4231Case7KeyAndDataLargerThanBlock) {
  EXPECT_EQ(
      mac_hex(Bytes(131, 0xaa),
              bytes_of("This is a test using a larger than block-size ke"
                       "y and a larger than block-size data. The key nee"
                       "ds to be hashed before being used by the HMAC al"
                       "gorithm.")),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSha256Test, StreamingMatchesOneShot) {
  Bytes key = bytes_of("stream-key");
  Bytes data = bytes_of("the quick brown fox jumps over the lazy dog");
  Digest want = HmacSha256::mac(key, data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    HmacSha256 mac(key);
    mac.update(BytesView(data.data(), split));
    mac.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(mac.finish(), want) << "split at " << split;
  }
}

TEST(HmacSha256Test, ResetAllowsReuseWithSameKey) {
  HmacSha256 mac(Bytes(20, 0x0b));
  mac.update(bytes_of("garbage"));
  mac.reset();
  mac.update(bytes_of("Hi There"));
  EXPECT_EQ(
      to_hex(digest_bytes(mac.finish())),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, DistinctKeysGiveDistinctTags) {
  Bytes data = bytes_of("same message");
  EXPECT_NE(HmacSha256::mac(bytes_of("key-a"), data),
            HmacSha256::mac(bytes_of("key-b"), data));
}

// --- RFC 5869 HKDF-SHA256 test cases ----------------------------------------

TEST(HkdfTest, Rfc5869Case1) {
  Digest prk = hkdf_extract(from_hex("000102030405060708090a0b0c"),
                            Bytes(22, 0x0b));
  EXPECT_EQ(
      to_hex(digest_bytes(prk)),
      "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes okm = hkdf_expand(prk, from_hex("f0f1f2f3f4f5f6f7f8f9"), 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5"
            "bf34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case2LongInputs) {
  Bytes ikm, salt, info;
  for (int i = 0x00; i <= 0x4f; ++i) ikm.push_back(static_cast<uint8_t>(i));
  for (int i = 0x60; i <= 0xaf; ++i) salt.push_back(static_cast<uint8_t>(i));
  for (int i = 0xb0; i <= 0xff; ++i) info.push_back(static_cast<uint8_t>(i));
  Digest prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(
      to_hex(digest_bytes(prk)),
      "06a6b88c5853361a06104c9ceb35b45cef760014904671014a193f40c15fc244");
  Bytes okm = hkdf_expand(prk, info, 82);
  EXPECT_EQ(to_hex(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa9"
            "7c59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3"
            "db71cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(HkdfTest, Rfc5869Case3EmptySaltAndInfo) {
  // Zero-length salt means a hash-length zero salt per the RFC.
  Digest prk = hkdf_extract(BytesView{}, Bytes(22, 0x0b));
  EXPECT_EQ(
      to_hex(digest_bytes(prk)),
      "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04");
  Bytes okm = hkdf_expand(prk, BytesView{}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d"
            "2d9d201395faa4b61a96c8");
}

TEST(HkdfTest, ExpandRefusesOverlongOutput) {
  Digest prk = hkdf_extract(BytesView{}, bytes_of("ikm"));
  EXPECT_NO_THROW(hkdf_expand(prk, BytesView{}, 255 * 32));
  EXPECT_THROW(hkdf_expand(prk, BytesView{}, 255 * 32 + 1),
               std::invalid_argument);
}

TEST(HkdfTest, DistinctInfoSeparatesKeys) {
  // The wire v3 info string binds (from, to, incarnation): any change in
  // the binding must change the derived key.
  Digest prk = hkdf_extract(bytes_of("b2b/wire-v3"), Bytes(32, 0x42));
  EXPECT_NE(hkdf_expand(prk, bytes_of("a->b/1"), 32),
            hkdf_expand(prk, bytes_of("b->a/1"), 32));
  EXPECT_NE(hkdf_expand(prk, bytes_of("a->b/1"), 32),
            hkdf_expand(prk, bytes_of("a->b/2"), 32));
}

// --- constant-time comparison (MAC verification path) ------------------------

TEST(ConstantTimeEqualTest, EqualBuffersCompareEqual) {
  Bytes tag = digest_bytes(HmacSha256::mac(bytes_of("k"), bytes_of("m")));
  EXPECT_TRUE(constant_time_equal(tag, tag));
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

TEST(ConstantTimeEqualTest, EveryOneByteDifferenceIsDetected) {
  // Regression: a single flipped bit anywhere in a 32-byte tag must fail
  // verification — no position-dependent acceptance.
  Bytes tag = digest_bytes(HmacSha256::mac(bytes_of("k"), bytes_of("m")));
  for (std::size_t i = 0; i < tag.size(); ++i) {
    for (std::uint8_t bit = 0; bit < 8; bit += 7) {  // low and high bit
      Bytes forged = tag;
      forged[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(constant_time_equal(tag, forged))
          << "byte " << i << " bit " << int(bit);
    }
  }
}

TEST(ConstantTimeEqualTest, LengthMismatchNeverMatches) {
  Bytes tag = digest_bytes(HmacSha256::mac(bytes_of("k"), bytes_of("m")));
  Bytes truncated(tag.begin(), tag.end() - 1);
  EXPECT_FALSE(constant_time_equal(tag, truncated));
  EXPECT_FALSE(constant_time_equal(truncated, tag));
}

}  // namespace
}  // namespace b2b::crypto
