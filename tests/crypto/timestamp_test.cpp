// Timestamp service tests: stamping, verification, tamper detection.
#include "crypto/timestamp.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tests/support/test_keys.hpp"

namespace b2b::crypto {
namespace {

TimestampService make_service(std::uint64_t* clock_value) {
  return TimestampService(test::shared_test_key(7),
                          [clock_value] { return *clock_value; });
}

TEST(TimestampTest, StampCarriesClockValue) {
  std::uint64_t now = 1234567;
  TimestampService tss = make_service(&now);
  Timestamp ts = tss.stamp(bytes_of("evidence"));
  EXPECT_EQ(ts.time_micros, 1234567u);
  EXPECT_EQ(ts.message_hash, Sha256::hash(bytes_of("evidence")));
}

TEST(TimestampTest, VerifyAcceptsGenuineStamp) {
  std::uint64_t now = 1;
  TimestampService tss = make_service(&now);
  Timestamp ts = tss.stamp(bytes_of("m"));
  EXPECT_TRUE(TimestampService::verify(ts, tss.public_key()));
}

TEST(TimestampTest, VerifyRejectsAlteredTime) {
  std::uint64_t now = 10;
  TimestampService tss = make_service(&now);
  Timestamp ts = tss.stamp(bytes_of("m"));
  ts.time_micros = 99;  // backdating / postdating attempt
  EXPECT_FALSE(TimestampService::verify(ts, tss.public_key()));
}

TEST(TimestampTest, VerifyRejectsAlteredHash) {
  std::uint64_t now = 10;
  TimestampService tss = make_service(&now);
  Timestamp ts = tss.stamp(bytes_of("m"));
  ts.message_hash = Sha256::hash(bytes_of("other"));
  EXPECT_FALSE(TimestampService::verify(ts, tss.public_key()));
}

TEST(TimestampTest, VerifyRejectsWrongService) {
  std::uint64_t now = 10;
  TimestampService tss = make_service(&now);
  Timestamp ts = tss.stamp(bytes_of("m"));
  const RsaPublicKey& other = test::shared_test_key(8).public_key();
  EXPECT_FALSE(TimestampService::verify(ts, other));
}

TEST(TimestampTest, AdvancingClockChangesStamp) {
  std::uint64_t now = 100;
  TimestampService tss = make_service(&now);
  Timestamp first = tss.stamp(bytes_of("m"));
  now = 200;
  Timestamp second = tss.stamp(bytes_of("m"));
  EXPECT_NE(first, second);
  EXPECT_TRUE(TimestampService::verify(first, tss.public_key()));
  EXPECT_TRUE(TimestampService::verify(second, tss.public_key()));
}

TEST(TimestampTest, EncodeDecodeRoundTrip) {
  std::uint64_t now = 42424242;
  TimestampService tss = make_service(&now);
  Timestamp ts = tss.stamp(bytes_of("round trip"));
  Timestamp decoded = Timestamp::decode(ts.encode());
  EXPECT_EQ(decoded, ts);
  EXPECT_TRUE(TimestampService::verify(decoded, tss.public_key()));
}

TEST(TimestampTest, DecodeRejectsTruncated) {
  EXPECT_THROW(Timestamp::decode(Bytes(10)), CodecError);
}

}  // namespace
}  // namespace b2b::crypto
