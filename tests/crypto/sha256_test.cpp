// SHA-256 against FIPS 180-4 / NIST test vectors plus streaming behaviour.
#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace b2b::crypto {
namespace {

std::string hash_hex(std::string_view input) {
  return to_hex(digest_bytes(Sha256::hash(bytes_of(input))));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, ExactlyOneBlock) {
  // 64 bytes: padding spills into a second block.
  std::string input(64, 'a');
  EXPECT_EQ(hash_hex(input),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(digest_bytes(h.finish())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  Bytes data = bytes_of("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.update(BytesView(data.data(), split));
    h.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), Sha256::hash(data)) << "split at " << split;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.update(bytes_of("garbage"));
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(to_hex(digest_bytes(h.finish())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DifferentInputsDiffer) {
  EXPECT_NE(Sha256::hash(bytes_of("a")), Sha256::hash(bytes_of("b")));
  EXPECT_NE(Sha256::hash(Bytes{}), Sha256::hash(Bytes{0x00}));
}

TEST(Sha256Test, DigestBytesRoundTrip) {
  Digest d = Sha256::hash(bytes_of("roundtrip"));
  EXPECT_EQ(digest_from_bytes(digest_bytes(d)), d);
}

TEST(Sha256Test, DigestFromBytesWrongSizeThrows) {
  EXPECT_THROW(digest_from_bytes(Bytes(31)), CodecError);
  EXPECT_THROW(digest_from_bytes(Bytes(33)), CodecError);
}

}  // namespace
}  // namespace b2b::crypto
