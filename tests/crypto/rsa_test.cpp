// RSA signatures: correctness, tamper-resistance, key serialization, and
// the prime-generation machinery.
#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "tests/support/test_keys.hpp"

namespace b2b::crypto {
namespace {

TEST(PrimeTest, KnownSmallPrimesAccepted) {
  ChaCha20Rng rng(std::uint64_t{1});
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 97ULL, 251ULL}) {
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  }
}

TEST(PrimeTest, KnownCompositesRejected) {
  ChaCha20Rng rng(std::uint64_t{2});
  for (std::uint64_t c : {1ULL, 4ULL, 9ULL, 15ULL, 91ULL, 561ULL, 8911ULL}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(PrimeTest, LargeKnownPrimeAccepted) {
  // 2^127 - 1 is a Mersenne prime.
  ChaCha20Rng rng(std::uint64_t{3});
  BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  // 2^128 - 1 is composite.
  EXPECT_FALSE(is_probable_prime((BigInt(1) << 128) - BigInt(1), rng));
}

TEST(PrimeTest, GeneratedPrimeHasExactBitLengthAndIsOdd) {
  ChaCha20Rng rng(std::uint64_t{4});
  BigInt p = generate_prime(256, rng);
  EXPECT_EQ(p.bit_length(), 256u);
  EXPECT_TRUE(p.is_odd());
  // Top two bits set by construction.
  EXPECT_TRUE(p.bit(255));
  EXPECT_TRUE(p.bit(254));
}

TEST(RsaTest, SignVerifyRoundTrip) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("state transition proposal");
  Bytes signature = key.sign(message);
  EXPECT_EQ(signature.size(), key.public_key().modulus_bytes());
  EXPECT_TRUE(key.public_key().verify(message, signature));
}

TEST(RsaTest, VerifyRejectsTamperedMessage) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes signature = key.sign(bytes_of("original"));
  EXPECT_FALSE(key.public_key().verify(bytes_of("tampered"), signature));
}

TEST(RsaTest, VerifyRejectsTamperedSignature) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("message");
  Bytes signature = key.sign(message);
  for (std::size_t i = 0; i < signature.size(); i += 13) {
    Bytes bad = signature;
    bad[i] ^= 0x01;
    EXPECT_FALSE(key.public_key().verify(message, bad)) << "flip at " << i;
  }
}

TEST(RsaTest, VerifyRejectsWrongKey) {
  const RsaPrivateKey& key_a = test::shared_test_key(0);
  const RsaPrivateKey& key_b = test::shared_test_key(1);
  Bytes message = bytes_of("message");
  EXPECT_FALSE(key_b.public_key().verify(message, key_a.sign(message)));
}

TEST(RsaTest, VerifyRejectsWrongLengthSignature) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("message");
  Bytes signature = key.sign(message);
  signature.pop_back();
  EXPECT_FALSE(key.public_key().verify(message, signature));
  EXPECT_FALSE(key.public_key().verify(message, Bytes{}));
}

TEST(RsaTest, SignatureIsDeterministic) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("same input");
  EXPECT_EQ(key.sign(message), key.sign(message));
}

TEST(RsaTest, SignDigestMatchesSignMessage) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("digest equivalence");
  EXPECT_EQ(key.sign(message), key.sign_digest(Sha256::hash(message)));
  EXPECT_TRUE(key.public_key().verify_digest(Sha256::hash(message),
                                             key.sign(message)));
}

TEST(RsaTest, PublicKeyEncodeDecodeRoundTrip) {
  const RsaPublicKey& pub = test::shared_test_key(0).public_key();
  RsaPublicKey decoded = RsaPublicKey::decode(pub.encode());
  EXPECT_EQ(decoded, pub);
  Bytes message = bytes_of("serialization");
  EXPECT_TRUE(decoded.verify(message, test::shared_test_key(0).sign(message)));
}

TEST(RsaTest, PublicKeyDecodeRejectsGarbage) {
  EXPECT_THROW(RsaPublicKey::decode(Bytes{1, 2, 3}), CodecError);
  Bytes encoded = test::shared_test_key(0).public_key().encode();
  encoded.push_back(0);  // trailing byte
  EXPECT_THROW(RsaPublicKey::decode(encoded), CodecError);
  encoded.pop_back();
  encoded.pop_back();  // truncation
  EXPECT_THROW(RsaPublicKey::decode(encoded), CodecError);
}

TEST(RsaTest, EncryptDecryptRoundTrip) {
  // The wire v3 hello transports a 32-byte ephemeral key half under the
  // peer's public key (EME-PKCS1-v1_5).
  const RsaPrivateKey& key = test::shared_test_key(0);
  ChaCha20Rng rng(std::uint64_t{7});
  Bytes half(32, 0x00);
  for (std::size_t i = 0; i < half.size(); ++i) {
    half[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  Bytes ciphertext = key.public_key().encrypt(half, rng);
  EXPECT_EQ(ciphertext.size(), key.public_key().modulus_bytes());
  auto plain = key.decrypt(ciphertext);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, half);
}

TEST(RsaTest, EncryptionIsRandomized) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  ChaCha20Rng rng(std::uint64_t{8});
  Bytes half(32, 0x42);
  EXPECT_NE(key.public_key().encrypt(half, rng),
            key.public_key().encrypt(half, rng));
}

TEST(RsaTest, DecryptRejectsTamperedCiphertext) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  ChaCha20Rng rng(std::uint64_t{9});
  Bytes ciphertext = key.public_key().encrypt(Bytes(32, 0x17), rng);
  for (std::size_t i = 0; i < ciphertext.size(); i += 11) {
    Bytes bad = ciphertext;
    bad[i] ^= 0x01;
    auto plain = key.decrypt(bad);
    if (plain.has_value()) {
      // Padding survived by chance: the recovered bytes must still differ.
      EXPECT_NE(*plain, Bytes(32, 0x17)) << "flip at " << i;
    }
  }
  EXPECT_FALSE(key.decrypt(Bytes{}).has_value());
  EXPECT_FALSE(key.decrypt(Bytes(7, 0xee)).has_value());
}

TEST(RsaTest, DecryptWithWrongKeyFails) {
  const RsaPrivateKey& key_a = test::shared_test_key(0);
  const RsaPrivateKey& key_b = test::shared_test_key(1);
  ChaCha20Rng rng(std::uint64_t{10});
  Bytes ciphertext = key_a.public_key().encrypt(Bytes(32, 0x2a), rng);
  auto plain = key_b.decrypt(ciphertext);
  if (plain.has_value()) {
    EXPECT_NE(*plain, Bytes(32, 0x2a));
  }
}

TEST(RsaTest, KeypairGenerationRejectsTinyKeys) {
  ChaCha20Rng rng(std::uint64_t{5});
  EXPECT_THROW(generate_rsa_keypair(256, rng), std::invalid_argument);
}

TEST(RsaTest, FreshKeypairHasRequestedModulusSize) {
  ChaCha20Rng rng(std::uint64_t{99});
  RsaPrivateKey key = generate_rsa_keypair(512, rng);
  EXPECT_EQ(key.public_key().n().bit_length(), 512u);
  EXPECT_EQ(key.public_key().e(), BigInt(65537));
  Bytes message = bytes_of("fresh key");
  EXPECT_TRUE(key.public_key().verify(message, key.sign(message)));
}

}  // namespace
}  // namespace b2b::crypto
