// RSA signatures: correctness, tamper-resistance, key serialization, and
// the prime-generation machinery.
#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "tests/support/test_keys.hpp"

namespace b2b::crypto {
namespace {

TEST(PrimeTest, KnownSmallPrimesAccepted) {
  ChaCha20Rng rng(std::uint64_t{1});
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 97ULL, 251ULL}) {
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  }
}

TEST(PrimeTest, KnownCompositesRejected) {
  ChaCha20Rng rng(std::uint64_t{2});
  for (std::uint64_t c : {1ULL, 4ULL, 9ULL, 15ULL, 91ULL, 561ULL, 8911ULL}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(PrimeTest, LargeKnownPrimeAccepted) {
  // 2^127 - 1 is a Mersenne prime.
  ChaCha20Rng rng(std::uint64_t{3});
  BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  // 2^128 - 1 is composite.
  EXPECT_FALSE(is_probable_prime((BigInt(1) << 128) - BigInt(1), rng));
}

TEST(PrimeTest, GeneratedPrimeHasExactBitLengthAndIsOdd) {
  ChaCha20Rng rng(std::uint64_t{4});
  BigInt p = generate_prime(256, rng);
  EXPECT_EQ(p.bit_length(), 256u);
  EXPECT_TRUE(p.is_odd());
  // Top two bits set by construction.
  EXPECT_TRUE(p.bit(255));
  EXPECT_TRUE(p.bit(254));
}

TEST(RsaTest, SignVerifyRoundTrip) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("state transition proposal");
  Bytes signature = key.sign(message);
  EXPECT_EQ(signature.size(), key.public_key().modulus_bytes());
  EXPECT_TRUE(key.public_key().verify(message, signature));
}

TEST(RsaTest, VerifyRejectsTamperedMessage) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes signature = key.sign(bytes_of("original"));
  EXPECT_FALSE(key.public_key().verify(bytes_of("tampered"), signature));
}

TEST(RsaTest, VerifyRejectsTamperedSignature) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("message");
  Bytes signature = key.sign(message);
  for (std::size_t i = 0; i < signature.size(); i += 13) {
    Bytes bad = signature;
    bad[i] ^= 0x01;
    EXPECT_FALSE(key.public_key().verify(message, bad)) << "flip at " << i;
  }
}

TEST(RsaTest, VerifyRejectsWrongKey) {
  const RsaPrivateKey& key_a = test::shared_test_key(0);
  const RsaPrivateKey& key_b = test::shared_test_key(1);
  Bytes message = bytes_of("message");
  EXPECT_FALSE(key_b.public_key().verify(message, key_a.sign(message)));
}

TEST(RsaTest, VerifyRejectsWrongLengthSignature) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("message");
  Bytes signature = key.sign(message);
  signature.pop_back();
  EXPECT_FALSE(key.public_key().verify(message, signature));
  EXPECT_FALSE(key.public_key().verify(message, Bytes{}));
}

TEST(RsaTest, SignatureIsDeterministic) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("same input");
  EXPECT_EQ(key.sign(message), key.sign(message));
}

TEST(RsaTest, SignDigestMatchesSignMessage) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("digest equivalence");
  EXPECT_EQ(key.sign(message), key.sign_digest(Sha256::hash(message)));
  EXPECT_TRUE(key.public_key().verify_digest(Sha256::hash(message),
                                             key.sign(message)));
}

TEST(RsaTest, PublicKeyEncodeDecodeRoundTrip) {
  const RsaPublicKey& pub = test::shared_test_key(0).public_key();
  RsaPublicKey decoded = RsaPublicKey::decode(pub.encode());
  EXPECT_EQ(decoded, pub);
  Bytes message = bytes_of("serialization");
  EXPECT_TRUE(decoded.verify(message, test::shared_test_key(0).sign(message)));
}

TEST(RsaTest, PublicKeyDecodeRejectsGarbage) {
  EXPECT_THROW(RsaPublicKey::decode(Bytes{1, 2, 3}), CodecError);
  Bytes encoded = test::shared_test_key(0).public_key().encode();
  encoded.push_back(0);  // trailing byte
  EXPECT_THROW(RsaPublicKey::decode(encoded), CodecError);
  encoded.pop_back();
  encoded.pop_back();  // truncation
  EXPECT_THROW(RsaPublicKey::decode(encoded), CodecError);
}

TEST(RsaTest, EncryptDecryptRoundTrip) {
  // The wire v3 hello transports a 32-byte ephemeral key half under the
  // peer's public key (EME-PKCS1-v1_5).
  const RsaPrivateKey& key = test::shared_test_key(0);
  ChaCha20Rng rng(std::uint64_t{7});
  Bytes half(32, 0x00);
  for (std::size_t i = 0; i < half.size(); ++i) {
    half[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  Bytes ciphertext = key.public_key().encrypt(half, rng);
  EXPECT_EQ(ciphertext.size(), key.public_key().modulus_bytes());
  auto plain = key.decrypt(ciphertext);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, half);
}

TEST(RsaTest, EncryptionIsRandomized) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  ChaCha20Rng rng(std::uint64_t{8});
  Bytes half(32, 0x42);
  EXPECT_NE(key.public_key().encrypt(half, rng),
            key.public_key().encrypt(half, rng));
}

TEST(RsaTest, DecryptRejectsTamperedCiphertext) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  ChaCha20Rng rng(std::uint64_t{9});
  Bytes ciphertext = key.public_key().encrypt(Bytes(32, 0x17), rng);
  for (std::size_t i = 0; i < ciphertext.size(); i += 11) {
    Bytes bad = ciphertext;
    bad[i] ^= 0x01;
    auto plain = key.decrypt(bad);
    if (plain.has_value()) {
      // Padding survived by chance: the recovered bytes must still differ.
      EXPECT_NE(*plain, Bytes(32, 0x17)) << "flip at " << i;
    }
  }
  EXPECT_FALSE(key.decrypt(Bytes{}).has_value());
  EXPECT_FALSE(key.decrypt(Bytes(7, 0xee)).has_value());
}

TEST(RsaTest, DecryptWithWrongKeyFails) {
  const RsaPrivateKey& key_a = test::shared_test_key(0);
  const RsaPrivateKey& key_b = test::shared_test_key(1);
  ChaCha20Rng rng(std::uint64_t{10});
  Bytes ciphertext = key_a.public_key().encrypt(Bytes(32, 0x2a), rng);
  auto plain = key_b.decrypt(ciphertext);
  if (plain.has_value()) {
    EXPECT_NE(*plain, Bytes(32, 0x2a));
  }
}

// --- SignatureCache: the verified-signature cache behind the batch /
// --- pipelining work (DESIGN.md §13).

TEST(SignatureCacheTest, HitAfterVerifyMissBefore) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("cached message");
  Bytes signature = key.sign(message);
  Digest digest = Sha256::hash(message);

  SignatureCache cache(16);
  EXPECT_FALSE(cache.contains(key.public_key(), digest, signature));
  EXPECT_TRUE(cache.verify(key.public_key(), message, signature));
  EXPECT_TRUE(cache.contains(key.public_key(), digest, signature));
  // The second verify is answered from the cache.
  auto stats = cache.stats();
  EXPECT_TRUE(cache.verify(key.public_key(), message, signature));
  EXPECT_EQ(cache.stats().hits, stats.hits + 1);
}

TEST(SignatureCacheTest, NegativeResultsAreNeverCached) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  Bytes message = bytes_of("forged");
  Bytes bad = key.sign(message);
  bad[0] ^= 0x01;
  SignatureCache cache(16);
  EXPECT_FALSE(cache.verify(key.public_key(), message, bad));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(key.public_key(), Sha256::hash(message), bad));
}

TEST(SignatureCacheTest, EvictionStaysWithinCapacity) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  SignatureCache cache(4);
  std::vector<Bytes> messages;
  std::vector<Bytes> signatures;
  for (int i = 0; i < 10; ++i) {
    messages.push_back(bytes_of("evict-" + std::to_string(i)));
    signatures.push_back(key.sign(messages.back()));
    ASSERT_TRUE(cache.verify(key.public_key(), messages.back(),
                             signatures.back()));
    EXPECT_LE(cache.size(), 4u);
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 10u);
  EXPECT_EQ(stats.evictions, 6u);
  // FIFO: the oldest entries are gone, the newest are resident.
  EXPECT_FALSE(cache.contains(key.public_key(), Sha256::hash(messages[0]),
                              signatures[0]));
  EXPECT_TRUE(cache.contains(key.public_key(), Sha256::hash(messages[9]),
                             signatures[9]));
  // An evicted signature still verifies (and is re-admitted).
  EXPECT_TRUE(cache.verify(key.public_key(), messages[0], signatures[0]));
}

TEST(SignatureCacheTest, CannotBePoisonedByPrefixCollision) {
  // The cache key covers the FULL (public key, digest, signature) triple.
  // A frame that matches a cached entry on a prefix of that tuple — same
  // digest under a different key, same key+digest with different
  // signature bytes, or a truncated signature — must MISS, not hit.
  const RsaPrivateKey& key_a = test::shared_test_key(0);
  const RsaPrivateKey& key_b = test::shared_test_key(1);
  Bytes message = bytes_of("poison target");
  Digest digest = Sha256::hash(message);
  Bytes signature = key_a.sign(message);

  SignatureCache cache(16);
  ASSERT_TRUE(cache.verify(key_a.public_key(), message, signature));

  // Same digest, different signer: the attacker has no signature from
  // key_b but hopes the cached key_a entry answers for it.
  EXPECT_FALSE(cache.contains(key_b.public_key(), digest, signature));
  EXPECT_FALSE(cache.verify(key_b.public_key(), message, signature));

  // Same signer+digest, mutated signature bytes.
  Bytes mutated = signature;
  mutated.back() ^= 0x80;
  EXPECT_FALSE(cache.contains(key_a.public_key(), digest, mutated));
  EXPECT_FALSE(cache.verify(key_a.public_key(), message, mutated));

  // Truncated signature sharing the cached entry's byte prefix.
  Bytes truncated(signature.begin(), signature.end() - 1);
  EXPECT_FALSE(cache.contains(key_a.public_key(), digest, truncated));
  EXPECT_FALSE(cache.verify(key_a.public_key(), message, truncated));

  // And the original triple still hits.
  EXPECT_TRUE(cache.contains(key_a.public_key(), digest, signature));
}

// --- batch_verify: many signatures at once, agreeing with one-by-one
// --- verification and localising corrupted members.

TEST(BatchVerifyTest, AgreesWithOneByOneOnAThousandMessages) {
  const RsaPrivateKey& key_a = test::shared_test_key(0);
  const RsaPrivateKey& key_b = test::shared_test_key(1);
  ChaCha20Rng data_rng(std::uint64_t{41});
  ChaCha20Rng batch_rng(std::uint64_t{42});

  std::vector<BatchVerifyItem> items;
  std::vector<bool> expected;
  items.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    const RsaPrivateKey& key = (i % 3 == 0) ? key_b : key_a;
    Bytes message = data_rng.bytes(16 + (i % 48));
    BatchVerifyItem item;
    item.key = &key.public_key();
    item.digest = Sha256::hash(message);
    item.signature = key.sign_digest(item.digest);
    bool good = true;
    if (i % 97 == 13) {  // corrupt a scattering of members
      item.signature[i % item.signature.size()] ^= 0x01;
      good = false;
    }
    items.push_back(std::move(item));
    expected.push_back(good);
  }

  BatchVerifyResult result = batch_verify(items, batch_rng);
  ASSERT_EQ(result.ok.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(result.ok[i],
              items[i].key->verify_digest(items[i].digest,
                                          items[i].signature))
        << "index " << i;
    EXPECT_EQ(result.ok[i], expected[i]) << "index " << i;
  }
  EXPECT_FALSE(result.all_ok);
  // The batch localises exactly the corrupted indices.
  std::vector<std::size_t> expected_bad;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (!expected[i]) expected_bad.push_back(i);
  }
  EXPECT_EQ(result.bad, expected_bad);
}

TEST(BatchVerifyTest, AllGoodBatchScreensWholeGroups) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  ChaCha20Rng batch_rng(std::uint64_t{43});
  std::vector<BatchVerifyItem> items;
  for (int i = 0; i < 8; ++i) {
    Bytes message = bytes_of("screen-" + std::to_string(i));
    BatchVerifyItem item;
    item.key = &key.public_key();
    item.digest = Sha256::hash(message);
    item.signature = key.sign_digest(item.digest);
    items.push_back(std::move(item));
  }
  BatchVerifyResult result = batch_verify(items, batch_rng);
  EXPECT_TRUE(result.all_ok);
  EXPECT_TRUE(result.bad.empty());
  EXPECT_EQ(result.screened_groups, 1u);
}

TEST(BatchVerifyTest, WrongKeyRegression) {
  // A signature made under key A presented as key B's must fail in the
  // batch exactly as it does one-by-one, and must not poison its group.
  const RsaPrivateKey& key_a = test::shared_test_key(0);
  const RsaPrivateKey& key_b = test::shared_test_key(1);
  ChaCha20Rng batch_rng(std::uint64_t{44});
  std::vector<BatchVerifyItem> items;
  for (int i = 0; i < 4; ++i) {
    Bytes message = bytes_of("wrong-key-" + std::to_string(i));
    BatchVerifyItem item;
    item.key = &key_b.public_key();
    item.digest = Sha256::hash(message);
    // Item 2 carries key A's signature, claimed to be from key B.
    item.signature = (i == 2) ? key_a.sign_digest(item.digest)
                              : key_b.sign_digest(item.digest);
    items.push_back(std::move(item));
  }
  BatchVerifyResult result = batch_verify(items, batch_rng);
  EXPECT_FALSE(result.all_ok);
  ASSERT_EQ(result.bad.size(), 1u);
  EXPECT_EQ(result.bad[0], 2u);
  EXPECT_TRUE(result.ok[0]);
  EXPECT_TRUE(result.ok[1]);
  EXPECT_TRUE(result.ok[3]);
}

TEST(BatchVerifyTest, PopulatesAndConsultsCache) {
  const RsaPrivateKey& key = test::shared_test_key(0);
  ChaCha20Rng batch_rng(std::uint64_t{45});
  SignatureCache cache(64);
  std::vector<BatchVerifyItem> items;
  for (int i = 0; i < 6; ++i) {
    Bytes message = bytes_of("cache-batch-" + std::to_string(i));
    BatchVerifyItem item;
    item.key = &key.public_key();
    item.digest = Sha256::hash(message);
    item.signature = key.sign_digest(item.digest);
    items.push_back(std::move(item));
  }
  BatchVerifyResult first = batch_verify(items, batch_rng, &cache);
  EXPECT_TRUE(first.all_ok);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(cache.size(), 6u);
  // A retransmission of the same batch never re-enters RSA.
  BatchVerifyResult second = batch_verify(items, batch_rng, &cache);
  EXPECT_TRUE(second.all_ok);
  EXPECT_EQ(second.cache_hits, 6u);
  EXPECT_EQ(second.screened_groups, 0u);
}

TEST(RsaTest, KeypairGenerationRejectsTinyKeys) {
  ChaCha20Rng rng(std::uint64_t{5});
  EXPECT_THROW(generate_rsa_keypair(256, rng), std::invalid_argument);
}

TEST(RsaTest, FreshKeypairHasRequestedModulusSize) {
  ChaCha20Rng rng(std::uint64_t{99});
  RsaPrivateKey key = generate_rsa_keypair(512, rng);
  EXPECT_EQ(key.public_key().n().bit_length(), 512u);
  EXPECT_EQ(key.public_key().e(), BigInt(65537));
  Bytes message = bytes_of("fresh key");
  EXPECT_TRUE(key.public_key().verify(message, key.sign(message)));
}

}  // namespace
}  // namespace b2b::crypto
