// ChaCha20 RNG: RFC 8439 keystream vector, determinism, and distribution
// sanity checks.
#include "crypto/chacha20.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "common/bytes.hpp"

namespace b2b::crypto {
namespace {

TEST(ChaCha20Test, Rfc8439KeystreamFirstBlockZeroKey) {
  // With an all-zero 256-bit key, zero nonce and zero counter, the first
  // keystream block is a published test vector (draft-agl-tls-chacha20poly1305,
  // test vector TC1 / RFC 7539 appendix).
  ChaCha20Rng rng(Bytes(32, 0));
  Bytes block = rng.bytes(64);
  EXPECT_EQ(to_hex(block),
            "76b8e0ada0f13d90405d6ae55386bd28"
            "bdd219b8a08ded1aa836efcc8b770dc7"
            "da41597c5157488d7724e03fb8d84a37"
            "6a43b8f41518a11cc387b669b2ee6586");
}

TEST(ChaCha20Test, SameSeedSameStream) {
  ChaCha20Rng a(std::uint64_t{42});
  ChaCha20Rng b(std::uint64_t{42});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(ChaCha20Test, DifferentSeedsDiffer) {
  ChaCha20Rng a(std::uint64_t{1});
  ChaCha20Rng b(std::uint64_t{2});
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(ChaCha20Test, LongSeedIsHashedNotTruncated) {
  Bytes long_seed(64, 0xab);
  Bytes truncated(long_seed.begin(), long_seed.begin() + 32);
  ChaCha20Rng a{BytesView(long_seed)};
  ChaCha20Rng b{BytesView(truncated)};
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(ChaCha20Test, FillCrossesBlockBoundaries) {
  ChaCha20Rng a(std::uint64_t{7});
  ChaCha20Rng b(std::uint64_t{7});
  Bytes whole = a.bytes(200);
  Bytes pieces;
  for (std::size_t chunk : {1u, 63u, 64u, 65u, 7u}) {
    Bytes part = b.bytes(chunk);
    pieces.insert(pieces.end(), part.begin(), part.end());
  }
  ASSERT_EQ(pieces.size(), 200u);
  EXPECT_EQ(pieces, whole);
}

TEST(ChaCha20Test, NextBelowZeroBoundThrows) {
  ChaCha20Rng rng(std::uint64_t{1});
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(ChaCha20Test, NextBelowStaysInRangeAndCoversValues) {
  ChaCha20Rng rng(std::uint64_t{5});
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 3000; ++i) {
    std::uint64_t v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  EXPECT_EQ(counts.size(), 10u);  // all values hit
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 150) << "value " << value << " suspiciously rare";
  }
}

TEST(ChaCha20Test, NextDoubleInUnitInterval) {
  ChaCha20Rng rng(std::uint64_t{9});
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(ChaCha20Test, UniformRandomBitGeneratorInterface) {
  static_assert(std::uniform_random_bit_generator<ChaCha20Rng>);
  ChaCha20Rng rng(std::uint64_t{3});
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace b2b::crypto
