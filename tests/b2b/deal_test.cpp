// Deal subsystem (DESIGN.md §12, experiment E23): atomic cross-object
// coordination between mutually distrusting federations.
//
// Covered here:
//   * the commit/abort protocol over all four runtimes — every leg
//     installs or none does, with signed non-repudiable deal artifacts
//     an arbiter can rule on from any one participant's store;
//   * edge cases on the deterministic simulator (empty/duplicate specs,
//     staging against a busy object, a silent participant + deadline);
//   * the crash-point campaign over the deal-specific points in
//     tests/support/crash_points.hpp, sim-swept and spot-checked on the
//     threaded runtime, with a determinism check on the full
//     post-recovery deployment fingerprint;
//   * the §7 TTP escape hatches under crashes: a withheld decision ends
//     in a certified deal abort consistent with the participants'
//     per-run escapes, and a mid-replicate crash still commits
//     everywhere;
//   * a multi-seed soak of concurrent deals (commit, veto and crash
//     rounds) on the simulator and once over real TCP sockets;
//   * a golden-digest determinism test pinning the multi-deal
//     interleaving bit-for-bit under both coordinator lock modes.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <initializer_list>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "b2b/arbiter.hpp"
#include "b2b/federation.hpp"
#include "common/error.hpp"
#include "crypto/sha256.hpp"
#include "tests/support/crash_points.hpp"
#include "tests/support/runtime_param.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

namespace fs = std::filesystem;

const ObjectId kLedger{"ledger"};
const ObjectId kOrders{"orders"};
const ObjectId kAudit{"audit"};

DealCoordinator::LegSpec state_leg(const ObjectId& object,
                                   const std::string& value) {
  DealCoordinator::LegSpec leg;
  leg.object = object;
  leg.payload = bytes_of(value);
  leg.new_state = bytes_of(value);
  leg.is_update = false;
  return leg;
}

DealCoordinator::LegSpec update_leg(const ObjectId& object,
                                    const std::string& suffix,
                                    const std::string& new_value) {
  DealCoordinator::LegSpec leg;
  leg.object = object;
  leg.payload = bytes_of(suffix);
  leg.new_state = bytes_of(new_value);
  leg.is_update = true;
  return leg;
}

std::map<PartyId, crypto::RsaPublicKey> key_map(
    Federation& fed, std::initializer_list<std::string> names) {
  std::map<PartyId, crypto::RsaPublicKey> keys;
  for (const std::string& name : names) {
    keys.emplace(PartyId{name}, fed.keypair(name).public_key());
  }
  return keys;
}

std::string fresh_journal_root(const std::string& tag) {
  fs::path root = fs::temp_directory_path() / ("b2b_deal_" + tag);
  fs::remove_all(root);
  return root.string();
}

Federation::Options journaled_options(const std::string& tag,
                                      RuntimeKind kind, std::uint64_t seed) {
  Federation::Options options = test::runtime_options(kind, seed);
  options.journal_root = fresh_journal_root(tag);
  if (kind != RuntimeKind::kSim) {
    options.run_probe_interval_micros = 200'000;
  }
  return options;
}

// ---------------------------------------------------------------------------
// The protocol suite: three organisations, three objects with different
// member sets (gamma stays outside "orders" — deals span groups that do
// not even share a membership).
// ---------------------------------------------------------------------------

struct DealParties {
  // Registers are declared before (destroyed after) the federation, so
  // the runtime's delivery threads stop before the objects they write
  // into die. Index: [party][object] with objects ledger, orders, audit.
  TestRegister regs[3][3];
  Federation fed;

  static constexpr const char* kNames[3] = {"alpha", "beta", "gamma"};

  // Journaled throughout: the deal layer assumes the paper's stable
  // storage, under which a response straggling in after an abort closed
  // its leg is answered idempotently instead of branded a §4.4 replay.
  DealParties(const std::string& tag, RuntimeKind kind, std::uint64_t seed)
      : DealParties(journaled_options(tag + "_" + test::runtime_suffix(kind),
                                      kind, seed)) {}

  explicit DealParties(const Federation::Options& options)
      : fed({"alpha", "beta", "gamma"}, options) {
    for (std::size_t p = 0; p < 3; ++p) {
      fed.register_object(kNames[p], kLedger, regs[p][0]);
      fed.register_object(kNames[p], kOrders, regs[p][1]);
      fed.register_object(kNames[p], kAudit, regs[p][2]);
    }
    fed.bootstrap_object(kLedger, {"alpha", "beta", "gamma"}, bytes_of("L0"));
    fed.bootstrap_object(kOrders, {"alpha", "beta"}, bytes_of("O0"));
    fed.bootstrap_object(kAudit, {"alpha", "beta", "gamma"}, bytes_of("A0"));
  }

  std::size_t index_of(const std::string& name) const {
    for (std::size_t p = 0; p < 3; ++p) {
      if (name == kNames[p]) return p;
    }
    return 0;
  }

  TestRegister& reg(const std::string& name, std::size_t obj_index) {
    return regs[index_of(name)][obj_index];
  }

  void check_chains() {
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = fed.coordinator(name);
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
    }
  }
};

class Deals : public test::RuntimeParamTest {};

TEST_P(Deals, MultiLegCommitInstallsAllLegs) {
  DealParties p("pv_commit", GetParam(), 21);

  DealCoordinator::DealSpec spec;
  spec.legs.push_back(state_leg(kLedger, "L1"));
  spec.legs.push_back(state_leg(kOrders, "O1"));
  spec.legs.push_back(update_leg(kAudit, "+u", "A0+u"));
  RunHandle h = p.fed.start_deal("alpha", spec);
  ASSERT_TRUE(p.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
  p.fed.settle();

  // Every leg installed at every member of its (differing) group.
  for (const std::string name : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(p.reg(name, 0).value, bytes_of("L1")) << name;
    EXPECT_EQ(p.reg(name, 2).value, bytes_of("A0+u")) << name;
  }
  for (const std::string name : {"alpha", "beta"}) {
    EXPECT_EQ(p.reg(name, 1).value, bytes_of("O1")) << name;
  }
  for (const ObjectId& object : {kLedger, kAudit}) {
    const StateTuple& agreed =
        p.fed.coordinator("alpha").replica(object).agreed_tuple();
    EXPECT_EQ(p.fed.coordinator("beta").replica(object).agreed_tuple(),
              agreed);
    EXPECT_EQ(p.fed.coordinator("gamma").replica(object).agreed_tuple(),
              agreed);
  }
  p.check_chains();

  const DealCoordinator::Stats stats =
      p.fed.coordinator("alpha").deals().stats();
  EXPECT_EQ(stats.started, 1u);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.aborted, 0u);

  // The signed decision is on record and names every leg.
  std::optional<DealDecisionMsg> decision =
      p.fed.coordinator("alpha").deals().decision_of(h->run_label);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->decision.verdict, DealDecision::Verdict::kCommit);
  EXPECT_EQ(decision->decision.legs.size(), 3u);

  // An arbiter can rule each leg COMMITTED from one participant's store
  // alone, with no provable defector.
  Arbiter arbiter{p.fed.make_verifier()};
  const auto keys = key_map(p.fed, {"alpha", "beta", "gamma"});
  for (const DealLeg& leg : decision->decision.legs) {
    Arbiter::DealArbitrationReport report = arbiter.arbitrate_deal(
        p.fed.coordinator("beta").messages(), leg.proposed.label(), keys);
    EXPECT_TRUE(report.enlist_found) << report.ruling;
    EXPECT_TRUE(report.decision_found) << report.ruling;
    EXPECT_TRUE(report.committed) << report.ruling;
    EXPECT_FALSE(report.equivocation);
    EXPECT_TRUE(report.blamed.empty()) << report.ruling;
    EXPECT_NE(report.ruling.find("COMMITTED"), std::string::npos)
        << report.ruling;
  }
}

TEST_P(Deals, VetoOnOneLegAbortsAll) {
  DealParties p("pv_veto", GetParam(), 22);
  p.reg("gamma", 2).policy = [](BytesView, const ValidationContext&) {
    return Decision::rejected("audit says no");
  };

  DealCoordinator::DealSpec spec;
  spec.legs.push_back(state_leg(kLedger, "L1"));
  spec.legs.push_back(state_leg(kOrders, "O1"));
  spec.legs.push_back(state_leg(kAudit, "A1"));
  RunHandle h = p.fed.start_deal("alpha", spec);
  ASSERT_TRUE(p.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed) << h->diagnostic;
  ASSERT_EQ(h->vetoers.size(), 1u);
  EXPECT_EQ(h->vetoers[0], PartyId{"gamma"});
  p.fed.settle();

  // All-or-nothing: the two clean legs rolled back with the vetoed one.
  for (const std::string name : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(p.reg(name, 0).value, bytes_of("L0")) << name;
    EXPECT_EQ(p.reg(name, 2).value, bytes_of("A0")) << name;
  }
  for (const std::string name : {"alpha", "beta"}) {
    EXPECT_EQ(p.reg(name, 1).value, bytes_of("O0")) << name;
  }
  // The parked clean leg at a participant was released with a veto event.
  EXPECT_GE(p.reg("gamma", 0).count(CoordEvent::Kind::kStateVetoed), 1u);
  p.check_chains();

  const DealCoordinator::Stats stats =
      p.fed.coordinator("alpha").deals().stats();
  EXPECT_EQ(stats.aborted, 1u);
  EXPECT_EQ(stats.committed, 0u);

  // Arbitration of the vetoed leg from the vetoer's own store: a signed
  // ABORTED ruling, nobody to blame.
  std::optional<DealDecisionMsg> decision =
      p.fed.coordinator("alpha").deals().decision_of(h->run_label);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->decision.verdict, DealDecision::Verdict::kAbort);
  const DealLeg* audit_leg = nullptr;
  for (const DealLeg& leg : decision->decision.legs) {
    if (leg.object == kAudit) audit_leg = &leg;
  }
  ASSERT_NE(audit_leg, nullptr);
  Arbiter arbiter{p.fed.make_verifier()};
  Arbiter::DealArbitrationReport report = arbiter.arbitrate_deal(
      p.fed.coordinator("gamma").messages(), audit_leg->proposed.label(),
      key_map(p.fed, {"alpha", "beta", "gamma"}));
  EXPECT_TRUE(report.enlist_found) << report.ruling;
  EXPECT_TRUE(report.decision_found) << report.ruling;
  EXPECT_FALSE(report.committed);
  EXPECT_TRUE(report.blamed.empty()) << report.ruling;
  EXPECT_NE(report.ruling.find("ABORTED"), std::string::npos)
      << report.ruling;
}

TEST_P(Deals, TtpEscapeRoutesCommitThroughAtomicRegistration) {
  DealParties p("pv_ttp", GetParam(), 27);
  p.fed.enable_deal_escape();

  DealCoordinator::DealSpec spec;
  spec.legs.push_back(state_leg(kLedger, "L1"));
  spec.legs.push_back(state_leg(kAudit, "A1"));
  RunHandle h = p.fed.start_deal("alpha", spec);
  ASSERT_TRUE(p.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
  p.fed.settle();

  for (const std::string name : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(p.reg(name, 0).value, bytes_of("L1")) << name;
    EXPECT_EQ(p.reg(name, 2).value, bytes_of("A1")) << name;
  }
  p.check_chains();

  const DealCoordinator::Stats stats =
      p.fed.coordinator("alpha").deals().stats();
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.ttp_registrations, 1u);
  EXPECT_EQ(stats.ttp_verdicts, 1u);
  EXPECT_EQ(p.fed.termination_ttp().deal_commits_issued(), 1u);
  EXPECT_EQ(p.fed.termination_ttp().deal_aborts_issued(), 0u);
}

TEST_P(Deals, ConflictingSignedDecisionIsProvableEquivocation) {
  DealParties p("pv_equiv", GetParam(), 29);

  DealCoordinator::DealSpec spec;
  spec.legs.push_back(state_leg(kLedger, "L1"));
  spec.legs.push_back(state_leg(kAudit, "A1"));
  RunHandle h = p.fed.start_deal("alpha", spec);
  ASSERT_TRUE(p.fed.run_until_done(h));
  ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
  p.fed.settle();

  // The test plays a dishonest initiator: re-sign the committed decision
  // with the verdict flipped and slip it to one participant. The two
  // validly signed, conflicting verdicts are non-repudiable proof of
  // equivocation — the participant records the violation.
  std::optional<DealDecisionMsg> committed =
      p.fed.coordinator("alpha").deals().decision_of(h->run_label);
  ASSERT_TRUE(committed.has_value());
  DealDecision forged = committed->decision;
  forged.verdict = DealDecision::Verdict::kAbort;
  forged.diagnostic = "forged abort";
  DealDecisionMsg evil;
  evil.decision = forged;
  evil.signature = p.fed.keypair("alpha").sign(forged.signed_bytes());
  Envelope env;
  env.type = MsgType::kDealDecision;
  env.object = kLedger;
  env.body = evil.encode();
  p.fed.transport("alpha").send(PartyId{"beta"}, env.encode());

  EXPECT_TRUE(p.fed.executor().run_until(
      [&] { return p.fed.coordinator("beta").violations_detected() >= 1; }));
  p.fed.settle();
  EXPECT_EQ(p.fed.coordinator("beta").violations_detected(), 1u);
  EXPECT_TRUE(p.fed.coordinator("beta").evidence().verify_chain());
  // The forged abort changed nothing: the installed state stands.
  EXPECT_EQ(p.reg("beta", 0).value, bytes_of("L1"));
}

B2B_INSTANTIATE_RUNTIME_SUITE(Deals);

// ---------------------------------------------------------------------------
// Edge cases on the deterministic simulator.
// ---------------------------------------------------------------------------

TEST(DealEdge, RejectsEmptyAndDuplicateLegSpecs) {
  DealParties p(test::runtime_options(RuntimeKind::kSim, 23));

  RunHandle empty = p.fed.start_deal("alpha", DealCoordinator::DealSpec{});
  ASSERT_TRUE(empty->done());
  EXPECT_EQ(empty->outcome, RunResult::Outcome::kAborted);
  EXPECT_NE(empty->diagnostic.find("no legs"), std::string::npos);

  DealCoordinator::DealSpec dup;
  dup.legs.push_back(state_leg(kLedger, "L1"));
  dup.legs.push_back(state_leg(kLedger, "L2"));
  RunHandle dup_handle = p.fed.start_deal("alpha", dup);
  ASSERT_TRUE(dup_handle->done());
  EXPECT_EQ(dup_handle->outcome, RunResult::Outcome::kAborted);
  EXPECT_NE(dup_handle->diagnostic.find("duplicate leg object"),
            std::string::npos);
}

TEST(DealEdge, OverlappingDealOnBusyObjectUnwindsStagedLegs) {
  DealParties p(test::runtime_options(RuntimeKind::kSim, 23));

  // Deal 1 stages ledger + orders synchronously; nothing is delivered
  // until the simulator runs, so both objects are busy when deal 2 tries
  // to stage audit (fresh) then ledger (busy).
  DealCoordinator::DealSpec spec1;
  spec1.legs.push_back(state_leg(kLedger, "L1"));
  spec1.legs.push_back(state_leg(kOrders, "O1"));
  RunHandle h1 = p.fed.start_deal("alpha", spec1);

  DealCoordinator::DealSpec spec2;
  spec2.legs.push_back(state_leg(kAudit, "A1"));
  spec2.legs.push_back(state_leg(kLedger, "Lx"));
  RunHandle h2 = p.fed.start_deal("alpha", spec2);
  ASSERT_TRUE(h2->done());
  EXPECT_EQ(h2->outcome, RunResult::Outcome::kAborted);
  EXPECT_NE(h2->diagnostic.find("staging failed"), std::string::npos);
  EXPECT_NE(h2->diagnostic.find("busy"), std::string::npos);
  // The already-staged audit leg was unwound: its register rolled back.
  EXPECT_EQ(p.reg("alpha", 2).value, bytes_of("A0"));

  // Deal 1 is untouched by the failed overlap...
  ASSERT_TRUE(p.fed.run_until_done(h1));
  EXPECT_EQ(h1->outcome, RunResult::Outcome::kAgreed) << h1->diagnostic;
  p.fed.settle();

  // ...and audit was left cleanly coordinatable.
  DealCoordinator::DealSpec spec3;
  spec3.legs.push_back(state_leg(kAudit, "A2"));
  RunHandle h3 = p.fed.start_deal("alpha", spec3);
  ASSERT_TRUE(p.fed.run_until_done(h3));
  EXPECT_EQ(h3->outcome, RunResult::Outcome::kAgreed) << h3->diagnostic;
  p.fed.settle();
  for (const std::string name : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(p.reg(name, 0).value, bytes_of("L1")) << name;
    EXPECT_EQ(p.reg(name, 2).value, bytes_of("A2")) << name;
  }
  p.check_chains();
}

TEST(DealEdge, DeadlineAbortsWhenParticipantSilent) {
  DealParties p(test::runtime_options(RuntimeKind::kSim, 25));

  // gamma goes dark before the deal opens; its legs can never prepare.
  p.fed.crash_party("gamma");

  DealCoordinator::DealSpec spec;
  spec.legs.push_back(state_leg(kLedger, "L1"));
  spec.legs.push_back(state_leg(kAudit, "A1"));
  spec.deadline_micros = 500'000;
  RunHandle h = p.fed.start_deal("alpha", spec);
  p.fed.scheduler().run_until(p.fed.scheduler().now() + 3'000'000);
  ASSERT_TRUE(h->done()) << "deal did not abort on deadline";
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAborted);
  EXPECT_NE(h->diagnostic.find("deadline expired"), std::string::npos)
      << h->diagnostic;

  // The live parties rolled back (no settle: gamma is dead and its
  // retransmit chains are deliberately left undrained).
  for (const std::string name : {"alpha", "beta"}) {
    EXPECT_EQ(p.reg(name, 0).value, bytes_of("L0")) << name;
    EXPECT_EQ(p.reg(name, 2).value, bytes_of("A0")) << name;
    EXPECT_EQ(p.fed.coordinator(name).violations_detected(), 0u) << name;
    EXPECT_TRUE(p.fed.coordinator(name).evidence().verify_chain()) << name;
  }
}

// ---------------------------------------------------------------------------
// The crash-point campaign over the deal points.
// ---------------------------------------------------------------------------

/// Three organisations sharing two journaled objects for the campaign.
struct DealRecoveryWorld {
  TestRegister regs[3][2];  // [party][0=ledger, 1=audit]
  Federation fed;

  static constexpr const char* kNames[3] = {"alpha", "beta", "gamma"};

  DealRecoveryWorld(const std::string& tag, RuntimeKind kind,
                    std::uint64_t seed)
      : fed({"alpha", "beta", "gamma"}, journaled_options(tag, kind, seed)) {
    for (std::size_t p = 0; p < 3; ++p) {
      fed.register_object(kNames[p], kLedger, regs[p][0]);
      fed.register_object(kNames[p], kAudit, regs[p][1]);
    }
    fed.bootstrap_object(kLedger, {"alpha", "beta", "gamma"},
                         bytes_of("L0"));
    fed.bootstrap_object(kAudit, {"alpha", "beta", "gamma"}, bytes_of("A0"));
  }

  std::size_t index_of(const std::string& name) const {
    for (std::size_t p = 0; p < 3; ++p) {
      if (name == kNames[p]) return p;
    }
    return 0;
  }

  TestRegister& reg(const std::string& name, std::size_t obj_index) {
    return regs[index_of(name)][obj_index];
  }

  /// Agree a state on both objects so every journal holds snapshots and
  /// there is validated state a faulty recovery could diverge from.
  void warm_up() {
    reg("alpha", 0).value = bytes_of("warm-L");
    RunHandle h1 = fed.coordinator("alpha").propagate_new_state(
        kLedger, reg("alpha", 0).get_state());
    ASSERT_TRUE(fed.run_until_done(h1));
    ASSERT_EQ(h1->outcome, RunResult::Outcome::kAgreed);
    reg("alpha", 1).value = bytes_of("warm-A");
    RunHandle h2 = fed.coordinator("alpha").propagate_new_state(
        kAudit, reg("alpha", 1).get_state());
    ASSERT_TRUE(fed.run_until_done(h2));
    ASSERT_EQ(h2->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
  }

  void re_register(const std::string& name) {
    fed.register_object(name, kLedger, reg(name, 0));
    fed.register_object(name, kAudit, reg(name, 1));
  }

  /// Identical tuples, verified chains, zero violations, and — the deal
  /// invariant — ledger and audit moved together or not at all.
  void check_safety() {
    for (const ObjectId& object : {kLedger, kAudit}) {
      const StateTuple& agreed =
          fed.coordinator("alpha").replica(object).agreed_tuple();
      for (const std::string name : {"alpha", "beta", "gamma"}) {
        EXPECT_EQ(fed.coordinator(name).replica(object).agreed_tuple(),
                  agreed)
            << name << "/" << object.str();
      }
    }
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = fed.coordinator(name);
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
      const bool ledger_new = reg(name, 0).value == bytes_of("L2");
      const bool audit_new = reg(name, 1).value == bytes_of("A2");
      EXPECT_EQ(ledger_new, audit_new)
          << name << ": deal atomicity broken across recovery";
    }
  }

  bool converged(const Bytes& ledger_value, const Bytes& audit_value) {
    for (const ObjectId& object : {kLedger, kAudit}) {
      const StateTuple& agreed =
          fed.coordinator("alpha").replica(object).agreed_tuple();
      for (const std::string name : {"beta", "gamma"}) {
        if (!(fed.coordinator(name).replica(object).agreed_tuple() ==
              agreed)) {
          return false;
        }
      }
      for (const std::string name : {"alpha", "beta", "gamma"}) {
        if (fed.coordinator(name).replica(object).busy()) return false;
      }
    }
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      if (reg(name, 0).value != ledger_value) return false;
      if (reg(name, 1).value != audit_value) return false;
    }
    return true;
  }

  Bytes fingerprint() {
    Bytes out;
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = fed.coordinator(name);
      const store::EvidenceLog& evidence = coord.evidence();
      out.push_back(static_cast<std::uint8_t>(evidence.size()));
      if (!evidence.empty()) {
        Bytes tail = evidence.at(evidence.size() - 1).encode();
        out.insert(out.end(), tail.begin(), tail.end());
      }
      for (const ObjectId& object : {kLedger, kAudit}) {
        Bytes tuple = coord.replica(object).agreed_tuple().encode();
        out.insert(out.end(), tuple.begin(), tuple.end());
      }
      for (std::size_t o = 0; o < 2; ++o) {
        const Bytes& value = reg(name, o).value;
        out.insert(out.end(), value.begin(), value.end());
      }
    }
    Bytes events = bytes_of(std::to_string(fed.scheduler().events_executed()));
    out.insert(out.end(), events.begin(), events.end());
    return out;
  }
};

/// One deal campaign case on the deterministic simulator: crash `crasher`
/// at `point` in the middle of a two-leg deal, recover it from its
/// journal, and require convergence to an all-or-nothing outcome. With
/// `veto`, gamma rejects the audit leg, so the correct outcome is a full
/// abort. Returns the post-recovery deployment fingerprint.
Bytes run_deal_sim_case(const std::string& point, const std::string& crasher,
                        std::uint64_t seed, bool veto,
                        const std::string& tag_suffix = "") {
  const std::string tag =
      test::sanitized_point(point) + "_" + crasher + tag_suffix;
  Bytes fingerprint;
  {
    DealRecoveryWorld w(tag, RuntimeKind::kSim, seed);
    w.warm_up();
    if (veto) {
      w.reg("gamma", 1).policy = [](BytesView, const ValidationContext&) {
        return Decision::rejected("audit says no");
      };
    }

    w.fed.coordinator(crasher).arm_crash_point(point);
    DealCoordinator::DealSpec spec;
    spec.legs.push_back(state_leg(kLedger, "L2"));
    spec.legs.push_back(state_leg(kAudit, "A2"));
    spec.deadline_micros = 2'000'000;
    RunHandle h = w.fed.start_deal("alpha", spec);
    EXPECT_TRUE(w.fed.executor().run_until(
        [&] { return w.fed.coordinator(crasher).crashed(); }))
        << "crash point never hit";

    w.fed.crash_party(crasher);
    w.fed.scheduler().run_until(w.fed.scheduler().now() + 300'000);

    Coordinator& revived = w.fed.recover_party(crasher);
    w.re_register(crasher);
    EXPECT_TRUE(revived.recovered());
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    // A deal killed before its first journal barrier never legally
    // existed; one killed before the open record was staged-only and is
    // cancelled on recovery. Everything else must reach commit — except
    // under the veto, where the one honest outcome is a full abort.
    const bool expected_commit = !veto &&
                                 point != "deal-stage.pre-journal" &&
                                 point != "deal-open.pre-journal";
    const Bytes ledger_value =
        expected_commit ? bytes_of("L2") : bytes_of("warm-L");
    const Bytes audit_value =
        expected_commit ? bytes_of("A2") : bytes_of("warm-A");
    EXPECT_TRUE(w.fed.executor().run_until(
        [&] { return w.converged(ledger_value, audit_value); }))
        << "deployment did not converge after recovery at " << point;
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    if (crasher != "alpha") {
      // The initiator survived, so its deal handle must terminate.
      EXPECT_TRUE(h->done());
      if (veto) {
        EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed) << h->diagnostic;
        EXPECT_EQ(h->vetoers.size(), 1u);
        if (!h->vetoers.empty()) {
          EXPECT_EQ(h->vetoers[0], PartyId{"gamma"});
        }
      } else {
        EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
      }
    }
    w.fed.settle();
    w.check_safety();
    fingerprint = w.fingerprint();
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_deal_" + tag));
  return fingerprint;
}

TEST(DealCrashCampaign, InitiatorCrashEveryPoint) {
  for (const std::string& point : test::kDealInitiatorPoints) {
    SCOPED_TRACE(point);
    run_deal_sim_case(point, "alpha", test::campaign_seed(), false);
  }
}

TEST(DealCrashCampaign, ParticipantCrashEnlistPoints) {
  for (const std::string& point : test::kDealParticipantPoints) {
    if (point.find("enlist") == std::string::npos) continue;
    SCOPED_TRACE(point);
    run_deal_sim_case(point, "beta", test::campaign_seed(), false);
  }
}

TEST(DealCrashCampaign, ParticipantCrashAbortPoints) {
  for (const std::string& point : test::kDealParticipantPoints) {
    if (point.find("abort") == std::string::npos) continue;
    SCOPED_TRACE(point);
    run_deal_sim_case(point, "beta", test::campaign_seed(), true);
  }
}

TEST(DealCrashCampaign, CampaignCasesAreDeterministic) {
  const std::uint64_t seed = test::campaign_seed();
  EXPECT_EQ(run_deal_sim_case("deal-decide.journaled", "alpha", seed, false,
                              "_det1"),
            run_deal_sim_case("deal-decide.journaled", "alpha", seed, false,
                              "_det2"));
  EXPECT_EQ(run_deal_sim_case("deal-abort-recv.pre-journal", "beta", seed,
                              true, "_det1"),
            run_deal_sim_case("deal-abort-recv.pre-journal", "beta", seed,
                              true, "_det2"));
}

/// Representative deal points on a real-thread runtime: same shape as the
/// sim cases, with wall-clock downtime instead of virtual time.
void run_realtime_deal_case(const std::string& point, RuntimeKind kind) {
  const std::string tag = test::sanitized_point(point) + "_rt_" +
                          test::runtime_suffix(kind);
  {
    DealRecoveryWorld w(tag, kind, test::campaign_seed());
    w.warm_up();

    w.fed.coordinator("alpha").arm_crash_point(point);
    DealCoordinator::DealSpec spec;
    spec.legs.push_back(state_leg(kLedger, "L2"));
    spec.legs.push_back(state_leg(kAudit, "A2"));
    RunHandle h = w.fed.start_deal("alpha", spec);
    (void)h;  // orphaned by the crash; the resumed handle is the live one
    ASSERT_TRUE(w.fed.executor().run_until(
        [&] { return w.fed.coordinator("alpha").crashed(); }));

    w.fed.crash_party("alpha");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    Coordinator& revived = w.fed.recover_party("alpha");
    w.re_register("alpha");
    EXPECT_TRUE(revived.recovered());
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    EXPECT_TRUE(w.fed.executor().run_until(
        [&] { return w.converged(bytes_of("L2"), bytes_of("A2")); }))
        << "deployment did not converge after recovery at " << point;
    // The deal layer closes its handle asynchronously after the last leg
    // installs; wait for it rather than asserting the instant values
    // converge.
    EXPECT_TRUE(w.fed.executor().run_until([&] {
      for (const RunHandle& r : resumed) {
        if (!r->done()) return false;
      }
      return true;
    })) << "resumed deal did not close at " << point;
    w.fed.settle();
    w.check_safety();
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_deal_" + tag));
}

TEST(DealCrashCampaignThreaded, InitiatorCrashBeforeDecisionJournaled) {
  run_realtime_deal_case("deal-decide.pre-journal", RuntimeKind::kThreaded);
}

TEST(DealCrashCampaignThreaded, InitiatorCrashAfterDecisionJournaled) {
  run_realtime_deal_case("deal-decide.journaled", RuntimeKind::kThreaded);
}

// ---------------------------------------------------------------------------
// TTP escape hatches under crashes (§7 machinery at the deal level).
// ---------------------------------------------------------------------------

/// The initiator crashes with every leg prepared but the decision never
/// journaled. Parked participants escape through their per-run §7
/// deadlines and receive certified aborts; when the recovered initiator
/// re-derives a commit and registers it, the TTP — which wrote those
/// per-run aborts into its cache — forces a certified deal abort, keeping
/// the deal outcome consistent with what participants were already told.
TEST(DealTtpEscape, WithheldDecisionEndsInCertifiedAbort) {
  const std::string tag = "ttp_withheld";
  {
    DealRecoveryWorld w(tag, RuntimeKind::kSim, 17);
    w.warm_up();
    w.fed.enable_ttp_termination(kLedger, 500'000);
    w.fed.enable_ttp_termination(kAudit, 500'000);
    w.fed.enable_deal_escape();

    w.fed.coordinator("alpha").arm_crash_point("deal-decide.pre-journal");
    DealCoordinator::DealSpec spec;
    spec.legs.push_back(state_leg(kLedger, "L2"));
    spec.legs.push_back(state_leg(kAudit, "A2"));
    RunHandle h = w.fed.start_deal("alpha", spec);
    (void)h;
    ASSERT_TRUE(w.fed.executor().run_until(
        [&] { return w.fed.coordinator("alpha").crashed(); }));

    w.fed.crash_party("alpha");
    // Long downtime: every parked participant hits its per-run TTP
    // deadline and collects a certified abort.
    w.fed.scheduler().run_until(w.fed.scheduler().now() + 2'000'000);

    Coordinator& revived = w.fed.recover_party("alpha");
    w.re_register("alpha");
    w.fed.enable_ttp_termination(kLedger, 500'000);
    w.fed.enable_ttp_termination(kAudit, 500'000);
    w.fed.enable_deal_escape();
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    EXPECT_TRUE(w.fed.executor().run_until(
        [&] { return w.converged(bytes_of("warm-L"), bytes_of("warm-A")); }))
        << "deployment did not converge on the certified abort";
    bool saw_certified_abort = false;
    for (const RunHandle& r : resumed) {
      EXPECT_TRUE(r->done());
      if (r->diagnostic.find("ttp certified abort") != std::string::npos) {
        saw_certified_abort = true;
        EXPECT_EQ(r->outcome, RunResult::Outcome::kAborted);
      }
    }
    EXPECT_TRUE(saw_certified_abort)
        << "resumed deal did not surface the TTP's certified abort";
    w.fed.settle();
    w.check_safety();
    EXPECT_EQ(w.fed.termination_ttp().deal_aborts_issued(), 1u);
    EXPECT_EQ(w.fed.termination_ttp().deal_commits_issued(), 0u);
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_deal_" + tag));
}

/// The initiator crashes between legs while replicating a TTP-certified
/// commit. Parked participants that escape during the downtime receive
/// the cached per-run COMMIT verdicts written by the atomic deal
/// registration — so they install rather than abort — and the recovered
/// initiator finishes driving the remaining leg from its journal.
TEST(DealTtpEscape, MidReplicateCrashStillCommitsEverywhere) {
  const std::string tag = "ttp_midreplicate";
  {
    DealRecoveryWorld w(tag, RuntimeKind::kSim, 19);
    w.warm_up();
    w.fed.enable_ttp_termination(kLedger, 500'000);
    w.fed.enable_ttp_termination(kAudit, 500'000);
    w.fed.enable_deal_escape();

    w.fed.coordinator("alpha").arm_crash_point("deal-decide.mid-replicate");
    DealCoordinator::DealSpec spec;
    spec.legs.push_back(state_leg(kLedger, "L2"));
    spec.legs.push_back(state_leg(kAudit, "A2"));
    RunHandle h = w.fed.start_deal("alpha", spec);
    (void)h;
    ASSERT_TRUE(w.fed.executor().run_until(
        [&] { return w.fed.coordinator("alpha").crashed(); }));

    w.fed.crash_party("alpha");
    w.fed.scheduler().run_until(w.fed.scheduler().now() + 2'000'000);

    Coordinator& revived = w.fed.recover_party("alpha");
    w.re_register("alpha");
    w.fed.enable_ttp_termination(kLedger, 500'000);
    w.fed.enable_ttp_termination(kAudit, 500'000);
    w.fed.enable_deal_escape();
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    EXPECT_TRUE(w.fed.executor().run_until(
        [&] { return w.converged(bytes_of("L2"), bytes_of("A2")); }))
        << "deployment did not converge on the certified commit";
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    w.fed.settle();
    w.check_safety();
    EXPECT_EQ(w.fed.termination_ttp().deal_commits_issued(), 1u);
    EXPECT_EQ(w.fed.termination_ttp().deal_aborts_issued(), 0u);
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_deal_" + tag));
}

// ---------------------------------------------------------------------------
// Multi-deal soak: concurrent deals from different initiators, commit,
// veto and (on the simulator) crash rounds, across several seeds.
// ---------------------------------------------------------------------------

/// CI sweeps the soak under several seeds via this env var.
std::uint64_t deal_seed() {
  const char* seed = std::getenv("B2B_DEAL_SEED");
  return seed != nullptr ? std::strtoull(seed, nullptr, 10) : 3;
}

void run_deal_soak(RuntimeKind kind, std::uint64_t seed, bool with_crash,
                   const std::string& tag, int rounds = 6) {
  const std::vector<ObjectId> objects = {ObjectId{"obj0"}, ObjectId{"obj1"},
                                         ObjectId{"obj2"}, ObjectId{"obj3"}};
  const std::vector<std::string> names = {"alpha", "beta", "gamma"};
  {
    TestRegister regs[3][4];
    Federation fed({"alpha", "beta", "gamma"},
                   journaled_options(tag, kind, seed));
    for (std::size_t p = 0; p < names.size(); ++p) {
      for (std::size_t o = 0; o < objects.size(); ++o) {
        fed.register_object(names[p], objects[o], regs[p][o]);
      }
    }
    std::vector<Bytes> expected;
    for (std::size_t o = 0; o < objects.size(); ++o) {
      expected.push_back(bytes_of("v0-" + std::to_string(o)));
      fed.bootstrap_object(objects[o], names, expected.back());
    }
    auto reg_of = [&](const std::string& name, std::size_t o) -> TestRegister& {
      for (std::size_t p = 0; p < names.size(); ++p) {
        if (names[p] == name) return regs[p][o];
      }
      return regs[0][o];
    };

    for (int round = 0; round < rounds; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      // Rounds cycle: both deals commit; deal A vetoed on obj1; deal B
      // vetoed on obj3.
      const bool veto_a = round % 3 == 1;
      const bool veto_b = round % 3 == 2;
      auto reject = [](BytesView, const ValidationContext&) {
        return Decision::rejected("soak veto");
      };
      if (veto_a) reg_of("gamma", 1).policy = reject;
      if (veto_b) reg_of("gamma", 3).policy = reject;

      auto round_value = [&](std::size_t o) {
        return "r" + std::to_string(round) + "-" + std::to_string(o);
      };
      const bool crash_round =
          with_crash && kind == RuntimeKind::kSim && round == 3;
      if (crash_round) {
        fed.coordinator("alpha").arm_crash_point("deal-decide.journaled");
      }

      // Two concurrent deals from different initiators over disjoint
      // object pairs.
      DealCoordinator::DealSpec spec_a;
      spec_a.legs.push_back(state_leg(objects[0], round_value(0)));
      spec_a.legs.push_back(state_leg(objects[1], round_value(1)));
      spec_a.deadline_micros = 5'000'000;
      RunHandle ha = fed.start_deal("alpha", spec_a);
      DealCoordinator::DealSpec spec_b;
      spec_b.legs.push_back(state_leg(objects[2], round_value(2)));
      spec_b.legs.push_back(state_leg(objects[3], round_value(3)));
      spec_b.deadline_micros = 5'000'000;
      RunHandle hb = fed.start_deal("beta", spec_b);

      if (crash_round) {
        ASSERT_TRUE(fed.executor().run_until(
            [&] { return fed.coordinator("alpha").crashed(); }));
        fed.crash_party("alpha");
        fed.scheduler().run_until(fed.scheduler().now() + 300'000);
        Coordinator& revived = fed.recover_party("alpha");
        for (std::size_t o = 0; o < objects.size(); ++o) {
          fed.register_object("alpha", objects[o], reg_of("alpha", o));
        }
        ASSERT_TRUE(revived.recovered());
        std::vector<RunHandle> resumed = revived.resume_recovered_runs();
        // Per-run resume leaves deal legs to the deal layer, so the
        // resumed handles are the deal's (plus any responder-side runs,
        // which carry no deal label).
        RunHandle resumed_deal;
        for (const RunHandle& r : resumed) {
          if (!r->done()) resumed_deal = r;
        }
        if (resumed_deal) ha = resumed_deal;
      }

      ASSERT_TRUE(fed.run_until_done(ha)) << "deal A blocked";
      ASSERT_TRUE(fed.run_until_done(hb)) << "deal B blocked";
      if (veto_a) {
        EXPECT_EQ(ha->outcome, RunResult::Outcome::kVetoed) << ha->diagnostic;
        ASSERT_EQ(ha->vetoers.size(), 1u);
        EXPECT_EQ(ha->vetoers[0], PartyId{"gamma"});
      } else {
        EXPECT_EQ(ha->outcome, RunResult::Outcome::kAgreed) << ha->diagnostic;
        expected[0] = bytes_of(round_value(0));
        expected[1] = bytes_of(round_value(1));
      }
      if (veto_b) {
        EXPECT_EQ(hb->outcome, RunResult::Outcome::kVetoed) << hb->diagnostic;
        ASSERT_EQ(hb->vetoers.size(), 1u);
        EXPECT_EQ(hb->vetoers[0], PartyId{"gamma"});
      } else {
        EXPECT_EQ(hb->outcome, RunResult::Outcome::kAgreed) << hb->diagnostic;
        expected[2] = bytes_of(round_value(2));
        expected[3] = bytes_of(round_value(3));
      }
      fed.settle();

      // Mutual consistency after every round: identical values and
      // tuples everywhere, verified chains, zero honest blame.
      for (std::size_t o = 0; o < objects.size(); ++o) {
        const StateTuple& agreed =
            fed.coordinator("alpha").replica(objects[o]).agreed_tuple();
        for (const std::string& name : names) {
          EXPECT_EQ(reg_of(name, o).value, expected[o])
              << name << "/" << objects[o].str();
          EXPECT_EQ(fed.coordinator(name).replica(objects[o]).agreed_tuple(),
                    agreed)
              << name << "/" << objects[o].str();
        }
      }
      for (const std::string& name : names) {
        EXPECT_TRUE(fed.coordinator(name).evidence().verify_chain()) << name;
        EXPECT_EQ(fed.coordinator(name).violations_detected(), 0u) << name;
      }
      reg_of("gamma", 1).policy = nullptr;
      reg_of("gamma", 3).policy = nullptr;
    }
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_deal_" + tag));
}

TEST(DealSoak, SimSeedsSweep) {
  const std::uint64_t base = deal_seed();
  for (std::uint64_t offset : {0, 2, 4, 8, 10, 14}) {
    const std::uint64_t seed = base + offset;
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_deal_soak(RuntimeKind::kSim, seed, /*with_crash=*/true,
                  "soak_sim_" + std::to_string(seed));
  }
}

TEST(DealSoak, TcpRuntimeOnce) {
  run_deal_soak(RuntimeKind::kTcp, deal_seed(), /*with_crash=*/false,
                "soak_tcp", /*rounds=*/4);
}

// ---------------------------------------------------------------------------
// Golden-digest determinism for multi-deal interleavings.
// ---------------------------------------------------------------------------

// Frozen fingerprints of the deal scenario below at seed 31 (captured on
// the deterministic simulator; both coordinator lock modes must match).
// The pre-existing golden constants in sharding_test.cpp are untouched —
// these pin the *deal* subsystem's observable behaviour separately.
const char kDealGoldenPlain[] =
    "2de6946024010df5ed9454eaaaaf4973ff51179e7df92863b3cac1a3a955111a";
const char kDealGoldenJournaled[] =
    "bd06558539d7e9359fd6c63c103d3c46ebb0ab09203947a72d6d631668ba05e9";

/// A fixed multi-deal scenario on the deterministic simulator: plain runs
/// and deals in flight together, a vetoed deal next to a committing one,
/// a single-member leg, and a TTP-escorted commit. The whole deployment
/// (evidence chains, tuples, values, deal stats, event count) is hashed.
std::string run_deal_golden(Federation::Options options,
                            const std::string& journal_tag = "") {
  fs::path journal_root;
  if (!journal_tag.empty()) {
    journal_root = fs::temp_directory_path() / ("b2b_deal_" + journal_tag);
    fs::remove_all(journal_root);
    options.journal_root = journal_root.string();
    options.journal_fsync = false;
  }

  const ObjectId kSolo{"solo"};
  const std::vector<std::string> kAll = {"alpha", "beta", "gamma"};
  const std::vector<ObjectId> kObjects = {kLedger, kOrders, kAudit, kSolo};

  std::string digest_hex;
  {
    TestRegister regs[3][4];
    Federation fed(std::vector<std::string>(kAll.begin(), kAll.end()),
                   options);
    for (std::size_t p = 0; p < kAll.size(); ++p) {
      for (std::size_t o = 0; o < kObjects.size(); ++o) {
        fed.register_object(kAll[p], kObjects[o], regs[p][o]);
      }
    }
    fed.bootstrap_object(kLedger, {"alpha", "beta", "gamma"}, bytes_of("L0"));
    fed.bootstrap_object(kOrders, {"alpha", "beta"}, bytes_of("O0"));
    fed.bootstrap_object(kAudit, {"alpha", "beta", "gamma"}, bytes_of("A0"));
    fed.bootstrap_object(kSolo, {"alpha"}, bytes_of("S0"));

    auto index_of = [&](const std::string& name) {
      for (std::size_t p = 0; p < kAll.size(); ++p) {
        if (kAll[p] == name) return p;
      }
      return std::size_t{0};
    };
    auto drive = [&](const RunHandle& h, RunResult::Outcome outcome) {
      if (!fed.run_until_done(h)) {
        ADD_FAILURE() << "deal golden run did not terminate";
        return;
      }
      EXPECT_EQ(h->outcome, outcome) << h->diagnostic;
    };

    // Phase 1: a two-leg deal next to a plain state run on a third object.
    DealCoordinator::DealSpec d1;
    d1.legs.push_back(state_leg(kLedger, "L1"));
    d1.legs.push_back(state_leg(kOrders, "O1"));
    RunHandle h1 = fed.start_deal("alpha", d1);
    regs[index_of("gamma")][2].value = bytes_of("A1");
    RunHandle p1 = fed.coordinator("gamma").propagate_new_state(
        kAudit, regs[index_of("gamma")][2].get_state());
    drive(h1, RunResult::Outcome::kAgreed);
    drive(p1, RunResult::Outcome::kAgreed);
    fed.settle();

    // Phase 2: a vetoed deal concurrent with a committing one that spans
    // a single-member leg (nothing to collect: prepared by construction).
    regs[index_of("gamma")][2].policy =
        [](BytesView, const ValidationContext&) {
          return Decision::rejected("golden veto");
        };
    DealCoordinator::DealSpec d2;
    d2.legs.push_back(state_leg(kLedger, "L2"));
    d2.legs.push_back(state_leg(kAudit, "A2"));
    RunHandle h2 = fed.start_deal("beta", d2);
    DealCoordinator::DealSpec d3;
    d3.legs.push_back(state_leg(kOrders, "O2"));
    d3.legs.push_back(state_leg(kSolo, "S1"));
    RunHandle h3 = fed.start_deal("alpha", d3);
    drive(h2, RunResult::Outcome::kVetoed);
    drive(h3, RunResult::Outcome::kAgreed);
    fed.settle();
    regs[index_of("gamma")][2].policy = nullptr;

    // Phase 3: a commit escorted through atomic TTP registration, with
    // an update-variant leg.
    fed.enable_deal_escape();
    DealCoordinator::DealSpec d4;
    d4.legs.push_back(state_leg(kLedger, "L3"));
    d4.legs.push_back(update_leg(kAudit, "+z", "A1+z"));
    RunHandle h4 = fed.start_deal("alpha", d4);
    drive(h4, RunResult::Outcome::kAgreed);
    fed.settle();

    crypto::Sha256 hasher;
    auto mix = [&](const Bytes& bytes) {
      const std::uint64_t n = bytes.size();
      Bytes len(8);
      for (int i = 0; i < 8; ++i) {
        len[i] = static_cast<std::uint8_t>(n >> (8 * i));
      }
      hasher.update(len);
      hasher.update(bytes);
    };
    for (std::size_t p = 0; p < kAll.size(); ++p) {
      Coordinator& coord = fed.coordinator(kAll[p]);
      const store::EvidenceLog& evidence = coord.evidence();
      EXPECT_TRUE(evidence.verify_chain()) << kAll[p];
      mix(bytes_of(std::to_string(evidence.size())));
      if (!evidence.empty()) {
        mix(evidence.at(evidence.size() - 1).encode());
      }
      for (std::size_t o = 0; o < kObjects.size(); ++o) {
        mix(coord.replica(kObjects[o]).agreed_tuple().encode());
        mix(coord.replica(kObjects[o]).group_tuple().encode());
        mix(regs[p][o].value);
      }
      const DealCoordinator::Stats stats = coord.deals().stats();
      mix(bytes_of(std::to_string(stats.started) + "/" +
                   std::to_string(stats.committed) + "/" +
                   std::to_string(stats.aborted) + "/" +
                   std::to_string(stats.ttp_registrations) + "/" +
                   std::to_string(stats.ttp_verdicts)));
      EXPECT_EQ(coord.violations_detected(), 0u) << kAll[p];
    }
    mix(bytes_of(std::to_string(fed.scheduler().events_executed())));
    digest_hex = to_hex(crypto::digest_bytes(hasher.finish()));
  }
  if (!journal_root.empty()) fs::remove_all(journal_root);
  return digest_hex;
}

TEST(DealGolden, PerObjectMatchesFrozenDigest) {
  Federation::Options options = test::runtime_options(RuntimeKind::kSim, 31);
  options.lock_mode = Coordinator::LockMode::kPerObject;
  EXPECT_EQ(run_deal_golden(options), kDealGoldenPlain);
  EXPECT_EQ(run_deal_golden(options, "golden_j1"), kDealGoldenJournaled);
}

TEST(DealGolden, CoarseMatchesFrozenDigest) {
  Federation::Options options = test::runtime_options(RuntimeKind::kSim, 31);
  options.lock_mode = Coordinator::LockMode::kCoarse;
  EXPECT_EQ(run_deal_golden(options), kDealGoldenPlain);
  EXPECT_EQ(run_deal_golden(options, "golden_j2"), kDealGoldenJournaled);
}

}  // namespace
}  // namespace b2b::core
