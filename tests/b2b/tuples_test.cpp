// State/group identifier tuples, member hashing and decisions (§4.2).
#include "b2b/tuples.hpp"

#include <gtest/gtest.h>

namespace b2b::core {
namespace {

StateTuple sample_state_tuple() {
  return StateTuple{7, crypto::Sha256::hash(bytes_of("rand")),
                    crypto::Sha256::hash(bytes_of("state"))};
}

TEST(TuplesTest, StateTupleRoundTrip) {
  StateTuple t = sample_state_tuple();
  EXPECT_EQ(StateTuple::decode(t.encode()), t);
}

TEST(TuplesTest, GroupTupleRoundTrip) {
  GroupTuple g{3, crypto::Sha256::hash(bytes_of("r")),
               hash_members({PartyId{"a"}, PartyId{"b"}})};
  EXPECT_EQ(GroupTuple::decode(g.encode()), g);
}

TEST(TuplesTest, DecodeRejectsTrailingGarbage) {
  Bytes data = sample_state_tuple().encode();
  data.push_back(0);
  EXPECT_THROW(StateTuple::decode(data), CodecError);
}

TEST(TuplesTest, DecodeRejectsTruncation) {
  Bytes data = sample_state_tuple().encode();
  data.pop_back();
  EXPECT_THROW(StateTuple::decode(data), CodecError);
}

TEST(TuplesTest, LabelsAreUniquePerRandom) {
  StateTuple a = sample_state_tuple();
  StateTuple b = a;
  b.rand_hash = crypto::Sha256::hash(bytes_of("other-rand"));
  EXPECT_NE(a.label(), b.label());
  // Same tuple -> same label (labels key the message store).
  EXPECT_EQ(a.label(), sample_state_tuple().label());
}

TEST(TuplesTest, StateAndGroupLabelsNeverCollide) {
  StateTuple s = sample_state_tuple();
  GroupTuple g{s.sequence, s.rand_hash, s.state_hash};
  EXPECT_NE(s.label(), g.label());  // group labels carry a 'g' prefix
}

TEST(TuplesTest, MemberHashDependsOnOrder) {
  // Join order determines sponsorship (§4.5.1), so it is part of identity.
  auto h1 = hash_members({PartyId{"a"}, PartyId{"b"}});
  auto h2 = hash_members({PartyId{"b"}, PartyId{"a"}});
  EXPECT_NE(h1, h2);
}

TEST(TuplesTest, MemberHashIsInjectiveOnBoundaries) {
  // {"ab"} vs {"a","b"} must differ (length-prefixed encoding).
  auto h1 = hash_members({PartyId{"ab"}});
  auto h2 = hash_members({PartyId{"a"}, PartyId{"b"}});
  EXPECT_NE(h1, h2);
}

TEST(TuplesTest, DecisionRoundTrip) {
  wire::Encoder enc;
  Decision::rejected("because").encode_into(enc);
  Decision::accepted().encode_into(enc);
  wire::Decoder dec{enc.bytes()};
  Decision r = Decision::decode_from(dec);
  Decision a = Decision::decode_from(dec);
  EXPECT_FALSE(r.accept);
  EXPECT_EQ(r.diagnostic, "because");
  EXPECT_TRUE(a.accept);
  EXPECT_TRUE(a.diagnostic.empty());
}

}  // namespace
}  // namespace b2b::core
