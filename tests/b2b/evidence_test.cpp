// Third-party evidence verification (§4.3's authenticated decision and
// §4.4's detection machinery), exercised directly on crafted transcripts.
#include "b2b/evidence.hpp"

#include <gtest/gtest.h>

#include "tests/support/test_keys.hpp"

namespace b2b::core {
namespace {

using crypto::test::shared_test_key;

const PartyId kAlice{"alice"};
const PartyId kBob{"bob"};
const PartyId kCarol{"carol"};

const crypto::RsaPrivateKey& key_of(const PartyId& party) {
  if (party == kAlice) return shared_test_key(0);
  if (party == kBob) return shared_test_key(1);
  return shared_test_key(2);
}

EvidenceVerifier make_verifier() {
  std::map<PartyId, crypto::RsaPublicKey> keys;
  keys.emplace(kAlice, shared_test_key(0).public_key());
  keys.emplace(kBob, shared_test_key(1).public_key());
  keys.emplace(kCarol, shared_test_key(2).public_key());
  return EvidenceVerifier(std::move(keys));
}

/// An honest transcript: alice proposes to bob and carol, both accept.
struct TranscriptBuilder {
  Bytes authenticator = bytes_of("secret-authenticator");
  Bytes old_state = bytes_of("old");
  Bytes new_state = bytes_of("new");
  RunTranscript transcript;

  TranscriptBuilder() {
    Proposal& prop = transcript.propose.proposal;
    prop.proposer = kAlice;
    prop.object = ObjectId{"doc"};
    prop.group = GroupTuple{0, crypto::Sha256::hash(bytes_of("g")),
                            hash_members({kAlice, kBob, kCarol})};
    prop.agreed = StateTuple{0, crypto::Sha256::hash(bytes_of("r0")),
                             crypto::Sha256::hash(old_state)};
    prop.proposed = StateTuple{1, crypto::Sha256::hash(authenticator),
                               crypto::Sha256::hash(new_state)};
    prop.is_update = false;
    prop.payload_hash = crypto::Sha256::hash(new_state);
    transcript.propose.payload = new_state;
    transcript.propose.signature =
        key_of(kAlice).sign(prop.signed_bytes());

    for (const PartyId& responder : {kBob, kCarol}) {
      transcript.responses.push_back(make_response(responder, true, ""));
    }
    finalize();
  }

  RespondMsg make_response(const PartyId& responder, bool accept,
                           const std::string& why) {
    const Proposal& prop = transcript.propose.proposal;
    RespondMsg msg;
    msg.response.responder = responder;
    msg.response.object = prop.object;
    msg.response.proposed = prop.proposed;
    msg.response.agreed_view = prop.agreed;
    msg.response.current_view = prop.agreed;
    msg.response.group_view = prop.group;
    msg.response.payload_integrity = prop.payload_hash;
    msg.response.decision = accept ? Decision::accepted()
                                   : Decision::rejected(why);
    msg.signature = key_of(responder).sign(msg.response.signed_bytes());
    return msg;
  }

  void finalize() {
    DecideMsg decide;
    decide.proposer = kAlice;
    decide.object = transcript.propose.proposal.object;
    decide.proposed = transcript.propose.proposal.proposed;
    decide.responses = transcript.responses;
    decide.authenticator = authenticator;
    transcript.decide = decide;
  }
};

const std::vector<PartyId> kRecipients{kBob, kCarol};

TEST(EvidenceTest, HonestTranscriptVerifiesAsAgreed) {
  TranscriptBuilder b;
  VerifiedRun verdict =
      make_verifier().verify_state_run(b.transcript, &kRecipients);
  EXPECT_TRUE(verdict.evidence_intact);
  EXPECT_TRUE(verdict.agreed);
  EXPECT_TRUE(verdict.violations.empty());
  EXPECT_TRUE(verdict.vetoers.empty());
}

TEST(EvidenceTest, VetoedTranscriptShowsVetoer) {
  TranscriptBuilder b;
  b.transcript.responses[1] = b.make_response(kCarol, false, "policy");
  b.finalize();
  VerifiedRun verdict =
      make_verifier().verify_state_run(b.transcript, &kRecipients);
  EXPECT_TRUE(verdict.evidence_intact);
  EXPECT_FALSE(verdict.agreed);
  ASSERT_EQ(verdict.vetoers.size(), 1u);
  EXPECT_EQ(verdict.vetoers[0], kCarol);
}

TEST(EvidenceTest, ForgedProposerSignatureDetected) {
  TranscriptBuilder b;
  b.transcript.propose.signature[3] ^= 0x01;
  VerifiedRun verdict =
      make_verifier().verify_state_run(b.transcript, &kRecipients);
  EXPECT_FALSE(verdict.evidence_intact);
  EXPECT_FALSE(verdict.agreed);
  EXPECT_FALSE(verdict.violations.empty());
}

TEST(EvidenceTest, PayloadSwapDetected) {
  TranscriptBuilder b;
  b.transcript.propose.payload = bytes_of("swapped");
  VerifiedRun verdict =
      make_verifier().verify_state_run(b.transcript, &kRecipients);
  EXPECT_FALSE(verdict.evidence_intact);
}

TEST(EvidenceTest, MissingResponseDetected) {
  TranscriptBuilder b;
  b.transcript.responses.pop_back();
  b.finalize();
  VerifiedRun verdict =
      make_verifier().verify_state_run(b.transcript, &kRecipients);
  EXPECT_FALSE(verdict.evidence_intact);
  EXPECT_FALSE(verdict.agreed);
}

TEST(EvidenceTest, MissingDecideMeansNotAgreed) {
  TranscriptBuilder b;
  b.transcript.decide.reset();
  VerifiedRun verdict =
      make_verifier().verify_state_run(b.transcript, &kRecipients);
  EXPECT_FALSE(verdict.agreed);
}

TEST(EvidenceTest, WrongAuthenticatorDetected) {
  TranscriptBuilder b;
  b.transcript.decide->authenticator = bytes_of("guess");
  VerifiedRun verdict =
      make_verifier().verify_state_run(b.transcript, &kRecipients);
  EXPECT_FALSE(verdict.evidence_intact);
  EXPECT_FALSE(verdict.agreed);
}

TEST(EvidenceTest, AcceptWithInconsistentViewsDetected) {
  TranscriptBuilder b;
  // Re-sign bob's response with a divergent agreed view but decision
  // accept — internally inconsistent content (§4.4).
  RespondMsg& bob = b.transcript.responses[0];
  bob.response.agreed_view.sequence = 99;
  bob.signature = key_of(kBob).sign(bob.response.signed_bytes());
  b.finalize();
  VerifiedRun verdict =
      make_verifier().verify_state_run(b.transcript, &kRecipients);
  EXPECT_FALSE(verdict.evidence_intact);
  EXPECT_FALSE(verdict.agreed);
}

TEST(EvidenceTest, NullTransitionDetected) {
  TranscriptBuilder b;
  Proposal& prop = b.transcript.propose.proposal;
  prop.proposed.state_hash = prop.agreed.state_hash;
  prop.payload_hash = prop.agreed.state_hash;
  b.transcript.propose.payload = b.old_state;
  b.transcript.propose.signature = key_of(kAlice).sign(prop.signed_bytes());
  VerifiedRun verdict = make_verifier().verify_state_run(b.transcript);
  EXPECT_FALSE(verdict.evidence_intact);
}

TEST(EvidenceTest, NonAdvancingSequenceDetected) {
  TranscriptBuilder b;
  Proposal& prop = b.transcript.propose.proposal;
  prop.proposed.sequence = prop.agreed.sequence;
  b.transcript.propose.signature = key_of(kAlice).sign(prop.signed_bytes());
  VerifiedRun verdict = make_verifier().verify_state_run(b.transcript);
  EXPECT_FALSE(verdict.evidence_intact);
}

TEST(EvidenceTest, DuplicateResponderDetected) {
  TranscriptBuilder b;
  b.transcript.responses.push_back(b.transcript.responses[0]);
  b.finalize();
  VerifiedRun verdict =
      make_verifier().verify_state_run(b.transcript, &kRecipients);
  EXPECT_FALSE(verdict.evidence_intact);
}

TEST(EvidenceTest, UnknownSignerDetected) {
  TranscriptBuilder b;
  std::map<PartyId, crypto::RsaPublicKey> keys;
  keys.emplace(kAlice, shared_test_key(0).public_key());
  keys.emplace(kBob, shared_test_key(1).public_key());
  // carol's key is absent from the directory.
  EvidenceVerifier partial(std::move(keys));
  VerifiedRun verdict = partial.verify_state_run(b.transcript, &kRecipients);
  EXPECT_FALSE(verdict.evidence_intact);
}

TEST(EvidenceTest, UnanimousHelper) {
  TranscriptBuilder b;
  EXPECT_TRUE(EvidenceVerifier::unanimous(b.transcript.responses));
  b.transcript.responses.push_back(b.make_response(kCarol, false, "no"));
  EXPECT_FALSE(EvidenceVerifier::unanimous(b.transcript.responses));
  EXPECT_TRUE(EvidenceVerifier::unanimous({}));
}

TEST(EvidenceTest, UpdateVariantTranscriptVerifies) {
  TranscriptBuilder b;
  Proposal& prop = b.transcript.propose.proposal;
  prop.is_update = true;
  Bytes delta = bytes_of("delta");
  prop.payload_hash = crypto::Sha256::hash(delta);
  b.transcript.propose.payload = delta;
  b.transcript.propose.signature = key_of(kAlice).sign(prop.signed_bytes());
  // Responses must echo the new payload hash to count as consistent.
  b.transcript.responses.clear();
  for (const PartyId& responder : {kBob, kCarol}) {
    b.transcript.responses.push_back(b.make_response(responder, true, ""));
  }
  b.finalize();
  VerifiedRun verdict =
      make_verifier().verify_state_run(b.transcript, &kRecipients);
  EXPECT_TRUE(verdict.evidence_intact);
  EXPECT_TRUE(verdict.agreed);
}

}  // namespace
}  // namespace b2b::core
