// Tests for the §7 / §4 extension features: majority decision rule,
// composite objects, the dispute-resolution arbiter, replica snapshots
// (crash recovery), and TTP-certified termination.
#include <gtest/gtest.h>

#include "b2b/arbiter.hpp"
#include "b2b/composite.hpp"
#include "b2b/federation.hpp"
#include "b2b/termination.hpp"
#include "common/error.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

const ObjectId kObj{"doc"};

// ---------------------------------------------------------------------------
// Majority decision rule (§7: "resorting to majority decision")
// ---------------------------------------------------------------------------

struct MajorityFixture {
  std::vector<std::string> names{"a", "b", "c", "d"};  // before fed: init order
  Federation fed;
  std::vector<std::unique_ptr<TestRegister>> objects;

  static Federation::Options options() {
    Federation::Options o;
    o.decision_rule = DecisionRule::kMajority;
    return o;
  }

  MajorityFixture() : fed(names, options()) {
    for (const auto& name : names) {
      objects.push_back(std::make_unique<TestRegister>());
      fed.register_object(name, kObj, *objects.back());
    }
    fed.bootstrap_object(kObj, names, bytes_of("genesis"));
  }
};

TEST(MajorityRule, SingleVetoIsOverridden) {
  MajorityFixture t;
  t.objects[3]->policy = [](BytesView, const ValidationContext&) {
    return Decision::rejected("d always objects");
  };
  t.objects[0]->value = bytes_of("carried");
  RunHandle h =
      t.fed.coordinator("a").propagate_new_state(kObj, t.objects[0]->get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  // The dissenter is on record.
  ASSERT_EQ(h->vetoers.size(), 1u);
  EXPECT_EQ(h->vetoers[0], PartyId{"d"});
  t.fed.settle();
  // Everyone installs, INCLUDING the overridden vetoer.
  for (auto& obj : t.objects) EXPECT_EQ(obj->value, bytes_of("carried"));
  EXPECT_EQ(t.fed.coordinator("d").replica(kObj).agreed_tuple().sequence, 1u);
}

TEST(MajorityRule, TwoVetoesOfFourStillBlock) {
  MajorityFixture t;
  for (int i : {2, 3}) {
    t.objects[i]->policy = [](BytesView, const ValidationContext&) {
      return Decision::rejected("no");
    };
  }
  t.objects[0]->value = bytes_of("split");
  RunHandle h =
      t.fed.coordinator("a").propagate_new_state(kObj, t.objects[0]->get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  // 2 accepts (proposer + b) of 4 is not a strict majority.
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  t.fed.settle();
  for (auto& obj : t.objects) EXPECT_EQ(obj->value, bytes_of("genesis"));
}

TEST(MajorityRule, OverriddenVetoerInstallsUpdateVariantToo) {
  MajorityFixture t;
  t.objects[3]->policy = [](BytesView, const ValidationContext&) {
    return Decision::rejected("d objects to updates too");
  };
  t.objects[0]->value = bytes_of("genesis+delta");
  t.objects[0]->pending_suffix = bytes_of("+delta");
  RunHandle h = t.fed.coordinator("a").propagate_update(
      kObj, t.objects[0]->get_update(), t.objects[0]->get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.objects[3]->value, bytes_of("genesis+delta"));
}

TEST(MajorityRule, UnanimousRuleStillDefault) {
  Federation fed{{"a", "b", "c"}};
  EXPECT_EQ(fed.coordinator("a")
                .register_object(kObj, *new TestRegister)  // leak ok in test
                .decision_rule(),
            DecisionRule::kUnanimous);
}

// ---------------------------------------------------------------------------
// CompositeObject (§4)
// ---------------------------------------------------------------------------

struct CompositeFixture {
  Federation fed{{"a", "b"}};
  TestRegister a_first, a_second, b_first, b_second;
  CompositeObject a_composite, b_composite;

  CompositeFixture() {
    a_composite.add_component("first", a_first);
    a_composite.add_component("second", a_second);
    b_composite.add_component("first", b_first);
    b_composite.add_component("second", b_second);
    fed.register_object("a", kObj, a_composite);
    fed.register_object("b", kObj, b_composite);
    a_first.value = bytes_of("one");
    a_second.value = bytes_of("two");
    fed.bootstrap_object(kObj, {"a", "b"}, a_composite.get_state());
  }
};

TEST(Composite, BootstrapDistributesComponentStates) {
  CompositeFixture t;
  EXPECT_EQ(t.b_first.value, bytes_of("one"));
  EXPECT_EQ(t.b_second.value, bytes_of("two"));
}

TEST(Composite, AtomicMultiObjectTransition) {
  CompositeFixture t;
  t.a_first.value = bytes_of("one'");
  t.a_second.value = bytes_of("two'");
  RunHandle h = t.fed.coordinator("a").propagate_new_state(
      kObj, t.a_composite.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.b_first.value, bytes_of("one'"));
  EXPECT_EQ(t.b_second.value, bytes_of("two'"));
}

TEST(Composite, OneComponentVetoRejectsTheWholeTransition) {
  CompositeFixture t;
  t.b_second.policy = [](BytesView, const ValidationContext&) {
    return Decision::rejected("second says no");
  };
  t.a_first.value = bytes_of("one'");
  t.a_second.value = bytes_of("two'");
  RunHandle h = t.fed.coordinator("a").propagate_new_state(
      kObj, t.a_composite.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  EXPECT_NE(h->diagnostic.find("component 'second'"), std::string::npos);
  // Atomic: NEITHER component changed anywhere (proposer rolled back).
  EXPECT_EQ(t.a_first.value, bytes_of("one"));
  EXPECT_EQ(t.a_second.value, bytes_of("two"));
  EXPECT_EQ(t.b_first.value, bytes_of("one"));
}

TEST(Composite, DuplicateComponentNameThrows) {
  CompositeObject composite;
  TestRegister r;
  composite.add_component("x", r);
  EXPECT_THROW(composite.add_component("x", r), Error);
  EXPECT_THROW(composite.component("missing"), Error);
  EXPECT_EQ(&composite.component("x"), &r);
}

TEST(Composite, MismatchedComponentListIsRejected) {
  CompositeFixture t;
  // A state claiming a different component layout must be vetoed, not
  // crash the validator.
  CompositeObject alien;
  TestRegister only;
  only.value = bytes_of("alien");
  alien.add_component("only", only);
  RunHandle h =
      t.fed.coordinator("a").propagate_new_state(kObj, alien.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
}

// ---------------------------------------------------------------------------
// Arbiter (extra-protocol dispute resolution)
// ---------------------------------------------------------------------------

struct ArbiterFixture {
  Federation fed{{"alpha", "beta"}};
  TestRegister alpha_obj, beta_obj;

  ArbiterFixture() {
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));
  }

  Arbiter arbiter() { return Arbiter(fed.make_verifier()); }
};

TEST(ArbiterTest, RulesAgreedRunValid) {
  ArbiterFixture t;
  t.alpha_obj.value = bytes_of("v1");
  RunHandle h = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();

  std::vector<PartyId> recipients{PartyId{"beta"}};
  ArbitrationReport report = t.arbiter().arbitrate(
      t.fed.coordinator("alpha").messages(), h->run_label, &recipients);
  EXPECT_TRUE(report.proposal_found);
  EXPECT_TRUE(report.decide_found);
  EXPECT_TRUE(report.verdict.agreed);
  EXPECT_NE(report.ruling.find("VALID"), std::string::npos);
}

TEST(ArbiterTest, RulesVetoedRunInvalidNamingVetoer) {
  ArbiterFixture t;
  t.beta_obj.policy = [](BytesView, const ValidationContext&) {
    return Decision::rejected("no");
  };
  t.alpha_obj.value = bytes_of("v1");
  RunHandle h = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();

  ArbitrationReport report = t.arbiter().arbitrate(
      t.fed.coordinator("alpha").messages(), h->run_label);
  EXPECT_FALSE(report.verdict.agreed);
  ASSERT_EQ(report.verdict.vetoers.size(), 1u);
  EXPECT_EQ(report.verdict.vetoers[0], PartyId{"beta"});
  EXPECT_NE(report.ruling.find("INVALID"), std::string::npos);
}

TEST(ArbiterTest, ResponderStoreSufficesViaDecideAggregation) {
  // Beta (a responder) never stores other responders' messages directly,
  // but its copy of the decide carries them all.
  ArbiterFixture t;
  t.alpha_obj.value = bytes_of("v1");
  RunHandle h = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();

  std::vector<PartyId> recipients{PartyId{"beta"}};
  ArbitrationReport report = t.arbiter().arbitrate(
      t.fed.coordinator("beta").messages(), h->run_label, &recipients);
  EXPECT_TRUE(report.verdict.agreed);
}

TEST(ArbiterTest, IncompleteRunCannotBeShownValid) {
  // Mallory-style: beta receives a proposal but never a decide.
  ArbiterFixture t;
  // Use a raw message injection: alpha proposes, but we drop alpha's
  // decide by crashing beta... simpler: crash alpha right after beta
  // responds so the decide is never sent.
  Federation::Options options;
  options.reliable.max_retransmits = 3;
  Federation fed({"alpha", "beta"}, options);
  TestRegister a_obj, b_obj;
  fed.register_object("alpha", kObj, a_obj);
  fed.register_object("beta", kObj, b_obj);
  fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));
  a_obj.value = bytes_of("v1");
  RunHandle h =
      fed.coordinator("alpha").propagate_new_state(kObj, a_obj.get_state());
  // Kill alpha while the propose datagram is still in flight (in-flight
  // deliveries land even when the sender has since died, so beta receives
  // the proposal but its response finds no one to talk to).
  fed.scheduler().run_until(fed.scheduler().now() + 500);
  fed.network().set_alive(PartyId{"alpha"}, false);
  fed.settle();

  Arbiter arbiter{fed.make_verifier()};
  std::vector<PartyId> recipients{PartyId{"beta"}};
  // The run never completed, so take its label from the active-run list
  // (the handle's run_label is only set at completion).
  EXPECT_FALSE(h->done());
  auto labels = fed.coordinator("beta").replica(kObj).active_run_labels();
  ASSERT_EQ(labels.size(), 1u);
  ArbitrationReport report = arbiter.arbitrate(
      fed.coordinator("beta").messages(), labels[0], &recipients);
  EXPECT_TRUE(report.proposal_found);
  EXPECT_FALSE(report.decide_found);
  EXPECT_FALSE(report.verdict.agreed);
  EXPECT_NE(report.ruling.find("INCOMPLETE"), std::string::npos);
}

TEST(ArbiterTest, UnknownRunYieldsNothingToArbitrate) {
  ArbiterFixture t;
  ArbitrationReport report =
      t.arbiter().arbitrate(t.fed.coordinator("alpha").messages(), "404:dead");
  EXPECT_FALSE(report.proposal_found);
  EXPECT_NE(report.ruling.find("nothing to arbitrate"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Replica snapshots (crash recovery)
// ---------------------------------------------------------------------------

TEST(Snapshot, EncodeDecodeRoundTrip) {
  ReplicaSnapshot snap;
  snap.connected = true;
  snap.members = {PartyId{"a"}, PartyId{"b"}};
  snap.group_tuple = GroupTuple{3, crypto::Sha256::hash(bytes_of("g")),
                                hash_members(snap.members)};
  snap.agreed_tuple = StateTuple{7, crypto::Sha256::hash(bytes_of("r")),
                                 crypto::Sha256::hash(bytes_of("s"))};
  snap.agreed_state = bytes_of("s");
  snap.last_seen_sequence = 9;
  snap.seen_run_labels = {"1:aa", "2:bb"};
  EXPECT_EQ(ReplicaSnapshot::decode(snap.encode()), snap);
}

TEST(Snapshot, RestoreRebuildsReplicatedState) {
  Federation fed{{"a", "b"}};
  TestRegister a_obj, b_obj;
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));
  a_obj.value = bytes_of("v1");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  ASSERT_TRUE(fed.run_until_done(h));
  fed.settle();

  Replica& replica = fed.coordinator("b").replica(kObj);
  ReplicaSnapshot snap = replica.export_snapshot();

  // Simulated crash: the application object loses its state entirely.
  b_obj.value = bytes_of("amnesia");
  replica.restore_snapshot(snap);
  EXPECT_EQ(b_obj.value, bytes_of("v1"));
  EXPECT_EQ(replica.agreed_tuple().sequence, 1u);
  EXPECT_TRUE(replica.connected());

  // The recovered party participates in new coordinations.
  a_obj.value = bytes_of("v2");
  RunHandle h2 =
      fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  ASSERT_TRUE(fed.run_until_done(h2));
  EXPECT_EQ(h2->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(b_obj.value, bytes_of("v2"));
}

TEST(Snapshot, RestorePreservesReplayProtection) {
  Federation fed{{"a", "b"}};
  TestRegister a_obj, b_obj;
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));
  a_obj.value = bytes_of("v1");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  ASSERT_TRUE(fed.run_until_done(h));
  fed.settle();

  Replica& replica = fed.coordinator("b").replica(kObj);
  ReplicaSnapshot snap = replica.export_snapshot();
  EXPECT_FALSE(snap.seen_run_labels.empty());
  replica.restore_snapshot(snap);
  // A replay of the finished run is still detected after recovery.
  std::uint64_t violations_before = replica.violations_detected();
  // The stored propose is in a's message store; replay it at b.
  const auto& stored = fed.coordinator("a").messages().run(h->run_label);
  ASSERT_FALSE(stored.empty());
  Envelope env{MsgType::kPropose, kObj, stored[0].payload};
  fed.endpoint("a").send(PartyId{"b"}, env.encode());
  fed.settle();
  EXPECT_GT(replica.violations_detected(), violations_before);
}

TEST(Snapshot, RestoreAbortsInFlightLocalRuns) {
  Federation fed{{"a", "b"}};
  TestRegister a_obj, b_obj;
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));
  Replica& replica = fed.coordinator("a").replica(kObj);
  ReplicaSnapshot snap = replica.export_snapshot();

  a_obj.value = bytes_of("in-flight");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  EXPECT_FALSE(h->done());
  replica.restore_snapshot(snap);  // crash before any response arrived
  EXPECT_TRUE(h->done());
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAborted);
  EXPECT_EQ(a_obj.value, bytes_of("genesis"));
}

// ---------------------------------------------------------------------------
// TTP-certified termination (§7)
// ---------------------------------------------------------------------------

/// bob & carol honest; mallory's endpoint is hijacked so she can stall.
struct TtpFixture {
  Federation fed{{"bob", "carol", "mallory"}};
  TestRegister bob_obj, carol_obj, mallory_obj;
  crypto::ChaCha20Rng rng{0x7e57ULL};
  Bytes authenticator;
  std::vector<std::pair<PartyId, Bytes>> inbox;

  TtpFixture() {
    fed.register_object("bob", kObj, bob_obj);
    fed.register_object("carol", kObj, carol_obj);
    fed.coordinator("mallory").register_object(kObj, mallory_obj);
    fed.bootstrap_object(kObj, {"bob", "carol", "mallory"},
                         bytes_of("genesis"));
    fed.enable_ttp_termination(kObj, 500'000);  // 500 ms virtual deadline
    fed.endpoint("mallory").set_handler(
        [this](const PartyId& from, const Bytes& payload) {
          inbox.emplace_back(from, payload);
        });
  }

  ProposeMsg make_proposal(Bytes new_state) {
    const Replica& view = fed.coordinator("bob").replica(kObj);
    ProposeMsg msg;
    Proposal& prop = msg.proposal;
    prop.proposer = PartyId{"mallory"};
    prop.object = kObj;
    prop.group = view.group_tuple();
    prop.agreed = view.agreed_tuple();
    authenticator = rng.bytes(32);
    prop.proposed = StateTuple{view.last_seen_sequence() + 1,
                               crypto::Sha256::hash(authenticator),
                               crypto::Sha256::hash(new_state)};
    prop.payload_hash = crypto::Sha256::hash(new_state);
    msg.payload = std::move(new_state);
    msg.signature = fed.keypair("mallory").sign(prop.signed_bytes());
    return msg;
  }

  void send(const std::string& to, MsgType type, Bytes body) {
    Envelope env{type, kObj, std::move(body)};
    fed.endpoint("mallory").send(PartyId{to}, env.encode());
  }

  std::vector<RespondMsg> responses() {
    std::vector<RespondMsg> out;
    for (const auto& [from, payload] : inbox) {
      Envelope env = Envelope::decode(payload);
      if (env.type == MsgType::kRespond) {
        out.push_back(RespondMsg::decode(env.body));
      }
    }
    return out;
  }
};

TEST(TtpTermination, SilentProposerLeadsToConsistentCertifiedAbort) {
  TtpFixture t;
  ProposeMsg msg = t.make_proposal(bytes_of("abandoned"));
  t.send("bob", MsgType::kPropose, msg.encode());
  t.send("carol", MsgType::kPropose, msg.encode());
  t.fed.settle();  // deadlines fire, TTP aborts, locks release

  EXPECT_EQ(t.fed.termination_ttp().aborts_issued(), 1u);
  EXPECT_TRUE(
      t.fed.coordinator("bob").replica(kObj).active_run_labels().empty());
  EXPECT_TRUE(
      t.fed.coordinator("carol").replica(kObj).active_run_labels().empty());
  // Fail-safe: nothing installed anywhere.
  EXPECT_EQ(t.bob_obj.value, bytes_of("genesis"));
  EXPECT_EQ(t.carol_obj.value, bytes_of("genesis"));
  // Evidence of the certified abort is held.
  EXPECT_FALSE(
      t.fed.coordinator("bob").evidence().find_kind("ttp.abort").empty());
}

TEST(TtpTermination, CrashedProposerTranscriptYieldsCertifiedDecision) {
  // Mallory (playing an honest-but-crashed proposer) collects both
  // responses, then "crashes" before sending decide — but her recovery
  // logic refers the run to the TTP with the full transcript. The TTP
  // certifies the DECISION, and the blocked responders install the state.
  TtpFixture t;
  ProposeMsg msg = t.make_proposal(bytes_of("recovered-state"));
  t.send("bob", MsgType::kPropose, msg.encode());
  t.send("carol", MsgType::kPropose, msg.encode());
  t.fed.scheduler().run_until(t.fed.scheduler().now() + 100'000);
  auto resps = t.responses();
  ASSERT_EQ(resps.size(), 2u);

  TerminationRequest request;
  request.requester = PartyId{"mallory"};
  request.object = kObj;
  request.proposed = msg.proposal.proposed;
  request.propose = msg;
  request.responses = resps;
  request.claimed_recipients = {PartyId{"bob"}, PartyId{"carol"}};
  Bytes signature = t.fed.keypair("mallory").sign(request.signed_bytes());
  t.send("termination-ttp", MsgType::kTerminationRequest,
         request.encode_with_signature(signature));
  t.fed.settle();  // responders' deadlines fetch the cached decision

  EXPECT_EQ(t.fed.termination_ttp().decisions_issued(), 1u);
  EXPECT_EQ(t.fed.termination_ttp().aborts_issued(), 0u);
  EXPECT_EQ(t.bob_obj.value, bytes_of("recovered-state"));
  EXPECT_EQ(t.carol_obj.value, bytes_of("recovered-state"));
  EXPECT_EQ(t.fed.coordinator("bob").replica(kObj).agreed_tuple(),
            t.fed.coordinator("carol").replica(kObj).agreed_tuple());
}

TEST(TtpTermination, ProposerBlockedBySilentResponderIsAborted) {
  // bob proposes with the TTP enabled; mallory (hijacked) never responds.
  TtpFixture t;
  t.bob_obj.value = bytes_of("doomed");
  RunHandle h = t.fed.coordinator("bob").propagate_new_state(
      kObj, t.bob_obj.get_state());
  t.fed.settle();
  ASSERT_TRUE(h->done());
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAborted);
  EXPECT_EQ(h->diagnostic, "TTP-certified abort");
  EXPECT_EQ(t.bob_obj.value, bytes_of("genesis"));  // rolled back
  // carol (which accepted and locked) was released by the same verdict.
  EXPECT_TRUE(
      t.fed.coordinator("carol").replica(kObj).active_run_labels().empty());
  EXPECT_EQ(t.carol_obj.value, bytes_of("genesis"));
}

TEST(TtpTermination, NormalRunsAreUnaffectedByDeadlines) {
  Federation fed{{"a", "b"}};
  TestRegister a_obj, b_obj;
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));
  fed.enable_ttp_termination(kObj, 500'000);
  for (int round = 1; round <= 3; ++round) {
    a_obj.value = bytes_of("v" + std::to_string(round));
    RunHandle h =
        fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
    ASSERT_TRUE(fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
  }
  EXPECT_EQ(fed.termination_ttp().aborts_issued(), 0u);
  EXPECT_EQ(fed.termination_ttp().decisions_issued(), 0u);
  EXPECT_EQ(b_obj.value, bytes_of("v3"));
}

TEST(TtpTermination, ForgedVerdictIsRejected) {
  TtpFixture t;
  ProposeMsg msg = t.make_proposal(bytes_of("forge-target"));
  t.send("bob", MsgType::kPropose, msg.encode());
  t.fed.scheduler().run_until(t.fed.scheduler().now() + 100'000);

  // Mallory forges an "abort" verdict signed by herself.
  TerminationVerdict forged;
  forged.kind = TerminationVerdict::Kind::kAbort;
  forged.object = kObj;
  forged.proposed = msg.proposal.proposed;
  forged.time_micros = 1;
  Bytes bad_sig = t.fed.keypair("mallory").sign(forged.signed_bytes());
  // Send it pretending to be... mallory (the transport is authenticated,
  // so she cannot spoof the TTP's identity — the replica must reject a
  // verdict that does not come from its configured TTP).
  t.send("bob", MsgType::kTerminationVerdict,
         forged.encode_with_signature(bad_sig));
  t.fed.scheduler().run_until(t.fed.scheduler().now() + 100'000);
  // bob is still locked on the run (the forgery was recorded, not obeyed).
  EXPECT_FALSE(
      t.fed.coordinator("bob").replica(kObj).active_run_labels().empty());
  EXPECT_GE(t.fed.coordinator("bob").violations_detected(), 1u);
}

}  // namespace
}  // namespace b2b::core
