// End-to-end tests of the state coordination protocol (§4.3):
// agreement, veto with rollback, the update variant (§4.3.1), concurrent
// proposals, multi-party scaling and the three communication modes.
//
// Most suites are parameterized over both runtimes (deterministic
// simulator and real threads); tests that depend on simulator-only
// instruments (virtual-time stepping, pre-delivery windows) live in the
// *SimOnly suites.
#include <gtest/gtest.h>

#include "b2b/federation.hpp"
#include "common/error.hpp"
#include "tests/support/runtime_param.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

const ObjectId kObj{"doc"};

struct TwoParties {
  // Registers are declared before (destroyed after) the federation, so
  // the runtime's delivery threads stop before the objects they write
  // into die.
  TestRegister alpha_obj;
  TestRegister beta_obj;
  Federation fed;

  explicit TwoParties(RuntimeKind kind = RuntimeKind::kSim)
      : fed({"alpha", "beta"}, test::runtime_options(kind)) {
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));
  }
};

class StateCoordination : public test::RuntimeParamTest {};

TEST_P(StateCoordination, BootstrapEstablishesIdenticalViews) {
  TwoParties t(GetParam());
  Replica& a = t.fed.coordinator("alpha").replica(kObj);
  Replica& b = t.fed.coordinator("beta").replica(kObj);
  EXPECT_EQ(a.agreed_tuple(), b.agreed_tuple());
  EXPECT_EQ(a.group_tuple(), b.group_tuple());
  EXPECT_EQ(t.alpha_obj.value, bytes_of("genesis"));
  EXPECT_EQ(t.beta_obj.value, bytes_of("genesis"));
}

TEST_P(StateCoordination, AgreedOverwriteInstallsEverywhere) {
  TwoParties t(GetParam());
  t.alpha_obj.value = bytes_of("v1");
  RunHandle h = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.beta_obj.value, bytes_of("v1"));
  Replica& a = t.fed.coordinator("alpha").replica(kObj);
  Replica& b = t.fed.coordinator("beta").replica(kObj);
  EXPECT_EQ(a.agreed_tuple(), b.agreed_tuple());
  EXPECT_EQ(a.agreed_tuple().sequence, 1u);
}

TEST_P(StateCoordination, VetoRollsBackProposer) {
  TwoParties t(GetParam());
  t.beta_obj.policy = [](BytesView, const ValidationContext&) {
    return Decision::rejected("policy says no");
  };
  t.alpha_obj.value = bytes_of("v1");
  RunHandle h = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(h->diagnostic, "policy says no");
  ASSERT_EQ(h->vetoers.size(), 1u);
  EXPECT_EQ(h->vetoers[0], PartyId{"beta"});
  // Proposer rolled back; replicas remain in the last agreed state.
  EXPECT_EQ(t.alpha_obj.value, bytes_of("genesis"));
  EXPECT_EQ(t.beta_obj.value, bytes_of("genesis"));
  t.fed.settle();
  Replica& a = t.fed.coordinator("alpha").replica(kObj);
  EXPECT_EQ(a.agreed_tuple().sequence, 0u);
}

TEST_P(StateCoordination, EventsFireOnBothSides) {
  TwoParties t(GetParam());
  t.alpha_obj.value = bytes_of("v1");
  RunHandle h = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();
  EXPECT_EQ(t.alpha_obj.count(CoordEvent::Kind::kStateAgreed), 1u);
  EXPECT_EQ(t.beta_obj.count(CoordEvent::Kind::kStateInstalled), 1u);
}

TEST_P(StateCoordination, SequencesAdvanceAcrossRuns) {
  TwoParties t(GetParam());
  for (int i = 1; i <= 5; ++i) {
    t.alpha_obj.value = bytes_of("v" + std::to_string(i));
    RunHandle h = t.fed.coordinator("alpha").propagate_new_state(
        kObj, t.alpha_obj.get_state());
    ASSERT_TRUE(t.fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed) << "round " << i;
    t.fed.settle();
  }
  Replica& a = t.fed.coordinator("alpha").replica(kObj);
  Replica& b = t.fed.coordinator("beta").replica(kObj);
  EXPECT_EQ(a.agreed_tuple().sequence, 5u);
  EXPECT_EQ(b.agreed_tuple().sequence, 5u);
  EXPECT_EQ(t.beta_obj.value, bytes_of("v5"));
}

TEST_P(StateCoordination, AlternatingProposersStayConsistent) {
  TwoParties t(GetParam());
  for (int i = 1; i <= 4; ++i) {
    bool alpha_turn = (i % 2) == 1;
    TestRegister& obj = alpha_turn ? t.alpha_obj : t.beta_obj;
    Coordinator& coord =
        t.fed.coordinator(alpha_turn ? "alpha" : "beta");
    obj.value = bytes_of("round" + std::to_string(i));
    RunHandle h = coord.propagate_new_state(kObj, obj.get_state());
    ASSERT_TRUE(t.fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed) << "round " << i;
    t.fed.settle();
    EXPECT_EQ(t.alpha_obj.value, t.beta_obj.value);
  }
}

TEST_P(StateCoordination, NullTransitionAbortsLocally) {
  TwoParties t(GetParam());
  RunHandle h = t.fed.coordinator("alpha").propagate_new_state(
      kObj, bytes_of("genesis"));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAborted);
  EXPECT_EQ(h->diagnostic, "null state transition");
}

TEST_P(StateCoordination, ReinstallingEarlierStateIsLegitimate) {
  // §4.4 note: uniqueness refers to the tuple, not the state — proposing
  // re-installation of an earlier state is allowed.
  TwoParties t(GetParam());
  t.alpha_obj.value = bytes_of("v1");
  RunHandle h1 = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h1));
  t.fed.settle();
  t.alpha_obj.value = bytes_of("genesis");  // back to the original content
  RunHandle h2 = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h2));
  EXPECT_EQ(h2->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.beta_obj.value, bytes_of("genesis"));
}

TEST_P(StateCoordination, UpdateVariantAppliesDelta) {
  TwoParties t(GetParam());
  t.alpha_obj.value = bytes_of("genesis+more");
  t.alpha_obj.pending_suffix = bytes_of("+more");
  RunHandle h = t.fed.coordinator("alpha").propagate_update(
      kObj, t.alpha_obj.get_update(), t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.beta_obj.value, bytes_of("genesis+more"));
}

TEST_P(StateCoordination, UpdateNotYieldingProposedStateIsRejected) {
  TwoParties t(GetParam());
  // Claim the update yields "genesis!" but send a delta producing
  // "genesis?": beta must reject and flag the violation.
  t.alpha_obj.value = bytes_of("genesis!");
  RunHandle h = t.fed.coordinator("alpha").propagate_update(
      kObj, bytes_of("?"), t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(t.beta_obj.value, bytes_of("genesis"));
  EXPECT_GE(t.fed.coordinator("beta").violations_detected(), 1u);
}

TEST(StateCoordinationSimOnly, ConcurrentProposalsDoNotDiverge) {
  TwoParties t;
  t.alpha_obj.value = bytes_of("from-alpha");
  t.beta_obj.value = bytes_of("from-beta");
  RunHandle ha = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  RunHandle hb = t.fed.coordinator("beta").propagate_new_state(
      kObj, t.beta_obj.get_state());
  t.fed.settle();
  ASSERT_TRUE(ha->done());
  ASSERT_TRUE(hb->done());
  // Both sides are busy with their own proposal, so both runs are vetoed —
  // and crucially the replicas converge back to the agreed state.
  EXPECT_EQ(ha->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(hb->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(t.alpha_obj.value, bytes_of("genesis"));
  EXPECT_EQ(t.beta_obj.value, bytes_of("genesis"));
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).agreed_tuple(),
            t.fed.coordinator("beta").replica(kObj).agreed_tuple());
}

TEST(StateCoordinationSimOnly, ProposerBusyAbortsSecondLocalProposal) {
  TwoParties t;
  t.alpha_obj.value = bytes_of("first");
  RunHandle h1 = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  // Do not run the scheduler: the first run is still active.
  RunHandle h2 = t.fed.coordinator("alpha").propagate_new_state(
      kObj, bytes_of("second"));
  EXPECT_EQ(h2->outcome, RunResult::Outcome::kAborted);
  ASSERT_TRUE(t.fed.run_until_done(h1));
  EXPECT_EQ(h1->outcome, RunResult::Outcome::kAgreed);
}

// --- multi-party ------------------------------------------------------------

class MultiPartyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, RuntimeKind>> {
 protected:
  std::size_t group_size() const { return std::get<0>(GetParam()); }
  Federation::Options options() const {
    return test::runtime_options(std::get<1>(GetParam()));
  }
};

TEST_P(MultiPartyTest, AgreementAcrossNParties) {
  std::size_t n = group_size();
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) names.push_back("org" + std::to_string(i));
  std::vector<TestRegister> objects(n);
  Federation fed{names, options()};
  for (std::size_t i = 0; i < n; ++i) {
    fed.register_object(names[i], kObj, objects[i]);
  }
  fed.bootstrap_object(kObj, names, bytes_of("genesis"));

  objects[0].value = bytes_of("agreed-by-all");
  RunHandle h =
      fed.coordinator(names[0]).propagate_new_state(kObj, objects[0].get_state());
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(objects[i].value, bytes_of("agreed-by-all")) << names[i];
  }
}

TEST_P(MultiPartyTest, SingleVetoBlocksEveryone) {
  std::size_t n = group_size();
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) names.push_back("org" + std::to_string(i));
  std::vector<TestRegister> objects(n);
  Federation fed{names, options()};
  for (std::size_t i = 0; i < n; ++i) {
    fed.register_object(names[i], kObj, objects[i]);
  }
  fed.bootstrap_object(kObj, names, bytes_of("genesis"));
  // The last organisation vetoes everything.
  objects[n - 1].policy = [](BytesView, const ValidationContext&) {
    return Decision::rejected("no");
  };

  objects[0].value = bytes_of("contested");
  RunHandle h =
      fed.coordinator(names[0]).propagate_new_state(kObj, objects[0].get_state());
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  fed.settle();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(objects[i].value, bytes_of("genesis")) << names[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    GroupSizes, MultiPartyTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(RuntimeKind::kSim,
                                         RuntimeKind::kThreaded,
                                         RuntimeKind::kTcp)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, RuntimeKind>>&
           info) {
      return "N" + std::to_string(std::get<0>(info.param)) +
             test::runtime_suffix(std::get<1>(info.param));
    });

// --- message complexity (the §7 O(N) claim, unit-level check) ---------------

TEST_P(StateCoordination, ProtocolUsesExactly3NMinus1Messages) {
  for (std::size_t n : {2u, 4u, 7u}) {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < n; ++i) {
      names.push_back("org" + std::to_string(i));
    }
    Federation fed{names, test::runtime_options(GetParam())};
    std::vector<TestRegister> objects(n);
    for (std::size_t i = 0; i < n; ++i) {
      fed.register_object(names[i], kObj, objects[i]);
    }
    fed.bootstrap_object(kObj, names, bytes_of("genesis"));

    objects[0].value = bytes_of("x");
    RunHandle h = fed.coordinator(names[0]).propagate_new_state(
        kObj, objects[0].get_state());
    ASSERT_TRUE(fed.run_until_done(h));
    fed.settle();

    std::uint64_t total = 0;
    for (const auto& name : names) {
      total += fed.coordinator(name).protocol_stats().envelopes_sent;
    }
    // propose to n-1, n-1 responses, decide to n-1.
    EXPECT_EQ(total, 3 * (n - 1)) << "n=" << n;
  }
}

// --- communication modes (§5) ------------------------------------------------

class ControllerModes : public test::RuntimeParamTest {};

TEST_P(ControllerModes, SyncLeaveBlocksAndInstalls) {
  TwoParties t(GetParam());
  Controller ctl = t.fed.make_controller("alpha", kObj);
  ctl.enter();
  ctl.overwrite();
  t.alpha_obj.value = bytes_of("sync-write");
  ctl.leave();  // blocks until agreed
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).agreed_tuple().sequence,
            1u);
  t.fed.settle();
  EXPECT_EQ(t.beta_obj.value, bytes_of("sync-write"));
}

TEST_P(ControllerModes, SyncLeaveThrowsOnVeto) {
  TwoParties t(GetParam());
  t.beta_obj.policy = [](BytesView, const ValidationContext&) {
    return Decision::rejected("nope");
  };
  Controller ctl = t.fed.make_controller("alpha", kObj);
  ctl.enter();
  ctl.overwrite();
  t.alpha_obj.value = bytes_of("doomed");
  EXPECT_THROW(ctl.leave(), ValidationError);
  EXPECT_EQ(t.alpha_obj.value, bytes_of("genesis"));  // rolled back
}

TEST_P(ControllerModes, ExamineScopeTriggersNoCoordination) {
  TwoParties t(GetParam());
  Controller ctl = t.fed.make_controller("alpha", kObj);
  ctl.enter();
  ctl.examine();
  Bytes read = t.alpha_obj.get_state();
  ctl.leave();
  EXPECT_EQ(read, bytes_of("genesis"));
  EXPECT_EQ(t.fed.coordinator("alpha").protocol_stats().envelopes_sent, 0u);
}

TEST_P(ControllerModes, UnchangedOverwriteScopeIsElided) {
  TwoParties t(GetParam());
  Controller ctl = t.fed.make_controller("alpha", kObj);
  ctl.enter();
  ctl.overwrite();
  // No actual change made.
  ctl.leave();
  EXPECT_EQ(t.fed.coordinator("alpha").protocol_stats().envelopes_sent, 0u);
}

TEST_P(ControllerModes, NestedScopesRollUpToOneCoordination) {
  TwoParties t(GetParam());
  Controller ctl = t.fed.make_controller("alpha", kObj);
  ctl.enter();
  ctl.overwrite();
  t.alpha_obj.value = bytes_of("a");
  ctl.enter();  // nested
  ctl.overwrite();
  t.alpha_obj.value = bytes_of("ab");
  ctl.leave();  // inner: no coordination yet
  EXPECT_EQ(t.fed.coordinator("alpha").protocol_stats().envelopes_sent, 0u);
  ctl.leave();  // outer: one coordination event
  t.fed.settle();
  EXPECT_EQ(t.beta_obj.value, bytes_of("ab"));
  EXPECT_EQ(t.fed.coordinator("alpha")
                .protocol_stats()
                .sent_by_type.at(MsgType::kPropose),
            1u);
}

TEST(ControllerModesSimOnly, DeferredSyncCompletesAtCoordCommit) {
  TwoParties t;
  Controller ctl =
      t.fed.make_controller("alpha", kObj, Controller::Mode::kDeferredSync);
  ctl.enter();
  ctl.overwrite();
  t.alpha_obj.value = bytes_of("deferred");
  ctl.leave();  // returns immediately
  EXPECT_FALSE(ctl.last_handle()->done());
  RunHandle h = ctl.coord_commit();
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.beta_obj.value, bytes_of("deferred"));
}

TEST(ControllerModesSimOnly, AsyncSignalsCompletionViaCallback) {
  TwoParties t;
  Controller ctl =
      t.fed.make_controller("alpha", kObj, Controller::Mode::kAsync);
  ctl.enter();
  ctl.overwrite();
  t.alpha_obj.value = bytes_of("async");
  ctl.leave();
  bool signalled = false;
  ctl.last_handle()->on_complete = [&](const RunResult& r) {
    signalled = (r.outcome == RunResult::Outcome::kAgreed);
  };
  t.fed.settle();
  EXPECT_TRUE(signalled);
  EXPECT_EQ(t.alpha_obj.count(CoordEvent::Kind::kStateAgreed), 1u);
}

TEST_P(ControllerModes, AccessOutsideScopeThrows) {
  TwoParties t(GetParam());
  Controller ctl = t.fed.make_controller("alpha", kObj);
  EXPECT_THROW(ctl.overwrite(), Error);
  EXPECT_THROW(ctl.examine(), Error);
  EXPECT_THROW(ctl.update(), Error);
  EXPECT_THROW(ctl.leave(), Error);
}

TEST_P(ControllerModes, UpdateModeUsesDeltaCoordination) {
  TwoParties t(GetParam());
  Controller ctl = t.fed.make_controller("alpha", kObj);
  ctl.enter();
  ctl.update();
  t.alpha_obj.value = bytes_of("genesis++");
  t.alpha_obj.pending_suffix = bytes_of("++");
  ctl.leave();
  t.fed.settle();
  EXPECT_EQ(t.beta_obj.value, bytes_of("genesis++"));
}

B2B_INSTANTIATE_RUNTIME_SUITE(StateCoordination);
B2B_INSTANTIATE_RUNTIME_SUITE(ControllerModes);

}  // namespace
}  // namespace b2b::core
