// Run pipelining (DESIGN.md §13): the cross-runtime equivalence battery,
// the batch crash-point campaign, and the adversarial batch/anchor tests.
//
// The battery's core claim: a pipelined batch of K state changes — one
// signed propose carrying a hash-chained batch, one signed response per
// recipient, one decide revealing every per-item authenticator — installs
// a tuple sequence BIT-FOR-BIT identical to what K sequential runs would
// have produced, on all four runtimes and under both lock modes. The
// fingerprints deliberately mix only protocol-observable state (agreed
// tuples, group tuples, object values), never evidence-log sizes: the two
// modes legitimately produce different evidence volumes.
//
// CI sweeps the battery under several seeds via B2B_PIPELINE_SEED.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "b2b/arbiter.hpp"
#include "b2b/federation.hpp"
#include "common/bytes.hpp"
#include "common/error.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "tests/support/crash_points.hpp"
#include "tests/support/runtime_param.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

namespace fs = std::filesystem;

const ObjectId kObj{"ledger"};

/// CI sweeps the battery under several seeds via this env var.
std::uint64_t pipeline_seed() {
  const char* seed = std::getenv("B2B_PIPELINE_SEED");
  return seed != nullptr ? std::strtoull(seed, nullptr, 10) : 1;
}

std::string fresh_journal_root(const std::string& tag) {
  fs::path root = fs::temp_directory_path() / ("b2b_pipeline_" + tag);
  fs::remove_all(root);
  return root.string();
}

/// Three organisations sharing one object, pipelining enabled.
struct Parties {
  // Registers are declared before (destroyed after) the federation, so
  // the runtime's delivery threads stop before the objects they write
  // into die.
  TestRegister alpha_obj;
  TestRegister beta_obj;
  TestRegister gamma_obj;
  Federation fed;

  Parties(Federation::Options options)
      : fed({"alpha", "beta", "gamma"}, options) {
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.register_object("gamma", kObj, gamma_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta", "gamma"},
                         bytes_of("genesis"));
  }

  TestRegister& obj(const std::string& name) {
    if (name == "alpha") return alpha_obj;
    if (name == "beta") return beta_obj;
    return gamma_obj;
  }

  /// Agree an initial state so the deployment has validated state.
  void warm_up() {
    alpha_obj.value = bytes_of("warm");
    RunHandle h = fed.coordinator("alpha").propagate_new_state(
        kObj, alpha_obj.get_state());
    ASSERT_TRUE(fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
  }

  void check_safety() {
    const StateTuple& agreed =
        fed.coordinator("alpha").replica(kObj).agreed_tuple();
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = fed.coordinator(name);
      EXPECT_EQ(coord.replica(kObj).agreed_tuple(), agreed) << name;
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
    }
    EXPECT_EQ(alpha_obj.value, beta_obj.value);
    EXPECT_EQ(alpha_obj.value, gamma_obj.value);
  }

  /// Fingerprint of everything the protocol agrees on: agreed + group
  /// tuples and object values at every party. Deliberately does NOT mix
  /// evidence-log sizes or tails — pipelined and sequential execution
  /// legitimately write different evidence volumes.
  std::string state_digest() {
    crypto::Sha256 hasher;
    auto mix = [&](const Bytes& bytes) {
      const std::uint64_t n = bytes.size();
      Bytes len(8);
      for (int i = 0; i < 8; ++i) {
        len[i] = static_cast<std::uint8_t>(n >> (8 * i));
      }
      hasher.update(len);
      hasher.update(bytes);
    };
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = fed.coordinator(name);
      mix(coord.replica(kObj).agreed_tuple().encode());
      mix(coord.replica(kObj).group_tuple().encode());
      mix(obj(name).value);
    }
    return to_hex(crypto::digest_bytes(hasher.finish()));
  }
};

/// The canonical mixed batch: an overwrite followed by two updates.
std::vector<Replica::BatchOp> mixed_batch() {
  std::vector<Replica::BatchOp> ops;
  ops.push_back({false, bytes_of("v1"), bytes_of("v1")});
  ops.push_back({true, bytes_of("+x"), bytes_of("v1+x")});
  ops.push_back({true, bytes_of("+y"), bytes_of("v1+x+y")});
  return ops;
}

// ---------------------------------------------------------------------------
// The cross-runtime equivalence battery
// ---------------------------------------------------------------------------

class PipelineEquivalence : public test::RuntimeParamTest {};

// One federation runs the canonical scenario as K sequential runs, a twin
// federation (same seed) runs it as ONE pipelined batch. The installed
// tuples must be bit-for-bit identical: the batch proposer draws its K
// authenticators in exactly the order K sequential proposals would have,
// so even the rand_hash commitments agree.
TEST_P(PipelineEquivalence, BatchMatchesSequentialBitForBit) {
  const std::uint64_t seed = pipeline_seed();

  Federation::Options seq_options = options(seed);
  Parties sequential(seq_options);
  sequential.warm_up();
  // Sequential proposers pre-mutate (invariant 2), as a Controller would.
  sequential.alpha_obj.value = bytes_of("v1");
  RunHandle s1 = sequential.fed.coordinator("alpha").propagate_new_state(
      kObj, sequential.alpha_obj.get_state());
  ASSERT_TRUE(sequential.fed.run_until_done(s1));
  ASSERT_EQ(s1->outcome, RunResult::Outcome::kAgreed) << s1->diagnostic;
  sequential.fed.settle();
  for (const char* suffix : {"+x", "+y"}) {
    TestRegister& reg = sequential.alpha_obj;
    reg.pending_suffix = bytes_of(suffix);
    reg.value.insert(reg.value.end(), reg.pending_suffix.begin(),
                     reg.pending_suffix.end());
    RunHandle h = sequential.fed.coordinator("alpha").propagate_update(
        kObj, reg.get_update(), reg.get_state());
    ASSERT_TRUE(sequential.fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
    sequential.fed.settle();
  }
  sequential.check_safety();

  Federation::Options batch_options = options(seed);
  batch_options.pipeline = true;
  Parties pipelined(batch_options);
  pipelined.warm_up();
  // Batch proposers do NOT pre-mutate: the replica applies the final
  // state itself once the batch validates.
  RunHandle b = pipelined.fed.coordinator("alpha").propagate_batch(
      kObj, mixed_batch());
  ASSERT_TRUE(pipelined.fed.run_until_done(b));
  ASSERT_EQ(b->outcome, RunResult::Outcome::kAgreed) << b->diagnostic;
  pipelined.fed.settle();
  pipelined.check_safety();

  // Bit-for-bit: the full agreed tuple (sequence, rand_hash commitment,
  // state hash) — not just the value — matches the sequential twin.
  EXPECT_EQ(pipelined.fed.coordinator("alpha").replica(kObj).agreed_tuple(),
            sequential.fed.coordinator("alpha").replica(kObj).agreed_tuple());
  EXPECT_EQ(pipelined.alpha_obj.value, bytes_of("v1+x+y"));
  EXPECT_EQ(pipelined.state_digest(), sequential.state_digest());

  // The whole point: K state changes for ONE propose/decide round. The
  // sequential twin paid one signed propose per change.
  const auto seq_stats = sequential.fed.coordinator("alpha").protocol_stats();
  const auto bat_stats = pipelined.fed.coordinator("alpha").protocol_stats();
  EXPECT_EQ(seq_stats.sent_by_type.at(MsgType::kPropose), 4u * 2u);
  EXPECT_EQ(bat_stats.sent_by_type.at(MsgType::kBatchPropose), 2u);
  EXPECT_EQ(bat_stats.sent_by_type.at(MsgType::kBatchDecide), 2u);
}

// A responder's veto kills the WHOLE batch: nothing is installed at
// anyone, the proposer rolls back, and no violation is recorded (a veto
// is legitimate policy, not misbehaviour).
TEST_P(PipelineEquivalence, VetoedBatchInstallsNothing) {
  Federation::Options opts = options(pipeline_seed());
  opts.pipeline = true;
  Parties p(opts);
  p.warm_up();
  p.beta_obj.policy = [](BytesView proposed, const ValidationContext&) {
    std::string value(proposed.begin(), proposed.end());
    return value.find("poison") != std::string::npos
               ? Decision::rejected("poisoned value")
               : Decision::accepted();
  };

  std::vector<Replica::BatchOp> ops;
  ops.push_back({false, bytes_of("fine"), bytes_of("fine")});
  ops.push_back({false, bytes_of("poison"), bytes_of("poison")});
  RunHandle h = p.fed.coordinator("alpha").propagate_batch(kObj, ops);
  ASSERT_TRUE(p.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  p.fed.settle();

  EXPECT_EQ(p.alpha_obj.value, bytes_of("warm"));
  EXPECT_EQ(p.fed.coordinator("alpha").replica(kObj).agreed_tuple().sequence,
            1u);
  p.check_safety();
}

// Every party's anchored evidence log validates offline: the arbiter,
// holding only the signer's public key, confirms the chain and every
// periodic signed chain-head anchor.
TEST_P(PipelineEquivalence, EvidenceAnchorsValidateOffline) {
  Federation::Options opts = options(pipeline_seed());
  opts.pipeline = true;
  opts.evidence_anchor_interval = 4;
  Parties p(opts);
  p.warm_up();
  RunHandle h = p.fed.coordinator("alpha").propagate_batch(kObj,
                                                           mixed_batch());
  ASSERT_TRUE(p.fed.run_until_done(h));
  ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
  p.fed.settle();
  p.check_safety();

  for (const std::string name : {"alpha", "beta", "gamma"}) {
    Coordinator& coord = p.fed.coordinator(name);
    const Arbiter::AnchorReport report = Arbiter::verify_anchored_spans(
        coord.evidence(), coord.public_key());
    EXPECT_TRUE(report.chain_intact) << name;
    EXPECT_GT(report.anchors_seen, 0u) << name;
    EXPECT_TRUE(report.all_anchors_valid)
        << name << ": "
        << (report.problems.empty() ? "" : report.problems.front());
    EXPECT_TRUE(report.highest_anchored_index.has_value()) << name;
  }
}

B2B_INSTANTIATE_RUNTIME_SUITE(PipelineEquivalence);

// The LockMode ablation: on the deterministic simulator the pipelined
// scenario's outcome digest is identical under per-object and coarse
// locking (sharding must not change what a batch agrees on).
TEST(PipelineLockModeAblation, CoarseAndPerObjectAgree) {
  const std::uint64_t seed = pipeline_seed();
  std::string digests[2];
  const Coordinator::LockMode modes[2] = {Coordinator::LockMode::kPerObject,
                                          Coordinator::LockMode::kCoarse};
  for (int i = 0; i < 2; ++i) {
    Federation::Options opts =
        test::runtime_options(RuntimeKind::kSim, seed);
    opts.pipeline = true;
    opts.lock_mode = modes[i];
    Parties p(opts);
    p.warm_up();
    RunHandle h = p.fed.coordinator("alpha").propagate_batch(kObj,
                                                             mixed_batch());
    ASSERT_TRUE(p.fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
    p.fed.settle();
    p.check_safety();
    digests[i] = p.state_digest();
  }
  EXPECT_EQ(digests[0], digests[1]);
}

// ---------------------------------------------------------------------------
// The batch crash-point campaign
// ---------------------------------------------------------------------------

Federation::Options campaign_options(const std::string& tag, RuntimeKind kind,
                                     std::uint64_t seed) {
  Federation::Options options = test::runtime_options(kind, seed);
  options.pipeline = true;
  options.journal_root = fresh_journal_root(tag);
  if (kind != RuntimeKind::kSim) {
    options.run_probe_interval_micros = 200'000;
  }
  return options;
}

/// One batch campaign case on the deterministic simulator: arm `point` at
/// `crasher`, open a 3-item batch at alpha, kill the crasher when the
/// point fires, restart it from its journal, and assert safety (identical
/// agreed tuples, intact chains, zero violations) and liveness (the batch
/// terminates — completed, or never-legally-existed for pre-journal
/// points). Returns a deployment fingerprint for the determinism check.
Bytes run_batch_sim_case(const std::string& point, const std::string& crasher,
                         std::uint64_t seed,
                         const std::string& tag_suffix = "") {
  const std::string tag =
      test::sanitized_point(point) + "_" + crasher + tag_suffix;
  Bytes fingerprint;
  {
    Parties p(campaign_options(tag, RuntimeKind::kSim, seed));
    p.warm_up();

    p.fed.coordinator(crasher).arm_crash_point(point);
    std::vector<Replica::BatchOp> ops;
    ops.push_back({false, bytes_of("v1"), bytes_of("v1")});
    ops.push_back({false, bytes_of("v2"), bytes_of("v2")});
    ops.push_back({false, bytes_of("v3"), bytes_of("v3")});
    RunHandle h = p.fed.coordinator("alpha").propagate_batch(kObj,
                                                             std::move(ops));
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator(crasher).crashed(); }))
        << "crash point never hit: " << point;

    p.fed.crash_party(crasher);
    // Bounded downtime: frames to the dead party drop un-acked and keep
    // being retransmitted.
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party(crasher);
    p.fed.register_object(crasher, kObj, p.obj(crasher));
    EXPECT_TRUE(revived.recovered());
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    // A batch killed before its journal barrier never legally existed;
    // anything journaled resumes and finishes — including the
    // half-decided batch ("batch-decide.journaled"), which must finish
    // to the journaled outcome.
    const bool never_existed = point == "batch-open.pre-journal" ||
                               point == "batch-chain-head.signed";
    const std::uint64_t expected_seq = never_existed ? 1u : 4u;
    auto converged = [&] {
      Replica& a = p.fed.coordinator("alpha").replica(kObj);
      Replica& b = p.fed.coordinator("beta").replica(kObj);
      Replica& g = p.fed.coordinator("gamma").replica(kObj);
      return a.agreed_tuple().sequence == expected_seq &&
             a.agreed_tuple() == b.agreed_tuple() &&
             a.agreed_tuple() == g.agreed_tuple() && !a.busy() &&
             !b.busy() && !g.busy();
    };
    EXPECT_TRUE(p.fed.executor().run_until(converged))
        << "deployment did not converge after recovery at " << point;
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    p.fed.settle();

    const Bytes expected_value =
        never_existed ? bytes_of("warm") : bytes_of("v3");
    EXPECT_EQ(p.alpha_obj.value, expected_value) << point;
    p.check_safety();

    // Deployment fingerprint for the determinism check: evidence tails
    // (they hash everything before them), agreed tuples, object values,
    // executed event count.
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = p.fed.coordinator(name);
      const store::EvidenceLog& evidence = coord.evidence();
      fingerprint.push_back(static_cast<std::uint8_t>(evidence.size()));
      if (!evidence.empty()) {
        Bytes tail = evidence.at(evidence.size() - 1).encode();
        fingerprint.insert(fingerprint.end(), tail.begin(), tail.end());
      }
      Bytes tuple = coord.replica(kObj).agreed_tuple().encode();
      fingerprint.insert(fingerprint.end(), tuple.begin(), tuple.end());
      const Bytes& value = p.obj(name).value;
      fingerprint.insert(fingerprint.end(), value.begin(), value.end());
    }
    Bytes events =
        bytes_of(std::to_string(p.fed.scheduler().events_executed()));
    fingerprint.insert(fingerprint.end(), events.begin(), events.end());
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_pipeline_" + tag));
  return fingerprint;
}

TEST(PipelineCrashCampaign, EveryBatchProposerPoint) {
  for (const std::string& point : test::kBatchProposerPoints) {
    SCOPED_TRACE(point);
    run_batch_sim_case(point, "alpha", test::campaign_seed());
  }
}

TEST(PipelineCrashCampaign, EveryBatchResponderPoint) {
  for (const std::string& point : test::kBatchResponderPoints) {
    SCOPED_TRACE(point);
    run_batch_sim_case(point, "beta", test::campaign_seed());
  }
}

// Recovery is deterministic: the same crash at the same seed reproduces
// the identical post-recovery deployment, bit for bit.
TEST(PipelineCrashCampaign, RecoveryIsDeterministic) {
  for (const std::string point :
       {"batch-decide.journaled", "batch-respond.journaled"}) {
    SCOPED_TRACE(point);
    const std::string crasher =
        point.rfind("batch-respond", 0) == 0 ? "beta" : "alpha";
    Bytes first =
        run_batch_sim_case(point, crasher, test::campaign_seed(), "_a");
    Bytes second =
        run_batch_sim_case(point, crasher, test::campaign_seed(), "_b");
    EXPECT_EQ(first, second);
  }
}

/// A representative batch campaign case on a real-time runtime.
void run_batch_realtime_case(const std::string& point,
                             const std::string& crasher, RuntimeKind kind) {
  const std::string tag = test::sanitized_point(point) + "_" + crasher + "_" +
                          test::runtime_suffix(kind);
  {
    Parties p(campaign_options(tag, kind, /*seed=*/5));
    p.warm_up();

    p.fed.coordinator(crasher).arm_crash_point(point);
    std::vector<Replica::BatchOp> ops;
    ops.push_back({false, bytes_of("v1"), bytes_of("v1")});
    ops.push_back({false, bytes_of("v2"), bytes_of("v2")});
    ops.push_back({false, bytes_of("v3"), bytes_of("v3")});
    RunHandle h = p.fed.coordinator("alpha").propagate_batch(kObj,
                                                             std::move(ops));
    ASSERT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator(crasher).crashed(); }));

    p.fed.crash_party(crasher);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    Coordinator& revived = p.fed.recover_party(crasher);
    p.fed.register_object(crasher, kObj, p.obj(crasher));
    EXPECT_TRUE(revived.recovered());
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    auto all_done = [&] {
      for (const RunHandle& r : resumed) {
        if (!r->done()) return false;
      }
      // The original handle only resolves when the proposer survives; a
      // crashed proposer's batch continues under its resumed handle.
      return crasher == "alpha" || h->done();
    };
    ASSERT_TRUE(p.fed.executor().run_until(all_done));
    p.fed.settle();

    EXPECT_EQ(p.alpha_obj.value, bytes_of("v3"));
    EXPECT_EQ(
        p.fed.coordinator(crasher).replica(kObj).agreed_tuple().sequence, 4u);
    p.check_safety();
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_pipeline_" + tag));
}

TEST(PipelineCrashCampaignThreaded, ProposerCrashAfterBatchDecideJournaled) {
  run_batch_realtime_case("batch-decide.journaled", "alpha",
                          RuntimeKind::kThreaded);
}

TEST(PipelineCrashCampaignThreaded, ResponderCrashAfterBatchRespondJournaled) {
  run_batch_realtime_case("batch-respond.journaled", "beta",
                          RuntimeKind::kThreaded);
}

// ---------------------------------------------------------------------------
// Adversarial batch / anchor tests
// ---------------------------------------------------------------------------

/// Runs the canonical pipelined scenario and returns the state digest;
/// `attack` (may be null) runs after the batch completes but before the
/// digest is taken. The attacked deployment must end bit-identical to the
/// unattacked twin.
std::string run_attacked_twin(std::uint64_t seed,
                              const std::function<void(Parties&)>& attack) {
  Federation::Options opts = test::runtime_options(RuntimeKind::kSim, seed);
  opts.pipeline = true;
  Parties p(opts);
  p.warm_up();
  RunHandle h =
      p.fed.coordinator("alpha").propagate_batch(kObj, mixed_batch());
  EXPECT_TRUE(p.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
  p.fed.settle();
  if (attack) {
    attack(p);
    p.fed.settle();
  }
  p.check_safety();  // zero violations — no honest party is blamed
  return p.state_digest();
}

// A replayed (stale) batch decide for an already-closed run must be
// inert: no state change, no violation blamed on the honest proposer,
// and the attacked deployment bit-identical to the unattacked twin.
TEST(PipelineAdversarial, ReplayedStaleBatchDecideIsInert) {
  const std::uint64_t seed = pipeline_seed();
  const std::string control = run_attacked_twin(seed, nullptr);
  const std::string attacked = run_attacked_twin(seed, [](Parties& p) {
    // The wire-level replay: beta's stored copy of alpha's batch decide,
    // re-delivered verbatim.
    const std::string label =
        p.fed.coordinator("beta").replica(kObj).agreed_tuple().label();
    Bytes decide_body;
    for (const auto& stored : p.fed.coordinator("beta").messages().run(label)) {
      if (stored.direction == "received" && stored.kind == "batch-decide") {
        decide_body = stored.payload;
      }
    }
    ASSERT_FALSE(decide_body.empty()) << "no stored batch decide to replay";
    Envelope env;
    env.type = MsgType::kBatchDecide;
    env.object = kObj;
    env.body = std::move(decide_body);
    p.fed.transport("alpha").send(PartyId{"beta"}, env.encode());
  });
  EXPECT_EQ(attacked, control);
}

// A dishonest proposer who mutates a batch member AFTER signing the chain
// head is caught by every honest responder: the recomputed chain head no
// longer matches the signed commitment. Honest parties install nothing,
// blame only the attacker, and end bit-identical to a twin that never saw
// the batch.
TEST(PipelineAdversarial, MutatedBatchMemberIsRejectedAndBlamed) {
  const std::uint64_t seed = pipeline_seed();

  auto run_twin = [&](bool attack) {
    TestRegister bob_obj, carol_obj, mallory_obj;
    Federation::Options opts = test::runtime_options(RuntimeKind::kSim, seed);
    opts.pipeline = true;
    Federation fed({"bob", "carol", "mallory"}, opts);
    fed.register_object("bob", kObj, bob_obj);
    fed.register_object("carol", kObj, carol_obj);
    fed.register_object("mallory", kObj, mallory_obj);
    fed.bootstrap_object(kObj, {"bob", "carol", "mallory"},
                         bytes_of("genesis"));
    // Detach mallory's (honest) coordinator from her endpoint; the test
    // now speaks for her.
    fed.transport("mallory").set_handler([](const PartyId&, const Bytes&) {});

    if (attack) {
      const Replica& view = fed.coordinator("mallory").replica(kObj);
      crypto::ChaCha20Rng rng{0xbadbadULL};
      BatchProposeMsg msg;
      msg.proposal.proposer = PartyId{"mallory"};
      msg.proposal.object = kObj;
      msg.proposal.group = view.group_tuple();
      msg.proposal.agreed = view.agreed_tuple();
      for (std::uint64_t i = 0; i < 2; ++i) {
        BatchItem item;
        item.is_update = false;
        item.payload = bytes_of("m" + std::to_string(i));
        item.proposed =
            StateTuple{view.agreed_tuple().sequence + 1 + i,
                       crypto::Sha256::hash(rng.bytes(32)),
                       crypto::Sha256::hash(item.payload)};
        msg.items.push_back(std::move(item));
      }
      msg.proposal.proposed = msg.items.back().proposed;
      msg.proposal.is_update = true;
      msg.proposal.payload_hash =
          batch_chain_head(kObj, msg.proposal.agreed, msg.items);
      msg.signature = fed.keypair("mallory").sign(
          batch_proposal_signed_bytes(msg.proposal));
      // The mutation: one batch member's payload is swapped after the
      // chain head was signed.
      msg.items[0].payload = bytes_of("tampered");

      Envelope env;
      env.type = MsgType::kBatchPropose;
      env.object = kObj;
      env.body = msg.encode();
      fed.transport("mallory").send(PartyId{"bob"}, env.encode());
      fed.transport("mallory").send(PartyId{"carol"}, env.encode());
      fed.settle();

      // Both honest parties caught it — and blamed mallory, nobody else.
      for (TestRegister* reg : {&bob_obj, &carol_obj}) {
        std::size_t violations = 0;
        for (const CoordEvent& event : reg->events) {
          if (event.kind != CoordEvent::Kind::kViolationDetected) continue;
          ++violations;
          EXPECT_EQ(event.party, PartyId{"mallory"}) << event.detail;
        }
        EXPECT_GE(violations, 1u);
      }
    }
    fed.settle();
    // The honest twins' protocol state, bit for bit.
    crypto::Sha256 hasher;
    for (const std::string name : {"bob", "carol"}) {
      Coordinator& coord = fed.coordinator(name);
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      hasher.update(coord.replica(kObj).agreed_tuple().encode());
      hasher.update(coord.replica(kObj).group_tuple().encode());
    }
    hasher.update(bob_obj.value);
    hasher.update(carol_obj.value);
    return to_hex(crypto::digest_bytes(hasher.finish()));
  };

  EXPECT_EQ(run_twin(true), run_twin(false));
}

// Anchored-span validation catches splices and tampering: an anchor
// grafted from ANOTHER party's log fails (wrong chain hash / signer), and
// a record tampered under an anchor is caught even when the chain is
// re-linked to hide it — the signed anchor pins the original hashes.
TEST(PipelineAdversarial, SplicedOrTamperedAnchorIsDetected) {
  Federation::Options opts =
      test::runtime_options(RuntimeKind::kSim, pipeline_seed());
  opts.pipeline = true;
  opts.evidence_anchor_interval = 4;
  Parties p(opts);
  p.warm_up();
  RunHandle h =
      p.fed.coordinator("alpha").propagate_batch(kObj, mixed_batch());
  ASSERT_TRUE(p.fed.run_until_done(h));
  ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  p.fed.settle();

  const store::EvidenceLog& alpha_log = p.fed.coordinator("alpha").evidence();
  const store::EvidenceLog& beta_log = p.fed.coordinator("beta").evidence();
  const crypto::RsaPublicKey& alpha_key =
      p.fed.coordinator("alpha").public_key();
  ASSERT_TRUE(
      Arbiter::verify_anchored_spans(alpha_log, alpha_key).all_anchors_valid);

  // Index of some anchor record in each log.
  auto anchor_index = [](const store::EvidenceLog& log) {
    for (const store::EvidenceRecord& rec : log.records()) {
      if (rec.kind == evidence_kind::kEvidenceAnchor) return rec.index;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t alpha_anchor = anchor_index(alpha_log);
  const std::uint64_t beta_anchor = anchor_index(beta_log);
  ASSERT_GT(alpha_anchor, 0u);
  ASSERT_GT(beta_anchor, 0u);

  // Rebuild alpha's log record by record (append re-links the chain, so
  // the forgery is hash-chain-consistent — exactly what a tamperer with
  // write access to the local log can produce).
  auto rebuild = [](const store::EvidenceLog& source,
                    std::uint64_t replace_at, const Bytes* replacement,
                    std::uint64_t tamper_at, bool tamper) {
    store::EvidenceLog out;
    for (const store::EvidenceRecord& rec : source.records()) {
      Bytes payload = rec.payload;
      if (replacement != nullptr && rec.index == replace_at) {
        payload = *replacement;
      }
      if (tamper && rec.index == tamper_at) payload.push_back(0xff);
      out.append(rec.kind, std::move(payload), rec.time_micros);
    }
    return out;
  };

  // Splice: beta's signed anchor grafted into alpha's log in place of
  // alpha's own. The chain re-links fine, but the anchor covers a chain
  // hash that never existed in alpha's log (and carries beta's
  // signature, not alpha's).
  const Bytes beta_anchor_payload = beta_log.at(beta_anchor).payload;
  store::EvidenceLog spliced = rebuild(alpha_log, alpha_anchor,
                                       &beta_anchor_payload, 0, false);
  Arbiter::AnchorReport spliced_report =
      Arbiter::verify_anchored_spans(spliced, alpha_key);
  EXPECT_TRUE(spliced_report.chain_intact);
  EXPECT_FALSE(spliced_report.all_anchors_valid);
  EXPECT_FALSE(spliced_report.problems.empty());

  // Tamper: one record under the first anchor altered, chain re-linked.
  // Every later anchor's signed head hash now disagrees with the
  // re-linked chain.
  store::EvidenceLog tampered =
      rebuild(alpha_log, 0, nullptr, alpha_anchor - 1, true);
  Arbiter::AnchorReport tampered_report =
      Arbiter::verify_anchored_spans(tampered, alpha_key);
  EXPECT_TRUE(tampered_report.chain_intact);
  EXPECT_FALSE(tampered_report.all_anchors_valid);
  EXPECT_FALSE(tampered_report.problems.empty());
}

}  // namespace
}  // namespace b2b::core
