// The sharding concurrency battery (DESIGN.md §9).
//
// The coordinator is sharded by ObjectId: each registered object owns its
// replica behind a per-shard mutex (plus, on the real-thread runtimes, a
// dedicated dispatch lane), while a shared_mutex-guarded router maps
// inbound messages to shards. This suite proves the three claims that
// split carries:
//
//   equivalence — on the deterministic simulator the sharded coordinator
//       (in both lock modes) reproduces the pre-shard coordinator
//       bit-for-bit: the golden multi-object scenario's SHA-256 digest,
//       captured before the refactor, must match verbatim;
//   isolation   — independent objects coordinate in parallel: concurrent
//       runs on different objects all agree, a stalled or blocked object
//       never delays another object's runs, and read-only router lookups
//       on distinct objects take only the shared map lock;
//   recovery    — the full crash-point campaign still holds with two live
//       objects: a run in flight on a second object when the crash fires
//       must converge too, and the journal replay rebuilds every shard
//       independently.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "b2b/federation.hpp"
#include "tests/support/crash_points.hpp"
#include "tests/support/golden_scenario.hpp"
#include "tests/support/runtime_param.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

namespace fs = std::filesystem;

// --- equivalence: the golden digests -----------------------------------------
//
// Captured on the pre-shard (single-lock, no-lane) coordinator at seed 29
// and verified stable across repeated runs. Any divergence in message
// order, evidence chains, tuples, object values or executed event count
// changes these digests.
constexpr char kGoldenPlain[] =
    "ca2cc0892d9dbc36ff9e614e1eaf9ac06f00b2075472cf1ae8d9c1a4a9a3690f";
constexpr char kGoldenJournaled[] =
    "da29f570224f0dc0dac5734711b008fbe87b2c049367775095ef810c84720ed5";

TEST(ShardingEquivalence, PerObjectModeMatchesPreShardDigest) {
  Federation::Options options =
      test::runtime_options(RuntimeKind::kSim, /*seed=*/29);
  options.lock_mode = Coordinator::LockMode::kPerObject;
  EXPECT_EQ(test::run_golden_scenario(options), kGoldenPlain);
  EXPECT_EQ(test::run_golden_scenario(options, "eq_per_object"),
            kGoldenJournaled);
}

TEST(ShardingEquivalence, CoarseModeMatchesPreShardDigest) {
  // The kCoarse baseline (every shard behind one shared mutex, no lanes)
  // must be observationally identical too — it differs only in contention.
  Federation::Options options =
      test::runtime_options(RuntimeKind::kSim, /*seed=*/29);
  options.lock_mode = Coordinator::LockMode::kCoarse;
  EXPECT_EQ(test::run_golden_scenario(options), kGoldenPlain);
  EXPECT_EQ(test::run_golden_scenario(options, "eq_coarse"),
            kGoldenJournaled);
}

// --- isolation: concurrent runs on independent objects -----------------------

class Sharding : public test::RuntimeParamTest {};

TEST_P(Sharding, MultiObjectConcurrentRunsAgreeIndependently) {
  const std::vector<std::string> kNames = {"alpha", "beta", "gamma"};
  const std::vector<ObjectId> kObjs = {ObjectId{"obj0"}, ObjectId{"obj1"},
                                       ObjectId{"obj2"}, ObjectId{"obj3"}};
  TestRegister regs[3][4];
  Federation fed(kNames, options(/*seed=*/17));
  for (std::size_t p = 0; p < kNames.size(); ++p) {
    for (std::size_t k = 0; k < kObjs.size(); ++k) {
      fed.register_object(kNames[p], kObjs[k], regs[p][k]);
    }
  }
  for (const ObjectId& obj : kObjs) {
    fed.bootstrap_object(obj, kNames, bytes_of("genesis"));
  }

  // One run per object, all in flight together, each from a different
  // proposer.
  std::vector<RunHandle> handles;
  for (std::size_t k = 0; k < kObjs.size(); ++k) {
    const std::size_t p = k % kNames.size();
    regs[p][k].value = bytes_of("v-" + kObjs[k].str());
    handles.push_back(fed.coordinator(kNames[p]).propagate_new_state(
        kObjs[k], regs[p][k].get_state()));
  }
  for (const RunHandle& h : handles) {
    ASSERT_TRUE(fed.run_until_done(h));
    EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
  }
  fed.settle();

  for (std::size_t k = 0; k < kObjs.size(); ++k) {
    const StateTuple& agreed =
        fed.coordinator("alpha").replica(kObjs[k]).agreed_tuple();
    EXPECT_EQ(agreed.sequence, 1u);
    for (std::size_t p = 0; p < kNames.size(); ++p) {
      Coordinator& coord = fed.coordinator(kNames[p]);
      EXPECT_EQ(coord.replica(kObjs[k]).agreed_tuple(), agreed) << kNames[p];
      EXPECT_EQ(regs[p][k].value, bytes_of("v-" + kObjs[k].str()))
          << kNames[p];
      // Every shard saw protocol traffic of its own.
      EXPECT_GT(coord.shard_stats(kObjs[k]).messages_dispatched, 0u)
          << kNames[p] << "/" << kObjs[k].str();
    }
  }
  for (const std::string& name : kNames) {
    Coordinator& coord = fed.coordinator(name);
    EXPECT_TRUE(coord.evidence().verify_chain()) << name;
    EXPECT_EQ(coord.violations_detected(), 0u) << name;
    const Coordinator::RouterStats router = coord.router_stats();
    // The shard map's writer lock is taken by registration only; every
    // dispatch and lookup went through the shared (reader) side.
    EXPECT_EQ(router.map_exclusive_locks, kObjs.size()) << name;
    EXPECT_GT(router.messages_routed, 0u) << name;
    if (GetParam() == RuntimeKind::kSim) {
      EXPECT_EQ(router.lane_posts, 0u) << name;  // inline dispatch
    } else {
      EXPECT_GT(router.lane_posts, 0u) << name;  // strand dispatch
    }
  }
}

TEST_P(Sharding, StalledObjectDoesNotBlockOthers) {
  // "ledger" needs gamma (unanimity) but gamma is dead, so alpha's run on
  // it blocks indefinitely; "orders" lives on alpha+beta only and must
  // agree regardless. Pre-shard, both runs queued behind one coordinator
  // lock at each party.
  const ObjectId kBlocked{"ledger"};
  const ObjectId kFree{"orders"};
  TestRegister alpha_led, beta_led, gamma_led, alpha_ord, beta_ord;
  Federation fed({"alpha", "beta", "gamma"}, options(/*seed=*/23));
  fed.register_object("alpha", kBlocked, alpha_led);
  fed.register_object("beta", kBlocked, beta_led);
  fed.register_object("gamma", kBlocked, gamma_led);
  fed.register_object("alpha", kFree, alpha_ord);
  fed.register_object("beta", kFree, beta_ord);
  fed.bootstrap_object(kBlocked, {"alpha", "beta", "gamma"},
                       bytes_of("genesis"));
  fed.bootstrap_object(kFree, {"alpha", "beta"}, bytes_of("genesis"));

  fed.crash_party("gamma");
  alpha_led.value = bytes_of("stuck");
  RunHandle blocked = fed.coordinator("alpha").propagate_new_state(
      kBlocked, alpha_led.get_state());
  alpha_ord.value = bytes_of("flows");
  RunHandle free = fed.coordinator("alpha").propagate_new_state(
      kFree, alpha_ord.get_state());

  ASSERT_TRUE(fed.run_until_done(free));
  EXPECT_EQ(free->outcome, RunResult::Outcome::kAgreed) << free->diagnostic;
  EXPECT_FALSE(blocked->done());
}

B2B_INSTANTIATE_RUNTIME_SUITE(Sharding);

// The lane discriminator, on the runtimes where lanes exist: a replica
// blocked inside validate_state parks only its own object's dispatch
// lane. Pre-shard (or with lanes off) the blocked validate would wedge
// the party's receiver thread and with it every object at that party.
class ShardingLanes : public test::RuntimeParamTest {};

TEST_P(ShardingLanes, BlockedValidateOnOneObjectDoesNotBlockAnother) {
  const ObjectId kLedger{"ledger"};
  const ObjectId kOrders{"orders"};
  TestRegister alpha_led, beta_led, alpha_ord, beta_ord;
  Federation fed({"alpha", "beta"}, options(/*seed=*/31));
  fed.register_object("alpha", kLedger, alpha_led);
  fed.register_object("beta", kLedger, beta_led);
  fed.register_object("alpha", kOrders, alpha_ord);
  fed.register_object("beta", kOrders, beta_ord);
  fed.bootstrap_object(kLedger, {"alpha", "beta"}, bytes_of("genesis"));
  fed.bootstrap_object(kOrders, {"alpha", "beta"}, bytes_of("genesis"));

  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<bool> entered{false};
  beta_led.policy = [&](BytesView, const ValidationContext&) {
    entered.store(true, std::memory_order_release);
    released.wait();  // parks beta's ledger lane, and only that lane
    return Decision::accepted();
  };

  alpha_led.value = bytes_of("blocked");
  RunHandle ledger_run = fed.coordinator("alpha").propagate_new_state(
      kLedger, alpha_led.get_state());
  ASSERT_TRUE(fed.executor().run_until(
      [&] { return entered.load(std::memory_order_acquire); }))
      << "beta never reached the blocking validate";

  // With beta's ledger lane wedged in validate, a run on orders must
  // still make the full round trip through beta.
  alpha_ord.value = bytes_of("flows");
  RunHandle orders_run = fed.coordinator("alpha").propagate_new_state(
      kOrders, alpha_ord.get_state());
  const bool orders_done = fed.run_until_done(orders_run);
  EXPECT_FALSE(ledger_run->done());

  release.set_value();  // un-park before any assertion can bail out
  ASSERT_TRUE(orders_done);
  EXPECT_EQ(orders_run->outcome, RunResult::Outcome::kAgreed)
      << orders_run->diagnostic;
  ASSERT_TRUE(fed.run_until_done(ledger_run));
  EXPECT_EQ(ledger_run->outcome, RunResult::Outcome::kAgreed)
      << ledger_run->diagnostic;
  fed.settle();
  EXPECT_EQ(beta_led.value, bytes_of("blocked"));
  EXPECT_EQ(beta_ord.value, bytes_of("flows"));
}

INSTANTIATE_TEST_SUITE_P(
    RealThreadRuntimes, ShardingLanes,
    ::testing::Values(RuntimeKind::kThreaded, RuntimeKind::kTcp),
    [](const ::testing::TestParamInfo<RuntimeKind>& info) {
      return test::runtime_suffix(info.param);
    });

// --- isolation: read-only router lookups -------------------------------------

// Regression for the pre-shard coordinator, where replica()/has_object()
// took the one global recursive mutex even for read-only lookups: now
// they take only the router's shared lock, so concurrent lookups on
// distinct objects cannot contend on a writer. The proof is structural,
// via the Transport::Stats-style router counters: the exclusive-lock
// count must stay at exactly one per register_object call no matter how
// many lookups race.
TEST(ShardingRouter, ConcurrentLookupsOnDistinctObjectsStayOnSharedLock) {
  constexpr std::size_t kObjects = 4;
  constexpr int kItersPerThread = 20'000;
  TestRegister regs[kObjects];
  Federation fed({"alpha"}, test::runtime_options(RuntimeKind::kSim, 7));
  std::vector<ObjectId> objects;
  for (std::size_t k = 0; k < kObjects; ++k) {
    objects.push_back(ObjectId{"obj" + std::to_string(k)});
    fed.register_object("alpha", objects.back(), regs[k]);
  }
  Coordinator& coord = fed.coordinator("alpha");
  const Coordinator::RouterStats before = coord.router_stats();
  ASSERT_EQ(before.map_exclusive_locks, kObjects);

  std::atomic<int> misses{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kObjects; ++t) {
    threads.emplace_back([&, t] {
      const ObjectId& object = objects[t];
      for (int i = 0; i < kItersPerThread; ++i) {
        if (!coord.has_object(object)) misses.fetch_add(1);
        if (&coord.replica(object) == nullptr) misses.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(misses.load(), 0);
  const Coordinator::RouterStats after = coord.router_stats();
  // No lookup escalated to the writer lock...
  EXPECT_EQ(after.map_exclusive_locks, kObjects);
  EXPECT_GE(after.lookups - before.lookups,
            static_cast<std::uint64_t>(kObjects) * 2 * kItersPerThread);
  // ...and none of it counted as (or caused) message dispatch.
  EXPECT_EQ(after.messages_routed, 0u);
  for (const ObjectId& object : objects) {
    EXPECT_EQ(coord.shard_stats(object).messages_dispatched, 0u);
  }
}

// --- recovery: the crash campaign with two live objects ----------------------
//
// Same 34 named crash points as the single-object campaign in
// recovery_test.cpp (the lists are shared via tests/support/
// crash_points.hpp), but every deployment carries a second journaled
// object — usually with a run of its own in flight when the crash fires —
// and recovery must rebuild and converge both shards.

const ObjectId kMain{"ledger"};
const ObjectId kSide{"audit"};

std::string fresh_journal_root(const std::string& tag) {
  fs::path root = fs::temp_directory_path() / ("b2b_sharding_" + tag);
  fs::remove_all(root);
  return root.string();
}

Federation::Options journaled_sim_options(const std::string& tag,
                                          std::uint64_t seed) {
  Federation::Options options = test::runtime_options(RuntimeKind::kSim, seed);
  options.journal_root = fresh_journal_root(tag);
  return options;
}

/// Three organisations sharing two journaled objects.
struct TwoObjectParties {
  TestRegister alpha_main, beta_main, gamma_main;
  TestRegister alpha_side, beta_side, gamma_side;
  Federation fed;

  TwoObjectParties(const std::string& tag, std::uint64_t seed)
      : fed({"alpha", "beta", "gamma"}, journaled_sim_options(tag, seed)) {
    fed.register_object("alpha", kMain, alpha_main);
    fed.register_object("beta", kMain, beta_main);
    fed.register_object("gamma", kMain, gamma_main);
    fed.register_object("alpha", kSide, alpha_side);
    fed.register_object("beta", kSide, beta_side);
    fed.register_object("gamma", kSide, gamma_side);
    fed.bootstrap_object(kMain, {"alpha", "beta", "gamma"},
                         bytes_of("genesis"));
    fed.bootstrap_object(kSide, {"alpha", "beta", "gamma"},
                         bytes_of("side-genesis"));
  }

  TestRegister& main_obj(const std::string& name) {
    if (name == "alpha") return alpha_main;
    if (name == "beta") return beta_main;
    return gamma_main;
  }
  TestRegister& side_obj(const std::string& name) {
    if (name == "alpha") return alpha_side;
    if (name == "beta") return beta_side;
    return gamma_side;
  }

  void warm_up() {
    alpha_main.value = bytes_of("warm");
    RunHandle h = fed.coordinator("alpha").propagate_new_state(
        kMain, alpha_main.get_state());
    ASSERT_TRUE(fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    alpha_side.value = bytes_of("side-warm");
    RunHandle s = fed.coordinator("alpha").propagate_new_state(
        kSide, alpha_side.get_state());
    ASSERT_TRUE(fed.run_until_done(s));
    ASSERT_EQ(s->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
  }

  void check_safety() {
    for (const ObjectId& object : {kMain, kSide}) {
      const StateTuple& agreed =
          fed.coordinator("alpha").replica(object).agreed_tuple();
      for (const std::string name : {"alpha", "beta", "gamma"}) {
        Coordinator& coord = fed.coordinator(name);
        EXPECT_EQ(coord.replica(object).agreed_tuple(), agreed)
            << name << "/" << object.str();
      }
    }
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = fed.coordinator(name);
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
    }
    EXPECT_EQ(alpha_main.value, beta_main.value);
    EXPECT_EQ(alpha_main.value, gamma_main.value);
    EXPECT_EQ(alpha_side.value, beta_side.value);
    EXPECT_EQ(alpha_side.value, gamma_side.value);
  }
};

/// One state-run campaign case with a sidecar run in flight: a survivor
/// proposes on the second object, alpha proposes on the first, `crasher`
/// dies at `point`, and after recovery BOTH objects must converge.
void run_multi_sim_case(const std::string& point, const std::string& crasher,
                        std::uint64_t seed) {
  const std::string tag =
      "mo_" + test::sanitized_point(point) + "_" + crasher;
  {
    TwoObjectParties p(tag, seed);
    p.warm_up();

    // The sidecar proposer survives the crash; its armed peer only ever
    // acts as a responder on the sidecar run, so a propose.*/response.*
    // point armed at alpha cannot fire there (respond.* points at beta
    // can — then BOTH interrupted runs are the crasher's to recover).
    const std::string side_proposer = crasher == "gamma" ? "beta" : "gamma";
    p.fed.coordinator(crasher).arm_crash_point(point);
    p.side_obj(side_proposer).value = bytes_of("side2");
    RunHandle side = p.fed.coordinator(side_proposer).propagate_new_state(
        kSide, p.side_obj(side_proposer).get_state());
    p.alpha_main.value = bytes_of("v2");
    RunHandle h = p.fed.coordinator("alpha").propagate_new_state(
        kMain, p.alpha_main.get_state());
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator(crasher).crashed(); }))
        << "crash point never hit";

    p.fed.crash_party(crasher);
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party(crasher);
    p.fed.register_object(crasher, kMain, p.main_obj(crasher));
    p.fed.register_object(crasher, kSide, p.side_obj(crasher));
    EXPECT_TRUE(revived.recovered());
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    // Liveness on both shards: the main run converges exactly as in the
    // single-object campaign, and the sidecar run agrees too (its
    // proposer survived, so its handle must resolve kAgreed).
    const std::uint64_t expected_main_seq =
        point == "propose.pre-journal" ? 1u : 2u;
    auto converged = [&] {
      for (const std::string name : {"alpha", "beta", "gamma"}) {
        Coordinator& coord = p.fed.coordinator(name);
        Replica& main = coord.replica(kMain);
        Replica& side_rep = coord.replica(kSide);
        if (main.agreed_tuple().sequence != expected_main_seq ||
            side_rep.agreed_tuple().sequence != 2u || main.busy() ||
            side_rep.busy()) {
          return false;
        }
      }
      return true;
    };
    EXPECT_TRUE(p.fed.executor().run_until(converged))
        << "two-object deployment did not converge after recovery";
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    EXPECT_TRUE(side->done());
    EXPECT_EQ(side->outcome, RunResult::Outcome::kAgreed) << side->diagnostic;
    p.fed.settle();

    const Bytes expected_main =
        point == "propose.pre-journal" ? bytes_of("warm") : bytes_of("v2");
    EXPECT_EQ(p.alpha_main.value, expected_main);
    EXPECT_EQ(p.alpha_side.value, bytes_of("side2"));
    p.check_safety();
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_sharding_" + tag));
}

/// Four organisations, two objects: delta connects to the first while a
/// state run rides on the second.
struct MemberTwoObjectParties {
  TestRegister main_regs[4];
  TestRegister side_regs[4];
  std::vector<std::string> names = {"alpha", "beta", "gamma", "delta"};
  Federation fed;

  MemberTwoObjectParties(const std::string& tag, std::uint64_t seed)
      : fed({"alpha", "beta", "gamma", "delta"},
            journaled_sim_options(tag, seed)) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      fed.register_object(names[i], kMain, main_regs[i]);
      fed.register_object(names[i], kSide, side_regs[i]);
    }
    fed.bootstrap_object(kMain, {"alpha", "beta", "gamma"},
                         bytes_of("genesis"));
    fed.bootstrap_object(kSide, {"alpha", "beta", "gamma"},
                         bytes_of("side-genesis"));
  }

  std::size_t index_of(const std::string& name) const {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    return 0;
  }
  TestRegister& main_obj(const std::string& name) {
    return main_regs[index_of(name)];
  }
  TestRegister& side_obj(const std::string& name) {
    return side_regs[index_of(name)];
  }

  void warm_up() {
    main_obj("alpha").value = bytes_of("warm");
    RunHandle h = fed.coordinator("alpha").propagate_new_state(
        kMain, main_obj("alpha").get_state());
    ASSERT_TRUE(fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    side_obj("alpha").value = bytes_of("side-warm");
    RunHandle s = fed.coordinator("alpha").propagate_new_state(
        kSide, side_obj("alpha").get_state());
    ASSERT_TRUE(fed.run_until_done(s));
    ASSERT_EQ(s->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
  }
};

/// One membership campaign case with a sidecar state run in flight:
/// delta's connect on the first object is interrupted by `crasher` dying
/// at `point` while alpha (never a membership crasher here) proposes on
/// the second object.
void run_multi_membership_case(const std::string& point,
                               const std::string& crasher,
                               std::uint64_t seed) {
  const std::string tag =
      "mom_" + test::sanitized_point(point) + "_" + crasher;
  const std::vector<std::string> kAll = {"alpha", "beta", "gamma", "delta"};
  const std::vector<std::string> kSideMembers = {"alpha", "beta", "gamma"};
  {
    MemberTwoObjectParties p(tag, seed);
    p.warm_up();

    p.fed.coordinator(crasher).arm_crash_point(point);
    p.side_obj("alpha").value = bytes_of("side2");
    RunHandle side = p.fed.coordinator("alpha").propagate_new_state(
        kSide, p.side_obj("alpha").get_state());
    RunHandle h =
        p.fed.coordinator("delta").propagate_connect(kMain, PartyId{"gamma"});
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator(crasher).crashed(); }))
        << "crash point never hit";

    p.fed.crash_party(crasher);
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party(crasher);
    p.fed.register_object(crasher, kMain, p.main_obj(crasher));
    p.fed.register_object(crasher, kSide, p.side_obj(crasher));
    EXPECT_TRUE(revived.recovered());
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    // Liveness: the connect admits delta AND the sidecar run agrees.
    auto converged = [&] {
      const GroupTuple& group =
          p.fed.coordinator("alpha").replica(kMain).group_tuple();
      for (const std::string& name : kAll) {
        Replica& r = p.fed.coordinator(name).replica(kMain);
        if (!r.connected() || r.members().size() != 4 || r.busy() ||
            !(r.group_tuple() == group)) {
          return false;
        }
      }
      for (const std::string& name : kSideMembers) {
        Replica& r = p.fed.coordinator(name).replica(kSide);
        if (r.agreed_tuple().sequence != 2u || r.busy()) return false;
      }
      return true;
    };
    EXPECT_TRUE(p.fed.executor().run_until(converged))
        << "two-object deployment did not converge after recovery";
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    EXPECT_TRUE(side->done());
    EXPECT_EQ(side->outcome, RunResult::Outcome::kAgreed) << side->diagnostic;
    if (crasher != "delta") {
      EXPECT_TRUE(h->done());
      EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    }
    p.fed.settle();

    EXPECT_EQ(p.main_obj("delta").value, bytes_of("warm"));
    const GroupTuple& group =
        p.fed.coordinator("alpha").replica(kMain).group_tuple();
    const StateTuple& side_agreed =
        p.fed.coordinator("alpha").replica(kSide).agreed_tuple();
    for (const std::string& name : kAll) {
      Coordinator& coord = p.fed.coordinator(name);
      EXPECT_EQ(coord.replica(kMain).group_tuple(), group) << name;
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
    }
    for (const std::string& name : kSideMembers) {
      EXPECT_EQ(p.fed.coordinator(name).replica(kSide).agreed_tuple(),
                side_agreed)
          << name;
      EXPECT_EQ(p.side_obj(name).value, bytes_of("side2")) << name;
    }
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_sharding_" + tag));
}

/// One termination campaign case with a second shard in the journals: a
/// run on the side object completes BEFORE gamma goes silent (a dead
/// responder would block it just like the doomed main run), so the
/// post-crash journal replay must rebuild the side shard to its agreed
/// state while the TTP settles the blocked main run.
void run_multi_termination_case(const std::string& point,
                                std::uint64_t seed) {
  const std::string tag = "mot_" + test::sanitized_point(point);
  {
    TwoObjectParties p(tag, seed);
    p.fed.enable_ttp_termination(kMain, 500'000);
    p.warm_up();

    p.beta_side.value = bytes_of("side2");
    RunHandle side = p.fed.coordinator("beta").propagate_new_state(
        kSide, p.beta_side.get_state());
    ASSERT_TRUE(p.fed.run_until_done(side));
    ASSERT_EQ(side->outcome, RunResult::Outcome::kAgreed);
    p.fed.settle();

    p.fed.crash_party("gamma");
    p.fed.coordinator("alpha").arm_crash_point(point);
    p.alpha_main.value = bytes_of("doomed");
    RunHandle h = p.fed.coordinator("alpha").propagate_new_state(
        kMain, p.alpha_main.get_state());
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator("alpha").crashed(); }))
        << "crash point never hit";
    EXPECT_FALSE(h->done());

    p.fed.crash_party("alpha");
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party("alpha");
    p.fed.register_object("alpha", kMain, p.alpha_main);
    p.fed.register_object("alpha", kSide, p.alpha_side);
    p.fed.enable_ttp_termination(kMain, 500'000);  // config is re-supplied
    EXPECT_TRUE(revived.recovered());
    // The side shard rebuilt to its agreed state straight from the
    // journal, independent of the blocked main run.
    EXPECT_EQ(revived.replica(kSide).agreed_tuple().sequence, 2u);
    EXPECT_EQ(p.alpha_side.value, bytes_of("side2"));
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    auto released = [&] {
      return p.fed.coordinator("alpha")
                 .replica(kMain)
                 .active_run_labels()
                 .empty() &&
             p.fed.coordinator("beta")
                 .replica(kMain)
                 .active_run_labels()
                 .empty();
    };
    EXPECT_TRUE(p.fed.executor().run_until(released))
        << "blocked run did not terminate after recovery";
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    p.fed.settle();

    EXPECT_GE(p.fed.termination_ttp().aborts_issued(), 1u);
    EXPECT_EQ(p.fed.termination_ttp().decisions_issued(), 0u);
    EXPECT_EQ(p.alpha_main.value, bytes_of("warm"));
    EXPECT_EQ(p.beta_main.value, bytes_of("warm"));
    EXPECT_FALSE(
        p.fed.coordinator("alpha").evidence().find_kind("ttp.abort").empty());

    // gamma restarts as a bystander and rebuilds both shards too.
    Coordinator& bystander = p.fed.recover_party("gamma");
    p.fed.register_object("gamma", kMain, p.gamma_main);
    p.fed.register_object("gamma", kSide, p.gamma_side);
    EXPECT_TRUE(bystander.resume_recovered_runs().empty());
    EXPECT_EQ(bystander.replica(kSide).agreed_tuple().sequence, 2u);
    EXPECT_EQ(p.gamma_side.value, bytes_of("side2"));
    p.fed.settle();
    p.check_safety();
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_sharding_" + tag));
}

TEST(MultiObjectCrashCampaign, ProposerCrashEveryPoint) {
  for (const std::string& point : test::kProposerPoints) {
    SCOPED_TRACE(point);
    run_multi_sim_case(point, "alpha", test::campaign_seed());
  }
}

TEST(MultiObjectCrashCampaign, ResponderCrashEveryPoint) {
  for (const std::string& point : test::kResponderPoints) {
    SCOPED_TRACE(point);
    run_multi_sim_case(point, "beta", test::campaign_seed());
  }
}

TEST(MultiObjectCrashCampaign, SponsorCrashEveryMembershipPoint) {
  for (const std::string& point : test::kSponsorMembershipPoints) {
    SCOPED_TRACE(point);
    run_multi_membership_case(point, "gamma", test::campaign_seed());
  }
}

TEST(MultiObjectCrashCampaign, RecipientCrashEveryMembershipPoint) {
  for (const std::string& point : test::kRecipientMembershipPoints) {
    SCOPED_TRACE(point);
    run_multi_membership_case(point, "beta", test::campaign_seed());
  }
}

TEST(MultiObjectCrashCampaign, SubjectCrashAtRequestJournaled) {
  run_multi_membership_case(test::kSubjectPoint, "delta",
                            test::campaign_seed());
}

TEST(MultiObjectCrashCampaign, TerminationCrashEveryPoint) {
  for (const std::string& point : test::kTerminationPoints) {
    SCOPED_TRACE(point);
    run_multi_termination_case(point, test::campaign_seed());
  }
}

}  // namespace
}  // namespace b2b::core
