// Sharding stress battery: 8 objects × 4 organisations on the REAL
// runtimes (OS threads / TCP sockets) under datagram-level fault
// injection, with per-object dispatch lanes on. Every round drives one
// state run per object concurrently — eight shards coordinating in
// parallel at every party — and one object additionally takes a
// disconnect/reconnect membership cycle while the other seven keep
// running state runs. This is the suite CI runs under ThreadSanitizer:
// the per-shard mutexes, the router's shared lock, the lane handoffs and
// the global evidence/journal/stats sections all get exercised across
// many true threads at once.
//
// Pass criteria: every run terminates kAgreed, every object converges
// (identical agreed tuples and values at all its members), every
// evidence chain verifies, zero violations recorded anywhere — and the
// fabric really did inject faults.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "b2b/federation.hpp"
#include "tests/support/runtime_param.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

class ShardingStress : public test::RuntimeParamTest {};

TEST_P(ShardingStress, EightObjectsFourPartiesConvergeUnderFaults) {
  constexpr std::size_t kObjects = 8;
  const std::vector<std::string> kNames = {"alpha", "beta", "gamma",
                                           "delta"};
  // Registers outlive the federation: runtime threads stop first.
  TestRegister regs[4][kObjects];
  Federation fed(kNames, options(/*seed=*/41, /*drop=*/0.05, /*dup=*/0.05));

  std::vector<ObjectId> objects;
  for (std::size_t k = 0; k < kObjects; ++k) {
    objects.push_back(ObjectId{"obj" + std::to_string(k)});
    for (std::size_t p = 0; p < kNames.size(); ++p) {
      fed.register_object(kNames[p], objects[k], regs[p][k]);
    }
    fed.bootstrap_object(objects[k], kNames, bytes_of("genesis"));
  }

  auto propose = [&](std::size_t k, int round) {
    const std::size_t p = (k + static_cast<std::size_t>(round)) %
                          kNames.size();
    regs[p][k].value =
        bytes_of("r" + std::to_string(round) + "-o" + std::to_string(k));
    return fed.coordinator(kNames[p]).propagate_new_state(
        objects[k], regs[p][k].get_state());
  };
  auto drive = [&](std::vector<RunHandle> handles) {
    for (const RunHandle& h : handles) {
      ASSERT_TRUE(fed.run_until_done(h)) << h->diagnostic;
      EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed) << h->diagnostic;
    }
    fed.settle();
  };

  // Round 0: one concurrent state run per object.
  {
    std::vector<RunHandle> handles;
    for (std::size_t k = 0; k < kObjects; ++k) {
      handles.push_back(propose(k, 0));
    }
    drive(std::move(handles));
  }
  // Round 1: a membership run (delta leaves obj0) rides alongside state
  // runs on the other seven shards.
  {
    std::vector<RunHandle> handles;
    handles.push_back(fed.coordinator("delta").propagate_disconnect(
        objects[0]));
    for (std::size_t k = 1; k < kObjects; ++k) {
      handles.push_back(propose(k, 1));
    }
    drive(std::move(handles));
  }
  // Round 2: delta reconnects to obj0 while the other seven run again.
  {
    std::vector<RunHandle> handles;
    handles.push_back(fed.coordinator("delta").propagate_connect(
        objects[0], PartyId{"alpha"}));
    for (std::size_t k = 1; k < kObjects; ++k) {
      handles.push_back(propose(k, 2));
    }
    drive(std::move(handles));
  }

  // Per-object convergence: identical tuples, groups and values at every
  // member (delta is back in obj0 after the reconnect).
  for (std::size_t k = 0; k < kObjects; ++k) {
    const StateTuple& agreed =
        fed.coordinator("alpha").replica(objects[k]).agreed_tuple();
    const GroupTuple& group =
        fed.coordinator("alpha").replica(objects[k]).group_tuple();
    EXPECT_EQ(agreed.sequence, k == 0 ? 1u : 3u) << objects[k].str();
    for (std::size_t p = 0; p < kNames.size(); ++p) {
      Replica& replica = fed.coordinator(kNames[p]).replica(objects[k]);
      EXPECT_TRUE(replica.connected()) << kNames[p] << "/" << objects[k].str();
      EXPECT_EQ(replica.agreed_tuple(), agreed)
          << kNames[p] << "/" << objects[k].str();
      EXPECT_EQ(replica.group_tuple(), group)
          << kNames[p] << "/" << objects[k].str();
      EXPECT_EQ(regs[p][k].value, regs[0][k].value)
          << kNames[p] << "/" << objects[k].str();
      EXPECT_GT(fed.coordinator(kNames[p])
                    .shard_stats(objects[k])
                    .messages_dispatched,
                0u)
          << kNames[p] << "/" << objects[k].str();
    }
  }
  for (const std::string& name : kNames) {
    Coordinator& coord = fed.coordinator(name);
    EXPECT_TRUE(coord.evidence().verify_chain()) << name;
    EXPECT_EQ(coord.violations_detected(), 0u) << name;
    // Lanes were on and carried the dispatch.
    EXPECT_GT(coord.router_stats().lane_posts, 0u) << name;
  }
  // The fabric really was hostile.
  const test::FabricStats fabric = test::fabric_stats(fed);
  EXPECT_GT(fabric.dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RealThreadRuntimes, ShardingStress,
    ::testing::Values(RuntimeKind::kThreaded, RuntimeKind::kTcp,
                      RuntimeKind::kReactor),
    [](const ::testing::TestParamInfo<RuntimeKind>& info) {
      return test::runtime_suffix(info.param);
    });

}  // namespace
}  // namespace b2b::core
