// End-to-end tests of the connection / disconnection protocols (§4.5):
// sponsored connection (direct and relayed), rejection and veto, voluntary
// disconnection, eviction (sponsor-initiated, relayed, subset), sponsor
// rotation, and the consistency of group views afterwards.
#include <gtest/gtest.h>

#include <filesystem>

#include "b2b/federation.hpp"
#include "b2b/messages.hpp"
#include "b2b/replica.hpp"
#include "common/error.hpp"
#include "crypto/sha256.hpp"
#include "net/reliable.hpp"
#include "tests/support/runtime_param.hpp"
#include "tests/support/test_objects.hpp"
#include "wire/codec.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

const ObjectId kObj{"doc"};

/// Three organisations; alpha and beta share the object, gamma starts
/// outside the group. Registers are declared before (destroyed after) the
/// federation so the runtime's delivery threads stop before the objects
/// they write into die.
struct ConnectFixture {
  TestRegister alpha_obj;
  TestRegister beta_obj;
  TestRegister gamma_obj;
  Federation fed;

  explicit ConnectFixture(RuntimeKind kind = RuntimeKind::kSim)
      : fed({"alpha", "beta", "gamma"}, test::runtime_options(kind)) {
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.register_object("gamma", kObj, gamma_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));
  }
};

/// The §4.5 protocol family runs over every runtime substrate; tests that
/// need deterministic scheduling or simulator-only instruments (forged
/// frames via endpoint()) stay plain sim-only TESTs below.
class MembershipRuntimes : public test::RuntimeParamTest {};

TEST_P(MembershipRuntimes, SponsorIsMostRecentlyJoinedMember) {
  ConnectFixture t(GetParam());
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).connect_sponsor(),
            PartyId{"beta"});
  EXPECT_EQ(t.fed.coordinator("beta").replica(kObj).connect_sponsor(),
            PartyId{"beta"});
}

TEST_P(MembershipRuntimes, ConnectViaSponsorAdmitsSubject) {
  ConnectFixture t(GetParam());
  // beta is the sponsor (most recently joined of the genesis order).
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();

  std::vector<PartyId> expected{PartyId{"alpha"}, PartyId{"beta"},
                                PartyId{"gamma"}};
  for (const char* name : {"alpha", "beta", "gamma"}) {
    Replica& r = t.fed.coordinator(name).replica(kObj);
    EXPECT_EQ(r.members(), expected) << name;
    EXPECT_TRUE(r.connected()) << name;
  }
  // The new member received the agreed state.
  EXPECT_EQ(t.gamma_obj.value, bytes_of("genesis"));
  // Group tuples agree everywhere.
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).group_tuple(),
            t.fed.coordinator("gamma").replica(kObj).group_tuple());
}

TEST_P(MembershipRuntimes, ConnectViaNonSponsorIsRelayed) {
  ConnectFixture t(GetParam());
  // gamma contacts alpha, which is not the sponsor; alpha must relay.
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"alpha"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).members().size(), 3u);
}

TEST_P(MembershipRuntimes, NewMemberBecomesNextSponsor) {
  ConnectFixture t(GetParam());
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();
  for (const char* name : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(t.fed.coordinator(name).replica(kObj).connect_sponsor(),
              PartyId{"gamma"})
        << name;
  }
}

TEST_P(MembershipRuntimes, NewMemberCanProposeStateChanges) {
  ConnectFixture t(GetParam());
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();

  t.gamma_obj.value = bytes_of("from-the-newcomer");
  RunHandle sh = t.fed.coordinator("gamma").propagate_new_state(
      kObj, t.gamma_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(sh));
  EXPECT_EQ(sh->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.alpha_obj.value, bytes_of("from-the-newcomer"));
  EXPECT_EQ(t.beta_obj.value, bytes_of("from-the-newcomer"));
}

TEST(Membership, ConnectVetoedByMemberYieldsReject) {
  ConnectFixture t;
  // alpha (a recipient, not the sponsor) vetoes new members.
  struct VetoingRegister : TestRegister {
    Decision validate_connect(const PartyId&,
                              const ValidationContext&) override {
      return Decision::rejected("we are full");
    }
  };
  VetoingRegister alpha_veto;
  Federation fed{{"alpha", "beta", "gamma"}};
  TestRegister beta_obj, gamma_obj;
  fed.register_object("alpha", kObj, alpha_veto);
  fed.register_object("beta", kObj, beta_obj);
  fed.register_object("gamma", kObj, gamma_obj);
  fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));

  RunHandle h = fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  fed.settle();
  EXPECT_EQ(fed.coordinator("alpha").replica(kObj).members().size(), 2u);
  EXPECT_FALSE(fed.coordinator("gamma").replica(kObj).connected());
}

TEST(Membership, SponsorImmediateRejectionLooksIdentical) {
  // §4.5.3: the subject cannot distinguish sponsor rejection from a veto.
  struct VetoingRegister : TestRegister {
    Decision validate_connect(const PartyId&,
                              const ValidationContext&) override {
      return Decision::rejected("sponsor says no");
    }
  };
  Federation fed{{"alpha", "beta", "gamma"}};
  TestRegister alpha_obj, gamma_obj;
  VetoingRegister beta_veto;  // beta is the sponsor
  fed.register_object("alpha", kObj, alpha_obj);
  fed.register_object("beta", kObj, beta_veto);
  fed.register_object("gamma", kObj, gamma_obj);
  fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));

  RunHandle h = fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(h->diagnostic, "connection request rejected");
  // No membership proposal ever went out.
  EXPECT_EQ(fed.coordinator("alpha").replica(kObj).members().size(), 2u);
}

TEST_P(MembershipRuntimes, AlreadyConnectedPartyCannotConnect) {
  ConnectFixture t(GetParam());
  RunHandle h =
      t.fed.coordinator("alpha").propagate_connect(kObj, PartyId{"beta"});
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAborted);
}

TEST_P(MembershipRuntimes, VoluntaryDisconnectShrinksGroup) {
  ConnectFixture t(GetParam());
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();

  // alpha leaves; sponsor for alpha's departure is gamma (most recent).
  RunHandle d = t.fed.coordinator("alpha").propagate_disconnect(kObj);
  ASSERT_TRUE(t.fed.run_until_done(d));
  EXPECT_EQ(d->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();

  EXPECT_FALSE(t.fed.coordinator("alpha").replica(kObj).connected());
  std::vector<PartyId> expected{PartyId{"beta"}, PartyId{"gamma"}};
  EXPECT_EQ(t.fed.coordinator("beta").replica(kObj).members(), expected);
  EXPECT_EQ(t.fed.coordinator("gamma").replica(kObj).members(), expected);

  // The remaining pair can still coordinate.
  t.beta_obj.value = bytes_of("after-departure");
  RunHandle sh = t.fed.coordinator("beta").propagate_new_state(
      kObj, t.beta_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(sh));
  EXPECT_EQ(sh->outcome, RunResult::Outcome::kAgreed);
}

TEST_P(MembershipRuntimes, DisconnectOfMostRecentMemberUsesPredecessorSponsor) {
  ConnectFixture t(GetParam());
  // beta is the most recently joined genesis member; its departure must be
  // sponsored by alpha (§4.5.1).
  EXPECT_EQ(
      t.fed.coordinator("alpha").replica(kObj).disconnect_sponsor(PartyId{"beta"}),
      PartyId{"alpha"});
  RunHandle d = t.fed.coordinator("beta").propagate_disconnect(kObj);
  ASSERT_TRUE(t.fed.run_until_done(d));
  EXPECT_EQ(d->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).members(),
            std::vector<PartyId>{PartyId{"alpha"}});
}

TEST(Membership, SoleMemberDisconnectsLocally) {
  Federation fed{{"solo"}};
  TestRegister obj;
  fed.register_object("solo", kObj, obj);
  fed.bootstrap_object(kObj, {"solo"}, bytes_of("genesis"));
  RunHandle d = fed.coordinator("solo").propagate_disconnect(kObj);
  EXPECT_EQ(d->outcome, RunResult::Outcome::kAgreed);
  EXPECT_FALSE(fed.coordinator("solo").replica(kObj).connected());
}

TEST_P(MembershipRuntimes, DepartedMemberCanReconnect) {
  ConnectFixture t(GetParam());
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();
  RunHandle d = t.fed.coordinator("alpha").propagate_disconnect(kObj);
  ASSERT_TRUE(t.fed.run_until_done(d));
  t.fed.settle();

  RunHandle rc =
      t.fed.coordinator("alpha").propagate_connect(kObj, PartyId{"gamma"});
  ASSERT_TRUE(t.fed.run_until_done(rc));
  EXPECT_EQ(rc->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  // alpha rejoined at the end of the join order.
  std::vector<PartyId> expected{PartyId{"beta"}, PartyId{"gamma"},
                                PartyId{"alpha"}};
  EXPECT_EQ(t.fed.coordinator("beta").replica(kObj).members(), expected);
}

TEST_P(MembershipRuntimes, SponsorInitiatedEvictionSkipsRequestStep) {
  ConnectFixture t(GetParam());
  // beta (sponsor) evicts alpha directly.
  RunHandle h =
      t.fed.coordinator("beta").propagate_eviction(kObj, {PartyId{"alpha"}});
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.fed.coordinator("beta").replica(kObj).members(),
            std::vector<PartyId>{PartyId{"beta"}});
  // The evicted party was not involved: its local view is simply stale.
  EXPECT_TRUE(t.fed.coordinator("alpha").replica(kObj).connected());
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).members().size(), 2u);
}

TEST_P(MembershipRuntimes, EvictedPartysProposalsAreRejected) {
  ConnectFixture t(GetParam());
  RunHandle h =
      t.fed.coordinator("beta").propagate_eviction(kObj, {PartyId{"alpha"}});
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();

  // alpha, unaware, proposes a state change; beta's replica rejects it on
  // the group-view consistency check.
  t.alpha_obj.value = bytes_of("stale");
  RunHandle sh = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(sh));
  EXPECT_EQ(sh->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(sh->diagnostic, "inconsistent group view");
  EXPECT_EQ(t.alpha_obj.value, bytes_of("genesis"));  // rolled back
}

TEST_P(MembershipRuntimes, RelayedEvictionReportsOutcomeToProposer) {
  ConnectFixture t(GetParam());
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();

  // alpha (not the sponsor; gamma is) proposes evicting beta.
  RunHandle ev =
      t.fed.coordinator("alpha").propagate_eviction(kObj, {PartyId{"beta"}});
  ASSERT_TRUE(t.fed.run_until_done(ev));
  EXPECT_EQ(ev->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  std::vector<PartyId> expected{PartyId{"alpha"}, PartyId{"gamma"}};
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).members(), expected);
  EXPECT_EQ(t.fed.coordinator("gamma").replica(kObj).members(), expected);
}

TEST(Membership, EvictionCanBeVetoed) {
  Federation fed{{"alpha", "beta", "gamma"}};
  struct LoyalRegister : TestRegister {
    Decision validate_disconnect(const PartyId&, bool eviction,
                                 const ValidationContext&) override {
      return eviction ? Decision::rejected("we do not abandon partners")
                      : Decision::accepted();
    }
  };
  TestRegister alpha_obj, gamma_obj;
  LoyalRegister beta_obj;
  fed.register_object("alpha", kObj, alpha_obj);
  fed.register_object("beta", kObj, beta_obj);
  fed.register_object("gamma", kObj, gamma_obj);
  fed.bootstrap_object(kObj, {"alpha", "beta", "gamma"}, bytes_of("genesis"));

  // gamma (sponsor) proposes evicting alpha; beta vetoes.
  RunHandle ev =
      fed.coordinator("gamma").propagate_eviction(kObj, {PartyId{"alpha"}});
  ASSERT_TRUE(fed.run_until_done(ev));
  EXPECT_EQ(ev->outcome, RunResult::Outcome::kVetoed);
  fed.settle();
  EXPECT_EQ(fed.coordinator("beta").replica(kObj).members().size(), 3u);
  EXPECT_EQ(fed.coordinator("gamma").replica(kObj).members().size(), 3u);
}

TEST(Membership, SubsetEvictionRemovesSeveralAtOnce) {
  Federation fed{{"a", "b", "c", "d"}};
  TestRegister objs[4];
  const char* names[] = {"a", "b", "c", "d"};
  for (int i = 0; i < 4; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"a", "b", "c", "d"}, bytes_of("genesis"));

  // d (sponsor) evicts b and c in one run.
  RunHandle ev = fed.coordinator("d").propagate_eviction(
      kObj, {PartyId{"b"}, PartyId{"c"}});
  ASSERT_TRUE(fed.run_until_done(ev));
  EXPECT_EQ(ev->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  std::vector<PartyId> expected{PartyId{"a"}, PartyId{"d"}};
  EXPECT_EQ(fed.coordinator("a").replica(kObj).members(), expected);
  EXPECT_EQ(fed.coordinator("d").replica(kObj).members(), expected);
}

TEST_P(MembershipRuntimes, CannotEvictSelfOrNonMembers) {
  ConnectFixture t(GetParam());
  RunHandle self_evict =
      t.fed.coordinator("beta").propagate_eviction(kObj, {PartyId{"beta"}});
  EXPECT_EQ(self_evict->outcome, RunResult::Outcome::kAborted);
  RunHandle stranger =
      t.fed.coordinator("beta").propagate_eviction(kObj, {PartyId{"gamma"}});
  EXPECT_EQ(stranger->outcome, RunResult::Outcome::kAborted);
}

TEST_P(MembershipRuntimes, GroupSequenceAdvancesWithMembershipChanges) {
  ConnectFixture t(GetParam());
  std::uint64_t before =
      t.fed.coordinator("alpha").replica(kObj).group_tuple().sequence;
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();
  std::uint64_t after =
      t.fed.coordinator("alpha").replica(kObj).group_tuple().sequence;
  EXPECT_GT(after, before);
  // State sequence numbering continues from the membership change (§4.5:
  // shared coordination-request sequence space).
  t.alpha_obj.value = bytes_of("post-join");
  RunHandle sh = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  ASSERT_TRUE(t.fed.run_until_done(sh));
  EXPECT_GT(sh->sequence, after);
}

TEST(Membership, ConnectDuringActiveStateRunIsRejected) {
  ConnectFixture t;
  // Stall a state run by holding beta's response: crash beta so alpha's
  // proposal stays active, then have gamma try to connect via alpha (which
  // relays to beta... also dead). Instead: keep everyone alive and simply
  // start a state run, then request connect before running the scheduler.
  t.alpha_obj.value = bytes_of("pending");
  RunHandle sh = t.fed.coordinator("alpha").propagate_new_state(
      kObj, t.alpha_obj.get_state());
  RunHandle ch =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  t.fed.settle();
  ASSERT_TRUE(sh->done());
  ASSERT_TRUE(ch->done());
  // The two requests race at beta (the sponsor). Whichever arrives second
  // is refused as busy: the connect is always rejected (beta either
  // already locked onto the state run, or alpha — mid-proposal — vetoes
  // the membership change); the state run either completes or is vetoed.
  EXPECT_EQ(ch->outcome, RunResult::Outcome::kVetoed);
  EXPECT_NE(sh->outcome, RunResult::Outcome::kPending);
  // Views stayed consistent regardless of the interleaving.
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).group_tuple(),
            t.fed.coordinator("beta").replica(kObj).group_tuple());
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).agreed_tuple(),
            t.fed.coordinator("beta").replica(kObj).agreed_tuple());
  EXPECT_EQ(t.alpha_obj.value, t.beta_obj.value);
}

B2B_INSTANTIATE_RUNTIME_SUITE(MembershipRuntimes);

// --- bounded sponsor-side memory (BoundedNonceSet) ----------------------------

TEST(BoundedNonceSet, DuplicateInsertIsRejected) {
  BoundedNonceSet set(4);
  EXPECT_TRUE(set.insert("n1"));
  EXPECT_FALSE(set.insert("n1"));
  EXPECT_TRUE(set.contains("n1"));
  EXPECT_EQ(set.size(), 1u);
}

TEST(BoundedNonceSet, EvictsOldestBeyondCapacity) {
  BoundedNonceSet set(3);
  EXPECT_TRUE(set.insert("n1"));
  EXPECT_TRUE(set.insert("n2"));
  EXPECT_TRUE(set.insert("n3"));
  // The fourth nonce pushes out the oldest (watermark = insertion order).
  EXPECT_TRUE(set.insert("n4"));
  EXPECT_FALSE(set.contains("n1"));
  EXPECT_TRUE(set.contains("n2"));
  EXPECT_TRUE(set.contains("n3"));
  EXPECT_TRUE(set.contains("n4"));
  EXPECT_EQ(set.size(), set.capacity());
  // A replay of the evicted nonce is no longer recognised as a duplicate
  // here; the membership state checks reject it downstream (see the
  // ReplayedRequest... test below).
  EXPECT_TRUE(set.insert("n1"));
  EXPECT_FALSE(set.contains("n2"));
}

TEST(BoundedNonceSet, LazyEraseTombstonesAreSkippedOnEviction) {
  BoundedNonceSet set(2);
  EXPECT_TRUE(set.insert("a"));
  EXPECT_TRUE(set.insert("b"));
  set.erase("a");  // FIFO entry stays behind as a tombstone
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.insert("c"));  // b, c — still within capacity
  EXPECT_TRUE(set.insert("d"));  // evicts the tombstone AND b
  EXPECT_FALSE(set.contains("a"));
  EXPECT_FALSE(set.contains("b"));
  EXPECT_TRUE(set.contains("c"));
  EXPECT_TRUE(set.contains("d"));
  EXPECT_EQ(set.size(), 2u);
}

// A stale connect request whose nonce has aged out of the sponsor's
// bounded window is re-processed as if fresh — and must still bounce off
// the membership state checks: the subject is already a member, so the
// sponsor answers with a reject, never a second admission run. Journaled
// federation, because the unsolicited answer at the (already-member)
// subject is the journal-gated duplicate-tolerance path.
TEST(MembershipBounds, ReplayedRequestStillRejectedAfterNonceEviction) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "b2b_membership_replay";
  fs::remove_all(root);
  {
    Federation::Options options;
    options.journal_root = root.string();
    Federation fed{{"alpha", "beta", "gamma"}, options};
    TestRegister alpha_obj, beta_obj, gamma_obj;
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.register_object("gamma", kObj, gamma_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));

    RunHandle h =
        fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
    ASSERT_TRUE(fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    fed.settle();

    // Replay gamma's admission with a nonce the sponsor has never seen
    // (as after eviction from the bounded window): properly signed, sent
    // to a non-sponsor so it exercises the relay path too.
    MembershipRequest replay;
    replay.kind = MembershipKind::kConnect;
    replay.sender = PartyId{"gamma"};
    replay.object = kObj;
    replay.subjects = {PartyId{"gamma"}};
    replay.subject_public_key =
        fed.keypair("gamma").public_key().encode();
    replay.request_nonce = bytes_of("nonce-evicted-from-window");
    Bytes signature = fed.keypair("gamma").sign(replay.signed_bytes());
    wire::Encoder enc;
    replay.encode_into(enc);
    enc.blob(signature);
    fed.endpoint("gamma").send(
        PartyId{"beta"},
        Envelope{MsgType::kConnectRequest, kObj, std::move(enc).take()}
            .encode());
    fed.settle();

    // No second admission: the group is unchanged everywhere and nobody
    // was blamed (the stray reject lands as an anomaly at gamma).
    std::vector<PartyId> expected{PartyId{"alpha"}, PartyId{"beta"},
                                  PartyId{"gamma"}};
    for (const char* name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = fed.coordinator(name);
      EXPECT_EQ(coord.replica(kObj).members(), expected) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
    }
    EXPECT_FALSE(
        fed.coordinator("gamma").evidence().find_kind("anomaly").empty());
  }
  fs::remove_all(root);
}

// --- sponsor rotation under eviction (§4.5.1) ---------------------------------

// The eviction subject set contains the legitimate sponsor itself: the
// next member in rotation must sponsor the run, and a late decide forged
// under the deposed sponsor's name is ignored as an unknown run.
TEST(Membership, EvictingTheSponsorRotatesToNextInLine) {
  ConnectFixture t;
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  t.fed.settle();
  ASSERT_EQ(t.fed.coordinator("alpha").replica(kObj).connect_sponsor(),
            PartyId{"gamma"});

  // beta proposes evicting gamma — the sponsor. sponsor_for_removal must
  // skip the subject and land on beta (most recently joined survivor).
  RunHandle ev =
      t.fed.coordinator("beta").propagate_eviction(kObj, {PartyId{"gamma"}});
  ASSERT_TRUE(t.fed.run_until_done(ev));
  EXPECT_EQ(ev->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();

  std::vector<PartyId> expected{PartyId{"alpha"}, PartyId{"beta"}};
  for (const char* name : {"alpha", "beta"}) {
    Replica& r = t.fed.coordinator(name).replica(kObj);
    EXPECT_EQ(r.members(), expected) << name;
    EXPECT_EQ(r.connect_sponsor(), PartyId{"beta"}) << name;
  }

  // The evicted ex-sponsor sends a late decide for a run the survivors
  // never opened: anomaly, not blame, and the group does not move.
  Bytes authenticator = bytes_of("late-authenticator");
  MembershipDecideMsg late;
  late.sponsor = PartyId{"gamma"};
  late.object = kObj;
  late.new_group =
      GroupTuple{99, crypto::Sha256::hash(authenticator),
                 crypto::Sha256::hash(bytes_of("bogus-members"))};
  late.authenticator = authenticator;
  t.fed.endpoint("gamma").send(
      PartyId{"alpha"},
      Envelope{MsgType::kMembershipDecide, kObj, late.encode()}.encode());
  t.fed.settle();

  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).members(), expected);
  EXPECT_EQ(t.fed.coordinator("alpha").violations_detected(), 0u);
  EXPECT_FALSE(
      t.fed.coordinator("alpha").evidence().find_kind("anomaly").empty());
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).group_tuple(),
            t.fed.coordinator("beta").replica(kObj).group_tuple());
}

// --- fixed-sponsor policy (footnote 2 of §4.5.1) ------------------------------

struct FixedSponsorFixture {
  Federation fed;
  TestRegister alpha_obj, beta_obj, gamma_obj;

  static Federation::Options options() {
    Federation::Options o;
    o.sponsor_policy = SponsorPolicy::kFixedInitial;
    return o;
  }

  FixedSponsorFixture() : fed({"alpha", "beta", "gamma"}, options()) {
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.register_object("gamma", kObj, gamma_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));
  }
};

TEST(FixedSponsor, InitialMemberSponsorsConnections) {
  FixedSponsorFixture t;
  EXPECT_EQ(t.fed.coordinator("alpha").replica(kObj).connect_sponsor(),
            PartyId{"alpha"});
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"alpha"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  // After the join the sponsor is STILL alpha (no rotation).
  EXPECT_EQ(t.fed.coordinator("beta").replica(kObj).connect_sponsor(),
            PartyId{"alpha"});
}

TEST(FixedSponsor, ResponsibilityPassesWhenInitialMemberIsSubject) {
  FixedSponsorFixture t;
  Replica& r = t.fed.coordinator("beta").replica(kObj);
  EXPECT_EQ(r.disconnect_sponsor(PartyId{"alpha"}), PartyId{"beta"});
  EXPECT_EQ(r.disconnect_sponsor(PartyId{"beta"}), PartyId{"alpha"});
  // alpha (the fixed sponsor) leaves voluntarily: beta must sponsor it.
  RunHandle d = t.fed.coordinator("alpha").propagate_disconnect(kObj);
  ASSERT_TRUE(t.fed.run_until_done(d));
  EXPECT_EQ(d->outcome, RunResult::Outcome::kAgreed);
  t.fed.settle();
  EXPECT_EQ(t.fed.coordinator("beta").replica(kObj).members(),
            std::vector<PartyId>{PartyId{"beta"}});
}

TEST(FixedSponsor, MismatchedPolicyIsRejectedAsIllegitimateSponsor) {
  // One party configured with rotating policy in a fixed-policy world
  // would address the wrong sponsor; the proposal is vetoed, views stay
  // consistent. Here: gamma connects via beta (the *rotating* sponsor),
  // but beta relays to the legitimate fixed sponsor, so it still works —
  // the relay path makes the policies interoperable for connects.
  FixedSponsorFixture t;
  RunHandle h =
      t.fed.coordinator("gamma").propagate_connect(kObj, PartyId{"beta"});
  ASSERT_TRUE(t.fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
}

}  // namespace
}  // namespace b2b::core
