// Protocol message encoding: round trips, strict decoding, signature
// domain separation.
#include "b2b/messages.hpp"

#include <gtest/gtest.h>

#include "tests/support/test_keys.hpp"

namespace b2b::core {
namespace {

using crypto::test::shared_test_key;

StateTuple tuple(std::uint64_t seq, const char* tag) {
  return StateTuple{seq, crypto::Sha256::hash(bytes_of(tag)),
                    crypto::Sha256::hash(bytes_of(std::string(tag) + "s"))};
}

GroupTuple group_tuple(std::uint64_t seq) {
  return GroupTuple{seq, crypto::Sha256::hash(bytes_of("g")),
                    hash_members({PartyId{"a"}, PartyId{"b"}})};
}

ProposeMsg sample_propose() {
  ProposeMsg msg;
  msg.proposal.proposer = PartyId{"a"};
  msg.proposal.object = ObjectId{"doc"};
  msg.proposal.group = group_tuple(2);
  msg.proposal.agreed = tuple(2, "agreed");
  msg.proposal.proposed = tuple(3, "proposed");
  msg.proposal.is_update = false;
  msg.payload = bytes_of("new-state");
  msg.proposal.payload_hash = crypto::Sha256::hash(msg.payload);
  msg.signature = shared_test_key(0).sign(msg.proposal.signed_bytes());
  return msg;
}

RespondMsg sample_respond() {
  RespondMsg msg;
  msg.response.responder = PartyId{"b"};
  msg.response.object = ObjectId{"doc"};
  msg.response.proposed = tuple(3, "proposed");
  msg.response.agreed_view = tuple(2, "agreed");
  msg.response.current_view = tuple(2, "agreed");
  msg.response.group_view = group_tuple(2);
  msg.response.payload_integrity = crypto::Sha256::hash(bytes_of("new-state"));
  msg.response.decision = Decision::accepted();
  msg.signature = shared_test_key(1).sign(msg.response.signed_bytes());
  return msg;
}

TEST(MessagesTest, EnvelopeRoundTrip) {
  Envelope env{MsgType::kPropose, ObjectId{"doc"}, Bytes{1, 2, 3}};
  Envelope decoded = Envelope::decode(env.encode());
  EXPECT_EQ(decoded.type, MsgType::kPropose);
  EXPECT_EQ(decoded.object, ObjectId{"doc"});
  EXPECT_EQ(decoded.body, (Bytes{1, 2, 3}));
}

TEST(MessagesTest, ProposeRoundTrip) {
  ProposeMsg msg = sample_propose();
  EXPECT_EQ(ProposeMsg::decode(msg.encode()), msg);
}

TEST(MessagesTest, RespondRoundTrip) {
  RespondMsg msg = sample_respond();
  EXPECT_EQ(RespondMsg::decode(msg.encode()), msg);
}

TEST(MessagesTest, DecideRoundTrip) {
  DecideMsg msg;
  msg.proposer = PartyId{"a"};
  msg.object = ObjectId{"doc"};
  msg.proposed = tuple(3, "proposed");
  msg.responses = {sample_respond()};
  msg.authenticator = bytes_of("the-random-number");
  EXPECT_EQ(DecideMsg::decode(msg.encode()), msg);
}

TEST(MessagesTest, DecodeRejectsTruncatedPropose) {
  Bytes data = sample_propose().encode();
  data.resize(data.size() / 2);
  EXPECT_THROW(ProposeMsg::decode(data), CodecError);
}

TEST(MessagesTest, SignatureCoversAllProposalFields) {
  // Mutating any signed field must invalidate the signature.
  const ProposeMsg original = sample_propose();
  const crypto::RsaPublicKey& pub = shared_test_key(0).public_key();
  ASSERT_TRUE(pub.verify(original.proposal.signed_bytes(),
                         original.signature));

  auto verify_mutation = [&](auto mutate) {
    ProposeMsg copy = original;
    mutate(copy.proposal);
    return pub.verify(copy.proposal.signed_bytes(), copy.signature);
  };
  EXPECT_FALSE(verify_mutation([](Proposal& p) { p.proposer = PartyId{"x"}; }));
  EXPECT_FALSE(verify_mutation([](Proposal& p) { p.object = ObjectId{"x"}; }));
  EXPECT_FALSE(verify_mutation([](Proposal& p) { ++p.group.sequence; }));
  EXPECT_FALSE(verify_mutation([](Proposal& p) { ++p.agreed.sequence; }));
  EXPECT_FALSE(verify_mutation([](Proposal& p) { ++p.proposed.sequence; }));
  EXPECT_FALSE(verify_mutation([](Proposal& p) { p.is_update = true; }));
  EXPECT_FALSE(
      verify_mutation([](Proposal& p) { p.payload_hash[0] ^= 0x01; }));
}

TEST(MessagesTest, SignatureDomainSeparationBetweenMessageKinds) {
  // A proposal signature must not verify as a response signature even if an
  // attacker could force identical field encodings (the domain tag
  // differs). Construct the degenerate check directly over signed bytes.
  ProposeMsg propose = sample_propose();
  RespondMsg respond = sample_respond();
  EXPECT_NE(propose.proposal.signed_bytes()[0],
            respond.response.signed_bytes()[0]);

  MembershipRequest request;
  request.kind = MembershipKind::kConnect;
  request.sender = PartyId{"c"};
  request.object = ObjectId{"doc"};
  request.subjects = {PartyId{"c"}};
  request.request_nonce = bytes_of("nonce");
  EXPECT_NE(request.signed_bytes()[0], propose.proposal.signed_bytes()[0]);
}

TEST(MessagesTest, MembershipRequestRoundTrip) {
  MembershipRequest request;
  request.kind = MembershipKind::kEvict;
  request.sender = PartyId{"a"};
  request.object = ObjectId{"doc"};
  request.subjects = {PartyId{"b"}, PartyId{"c"}};
  request.request_nonce = bytes_of("nonce");
  EXPECT_EQ(MembershipRequest::decode(request.encode()), request);
}

TEST(MessagesTest, MembershipProposeRoundTrip) {
  MembershipProposeMsg msg;
  msg.proposal.sponsor = PartyId{"b"};
  msg.proposal.object = ObjectId{"doc"};
  msg.proposal.request.kind = MembershipKind::kConnect;
  msg.proposal.request.sender = PartyId{"c"};
  msg.proposal.request.object = ObjectId{"doc"};
  msg.proposal.request.subjects = {PartyId{"c"}};
  msg.proposal.request.subject_public_key =
      shared_test_key(2).public_key().encode();
  msg.proposal.request.request_nonce = bytes_of("n");
  msg.proposal.request_signature =
      shared_test_key(2).sign(msg.proposal.request.signed_bytes());
  msg.proposal.current_group = group_tuple(4);
  msg.proposal.new_group = GroupTuple{
      5, crypto::Sha256::hash(bytes_of("auth")),
      hash_members({PartyId{"a"}, PartyId{"b"}, PartyId{"c"}})};
  msg.proposal.agreed = tuple(4, "agreed");
  msg.proposal.new_members = {PartyId{"a"}, PartyId{"b"}, PartyId{"c"}};
  msg.signature = shared_test_key(1).sign(msg.proposal.signed_bytes());
  EXPECT_EQ(MembershipProposeMsg::decode(msg.encode()), msg);
}

TEST(MessagesTest, MembershipDecideRoundTrip) {
  MembershipRespondMsg resp;
  resp.response.responder = PartyId{"a"};
  resp.response.object = ObjectId{"doc"};
  resp.response.new_group = group_tuple(5);
  resp.response.group_view = group_tuple(4);
  resp.response.agreed_view = tuple(4, "agreed");
  resp.response.decision = Decision::accepted();
  resp.signature = shared_test_key(0).sign(resp.response.signed_bytes());

  MembershipDecideMsg msg;
  msg.sponsor = PartyId{"b"};
  msg.object = ObjectId{"doc"};
  msg.new_group = group_tuple(5);
  msg.responses = {resp};
  msg.authenticator = bytes_of("auth");
  EXPECT_EQ(MembershipDecideMsg::decode(msg.encode()), msg);
}

TEST(MessagesTest, ConnectWelcomeRoundTrip) {
  ConnectWelcomeMsg msg;
  msg.sponsor = PartyId{"b"};
  msg.object = ObjectId{"doc"};
  msg.new_group = group_tuple(5);
  msg.members = {PartyId{"a"}, PartyId{"b"}, PartyId{"c"}};
  msg.member_public_keys = {shared_test_key(0).public_key().encode(),
                            shared_test_key(1).public_key().encode(),
                            shared_test_key(2).public_key().encode()};
  msg.agreed = tuple(4, "agreed");
  msg.agreed_state = bytes_of("the-state");
  msg.authenticator = bytes_of("auth");
  msg.sponsor_signature = shared_test_key(1).sign(msg.signed_bytes());
  ConnectWelcomeMsg decoded = ConnectWelcomeMsg::decode(msg.encode());
  EXPECT_EQ(decoded.members, msg.members);
  EXPECT_EQ(decoded.agreed_state, msg.agreed_state);
  EXPECT_EQ(decoded.sponsor_signature, msg.sponsor_signature);
  // The sponsor signature still verifies over the decoded content.
  EXPECT_TRUE(shared_test_key(1).public_key().verify(
      decoded.signed_bytes(), decoded.sponsor_signature));
}

TEST(MessagesTest, ConnectRejectRoundTripAndSignature) {
  ConnectRejectMsg msg;
  msg.sponsor = PartyId{"b"};
  msg.object = ObjectId{"doc"};
  msg.request_nonce = bytes_of("nonce");
  msg.signature = shared_test_key(1).sign(msg.signed_bytes());
  ConnectRejectMsg decoded = ConnectRejectMsg::decode(msg.encode());
  EXPECT_EQ(decoded.request_nonce, msg.request_nonce);
  EXPECT_TRUE(shared_test_key(1).public_key().verify(decoded.signed_bytes(),
                                                     decoded.signature));
}

TEST(MessagesTest, DisconnectConfirmRoundTrip) {
  DisconnectConfirmMsg msg;
  msg.sponsor = PartyId{"b"};
  msg.object = ObjectId{"doc"};
  msg.new_group = group_tuple(9);
  msg.authenticator = bytes_of("auth");
  DisconnectConfirmMsg decoded = DisconnectConfirmMsg::decode(msg.encode());
  EXPECT_EQ(decoded.new_group, msg.new_group);
  EXPECT_EQ(decoded.authenticator, msg.authenticator);
}

}  // namespace
}  // namespace b2b::core
