// Liveness under bounded temporary failures (§4.1/§4.2, experiment E8):
// message loss, duplication, reordering, healing partitions, and node
// crash/recovery. If nobody misbehaves, agreed interactions complete.
#include <gtest/gtest.h>

#include "b2b/federation.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

const ObjectId kObj{"doc"};

struct LossyOptions {
  static Federation::Options make(double drop, double dup,
                                  std::uint64_t seed) {
    Federation::Options options;
    options.seed = seed;
    options.faults.drop_probability = drop;
    options.faults.duplicate_probability = dup;
    options.faults.min_delay_micros = 500;
    options.faults.max_delay_micros = 20'000;
    options.reliable.retransmit_interval_micros = 40'000;
    return options;
  }
};

class LossSweepTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(LossSweepTest, CoordinationCompletesDespiteLoss) {
  auto [drop, seed] = GetParam();
  Federation fed{{"a", "b", "c"}, LossyOptions::make(drop, 0.0, seed)};
  TestRegister objs[3];
  const char* names[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"a", "b", "c"}, bytes_of("genesis"));

  for (int round = 1; round <= 3; ++round) {
    objs[0].value = bytes_of("round" + std::to_string(round));
    RunHandle h =
        fed.coordinator("a").propagate_new_state(kObj, objs[0].get_state());
    ASSERT_TRUE(fed.run_until_done(h)) << "drop=" << drop << " seed=" << seed;
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
    for (int i = 0; i < 3; ++i) EXPECT_EQ(objs[i].value, objs[0].value);
  }
  // Loss actually happened (the fault model was exercised).
  if (drop > 0) {
    EXPECT_GT(fed.network().stats().datagrams_dropped, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DropRates, LossSweepTest,
    ::testing::Values(std::make_tuple(0.0, 1ull), std::make_tuple(0.1, 2ull),
                      std::make_tuple(0.3, 3ull), std::make_tuple(0.5, 4ull)));

TEST(Liveness, DuplicationIsMaskedToOnceOnlyDelivery) {
  Federation fed{{"a", "b"}, LossyOptions::make(0.0, 0.5, 7)};
  TestRegister a_obj, b_obj;
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));

  for (int round = 1; round <= 5; ++round) {
    a_obj.value = bytes_of("v" + std::to_string(round));
    RunHandle h =
        fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
    ASSERT_TRUE(fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
  }
  EXPECT_EQ(b_obj.value, bytes_of("v5"));
  // Duplicates were generated and suppressed, and none surfaced as a
  // protocol-level replay violation.
  EXPECT_GT(fed.network().stats().datagrams_duplicated, 0u);
  EXPECT_GT(fed.endpoint("a").stats().duplicates_suppressed +
                fed.endpoint("b").stats().duplicates_suppressed,
            0u);
  EXPECT_EQ(fed.coordinator("a").violations_detected(), 0u);
  EXPECT_EQ(fed.coordinator("b").violations_detected(), 0u);
}

TEST(Liveness, RunStartedDuringPartitionCompletesAfterHeal) {
  Federation fed{{"a", "b"}};
  TestRegister a_obj, b_obj;
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));

  // Partition for 10 virtual seconds.
  fed.network().partition({PartyId{"a"}}, {PartyId{"b"}}, 10'000'000);

  a_obj.value = bytes_of("across-the-partition");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  // Nothing can complete while partitioned.
  fed.scheduler().run_until(5'000'000);
  EXPECT_FALSE(h->done());
  // After the heal, retransmission gets the run through.
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  EXPECT_GE(fed.scheduler().now(), 10'000'000u);
  fed.settle();
  EXPECT_EQ(b_obj.value, bytes_of("across-the-partition"));
}

TEST(Liveness, ResponderCrashDuringRunRecovers) {
  Federation fed{{"a", "b", "c"}};
  TestRegister objs[3];
  const char* names[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"a", "b", "c"}, bytes_of("genesis"));

  // Crash c before the proposal goes out.
  fed.network().set_alive(PartyId{"c"}, false);
  objs[0].value = bytes_of("survives-crash");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, objs[0].get_state());
  fed.scheduler().run_until(2'000'000);
  EXPECT_FALSE(h->done());

  // c recovers; retransmission resumes the run (§4.2: nodes eventually
  // recover and resume participation).
  fed.network().set_alive(PartyId{"c"}, true);
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(objs[2].value, bytes_of("survives-crash"));
}

TEST(Liveness, ProposerCrashAfterProposeResumesOnRecovery) {
  Federation fed{{"a", "b"}};
  TestRegister a_obj, b_obj;
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));

  a_obj.value = bytes_of("proposer-crash");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  // Let the propose out, then crash the proposer before the response
  // can reach it.
  fed.scheduler().run_until(2'000);
  fed.network().set_alive(PartyId{"a"}, false);
  fed.scheduler().run_until(1'000'000);
  EXPECT_FALSE(h->done());

  // Recovery: the persistent reliable channel retransmits b's response.
  fed.network().set_alive(PartyId{"a"}, true);
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(b_obj.value, bytes_of("proposer-crash"));
}

TEST(Liveness, RepeatedCrashRecoverCyclesEventuallyComplete) {
  Federation fed{{"a", "b"}};
  TestRegister a_obj, b_obj;
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));

  a_obj.value = bytes_of("persistent");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  // Bounce b three times while the run is in flight.
  for (int cycle = 0; cycle < 3; ++cycle) {
    fed.network().set_alive(PartyId{"b"}, false);
    fed.scheduler().run_until(fed.scheduler().now() + 200'000);
    fed.network().set_alive(PartyId{"b"}, true);
    fed.scheduler().run_until(fed.scheduler().now() + 50'000);
  }
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(b_obj.value, bytes_of("persistent"));
}

TEST(Liveness, MembershipChangeCompletesUnderLoss) {
  Federation fed{{"a", "b", "c"}, LossyOptions::make(0.25, 0.1, 11)};
  TestRegister objs[3];
  const char* names[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));

  RunHandle h = fed.coordinator("c").propagate_connect(kObj, PartyId{"b"});
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(fed.coordinator("a").replica(kObj).members().size(), 3u);
  EXPECT_EQ(objs[2].value, bytes_of("genesis"));
}

TEST(Liveness, PermanentCrashBlocksButIsDetectable) {
  // The bound matters: with a *permanently* dead party, §4.1 promises no
  // termination — only detectable blocking and fail-safety.
  Federation::Options options;
  options.reliable.max_retransmits = 20;  // keep the simulation finite
  Federation fed{{"a", "b", "c"}, options};
  TestRegister objs[3];
  const char* names[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"a", "b", "c"}, bytes_of("genesis"));

  fed.network().set_alive(PartyId{"c"}, false);
  objs[0].value = bytes_of("never-agreed");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, objs[0].get_state());
  fed.settle();
  EXPECT_FALSE(h->done());
  // a holds evidence that the run is active, and b (which accepted) too.
  EXPECT_FALSE(fed.coordinator("a").replica(kObj).active_run_labels().empty());
  EXPECT_FALSE(fed.coordinator("b").replica(kObj).active_run_labels().empty());
  // No party installed anything: fail-safe.
  EXPECT_EQ(objs[1].value, bytes_of("genesis"));
  EXPECT_EQ(objs[2].value, bytes_of("genesis"));
}

TEST(Liveness, ThroughputUnderAdverseNetworkStaysConsistent) {
  // A longer soak: 20 rounds with loss, duplication and alternating
  // proposers; every round must agree and replicas must stay identical.
  Federation fed{{"x", "y", "z"}, LossyOptions::make(0.15, 0.15, 42)};
  TestRegister objs[3];
  const char* names[] = {"x", "y", "z"};
  for (int i = 0; i < 3; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"x", "y", "z"}, bytes_of("genesis"));

  for (int round = 0; round < 20; ++round) {
    int proposer = round % 3;
    objs[proposer].value = bytes_of("soak" + std::to_string(round));
    RunHandle h = fed.coordinator(names[proposer])
                      .propagate_new_state(kObj, objs[proposer].get_state());
    ASSERT_TRUE(fed.run_until_done(h)) << "round " << round;
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed) << "round " << round;
    fed.settle();
    EXPECT_EQ(objs[0].value, objs[1].value);
    EXPECT_EQ(objs[1].value, objs[2].value);
  }
  EXPECT_EQ(fed.coordinator("x").replica(kObj).agreed_tuple().sequence, 20u);
}

}  // namespace
}  // namespace b2b::core
