// Liveness under bounded temporary failures (§4.1/§4.2, experiment E8):
// message loss, duplication, reordering, healing partitions, and node
// crash/recovery. If nobody misbehaves, agreed interactions complete.
//
// The loss/duplication suites run over both runtimes (the threaded fabric
// injects the same fault classes as the simulated links); partition and
// crash/recovery choreography needs virtual-time stepping and so stays
// simulator-only.
#include <gtest/gtest.h>

#include "b2b/federation.hpp"
#include "tests/support/runtime_param.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

const ObjectId kObj{"doc"};

class LossSweepTest
    : public ::testing::TestWithParam<
          std::tuple<std::tuple<double, std::uint64_t>, RuntimeKind>> {};

TEST_P(LossSweepTest, CoordinationCompletesDespiteLoss) {
  auto [drop, seed] = std::get<0>(GetParam());
  RuntimeKind kind = std::get<1>(GetParam());
  TestRegister objs[3];
  Federation fed{{"a", "b", "c"},
                 test::runtime_options(kind, seed, drop, 0.0)};
  const char* names[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"a", "b", "c"}, bytes_of("genesis"));

  for (int round = 1; round <= 3; ++round) {
    objs[0].value = bytes_of("round" + std::to_string(round));
    RunHandle h =
        fed.coordinator("a").propagate_new_state(kObj, objs[0].get_state());
    ASSERT_TRUE(fed.run_until_done(h)) << "drop=" << drop << " seed=" << seed;
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
    for (int i = 0; i < 3; ++i) EXPECT_EQ(objs[i].value, objs[0].value);
  }
  // Loss actually happened (the fault model was exercised).
  if (drop > 0) {
    EXPECT_GT(test::fabric_stats(fed).dropped, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DropRates, LossSweepTest,
    ::testing::Combine(
        ::testing::Values(std::make_tuple(0.0, 1ull),
                          std::make_tuple(0.1, 2ull),
                          std::make_tuple(0.3, 3ull),
                          std::make_tuple(0.5, 4ull)),
        ::testing::Values(RuntimeKind::kSim, RuntimeKind::kThreaded,
                          RuntimeKind::kTcp)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::tuple<double, std::uint64_t>, RuntimeKind>>& info) {
      int percent =
          static_cast<int>(std::get<0>(std::get<0>(info.param)) * 100 + 0.5);
      return "Drop" + std::to_string(percent) +
             test::runtime_suffix(std::get<1>(info.param));
    });

class Liveness : public test::RuntimeParamTest {};

TEST_P(Liveness, DuplicationIsMaskedToOnceOnlyDelivery) {
  TestRegister a_obj, b_obj;
  Federation fed{{"a", "b"},
                 test::runtime_options(GetParam(), 7, 0.0, 0.5)};
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));

  for (int round = 1; round <= 5; ++round) {
    a_obj.value = bytes_of("v" + std::to_string(round));
    RunHandle h =
        fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
    ASSERT_TRUE(fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
  }
  EXPECT_EQ(b_obj.value, bytes_of("v5"));
  // Duplicates were generated and suppressed, and none surfaced as a
  // protocol-level replay violation.
  EXPECT_GT(test::fabric_stats(fed).duplicated, 0u);
  EXPECT_GT(fed.transport("a").stats().duplicates_suppressed +
                fed.transport("b").stats().duplicates_suppressed,
            0u);
  EXPECT_EQ(fed.coordinator("a").violations_detected(), 0u);
  EXPECT_EQ(fed.coordinator("b").violations_detected(), 0u);
}

TEST(LivenessSimOnly, RunStartedDuringPartitionCompletesAfterHeal) {
  TestRegister a_obj, b_obj;
  Federation fed{{"a", "b"}};
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));

  // Partition for 10 virtual seconds.
  fed.network().partition({PartyId{"a"}}, {PartyId{"b"}}, 10'000'000);

  a_obj.value = bytes_of("across-the-partition");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  // Nothing can complete while partitioned.
  fed.scheduler().run_until(5'000'000);
  EXPECT_FALSE(h->done());
  // After the heal, retransmission gets the run through.
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  EXPECT_GE(fed.scheduler().now(), 10'000'000u);
  fed.settle();
  EXPECT_EQ(b_obj.value, bytes_of("across-the-partition"));
}

TEST(LivenessSimOnly, ResponderCrashDuringRunRecovers) {
  TestRegister objs[3];
  Federation fed{{"a", "b", "c"}};
  const char* names[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"a", "b", "c"}, bytes_of("genesis"));

  // Crash c before the proposal goes out.
  fed.network().set_alive(PartyId{"c"}, false);
  objs[0].value = bytes_of("survives-crash");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, objs[0].get_state());
  fed.scheduler().run_until(2'000'000);
  EXPECT_FALSE(h->done());

  // c recovers; retransmission resumes the run (§4.2: nodes eventually
  // recover and resume participation).
  fed.network().set_alive(PartyId{"c"}, true);
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(objs[2].value, bytes_of("survives-crash"));
}

TEST(LivenessSimOnly, ProposerCrashAfterProposeResumesOnRecovery) {
  TestRegister a_obj, b_obj;
  Federation fed{{"a", "b"}};
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));

  a_obj.value = bytes_of("proposer-crash");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  // Let the propose out, then crash the proposer before the response
  // can reach it.
  fed.scheduler().run_until(2'000);
  fed.network().set_alive(PartyId{"a"}, false);
  fed.scheduler().run_until(1'000'000);
  EXPECT_FALSE(h->done());

  // Recovery: the persistent reliable channel retransmits b's response.
  fed.network().set_alive(PartyId{"a"}, true);
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(b_obj.value, bytes_of("proposer-crash"));
}

TEST(LivenessSimOnly, RepeatedCrashRecoverCyclesEventuallyComplete) {
  TestRegister a_obj, b_obj;
  Federation fed{{"a", "b"}};
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));

  a_obj.value = bytes_of("persistent");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  // Bounce b three times while the run is in flight.
  for (int cycle = 0; cycle < 3; ++cycle) {
    fed.network().set_alive(PartyId{"b"}, false);
    fed.scheduler().run_until(fed.scheduler().now() + 200'000);
    fed.network().set_alive(PartyId{"b"}, true);
    fed.scheduler().run_until(fed.scheduler().now() + 50'000);
  }
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(b_obj.value, bytes_of("persistent"));
}

TEST_P(Liveness, MembershipChangeCompletesUnderLoss) {
  TestRegister objs[3];
  Federation fed{{"a", "b", "c"},
                 test::runtime_options(GetParam(), 11, 0.25, 0.1)};
  const char* names[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));

  RunHandle h = fed.coordinator("c").propagate_connect(kObj, PartyId{"b"});
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(fed.coordinator("a").replica(kObj).members().size(), 3u);
  EXPECT_EQ(objs[2].value, bytes_of("genesis"));
}

TEST(LivenessSimOnly, PermanentCrashBlocksButIsDetectable) {
  // The bound matters: with a *permanently* dead party, §4.1 promises no
  // termination — only detectable blocking and fail-safety.
  Federation::Options options;
  options.reliable.max_retransmits = 20;  // keep the simulation finite
  TestRegister objs[3];
  Federation fed{{"a", "b", "c"}, options};
  const char* names[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"a", "b", "c"}, bytes_of("genesis"));

  fed.network().set_alive(PartyId{"c"}, false);
  objs[0].value = bytes_of("never-agreed");
  RunHandle h =
      fed.coordinator("a").propagate_new_state(kObj, objs[0].get_state());
  fed.settle();
  EXPECT_FALSE(h->done());
  // a holds evidence that the run is active, and b (which accepted) too.
  EXPECT_FALSE(fed.coordinator("a").replica(kObj).active_run_labels().empty());
  EXPECT_FALSE(fed.coordinator("b").replica(kObj).active_run_labels().empty());
  // No party installed anything: fail-safe.
  EXPECT_EQ(objs[1].value, bytes_of("genesis"));
  EXPECT_EQ(objs[2].value, bytes_of("genesis"));
}

TEST_P(Liveness, ThroughputUnderAdverseNetworkStaysConsistent) {
  // A longer soak: 20 rounds with loss, duplication and alternating
  // proposers; every round must agree and replicas must stay identical.
  TestRegister objs[3];
  Federation fed{{"x", "y", "z"},
                 test::runtime_options(GetParam(), 42, 0.15, 0.15)};
  const char* names[] = {"x", "y", "z"};
  for (int i = 0; i < 3; ++i) fed.register_object(names[i], kObj, objs[i]);
  fed.bootstrap_object(kObj, {"x", "y", "z"}, bytes_of("genesis"));

  for (int round = 0; round < 20; ++round) {
    int proposer = round % 3;
    objs[proposer].value = bytes_of("soak" + std::to_string(round));
    RunHandle h = fed.coordinator(names[proposer])
                      .propagate_new_state(kObj, objs[proposer].get_state());
    ASSERT_TRUE(fed.run_until_done(h)) << "round " << round;
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed) << "round " << round;
    fed.settle();
    EXPECT_EQ(objs[0].value, objs[1].value);
    EXPECT_EQ(objs[1].value, objs[2].value);
  }
  EXPECT_EQ(fed.coordinator("x").replica(kObj).agreed_tuple().sequence, 20u);
}

B2B_INSTANTIATE_RUNTIME_SUITE(Liveness);

}  // namespace
}  // namespace b2b::core
