// Durable crash recovery (write-ahead journal, §4.2 "stable storage"):
// graceful restart, the crash-point fault-injection campaign, recovery
// determinism, and transport-level suspicion of unreachable peers.
//
// The campaign sweeps every named crash point in replica.cpp (see
// src/b2b/recovery.hpp) at the party whose protocol role passes that
// point — the proposer for propose/response/decide points, a responder
// for respond/decide-recv points — kills the party there, restarts it
// from its journal and asserts:
//   safety   — no divergent validated state: after recovery all parties
//              hold identical agreed tuples, every evidence hash chain
//              verifies, and no violations were recorded;
//   liveness — the interrupted run terminates: the deployment converges
//              (and goes quiescent) after recovery.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "b2b/federation.hpp"
#include "common/error.hpp"
#include "tests/support/runtime_param.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

namespace fs = std::filesystem;

const ObjectId kObj{"ledger"};

// Crash points passed on the proposer's code path (crash "alpha").
const std::vector<std::string> kProposerPoints = {
    "propose.pre-journal",  "propose.journaled", "propose.mid-send",
    "propose.sent",         "response.pre-journal", "response.journaled",
    "decide.pre-journal",   "decide.journaled",  "decide.mid-send",
    "decide.sent",          "decide.installed",
};

// Crash points passed on a responder's code path (crash "beta").
const std::vector<std::string> kResponderPoints = {
    "respond.pre-journal",     "respond.journaled",
    "respond.sent",            "decide-recv.pre-journal",
    "decide-recv.journaled",   "decide-recv.installed",
};

std::string sanitized(const std::string& point) {
  std::string out = point;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

std::string fresh_journal_root(const std::string& tag) {
  fs::path root = fs::temp_directory_path() / ("b2b_recovery_" + tag);
  fs::remove_all(root);
  return root.string();
}

Federation::Options journaled_options(const std::string& tag,
                                      RuntimeKind kind, std::uint64_t seed) {
  Federation::Options options = test::runtime_options(kind, seed);
  options.journal_root = fresh_journal_root(tag);
  if (kind == RuntimeKind::kThreaded) {
    // Real-time probe cadence: keep the worst case (probe-driven
    // recovery) well inside the test budget.
    options.run_probe_interval_micros = 200'000;
  }
  return options;
}

/// Three organisations sharing one journaled object.
struct Parties {
  // Registers are declared before (destroyed after) the federation, so
  // the runtime's delivery threads stop before the objects they write
  // into die.
  TestRegister alpha_obj;
  TestRegister beta_obj;
  TestRegister gamma_obj;
  Federation fed;

  Parties(const std::string& tag, RuntimeKind kind, std::uint64_t seed)
      : fed({"alpha", "beta", "gamma"}, journaled_options(tag, kind, seed)) {
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.register_object("gamma", kObj, gamma_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta", "gamma"},
                         bytes_of("genesis"));
  }

  TestRegister& obj(const std::string& name) {
    if (name == "alpha") return alpha_obj;
    if (name == "beta") return beta_obj;
    return gamma_obj;
  }

  /// Agree an initial state so every journal holds a snapshot and the
  /// deployment has validated state a faulty recovery could diverge from.
  void warm_up() {
    alpha_obj.value = bytes_of("warm");
    RunHandle h =
        fed.coordinator("alpha").propagate_new_state(kObj,
                                                     alpha_obj.get_state());
    ASSERT_TRUE(fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
  }

  void check_safety() {
    const StateTuple& agreed =
        fed.coordinator("alpha").replica(kObj).agreed_tuple();
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = fed.coordinator(name);
      EXPECT_EQ(coord.replica(kObj).agreed_tuple(), agreed) << name;
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
    }
    EXPECT_EQ(alpha_obj.value, beta_obj.value);
    EXPECT_EQ(alpha_obj.value, gamma_obj.value);
  }
};

/// One campaign case on the deterministic simulator. Returns a
/// fingerprint of the full post-recovery deployment for the determinism
/// check.
Bytes run_sim_case(const std::string& point, const std::string& crasher,
                   std::uint64_t seed) {
  const std::string tag = sanitized(point) + "_" + crasher;
  Bytes fingerprint;
  {
    Parties p(tag, RuntimeKind::kSim, seed);
    p.warm_up();

    p.fed.coordinator(crasher).arm_crash_point(point);
    p.alpha_obj.value = bytes_of("v2");
    RunHandle h = p.fed.coordinator("alpha").propagate_new_state(
        kObj, p.alpha_obj.get_state());
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator(crasher).crashed(); }))
        << "crash point never hit";

    p.fed.crash_party(crasher);
    // Bounded downtime: frames sent at the dead party are dropped
    // un-acked and keep being retransmitted. (A full settle here would
    // drain those capped-but-long retransmit chains event by event.)
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party(crasher);
    p.fed.register_object(crasher, kObj, p.obj(crasher));
    EXPECT_TRUE(revived.recovered());
    EXPECT_EQ(revived.journal()->incarnation(), 2u);
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    // Liveness: the interrupted run terminates. Everything the journal
    // had seen resumes and completes; a run killed before its first
    // barrier ("propose.pre-journal") never legally existed, so the
    // deployment stays at the warm-up state.
    const std::uint64_t expected_seq =
        point == "propose.pre-journal" ? 1u : 2u;
    auto converged = [&] {
      Replica& a = p.fed.coordinator("alpha").replica(kObj);
      Replica& b = p.fed.coordinator("beta").replica(kObj);
      Replica& g = p.fed.coordinator("gamma").replica(kObj);
      return a.agreed_tuple().sequence == expected_seq &&
             a.agreed_tuple() == b.agreed_tuple() &&
             a.agreed_tuple() == g.agreed_tuple() && !a.busy() &&
             !b.busy() && !g.busy();
    };
    EXPECT_TRUE(p.fed.executor().run_until(converged))
        << "deployment did not converge after recovery";
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    p.fed.settle();

    const Bytes expected_value =
        point == "propose.pre-journal" ? bytes_of("warm") : bytes_of("v2");
    EXPECT_EQ(p.alpha_obj.value, expected_value);
    p.check_safety();

    // Deployment fingerprint: evidence tails (they hash everything that
    // came before), agreed tuples, object values, executed event count.
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = p.fed.coordinator(name);
      const store::EvidenceLog& evidence = coord.evidence();
      fingerprint.push_back(static_cast<std::uint8_t>(evidence.size()));
      if (!evidence.empty()) {
        Bytes tail = evidence.at(evidence.size() - 1).encode();
        fingerprint.insert(fingerprint.end(), tail.begin(), tail.end());
      }
      Bytes tuple = coord.replica(kObj).agreed_tuple().encode();
      fingerprint.insert(fingerprint.end(), tuple.begin(), tuple.end());
      const Bytes& value = p.obj(name).value;
      fingerprint.insert(fingerprint.end(), value.begin(), value.end());
    }
    Bytes events = bytes_of(std::to_string(p.fed.scheduler().events_executed()));
    fingerprint.insert(fingerprint.end(), events.begin(), events.end());
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
  return fingerprint;
}

// --- graceful restart (both runtimes) ---------------------------------------

class Recovery : public test::RuntimeParamTest {};

TEST_P(Recovery, GracefulRestartPreservesStateAndResumesService) {
  const std::string tag =
      "graceful_" + test::runtime_suffix(GetParam());
  {
    Parties p(tag, GetParam(), /*seed=*/7);
    p.warm_up();

    p.fed.crash_party("beta");
    Coordinator& revived = p.fed.recover_party("beta");
    p.fed.register_object("beta", kObj, p.beta_obj);
    EXPECT_TRUE(revived.recovered());
    ASSERT_NE(revived.journal(), nullptr);
    EXPECT_EQ(revived.journal()->incarnation(), 2u);
    EXPECT_TRUE(revived.resume_recovered_runs().empty());

    // The journal restored the validated state...
    EXPECT_EQ(p.beta_obj.value, bytes_of("warm"));
    EXPECT_EQ(revived.replica(kObj).agreed_tuple().sequence, 1u);
    ASSERT_TRUE(revived.checkpoints().latest(kObj).has_value());
    EXPECT_EQ(revived.checkpoints().latest(kObj)->state, bytes_of("warm"));

    // ...and the restarted party is a full citizen again.
    p.alpha_obj.value = bytes_of("after-restart");
    RunHandle h = p.fed.coordinator("alpha").propagate_new_state(
        kObj, p.alpha_obj.get_state());
    ASSERT_TRUE(p.fed.run_until_done(h));
    EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    p.fed.settle();
    EXPECT_EQ(p.beta_obj.value, bytes_of("after-restart"));
    p.check_safety();
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

B2B_INSTANTIATE_RUNTIME_SUITE(Recovery);

// --- the crash-point campaign (deterministic simulator) ---------------------

TEST(CrashCampaign, ProposerCrashEveryPoint) {
  for (const std::string& point : kProposerPoints) {
    SCOPED_TRACE(point);
    run_sim_case(point, "alpha", /*seed=*/11);
  }
}

TEST(CrashCampaign, ResponderCrashEveryPoint) {
  for (const std::string& point : kResponderPoints) {
    SCOPED_TRACE(point);
    run_sim_case(point, "beta", /*seed=*/11);
  }
}

TEST(CrashCampaign, RecoveryIsDeterministic) {
  // Same seed, same crash: the entire post-recovery deployment —
  // evidence tails, tuples, values, event count — must reproduce
  // bit-for-bit.
  for (const auto& [point, crasher] :
       std::vector<std::pair<std::string, std::string>>{
           {"response.journaled", "alpha"}, {"respond.sent", "beta"}}) {
    SCOPED_TRACE(point);
    Bytes first = run_sim_case(point, crasher, /*seed=*/23);
    Bytes second = run_sim_case(point, crasher, /*seed=*/23);
    EXPECT_EQ(first, second);
  }
}

// --- representative crashes on real threads ---------------------------------

/// One campaign case on the threaded runtime: handles (atomics) are
/// awaited instead of polling replica state from the test thread, and
/// convergence is asserted only after settle()'s synchronisation.
void run_threaded_case(const std::string& point, const std::string& crasher) {
  const std::string tag = sanitized(point) + "_" + crasher + "_threaded";
  {
    Parties p(tag, RuntimeKind::kThreaded, /*seed=*/5);
    p.warm_up();

    p.fed.coordinator(crasher).arm_crash_point(point);
    p.alpha_obj.value = bytes_of("v2");
    RunHandle h = p.fed.coordinator("alpha").propagate_new_state(
        kObj, p.alpha_obj.get_state());
    ASSERT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator(crasher).crashed(); }));

    p.fed.crash_party(crasher);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    Coordinator& revived = p.fed.recover_party(crasher);
    p.fed.register_object(crasher, kObj, p.obj(crasher));
    EXPECT_TRUE(revived.recovered());
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    auto all_done = [&] {
      for (const RunHandle& r : resumed) {
        if (!r->done()) return false;
      }
      // The original handle only resolves when the proposer survives;
      // a crashed proposer's run continues under its resumed handle.
      return crasher == "alpha" || h->done();
    };
    ASSERT_TRUE(p.fed.executor().run_until(all_done));
    p.fed.settle();

    EXPECT_EQ(p.alpha_obj.value, bytes_of("v2"));
    EXPECT_EQ(
        p.fed.coordinator(crasher).replica(kObj).agreed_tuple().sequence,
        2u);
    p.check_safety();
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

TEST(CrashCampaignThreaded, ProposerCrashAfterDecideJournaled) {
  run_threaded_case("decide.journaled", "alpha");
}

TEST(CrashCampaignThreaded, ResponderCrashAfterRespondJournaled) {
  run_threaded_case("respond.journaled", "beta");
}

// --- delivery failure -> suspicion ------------------------------------------

TEST(Recovery, ExhaustedRetransmissionMarksPeerSuspect) {
  const std::string tag = "suspect";
  {
    Federation::Options options =
        journaled_options(tag, RuntimeKind::kSim, /*seed=*/3);
    options.reliable.max_retransmits = 5;

    TestRegister alpha_obj;
    TestRegister beta_obj;
    TestRegister gamma_obj;
    Federation fed({"alpha", "beta", "gamma"}, options);
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.register_object("gamma", kObj, gamma_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta", "gamma"},
                         bytes_of("genesis"));

    fed.crash_party("beta");
    alpha_obj.value = bytes_of("v1");
    fed.coordinator("alpha").propagate_new_state(kObj,
                                                 alpha_obj.get_state());
    EXPECT_TRUE(fed.executor().run_until([&] {
      return fed.coordinator("alpha").suspected_peers().contains(
          PartyId{"beta"});
    }));
    EXPECT_FALSE(
        fed.coordinator("alpha")
            .evidence()
            .find_kind("peer.suspect")
            .empty());
    // Suspicion is transport-level, not an accusation of misbehaviour.
    EXPECT_EQ(fed.coordinator("alpha").violations_detected(), 0u);
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

}  // namespace
}  // namespace b2b::core
