// Durable crash recovery (write-ahead journal, §4.2 "stable storage"):
// graceful restart, the crash-point fault-injection campaign, recovery
// determinism, and transport-level suspicion of unreachable peers.
//
// The campaign sweeps every named crash point in replica.cpp (see
// src/b2b/recovery.hpp) at the party whose protocol role passes that
// point — the proposer for propose/response/decide points, a responder
// for respond/decide-recv points — kills the party there, restarts it
// from its journal and asserts:
//   safety   — no divergent validated state: after recovery all parties
//              hold identical agreed tuples, every evidence hash chain
//              verifies, and no violations were recorded;
//   liveness — the interrupted run terminates: the deployment converges
//              (and goes quiescent) after recovery.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "b2b/federation.hpp"
#include "common/error.hpp"
#include "tests/support/crash_points.hpp"
#include "tests/support/runtime_param.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

// The campaign's point lists live in tests/support/crash_points.hpp,
// shared with the multi-object campaign in sharding_test.cpp. In this
// file the crashers are: "alpha" for proposer points, "beta" for
// responder points, "gamma" (the rotating sponsor of the trio) for
// sponsor-membership points, "beta" for recipient-membership points,
// "delta" for the subject point, "alpha" (the blocked proposer) for
// termination points.
using test::campaign_seed;
using test::kProposerPoints;
using test::kRecipientMembershipPoints;
using test::kResponderPoints;
using test::kSponsorMembershipPoints;
using test::kSubjectPoint;
using test::kTerminationPoints;

namespace fs = std::filesystem;

const ObjectId kObj{"ledger"};

std::string sanitized(const std::string& point) {
  return test::sanitized_point(point);
}

std::string fresh_journal_root(const std::string& tag) {
  fs::path root = fs::temp_directory_path() / ("b2b_recovery_" + tag);
  fs::remove_all(root);
  return root.string();
}

Federation::Options journaled_options(const std::string& tag,
                                      RuntimeKind kind, std::uint64_t seed) {
  Federation::Options options = test::runtime_options(kind, seed);
  options.journal_root = fresh_journal_root(tag);
  if (kind != RuntimeKind::kSim) {
    // Real-time probe cadence: keep the worst case (probe-driven
    // recovery) well inside the test budget.
    options.run_probe_interval_micros = 200'000;
  }
  return options;
}

/// Three organisations sharing one journaled object.
struct Parties {
  // Registers are declared before (destroyed after) the federation, so
  // the runtime's delivery threads stop before the objects they write
  // into die.
  TestRegister alpha_obj;
  TestRegister beta_obj;
  TestRegister gamma_obj;
  Federation fed;

  Parties(const std::string& tag, RuntimeKind kind, std::uint64_t seed)
      : fed({"alpha", "beta", "gamma"}, journaled_options(tag, kind, seed)) {
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.register_object("gamma", kObj, gamma_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta", "gamma"},
                         bytes_of("genesis"));
  }

  TestRegister& obj(const std::string& name) {
    if (name == "alpha") return alpha_obj;
    if (name == "beta") return beta_obj;
    return gamma_obj;
  }

  /// Agree an initial state so every journal holds a snapshot and the
  /// deployment has validated state a faulty recovery could diverge from.
  void warm_up() {
    alpha_obj.value = bytes_of("warm");
    RunHandle h =
        fed.coordinator("alpha").propagate_new_state(kObj,
                                                     alpha_obj.get_state());
    ASSERT_TRUE(fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
  }

  void check_safety() {
    const StateTuple& agreed =
        fed.coordinator("alpha").replica(kObj).agreed_tuple();
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = fed.coordinator(name);
      EXPECT_EQ(coord.replica(kObj).agreed_tuple(), agreed) << name;
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
    }
    EXPECT_EQ(alpha_obj.value, beta_obj.value);
    EXPECT_EQ(alpha_obj.value, gamma_obj.value);
  }
};

/// One campaign case on the deterministic simulator. Returns a
/// fingerprint of the full post-recovery deployment for the determinism
/// check.
Bytes run_sim_case(const std::string& point, const std::string& crasher,
                   std::uint64_t seed, const std::string& tag_suffix = "") {
  const std::string tag = sanitized(point) + "_" + crasher + tag_suffix;
  Bytes fingerprint;
  {
    Parties p(tag, RuntimeKind::kSim, seed);
    p.warm_up();

    p.fed.coordinator(crasher).arm_crash_point(point);
    p.alpha_obj.value = bytes_of("v2");
    RunHandle h = p.fed.coordinator("alpha").propagate_new_state(
        kObj, p.alpha_obj.get_state());
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator(crasher).crashed(); }))
        << "crash point never hit";

    p.fed.crash_party(crasher);
    // Bounded downtime: frames sent at the dead party are dropped
    // un-acked and keep being retransmitted. (A full settle here would
    // drain those capped-but-long retransmit chains event by event.)
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party(crasher);
    p.fed.register_object(crasher, kObj, p.obj(crasher));
    EXPECT_TRUE(revived.recovered());
    EXPECT_EQ(revived.journal()->incarnation(), 2u);
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    // Liveness: the interrupted run terminates. Everything the journal
    // had seen resumes and completes; a run killed before its first
    // barrier ("propose.pre-journal") never legally existed, so the
    // deployment stays at the warm-up state.
    const std::uint64_t expected_seq =
        point == "propose.pre-journal" ? 1u : 2u;
    auto converged = [&] {
      Replica& a = p.fed.coordinator("alpha").replica(kObj);
      Replica& b = p.fed.coordinator("beta").replica(kObj);
      Replica& g = p.fed.coordinator("gamma").replica(kObj);
      return a.agreed_tuple().sequence == expected_seq &&
             a.agreed_tuple() == b.agreed_tuple() &&
             a.agreed_tuple() == g.agreed_tuple() && !a.busy() &&
             !b.busy() && !g.busy();
    };
    EXPECT_TRUE(p.fed.executor().run_until(converged))
        << "deployment did not converge after recovery";
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    p.fed.settle();

    const Bytes expected_value =
        point == "propose.pre-journal" ? bytes_of("warm") : bytes_of("v2");
    EXPECT_EQ(p.alpha_obj.value, expected_value);
    p.check_safety();

    // Deployment fingerprint: evidence tails (they hash everything that
    // came before), agreed tuples, object values, executed event count.
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = p.fed.coordinator(name);
      const store::EvidenceLog& evidence = coord.evidence();
      fingerprint.push_back(static_cast<std::uint8_t>(evidence.size()));
      if (!evidence.empty()) {
        Bytes tail = evidence.at(evidence.size() - 1).encode();
        fingerprint.insert(fingerprint.end(), tail.begin(), tail.end());
      }
      Bytes tuple = coord.replica(kObj).agreed_tuple().encode();
      fingerprint.insert(fingerprint.end(), tuple.begin(), tuple.end());
      const Bytes& value = p.obj(name).value;
      fingerprint.insert(fingerprint.end(), value.begin(), value.end());
    }
    Bytes events = bytes_of(std::to_string(p.fed.scheduler().events_executed()));
    fingerprint.insert(fingerprint.end(), events.begin(), events.end());
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
  return fingerprint;
}

/// Four organisations for the membership campaign: alpha/beta/gamma share
/// the journaled object, delta starts outside and connects via gamma (the
/// rotating sponsor, as most recently joined of the genesis order).
struct MemberParties {
  TestRegister alpha_obj;
  TestRegister beta_obj;
  TestRegister gamma_obj;
  TestRegister delta_obj;
  Federation fed;

  MemberParties(const std::string& tag, RuntimeKind kind, std::uint64_t seed)
      : fed({"alpha", "beta", "gamma", "delta"},
            journaled_options(tag, kind, seed)) {
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.register_object("gamma", kObj, gamma_obj);
    fed.register_object("delta", kObj, delta_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta", "gamma"},
                         bytes_of("genesis"));
  }

  TestRegister& obj(const std::string& name) {
    if (name == "alpha") return alpha_obj;
    if (name == "beta") return beta_obj;
    if (name == "gamma") return gamma_obj;
    return delta_obj;
  }

  void warm_up() {
    alpha_obj.value = bytes_of("warm");
    RunHandle h =
        fed.coordinator("alpha").propagate_new_state(kObj,
                                                     alpha_obj.get_state());
    ASSERT_TRUE(fed.run_until_done(h));
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    fed.settle();
  }

  /// Identical group AND agreed tuples, every chain verifies, zero
  /// violations — evaluated over the given member set.
  void check_safety(const std::vector<std::string>& members) {
    Coordinator& first = fed.coordinator(members.front());
    const GroupTuple& group = first.replica(kObj).group_tuple();
    const StateTuple& agreed = first.replica(kObj).agreed_tuple();
    for (const std::string& name : members) {
      Coordinator& coord = fed.coordinator(name);
      EXPECT_EQ(coord.replica(kObj).group_tuple(), group) << name;
      EXPECT_EQ(coord.replica(kObj).agreed_tuple(), agreed) << name;
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
      EXPECT_EQ(obj(name).value, obj(members.front()).value) << name;
    }
  }
};

/// One membership campaign case on the deterministic simulator: delta's
/// connect run is interrupted by a crash at `point` of `crasher`, the
/// party restarts from its journal, and the deployment must still
/// converge on the four-member group. Returns a determinism fingerprint.
Bytes run_membership_sim_case(const std::string& point,
                              const std::string& crasher,
                              std::uint64_t seed,
                              const std::string& tag_suffix = "") {
  const std::string tag = "m_" + sanitized(point) + "_" + crasher + tag_suffix;
  const std::vector<std::string> kAll = {"alpha", "beta", "gamma", "delta"};
  Bytes fingerprint;
  {
    MemberParties p(tag, RuntimeKind::kSim, seed);
    p.warm_up();

    p.fed.coordinator(crasher).arm_crash_point(point);
    RunHandle h =
        p.fed.coordinator("delta").propagate_connect(kObj, PartyId{"gamma"});
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator(crasher).crashed(); }))
        << "crash point never hit";

    p.fed.crash_party(crasher);
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party(crasher);
    p.fed.register_object(crasher, kObj, p.obj(crasher));
    EXPECT_TRUE(revived.recovered());
    EXPECT_EQ(revived.journal()->incarnation(), 2u);
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    // Liveness: the interrupted connect terminates with delta admitted.
    // Even a run the sponsor lost before its first barrier is re-driven
    // by the subject's journal-gated request probe.
    auto converged = [&] {
      const GroupTuple& group =
          p.fed.coordinator("alpha").replica(kObj).group_tuple();
      for (const std::string& name : kAll) {
        Replica& r = p.fed.coordinator(name).replica(kObj);
        if (!r.connected() || r.members().size() != 4 || r.busy() ||
            !(r.group_tuple() == group)) {
          return false;
        }
      }
      return true;
    };
    EXPECT_TRUE(p.fed.executor().run_until(converged))
        << "deployment did not converge after recovery";
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    if (crasher != "delta") {
      EXPECT_TRUE(h->done());
      EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    }
    p.fed.settle();

    // The new member received the agreed (warm) state with its welcome.
    EXPECT_EQ(p.delta_obj.value, bytes_of("warm"));
    p.check_safety(kAll);

    for (const std::string& name : kAll) {
      Coordinator& coord = p.fed.coordinator(name);
      const store::EvidenceLog& evidence = coord.evidence();
      fingerprint.push_back(static_cast<std::uint8_t>(evidence.size()));
      if (!evidence.empty()) {
        Bytes tail = evidence.at(evidence.size() - 1).encode();
        fingerprint.insert(fingerprint.end(), tail.begin(), tail.end());
      }
      Bytes group = coord.replica(kObj).group_tuple().encode();
      fingerprint.insert(fingerprint.end(), group.begin(), group.end());
    }
    Bytes events = bytes_of(std::to_string(p.fed.scheduler().events_executed()));
    fingerprint.insert(fingerprint.end(), events.begin(), events.end());
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
  return fingerprint;
}

/// One termination campaign case: gamma goes silent so alpha's proposal
/// blocks, the deadline refers the run to the TTP, and alpha crashes at
/// `point` of that referral path. After restart it must re-fetch (not
/// re-litigate) the certified outcome and release the run.
void run_termination_sim_case(const std::string& point, std::uint64_t seed) {
  const std::string tag = "t_" + sanitized(point);
  {
    Parties p(tag, RuntimeKind::kSim, seed);
    p.fed.enable_ttp_termination(kObj, 500'000);
    p.warm_up();

    p.fed.crash_party("gamma");
    p.fed.coordinator("alpha").arm_crash_point(point);
    p.alpha_obj.value = bytes_of("doomed");
    RunHandle h = p.fed.coordinator("alpha").propagate_new_state(
        kObj, p.alpha_obj.get_state());
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator("alpha").crashed(); }))
        << "crash point never hit";
    EXPECT_FALSE(h->done());

    p.fed.crash_party("alpha");
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party("alpha");
    p.fed.register_object("alpha", kObj, p.alpha_obj);
    p.fed.enable_ttp_termination(kObj, 500'000);  // config is re-supplied
    EXPECT_TRUE(revived.recovered());
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    auto released = [&] {
      return p.fed.coordinator("alpha")
                 .replica(kObj)
                 .active_run_labels()
                 .empty() &&
             p.fed.coordinator("beta")
                 .replica(kObj)
                 .active_run_labels()
                 .empty();
    };
    EXPECT_TRUE(p.fed.executor().run_until(released))
        << "blocked run did not terminate after recovery";
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    p.fed.settle();

    // Fail-safe: the incomplete transcript yields a certified abort and
    // everyone rolls back to the warm state.
    EXPECT_GE(p.fed.termination_ttp().aborts_issued(), 1u);
    EXPECT_EQ(p.fed.termination_ttp().decisions_issued(), 0u);
    EXPECT_EQ(p.alpha_obj.value, bytes_of("warm"));
    EXPECT_EQ(p.beta_obj.value, bytes_of("warm"));
    EXPECT_FALSE(
        p.fed.coordinator("alpha").evidence().find_kind("ttp.abort").empty());

    // gamma restarts with only the warm state in its journal.
    Coordinator& bystander = p.fed.recover_party("gamma");
    p.fed.register_object("gamma", kObj, p.gamma_obj);
    EXPECT_TRUE(bystander.resume_recovered_runs().empty());
    p.fed.settle();
    p.check_safety();
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

// --- graceful restart (both runtimes) ---------------------------------------

class Recovery : public test::RuntimeParamTest {};

TEST_P(Recovery, GracefulRestartPreservesStateAndResumesService) {
  const std::string tag =
      "graceful_" + test::runtime_suffix(GetParam());
  {
    Parties p(tag, GetParam(), /*seed=*/7);
    p.warm_up();

    p.fed.crash_party("beta");
    Coordinator& revived = p.fed.recover_party("beta");
    p.fed.register_object("beta", kObj, p.beta_obj);
    EXPECT_TRUE(revived.recovered());
    ASSERT_NE(revived.journal(), nullptr);
    EXPECT_EQ(revived.journal()->incarnation(), 2u);
    EXPECT_TRUE(revived.resume_recovered_runs().empty());

    // The journal restored the validated state...
    EXPECT_EQ(p.beta_obj.value, bytes_of("warm"));
    EXPECT_EQ(revived.replica(kObj).agreed_tuple().sequence, 1u);
    ASSERT_TRUE(revived.checkpoints().latest(kObj).has_value());
    EXPECT_EQ(revived.checkpoints().latest(kObj)->state, bytes_of("warm"));

    // ...and the restarted party is a full citizen again.
    p.alpha_obj.value = bytes_of("after-restart");
    RunHandle h = p.fed.coordinator("alpha").propagate_new_state(
        kObj, p.alpha_obj.get_state());
    ASSERT_TRUE(p.fed.run_until_done(h));
    EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    p.fed.settle();
    EXPECT_EQ(p.beta_obj.value, bytes_of("after-restart"));
    p.check_safety();
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

// Recovery × membership interleaving: beta crashes after the decide for
// delta's join is journaled (the snapshot on disk still predates the
// change) but before it is applied; the restart must redo the decide and
// converge to the survivors' group tuple. Runs on both runtimes.
TEST_P(Recovery, MembershipDecideJournaledButUnappliedConverges) {
  const std::string tag =
      "m_interleave_" + test::runtime_suffix(GetParam());
  {
    MemberParties p(tag, GetParam(), /*seed=*/9);
    p.warm_up();

    p.fed.coordinator("beta").arm_crash_point("m-decide-recv.journaled");
    RunHandle h =
        p.fed.coordinator("delta").propagate_connect(kObj, PartyId{"gamma"});
    ASSERT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator("beta").crashed(); }));

    p.fed.crash_party("beta");
    if (GetParam() == RuntimeKind::kSim) {
      p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    Coordinator& revived = p.fed.recover_party("beta");
    p.fed.register_object("beta", kObj, p.beta_obj);
    EXPECT_TRUE(revived.recovered());
    // The journaled-but-unapplied decide is redone synchronously here.
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    auto all_done = [&] {
      for (const RunHandle& r : resumed) {
        if (!r->done()) return false;
      }
      return h->done();
    };
    ASSERT_TRUE(p.fed.executor().run_until(all_done));
    p.fed.settle();

    EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    const GroupTuple& group =
        p.fed.coordinator("alpha").replica(kObj).group_tuple();
    for (const std::string name : {"alpha", "beta", "gamma", "delta"}) {
      Coordinator& coord = p.fed.coordinator(name);
      EXPECT_EQ(coord.replica(kObj).group_tuple(), group) << name;
      EXPECT_EQ(coord.replica(kObj).members().size(), 4u) << name;
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
    }
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

B2B_INSTANTIATE_RUNTIME_SUITE(Recovery);

// --- the crash-point campaign (deterministic simulator) ---------------------

TEST(CrashCampaign, ProposerCrashEveryPoint) {
  for (const std::string& point : kProposerPoints) {
    SCOPED_TRACE(point);
    run_sim_case(point, "alpha", campaign_seed());
  }
}

TEST(CrashCampaign, ResponderCrashEveryPoint) {
  for (const std::string& point : kResponderPoints) {
    SCOPED_TRACE(point);
    run_sim_case(point, "beta", campaign_seed());
  }
}

TEST(CrashCampaign, SponsorCrashEveryMembershipPoint) {
  for (const std::string& point : kSponsorMembershipPoints) {
    SCOPED_TRACE(point);
    run_membership_sim_case(point, "gamma", campaign_seed());
  }
}

TEST(CrashCampaign, RecipientCrashEveryMembershipPoint) {
  for (const std::string& point : kRecipientMembershipPoints) {
    SCOPED_TRACE(point);
    run_membership_sim_case(point, "beta", campaign_seed());
  }
}

TEST(CrashCampaign, SubjectCrashAtRequestJournaled) {
  run_membership_sim_case("m-request.journaled", "delta", campaign_seed());
}

TEST(CrashCampaign, TerminationCrashEveryPoint) {
  for (const std::string& point : kTerminationPoints) {
    SCOPED_TRACE(point);
    run_termination_sim_case(point, campaign_seed());
  }
}

// A non-sponsor eviction proposer crashes right after journaling its
// relayed request: the restart re-sends under the ORIGINAL nonce and the
// relayed decide still reports the outcome to the recovered proposer.
TEST(CrashCampaign, RelayedEvictionProposerCrashAtRequestJournaled) {
  const std::string tag = "m_relayed_evict";
  {
    Parties p(tag, RuntimeKind::kSim, campaign_seed());
    p.warm_up();

    // alpha proposes evicting beta; the legitimate sponsor is gamma, so
    // the request is relayed — and alpha dies before sending it.
    p.fed.coordinator("alpha").arm_crash_point("m-request.journaled");
    RunHandle h =
        p.fed.coordinator("alpha").propagate_eviction(kObj, {PartyId{"beta"}});
    EXPECT_TRUE(p.fed.coordinator("alpha").crashed());
    EXPECT_EQ(h->outcome, RunResult::Outcome::kAborted);

    p.fed.crash_party("alpha");
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party("alpha");
    p.fed.register_object("alpha", kObj, p.alpha_obj);
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();
    ASSERT_EQ(resumed.size(), 1u);
    EXPECT_TRUE(p.fed.run_until_done(resumed[0]));
    EXPECT_EQ(resumed[0]->outcome, RunResult::Outcome::kAgreed);
    p.fed.settle();

    std::vector<PartyId> expected{PartyId{"alpha"}, PartyId{"gamma"}};
    EXPECT_EQ(p.fed.coordinator("alpha").replica(kObj).members(), expected);
    EXPECT_EQ(p.fed.coordinator("gamma").replica(kObj).members(), expected);
    EXPECT_EQ(p.fed.coordinator("alpha").replica(kObj).group_tuple(),
              p.fed.coordinator("gamma").replica(kObj).group_tuple());
    for (const std::string name : {"alpha", "gamma"}) {
      EXPECT_TRUE(p.fed.coordinator(name).evidence().verify_chain()) << name;
      EXPECT_EQ(p.fed.coordinator(name).violations_detected(), 0u) << name;
    }
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

// A voluntary departure survives the sponsor crashing mid-decide: the
// recovered sponsor re-drives the journaled decide and the subject still
// receives its confirm.
TEST(CrashCampaign, DisconnectSponsorCrashAtDecideJournaled) {
  const std::string tag = "m_disconnect_sponsor";
  {
    Parties p(tag, RuntimeKind::kSim, campaign_seed());
    p.warm_up();

    // alpha leaves voluntarily; the sponsor for alpha's departure is
    // gamma (most recently joined member not itself leaving).
    p.fed.coordinator("gamma").arm_crash_point("m-decide.journaled");
    RunHandle h = p.fed.coordinator("alpha").propagate_disconnect(kObj);
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator("gamma").crashed(); }));

    p.fed.crash_party("gamma");
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party("gamma");
    p.fed.register_object("gamma", kObj, p.gamma_obj);
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    auto done = [&] {
      for (const RunHandle& r : resumed) {
        if (!r->done()) return false;
      }
      return h->done();
    };
    EXPECT_TRUE(p.fed.executor().run_until(done));
    p.fed.settle();

    EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    EXPECT_FALSE(p.fed.coordinator("alpha").replica(kObj).connected());
    std::vector<PartyId> expected{PartyId{"beta"}, PartyId{"gamma"}};
    EXPECT_EQ(p.fed.coordinator("beta").replica(kObj).members(), expected);
    EXPECT_EQ(p.fed.coordinator("gamma").replica(kObj).members(), expected);
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      EXPECT_EQ(p.fed.coordinator(name).violations_detected(), 0u) << name;
    }
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

// One journal, two shards: alpha crashes with runs in flight on two
// DIFFERENT objects (both proposals journaled, the armed point fires at
// whichever decide comes first). The restart must rebuild each shard
// independently from the single journal stream and resume_recovered_runs()
// must finish BOTH interrupted runs.
TEST(CrashCampaign, CrashWithInFlightRunsOnTwoObjectsResumesBoth) {
  const std::string tag = "two_shard_resume";
  const ObjectId kOrd{"orders"};
  {
    TestRegister alpha_led, beta_led, gamma_led;
    TestRegister alpha_ord, beta_ord, gamma_ord;
    Federation fed({"alpha", "beta", "gamma"},
                   journaled_options(tag, RuntimeKind::kSim, campaign_seed()));
    fed.register_object("alpha", kObj, alpha_led);
    fed.register_object("beta", kObj, beta_led);
    fed.register_object("gamma", kObj, gamma_led);
    fed.register_object("alpha", kOrd, alpha_ord);
    fed.register_object("beta", kOrd, beta_ord);
    fed.register_object("gamma", kOrd, gamma_ord);
    fed.bootstrap_object(kObj, {"alpha", "beta", "gamma"},
                         bytes_of("genesis"));
    fed.bootstrap_object(kOrd, {"alpha", "beta", "gamma"},
                         bytes_of("o-genesis"));

    // Warm both objects so each shard has a checkpoint to restore.
    alpha_led.value = bytes_of("warm");
    RunHandle w1 = fed.coordinator("alpha").propagate_new_state(
        kObj, alpha_led.get_state());
    ASSERT_TRUE(fed.run_until_done(w1));
    alpha_ord.value = bytes_of("o-warm");
    RunHandle w2 = fed.coordinator("alpha").propagate_new_state(
        kOrd, alpha_ord.get_state());
    ASSERT_TRUE(fed.run_until_done(w2));
    fed.settle();

    // Both proposals pass their journal barrier synchronously inside
    // propagate_new_state, so both runs are on stable storage before the
    // first decide crashes the proposer.
    fed.coordinator("alpha").arm_crash_point("decide.journaled");
    alpha_led.value = bytes_of("v2");
    RunHandle h1 = fed.coordinator("alpha").propagate_new_state(
        kObj, alpha_led.get_state());
    alpha_ord.value = bytes_of("o2");
    RunHandle h2 = fed.coordinator("alpha").propagate_new_state(
        kOrd, alpha_ord.get_state());
    ASSERT_TRUE(fed.executor().run_until(
        [&] { return fed.coordinator("alpha").crashed(); }));
    (void)h1;
    (void)h2;

    fed.crash_party("alpha");
    fed.scheduler().run_until(fed.scheduler().now() + 300'000);

    Coordinator& revived = fed.recover_party("alpha");
    fed.register_object("alpha", kObj, alpha_led);
    fed.register_object("alpha", kOrd, alpha_ord);
    EXPECT_TRUE(revived.recovered());
    // Each shard came back to its checkpointed state before any redo:
    // neither in-flight decide had installed.
    EXPECT_EQ(revived.replica(kObj).agreed_tuple().sequence, 1u);
    EXPECT_EQ(revived.replica(kOrd).agreed_tuple().sequence, 1u);

    std::vector<RunHandle> resumed = revived.resume_recovered_runs();
    EXPECT_EQ(resumed.size(), 2u) << "both journaled runs must resume";

    auto converged = [&] {
      for (const std::string name : {"alpha", "beta", "gamma"}) {
        Coordinator& coord = fed.coordinator(name);
        if (coord.replica(kObj).agreed_tuple().sequence != 2u ||
            coord.replica(kOrd).agreed_tuple().sequence != 2u ||
            coord.replica(kObj).busy() || coord.replica(kOrd).busy()) {
          return false;
        }
      }
      return true;
    };
    EXPECT_TRUE(fed.executor().run_until(converged))
        << "both interrupted runs must finish after recovery";
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    fed.settle();

    EXPECT_EQ(alpha_led.value, bytes_of("v2"));
    EXPECT_EQ(alpha_ord.value, bytes_of("o2"));
    for (const std::string name : {"alpha", "beta", "gamma"}) {
      Coordinator& coord = fed.coordinator(name);
      EXPECT_EQ(coord.replica(kObj).agreed_tuple(),
                fed.coordinator("alpha").replica(kObj).agreed_tuple())
          << name;
      EXPECT_EQ(coord.replica(kOrd).agreed_tuple(),
                fed.coordinator("alpha").replica(kOrd).agreed_tuple())
          << name;
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
    }
    EXPECT_EQ(beta_led.value, bytes_of("v2"));
    EXPECT_EQ(beta_ord.value, bytes_of("o2"));
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

TEST(CrashCampaign, RecoveryIsDeterministic) {
  // Same seed, same crash: the entire post-recovery deployment —
  // evidence tails, tuples, values, event count — must reproduce
  // bit-for-bit.
  for (const auto& [point, crasher] :
       std::vector<std::pair<std::string, std::string>>{
           {"response.journaled", "alpha"}, {"respond.sent", "beta"}}) {
    SCOPED_TRACE(point);
    // Distinct tag: the sweep tests use the same (point, crasher) journal
    // roots and may run concurrently under ctest -j.
    Bytes first = run_sim_case(point, crasher, /*seed=*/23, "_det");
    Bytes second = run_sim_case(point, crasher, /*seed=*/23, "_det");
    EXPECT_EQ(first, second);
  }
}

TEST(CrashCampaign, MembershipRecoveryIsDeterministic) {
  for (const auto& [point, crasher] :
       std::vector<std::pair<std::string, std::string>>{
           {"m-response.journaled", "gamma"}, {"m-respond.sent", "beta"}}) {
    SCOPED_TRACE(point);
    Bytes first = run_membership_sim_case(point, crasher, /*seed=*/23, "_det");
    Bytes second = run_membership_sim_case(point, crasher, /*seed=*/23, "_det");
    EXPECT_EQ(first, second);
  }
}

// --- combined faults ---------------------------------------------------------

// The sponsor crashes on the first response while a partition still cuts
// off the other recipient; the partition heals during recovery and the
// re-driven run must still admit the subject.
TEST(CrashCampaignCombined, SponsorCrashDuringPartitionThatHeals) {
  const std::string tag = "m_partition_heal";
  const std::vector<std::string> kAll = {"alpha", "beta", "gamma", "delta"};
  {
    MemberParties p(tag, RuntimeKind::kSim, campaign_seed());
    p.warm_up();

    p.fed.network().partition(
        {PartyId{"alpha"}},
        {PartyId{"beta"}, PartyId{"gamma"}, PartyId{"delta"}},
        p.fed.scheduler().now() + 400'000);
    p.fed.coordinator("gamma").arm_crash_point("m-response.journaled");
    RunHandle h =
        p.fed.coordinator("delta").propagate_connect(kObj, PartyId{"gamma"});
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator("gamma").crashed(); }));

    p.fed.crash_party("gamma");
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);

    Coordinator& revived = p.fed.recover_party("gamma");
    p.fed.register_object("gamma", kObj, p.gamma_obj);
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    auto converged = [&] {
      const GroupTuple& group =
          p.fed.coordinator("alpha").replica(kObj).group_tuple();
      for (const std::string& name : kAll) {
        Replica& r = p.fed.coordinator(name).replica(kObj);
        if (!r.connected() || r.members().size() != 4 || r.busy() ||
            !(r.group_tuple() == group)) {
          return false;
        }
      }
      return true;
    };
    EXPECT_TRUE(p.fed.executor().run_until(converged))
        << "no convergence after heal + recovery";
    for (const RunHandle& r : resumed) EXPECT_TRUE(r->done());
    EXPECT_TRUE(h->done());
    EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    p.fed.settle();
    p.check_safety(kAll);
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

// The sponsor journals a connect proposal and dies before sending it;
// the survivors evict the dead sponsor (next-in-rotation takes over).
// When the deposed sponsor restarts and re-drives its run, the answers
// are stale rejects — anomalies, never violations — and its late decide
// is ignored as an unknown run.
TEST(CrashCampaignCombined, EvictionTargetsTheCrashedSponsor) {
  const std::string tag = "m_evict_crashed_sponsor";
  {
    MemberParties p(tag, RuntimeKind::kSim, campaign_seed());
    p.warm_up();

    p.fed.coordinator("gamma").arm_crash_point("m-propose.journaled");
    RunHandle connect =
        p.fed.coordinator("delta").propagate_connect(kObj, PartyId{"gamma"});
    EXPECT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator("gamma").crashed(); }));
    p.fed.crash_party("gamma");

    // The eviction's subject set contains the legitimate sponsor itself,
    // so the next member in rotation — beta — must sponsor the run.
    RunHandle ev =
        p.fed.coordinator("beta").propagate_eviction(kObj, {PartyId{"gamma"}});
    ASSERT_TRUE(p.fed.run_until_done(ev));
    EXPECT_EQ(ev->outcome, RunResult::Outcome::kAgreed);
    p.fed.settle();
    std::vector<PartyId> two{PartyId{"alpha"}, PartyId{"beta"}};
    EXPECT_EQ(p.fed.coordinator("alpha").replica(kObj).members(), two);
    EXPECT_EQ(p.fed.coordinator("beta").replica(kObj).connect_sponsor(),
              PartyId{"beta"});

    // The deposed sponsor restarts and re-drives its journaled run.
    p.fed.scheduler().run_until(p.fed.scheduler().now() + 300'000);
    Coordinator& revived = p.fed.recover_party("gamma");
    p.fed.register_object("gamma", kObj, p.gamma_obj);
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();
    auto done = [&] {
      for (const RunHandle& r : resumed) {
        if (!r->done()) return false;
      }
      return connect->done();
    };
    EXPECT_TRUE(p.fed.executor().run_until(done));
    p.fed.settle();

    // The subject's request died with the deposed sponsor's authority.
    EXPECT_EQ(connect->outcome, RunResult::Outcome::kVetoed);
    EXPECT_FALSE(p.fed.coordinator("delta").replica(kObj).connected());
    // Survivors hold identical two-member views; the late traffic from
    // the recovered ex-sponsor registered as anomalies, not blame.
    EXPECT_EQ(p.fed.coordinator("alpha").replica(kObj).members(), two);
    EXPECT_EQ(p.fed.coordinator("beta").replica(kObj).members(), two);
    EXPECT_EQ(p.fed.coordinator("alpha").replica(kObj).group_tuple(),
              p.fed.coordinator("beta").replica(kObj).group_tuple());
    for (const std::string name : {"alpha", "beta", "gamma", "delta"}) {
      Coordinator& coord = p.fed.coordinator(name);
      EXPECT_TRUE(coord.evidence().verify_chain()) << name;
      EXPECT_EQ(coord.violations_detected(), 0u) << name;
    }
    EXPECT_FALSE(
        p.fed.coordinator("alpha").evidence().find_kind("anomaly").empty());
    // The evicted party's own view is merely stale (§4.5 semantics).
    EXPECT_TRUE(p.fed.coordinator("gamma").replica(kObj).connected());
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

// --- representative crashes on real threads and real sockets ----------------

/// One campaign case on a real-time runtime (threaded or tcp): handles
/// (atomics) are awaited instead of polling replica state from the test
/// thread, and convergence is asserted only after settle()'s
/// synchronisation.
void run_realtime_case(const std::string& point, const std::string& crasher,
                       RuntimeKind kind) {
  const std::string tag = sanitized(point) + "_" + crasher + "_" +
                          test::runtime_suffix(kind);
  {
    Parties p(tag, kind, /*seed=*/5);
    p.warm_up();

    p.fed.coordinator(crasher).arm_crash_point(point);
    p.alpha_obj.value = bytes_of("v2");
    RunHandle h = p.fed.coordinator("alpha").propagate_new_state(
        kObj, p.alpha_obj.get_state());
    ASSERT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator(crasher).crashed(); }));

    p.fed.crash_party(crasher);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    Coordinator& revived = p.fed.recover_party(crasher);
    p.fed.register_object(crasher, kObj, p.obj(crasher));
    EXPECT_TRUE(revived.recovered());
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    auto all_done = [&] {
      for (const RunHandle& r : resumed) {
        if (!r->done()) return false;
      }
      // The original handle only resolves when the proposer survives;
      // a crashed proposer's run continues under its resumed handle.
      return crasher == "alpha" || h->done();
    };
    ASSERT_TRUE(p.fed.executor().run_until(all_done));
    p.fed.settle();

    EXPECT_EQ(p.alpha_obj.value, bytes_of("v2"));
    EXPECT_EQ(
        p.fed.coordinator(crasher).replica(kObj).agreed_tuple().sequence,
        2u);
    p.check_safety();
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

TEST(CrashCampaignThreaded, ProposerCrashAfterDecideJournaled) {
  run_realtime_case("decide.journaled", "alpha", RuntimeKind::kThreaded);
}

TEST(CrashCampaignThreaded, ResponderCrashAfterRespondJournaled) {
  run_realtime_case("respond.journaled", "beta", RuntimeKind::kThreaded);
}

TEST(CrashCampaignTcp, ProposerCrashAfterDecideJournaled) {
  run_realtime_case("decide.journaled", "alpha", RuntimeKind::kTcp);
}

TEST(CrashCampaignTcp, ResponderCrashAfterRespondJournaled) {
  run_realtime_case("respond.journaled", "beta", RuntimeKind::kTcp);
}

TEST(CrashCampaignReactor, ProposerCrashAfterDecideJournaled) {
  run_realtime_case("decide.journaled", "alpha", RuntimeKind::kReactor);
}

TEST(CrashCampaignReactor, ResponderCrashAfterRespondJournaled) {
  run_realtime_case("respond.journaled", "beta", RuntimeKind::kReactor);
}

/// A membership campaign case on a real-time runtime. As with
/// run_realtime_case, only handle atomics are awaited from the test
/// thread; replica state is inspected after settle().
void run_realtime_membership_case(const std::string& point,
                                  const std::string& crasher,
                                  RuntimeKind kind) {
  const std::string tag = "m_" + sanitized(point) + "_" + crasher + "_" +
                          test::runtime_suffix(kind);
  {
    MemberParties p(tag, kind, /*seed=*/5);
    p.warm_up();

    p.fed.coordinator(crasher).arm_crash_point(point);
    RunHandle h =
        p.fed.coordinator("delta").propagate_connect(kObj, PartyId{"gamma"});
    ASSERT_TRUE(p.fed.executor().run_until(
        [&] { return p.fed.coordinator(crasher).crashed(); }));

    p.fed.crash_party(crasher);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    Coordinator& revived = p.fed.recover_party(crasher);
    p.fed.register_object(crasher, kObj, p.obj(crasher));
    EXPECT_TRUE(revived.recovered());
    std::vector<RunHandle> resumed = revived.resume_recovered_runs();

    auto all_done = [&] {
      for (const RunHandle& r : resumed) {
        if (!r->done()) return false;
      }
      return h->done();
    };
    ASSERT_TRUE(p.fed.executor().run_until(all_done));
    p.fed.settle();

    EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    EXPECT_EQ(p.delta_obj.value, bytes_of("warm"));
    const std::vector<std::string> kAll = {"alpha", "beta", "gamma", "delta"};
    for (const std::string& name : kAll) {
      EXPECT_EQ(p.fed.coordinator(name).replica(kObj).members().size(), 4u)
          << name;
    }
    p.check_safety(kAll);
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

TEST(CrashCampaignThreaded, SponsorCrashAfterMembershipDecideJournaled) {
  run_realtime_membership_case("m-decide.journaled", "gamma",
                               RuntimeKind::kThreaded);
}

TEST(CrashCampaignThreaded, RecipientCrashAfterMembershipRespondJournaled) {
  run_realtime_membership_case("m-respond.journaled", "beta",
                               RuntimeKind::kThreaded);
}

TEST(CrashCampaignTcp, SponsorCrashAfterMembershipDecideJournaled) {
  run_realtime_membership_case("m-decide.journaled", "gamma",
                               RuntimeKind::kTcp);
}

TEST(CrashCampaignTcp, RecipientCrashAfterMembershipRespondJournaled) {
  run_realtime_membership_case("m-respond.journaled", "beta",
                               RuntimeKind::kTcp);
}

TEST(CrashCampaignReactor, SponsorCrashAfterMembershipDecideJournaled) {
  run_realtime_membership_case("m-decide.journaled", "gamma",
                               RuntimeKind::kReactor);
}

TEST(CrashCampaignReactor, RecipientCrashAfterMembershipRespondJournaled) {
  run_realtime_membership_case("m-respond.journaled", "beta",
                               RuntimeKind::kReactor);
}

// --- delivery failure -> suspicion ------------------------------------------

TEST(Recovery, ExhaustedRetransmissionMarksPeerSuspect) {
  const std::string tag = "suspect";
  {
    Federation::Options options =
        journaled_options(tag, RuntimeKind::kSim, /*seed=*/3);
    options.reliable.max_retransmits = 5;

    TestRegister alpha_obj;
    TestRegister beta_obj;
    TestRegister gamma_obj;
    Federation fed({"alpha", "beta", "gamma"}, options);
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.register_object("gamma", kObj, gamma_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta", "gamma"},
                         bytes_of("genesis"));

    fed.crash_party("beta");
    alpha_obj.value = bytes_of("v1");
    fed.coordinator("alpha").propagate_new_state(kObj,
                                                 alpha_obj.get_state());
    EXPECT_TRUE(fed.executor().run_until([&] {
      return fed.coordinator("alpha").suspected_peers().contains(
          PartyId{"beta"});
    }));
    EXPECT_FALSE(
        fed.coordinator("alpha")
            .evidence()
            .find_kind("peer.suspect")
            .empty());
    // Suspicion is transport-level, not an accusation of misbehaviour.
    EXPECT_EQ(fed.coordinator("alpha").violations_detected(), 0u);
  }
  fs::remove_all(fs::temp_directory_path() / ("b2b_recovery_" + tag));
}

}  // namespace
}  // namespace b2b::core
