// Safety under misbehaviour (§4.1/§4.4, experiment E7).
//
// "mallory" is a properly-keyed member whose endpoint the test takes over,
// so she can emit arbitrary signed protocol messages — every subversion
// class the paper analyses: tampered/inconsistent content, null
// transitions, replay, selective sending, omission of responses (to
// misrepresent a veto), forged decide messages. The invariant checked
// throughout: honest parties never install invalid state, and they record
// violation evidence.
//
// The Safety suite runs over both runtimes (mallory hijacks the abstract
// transport, which works identically on the simulator and on real
// threads); the Dolev-Yao intruder tests stay simulator-only because they
// splice into the raw datagram fabric.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>

#include "b2b/federation.hpp"
#include "common/error.hpp"
#include "tests/support/runtime_param.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

const ObjectId kObj{"doc"};

/// A fully test-controlled dishonest member. Construction detaches her
/// endpoint from her (honest) coordinator: incoming payloads are captured
/// for the test to inspect, outgoing messages are whatever the test crafts.
class Mallory {
 public:
  Mallory(Federation& fed, const std::string& name)
      : fed_(fed),
        name_(name),
        id_(name),
        key_(fed.keypair(name)),
        rng_(0xbadbadULL) {
    fed_.transport(name_).set_handler(
        [inbox = inbox_](const PartyId& from, const Bytes& payload) {
          std::lock_guard<std::mutex> lock(inbox->mutex);
          inbox->messages.emplace_back(from, payload);
        });
  }

  const PartyId& id() const { return id_; }

  /// Craft a signed overwrite proposal. Callers may tamper with the
  /// returned message before sending.
  ProposeMsg make_proposal(const Replica& view, Bytes new_state,
                           std::uint64_t seq_offset = 1) {
    ProposeMsg msg;
    Proposal& prop = msg.proposal;
    prop.proposer = id_;
    prop.object = kObj;
    prop.group = view.group_tuple();
    prop.agreed = view.agreed_tuple();
    authenticator_ = rng_.bytes(32);
    prop.proposed =
        StateTuple{view.last_seen_sequence() + seq_offset,
                   crypto::Sha256::hash(authenticator_),
                   crypto::Sha256::hash(new_state)};
    prop.is_update = false;
    prop.payload_hash = crypto::Sha256::hash(new_state);
    msg.payload = std::move(new_state);
    sign(msg);
    return msg;
  }

  void sign(ProposeMsg& msg) {
    msg.signature = key_.sign(msg.proposal.signed_bytes());
  }

  void send(const std::string& to, MsgType type, Bytes body) {
    Envelope env;
    env.type = type;
    env.object = kObj;
    env.body = std::move(body);
    fed_.transport(name_).send(PartyId{to}, env.encode());
  }

  /// Responses captured from honest parties, decoded.
  std::vector<RespondMsg> captured_responses() {
    std::lock_guard<std::mutex> lock(inbox_->mutex);
    std::vector<RespondMsg> out;
    for (const auto& [from, payload] : inbox_->messages) {
      Envelope env = Envelope::decode(payload);
      if (env.type == MsgType::kRespond) {
        out.push_back(RespondMsg::decode(env.body));
      }
    }
    return out;
  }

  const Bytes& authenticator() const { return authenticator_; }

 private:
  Federation& fed_;
  std::string name_;
  PartyId id_;
  const crypto::RsaPrivateKey& key_;
  crypto::ChaCha20Rng rng_;
  Bytes authenticator_;
  /// Shared with (and kept alive by) the hijack handler installed in the
  /// transport: delivery threads may still write after Mallory herself is
  /// gone, since the transport outlives her.
  struct Inbox {
    std::mutex mutex;
    std::vector<std::pair<PartyId, Bytes>> messages;
  };
  std::shared_ptr<Inbox> inbox_ = std::make_shared<Inbox>();
};

/// Honest parties bob & carol share the object with mallory.
struct SafetyFixture {
  // Registers are declared before (destroyed after) the federation, so
  // the runtime's delivery threads stop before the objects they write
  // into die.
  TestRegister bob_obj;
  TestRegister carol_obj;
  TestRegister mallory_obj;  // registered, but mallory's transport is hijacked
  Federation fed;
  Mallory mallory{fed, "mallory"};

  explicit SafetyFixture(RuntimeKind kind = RuntimeKind::kSim)
      : fed({"bob", "carol", "mallory"}, test::runtime_options(kind)) {
    fed.register_object("bob", kObj, bob_obj);
    fed.register_object("carol", kObj, carol_obj);
    fed.coordinator("mallory").register_object(kObj, mallory_obj);
    fed.bootstrap_object(kObj, {"bob", "carol", "mallory"},
                         bytes_of("genesis"));
  }

  Replica& bob() { return fed.coordinator("bob").replica(kObj); }
  Replica& carol() { return fed.coordinator("carol").replica(kObj); }

  void expect_no_state_change() {
    EXPECT_EQ(bob_obj.value, bytes_of("genesis"));
    EXPECT_EQ(carol_obj.value, bytes_of("genesis"));
    EXPECT_EQ(bob().agreed_tuple().sequence, 0u);
    EXPECT_EQ(carol().agreed_tuple().sequence, 0u);
  }
};

class Safety : public test::RuntimeParamTest {};

TEST_P(Safety, TamperedPayloadIsRejectedWithViolationEvidence) {
  SafetyFixture t(GetParam());
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("evil"));
  msg.payload = bytes_of("actually-different");  // signed hash now wrong
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.fed.settle();

  auto responses = t.mallory.captured_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].response.decision.accept);
  EXPECT_EQ(responses[0].response.decision.diagnostic,
            "payload integrity failure");
  EXPECT_GE(t.fed.coordinator("bob").violations_detected(), 1u);
  t.expect_no_state_change();
}

TEST_P(Safety, InternallyInconsistentProposalIsRejected) {
  SafetyFixture t(GetParam());
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("evil"));
  // Claim (and sign) a different resulting state hash than the payload's.
  msg.proposal.proposed.state_hash = crypto::Sha256::hash(bytes_of("other"));
  t.mallory.sign(msg);
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.fed.settle();

  auto responses = t.mallory.captured_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].response.decision.accept);
  t.expect_no_state_change();
}

TEST_P(Safety, BadSignatureIsDetectedAndIgnored) {
  SafetyFixture t(GetParam());
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("evil"));
  msg.signature[5] ^= 0xff;
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.fed.settle();
  EXPECT_TRUE(t.mallory.captured_responses().empty());
  EXPECT_GE(t.fed.coordinator("bob").violations_detected(), 1u);
  t.expect_no_state_change();
}

TEST_P(Safety, NullStateTransitionIsRejected) {
  SafetyFixture t(GetParam());
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("genesis"));
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.fed.settle();
  auto responses = t.mallory.captured_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].response.decision.diagnostic,
            "null state transition");
}

TEST_P(Safety, StaleAgreedViewIsRejected) {
  SafetyFixture t(GetParam());
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("evil"));
  msg.proposal.agreed.sequence = 7;  // fabricated agreed view
  msg.proposal.proposed.sequence = 8;
  t.mallory.sign(msg);
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.fed.settle();
  auto responses = t.mallory.captured_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].response.decision.diagnostic,
            "inconsistent agreed-state view");
}

TEST_P(Safety, ReplayedProposalIsDetected) {
  SafetyFixture t(GetParam());
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("evil"));
  Bytes body = msg.encode();
  t.mallory.send("bob", MsgType::kPropose, body);
  t.fed.settle();
  std::uint64_t violations_before =
      t.fed.coordinator("bob").violations_detected();
  t.mallory.send("bob", MsgType::kPropose, body);  // protocol-level replay
  t.fed.settle();
  EXPECT_GT(t.fed.coordinator("bob").violations_detected(), violations_before);
  // Only one response was ever produced.
  EXPECT_EQ(t.mallory.captured_responses().size(), 1u);
}

TEST_P(Safety, SelectiveSendingCannotProduceValidDecision) {
  SafetyFixture t(GetParam());
  // Mallory proposes to bob only, never to carol.
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("selective"));
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.fed.settle();
  auto responses = t.mallory.captured_responses();
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(responses[0].response.decision.accept);  // bob saw nothing odd

  // She then fabricates a decide from bob's response alone.
  DecideMsg decide;
  decide.proposer = t.mallory.id();
  decide.object = kObj;
  decide.proposed = msg.proposal.proposed;
  decide.responses = {responses[0]};
  decide.authenticator = t.mallory.authenticator();
  t.mallory.send("bob", MsgType::kDecide, decide.encode());
  t.fed.settle();

  // Bob detects the missing response from carol and refuses to install.
  EXPECT_EQ(t.bob_obj.value, bytes_of("genesis"));
  EXPECT_GE(t.fed.coordinator("bob").violations_detected(), 1u);
  // Carol holds no trace of the run at all, but bob's evidence shows an
  // active run existed (§4.4: the subset can show the run is active).
  EXPECT_EQ(t.fed.coordinator("carol").violations_detected(), 0u);
}

TEST_P(Safety, VetoCannotBeMisrepresentedAsAgreement) {
  SafetyFixture t(GetParam());
  // Carol's policy vetoes mallory's content; bob accepts it.
  t.carol_obj.policy = [](BytesView proposed, const ValidationContext&) {
    return string_of(proposed) == "evil"
               ? Decision::rejected("evil content")
               : Decision::accepted();
  };
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("evil"));
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.mallory.send("carol", MsgType::kPropose, msg.encode());
  t.fed.settle();
  auto responses = t.mallory.captured_responses();
  ASSERT_EQ(responses.size(), 2u);

  // Mallory builds a decide containing only the accepting response.
  DecideMsg decide;
  decide.proposer = t.mallory.id();
  decide.object = kObj;
  decide.proposed = msg.proposal.proposed;
  for (const auto& r : responses) {
    if (r.response.decision.accept) decide.responses.push_back(r);
  }
  ASSERT_EQ(decide.responses.size(), 1u);
  decide.authenticator = t.mallory.authenticator();
  t.mallory.send("bob", MsgType::kDecide, decide.encode());
  t.mallory.send("carol", MsgType::kDecide, decide.encode());
  t.fed.settle();

  // Neither honest party installs: bob sees carol's response missing;
  // carol additionally sees her own response misrepresented by omission.
  t.expect_no_state_change();
  EXPECT_GE(t.fed.coordinator("bob").violations_detected(), 1u);
  EXPECT_GE(t.fed.coordinator("carol").violations_detected(), 1u);

  // Third-party arbitration over the full evidence reaches the same
  // verdict: the transcript does not show a valid state.
  EvidenceVerifier verifier = t.fed.make_verifier();
  RunTranscript transcript{msg, responses, decide};
  std::vector<PartyId> recipients{PartyId{"bob"}, PartyId{"carol"}};
  VerifiedRun verdict = verifier.verify_state_run(transcript, &recipients);
  EXPECT_FALSE(verdict.agreed);
  ASSERT_EQ(verdict.vetoers.size(), 1u);
  EXPECT_EQ(verdict.vetoers[0], PartyId{"carol"});
}

TEST_P(Safety, ForgedAuthenticatorIsDetected) {
  SafetyFixture t(GetParam());
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("forged"));
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.mallory.send("carol", MsgType::kPropose, msg.encode());
  t.fed.settle();
  auto responses = t.mallory.captured_responses();
  ASSERT_EQ(responses.size(), 2u);

  DecideMsg decide;
  decide.proposer = t.mallory.id();
  decide.object = kObj;
  decide.proposed = msg.proposal.proposed;
  decide.responses = responses;
  decide.authenticator = bytes_of("not-the-real-authenticator");
  t.mallory.send("bob", MsgType::kDecide, decide.encode());
  t.fed.settle();

  t.expect_no_state_change();
  EXPECT_GE(t.fed.coordinator("bob").violations_detected(), 1u);
  // The run is still active at bob: evidence of blocking (§4.4).
  EXPECT_FALSE(t.bob().active_run_labels().empty());
}

TEST_P(Safety, GenuineDecideInstallsDespiteEarlierForgeryAttempt) {
  SafetyFixture t(GetParam());
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("eventually-ok"));
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.mallory.send("carol", MsgType::kPropose, msg.encode());
  t.fed.settle();
  auto responses = t.mallory.captured_responses();
  ASSERT_EQ(responses.size(), 2u);

  DecideMsg forged;
  forged.proposer = t.mallory.id();
  forged.object = kObj;
  forged.proposed = msg.proposal.proposed;
  forged.responses = responses;
  forged.authenticator = bytes_of("wrong");
  t.mallory.send("bob", MsgType::kDecide, forged.encode());
  t.fed.settle();
  EXPECT_EQ(t.bob_obj.value, bytes_of("genesis"));

  DecideMsg genuine = forged;
  genuine.authenticator = t.mallory.authenticator();
  t.mallory.send("bob", MsgType::kDecide, genuine.encode());
  t.mallory.send("carol", MsgType::kDecide, genuine.encode());
  t.fed.settle();
  EXPECT_EQ(t.bob_obj.value, bytes_of("eventually-ok"));
  EXPECT_EQ(t.carol_obj.value, bytes_of("eventually-ok"));
}

TEST_P(Safety, ImpersonationOfAnotherMemberIsDetected) {
  SafetyFixture t(GetParam());
  // Mallory signs as herself but claims to be bob.
  ProposeMsg msg = t.mallory.make_proposal(t.carol(), bytes_of("evil"));
  msg.proposal.proposer = PartyId{"bob"};
  t.mallory.sign(msg);  // signature is mallory's, field says bob
  t.mallory.send("carol", MsgType::kPropose, msg.encode());
  t.fed.settle();
  // carol: sender (mallory) != proposer field (bob) -> violation, no reply.
  EXPECT_TRUE(t.mallory.captured_responses().empty());
  EXPECT_GE(t.fed.coordinator("carol").violations_detected(), 1u);
  t.expect_no_state_change();
}

TEST_P(Safety, EquivocatingProposalsBothFail) {
  SafetyFixture t(GetParam());
  // Different content to bob and carol under *different* runs: neither can
  // complete because each decide would need both parties' responses to the
  // same tuple.
  ProposeMsg to_bob = t.mallory.make_proposal(t.bob(), bytes_of("for-bob"));
  Bytes bob_auth = t.mallory.authenticator();
  ProposeMsg to_carol =
      t.mallory.make_proposal(t.carol(), bytes_of("for-carol"));
  t.mallory.send("bob", MsgType::kPropose, to_bob.encode());
  t.mallory.send("carol", MsgType::kPropose, to_carol.encode());
  t.fed.settle();
  auto responses = t.mallory.captured_responses();
  ASSERT_EQ(responses.size(), 2u);

  // Try to conclude the bob-run using only bob's response.
  DecideMsg decide;
  decide.proposer = t.mallory.id();
  decide.object = kObj;
  decide.proposed = to_bob.proposal.proposed;
  for (const auto& r : responses) {
    if (r.response.proposed == to_bob.proposal.proposed) {
      decide.responses.push_back(r);
    }
  }
  decide.authenticator = bob_auth;
  t.mallory.send("bob", MsgType::kDecide, decide.encode());
  t.fed.settle();
  t.expect_no_state_change();
  EXPECT_GE(t.fed.coordinator("bob").violations_detected(), 1u);
}

TEST_P(Safety, HonestRunSurvivesArbitration) {
  // Sanity inversion: a fully honest transcript verifies as agreed.
  SafetyFixture t(GetParam());
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("honest"));
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.mallory.send("carol", MsgType::kPropose, msg.encode());
  t.fed.settle();
  auto responses = t.mallory.captured_responses();
  ASSERT_EQ(responses.size(), 2u);
  DecideMsg decide;
  decide.proposer = t.mallory.id();
  decide.object = kObj;
  decide.proposed = msg.proposal.proposed;
  decide.responses = responses;
  decide.authenticator = t.mallory.authenticator();
  t.mallory.send("bob", MsgType::kDecide, decide.encode());
  t.mallory.send("carol", MsgType::kDecide, decide.encode());
  t.fed.settle();
  EXPECT_EQ(t.bob_obj.value, bytes_of("honest"));
  EXPECT_EQ(t.carol_obj.value, bytes_of("honest"));

  EvidenceVerifier verifier = t.fed.make_verifier();
  std::vector<PartyId> recipients{PartyId{"bob"}, PartyId{"carol"}};
  VerifiedRun verdict =
      verifier.verify_state_run({msg, responses, decide}, &recipients);
  EXPECT_TRUE(verdict.evidence_intact);
  EXPECT_TRUE(verdict.agreed);
  EXPECT_TRUE(verdict.violations.empty());
}

TEST_P(Safety, BlockedRunIsVisibleAndResolvable) {
  SafetyFixture t(GetParam());
  // Mallory proposes and then goes silent: no decide ever arrives.
  ProposeMsg msg = t.mallory.make_proposal(t.bob(), bytes_of("abandoned"));
  t.mallory.send("bob", MsgType::kPropose, msg.encode());
  t.mallory.send("carol", MsgType::kPropose, msg.encode());
  t.fed.settle();

  // Both honest parties hold evidence that the run is active and are
  // blocked for further state coordination (they accepted and locked).
  ASSERT_EQ(t.bob().active_run_labels().size(), 1u);
  std::string label = t.bob().active_run_labels()[0];
  t.bob_obj.value = bytes_of("own-change");
  RunHandle h =
      t.fed.coordinator("bob").propagate_new_state(kObj, t.bob_obj.get_state());
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAborted);  // busy
  t.bob_obj.value = bytes_of("genesis");

  // Extra-protocol resolution (§7) unblocks.
  EXPECT_TRUE(t.bob().resolve_blocked_run(label));
  EXPECT_TRUE(t.carol().resolve_blocked_run(label));
  t.bob_obj.value = bytes_of("own-change");
  RunHandle h2 =
      t.fed.coordinator("bob").propagate_new_state(kObj, t.bob_obj.get_state());
  t.fed.settle();
  // Carol still accepts (mallory's hijacked replica never responds, so the
  // run cannot complete — but it must at least not be rejected as busy).
  EXPECT_NE(h2->outcome, RunResult::Outcome::kAborted);
}

// --- Dolev-Yao network intruder (§4.4) ---------------------------------------

/// Flips a byte inside the first `count` DATA payloads matching a minimum
/// size (so ACKs pass through untouched).
class TamperingIntruder : public net::Intruder {
 public:
  explicit TamperingIntruder(std::size_t count) : remaining_(count) {}

  Verdict intercept(const PartyId&, const PartyId&, Bytes& payload,
                    net::SimTime*) override {
    if (remaining_ > 0 && payload.size() > 100) {
      --remaining_;
      payload[payload.size() / 2] ^= 0x01;
      return Verdict::kTamper;
    }
    return Verdict::kPass;
  }

 private:
  std::size_t remaining_;
};

TEST(SafetyIntruder, TransientIntruderTamperingIsMaskedAsLoss) {
  TestRegister alpha_obj, beta_obj;
  Federation fed{{"alpha", "beta"}};
  fed.register_object("alpha", kObj, alpha_obj);
  fed.register_object("beta", kObj, beta_obj);
  fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));

  TamperingIntruder intruder(1);  // tampers with exactly one datagram
  fed.network().set_intruder(&intruder);

  alpha_obj.value = bytes_of("target-state-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
  RunHandle h =
      fed.coordinator("alpha").propagate_new_state(kObj, alpha_obj.get_state());
  // The tampered frame fails the transport integrity check, is treated
  // as loss and retransmitted; the run completes with the genuine bytes.
  ASSERT_TRUE(fed.run_until_done(h));
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  fed.settle();
  EXPECT_EQ(beta_obj.value, alpha_obj.value);
  EXPECT_GT(fed.endpoint("alpha").stats().retransmissions +
                fed.endpoint("beta").stats().retransmissions,
            0u);
}

TEST(SafetyIntruder, PersistentIntruderTamperingBlocksButStaysFailSafe) {
  // §4.4: against an intruder who keeps modifying traffic, "the most that
  // can be achieved is the detectable disruption of the protocol" — the
  // run blocks, and no party installs anything.
  Federation::Options options;
  options.reliable.max_retransmits = 10;  // keep the simulation finite
  TestRegister alpha_obj, beta_obj;
  Federation fed{{"alpha", "beta"}, options};
  fed.register_object("alpha", kObj, alpha_obj);
  fed.register_object("beta", kObj, beta_obj);
  fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));

  TamperingIntruder intruder(1'000'000);  // tampers with everything big
  fed.network().set_intruder(&intruder);

  alpha_obj.value = bytes_of("never-arrives-xxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
  RunHandle h =
      fed.coordinator("alpha").propagate_new_state(kObj, alpha_obj.get_state());
  fed.settle();
  EXPECT_FALSE(h->done());  // detectably blocked
  EXPECT_FALSE(
      fed.coordinator("alpha").replica(kObj).active_run_labels().empty());
  // Fail-safe: no state was installed anywhere.
  EXPECT_EQ(beta_obj.value, bytes_of("genesis"));
  EXPECT_EQ(fed.coordinator("beta").replica(kObj).agreed_tuple().sequence, 0u);
}

/// Records one copy of every datagram and re-injects each once.
class ReplayingIntruder : public net::Intruder {
 public:
  explicit ReplayingIntruder(net::SimNetwork& network) : network_(network) {}

  Verdict intercept(const PartyId& from, const PartyId& to, Bytes& payload,
                    net::SimTime*) override {
    if (!replaying_) {
      recorded_.push_back({from, to, payload});
    }
    return Verdict::kPass;
  }

  void replay_all() {
    replaying_ = true;
    for (const auto& [from, to, payload] : recorded_) {
      network_.inject(from, to, payload, /*delay=*/1'000);
    }
  }

 private:
  struct Recorded {
    PartyId from;
    PartyId to;
    Bytes payload;
  };
  net::SimNetwork& network_;
  std::vector<Recorded> recorded_;
  bool replaying_ = false;
};

TEST(SafetyIntruder, IntruderReplayIsMaskedByOnceOnlyDelivery) {
  TestRegister alpha_obj, beta_obj;
  Federation fed{{"alpha", "beta"}};
  fed.register_object("alpha", kObj, alpha_obj);
  fed.register_object("beta", kObj, beta_obj);
  fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));

  ReplayingIntruder intruder(fed.network());
  fed.network().set_intruder(&intruder);

  alpha_obj.value = bytes_of("v1");
  RunHandle h =
      fed.coordinator("alpha").propagate_new_state(kObj, alpha_obj.get_state());
  ASSERT_TRUE(fed.run_until_done(h));
  fed.settle();
  ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);

  std::uint64_t violations_before =
      fed.coordinator("alpha").violations_detected() +
      fed.coordinator("beta").violations_detected();
  intruder.replay_all();
  fed.settle();

  // The dedup layer suppressed every replayed datagram: no protocol-level
  // replays reached the replicas, no new violations, state unchanged.
  EXPECT_EQ(fed.coordinator("alpha").violations_detected() +
                fed.coordinator("beta").violations_detected(),
            violations_before);
  EXPECT_GT(fed.endpoint("beta").stats().duplicates_suppressed +
                fed.endpoint("alpha").stats().duplicates_suppressed,
            0u);
  EXPECT_EQ(beta_obj.value, bytes_of("v1"));
}

B2B_INSTANTIATE_RUNTIME_SUITE(Safety);

}  // namespace
}  // namespace b2b::core
