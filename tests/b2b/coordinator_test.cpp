// Coordinator-level behaviour: trusted time-stamps on evidence, the
// certificate directory, multi-object independence, checkpointing and
// protocol statistics.
#include <gtest/gtest.h>

#include "b2b/federation.hpp"
#include "common/error.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

const ObjectId kObj{"doc"};

struct CoordFixture {
  Federation fed{{"alpha", "beta"}};
  TestRegister alpha_obj, beta_obj;

  CoordFixture() {
    fed.register_object("alpha", kObj, alpha_obj);
    fed.register_object("beta", kObj, beta_obj);
    fed.bootstrap_object(kObj, {"alpha", "beta"}, bytes_of("genesis"));
  }

  RunHandle agree(const Bytes& state) {
    alpha_obj.value = state;
    RunHandle h = fed.coordinator("alpha").propagate_new_state(kObj, state);
    fed.run_until_done(h);
    fed.settle();
    return h;
  }
};

TEST(CoordinatorTest, EvidenceCarriesVerifiableTssStamps) {
  CoordFixture t;
  t.agree(bytes_of("v1"));
  const auto& log = t.fed.coordinator("alpha").evidence();
  ASSERT_GT(log.size(), 0u);
  std::size_t stamped = 0;
  for (const auto& record : log.records()) {
    auto unpacked = Coordinator::decode_evidence_payload(record.payload);
    ASSERT_TRUE(unpacked.timestamp.has_value()) << record.kind;
    // Every stamp covers the payload hash and verifies against the TSS key.
    EXPECT_EQ(unpacked.timestamp->message_hash,
              crypto::Sha256::hash(unpacked.payload));
    EXPECT_TRUE(crypto::TimestampService::verify(
        *unpacked.timestamp, t.fed.tss()->public_key()));
    ++stamped;
  }
  EXPECT_EQ(stamped, log.size());
}

TEST(CoordinatorTest, NoTssMeansUnstampedButUsableEvidence) {
  Federation::Options options;
  options.use_tss = false;
  Federation fed{{"a", "b"}, options};
  TestRegister a_obj, b_obj;
  fed.register_object("a", kObj, a_obj);
  fed.register_object("b", kObj, b_obj);
  fed.bootstrap_object(kObj, {"a", "b"}, bytes_of("genesis"));
  a_obj.value = bytes_of("v1");
  RunHandle h = fed.coordinator("a").propagate_new_state(kObj, a_obj.get_state());
  ASSERT_TRUE(fed.run_until_done(h));
  fed.settle();
  const auto& log = fed.coordinator("a").evidence();
  ASSERT_GT(log.size(), 0u);
  auto unpacked = Coordinator::decode_evidence_payload(log.at(0).payload);
  EXPECT_FALSE(unpacked.timestamp.has_value());
  EXPECT_TRUE(log.verify_chain());
}

TEST(CoordinatorTest, KeyDirectoryKnowsAllParties) {
  CoordFixture t;
  Coordinator& alpha = t.fed.coordinator("alpha");
  EXPECT_NE(alpha.key_of(PartyId{"alpha"}), nullptr);
  EXPECT_NE(alpha.key_of(PartyId{"beta"}), nullptr);
  EXPECT_EQ(alpha.key_of(PartyId{"stranger"}), nullptr);
  EXPECT_EQ(alpha.key_directory().size(), 2u);
}

TEST(CoordinatorTest, MultipleObjectsCoordinateIndependently) {
  Federation fed{{"a", "b"}};
  TestRegister a1, a2, b1, b2;
  const ObjectId first{"first"}, second{"second"};
  fed.register_object("a", first, a1);
  fed.register_object("b", first, b1);
  fed.register_object("a", second, a2);
  fed.register_object("b", second, b2);
  fed.bootstrap_object(first, {"a", "b"}, bytes_of("f0"));
  fed.bootstrap_object(second, {"a", "b"}, bytes_of("s0"));

  // Concurrent runs on distinct objects do not conflict (no busy rejects).
  a1.value = bytes_of("f1");
  a2.value = bytes_of("s1");
  RunHandle h1 = fed.coordinator("a").propagate_new_state(first, a1.value);
  RunHandle h2 = fed.coordinator("a").propagate_new_state(second, a2.value);
  fed.settle();
  EXPECT_EQ(h1->outcome, RunResult::Outcome::kAgreed);
  EXPECT_EQ(h2->outcome, RunResult::Outcome::kAgreed);
  EXPECT_EQ(b1.value, bytes_of("f1"));
  EXPECT_EQ(b2.value, bytes_of("s1"));
}

TEST(CoordinatorTest, RegisteringSameObjectTwiceThrows) {
  CoordFixture t;
  TestRegister another;
  EXPECT_THROW(t.fed.coordinator("alpha").register_object(kObj, another),
               Error);
  EXPECT_THROW(t.fed.coordinator("alpha").replica(ObjectId{"nope"}), Error);
  EXPECT_TRUE(t.fed.coordinator("alpha").has_object(kObj));
  EXPECT_FALSE(t.fed.coordinator("alpha").has_object(ObjectId{"nope"}));
}

TEST(CoordinatorTest, CheckpointsAccumulatePerAgreedState) {
  CoordFixture t;
  t.agree(bytes_of("v1"));
  t.agree(bytes_of("v2"));
  auto& checkpoints = t.fed.coordinator("beta").checkpoints();
  // genesis + two installs.
  EXPECT_EQ(checkpoints.count(kObj), 3u);
  auto latest = checkpoints.latest(kObj);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->state, bytes_of("v2"));
  EXPECT_EQ(latest->sequence, 2u);
  // Rollback material: the previous agreed state is retained.
  auto old = checkpoints.at_sequence(kObj, 1);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->state, bytes_of("v1"));
}

TEST(CoordinatorTest, ProtocolStatsCountPerMessageType) {
  CoordFixture t;
  t.agree(bytes_of("v1"));
  const auto& alpha_stats = t.fed.coordinator("alpha").protocol_stats();
  const auto& beta_stats = t.fed.coordinator("beta").protocol_stats();
  EXPECT_EQ(alpha_stats.sent_by_type.at(MsgType::kPropose), 1u);
  EXPECT_EQ(alpha_stats.sent_by_type.at(MsgType::kDecide), 1u);
  EXPECT_EQ(beta_stats.sent_by_type.at(MsgType::kRespond), 1u);
  EXPECT_GT(alpha_stats.envelope_bytes_sent, 0u);
  t.fed.coordinator("alpha").reset_protocol_stats();
  EXPECT_EQ(
      t.fed.coordinator("alpha").protocol_stats().envelopes_sent, 0u);
}

TEST(CoordinatorTest, MessageStoreHoldsFullRunTranscript) {
  CoordFixture t;
  RunHandle h = t.agree(bytes_of("v1"));
  const auto& messages = t.fed.coordinator("alpha").messages();
  ASSERT_TRUE(messages.has_run(h->run_label));
  // propose sent + respond received + decide sent.
  EXPECT_EQ(messages.run(h->run_label).size(), 3u);
}

}  // namespace
}  // namespace b2b::core
