// Randomised protocol soak (property test): across many seeds, a mix of
// concurrent state proposals, voluntary departures and reconnections runs
// over a lossy, duplicating network. Invariants checked after settling:
//
//  I1  every connected member holds the identical agreed tuple AND the
//      identical application state;
//  I2  group views agree across all connected members;
//  I3  no honest party ever recorded a violation (the once-only transport
//      masks every fault, so nothing should look like misbehaviour);
//  I4  every party's evidence hash chain is intact;
//  I5  agreed sequence numbers never run backwards.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <utility>

#include "b2b/federation.hpp"
#include "tests/support/crash_points.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

const ObjectId kObj{"doc"};

class ProtocolSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolSoakTest, RandomWorkloadConverges) {
  const std::uint64_t seed = GetParam();
  crypto::ChaCha20Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  Federation::Options options;
  options.seed = seed;
  options.faults.drop_probability = 0.05;
  options.faults.duplicate_probability = 0.05;
  options.faults.min_delay_micros = 200;
  options.faults.max_delay_micros = 8'000;

  const std::vector<std::string> names{"a", "b", "c", "d"};
  Federation fed{names, options};
  std::vector<std::unique_ptr<TestRegister>> objects;
  for (const auto& name : names) {
    objects.push_back(std::make_unique<TestRegister>());
    fed.register_object(name, kObj, *objects.back());
  }
  fed.bootstrap_object(kObj, names, bytes_of("genesis"));

  std::uint64_t last_agreed_seq = 0;
  int value_counter = 0;
  std::vector<RunHandle> pending;

  auto connected = [&](const std::string& name) {
    return fed.coordinator(name).replica(kObj).connected();
  };

  for (int step = 0; step < 40; ++step) {
    const std::string& actor =
        names[static_cast<std::size_t>(rng.next_below(names.size()))];
    std::uint64_t action = rng.next_below(10);

    if (action < 6) {
      // Propose a state overwrite (may race with another in-flight one).
      if (connected(actor)) {
        std::size_t index =
            static_cast<std::size_t>(&actor - names.data());
        objects[index]->value =
            bytes_of("value-" + std::to_string(++value_counter));
        pending.push_back(fed.coordinator(actor).propagate_new_state(
            kObj, objects[index]->value));
      }
    } else if (action < 8) {
      // Churn: leave if connected (and not the last member), else rejoin.
      if (connected(actor)) {
        bool someone_else_connected = false;
        for (const auto& other : names) {
          if (other != actor && connected(other)) {
            someone_else_connected = true;
            break;
          }
        }
        if (someone_else_connected) {
          pending.push_back(fed.coordinator(actor).propagate_disconnect(kObj));
        }
      } else {
        for (const auto& other : names) {
          if (other != actor && connected(other)) {
            pending.push_back(fed.coordinator(actor).propagate_connect(
                kObj, PartyId{other}));
            break;
          }
        }
      }
    }
    // Occasionally let the network settle before the next action so that
    // both racing and sequential interleavings are exercised.
    if (rng.next_below(2) == 0) fed.settle();
  }
  fed.settle();

  // All pending operations must have terminated one way or another (the
  // network has no permanent failures).
  for (const RunHandle& h : pending) {
    EXPECT_TRUE(h->done()) << "seed " << seed;
  }

  // I1 + I2: all connected members agree on state, tuples and group.
  std::optional<StateTuple> agreed;
  std::optional<GroupTuple> group;
  std::optional<Bytes> state;
  int connected_count = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    Replica& replica = fed.coordinator(names[i]).replica(kObj);
    if (!replica.connected()) continue;
    ++connected_count;
    if (!agreed.has_value()) {
      agreed = replica.agreed_tuple();
      group = replica.group_tuple();
      state = objects[i]->value;
    } else {
      EXPECT_EQ(replica.agreed_tuple(), *agreed) << names[i] << " seed " << seed;
      EXPECT_EQ(replica.group_tuple(), *group) << names[i] << " seed " << seed;
      EXPECT_EQ(objects[i]->value, *state) << names[i] << " seed " << seed;
    }
    // I5
    EXPECT_GE(replica.agreed_tuple().sequence, last_agreed_seq);
  }
  EXPECT_GT(connected_count, 0);

  for (const auto& name : names) {
    // I3: the fault model must never be mistaken for misbehaviour.
    EXPECT_EQ(fed.coordinator(name).violations_detected(), 0u)
        << name << " seed " << seed;
    // I4: evidence chains intact everywhere.
    EXPECT_TRUE(fed.coordinator(name).evidence().verify_chain())
        << name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolSoakTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// Cross-object interleaving soak (the sharded coordinator's property
// test): THREE objects share the four organisations, and every step
// randomly interleaves state runs, voluntary membership churn and
// evictions across them — so runs on different shards are perpetually in
// flight together, in random phase relative to each other. The per-seed
// workload additionally folds in B2B_CRASH_SEED (the campaign seed
// env var), so CI sweeps genuinely different interleavings.
//
// Invariants are the single-object soak's I1–I5, evaluated per object
// over its CURRENT members. An evicted party is excluded from the
// object's agreement checks (its local view is merely stale, §4.5) and
// takes no further actions on that object.
class MultiObjectSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiObjectSoakTest, RandomCrossObjectInterleavingsConverge) {
  namespace fs = std::filesystem;
  const std::uint64_t seed =
      GetParam() * 0x9e3779b97f4a7c15ULL + test::campaign_seed();
  crypto::ChaCha20Rng rng(seed ^ 0xb2bb2bULL);

  Federation::Options options;
  options.seed = seed;
  options.faults.drop_probability = 0.05;
  options.faults.duplicate_probability = 0.05;
  options.faults.min_delay_micros = 200;
  options.faults.max_delay_micros = 8'000;
  // Journaled, as deployed: the journal-gated run probes are what
  // re-drive a membership request whose relayed sponsor loses its
  // authority mid-run (evicted or departed) — without them such a run
  // can legitimately hang, with it it terminates (usually vetoed).
  const fs::path journal_root =
      fs::temp_directory_path() /
      ("b2b_mosoak_" + std::to_string(GetParam()));
  fs::remove_all(journal_root);
  options.journal_root = journal_root.string();
  options.journal_fsync = false;

  const std::vector<std::string> names{"a", "b", "c", "d"};
  const std::vector<ObjectId> kObjs = {ObjectId{"doc0"}, ObjectId{"doc1"},
                                       ObjectId{"doc2"}};
  Federation fed{names, options};
  // objects[party][object index]
  std::vector<std::vector<std::unique_ptr<TestRegister>>> objects;
  for (const auto& name : names) {
    objects.emplace_back();
    for (const ObjectId& object : kObjs) {
      objects.back().push_back(std::make_unique<TestRegister>());
      fed.register_object(name, object, *objects.back().back());
    }
  }
  for (const ObjectId& object : kObjs) {
    fed.bootstrap_object(object, names, bytes_of("genesis"));
  }

  int value_counter = 0;
  // A run is only guaranteed to terminate while its proposer remains a
  // member: a party evicted with runs in flight gets no responses for
  // them (members drop a non-member's traffic as anomalies, §4.5), so
  // the termination check below skips handles whose proposer was later
  // expelled from that object.
  struct Pending {
    RunHandle handle;
    std::size_t object;
    std::string proposer;
    std::string label;
  };
  std::vector<Pending> pending;
  // (object index, party): evicted parties sit out that object for good.
  std::set<std::pair<std::size_t, std::string>> evicted;

  auto is_evicted = [&](std::size_t o, const std::string& name) {
    return evicted.contains({o, name});
  };
  auto connected = [&](std::size_t o, const std::string& name) {
    return !is_evicted(o, name) &&
           fed.coordinator(name).replica(kObjs[o]).connected();
  };
  auto connected_peer = [&](std::size_t o, const std::string& not_me)
      -> const std::string* {
    for (const auto& other : names) {
      if (other != not_me && connected(o, other)) return &other;
    }
    return nullptr;
  };

  for (int step = 0; step < 48; ++step) {
    const std::string& actor =
        names[static_cast<std::size_t>(rng.next_below(names.size()))];
    const std::size_t actor_index =
        static_cast<std::size_t>(&actor - names.data());
    const std::size_t o = static_cast<std::size_t>(rng.next_below(3));
    const std::uint64_t action = rng.next_below(12);

    if (action < 7) {
      // A state run on one of the three shards.
      if (connected(o, actor)) {
        objects[actor_index][o]->value =
            bytes_of("value-" + std::to_string(++value_counter));
        pending.push_back({fed.coordinator(actor).propagate_new_state(
                               kObjs[o], objects[actor_index][o]->value),
                           o, actor, "state"});
      }
    } else if (action < 10) {
      // Voluntary churn on one shard.
      if (connected(o, actor)) {
        if (connected_peer(o, actor) != nullptr) {
          pending.push_back(
              {fed.coordinator(actor).propagate_disconnect(kObjs[o]), o,
               actor, "disconnect"});
        }
      } else if (!is_evicted(o, actor)) {
        if (const std::string* via = connected_peer(o, actor)) {
          pending.push_back({fed.coordinator(actor).propagate_connect(
                                 kObjs[o], PartyId{*via}),
                             o, actor, "connect via " + *via});
        }
      }
    } else {
      // An eviction, if the group can spare a member: the actor expels
      // another connected party. The subject's stale view is excluded
      // from this object's invariants from here on, whatever the run's
      // outcome (it may legitimately lose a race and abort).
      if (connected(o, actor)) {
        std::vector<std::string> candidates;
        for (const auto& other : names) {
          if (other != actor && connected(o, other)) {
            candidates.push_back(other);
          }
        }
        if (candidates.size() >= 2) {
          const std::string& subject = candidates[static_cast<std::size_t>(
              rng.next_below(candidates.size()))];
          pending.push_back({fed.coordinator(actor).propagate_eviction(
                                 kObjs[o], {PartyId{subject}}),
                             o, actor, "evict " + subject});
          evicted.emplace(o, subject);
        }
      }
    }
    if (rng.next_below(2) == 0) fed.settle();
  }
  fed.settle();

  for (const Pending& run : pending) {
    if (is_evicted(run.object, run.proposer)) continue;
    EXPECT_TRUE(run.handle->done())
        << kObjs[run.object].str() << " " << run.label << " by "
        << run.proposer << " seed " << seed;
  }

  // I1 + I2 per object, over its current (non-evicted, connected) members.
  for (std::size_t o = 0; o < kObjs.size(); ++o) {
    std::optional<StateTuple> agreed;
    std::optional<GroupTuple> group;
    std::optional<Bytes> state;
    int connected_count = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (!connected(o, names[i])) continue;
      Replica& replica = fed.coordinator(names[i]).replica(kObjs[o]);
      ++connected_count;
      if (!agreed.has_value()) {
        agreed = replica.agreed_tuple();
        group = replica.group_tuple();
        state = objects[i][o]->value;
      } else {
        EXPECT_EQ(replica.agreed_tuple(), *agreed)
            << names[i] << " " << kObjs[o].str() << " seed " << seed;
        EXPECT_EQ(replica.group_tuple(), *group)
            << names[i] << " " << kObjs[o].str() << " seed " << seed;
        EXPECT_EQ(objects[i][o]->value, *state)
            << names[i] << " " << kObjs[o].str() << " seed " << seed;
      }
    }
    EXPECT_GT(connected_count, 0) << kObjs[o].str() << " seed " << seed;
  }

  for (const auto& name : names) {
    // I3: faults and lost races never register as misbehaviour.
    EXPECT_EQ(fed.coordinator(name).violations_detected(), 0u)
        << name << " seed " << seed;
    // I4: one evidence chain per party spans all three shards and stays
    // intact (the evidence_mutex_ append order is total).
    EXPECT_TRUE(fed.coordinator(name).evidence().verify_chain())
        << name << " seed " << seed;
  }
  fs::remove_all(journal_root);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiObjectSoakTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace b2b::core
