// Randomised protocol soak (property test): across many seeds, a mix of
// concurrent state proposals, voluntary departures and reconnections runs
// over a lossy, duplicating network. Invariants checked after settling:
//
//  I1  every connected member holds the identical agreed tuple AND the
//      identical application state;
//  I2  group views agree across all connected members;
//  I3  no honest party ever recorded a violation (the once-only transport
//      masks every fault, so nothing should look like misbehaviour);
//  I4  every party's evidence hash chain is intact;
//  I5  agreed sequence numbers never run backwards.
#include <gtest/gtest.h>

#include "b2b/federation.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::core {
namespace {

using test::TestRegister;

const ObjectId kObj{"doc"};

class ProtocolSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolSoakTest, RandomWorkloadConverges) {
  const std::uint64_t seed = GetParam();
  crypto::ChaCha20Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  Federation::Options options;
  options.seed = seed;
  options.faults.drop_probability = 0.05;
  options.faults.duplicate_probability = 0.05;
  options.faults.min_delay_micros = 200;
  options.faults.max_delay_micros = 8'000;

  const std::vector<std::string> names{"a", "b", "c", "d"};
  Federation fed{names, options};
  std::vector<std::unique_ptr<TestRegister>> objects;
  for (const auto& name : names) {
    objects.push_back(std::make_unique<TestRegister>());
    fed.register_object(name, kObj, *objects.back());
  }
  fed.bootstrap_object(kObj, names, bytes_of("genesis"));

  std::uint64_t last_agreed_seq = 0;
  int value_counter = 0;
  std::vector<RunHandle> pending;

  auto connected = [&](const std::string& name) {
    return fed.coordinator(name).replica(kObj).connected();
  };

  for (int step = 0; step < 40; ++step) {
    const std::string& actor =
        names[static_cast<std::size_t>(rng.next_below(names.size()))];
    std::uint64_t action = rng.next_below(10);

    if (action < 6) {
      // Propose a state overwrite (may race with another in-flight one).
      if (connected(actor)) {
        std::size_t index =
            static_cast<std::size_t>(&actor - names.data());
        objects[index]->value =
            bytes_of("value-" + std::to_string(++value_counter));
        pending.push_back(fed.coordinator(actor).propagate_new_state(
            kObj, objects[index]->value));
      }
    } else if (action < 8) {
      // Churn: leave if connected (and not the last member), else rejoin.
      if (connected(actor)) {
        bool someone_else_connected = false;
        for (const auto& other : names) {
          if (other != actor && connected(other)) {
            someone_else_connected = true;
            break;
          }
        }
        if (someone_else_connected) {
          pending.push_back(fed.coordinator(actor).propagate_disconnect(kObj));
        }
      } else {
        for (const auto& other : names) {
          if (other != actor && connected(other)) {
            pending.push_back(fed.coordinator(actor).propagate_connect(
                kObj, PartyId{other}));
            break;
          }
        }
      }
    }
    // Occasionally let the network settle before the next action so that
    // both racing and sequential interleavings are exercised.
    if (rng.next_below(2) == 0) fed.settle();
  }
  fed.settle();

  // All pending operations must have terminated one way or another (the
  // network has no permanent failures).
  for (const RunHandle& h : pending) {
    EXPECT_TRUE(h->done()) << "seed " << seed;
  }

  // I1 + I2: all connected members agree on state, tuples and group.
  std::optional<StateTuple> agreed;
  std::optional<GroupTuple> group;
  std::optional<Bytes> state;
  int connected_count = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    Replica& replica = fed.coordinator(names[i]).replica(kObj);
    if (!replica.connected()) continue;
    ++connected_count;
    if (!agreed.has_value()) {
      agreed = replica.agreed_tuple();
      group = replica.group_tuple();
      state = objects[i]->value;
    } else {
      EXPECT_EQ(replica.agreed_tuple(), *agreed) << names[i] << " seed " << seed;
      EXPECT_EQ(replica.group_tuple(), *group) << names[i] << " seed " << seed;
      EXPECT_EQ(objects[i]->value, *state) << names[i] << " seed " << seed;
    }
    // I5
    EXPECT_GE(replica.agreed_tuple().sequence, last_agreed_seq);
  }
  EXPECT_GT(connected_count, 0);

  for (const auto& name : names) {
    // I3: the fault model must never be mistaken for misbehaviour.
    EXPECT_EQ(fed.coordinator(name).violations_detected(), 0u)
        << name << " seed " << seed;
    // I4: evidence chains intact everywhere.
    EXPECT_TRUE(fed.coordinator(name).evidence().verify_chain())
        << name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolSoakTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace b2b::core
