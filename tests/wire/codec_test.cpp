// Wire codec: round trips, strictness (truncation, overlong varints,
// trailing bytes), and fuzz against random valid streams.
#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include "crypto/chacha20.hpp"

namespace b2b::wire {
namespace {

TEST(CodecTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.u8(0xab).u16(0x1234).u32(0xdeadbeef).u64(0x0123456789abcdefULL);
  Decoder dec{enc.bytes()};
  EXPECT_EQ(dec.u8(), 0xab);
  EXPECT_EQ(dec.u16(), 0x1234);
  EXPECT_EQ(dec.u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, LittleEndianLayout) {
  Encoder enc;
  enc.u32(0x01020304);
  EXPECT_EQ(enc.bytes(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(CodecTest, VarintBoundaries) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
        0xffffffffULL, ~0ULL}) {
    Encoder enc;
    enc.varint(v);
    Decoder dec{enc.bytes()};
    EXPECT_EQ(dec.varint(), v);
    EXPECT_TRUE(dec.done());
  }
}

TEST(CodecTest, VarintSingleByteForSmallValues) {
  Encoder enc;
  enc.varint(127);
  EXPECT_EQ(enc.size(), 1u);
}

TEST(CodecTest, OverlongVarintRejected) {
  Bytes overlong{0x80, 0x00};  // non-canonical encoding of 0
  Decoder dec{overlong};
  EXPECT_THROW(dec.varint(), CodecError);
}

TEST(CodecTest, VarintOverflowRejected) {
  Bytes eleven_bytes(11, 0xff);
  Decoder dec{eleven_bytes};
  EXPECT_THROW(dec.varint(), CodecError);
}

TEST(CodecTest, BlobAndStringRoundTrip) {
  Encoder enc;
  enc.blob(Bytes{1, 2, 3}).str("hello").blob({}).str("");
  Decoder dec{enc.bytes()};
  EXPECT_EQ(dec.blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(dec.str(), "hello");
  EXPECT_TRUE(dec.blob().empty());
  EXPECT_EQ(dec.str(), "");
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, BlobLengthExceedingInputRejected) {
  Encoder enc;
  enc.varint(100);  // claims 100 bytes follow
  enc.u8(1);
  Decoder dec{enc.bytes()};
  EXPECT_THROW(dec.blob(), CodecError);
}

TEST(CodecTest, TruncatedFixedWidthRejected) {
  Bytes three{1, 2, 3};
  Decoder dec{three};
  EXPECT_THROW(dec.u32(), CodecError);
}

TEST(CodecTest, BooleanStrictness) {
  Encoder enc;
  enc.boolean(true).boolean(false).u8(2);
  Decoder dec{enc.bytes()};
  EXPECT_TRUE(dec.boolean());
  EXPECT_FALSE(dec.boolean());
  EXPECT_THROW(dec.boolean(), CodecError);
}

TEST(CodecTest, ExpectDoneCatchesTrailingBytes) {
  Encoder enc;
  enc.u8(1).u8(2);
  Decoder dec{enc.bytes()};
  dec.u8();
  EXPECT_THROW(dec.expect_done(), CodecError);
  dec.u8();
  EXPECT_NO_THROW(dec.expect_done());
}

TEST(CodecTest, RawPassthrough) {
  Encoder enc;
  enc.raw(Bytes{9, 8, 7});
  Decoder dec{enc.bytes()};
  EXPECT_EQ(dec.raw(3), (Bytes{9, 8, 7}));
  EXPECT_THROW(dec.raw(1), CodecError);
}

TEST(CodecTest, FuzzRoundTripRandomSequences) {
  crypto::ChaCha20Rng rng(std::uint64_t{2024});
  for (int iteration = 0; iteration < 200; ++iteration) {
    Encoder enc;
    std::vector<int> kinds;
    std::vector<std::uint64_t> values;
    std::vector<Bytes> blobs;
    int fields = 1 + static_cast<int>(rng.next_below(12));
    for (int f = 0; f < fields; ++f) {
      int kind = static_cast<int>(rng.next_below(4));
      kinds.push_back(kind);
      switch (kind) {
        case 0: {
          std::uint64_t v = rng.next_u64();
          values.push_back(v);
          enc.u64(v);
          break;
        }
        case 1: {
          std::uint64_t v = rng.next_u64() >> rng.next_below(64);
          values.push_back(v);
          enc.varint(v);
          break;
        }
        case 2: {
          Bytes blob = rng.bytes(rng.next_below(50));
          blobs.push_back(blob);
          enc.blob(blob);
          break;
        }
        case 3: {
          bool v = rng.next_below(2) == 1;
          values.push_back(v ? 1 : 0);
          enc.boolean(v);
          break;
        }
      }
    }
    Decoder dec{enc.bytes()};
    std::size_t vi = 0, bi = 0;
    for (int kind : kinds) {
      switch (kind) {
        case 0:
          EXPECT_EQ(dec.u64(), values[vi++]);
          break;
        case 1:
          EXPECT_EQ(dec.varint(), values[vi++]);
          break;
        case 2:
          EXPECT_EQ(dec.blob(), blobs[bi++]);
          break;
        case 3:
          EXPECT_EQ(dec.boolean() ? 1u : 0u, values[vi++]);
          break;
      }
    }
    EXPECT_NO_THROW(dec.expect_done());
  }
}

TEST(CodecTest, TruncationFuzzNeverCrashes) {
  // Decoding any prefix of a valid stream must throw CodecError (or
  // succeed for field boundaries), never crash or loop.
  crypto::ChaCha20Rng rng(std::uint64_t{99});
  Encoder enc;
  enc.u64(1).varint(300).blob(rng.bytes(20)).str("tail").boolean(true);
  const Bytes& full = enc.bytes();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes prefix(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    Decoder dec{prefix};
    try {
      dec.u64();
      dec.varint();
      dec.blob();
      dec.str();
      dec.boolean();
      dec.expect_done();
    } catch (const CodecError&) {
      // expected for most cut points
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace b2b::wire
