// Baseline plain-2PC: functional correctness (it must be a fair
// comparator) and its message complexity.
#include "baseline/plain2pc.hpp"

#include <gtest/gtest.h>

#include "net/scheduler.hpp"
#include "net/sim_runtime.hpp"
#include "tests/support/test_objects.hpp"

namespace b2b::baseline {
namespace {

using test::TestRegister;

struct PlainFixture {
  net::EventScheduler scheduler;
  net::SimNetwork net{scheduler, 31};
  std::vector<std::unique_ptr<net::ReliableEndpoint>> endpoints;
  std::vector<std::unique_ptr<net::SimTransport>> transports;
  std::vector<std::unique_ptr<TestRegister>> objects;
  std::vector<std::unique_ptr<PlainReplica>> replicas;

  explicit PlainFixture(std::size_t n) {
    std::vector<PartyId> members;
    for (std::size_t i = 0; i < n; ++i) {
      members.emplace_back("p" + std::to_string(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      endpoints.push_back(
          std::make_unique<net::ReliableEndpoint>(net, members[i]));
      transports.push_back(
          std::make_unique<net::SimTransport>(*endpoints.back()));
      objects.push_back(std::make_unique<TestRegister>());
      replicas.push_back(std::make_unique<PlainReplica>(
          members[i], ObjectId{"doc"}, *objects.back(), *transports.back()));
    }
    for (auto& replica : replicas) {
      replica->bootstrap(members, bytes_of("genesis"));
    }
  }
};

TEST(Plain2pcTest, AgreementReplicatesState) {
  PlainFixture t(3);
  t.objects[0]->value = bytes_of("v1");
  RunHandle h = t.replicas[0]->propose_state(t.objects[0]->get_state());
  t.scheduler.run();
  ASSERT_TRUE(h->done());
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  for (auto& obj : t.objects) EXPECT_EQ(obj->value, bytes_of("v1"));
}

TEST(Plain2pcTest, VetoRollsBack) {
  PlainFixture t(2);
  t.objects[1]->policy = [](BytesView, const core::ValidationContext&) {
    return core::Decision::rejected("no");
  };
  t.objects[0]->value = bytes_of("v1");
  RunHandle h = t.replicas[0]->propose_state(t.objects[0]->get_state());
  t.scheduler.run();
  ASSERT_TRUE(h->done());
  EXPECT_EQ(h->outcome, RunResult::Outcome::kVetoed);
  EXPECT_EQ(t.objects[0]->value, bytes_of("genesis"));
  EXPECT_EQ(t.objects[1]->value, bytes_of("genesis"));
}

TEST(Plain2pcTest, SequentialRoundsAdvance) {
  PlainFixture t(3);
  for (int round = 1; round <= 4; ++round) {
    t.objects[0]->value = bytes_of("r" + std::to_string(round));
    RunHandle h = t.replicas[0]->propose_state(t.objects[0]->get_state());
    t.scheduler.run();
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
  }
  EXPECT_EQ(t.replicas[0]->agreed_sequence(), 4u);
  EXPECT_EQ(t.objects[2]->value, bytes_of("r4"));
}

TEST(Plain2pcTest, SameMessageComplexityShapeAsB2b) {
  // 3(N-1) messages per run, like the full protocol — so E9's overhead
  // comparison isolates evidence/crypto cost, not message count.
  for (std::size_t n : {2u, 4u, 6u}) {
    PlainFixture t(n);
    t.objects[0]->value = bytes_of("x");
    RunHandle h = t.replicas[0]->propose_state(t.objects[0]->get_state());
    t.scheduler.run();
    ASSERT_EQ(h->outcome, RunResult::Outcome::kAgreed);
    std::uint64_t total = 0;
    for (auto& replica : t.replicas) total += replica->messages_sent();
    EXPECT_EQ(total, 3 * (n - 1)) << "n=" << n;
  }
}

TEST(Plain2pcTest, BusyProposerAborts) {
  PlainFixture t(2);
  t.objects[0]->value = bytes_of("a");
  RunHandle h1 = t.replicas[0]->propose_state(t.objects[0]->get_state());
  RunHandle h2 = t.replicas[0]->propose_state(bytes_of("b"));
  EXPECT_EQ(h2->outcome, RunResult::Outcome::kAborted);
  t.scheduler.run();
  EXPECT_EQ(h1->outcome, RunResult::Outcome::kAgreed);
}

TEST(Plain2pcTest, SingletonGroupTriviallyAgrees) {
  PlainFixture t(1);
  t.objects[0]->value = bytes_of("solo");
  RunHandle h = t.replicas[0]->propose_state(t.objects[0]->get_state());
  EXPECT_EQ(h->outcome, RunResult::Outcome::kAgreed);
}

}  // namespace
}  // namespace b2b::baseline
