
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/checkpoint_store.cpp" "src/store/CMakeFiles/b2b_store.dir/checkpoint_store.cpp.o" "gcc" "src/store/CMakeFiles/b2b_store.dir/checkpoint_store.cpp.o.d"
  "/root/repo/src/store/evidence_log.cpp" "src/store/CMakeFiles/b2b_store.dir/evidence_log.cpp.o" "gcc" "src/store/CMakeFiles/b2b_store.dir/evidence_log.cpp.o.d"
  "/root/repo/src/store/message_store.cpp" "src/store/CMakeFiles/b2b_store.dir/message_store.cpp.o" "gcc" "src/store/CMakeFiles/b2b_store.dir/message_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/b2b_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/b2b_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/b2b_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
