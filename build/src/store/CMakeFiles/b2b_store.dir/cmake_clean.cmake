file(REMOVE_RECURSE
  "CMakeFiles/b2b_store.dir/checkpoint_store.cpp.o"
  "CMakeFiles/b2b_store.dir/checkpoint_store.cpp.o.d"
  "CMakeFiles/b2b_store.dir/evidence_log.cpp.o"
  "CMakeFiles/b2b_store.dir/evidence_log.cpp.o.d"
  "CMakeFiles/b2b_store.dir/message_store.cpp.o"
  "CMakeFiles/b2b_store.dir/message_store.cpp.o.d"
  "libb2b_store.a"
  "libb2b_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
