file(REMOVE_RECURSE
  "libb2b_store.a"
)
