# Empty dependencies file for b2b_store.
# This may be replaced when dependencies are built.
