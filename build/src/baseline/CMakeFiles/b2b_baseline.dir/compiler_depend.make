# Empty compiler generated dependencies file for b2b_baseline.
# This may be replaced when dependencies are built.
