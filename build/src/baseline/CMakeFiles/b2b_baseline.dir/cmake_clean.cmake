file(REMOVE_RECURSE
  "CMakeFiles/b2b_baseline.dir/plain2pc.cpp.o"
  "CMakeFiles/b2b_baseline.dir/plain2pc.cpp.o.d"
  "libb2b_baseline.a"
  "libb2b_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
