file(REMOVE_RECURSE
  "libb2b_baseline.a"
)
