file(REMOVE_RECURSE
  "libb2b_common.a"
)
