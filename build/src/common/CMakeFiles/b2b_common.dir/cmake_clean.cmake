file(REMOVE_RECURSE
  "CMakeFiles/b2b_common.dir/bytes.cpp.o"
  "CMakeFiles/b2b_common.dir/bytes.cpp.o.d"
  "CMakeFiles/b2b_common.dir/logging.cpp.o"
  "CMakeFiles/b2b_common.dir/logging.cpp.o.d"
  "libb2b_common.a"
  "libb2b_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
