# Empty compiler generated dependencies file for b2b_common.
# This may be replaced when dependencies are built.
