# Empty dependencies file for b2b_net.
# This may be replaced when dependencies are built.
