file(REMOVE_RECURSE
  "CMakeFiles/b2b_net.dir/network.cpp.o"
  "CMakeFiles/b2b_net.dir/network.cpp.o.d"
  "CMakeFiles/b2b_net.dir/reliable.cpp.o"
  "CMakeFiles/b2b_net.dir/reliable.cpp.o.d"
  "CMakeFiles/b2b_net.dir/scheduler.cpp.o"
  "CMakeFiles/b2b_net.dir/scheduler.cpp.o.d"
  "libb2b_net.a"
  "libb2b_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
