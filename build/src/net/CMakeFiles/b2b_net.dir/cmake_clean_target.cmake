file(REMOVE_RECURSE
  "libb2b_net.a"
)
