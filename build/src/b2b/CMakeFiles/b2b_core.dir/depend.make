# Empty dependencies file for b2b_core.
# This may be replaced when dependencies are built.
