
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/b2b/arbiter.cpp" "src/b2b/CMakeFiles/b2b_core.dir/arbiter.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/arbiter.cpp.o.d"
  "/root/repo/src/b2b/composite.cpp" "src/b2b/CMakeFiles/b2b_core.dir/composite.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/composite.cpp.o.d"
  "/root/repo/src/b2b/controller.cpp" "src/b2b/CMakeFiles/b2b_core.dir/controller.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/controller.cpp.o.d"
  "/root/repo/src/b2b/coordinator.cpp" "src/b2b/CMakeFiles/b2b_core.dir/coordinator.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/coordinator.cpp.o.d"
  "/root/repo/src/b2b/evidence.cpp" "src/b2b/CMakeFiles/b2b_core.dir/evidence.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/evidence.cpp.o.d"
  "/root/repo/src/b2b/federation.cpp" "src/b2b/CMakeFiles/b2b_core.dir/federation.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/federation.cpp.o.d"
  "/root/repo/src/b2b/membership.cpp" "src/b2b/CMakeFiles/b2b_core.dir/membership.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/membership.cpp.o.d"
  "/root/repo/src/b2b/messages.cpp" "src/b2b/CMakeFiles/b2b_core.dir/messages.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/messages.cpp.o.d"
  "/root/repo/src/b2b/object.cpp" "src/b2b/CMakeFiles/b2b_core.dir/object.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/object.cpp.o.d"
  "/root/repo/src/b2b/replica.cpp" "src/b2b/CMakeFiles/b2b_core.dir/replica.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/replica.cpp.o.d"
  "/root/repo/src/b2b/termination.cpp" "src/b2b/CMakeFiles/b2b_core.dir/termination.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/termination.cpp.o.d"
  "/root/repo/src/b2b/tuples.cpp" "src/b2b/CMakeFiles/b2b_core.dir/tuples.cpp.o" "gcc" "src/b2b/CMakeFiles/b2b_core.dir/tuples.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/b2b_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/b2b_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/b2b_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/b2b_net.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/b2b_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
