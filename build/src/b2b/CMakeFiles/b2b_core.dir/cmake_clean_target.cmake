file(REMOVE_RECURSE
  "libb2b_core.a"
)
