file(REMOVE_RECURSE
  "CMakeFiles/b2b_core.dir/arbiter.cpp.o"
  "CMakeFiles/b2b_core.dir/arbiter.cpp.o.d"
  "CMakeFiles/b2b_core.dir/composite.cpp.o"
  "CMakeFiles/b2b_core.dir/composite.cpp.o.d"
  "CMakeFiles/b2b_core.dir/controller.cpp.o"
  "CMakeFiles/b2b_core.dir/controller.cpp.o.d"
  "CMakeFiles/b2b_core.dir/coordinator.cpp.o"
  "CMakeFiles/b2b_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/b2b_core.dir/evidence.cpp.o"
  "CMakeFiles/b2b_core.dir/evidence.cpp.o.d"
  "CMakeFiles/b2b_core.dir/federation.cpp.o"
  "CMakeFiles/b2b_core.dir/federation.cpp.o.d"
  "CMakeFiles/b2b_core.dir/membership.cpp.o"
  "CMakeFiles/b2b_core.dir/membership.cpp.o.d"
  "CMakeFiles/b2b_core.dir/messages.cpp.o"
  "CMakeFiles/b2b_core.dir/messages.cpp.o.d"
  "CMakeFiles/b2b_core.dir/object.cpp.o"
  "CMakeFiles/b2b_core.dir/object.cpp.o.d"
  "CMakeFiles/b2b_core.dir/replica.cpp.o"
  "CMakeFiles/b2b_core.dir/replica.cpp.o.d"
  "CMakeFiles/b2b_core.dir/termination.cpp.o"
  "CMakeFiles/b2b_core.dir/termination.cpp.o.d"
  "CMakeFiles/b2b_core.dir/tuples.cpp.o"
  "CMakeFiles/b2b_core.dir/tuples.cpp.o.d"
  "libb2b_core.a"
  "libb2b_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
