file(REMOVE_RECURSE
  "CMakeFiles/b2b_apps.dir/auction.cpp.o"
  "CMakeFiles/b2b_apps.dir/auction.cpp.o.d"
  "CMakeFiles/b2b_apps.dir/order.cpp.o"
  "CMakeFiles/b2b_apps.dir/order.cpp.o.d"
  "CMakeFiles/b2b_apps.dir/service_config.cpp.o"
  "CMakeFiles/b2b_apps.dir/service_config.cpp.o.d"
  "CMakeFiles/b2b_apps.dir/tictactoe.cpp.o"
  "CMakeFiles/b2b_apps.dir/tictactoe.cpp.o.d"
  "libb2b_apps.a"
  "libb2b_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
