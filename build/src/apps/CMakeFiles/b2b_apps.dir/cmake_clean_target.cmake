file(REMOVE_RECURSE
  "libb2b_apps.a"
)
