# Empty dependencies file for b2b_apps.
# This may be replaced when dependencies are built.
