# Empty dependencies file for b2b_crypto.
# This may be replaced when dependencies are built.
