file(REMOVE_RECURSE
  "libb2b_crypto.a"
)
