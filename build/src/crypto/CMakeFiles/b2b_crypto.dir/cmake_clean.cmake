file(REMOVE_RECURSE
  "CMakeFiles/b2b_crypto.dir/bigint.cpp.o"
  "CMakeFiles/b2b_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/b2b_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/b2b_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/b2b_crypto.dir/rsa.cpp.o"
  "CMakeFiles/b2b_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/b2b_crypto.dir/sha256.cpp.o"
  "CMakeFiles/b2b_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/b2b_crypto.dir/timestamp.cpp.o"
  "CMakeFiles/b2b_crypto.dir/timestamp.cpp.o.d"
  "libb2b_crypto.a"
  "libb2b_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
