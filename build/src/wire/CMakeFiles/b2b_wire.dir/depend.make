# Empty dependencies file for b2b_wire.
# This may be replaced when dependencies are built.
