file(REMOVE_RECURSE
  "CMakeFiles/b2b_wire.dir/codec.cpp.o"
  "CMakeFiles/b2b_wire.dir/codec.cpp.o.d"
  "libb2b_wire.a"
  "libb2b_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
