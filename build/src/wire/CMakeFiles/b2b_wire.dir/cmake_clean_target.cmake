file(REMOVE_RECURSE
  "libb2b_wire.a"
)
