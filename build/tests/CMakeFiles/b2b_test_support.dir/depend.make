# Empty dependencies file for b2b_test_support.
# This may be replaced when dependencies are built.
