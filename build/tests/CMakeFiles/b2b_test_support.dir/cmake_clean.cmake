file(REMOVE_RECURSE
  "CMakeFiles/b2b_test_support.dir/support/test_keys.cpp.o"
  "CMakeFiles/b2b_test_support.dir/support/test_keys.cpp.o.d"
  "libb2b_test_support.a"
  "libb2b_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
