file(REMOVE_RECURSE
  "libb2b_test_support.a"
)
