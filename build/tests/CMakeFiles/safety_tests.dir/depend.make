# Empty dependencies file for safety_tests.
# This may be replaced when dependencies are built.
