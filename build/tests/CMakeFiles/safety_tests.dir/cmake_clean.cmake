file(REMOVE_RECURSE
  "CMakeFiles/safety_tests.dir/b2b/safety_test.cpp.o"
  "CMakeFiles/safety_tests.dir/b2b/safety_test.cpp.o.d"
  "safety_tests"
  "safety_tests.pdb"
  "safety_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
