file(REMOVE_RECURSE
  "CMakeFiles/liveness_tests.dir/b2b/liveness_test.cpp.o"
  "CMakeFiles/liveness_tests.dir/b2b/liveness_test.cpp.o.d"
  "liveness_tests"
  "liveness_tests.pdb"
  "liveness_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liveness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
