file(REMOVE_RECURSE
  "CMakeFiles/state_coordination_tests.dir/b2b/state_coordination_test.cpp.o"
  "CMakeFiles/state_coordination_tests.dir/b2b/state_coordination_test.cpp.o.d"
  "state_coordination_tests"
  "state_coordination_tests.pdb"
  "state_coordination_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_coordination_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
