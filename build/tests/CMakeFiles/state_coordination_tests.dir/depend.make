# Empty dependencies file for state_coordination_tests.
# This may be replaced when dependencies are built.
