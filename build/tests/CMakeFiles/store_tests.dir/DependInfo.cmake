
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/store/store_test.cpp" "tests/CMakeFiles/store_tests.dir/store/store_test.cpp.o" "gcc" "tests/CMakeFiles/store_tests.dir/store/store_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/b2b_test_support.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/b2b_store.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/b2b_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/b2b_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/b2b_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
