# Empty dependencies file for core_unit_tests.
# This may be replaced when dependencies are built.
