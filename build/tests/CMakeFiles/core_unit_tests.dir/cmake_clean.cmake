file(REMOVE_RECURSE
  "CMakeFiles/core_unit_tests.dir/b2b/evidence_test.cpp.o"
  "CMakeFiles/core_unit_tests.dir/b2b/evidence_test.cpp.o.d"
  "CMakeFiles/core_unit_tests.dir/b2b/messages_test.cpp.o"
  "CMakeFiles/core_unit_tests.dir/b2b/messages_test.cpp.o.d"
  "CMakeFiles/core_unit_tests.dir/b2b/tuples_test.cpp.o"
  "CMakeFiles/core_unit_tests.dir/b2b/tuples_test.cpp.o.d"
  "core_unit_tests"
  "core_unit_tests.pdb"
  "core_unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
