# Empty dependencies file for coordinator_tests.
# This may be replaced when dependencies are built.
