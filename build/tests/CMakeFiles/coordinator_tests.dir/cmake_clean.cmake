file(REMOVE_RECURSE
  "CMakeFiles/coordinator_tests.dir/b2b/coordinator_test.cpp.o"
  "CMakeFiles/coordinator_tests.dir/b2b/coordinator_test.cpp.o.d"
  "coordinator_tests"
  "coordinator_tests.pdb"
  "coordinator_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordinator_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
