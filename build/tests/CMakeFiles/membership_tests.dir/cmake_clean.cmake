file(REMOVE_RECURSE
  "CMakeFiles/membership_tests.dir/b2b/membership_test.cpp.o"
  "CMakeFiles/membership_tests.dir/b2b/membership_test.cpp.o.d"
  "membership_tests"
  "membership_tests.pdb"
  "membership_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
