# Empty dependencies file for membership_tests.
# This may be replaced when dependencies are built.
