# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/state_coordination_tests[1]_include.cmake")
include("/root/repo/build/tests/membership_tests[1]_include.cmake")
include("/root/repo/build/tests/safety_tests[1]_include.cmake")
include("/root/repo/build/tests/liveness_tests[1]_include.cmake")
include("/root/repo/build/tests/extensions_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
include("/root/repo/build/tests/coordinator_tests[1]_include.cmake")
include("/root/repo/build/tests/wire_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/store_tests[1]_include.cmake")
include("/root/repo/build/tests/core_unit_tests[1]_include.cmake")
include("/root/repo/build/tests/apps_tests[1]_include.cmake")
include("/root/repo/build/tests/baseline_tests[1]_include.cmake")
include("/root/repo/build/tests/crypto_tests[1]_include.cmake")
