file(REMOVE_RECURSE
  "CMakeFiles/tictactoe_ttp.dir/tictactoe_ttp.cpp.o"
  "CMakeFiles/tictactoe_ttp.dir/tictactoe_ttp.cpp.o.d"
  "tictactoe_ttp"
  "tictactoe_ttp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tictactoe_ttp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
