# Empty compiler generated dependencies file for tictactoe_ttp.
# This may be replaced when dependencies are built.
