file(REMOVE_RECURSE
  "CMakeFiles/oss_dispersal.dir/oss_dispersal.cpp.o"
  "CMakeFiles/oss_dispersal.dir/oss_dispersal.cpp.o.d"
  "oss_dispersal"
  "oss_dispersal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oss_dispersal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
