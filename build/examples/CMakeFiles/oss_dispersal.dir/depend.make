# Empty dependencies file for oss_dispersal.
# This may be replaced when dependencies are built.
