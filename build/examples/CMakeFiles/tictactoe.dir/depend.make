# Empty dependencies file for tictactoe.
# This may be replaced when dependencies are built.
