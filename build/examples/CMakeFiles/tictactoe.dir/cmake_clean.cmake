file(REMOVE_RECURSE
  "CMakeFiles/tictactoe.dir/tictactoe.cpp.o"
  "CMakeFiles/tictactoe.dir/tictactoe.cpp.o.d"
  "tictactoe"
  "tictactoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tictactoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
