file(REMOVE_RECURSE
  "CMakeFiles/order_multiparty.dir/order_multiparty.cpp.o"
  "CMakeFiles/order_multiparty.dir/order_multiparty.cpp.o.d"
  "order_multiparty"
  "order_multiparty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_multiparty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
