# Empty dependencies file for order_multiparty.
# This may be replaced when dependencies are built.
