# Empty compiler generated dependencies file for auction.
# This may be replaced when dependencies are built.
