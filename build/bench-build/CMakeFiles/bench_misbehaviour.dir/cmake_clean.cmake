file(REMOVE_RECURSE
  "../bench/bench_misbehaviour"
  "../bench/bench_misbehaviour.pdb"
  "CMakeFiles/bench_misbehaviour.dir/bench_misbehaviour.cpp.o"
  "CMakeFiles/bench_misbehaviour.dir/bench_misbehaviour.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misbehaviour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
