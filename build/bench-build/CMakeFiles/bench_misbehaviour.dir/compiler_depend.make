# Empty compiler generated dependencies file for bench_misbehaviour.
# This may be replaced when dependencies are built.
