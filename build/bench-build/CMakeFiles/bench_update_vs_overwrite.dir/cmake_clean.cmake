file(REMOVE_RECURSE
  "../bench/bench_update_vs_overwrite"
  "../bench/bench_update_vs_overwrite.pdb"
  "CMakeFiles/bench_update_vs_overwrite.dir/bench_update_vs_overwrite.cpp.o"
  "CMakeFiles/bench_update_vs_overwrite.dir/bench_update_vs_overwrite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_vs_overwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
