file(REMOVE_RECURSE
  "../bench/bench_applications"
  "../bench/bench_applications.pdb"
  "CMakeFiles/bench_applications.dir/bench_applications.cpp.o"
  "CMakeFiles/bench_applications.dir/bench_applications.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
