file(REMOVE_RECURSE
  "../bench/bench_liveness"
  "../bench/bench_liveness.pdb"
  "CMakeFiles/bench_liveness.dir/bench_liveness.cpp.o"
  "CMakeFiles/bench_liveness.dir/bench_liveness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
