file(REMOVE_RECURSE
  "../bench/bench_membership"
  "../bench/bench_membership.pdb"
  "CMakeFiles/bench_membership.dir/bench_membership.cpp.o"
  "CMakeFiles/bench_membership.dir/bench_membership.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
