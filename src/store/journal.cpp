#include "store/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "store/crc32.hpp"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace b2b::store {

namespace {

constexpr char kMagic[8] = {'B', '2', 'B', 'W', 'A', 'L', '0', '1'};
constexpr std::size_t kMagicLen = sizeof(kMagic);
constexpr std::size_t kFrameLen = 8;  // u32 length + u32 crc
/// Sanity bound: a corrupt length field must not trigger a huge
/// allocation before the CRC gets a chance to reject the record.
constexpr std::uint32_t kMaxRecordLen = 64u * 1024 * 1024;

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void write_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

Bytes read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw StoreError("cannot open for read: " + path);
  Bytes data;
  std::uint8_t buf[65536];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(file);
  return data;
}

void fsync_file(std::FILE* file) {
#if defined(_WIN32)
  _commit(_fileno(file));
#else
  ::fsync(::fileno(file));
#endif
}

}  // namespace

Journal::Journal(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  namespace fs = std::filesystem;
  fs::create_directories(dir_);

  // Collect existing segments, ordered by index.
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 9 || name.compare(0, 4, "wal-") != 0 ||
        name.compare(name.size() - 4, 4, ".seg") != 0) {
      continue;
    }
    std::uint64_t index = 0;
    try {
      index = std::stoull(name.substr(4, name.size() - 8));
    } catch (const std::exception&) {
      continue;  // not one of ours
    }
    segments.emplace_back(index, entry.path().string());
  }
  std::sort(segments.begin(), segments.end());

  std::uint64_t markers = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [index, path] = segments[i];
    const bool is_tail = (i + 1 == segments.size());
    Bytes data = read_file(path);

    if (data.size() < kMagicLen) {
      // Only an interrupted header write of the newest segment can leave
      // a short header behind; anywhere else it is corruption.
      if (!is_tail) {
        throw StoreError("journal segment truncated below header: " + path);
      }
      truncated_bytes_ += data.size();
      fs::resize_file(path, 0);
      data.clear();
    } else if (!std::equal(kMagic, kMagic + kMagicLen, data.begin())) {
      throw StoreError("journal segment has garbage header: " + path);
    }

    std::size_t offset = data.empty() ? 0 : kMagicLen;
    while (offset < data.size()) {
      bool torn = false;
      std::uint32_t len = 0;
      if (data.size() - offset < kFrameLen) {
        torn = true;
      } else {
        len = read_u32le(data.data() + offset);
        std::uint32_t crc = read_u32le(data.data() + offset + 4);
        if (len == 0 || len > kMaxRecordLen ||
            data.size() - offset - kFrameLen < len) {
          torn = true;
        } else {
          BytesView payload{data.data() + offset + kFrameLen, len};
          if (crc32(payload) != crc) {
            torn = true;
          } else {
            std::uint8_t type = payload[0];
            if (type == kIncarnationMarker) {
              ++markers;
            } else {
              records_.push_back(JournalRecord{
                  type, Bytes(payload.begin() + 1, payload.end())});
            }
            offset += kFrameLen + len;
            continue;
          }
        }
      }
      // A bad record in the final segment is the torn tail an interrupted
      // append leaves behind: drop the suffix, keep the valid prefix.
      // Anywhere else the write discipline rules a crash out as the
      // cause, so refuse to guess.
      (void)torn;
      if (!is_tail) {
        throw StoreError("journal segment corrupt mid-log: " + path);
      }
      truncated_bytes_ += data.size() - offset;
      fs::resize_file(path, offset);
      B2B_WARN("journal: truncated torn tail of ", path, " (",
               data.size() - offset, " bytes)");
      break;
    }

    if (is_tail) {
      tail_index_ = index;
      open_tail(path, /*fresh=*/data.size() < kMagicLen);
    }
  }

  if (tail_ == nullptr) {
    tail_index_ = 1;
    open_tail(segment_path(tail_index_), /*fresh=*/true);
  }

  incarnation_ = markers + 1;
  append(kIncarnationMarker, {});
  sync();
}

Journal::~Journal() {
  if (tail_ != nullptr) {
    std::fflush(tail_);
    std::fclose(tail_);
  }
}

std::string Journal::segment_path(std::uint64_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.seg",
                static_cast<unsigned long long>(index));
  return dir_ + "/" + name;
}

void Journal::open_tail(const std::string& path, bool fresh) {
  tail_ = std::fopen(path.c_str(), "ab");
  if (tail_ == nullptr) {
    throw StoreError("cannot open journal segment for append: " + path);
  }
  if (fresh) {
    if (std::fwrite(kMagic, 1, kMagicLen, tail_) != kMagicLen) {
      throw StoreError("cannot write journal segment header: " + path);
    }
    tail_size_ = kMagicLen;
  } else {
    namespace fs = std::filesystem;
    tail_size_ = static_cast<std::size_t>(fs::file_size(path));
  }
}

void Journal::roll_segment() {
  sync();
  std::fclose(tail_);
  tail_ = nullptr;
  ++tail_index_;
  open_tail(segment_path(tail_index_), /*fresh=*/true);
}

void Journal::append(std::uint8_t type, BytesView payload) {
  if (tail_size_ > options_.segment_bytes) roll_segment();
  // Frame: [u32 len][u32 crc][type byte + payload], CRC over the payload
  // including its type byte so a torn or rotted record never replays.
  Bytes body;
  body.reserve(payload.size() + 1);
  body.push_back(type);
  body.insert(body.end(), payload.begin(), payload.end());
  std::uint8_t frame[kFrameLen];
  write_u32le(frame, static_cast<std::uint32_t>(body.size()));
  write_u32le(frame + 4, crc32(body));
  if (std::fwrite(frame, 1, kFrameLen, tail_) != kFrameLen ||
      std::fwrite(body.data(), 1, body.size(), tail_) != body.size()) {
    throw StoreError("journal append failed: " + dir_);
  }
  tail_size_ += kFrameLen + body.size();
}

void Journal::sync() {
  if (tail_ == nullptr) return;
  if (std::fflush(tail_) != 0) {
    throw StoreError("journal flush failed: " + dir_);
  }
  if (options_.fsync) fsync_file(tail_);
}

}  // namespace b2b::store
