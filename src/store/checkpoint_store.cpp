#include "store/checkpoint_store.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "wire/codec.hpp"

namespace b2b::store {

namespace {
const std::vector<Checkpoint> kEmptyHistory;
}  // namespace

void CheckpointStore::put(const ObjectId& object, Checkpoint checkpoint) {
  checkpoints_[object].push_back(std::move(checkpoint));
}

std::optional<Checkpoint> CheckpointStore::latest(const ObjectId& object) const {
  auto it = checkpoints_.find(object);
  if (it == checkpoints_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::optional<Checkpoint> CheckpointStore::at_sequence(
    const ObjectId& object, std::uint64_t sequence) const {
  auto it = checkpoints_.find(object);
  if (it == checkpoints_.end()) return std::nullopt;
  // Scan backwards: recent sequences are queried most often (rollback).
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->sequence == sequence) return *rit;
  }
  return std::nullopt;
}

const std::vector<Checkpoint>& CheckpointStore::history(
    const ObjectId& object) const {
  auto it = checkpoints_.find(object);
  return it == checkpoints_.end() ? kEmptyHistory : it->second;
}

std::size_t CheckpointStore::count(const ObjectId& object) const {
  auto it = checkpoints_.find(object);
  return it == checkpoints_.end() ? 0 : it->second.size();
}

void CheckpointStore::save(const std::string& path) const {
  wire::Encoder enc;
  enc.varint(checkpoints_.size());
  for (const auto& [object, history] : checkpoints_) {
    enc.str(object.str());
    enc.varint(history.size());
    for (const auto& cp : history) {
      enc.u64(cp.sequence).blob(cp.tuple).blob(cp.state).u64(cp.time_micros);
    }
  }
  const Bytes& data = enc.bytes();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) throw StoreError("cannot open for write: " + path);
  if (std::fwrite(data.data(), 1, data.size(), file) != data.size()) {
    std::fclose(file);
    throw StoreError("short write: " + path);
  }
  std::fclose(file);
}

CheckpointStore CheckpointStore::load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw StoreError("cannot open for read: " + path);
  Bytes data;
  std::uint8_t buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(file);

  CheckpointStore out;
  try {
    wire::Decoder dec{data};
    std::uint64_t objects = dec.varint();
    for (std::uint64_t i = 0; i < objects; ++i) {
      ObjectId object{dec.str()};
      std::uint64_t entries = dec.varint();
      auto& history = out.checkpoints_[object];
      history.reserve(entries);
      for (std::uint64_t j = 0; j < entries; ++j) {
        Checkpoint cp;
        cp.sequence = dec.u64();
        cp.tuple = dec.blob();
        cp.state = dec.blob();
        cp.time_micros = dec.u64();
        history.push_back(std::move(cp));
      }
    }
    dec.expect_done();
  } catch (const CodecError& e) {
    throw StoreError("corrupt checkpoint store " + path + ": " + e.what());
  }
  return out;
}

}  // namespace b2b::store
