#include "store/checkpoint_store.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "store/crc32.hpp"
#include "wire/codec.hpp"

namespace b2b::store {

namespace {
const std::vector<Checkpoint> kEmptyHistory;
// File framing: magic + u32 CRC over the body that follows.
constexpr char kMagic[8] = {'B', '2', 'B', 'C', 'K', 'P', 'T', '2'};
constexpr std::size_t kMagicLen = sizeof(kMagic);
constexpr std::size_t kHeaderLen = kMagicLen + 4;
}  // namespace

void CheckpointStore::put(const ObjectId& object, Checkpoint checkpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& history = checkpoints_[object];
  history.push_back(std::move(checkpoint));
  if (observer_) observer_(object, history.back());
}

std::optional<Checkpoint> CheckpointStore::latest(const ObjectId& object) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(object);
  if (it == checkpoints_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::optional<Checkpoint> CheckpointStore::at_sequence(
    const ObjectId& object, std::uint64_t sequence) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(object);
  if (it == checkpoints_.end()) return std::nullopt;
  // Scan backwards: recent sequences are queried most often (rollback).
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->sequence == sequence) return *rit;
  }
  return std::nullopt;
}

const std::vector<Checkpoint>& CheckpointStore::history(
    const ObjectId& object) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(object);
  return it == checkpoints_.end() ? kEmptyHistory : it->second;
}

std::size_t CheckpointStore::count(const ObjectId& object) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(object);
  return it == checkpoints_.end() ? 0 : it->second.size();
}

void CheckpointStore::save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  wire::Encoder enc;
  enc.varint(checkpoints_.size());
  for (const auto& [object, history] : checkpoints_) {
    enc.str(object.str());
    enc.varint(history.size());
    for (const auto& cp : history) {
      enc.u64(cp.sequence).blob(cp.tuple).blob(cp.state).u64(cp.time_micros);
    }
  }
  const Bytes& body = enc.bytes();
  wire::Encoder framed;
  framed.raw(BytesView{reinterpret_cast<const std::uint8_t*>(kMagic),
                       kMagicLen});
  framed.u32(crc32(body));
  framed.raw(body);
  const Bytes& data = framed.bytes();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) throw StoreError("cannot open for write: " + path);
  if (std::fwrite(data.data(), 1, data.size(), file) != data.size()) {
    std::fclose(file);
    throw StoreError("short write: " + path);
  }
  std::fclose(file);
}

CheckpointStore CheckpointStore::load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw StoreError("cannot open for read: " + path);
  Bytes data;
  std::uint8_t buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(file);

  if (data.size() < kHeaderLen) {
    throw StoreError("truncated checkpoint store header: " + path);
  }
  if (!std::equal(kMagic, kMagic + kMagicLen, data.begin())) {
    throw StoreError("garbage checkpoint store header: " + path);
  }
  wire::Decoder header{BytesView{data.data() + kMagicLen, 4}};
  std::uint32_t expected_crc = header.u32();
  BytesView body{data.data() + kHeaderLen, data.size() - kHeaderLen};
  if (crc32(body) != expected_crc) {
    throw StoreError("checkpoint store checksum mismatch: " + path);
  }

  CheckpointStore out;
  try {
    wire::Decoder dec{body};
    std::uint64_t objects = dec.varint();
    for (std::uint64_t i = 0; i < objects; ++i) {
      ObjectId object{dec.str()};
      std::uint64_t entries = dec.varint();
      auto& history = out.checkpoints_[object];
      history.reserve(entries);
      for (std::uint64_t j = 0; j < entries; ++j) {
        Checkpoint cp;
        cp.sequence = dec.u64();
        cp.tuple = dec.blob();
        cp.state = dec.blob();
        cp.time_micros = dec.u64();
        history.push_back(std::move(cp));
      }
    }
    dec.expect_done();
  } catch (const CodecError& e) {
    throw StoreError("corrupt checkpoint store " + path + ": " + e.what());
  }
  return out;
}

}  // namespace b2b::store
