// Crash-atomic write-ahead journal (append-only segment files).
//
// The paper's recovery story (§4.2: "for non-repudiation, and recovery,
// protocol messages are held in local persistent storage at sender and
// recipient") needs a stable-storage substrate with a precise contract:
// a record whose append was followed by a sync() barrier survives any
// crash; a record in flight at the moment of the crash either survives
// intact or is absent — never half-present. This file provides exactly
// that:
//
//  * A journal is a directory of append-only segment files
//    (`wal-<n>.seg`), each starting with an 8-byte magic header and
//    containing records framed as [u32 length][u32 crc32][payload].
//    The first payload byte is the caller's record type tag.
//  * append() buffers through stdio; sync() is the fsync barrier point —
//    the WAL discipline in the protocol layer is "sync before send".
//  * Opening scans every segment. A torn tail — a partial or
//    CRC-corrupt record suffix of the *final* segment, which is what an
//    interrupted append produces — is truncated away and the valid
//    prefix recovered. Corruption anywhere else (garbage header, bad
//    CRC mid-log) cannot result from a crash under this write
//    discipline, so it raises a typed StoreError instead of being
//    silently dropped.
//  * Each open appends an incarnation marker, so recovering code can
//    tell how many lives the journal has seen (used to re-key the
//    deterministic Rng so a restarted party never reuses authenticator
//    randomness).
//
// Not thread-safe: the owner (Coordinator) serialises access under its
// own mutex.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace b2b::store {

/// One recovered journal record: the caller's type tag plus payload.
struct JournalRecord {
  std::uint8_t type = 0;
  Bytes payload;
};

class Journal {
 public:
  /// Record type 0 is reserved for the journal's own incarnation
  /// markers; callers must use types >= 1.
  static constexpr std::uint8_t kIncarnationMarker = 0;

  struct Options {
    /// Roll to a new segment file once the tail exceeds this size.
    std::size_t segment_bytes = 1u << 20;
    /// Honour sync() barriers with a real fsync. Turning this off keeps
    /// the write path (and torn-tail semantics under kill -9 of the
    /// *process*) but drops power-failure durability — the bench knob.
    bool fsync = true;
  };

  /// Open (creating the directory and first segment if absent), scan all
  /// segments, truncate a torn tail, and append an incarnation marker.
  /// Throws StoreError on non-tail corruption or I/O failure.
  Journal(std::string dir, Options options);
  explicit Journal(std::string dir) : Journal(std::move(dir), Options{}) {}
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Append one record (type >= 1). Buffered; durable after sync().
  void append(std::uint8_t type, BytesView payload);

  /// Barrier: everything appended so far is on stable storage when this
  /// returns (modulo Options::fsync=false).
  void sync();

  /// Records recovered at open, in append order, incarnation markers
  /// excluded. Stable for the life of this object (appends after open
  /// are not reflected — recovery reads, then replays).
  const std::vector<JournalRecord>& records() const { return records_; }

  /// How many times this journal has been opened, this open included.
  std::uint64_t incarnation() const { return incarnation_; }

  /// Bytes discarded from the final segment as a torn tail at open.
  std::uint64_t truncated_bytes() const { return truncated_bytes_; }

  const std::string& dir() const { return dir_; }

 private:
  void open_tail(const std::string& path, bool fresh);
  void roll_segment();
  std::string segment_path(std::uint64_t index) const;

  std::string dir_;
  Options options_;
  std::vector<JournalRecord> records_;
  std::uint64_t incarnation_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  std::uint64_t tail_index_ = 1;
  std::size_t tail_size_ = 0;
  std::FILE* tail_ = nullptr;
};

}  // namespace b2b::store
