#include "store/message_store.hpp"

namespace b2b::store {

namespace {
const std::vector<MessageStore::StoredMessage> kEmpty;
}  // namespace

void MessageStore::add(const std::string& run_label, StoredMessage message) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& run = runs_[run_label];
  run.push_back(std::move(message));
  if (observer_) observer_(run_label, run.back());
}

const std::vector<MessageStore::StoredMessage>& MessageStore::run(
    const std::string& run_label) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = runs_.find(run_label);
  return it == runs_.end() ? kEmpty : it->second;
}

std::vector<std::string> MessageStore::run_labels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(runs_.size());
  for (const auto& [label, messages] : runs_) out.push_back(label);
  return out;
}

std::size_t MessageStore::total_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [label, messages] : runs_) total += messages.size();
  return total;
}

bool MessageStore::has_run(const std::string& run_label) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runs_.contains(run_label);
}

}  // namespace b2b::store
