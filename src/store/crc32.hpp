// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for on-disk framing.
//
// The persistent stores (write-ahead journal, checkpoint store) frame
// their on-disk bytes with a CRC so that torn writes and bit rot are
// detected deterministically on open instead of surfacing as undefined
// decoding behaviour. This is an integrity check against accidental
// corruption only — tampering detection is the evidence log's hash
// chain, not the CRC.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace b2b::store {

std::uint32_t crc32(BytesView data);

}  // namespace b2b::store
