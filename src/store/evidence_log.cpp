#include "store/evidence_log.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/error.hpp"
#include "wire/codec.hpp"

namespace b2b::store {

Bytes EvidenceRecord::encode() const {
  wire::Encoder enc;
  enc.u64(index)
      .raw(crypto::digest_bytes(prev_hash))
      .u64(time_micros)
      .str(kind)
      .blob(payload)
      .raw(crypto::digest_bytes(record_hash));
  return std::move(enc).take();
}

EvidenceRecord EvidenceRecord::decode(BytesView data) {
  wire::Decoder dec{data};
  EvidenceRecord rec;
  rec.index = dec.u64();
  rec.prev_hash = crypto::digest_from_bytes(dec.raw(32));
  rec.time_micros = dec.u64();
  rec.kind = dec.str();
  rec.payload = dec.blob();
  rec.record_hash = crypto::digest_from_bytes(dec.raw(32));
  dec.expect_done();
  return rec;
}

crypto::Digest EvidenceRecord::compute_hash() const {
  wire::Encoder enc;
  enc.u64(index)
      .raw(crypto::digest_bytes(prev_hash))
      .u64(time_micros)
      .str(kind)
      .blob(payload);
  return crypto::Sha256::hash(enc.bytes());
}

const EvidenceRecord& EvidenceLog::append(std::string kind, Bytes payload,
                                          std::uint64_t time_micros) {
  EvidenceRecord rec;
  rec.index = records_.size();
  rec.prev_hash =
      records_.empty() ? crypto::Digest{} : records_.back().record_hash;
  rec.time_micros = time_micros;
  rec.kind = std::move(kind);
  rec.payload = std::move(payload);
  rec.record_hash = rec.compute_hash();
  records_.push_back(std::move(rec));
  return records_.back();
}

const EvidenceRecord& EvidenceLog::at(std::size_t index) const {
  if (index >= records_.size()) {
    throw std::out_of_range("EvidenceLog::at: index " + std::to_string(index));
  }
  return records_[index];
}

std::vector<const EvidenceRecord*> EvidenceLog::find_kind(
    const std::string& kind) const {
  std::vector<const EvidenceRecord*> out;
  for (const auto& rec : records_) {
    if (rec.kind == kind) out.push_back(&rec);
  }
  return out;
}

bool EvidenceLog::verify_chain() const {
  crypto::Digest prev{};
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const EvidenceRecord& rec = records_[i];
    if (rec.index != i) return false;
    if (rec.prev_hash != prev) return false;
    if (rec.record_hash != rec.compute_hash()) return false;
    prev = rec.record_hash;
  }
  return true;
}

void EvidenceLog::save(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) throw StoreError("cannot open for write: " + path);
  for (const auto& rec : records_) {
    Bytes encoded = rec.encode();
    wire::Encoder frame;
    frame.u32(static_cast<std::uint32_t>(encoded.size()));
    const Bytes& header = frame.bytes();
    if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
        std::fwrite(encoded.data(), 1, encoded.size(), file) !=
            encoded.size()) {
      std::fclose(file);
      throw StoreError("short write: " + path);
    }
  }
  std::fclose(file);
}

EvidenceLog EvidenceLog::load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw StoreError("cannot open for read: " + path);
  EvidenceLog log;
  for (;;) {
    std::uint8_t header[4];
    std::size_t got = std::fread(header, 1, 4, file);
    if (got == 0) break;
    if (got != 4) {
      std::fclose(file);
      throw StoreError("truncated record header: " + path);
    }
    std::uint32_t len = 0;
    for (int i = 3; i >= 0; --i) len = (len << 8) | header[i];
    Bytes body(len);
    if (std::fread(body.data(), 1, len, file) != len) {
      std::fclose(file);
      throw StoreError("truncated record body: " + path);
    }
    try {
      log.records_.push_back(EvidenceRecord::decode(body));
    } catch (const CodecError& e) {
      std::fclose(file);
      throw StoreError("corrupt record in " + path + ": " + e.what());
    }
  }
  std::fclose(file);
  return log;
}

}  // namespace b2b::store
