// Persistent store of raw protocol messages, keyed by protocol run.
//
// §4.2: "For non-repudiation, and recovery, protocol messages are held in
// local persistent storage at sender and recipient." The coordinator files
// every message it sends or receives here under the run's unique label
// (the hex of the proposed tuple's random-number hash), so that after a
// crash it can re-derive where each run stood, and during a dispute the
// full transcript of a run can be produced.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace b2b::store {

/// Internally locked: replicas on different coordinator shards file
/// messages concurrently. The observer fires under the store lock (store
/// -> journal in the coordinator's lock order). run() hands out a
/// reference — read a run's transcript only from its own shard or at
/// quiescence (runs are object-scoped, so shards never share a label).
class MessageStore {
 public:
  struct StoredMessage {
    std::string direction;  // "sent" or "received"
    std::string kind;       // message kind, e.g. "propose", "respond"
    std::string peer;       // the other party
    Bytes payload;

    friend bool operator==(const StoredMessage&,
                           const StoredMessage&) = default;
  };

  /// Invoked on every add (after the in-memory append); lets the hosting
  /// coordinator mirror the transcript into its write-ahead journal.
  using Observer =
      std::function<void(const std::string& run_label, const StoredMessage&)>;

  /// File a message under `run_label`.
  void add(const std::string& run_label, StoredMessage message);

  void set_observer(Observer observer) {
    std::lock_guard<std::mutex> lock(mutex_);
    observer_ = std::move(observer);
  }

  /// All messages of a run, in arrival/send order.
  const std::vector<StoredMessage>& run(const std::string& run_label) const;

  /// Labels of all runs seen (sorted).
  std::vector<std::string> run_labels() const;

  std::size_t total_messages() const;
  bool has_run(const std::string& run_label) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<StoredMessage>> runs_;
  Observer observer_;
};

}  // namespace b2b::store
