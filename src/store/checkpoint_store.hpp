// Checkpoint store for validated object state.
//
// §3: "Systematic check-pointing of object state upon installation of a
// newly-validated state allows recovery in the event of general failures
// and rollback in the event of invalidation." Each checkpoint couples the
// opaque encoded state-identifier tuple with the state bytes it identifies;
// the full history is retained so a party can roll back to any previously
// agreed state and can demonstrate the provenance of its current state.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace b2b::store {

struct Checkpoint {
  std::uint64_t sequence = 0;  // proposal sequence number of the state
  Bytes tuple;                 // encoded state identifier tuple
  Bytes state;                 // the validated object state itself
  std::uint64_t time_micros = 0;

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

/// Internally locked: replicas on different coordinator shards put and
/// query concurrently. The observer fires under the store lock (store ->
/// journal in the coordinator's lock order). history() hands out a
/// reference — concurrent puts on *other* objects are safe (node-based
/// map), but read a given object's history only from its own shard or at
/// quiescence.
class CheckpointStore {
 public:
  /// Invoked on every put (after the in-memory append). The hosting
  /// coordinator uses this to mirror checkpoints into its write-ahead
  /// journal without every put site knowing about journaling.
  using Observer = std::function<void(const ObjectId&, const Checkpoint&)>;

  CheckpointStore() = default;
  // Move transfers the data, never the lock (only used single-threaded,
  // by load()).
  CheckpointStore(CheckpointStore&& other) noexcept
      : checkpoints_(std::move(other.checkpoints_)),
        observer_(std::move(other.observer_)) {}

  /// Record a newly validated state for `object`.
  void put(const ObjectId& object, Checkpoint checkpoint);

  void set_observer(Observer observer) {
    std::lock_guard<std::mutex> lock(mutex_);
    observer_ = std::move(observer);
  }

  /// Latest checkpoint, if any.
  std::optional<Checkpoint> latest(const ObjectId& object) const;

  /// Checkpoint with the given sequence number, if retained.
  std::optional<Checkpoint> at_sequence(const ObjectId& object,
                                        std::uint64_t sequence) const;

  /// Full history (oldest first); empty if unknown object.
  const std::vector<Checkpoint>& history(const ObjectId& object) const;

  std::size_t count(const ObjectId& object) const;

  /// Persist / restore all objects' histories. The file is framed with a
  /// magic header and a CRC over the body; load() raises StoreError on a
  /// truncated file, garbage header or checksum mismatch rather than
  /// attempting to decode damaged bytes.
  void save(const std::string& path) const;
  static CheckpointStore load(const std::string& path);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<ObjectId, std::vector<Checkpoint>> checkpoints_;
  Observer observer_;
};

}  // namespace b2b::store
