// Append-only, hash-chained non-repudiation log.
//
// §3: "Evidence is stored systematically in local non-repudiation logs."
// Every signed protocol message a party sends or receives — and every
// violation it detects — is appended here. Records are hash-chained
// (each record binds the hash of its predecessor) so local tampering with
// history is detectable; verify_chain() replays the chain. The log can be
// persisted to disk and reloaded, which is what makes crash recovery and
// extra-protocol dispute resolution possible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace b2b::store {

struct EvidenceRecord {
  std::uint64_t index = 0;
  crypto::Digest prev_hash{};  // all-zero for the first record
  std::uint64_t time_micros = 0;
  std::string kind;    // e.g. "propose.sent", "respond.recv", "violation"
  Bytes payload;       // encoded message or diagnostic text
  crypto::Digest record_hash{};  // hash over all preceding fields

  Bytes encode() const;
  static EvidenceRecord decode(BytesView data);  // throws CodecError

  /// Recompute what record_hash should be for the current field values.
  crypto::Digest compute_hash() const;

  friend bool operator==(const EvidenceRecord&,
                         const EvidenceRecord&) = default;
};

class EvidenceLog {
 public:
  EvidenceLog() = default;

  /// Append a record; index/prev_hash/record_hash are filled in here.
  const EvidenceRecord& append(std::string kind, Bytes payload,
                               std::uint64_t time_micros);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const EvidenceRecord& at(std::size_t index) const;
  const std::vector<EvidenceRecord>& records() const { return records_; }

  /// All records of a given kind (dispute resolution queries).
  std::vector<const EvidenceRecord*> find_kind(const std::string& kind) const;

  /// True iff every record's hash and back-link are intact.
  bool verify_chain() const;

  /// Persist to / load from a file (length-prefixed records).
  /// Throws StoreError on I/O failure or corrupt data.
  void save(const std::string& path) const;
  static EvidenceLog load(const std::string& path);

 private:
  std::vector<EvidenceRecord> records_;
};

}  // namespace b2b::store
