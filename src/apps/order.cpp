#include "apps/order.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "wire/codec.hpp"

namespace b2b::apps {

const OrderLine* OrderDocument::find(const std::string& item) const {
  for (const auto& line : lines_) {
    if (line.item == item) return &line;
  }
  return nullptr;
}

OrderLine* OrderDocument::find(const std::string& item) {
  for (auto& line : lines_) {
    if (line.item == item) return &line;
  }
  return nullptr;
}

void OrderDocument::add_line(const std::string& item, std::uint32_t quantity) {
  if (quantity == 0) throw Error("order: zero quantity for " + item);
  if (find(item) != nullptr) throw Error("order: duplicate item " + item);
  lines_.push_back(OrderLine{item, quantity, 0, false, 0});
}

void OrderDocument::remove_line(const std::string& item) {
  auto it = std::find_if(lines_.begin(), lines_.end(),
                         [&](const OrderLine& l) { return l.item == item; });
  if (it == lines_.end()) throw Error("order: no such item " + item);
  lines_.erase(it);
}

Bytes OrderDocument::encode() const {
  wire::Encoder enc;
  enc.varint(lines_.size());
  for (const auto& line : lines_) {
    enc.str(line.item)
        .u32(line.quantity)
        .u64(line.unit_price_cents)
        .boolean(line.approved)
        .u32(line.delivery_days);
  }
  return std::move(enc).take();
}

OrderDocument OrderDocument::decode(BytesView data) {
  wire::Decoder dec{data};
  OrderDocument doc;
  std::uint64_t n = dec.varint();
  std::set<std::string> seen;
  for (std::uint64_t i = 0; i < n; ++i) {
    OrderLine line;
    line.item = dec.str();
    line.quantity = dec.u32();
    line.unit_price_cents = dec.u64();
    line.approved = dec.boolean();
    line.delivery_days = dec.u32();
    if (line.item.empty()) throw CodecError("order: empty item name");
    if (line.quantity == 0) throw CodecError("order: zero quantity");
    if (!seen.insert(line.item).second) {
      throw CodecError("order: duplicate item " + line.item);
    }
    doc.lines_.push_back(std::move(line));
  }
  dec.expect_done();
  return doc;
}

Bytes encode_order_ops(const std::vector<OrderOp>& ops) {
  wire::Encoder enc;
  enc.varint(ops.size());
  for (const auto& op : ops) {
    enc.u8(static_cast<std::uint8_t>(op.kind)).str(op.item).u64(op.arg);
  }
  return std::move(enc).take();
}

std::vector<OrderOp> decode_order_ops(BytesView data) {
  wire::Decoder dec{data};
  std::uint64_t n = dec.varint();
  std::vector<OrderOp> ops;
  ops.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    OrderOp op;
    std::uint8_t kind = dec.u8();
    if (kind > 5) throw CodecError("order op: invalid kind");
    op.kind = static_cast<OrderOp::Kind>(kind);
    op.item = dec.str();
    op.arg = dec.u64();
    ops.push_back(std::move(op));
  }
  dec.expect_done();
  return ops;
}

std::vector<OrderOp> diff_orders(const OrderDocument& from,
                                 const OrderDocument& to) {
  std::vector<OrderOp> ops;
  for (const auto& old_line : from.lines()) {
    if (to.find(old_line.item) == nullptr) {
      ops.push_back({OrderOp::Kind::kRemoveLine, old_line.item, 0});
    }
  }
  for (const auto& new_line : to.lines()) {
    const OrderLine* old_line = from.find(new_line.item);
    if (old_line == nullptr) {
      ops.push_back({OrderOp::Kind::kAddLine, new_line.item,
                     new_line.quantity});
      old_line = nullptr;
    }
    std::uint32_t base_qty = old_line != nullptr ? old_line->quantity
                                                 : new_line.quantity;
    std::uint64_t base_price =
        old_line != nullptr ? old_line->unit_price_cents : 0;
    bool base_approved = old_line != nullptr && old_line->approved;
    std::uint32_t base_delivery =
        old_line != nullptr ? old_line->delivery_days : 0;
    if (new_line.quantity != base_qty) {
      ops.push_back({OrderOp::Kind::kSetQuantity, new_line.item,
                     new_line.quantity});
    }
    if (new_line.unit_price_cents != base_price) {
      ops.push_back({OrderOp::Kind::kSetPrice, new_line.item,
                     new_line.unit_price_cents});
    }
    if (new_line.approved != base_approved) {
      if (!new_line.approved) {
        // Approval cannot be revoked via ops; fall back to an explicit
        // remove+add (degenerate; not produced by the helpers).
        ops.push_back({OrderOp::Kind::kRemoveLine, new_line.item, 0});
        ops.push_back({OrderOp::Kind::kAddLine, new_line.item,
                       new_line.quantity});
        if (new_line.unit_price_cents != 0) {
          ops.push_back({OrderOp::Kind::kSetPrice, new_line.item,
                         new_line.unit_price_cents});
        }
      } else {
        ops.push_back({OrderOp::Kind::kApprove, new_line.item, 0});
      }
    }
    if (new_line.delivery_days != base_delivery) {
      ops.push_back({OrderOp::Kind::kSetDelivery, new_line.item,
                     new_line.delivery_days});
    }
  }
  return ops;
}

void apply_order_ops(OrderDocument& doc, const std::vector<OrderOp>& ops) {
  for (const auto& op : ops) {
    switch (op.kind) {
      case OrderOp::Kind::kAddLine:
        doc.add_line(op.item, static_cast<std::uint32_t>(op.arg));
        break;
      case OrderOp::Kind::kRemoveLine:
        doc.remove_line(op.item);
        break;
      case OrderOp::Kind::kSetQuantity: {
        OrderLine* line = doc.find(op.item);
        if (line == nullptr) throw Error("order op: no such item " + op.item);
        if (op.arg == 0) throw Error("order op: zero quantity");
        line->quantity = static_cast<std::uint32_t>(op.arg);
        break;
      }
      case OrderOp::Kind::kSetPrice: {
        OrderLine* line = doc.find(op.item);
        if (line == nullptr) throw Error("order op: no such item " + op.item);
        line->unit_price_cents = op.arg;
        break;
      }
      case OrderOp::Kind::kApprove: {
        OrderLine* line = doc.find(op.item);
        if (line == nullptr) throw Error("order op: no such item " + op.item);
        line->approved = true;
        break;
      }
      case OrderOp::Kind::kSetDelivery: {
        OrderLine* line = doc.find(op.item);
        if (line == nullptr) throw Error("order op: no such item " + op.item);
        line->delivery_days = static_cast<std::uint32_t>(op.arg);
        break;
      }
    }
  }
}

std::optional<std::string> order_rule_violation(const OrderDocument& current,
                                                const OrderDocument& proposed,
                                                OrderRole role) {
  // Per-line comparison. Removed and added lines are treated as changes
  // attributable to the proposer.
  for (const auto& old_line : current.lines()) {
    const OrderLine* new_line = proposed.find(old_line.item);
    if (new_line == nullptr) {
      if (role != OrderRole::kCustomer) {
        return "only the customer may remove items (" + old_line.item + ")";
      }
      continue;
    }
    if (new_line->quantity != old_line.quantity &&
        role != OrderRole::kCustomer) {
      return "only the customer may change quantities (" + old_line.item +
             ")";
    }
    if (new_line->unit_price_cents != old_line.unit_price_cents &&
        role != OrderRole::kSupplier) {
      return "only the supplier may price items (" + old_line.item + ")";
    }
    if (new_line->approved != old_line.approved) {
      if (role != OrderRole::kApprover) {
        return "only the approver may approve items (" + old_line.item + ")";
      }
      if (!new_line->approved) {
        return "approval cannot be revoked (" + old_line.item + ")";
      }
    }
    if (new_line->delivery_days != old_line.delivery_days) {
      if (role != OrderRole::kDispatcher) {
        return "only the dispatcher may set delivery terms (" +
               old_line.item + ")";
      }
      if (!old_line.approved) {
        return "delivery terms require an approved item (" + old_line.item +
               ")";
      }
    }
  }
  for (const auto& new_line : proposed.lines()) {
    if (current.find(new_line.item) != nullptr) continue;
    if (role != OrderRole::kCustomer) {
      return "only the customer may add items (" + new_line.item + ")";
    }
    if (new_line.unit_price_cents != 0 || new_line.approved ||
        new_line.delivery_days != 0) {
      return "new items must be unpriced, unapproved and without delivery "
             "terms (" +
             new_line.item + ")";
    }
  }
  return std::nullopt;
}

OrderObject::OrderObject(std::map<PartyId, OrderRole> roles)
    : roles_(std::move(roles)) {}

std::optional<OrderRole> OrderObject::role_of(const PartyId& party) const {
  auto it = roles_.find(party);
  if (it == roles_.end()) return std::nullopt;
  return it->second;
}

Bytes OrderObject::get_state() const { return doc_.encode(); }

void OrderObject::apply_state(BytesView state) {
  doc_ = OrderDocument::decode(state);
  agreed_doc_ = doc_;
}

Bytes OrderObject::get_update() const {
  return encode_order_ops(diff_orders(agreed_doc_, doc_));
}

void OrderObject::apply_update(BytesView update) {
  apply_order_ops(doc_, decode_order_ops(update));
}

core::Decision OrderObject::validate_state(
    BytesView proposed_state, const core::ValidationContext& ctx) {
  OrderDocument proposed;
  try {
    proposed = OrderDocument::decode(proposed_state);
  } catch (const CodecError& e) {
    return core::Decision::rejected(std::string("undecodable order: ") +
                                    e.what());
  }
  std::optional<OrderRole> role = role_of(ctx.proposer);
  if (!role.has_value()) {
    return core::Decision::rejected("proposer has no role in this order");
  }
  std::optional<std::string> veto =
      order_rule_violation(doc_, proposed, *role);
  if (veto.has_value()) return core::Decision::rejected(*veto);
  return core::Decision::accepted();
}

void OrderObject::coord_callback(const core::CoordEvent& event) {
  // Refresh the delta baseline whenever a state becomes agreed (we were
  // the proposer: apply_state is not called on our side, so do it here).
  if (event.kind == core::CoordEvent::Kind::kStateAgreed) {
    agreed_doc_ = doc_;
  }
}

}  // namespace b2b::apps
