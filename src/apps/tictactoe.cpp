#include "apps/tictactoe.hpp"

#include <stdexcept>

#include "common/error.hpp"
#include "wire/codec.hpp"

namespace b2b::apps {

namespace {

constexpr std::array<std::array<int, 3>, 8> kLines = {{
    {0, 1, 2},
    {3, 4, 5},
    {6, 7, 8},  // rows
    {0, 3, 6},
    {1, 4, 7},
    {2, 5, 8},  // columns
    {0, 4, 8},
    {2, 4, 6},  // diagonals
}};

int cell_index(int row, int col) {
  if (row < 0 || row > 2 || col < 0 || col > 2) {
    throw std::out_of_range("board cell out of range");
  }
  return row * 3 + col;
}

Mark other(Mark mark) {
  return mark == Mark::kCross ? Mark::kNought : Mark::kCross;
}

}  // namespace

Mark Board::at(int row, int col) const { return cells_[cell_index(row, col)]; }

void Board::set(int row, int col, Mark mark) {
  cells_[cell_index(row, col)] = mark;
}

GameStatus Board::status() const {
  for (const auto& line : kLines) {
    Mark first = cells_[line[0]];
    if (first != Mark::kEmpty && cells_[line[1]] == first &&
        cells_[line[2]] == first) {
      return first == Mark::kCross ? GameStatus::kCrossWins
                                   : GameStatus::kNoughtWins;
    }
  }
  if (move_count_ == 9) return GameStatus::kDraw;
  return GameStatus::kInProgress;
}

bool Board::play(int row, int col, Mark mark) {
  if (mark == Mark::kEmpty) return false;
  if (status() != GameStatus::kInProgress) return false;
  if (mark != next_turn_) return false;
  int index = cell_index(row, col);
  if (cells_[index] != Mark::kEmpty) return false;
  cells_[index] = mark;
  next_turn_ = other(mark);
  ++move_count_;
  return true;
}

Bytes Board::encode() const {
  wire::Encoder enc;
  for (Mark cell : cells_) enc.u8(static_cast<std::uint8_t>(cell));
  enc.u8(static_cast<std::uint8_t>(next_turn_));
  enc.u32(static_cast<std::uint32_t>(move_count_));
  return std::move(enc).take();
}

Board Board::decode(BytesView data) {
  wire::Decoder dec{data};
  Board board;
  for (auto& cell : board.cells_) {
    std::uint8_t raw = dec.u8();
    if (raw > 2) throw CodecError("board: invalid cell value");
    cell = static_cast<Mark>(raw);
  }
  std::uint8_t turn = dec.u8();
  if (turn != 1 && turn != 2) throw CodecError("board: invalid turn value");
  board.next_turn_ = static_cast<Mark>(turn);
  board.move_count_ = static_cast<int>(dec.u32());
  if (board.move_count_ < 0 || board.move_count_ > 9) {
    throw CodecError("board: invalid move count");
  }
  dec.expect_done();
  return board;
}

std::string Board::render() const {
  std::string out;
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      Mark mark = at(row, col);
      out += mark == Mark::kCross ? 'X' : mark == Mark::kNought ? 'O' : '.';
      if (col != 2) out += ' ';
    }
    out += '\n';
  }
  return out;
}

std::optional<std::string> illegal_transition(const Board& current,
                                              const Board& proposed,
                                              std::optional<Mark> mover_mark) {
  if (!mover_mark.has_value()) {
    return "proposer is not a player in this game";
  }
  if (current.status() != GameStatus::kInProgress) {
    return "game is already over";
  }
  if (*mover_mark != current.next_turn()) {
    return "not the proposer's turn";
  }
  if (proposed.move_count() != current.move_count() + 1) {
    return "move count must advance by one";
  }
  if (proposed.next_turn() == current.next_turn()) {
    return "turn must pass to the opponent";
  }
  // Exactly one previously empty cell must now carry the mover's mark.
  int changed = 0;
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      Mark before = current.at(row, col);
      Mark after = proposed.at(row, col);
      if (before == after) continue;
      ++changed;
      if (before != Mark::kEmpty) {
        return "an already claimed square was overwritten";
      }
      if (after != *mover_mark) {
        return "square marked with the opponent's symbol";
      }
    }
  }
  if (changed == 0) return "no move made";
  if (changed > 1) return "more than one square changed";
  return std::nullopt;
}

TicTacToeObject::TicTacToeObject(PartyId cross_player, PartyId nought_player)
    : cross_player_(std::move(cross_player)),
      nought_player_(std::move(nought_player)) {}

std::optional<Mark> TicTacToeObject::mark_of(const PartyId& party) const {
  if (party == cross_player_) return Mark::kCross;
  if (party == nought_player_) return Mark::kNought;
  return std::nullopt;
}

Bytes TicTacToeObject::get_state() const { return board_.encode(); }

void TicTacToeObject::apply_state(BytesView state) {
  board_ = Board::decode(state);
}

core::Decision TicTacToeObject::validate_state(
    BytesView proposed_state, const core::ValidationContext& ctx) {
  Board proposed;
  try {
    proposed = Board::decode(proposed_state);
  } catch (const CodecError& e) {
    return core::Decision::rejected(std::string("undecodable board: ") +
                                    e.what());
  }
  std::optional<std::string> veto =
      illegal_transition(board_, proposed, mark_of(ctx.proposer));
  if (veto.has_value()) return core::Decision::rejected(*veto);
  return core::Decision::accepted();
}

}  // namespace b2b::apps
