// Distributed auction shared object (scenario 3 of §2).
//
// Autonomous auction houses jointly deliver a trusted auction service:
// every house holds a replica of the auction state, clients bid through
// whichever house they use, and each proposed bid is validated by all
// houses — so no house can favour its own clients (same chance of success
// irrespective of the server used), and every accepted bid is backed by
// non-repudiable evidence from every house.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "b2b/object.hpp"

namespace b2b::apps {

struct AuctionState {
  std::string item;
  std::uint64_t reserve_cents = 0;
  std::uint64_t highest_bid_cents = 0;  // 0 = no bid yet
  std::string highest_bidder;           // client identity
  std::string bidder_house;             // house that relayed the bid
  bool closed = false;
  std::uint32_t bid_count = 0;

  Bytes encode() const;
  static AuctionState decode(BytesView data);  // throws CodecError

  friend bool operator==(const AuctionState&, const AuctionState&) = default;
};

/// Which rule (if any) forbids `current` -> `proposed` when proposed by
/// `proposer` given the auction is run by `seller_house`?
std::optional<std::string> auction_rule_violation(const AuctionState& current,
                                                  const AuctionState& proposed,
                                                  const PartyId& proposer,
                                                  const PartyId& seller_house);

class AuctionObject : public core::B2BObject {
 public:
  /// `seller_house` is the house running the sale: the only party allowed
  /// to close the auction.
  explicit AuctionObject(PartyId seller_house);

  AuctionState& state() { return state_; }
  const AuctionState& state() const { return state_; }
  const PartyId& seller_house() const { return seller_house_; }

  /// Local mutation helpers (call between Controller enter/leave).
  /// place_bid records `house` as the relaying house.
  void place_bid(const PartyId& house, const std::string& client,
                 std::uint64_t amount_cents);
  void close();

  // B2BObject:
  Bytes get_state() const override;
  void apply_state(BytesView state) override;
  core::Decision validate_state(BytesView proposed_state,
                                const core::ValidationContext& ctx) override;

 private:
  AuctionState state_;
  PartyId seller_house_;
};

}  // namespace b2b::apps
