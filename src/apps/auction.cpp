#include "apps/auction.hpp"

#include "common/error.hpp"
#include "wire/codec.hpp"

namespace b2b::apps {

Bytes AuctionState::encode() const {
  wire::Encoder enc;
  enc.str(item)
      .u64(reserve_cents)
      .u64(highest_bid_cents)
      .str(highest_bidder)
      .str(bidder_house)
      .boolean(closed)
      .u32(bid_count);
  return std::move(enc).take();
}

AuctionState AuctionState::decode(BytesView data) {
  wire::Decoder dec{data};
  AuctionState s;
  s.item = dec.str();
  s.reserve_cents = dec.u64();
  s.highest_bid_cents = dec.u64();
  s.highest_bidder = dec.str();
  s.bidder_house = dec.str();
  s.closed = dec.boolean();
  s.bid_count = dec.u32();
  dec.expect_done();
  return s;
}

std::optional<std::string> auction_rule_violation(
    const AuctionState& current, const AuctionState& proposed,
    const PartyId& proposer, const PartyId& seller_house) {
  if (proposed.item != current.item ||
      proposed.reserve_cents != current.reserve_cents) {
    return "the lot and its reserve are immutable";
  }
  if (current.closed) {
    return "the auction is closed";
  }
  if (proposed.closed) {
    // Closing: only the selling house, and without smuggling in a bid
    // change at the same time.
    if (proposer != seller_house) {
      return "only the selling house may close the auction";
    }
    if (proposed.highest_bid_cents != current.highest_bid_cents ||
        proposed.highest_bidder != current.highest_bidder ||
        proposed.bidder_house != current.bidder_house ||
        proposed.bid_count != current.bid_count) {
      return "closing must not alter the bid record";
    }
    return std::nullopt;
  }
  // A bid.
  if (proposed.bid_count != current.bid_count + 1) {
    return "bid count must advance by one";
  }
  if (proposed.highest_bidder.empty()) {
    return "a bid requires a bidder";
  }
  if (proposed.bidder_house != proposer.str()) {
    return "a house may only submit bids through itself";
  }
  if (proposed.highest_bid_cents < current.reserve_cents) {
    return "bid is below the reserve";
  }
  if (proposed.highest_bid_cents <= current.highest_bid_cents) {
    return "bid does not beat the current highest bid";
  }
  return std::nullopt;
}

AuctionObject::AuctionObject(PartyId seller_house)
    : seller_house_(std::move(seller_house)) {}

void AuctionObject::place_bid(const PartyId& house, const std::string& client,
                              std::uint64_t amount_cents) {
  state_.highest_bid_cents = amount_cents;
  state_.highest_bidder = client;
  state_.bidder_house = house.str();
  ++state_.bid_count;
}

void AuctionObject::close() { state_.closed = true; }

Bytes AuctionObject::get_state() const { return state_.encode(); }

void AuctionObject::apply_state(BytesView state) {
  state_ = AuctionState::decode(state);
}

core::Decision AuctionObject::validate_state(
    BytesView proposed_state, const core::ValidationContext& ctx) {
  AuctionState proposed;
  try {
    proposed = AuctionState::decode(proposed_state);
  } catch (const CodecError& e) {
    return core::Decision::rejected(std::string("undecodable auction: ") +
                                    e.what());
  }
  std::optional<std::string> veto =
      auction_rule_violation(state_, proposed, ctx.proposer, seller_house_);
  if (veto.has_value()) return core::Decision::rejected(*veto);
  return core::Decision::accepted();
}

}  // namespace b2b::apps
