// Tic-Tac-Toe shared object (§5.1 of the paper).
//
// Two players' servers share the game state; every move is a proposed
// state change validated by the opponent (and, in the TTP variant of
// Figure 6, by a trusted third party). The rules are symmetric: claim an
// empty square with your own mark, on your turn, while the game is open.
// A party that proposes anything else — e.g. the paper's Figure 5 cheat,
// Cross marking a square with a zero to pre-empt Nought — is vetoed and
// the agreed game state is unchanged.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "b2b/object.hpp"

namespace b2b::apps {

enum class Mark : std::uint8_t { kEmpty = 0, kCross = 1, kNought = 2 };

/// Game status derived from the board.
enum class GameStatus : std::uint8_t {
  kInProgress = 0,
  kCrossWins = 1,
  kNoughtWins = 2,
  kDraw = 3,
};

/// Plain 3x3 board with rule helpers (no middleware coupling; unit-testable
/// in isolation).
class Board {
 public:
  Mark at(int row, int col) const;
  void set(int row, int col, Mark mark);

  Mark next_turn() const { return next_turn_; }
  int move_count() const { return move_count_; }
  GameStatus status() const;

  /// Apply a move if legal; returns false (board unchanged) otherwise.
  bool play(int row, int col, Mark mark);

  Bytes encode() const;
  static Board decode(BytesView data);  // throws CodecError

  friend bool operator==(const Board&, const Board&) = default;

  /// Render as three lines of "X O ." (debugging / examples).
  std::string render() const;

 private:
  std::array<Mark, 9> cells_{};
  Mark next_turn_ = Mark::kCross;
  int move_count_ = 0;
};

/// The B2BObject wrapper: knows which party plays which mark and enforces
/// the rules as its local validation policy.
class TicTacToeObject : public core::B2BObject {
 public:
  /// Parties other than the two players (e.g. a TTP) may share the object;
  /// they validate moves but cannot make any.
  TicTacToeObject(PartyId cross_player, PartyId nought_player);

  Board& board() { return board_; }
  const Board& board() const { return board_; }

  /// Mark played by `party`, if it is a player.
  std::optional<Mark> mark_of(const PartyId& party) const;

  // B2BObject:
  Bytes get_state() const override;
  void apply_state(BytesView state) override;
  core::Decision validate_state(BytesView proposed_state,
                                const core::ValidationContext& ctx) override;

 private:
  Board board_;
  PartyId cross_player_;
  PartyId nought_player_;
};

/// Rule check shared by validation and local play: is `proposed` a legal
/// successor of `current` when proposed by the player with `mover_mark`?
/// Returns the veto diagnostic, or nullopt if legal.
std::optional<std::string> illegal_transition(const Board& current,
                                              const Board& proposed,
                                              std::optional<Mark> mover_mark);

}  // namespace b2b::apps
