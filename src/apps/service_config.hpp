// Operational-support-system dispersal shared object (§2 scenario 2).
//
// "The customer needs to be able to tailor their complete service. This
// requires the 'dispersal of OSS' so that the customer controls the
// aspects that logically belong to them." Provider and customer share a
// telecom service configuration: the customer freely tunes its own
// service parameters *within envelope limits the provider publishes*; the
// provider owns the limits and its operational fields. Neither side can
// touch the other's domain — enforced by each side's local validation,
// not by trust.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "b2b/object.hpp"

namespace b2b::apps {

struct ServiceConfig {
  // --- provider-owned envelope ------------------------------------------------
  std::uint32_t max_bandwidth_mbps = 100;
  std::uint8_t max_qos_class = 3;  // customer may select 0..max
  std::string maintenance_window;  // e.g. "Sun 02:00-04:00"

  // --- customer-owned service selection ---------------------------------------
  std::uint32_t bandwidth_mbps = 10;
  std::uint8_t qos_class = 0;
  std::string fault_contact;  // where the provider reports faults
  bool service_enabled = true;

  Bytes encode() const;
  static ServiceConfig decode(BytesView data);  // throws CodecError

  friend bool operator==(const ServiceConfig&, const ServiceConfig&) = default;
};

enum class OssRole : std::uint8_t {
  kProvider = 0,
  kCustomer = 1,
};

/// Which rule (if any) forbids `current` -> `proposed` for `role`?
std::optional<std::string> oss_rule_violation(const ServiceConfig& current,
                                              const ServiceConfig& proposed,
                                              OssRole role);

class ServiceConfigObject : public core::B2BObject {
 public:
  ServiceConfigObject(PartyId provider, PartyId customer);

  ServiceConfig& config() { return config_; }
  const ServiceConfig& config() const { return config_; }
  std::optional<OssRole> role_of(const PartyId& party) const;

  // B2BObject:
  Bytes get_state() const override;
  void apply_state(BytesView state) override;
  core::Decision validate_state(BytesView proposed_state,
                                const core::ValidationContext& ctx) override;

 private:
  ServiceConfig config_;
  PartyId provider_;
  PartyId customer_;
};

}  // namespace b2b::apps
