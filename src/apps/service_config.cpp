#include "apps/service_config.hpp"

#include "common/error.hpp"
#include "wire/codec.hpp"

namespace b2b::apps {

Bytes ServiceConfig::encode() const {
  wire::Encoder enc;
  enc.u32(max_bandwidth_mbps)
      .u8(max_qos_class)
      .str(maintenance_window)
      .u32(bandwidth_mbps)
      .u8(qos_class)
      .str(fault_contact)
      .boolean(service_enabled);
  return std::move(enc).take();
}

ServiceConfig ServiceConfig::decode(BytesView data) {
  wire::Decoder dec{data};
  ServiceConfig c;
  c.max_bandwidth_mbps = dec.u32();
  c.max_qos_class = dec.u8();
  c.maintenance_window = dec.str();
  c.bandwidth_mbps = dec.u32();
  c.qos_class = dec.u8();
  c.fault_contact = dec.str();
  c.service_enabled = dec.boolean();
  dec.expect_done();
  return c;
}

std::optional<std::string> oss_rule_violation(const ServiceConfig& current,
                                              const ServiceConfig& proposed,
                                              OssRole role) {
  bool envelope_changed =
      proposed.max_bandwidth_mbps != current.max_bandwidth_mbps ||
      proposed.max_qos_class != current.max_qos_class ||
      proposed.maintenance_window != current.maintenance_window;
  bool selection_changed =
      proposed.bandwidth_mbps != current.bandwidth_mbps ||
      proposed.qos_class != current.qos_class ||
      proposed.fault_contact != current.fault_contact ||
      proposed.service_enabled != current.service_enabled;

  if (role == OssRole::kProvider) {
    if (selection_changed) {
      return "the customer's service selection belongs to the customer";
    }
    // The provider may not shrink the envelope below what the customer
    // already uses (that would silently break the running service).
    if (proposed.max_bandwidth_mbps < current.bandwidth_mbps) {
      return "cannot shrink the bandwidth envelope below current usage";
    }
    if (proposed.max_qos_class < current.qos_class) {
      return "cannot shrink the QoS envelope below the current class";
    }
    return std::nullopt;
  }

  // Customer.
  if (envelope_changed) {
    return "service limits and maintenance windows belong to the provider";
  }
  if (proposed.bandwidth_mbps > current.max_bandwidth_mbps) {
    return "requested bandwidth exceeds the provider's envelope";
  }
  if (proposed.qos_class > current.max_qos_class) {
    return "requested QoS class exceeds the provider's envelope";
  }
  if (proposed.bandwidth_mbps == 0 && proposed.service_enabled) {
    return "an enabled service needs non-zero bandwidth";
  }
  return std::nullopt;
}

ServiceConfigObject::ServiceConfigObject(PartyId provider, PartyId customer)
    : provider_(std::move(provider)), customer_(std::move(customer)) {}

std::optional<OssRole> ServiceConfigObject::role_of(
    const PartyId& party) const {
  if (party == provider_) return OssRole::kProvider;
  if (party == customer_) return OssRole::kCustomer;
  return std::nullopt;
}

Bytes ServiceConfigObject::get_state() const { return config_.encode(); }

void ServiceConfigObject::apply_state(BytesView state) {
  config_ = ServiceConfig::decode(state);
}

core::Decision ServiceConfigObject::validate_state(
    BytesView proposed_state, const core::ValidationContext& ctx) {
  ServiceConfig proposed;
  try {
    proposed = ServiceConfig::decode(proposed_state);
  } catch (const CodecError& e) {
    return core::Decision::rejected(std::string("undecodable config: ") +
                                    e.what());
  }
  std::optional<OssRole> role = role_of(ctx.proposer);
  if (!role.has_value()) {
    return core::Decision::rejected(
        "proposer has no role in this service relationship");
  }
  std::optional<std::string> veto =
      oss_rule_violation(config_, proposed, *role);
  if (veto.has_value()) return core::Decision::rejected(*veto);
  return core::Decision::accepted();
}

}  // namespace b2b::apps
