// Order-processing shared object (§5.2 of the paper).
//
// A customer and a supplier (and, in the extended four-party variant the
// paper sketches, an approver and a dispatcher) share the state of an
// order. Validation rules are *asymmetric*: what a proposed change may
// touch depends on who proposed it. The Figure 7 scenario — the supplier
// pricing an item while also changing its quantity — is rejected by the
// customer's local validation and never reaches the agreed order.
//
// The object supports both coordination variants: full-state overwrite and
// delta update (§4.3.1) via a compact operation list.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "b2b/object.hpp"

namespace b2b::apps {

enum class OrderRole : std::uint8_t {
  kCustomer = 0,   // may add lines and set quantities
  kSupplier = 1,   // may only price lines
  kApprover = 2,   // may only approve lines
  kDispatcher = 3, // may only set delivery terms on approved lines
  kObserver = 4,   // may not change anything
};

struct OrderLine {
  std::string item;
  std::uint32_t quantity = 0;
  std::uint64_t unit_price_cents = 0;  // 0 = not yet priced
  bool approved = false;
  std::uint32_t delivery_days = 0;  // 0 = no delivery commitment yet

  friend bool operator==(const OrderLine&, const OrderLine&) = default;
};

/// The pure order document (no middleware coupling).
class OrderDocument {
 public:
  const std::vector<OrderLine>& lines() const { return lines_; }
  const OrderLine* find(const std::string& item) const;
  OrderLine* find(const std::string& item);

  /// Add a new (unpriced, unapproved) line. Throws b2b::Error on
  /// duplicates or zero quantity.
  void add_line(const std::string& item, std::uint32_t quantity);
  /// Remove a line. Throws if absent.
  void remove_line(const std::string& item);

  Bytes encode() const;
  static OrderDocument decode(BytesView data);  // throws CodecError

  friend bool operator==(const OrderDocument&, const OrderDocument&) = default;

 private:
  std::vector<OrderLine> lines_;
};

/// Delta operations for the update variant.
struct OrderOp {
  enum class Kind : std::uint8_t {
    kAddLine = 0,      // arg = quantity
    kRemoveLine = 1,   // arg unused
    kSetQuantity = 2,  // arg = quantity
    kSetPrice = 3,     // arg = unit price in cents
    kApprove = 4,      // arg unused
    kSetDelivery = 5,  // arg = days
  };
  Kind kind{};
  std::string item;
  std::uint64_t arg = 0;

  friend bool operator==(const OrderOp&, const OrderOp&) = default;
};

Bytes encode_order_ops(const std::vector<OrderOp>& ops);
std::vector<OrderOp> decode_order_ops(BytesView data);

/// Compute the op list transforming `from` into `to`.
std::vector<OrderOp> diff_orders(const OrderDocument& from,
                                 const OrderDocument& to);

/// Apply ops in place. Throws b2b::Error on inapplicable ops.
void apply_order_ops(OrderDocument& doc, const std::vector<OrderOp>& ops);

/// Role-based validation: which diagnostic (if any) vetoes the transition
/// `current` -> `proposed` when proposed by a party with `role`?
std::optional<std::string> order_rule_violation(const OrderDocument& current,
                                                const OrderDocument& proposed,
                                                OrderRole role);

class OrderObject : public core::B2BObject {
 public:
  explicit OrderObject(std::map<PartyId, OrderRole> roles);

  OrderDocument& doc() { return doc_; }
  const OrderDocument& doc() const { return doc_; }
  std::optional<OrderRole> role_of(const PartyId& party) const;

  // B2BObject:
  Bytes get_state() const override;
  void apply_state(BytesView state) override;
  Bytes get_update() const override;
  void apply_update(BytesView update) override;
  core::Decision validate_state(BytesView proposed_state,
                                const core::ValidationContext& ctx) override;
  void coord_callback(const core::CoordEvent& event) override;

 private:
  OrderDocument doc_;
  OrderDocument agreed_doc_;  // baseline for get_update deltas
  std::map<PartyId, OrderRole> roles_;
};

}  // namespace b2b::apps
