#include "net/scheduler.hpp"

#include <utility>

namespace b2b::net {

void EventScheduler::at(SimTime when, Action action) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

bool EventScheduler::run_one() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; moving the action out before pop is
  // safe because the comparator never touches `action`.
  Event& top = const_cast<Event&>(queue_.top());
  SimTime time = top.time;
  Action action = std::move(top.action);
  queue_.pop();
  now_ = time;
  ++executed_;
  action();
  return true;
}

std::size_t EventScheduler::run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && run_one()) ++count;
  return count;
}

std::size_t EventScheduler::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    run_one();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool EventScheduler::run_until_condition(
    const std::function<bool()>& predicate, std::size_t max_events) {
  std::size_t count = 0;
  while (!predicate()) {
    if (count >= max_events || !run_one()) return predicate();
    ++count;
  }
  return true;
}

}  // namespace b2b::net
