// Deterministic discrete-event scheduler (virtual time).
//
// The paper's failure assumptions (§4.2) are about *eventual* delivery and
// *eventual* recovery; wall-clock time is irrelevant to the protocol logic.
// Running every multi-party scenario on a virtual clock makes liveness
// experiments deterministic and lets a bench simulate hours of retransmit
// timers in milliseconds. Ties are broken by insertion order, so a given
// seed always produces the same execution.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace b2b::net {

/// Virtual time in microseconds since simulation start.
using SimTime = std::uint64_t;

class EventScheduler {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `action` at absolute virtual time `when` (clamped to now).
  void at(SimTime when, Action action);

  /// Schedule `action` `delay` microseconds from now.
  void after(SimTime delay, Action action) { at(now_ + delay, std::move(action)); }

  /// Run the earliest pending event. Returns false if none are pending.
  bool run_one();

  /// Run events until the queue is empty or `max_events` executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = kDefaultEventBudget);

  /// Run events with time <= `deadline` (events scheduled during the run
  /// are included if they fall within the deadline).
  std::size_t run_until(SimTime deadline);

  /// Keep running until `predicate()` is true or the queue empties or the
  /// event budget is exhausted. Returns true if the predicate held.
  bool run_until_condition(const std::function<bool()>& predicate,
                           std::size_t max_events = kDefaultEventBudget);

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

  static constexpr std::size_t kDefaultEventBudget = 10'000'000;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace b2b::net
