#include "net/reactor_runtime.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <random>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "net/frame.hpp"
#include "wire/codec.hpp"

namespace b2b::net {

namespace {

std::uint64_t random_incarnation() {
  std::random_device rd;
  std::uint64_t hi = rd();
  std::uint64_t lo = rd();
  std::uint64_t inc = (hi << 32) ^ lo;
  return inc == 0 ? 1 : inc;  // 0 is "no incarnation known"
}

}  // namespace

// ---------------------------------------------------------------------------
// ReactorTransport — construction / teardown
// ---------------------------------------------------------------------------

ReactorTransport::ReactorTransport(PartyId self, const std::string& host,
                                   std::uint16_t port,
                                   std::shared_ptr<PeerDirectory> directory,
                                   Config config, Reactor& reactor,
                                   std::shared_ptr<TaskPool> pool)
    : self_(std::move(self)),
      directory_(std::move(directory)),
      config_(config),
      incarnation_(random_incarnation()),
      reactor_(reactor),
      pool_(std::move(pool)),
      listen_socket_(tcp_listen(host, port, &port_)),
      fault_rng_(config.fault_seed),
      delivery_strand_(std::make_unique<Strand>(pool_)) {
  listen_socket_.set_nonblocking(true);
  reactor_.post([this] { start_on_loop(); });
}

ReactorTransport::~ReactorTransport() { shutdown(); }

void ReactorTransport::start_on_loop() {
  listener_handle_ = reactor_.add_fd(
      listen_socket_.fd(), EPOLLIN,
      [this](std::uint32_t events) { on_listener_events(events); });
  retransmit_timer_ = reactor_.schedule_after(
      config_.retransmit_interval_micros, [this] { retransmit_tick(); });
}

void ReactorTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_called_) return;
    shutdown_called_ = true;
  }
  // Tear down the loop-side state ON the loop while it runs; once the
  // reactor has stopped its thread is joined, so direct access is safe.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  const bool posted = reactor_.post([&] {
    teardown_on_loop();
    // Notify WHILE holding the lock: the waiter cannot return from
    // wait() (and destroy the stack cv) until we release done_mutex,
    // which happens only after notify_all has finished.
    std::lock_guard<std::mutex> lock(done_mutex);
    done = true;
    done_cv.notify_all();
  });
  if (posted) {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return done; });
  } else {
    teardown_on_loop();
  }
  delivery_strand_->stop();
}

void ReactorTransport::teardown_on_loop() {
  if (closed_) return;
  closed_ = true;
  if (retransmit_timer_ != TimerWheel::kInvalidTimer) {
    reactor_.cancel(retransmit_timer_);
    retransmit_timer_ = TimerWheel::kInvalidTimer;
  }
  if (accept_pause_timer_ != TimerWheel::kInvalidTimer) {
    reactor_.cancel(accept_pause_timer_);
    accept_pause_timer_ = TimerWheel::kInvalidTimer;
  }
  if (listener_handle_) {
    reactor_.remove_fd(listener_handle_);
    listener_handle_.reset();
  }
  listen_socket_.close();
  for (auto& conn : conns_) {
    conn->dead = true;
    if (conn->deadline_timer != TimerWheel::kInvalidTimer) {
      reactor_.cancel(conn->deadline_timer);
      conn->deadline_timer = TimerWheel::kInvalidTimer;
    }
    if (conn->handle) {
      reactor_.remove_fd(conn->handle);
      conn->handle.reset();
    }
    conn->socket.close();
  }
  conns_.clear();
  active_.clear();
}

// ---------------------------------------------------------------------------
// ReactorTransport — Transport interface (any thread)
// ---------------------------------------------------------------------------

int ReactorTransport::sample_faults_locked() {
  const TcpFaults& faults = config_.faults;
  if (faults.drop_probability > 0.0 &&
      fault_rng_.next_double() < faults.drop_probability) {
    ++fabric_stats_.frames_dropped_injected;
    return 0;
  }
  if (faults.duplicate_probability > 0.0 &&
      fault_rng_.next_double() < faults.duplicate_probability) {
    ++fabric_stats_.frames_duplicated_injected;
    return 2;
  }
  return 1;
}

void ReactorTransport::send(const PartyId& to, Bytes payload) {
  std::uint64_t seq;
  int copies = 0;
  Bytes wire_payload = payload;  // survives the move into outgoing_
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = next_seq_[to]++;
    outgoing_[{to, seq}] = Outgoing{std::move(payload), 1};
    ++stats_.app_sent;
    if (alive_) copies = sample_faults_locked();
  }
  if (copies == 0) return;
  // All connection state is loop-owned; the write happens there — and so
  // does the encoding, because the MAC key belongs to the connection. If
  // no usable connection exists yet the dial starts and the frame rides
  // the retransmit timer / post-handshake flush instead.
  reactor_.post([this, to, seq, wire_payload = std::move(wire_payload),
                 copies] {
    if (closed_) return;
    auto it = active_.find(to);
    if (it == active_.end()) {
      dial(to);
      return;
    }
    if (it->second->connecting) return;  // flushed on connect completion
    if (config_.auth.enabled && !it->second->keys.has_send) return;
    Bytes encoded = frame::encode_data(incarnation_, seq, wire_payload);
    if (config_.auth.enabled) append_mac(encoded, it->second->keys.send);
    queue_frame(it->second, frame::frame_payload(encoded), copies, false);
    flush_conn(it->second);
  });
}

void ReactorTransport::set_handler(Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handler_ = std::move(handler);
}

void ReactorTransport::set_handler_sync(Handler handler) {
  std::unique_lock<std::mutex> lock(mutex_);
  handler_ = std::move(handler);
  // Deliveries already queued on the strand raised dispatching_ under
  // this mutex; they re-read handler_ when they run, so waiting here
  // guarantees no invocation of the *previous* handler is in flight.
  dispatch_cv_.wait(lock, [this] { return dispatching_ == 0; });
}

void ReactorTransport::set_delivery_failure_handler(
    DeliveryFailureHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  failure_handler_ = std::move(handler);
}

std::size_t ReactorTransport::unacked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outgoing_.size();
}

Transport::Stats ReactorTransport::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats = stats_;
  }
  const Reactor::Stats loop_stats = reactor_.stats();
  stats.epoll_wakeups = loop_stats.epoll_wakeups;
  stats.timers_fired = loop_stats.timers_fired;
  stats.executor_queue_peak = pool_->queue_peak();
  return stats;
}

TcpFabricStats ReactorTransport::fabric_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fabric_stats_;
}

void ReactorTransport::set_alive(bool alive) {
  std::lock_guard<std::mutex> lock(mutex_);
  alive_ = alive;
}

bool ReactorTransport::quiescent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outgoing_.empty() && dispatching_ == 0;
}

// ---------------------------------------------------------------------------
// ReactorTransport — loop-thread machinery
// ---------------------------------------------------------------------------

void ReactorTransport::on_listener_events(std::uint32_t) {
  if (closed_) return;
  for (;;) {
    int fd = ::accept4(listen_socket_.fd(), nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      auto conn = std::make_shared<Conn>();
      conn->socket = Socket(fd);
      adopt_conn(conn, /*inbound=*/true);
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EMFILE || errno == ENFILE) {
      // Out of descriptors: disarm the listener briefly instead of
      // spinning (level-triggered EPOLLIN would re-fire immediately).
      // Shed connections; peers redial via their retransmit layer.
      B2B_WARN("reactor: accept on ", self_,
               ": out of file descriptors; pausing accepts");
      reactor_.update_fd(listener_handle_, 0);
      if (accept_pause_timer_ != TimerWheel::kInvalidTimer) {
        reactor_.cancel(accept_pause_timer_);
      }
      accept_pause_timer_ = reactor_.schedule_after(100'000, [this] {
        accept_pause_timer_ = TimerWheel::kInvalidTimer;
        if (!closed_ && listener_handle_) {
          reactor_.update_fd(listener_handle_, EPOLLIN);
        }
      });
      return;
    }
    B2B_WARN("reactor: accept failed on ", self_);
    return;
  }
}

void ReactorTransport::adopt_conn(const ConnPtr& conn, bool inbound) {
  conn->socket.set_nodelay();
  std::weak_ptr<Conn> weak = conn;
  // The fd handler holds the connection weakly: the transport's conns_
  // table owns it, so killing the connection frees it even though the
  // reactor may briefly keep the handler in its dispatch graveyard.
  conn->handle = reactor_.add_fd(
      conn->socket.fd(), EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
      [this, weak](std::uint32_t events) {
        if (auto c = weak.lock()) on_conn_events(c, events);
      });
  if (!conn->handle) {
    conn->dead = true;
    conn->socket.close();
    return;
  }
  conns_.push_back(conn);
  if (inbound) {
    conn->deadline_timer = reactor_.schedule_after(
        config_.handshake_timeout_micros, [this, weak] {
          auto c = weak.lock();
          if (c && !c->dead && !c->handshaken) kill_conn(c);
        });
  }
}

void ReactorTransport::on_conn_events(const ConnPtr& conn,
                                      std::uint32_t events) {
  if (closed_ || conn->dead) return;
  if (conn->connecting) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) {
      finish_connect(conn);
    }
    if (conn->dead || conn->connecting) return;
    // Connected: fall through — the same readiness report may carry
    // the first readable bytes.
  }
  if ((events & EPOLLERR) != 0) {
    kill_conn(conn);
    return;
  }
  if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
    read_conn(conn);
    if (conn->dead) return;
  }
  if ((events & EPOLLOUT) != 0) flush_conn(conn);
}

void ReactorTransport::finish_connect(const ConnPtr& conn) {
  int err = 0;
  socklen_t err_len = sizeof err;
  if (::getsockopt(conn->socket.fd(), SOL_SOCKET, SO_ERROR, &err,
                   &err_len) != 0 ||
      err != 0) {
    bump_backoff(conn->peer);
    kill_conn(conn);
    return;
  }
  conn->connecting = false;
  conn->socket.set_nodelay();
  if (conn->deadline_timer != TimerWheel::kInvalidTimer) {
    reactor_.cancel(conn->deadline_timer);
    conn->deadline_timer = TimerWheel::kInvalidTimer;
  }
  // The hello was queued at dial time; it leads the stream, then
  // everything already outstanding for this peer follows.
  flush_conn(conn);
  if (conn->dead) return;
  flush_outgoing_to(conn->peer, conn);
}

void ReactorTransport::read_conn(const ConnPtr& conn) {
  // Edge-triggered: drain until EAGAIN (or EOF/error).
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn->socket.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      conn->rbuf.append(chunk, static_cast<std::size_t>(n));
      if (!parse_frames(conn)) {
        kill_conn(conn);
        return;
      }
      if (conn->dead) return;
      continue;
    }
    if (n == 0) {  // orderly EOF (includes half-open teardown)
      kill_conn(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    kill_conn(conn);
    return;
  }
}

bool ReactorTransport::parse_frames(const ConnPtr& conn) {
  // Frames that fail pre-delivery vetting (hostile length, bad magic,
  // out-of-order or misdirected handshake, unknown type, malformed
  // encoding) reset the connection and are counted here.
  auto reject = [this] {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.frames_rejected_auth;
  };
  for (;;) {
    if (conn->rbuf.size() < frame::kHeaderLen) return true;
    const std::uint8_t* head = conn->rbuf.data();
    frame::Header hdr;
    if (!frame::decode_header(head, config_.max_frame_bytes, &hdr)) {
      B2B_WARN("reactor: rejecting hostile frame length (", hdr.len,
               " bytes) on ", self_);
      reject();
      return false;
    }
    const std::uint32_t len = hdr.len;
    if (conn->rbuf.size() < frame::kHeaderLen + len) return true;  // partial
    Bytes payload(head + frame::kHeaderLen, head + frame::kHeaderLen + len);
    conn->rbuf.consume(frame::kHeaderLen + len);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.bytes_received += frame::kHeaderLen + len;
    }
    if (store::crc32(payload) != hdr.crc) {
      // The framing itself can no longer be trusted; drop the
      // connection and let retransmission recover over a fresh one.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.frames_dropped_crc;
      return false;
    }
    try {
      // Wire v3: past the handshake every frame on an authenticated
      // connection ends in an HMAC tag verified (constant time) BEFORE
      // any parsing — a forged or rewritten frame dies right here.
      BytesView body{payload};
      if (conn->handshaken && config_.auth.enabled) {
        if (!conn->keys.has_recv ||
            !verify_strip_mac(payload, conn->keys.recv, &body)) {
          B2B_WARN("reactor: bad frame MAC from ", conn->peer, " on ",
                   self_);
          reject();
          return false;
        }
      }
      wire::Decoder dec{body};
      const std::uint8_t type = dec.u8();
      if (!conn->handshaken) {
        if (type != frame::kHello) {  // hello is always first
          reject();
          return false;
        }
        frame::Hello hello = frame::decode_hello(dec);
        if (hello.magic != frame::kMagic ||
            hello.version != frame::kVersion) {
          reject();
          return false;
        }
        PartyId from{hello.from};
        if (PartyId{hello.to} != self_) {
          B2B_WARN("reactor: ", self_, " got a handshake meant for ",
                   hello.to);
          reject();
          return false;
        }
        // Auth vetting: mode mismatch (downgrade/strip), bad signature or
        // undecryptable key half all kill the connection before it can
        // carry a byte of data. On success the peer's half keys `recv`.
        if (!accept_hello(config_.auth, self_, hello, &conn->keys)) {
          B2B_WARN("reactor: rejecting unauthenticated/forged hello from ",
                   from, " on ", self_);
          reject();
          return false;
        }
        const bool reply = !conn->hello_sent;
        Bytes reply_hello;
        if (reply) {
          // Build (and key) the reply before flush_outgoing_to below can
          // encode data frames against this connection's send key.
          reply_hello = build_hello(config_.auth, self_, from, incarnation_,
                                    &conn->keys);
          if (reply_hello.empty()) {
            reject();  // auth on but no key for the peer: fail closed
            return false;
          }
        }
        register_handshake(conn, std::move(from), hello.incarnation);
        if (conn->dead) return true;  // killed while registering
        if (reply) {
          conn->hello_sent = true;
          queue_frame(conn, frame::frame_payload(reply_hello), 1,
                      /*force=*/true);
        }
        // Outstanding frames flush only after any hello reply is queued:
        // on a simultaneous open the peer's side of this socket is still
        // pre-handshake, and data leading the reply is a protocol
        // violation that would kill the connection (and retrigger
        // identically every retransmit tick — a permanent reconnect
        // storm).
        flush_outgoing_to(conn->peer, conn);
        if (conn->dead) return true;
      } else if (type == frame::kData) {
        const std::uint64_t frame_inc = dec.u64();
        const std::uint64_t seq = dec.u64();
        Bytes app_payload = dec.blob();
        dec.expect_done();
        if (!handle_data(conn, frame_inc, seq, std::move(app_payload))) {
          return false;
        }
        if (conn->dead) return true;
      } else if (type == frame::kAck) {
        const std::uint64_t frame_inc = dec.u64();
        const std::uint64_t seq = dec.u64();
        dec.expect_done();
        handle_ack(conn->peer, frame_inc, seq);
      } else {
        reject();
        return false;  // unknown frame type: corrupt or future peer
      }
    } catch (const CodecError&) {
      B2B_DEBUG("reactor: dropping connection with malformed frame on ",
                self_);
      reject();
      return false;
    }
  }
}

void ReactorTransport::queue_frame(const ConnPtr& conn, const Bytes& framed,
                                   int copies, bool force) {
  if (conn->dead) return;
  for (int i = 0; i < copies; ++i) {
    if (!force && conn->wbuf.size() >= config_.max_send_buffer_bytes) {
      // Backpressure: the frame stays in outgoing_ and the retransmit
      // timer re-offers it once EPOLLOUT has drained the buffer.
      return;
    }
    conn->wbuf.append(framed.data(), framed.size());
  }
}

void ReactorTransport::flush_conn(const ConnPtr& conn) {
  if (conn->dead || conn->connecting) return;
  std::size_t written = 0;
  bool fatal = false;
  while (!conn->wbuf.empty()) {
    ssize_t n = ::send(conn->socket.fd(), conn->wbuf.data(),
                       conn->wbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->wbuf.consume(static_cast<std::size_t>(n));
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // kernel buffer full; EPOLLOUT resumes the flush
    }
    fatal = true;
    break;
  }
  if (written > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.bytes_sent += written;
  }
  if (fatal) kill_conn(conn);
}

void ReactorTransport::kill_conn(const ConnPtr& conn) {
  if (conn->dead) return;
  conn->dead = true;
  if (conn->deadline_timer != TimerWheel::kInvalidTimer) {
    reactor_.cancel(conn->deadline_timer);
    conn->deadline_timer = TimerWheel::kInvalidTimer;
  }
  if (conn->handle) {
    reactor_.remove_fd(conn->handle);
    conn->handle.reset();
  }
  conn->socket.close();
  auto it = active_.find(conn->peer);
  if (it != active_.end() && it->second == conn) active_.erase(it);
  auto pos = std::find(conns_.begin(), conns_.end(), conn);
  if (pos != conns_.end()) conns_.erase(pos);
}

void ReactorTransport::bump_backoff(const PartyId& to) {
  auto& backoff = backoff_[to];
  backoff.delay_micros =
      backoff.delay_micros == 0
          ? config_.reconnect_backoff_min_micros
          : std::min(backoff.delay_micros * 2,
                     config_.reconnect_backoff_max_micros);
  backoff.not_before_micros = reactor_.now_micros() + backoff.delay_micros;
}

void ReactorTransport::dial(const PartyId& to) {
  if (closed_) return;
  auto& backoff = backoff_[to];
  if (reactor_.now_micros() < backoff.not_before_micros) return;
  auto address = directory_->lookup(to);
  if (!address || address->port == 0) {
    bump_backoff(to);
    return;
  }
  bool in_progress = false;
  Socket socket = tcp_connect_start(address->host, address->port,
                                    &in_progress);
  if (!socket.valid()) {
    bump_backoff(to);
    return;
  }
  auto conn = std::make_shared<Conn>();
  conn->socket = std::move(socket);
  conn->peer = to;
  conn->hello_sent = true;
  conn->connecting = in_progress;
  // Our hello goes first on the stream; it sits in the send buffer
  // until the connect completes (the peer processes frames in order,
  // so it knows us before any payload). Building it also keys `send`,
  // so data frames can be MAC'd the moment the hello is queued.
  Bytes hello = build_hello(config_.auth, self_, to, incarnation_,
                            &conn->keys);
  if (hello.empty()) {
    bump_backoff(to);  // auth on but no key for the peer: fail closed
    return;
  }
  queue_frame(conn, frame::frame_payload(hello), 1, /*force=*/true);
  adopt_conn(conn, /*inbound=*/false);
  if (conn->dead) {
    bump_backoff(to);
    return;
  }
  // Usable for sending right away; a handshaken connection registered
  // in the meantime keeps precedence.
  active_.try_emplace(to, conn);
  if (in_progress) {
    std::weak_ptr<Conn> weak = conn;
    conn->deadline_timer = reactor_.schedule_after(
        config_.connect_timeout_micros, [this, weak] {
          auto c = weak.lock();
          if (c && !c->dead && c->connecting) {
            bump_backoff(c->peer);
            kill_conn(c);
          }
        });
  } else {
    finish_connect(conn);
  }
}

void ReactorTransport::register_handshake(const ConnPtr& conn, PartyId peer,
                                          std::uint64_t peer_incarnation) {
  conn->peer = std::move(peer);
  conn->peer_incarnation = peer_incarnation;
  conn->handshaken = true;
  if (conn->deadline_timer != TimerWheel::kInvalidTimer) {
    reactor_.cancel(conn->deadline_timer);
    conn->deadline_timer = TimerWheel::kInvalidTimer;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = peer_incarnation_.find(conn->peer);
    if (it == peer_incarnation_.end() ||
        it->second != peer_incarnation) {
      // A new incarnation means the peer's sequence numbers restarted:
      // drop the old dedup window (DESIGN.md §7 delegates cross-restart
      // dedup to the coordinator journal).
      peer_incarnation_[conn->peer] = peer_incarnation;
      delivered_.erase(conn->peer);
    }
  }
  // Latest handshake wins: an inbound connection from a restarted peer
  // supersedes whatever we were using.
  active_[conn->peer] = conn;
  auto& backoff = backoff_[conn->peer];
  backoff.delay_micros = 0;
  backoff.not_before_micros = 0;
  const bool reconnect = backoff.ever_connected;
  backoff.ever_connected = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.connects;
    if (reconnect) ++stats_.reconnects;
  }
  // The caller flushes outstanding frames once the handshake exchange
  // on this connection is fully queued (hello reply first on the wire).
}

bool ReactorTransport::handle_data(const ConnPtr& conn, std::uint64_t frame_inc,
                                   std::uint64_t seq, Bytes payload) {
  bool deliver = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Crashed (set_alive(false)): drop un-acked, so the peer keeps
    // retransmitting into the downtime and delivery resumes on recovery.
    if (!alive_) return true;
    // A data frame whose incarnation is not the one this connection
    // handshook is proof of splicing — a peer never changes incarnation
    // mid-connection. Kill the connection before the alien sequence
    // number can poison the dedup window (wire v2, DESIGN.md §11); the
    // peer reconnects with a fresh handshake and retransmits.
    if (frame_inc != conn->peer_incarnation) {
      ++stats_.replays_suppressed;
      return false;
    }
    // Frames from a superseded incarnation of the peer: that process is
    // gone; acking or delivering against the fresh dedup window would
    // corrupt the once-only bookkeeping.
    auto it = peer_incarnation_.find(conn->peer);
    if (it == peer_incarnation_.end() ||
        it->second != conn->peer_incarnation) {
      ++stats_.replays_suppressed;
      return true;
    }
    ++stats_.acks_sent;
    if (delivered_[conn->peer].mark(seq)) {
      deliver = true;
      ++stats_.app_delivered;
      ++dispatching_;
    } else {
      ++stats_.duplicates_suppressed;
    }
  }
  Bytes ack = frame::encode_ack(frame_inc, seq);
  if (config_.auth.enabled) append_mac(ack, conn->keys.send);
  queue_frame(conn, frame::frame_payload(ack), 1, /*force=*/true);
  flush_conn(conn);
  if (!deliver) return true;
  // Deliveries run off-loop: the handler re-enters the coordinator
  // (RSA, journal fsync) and must never block socket I/O. The strand
  // keeps them FIFO and one-at-a-time (Transport contract); dispatching_
  // was raised under mutex_ so set_handler_sync fences queued ones too.
  delivery_strand_->post(
      [this, peer = conn->peer, payload = std::move(payload)]() mutable {
        Handler handler;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          handler = handler_;
        }
        if (handler) handler(peer, payload);
        {
          std::lock_guard<std::mutex> lock(mutex_);
          --dispatching_;
        }
        dispatch_cv_.notify_all();
      });
  return true;
}

void ReactorTransport::handle_ack(const PartyId& from, std::uint64_t frame_inc,
                                  std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!alive_) return;
  // An ack retires outgoing_[seq] only if it echoes our *current*
  // incarnation: a recorded ack replayed across our restart (or spliced
  // from another stream) must not mark a live message delivered.
  if (frame_inc != incarnation_) {
    ++stats_.replays_suppressed;
    return;
  }
  outgoing_.erase({from, seq});
}

void ReactorTransport::flush_outgoing_to(const PartyId& peer,
                                         const ConnPtr& conn) {
  if (conn->dead || conn->connecting) return;
  if (config_.auth.enabled && !conn->keys.has_send) return;
  struct Offer {
    Bytes framed;
    int copies;
  };
  std::vector<Offer> frames;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!alive_) return;
    for (auto it = outgoing_.lower_bound({peer, 0});
         it != outgoing_.end() && it->first.first == peer; ++it) {
      // Each wire write is a fresh fault sample (TcpTransport semantics):
      // a frame dropped here stays in outgoing_ for the retransmit tick.
      Bytes encoded = frame::encode_data(incarnation_, it->first.second,
                                         it->second.payload);
      if (config_.auth.enabled) append_mac(encoded, conn->keys.send);
      frames.push_back(
          {frame::frame_payload(encoded), sample_faults_locked()});
    }
  }
  for (const Offer& offer : frames) {
    queue_frame(conn, offer.framed, offer.copies, false);
  }
  if (!frames.empty()) flush_conn(conn);
}

void ReactorTransport::retransmit_tick() {
  if (closed_) return;
  struct Item {
    PartyId to;
    std::uint64_t seq;
    Bytes payload;
    int copies;
  };
  std::vector<Item> items;
  std::vector<PartyId> failed;
  bool alive;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    alive = alive_;
    for (auto it = outgoing_.begin(); it != outgoing_.end();) {
      auto& [key, out] = *it;
      if (out.attempts >= config_.max_retransmits) {
        B2B_WARN("reactor: giving up on ", self_, " -> ", key.first,
                 " seq ", key.second);
        failed.push_back(key.first);
        it = outgoing_.erase(it);
        continue;
      }
      ++out.attempts;
      ++stats_.retransmissions;
      // Encoding happens per resolved connection below: the MAC key is
      // a property of the conn, not of the queued message.
      items.push_back({key.first, key.second, out.payload,
                       alive ? sample_faults_locked() : 0});
      ++it;
    }
    if (!failed.empty()) ++dispatching_;  // one failure batch in flight
  }
  if (alive) {
    std::vector<ConnPtr> touched;
    for (auto& item : items) {
      auto it = active_.find(item.to);
      if (it == active_.end()) {
        dial(item.to);
        continue;  // flushed via post-handshake/-connect resend
      }
      if (it->second->connecting) continue;
      if (config_.auth.enabled && !it->second->keys.has_send) continue;
      Bytes encoded =
          frame::encode_data(incarnation_, item.seq, item.payload);
      if (config_.auth.enabled) append_mac(encoded, it->second->keys.send);
      queue_frame(it->second, frame::frame_payload(encoded), item.copies,
                  false);
      if (std::find(touched.begin(), touched.end(), it->second) ==
          touched.end()) {
        touched.push_back(it->second);
      }
    }
    for (auto& conn : touched) flush_conn(conn);
  }
  if (!failed.empty()) {
    // Off-loop like deliveries: the callback re-enters the coordinator.
    delivery_strand_->post([this, failed = std::move(failed)] {
      DeliveryFailureHandler handler;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        handler = failure_handler_;
      }
      if (handler) {
        for (const PartyId& to : failed) handler(to);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --dispatching_;
      }
      dispatch_cv_.notify_all();
    });
  }
  retransmit_timer_ = reactor_.schedule_after(
      config_.retransmit_interval_micros, [this] { retransmit_tick(); });
}

// ---------------------------------------------------------------------------
// ReactorRuntime
// ---------------------------------------------------------------------------

ReactorRuntime::ReactorRuntime(const Options& options)
    : options_(options),
      directory_(options.directory ? options.directory
                                   : std::make_shared<PeerDirectory>()),
      reactor_(options.reactor),
      pool_(std::make_shared<TaskPool>(options.workers)),
      clock_(reactor_, pool_),
      executor_([this] { return quiescent(); }, options.executor) {}

ReactorRuntime::~ReactorRuntime() { shutdown(); }

void ReactorRuntime::shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  // Transports first (their teardown runs on the still-live loop), then
  // the loop thread, then the pool — the reverse of the data flow, so
  // nothing delivers into a dead layer.
  for (auto& transport : transports_) transport->shutdown();
  reactor_.shutdown();
  pool_->shutdown();
}

Transport& ReactorRuntime::add_party(const PartyId& id) {
  std::string host = options_.default_host;
  std::uint16_t port = 0;
  if (auto address = directory_->lookup(id)) {
    host = address->host;
    port = address->port;
  }
  ReactorTransport::Config config = options_.transport;
  config.faults = options_.faults;
  config.fault_seed =
      options_.seed ^ (0x7265'6100ULL + std::hash<std::string>{}(id.str()));
  if (options_.wire_auth) config.auth = options_.wire_auth(id);
  transports_.push_back(std::make_unique<ReactorTransport>(
      id, host, port, directory_, config, reactor_, pool_));
  // Write the bound port back (resolves port 0) so later parties in the
  // same directory can dial this one.
  directory_->set(id, PeerAddress{host, transports_.back()->port()});
  return *transports_.back();
}

ReactorTransport* ReactorRuntime::transport(const PartyId& id) {
  for (auto& transport : transports_) {
    if (transport->self() == id) return transport.get();
  }
  return nullptr;
}

void ReactorRuntime::set_alive(const PartyId& id, bool alive) {
  ReactorTransport* found = transport(id);
  if (found == nullptr) {
    throw Error("reactor set_alive: unknown party " + id.str());
  }
  found->set_alive(alive);
}

TcpFabricStats ReactorRuntime::fabric_stats() const {
  TcpFabricStats total;
  for (const auto& transport : transports_) {
    TcpFabricStats one = transport->fabric_stats();
    total.frames_dropped_injected += one.frames_dropped_injected;
    total.frames_duplicated_injected += one.frames_duplicated_injected;
  }
  return total;
}

bool ReactorRuntime::quiescent() const {
  for (const auto& transport : transports_) {
    if (!transport->quiescent()) return false;
  }
  for (const auto& probe : quiescence_probes_) {
    if (!probe()) return false;
  }
  return true;
}

}  // namespace b2b::net
