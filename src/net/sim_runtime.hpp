// Deterministic-simulator implementation of the runtime seam.
//
// Thin adapters that present the existing discrete-event stack
// (ReliableEndpoint over SimNetwork, EventScheduler) through the abstract
// Transport/Clock/Executor interfaces of runtime.hpp. They add no state
// and reorder no events, so every seeded simulation behaves exactly as it
// did when the protocol layer was welded to the concrete classes.
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/reliable.hpp"
#include "net/runtime.hpp"
#include "net/scheduler.hpp"

namespace b2b::net {

/// Transport over an existing ReliableEndpoint (non-owning: deployment
/// harnesses keep the endpoint so tests can reach simulator-only knobs
/// like handler hijacking and raw stats).
class SimTransport final : public Transport {
 public:
  explicit SimTransport(ReliableEndpoint& endpoint) : endpoint_(endpoint) {}

  void send(const PartyId& to, Bytes payload) override {
    endpoint_.send(to, std::move(payload));
  }

  void set_handler(Handler handler) override {
    endpoint_.set_handler(std::move(handler));
  }

  void set_delivery_failure_handler(DeliveryFailureHandler handler) override {
    endpoint_.set_delivery_failure_handler(std::move(handler));
  }

  const PartyId& self() const override { return endpoint_.self(); }

  std::size_t unacked() const override { return endpoint_.unacked(); }

  Stats stats() const override {
    const ReliableEndpoint::Stats& s = endpoint_.stats();
    Stats out;
    out.app_sent = s.app_sent;
    out.app_delivered = s.app_delivered;
    out.retransmissions = s.retransmissions;
    out.duplicates_suppressed = s.duplicates_suppressed;
    out.acks_sent = s.acks_sent;
    out.bytes_sent = s.bytes_sent;
    out.bytes_received = s.bytes_received;
    // connects/reconnects/frames_dropped_crc stay 0: no connections.
    return out;
  }

  ReliableEndpoint& endpoint() { return endpoint_; }

 private:
  ReliableEndpoint& endpoint_;
};

/// Virtual-time clock over the discrete-event scheduler.
class SimClock final : public Clock {
 public:
  explicit SimClock(EventScheduler& scheduler) : scheduler_(scheduler) {}

  std::uint64_t now_micros() const override { return scheduler_.now(); }

  void schedule_after(std::uint64_t delay_micros,
                      std::function<void()> fn) override {
    scheduler_.after(delay_micros, std::move(fn));
  }

 private:
  EventScheduler& scheduler_;
};

/// Progress = pumping the event queue.
class SimExecutor final : public Executor {
 public:
  explicit SimExecutor(EventScheduler& scheduler) : scheduler_(scheduler) {}

  bool run_until(const std::function<bool()>& predicate) override {
    return scheduler_.run_until_condition(predicate);
  }

  void settle() override { scheduler_.run(); }

 private:
  EventScheduler& scheduler_;
};

/// The whole deterministic substrate as one bundle: scheduler, lossy
/// network, one ReliableEndpoint+SimTransport per party. Owning it here
/// keeps concrete-substrate construction out of the protocol layer;
/// simulator-only instruments stay reachable via scheduler()/network()/
/// endpoint().
class SimRuntime final : public Runtime {
 public:
  struct Options {
    std::uint64_t seed = 1;
    LinkFaults faults{};
    ReliableEndpoint::Config reliable{};
  };

  explicit SimRuntime(const Options& options)
      : seed_(options.seed),
        network_(scheduler_, options.seed),
        clock_(scheduler_),
        executor_(scheduler_),
        reliable_(options.reliable) {
    network_.set_default_faults(options.faults);
  }

  Transport& add_party(const PartyId& id) override {
    // Each endpoint draws retransmit jitter from its own seeded stream so
    // runs stay reproducible per (seed, party) regardless of join order.
    jitter_rngs_.push_back(std::make_unique<DeterministicRng>(
        seed_ ^ 0x6a69'7474'6572ULL ^ std::hash<std::string>{}(id.str())));
    endpoints_.push_back(std::make_unique<ReliableEndpoint>(
        network_, id, reliable_, jitter_rngs_.back().get()));
    transports_.push_back(std::make_unique<SimTransport>(*endpoints_.back()));
    return *transports_.back();
  }

  Clock& clock() override { return clock_; }
  Executor& executor() override { return executor_; }

  EventScheduler& scheduler() { return scheduler_; }
  SimNetwork& network() { return network_; }

  /// The raw endpoint under a party's transport (nullptr if unknown).
  ReliableEndpoint* endpoint(const PartyId& id) {
    for (auto& endpoint : endpoints_) {
      if (endpoint->self() == id) return endpoint.get();
    }
    return nullptr;
  }

 private:
  std::uint64_t seed_ = 1;
  EventScheduler scheduler_;
  SimNetwork network_;
  SimClock clock_;
  SimExecutor executor_;
  ReliableEndpoint::Config reliable_;
  std::vector<std::unique_ptr<DeterministicRng>> jitter_rngs_;
  std::vector<std::unique_ptr<ReliableEndpoint>> endpoints_;
  std::vector<std::unique_ptr<SimTransport>> transports_;
};

}  // namespace b2b::net
