#include "net/wire_auth.hpp"

#include <random>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "wire/codec.hpp"

namespace b2b::net {

namespace {

constexpr std::size_t kHalfLen = 32;

// Domain-separation salt for the wire-v3 KDF.
constexpr char kKdfSalt[] = "b2b/wire-v3";

/// Fresh CSPRNG seeded from OS entropy: ephemeral halves must be
/// unpredictable across processes and restarts, unlike the deterministic
/// protocol rngs.
crypto::ChaCha20Rng entropy_rng() {
  std::random_device rd;
  Bytes seed(32);
  for (std::size_t i = 0; i < seed.size(); i += 4) {
    std::uint32_t word = rd();
    for (std::size_t j = 0; j < 4 && i + j < seed.size(); ++j) {
      seed[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return crypto::ChaCha20Rng(BytesView{seed.data(), seed.size()});
}

}  // namespace

crypto::Digest derive_direction_key(BytesView half, const PartyId& from,
                                    const PartyId& to,
                                    std::uint64_t incarnation) {
  crypto::Digest prk = crypto::hkdf_extract(bytes_of(kKdfSalt), half);
  wire::Encoder info;
  info.str(from.str()).str(to.str()).u64(incarnation);
  Bytes okm = crypto::hkdf_expand(prk, info.bytes(), kHalfLen);
  crypto::Digest key;
  std::copy(okm.begin(), okm.end(), key.begin());
  return key;
}

Bytes build_hello(const WireAuth& auth, const PartyId& self,
                  const PartyId& to, std::uint64_t incarnation,
                  ConnKeys* keys) {
  if (!auth.enabled) {
    return frame::encode_hello(self, to, incarnation);
  }
  auto peer = auth.peer_key ? auth.peer_key(to) : nullptr;
  if (!peer || !auth.private_key) return {};
  crypto::ChaCha20Rng rng = entropy_rng();
  Bytes half = rng.bytes(kHalfLen);
  Bytes enc_half = peer->encrypt(half, rng);
  Bytes signing =
      frame::hello_signing_bytes(self, to, incarnation, enc_half);
  Bytes signature = auth.private_key->sign(signing);
  keys->send = derive_direction_key(half, self, to, incarnation);
  keys->has_send = true;
  return frame::encode_hello_auth(self, to, incarnation, enc_half,
                                  signature);
}

bool accept_hello(const WireAuth& auth, const PartyId& self,
                  const frame::Hello& hello, ConnKeys* keys) {
  if (!auth.enabled) {
    // An authenticated hello at an auth-off endpoint is a mode mismatch:
    // accepting it would let the peer believe the wire is protected.
    return hello.auth_flag == frame::kAuthNone;
  }
  if (hello.auth_flag != frame::kAuthHmac) return false;  // downgrade/strip
  if (!auth.private_key || !auth.peer_key) return false;
  const PartyId from{hello.from};
  auto peer = auth.peer_key(from);
  if (!peer) return false;
  Bytes signing = frame::hello_signing_bytes(from, PartyId{hello.to},
                                             hello.incarnation,
                                             hello.enc_half);
  if (!peer->verify(signing, hello.signature)) return false;
  auto half = auth.private_key->decrypt(hello.enc_half);
  if (!half || half->size() != kHalfLen) return false;
  keys->recv = derive_direction_key(*half, from, self, hello.incarnation);
  keys->has_recv = true;
  return true;
}

void append_mac(Bytes& payload, const crypto::Digest& key) {
  crypto::Digest tag = crypto::HmacSha256::mac(
      BytesView{key.data(), key.size()}, payload);
  payload.insert(payload.end(), tag.begin(), tag.end());
}

bool verify_strip_mac(BytesView payload, const crypto::Digest& key,
                      BytesView* body) {
  if (payload.size() < frame::kMacLen + 1) return false;
  BytesView inner = payload.first(payload.size() - frame::kMacLen);
  crypto::Digest expected =
      crypto::HmacSha256::mac(BytesView{key.data(), key.size()}, inner);
  if (!constant_time_equal(payload.last(frame::kMacLen),
                           BytesView{expected.data(), expected.size()})) {
    return false;
  }
  *body = inner;
  return true;
}

}  // namespace b2b::net
