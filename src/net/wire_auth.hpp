// Wire v3 session authentication (DESIGN.md §11).
//
// The socket runtimes share a PKI (every party holds every other party's
// RSA public key), but until wire v3 the only integrity on the byte
// stream was CRC32 — which an active intruder recomputes at will, so the
// strongest Dolev-Yao attacks (rewriting a live frame's seq/payload,
// forging acks, splicing frames across connections) were deliberately
// out of the §11 campaign's scope. This header closes that boundary:
//
//   * At each dial/accept the sender draws a fresh 32-byte ephemeral
//     half, ships it inside its hello encrypted under the peer's RSA key,
//     and RSA-signs every hello field (auth flag and ciphertext included,
//     frame::hello_signing_bytes) so a strip/downgrade is as detectable
//     as a forgery.
//   * Each direction of a connection is keyed by the *sender's own* half
//     — the dialer can MAC data the instant its hello is on the wire, and
//     the accepter derives the matching verify key while processing that
//     hello, which TCP ordering guarantees arrives first. Keys expand
//     through HKDF (crypto/hmac.hpp) with the flow's (from, to,
//     incarnation) as context, so no two connections — and no two
//     incarnations of the same peer — ever share a key: reconnects rekey.
//   * Every authenticated data/ack payload ends in an HMAC-SHA256 tag
//     over the rest of the payload, verified in CONSTANT TIME before any
//     other processing; a bad tag bumps `frames_rejected_auth` and kills
//     the connection.
//
// Both runtimes (tcp_runtime, reactor_runtime) consume exactly this API;
// the policy — reject on mode mismatch in either direction, fail closed
// on missing keys — lives here so the two stacks cannot drift.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "net/frame.hpp"

namespace b2b::net {

/// Per-transport session-auth configuration. When `enabled`, both the
/// private key and the peer-key lookup must be set; a lookup returning
/// nullptr fails the handshake closed (unknown parties don't talk).
struct WireAuth {
  bool enabled = false;
  std::shared_ptr<const crypto::RsaPrivateKey> private_key;
  std::function<std::shared_ptr<const crypto::RsaPublicKey>(const PartyId&)>
      peer_key;
};

/// Per-connection, per-direction MAC keys. A direction without a key yet
/// (accepter before its peer's hello arrives) simply has `has_* == false`;
/// the runtimes never send or accept authenticated traffic through an
/// unkeyed direction.
struct ConnKeys {
  crypto::Digest send = {};
  crypto::Digest recv = {};
  bool has_send = false;
  bool has_recv = false;
};

/// Derive the 32-byte MAC key for the `from` → `to` direction of one
/// connection incarnation from the sender's ephemeral half.
crypto::Digest derive_direction_key(BytesView half, const PartyId& from,
                                    const PartyId& to,
                                    std::uint64_t incarnation);

/// Build this side's hello for `self` → `to` at `incarnation`. With auth
/// disabled returns the plain v3 hello. With auth enabled draws a fresh
/// ephemeral half (OS entropy), encrypts it to the peer, signs, and sets
/// `keys->send`/`has_send`. Returns an empty buffer when auth is enabled
/// but the peer's key is unknown — the caller must treat the dial/accept
/// as failed rather than silently downgrade.
Bytes build_hello(const WireAuth& auth, const PartyId& self,
                  const PartyId& to, std::uint64_t incarnation,
                  ConnKeys* keys);

/// Vet a decoded hello against the local auth mode and, with auth on,
/// its signature and key transport. False means the hello is hostile
/// (downgrade/strip, bad signature, undecryptable half, unknown peer) and
/// the connection must die. On success with auth enabled sets
/// `keys->recv`/`has_recv`. Magic/version/direction checks remain the
/// caller's (they predate auth and feed the same rejection counter).
bool accept_hello(const WireAuth& auth, const PartyId& self,
                  const frame::Hello& hello, ConnKeys* keys);

/// Append the HMAC-SHA256 tag over `payload` in place.
void append_mac(Bytes& payload, const crypto::Digest& key);

/// Constant-time-verify the trailing tag of `payload`; on success `*body`
/// is the payload with the tag stripped. False on short input or mismatch.
bool verify_strip_mac(BytesView payload, const crypto::Digest& key,
                      BytesView* body);

}  // namespace b2b::net
