#include "net/tcp_runtime.hpp"

#include <chrono>
#include <random>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "net/frame.hpp"
#include "store/crc32.hpp"
#include "wire/codec.hpp"

namespace b2b::net {

namespace {

using frame::encode_ack;
using frame::encode_data;
using frame::get_u32_le;
using frame::kAck;
using frame::kData;
using frame::kHello;
using frame::kMagic;
using frame::kVersion;
constexpr std::size_t kFrameHeaderLen = frame::kHeaderLen;

std::uint64_t steady_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t random_incarnation() {
  std::random_device rd;
  std::uint64_t hi = rd();
  std::uint64_t lo = rd();
  std::uint64_t inc = (hi << 32) ^ lo;
  return inc == 0 ? 1 : inc;  // 0 is "no incarnation known"
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(PartyId self, const std::string& host,
                           std::uint16_t port,
                           std::shared_ptr<PeerDirectory> directory,
                           Config config)
    : self_(std::move(self)),
      directory_(std::move(directory)),
      config_(config),
      incarnation_(random_incarnation()),
      listener_(Listener::open(host, port)),
      fault_rng_(config.fault_seed) {
  acceptor_ = std::thread([this] { accept_loop(); });
  retransmitter_ = std::thread([this] { retransmit_loop(); });
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  listener_.stop();
  if (acceptor_.joinable()) acceptor_.join();
  if (retransmitter_.joinable()) retransmitter_.join();
  // The acceptor and retransmitter were the only threads that create
  // connections, so the tables are stable from here on.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) {
      conn->dead = true;
      conn->socket.shutdown_both();
    }
  }
  for (auto& thread : reader_threads_) {
    if (thread.joinable()) thread.join();
  }
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto& conn : conns_) conn->socket.close();
}

int TcpTransport::sample_faults_locked() {
  const TcpFaults& faults = config_.faults;
  if (faults.drop_probability > 0.0 &&
      fault_rng_.next_double() < faults.drop_probability) {
    ++fabric_stats_.frames_dropped_injected;
    return 0;
  }
  if (faults.duplicate_probability > 0.0 &&
      fault_rng_.next_double() < faults.duplicate_probability) {
    ++fabric_stats_.frames_duplicated_injected;
    return 2;
  }
  return 1;
}

void TcpTransport::send(const PartyId& to, Bytes payload) {
  Bytes frame;
  ConnPtr conn;
  int copies = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t seq = next_seq_[to]++;
    ++stats_.app_sent;
    if (alive_) {
      copies = sample_faults_locked();
      auto it = active_.find(to);
      if (it != active_.end() && !it->second->dead.load()) conn = it->second;
    }
    // Frames are encoded per connection (the MAC key is the conn's), so
    // a conn-less send just queues; the retransmit tick encodes later.
    if (conn) {
      if (config_.auth.enabled && !conn->keys.has_send) {
        conn = nullptr;  // not yet keyed; retransmission will cover it
      } else {
        frame = encode_data(incarnation_, seq, payload);
        if (config_.auth.enabled) append_mac(frame, conn->keys.send);
      }
    }
    outgoing_[{to, seq}] = Outgoing{std::move(payload), 1};
  }
  // No connection yet: the retransmit thread dials lazily on its next
  // tick, so send() never blocks a caller on a connect().
  if (!conn) return;
  for (int i = 0; i < copies; ++i) {
    if (!write_frame(conn, frame)) break;
  }
}

void TcpTransport::set_handler(Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handler_ = std::move(handler);
}

void TcpTransport::set_handler_sync(Handler handler) {
  std::unique_lock<std::mutex> lock(mutex_);
  handler_ = std::move(handler);
  // Any invocation of the *previous* handler raised dispatching_ under
  // this mutex before the swap; wait for those to drain.
  dispatch_cv_.wait(lock, [this] { return dispatching_ == 0; });
}

void TcpTransport::set_delivery_failure_handler(
    DeliveryFailureHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  failure_handler_ = std::move(handler);
}

std::size_t TcpTransport::unacked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outgoing_.size();
}

Transport::Stats TcpTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

TcpFabricStats TcpTransport::fabric_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fabric_stats_;
}

void TcpTransport::set_alive(bool alive) {
  std::lock_guard<std::mutex> lock(mutex_);
  alive_ = alive;
}

bool TcpTransport::quiescent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outgoing_.empty() && dispatching_ == 0;
}

bool TcpTransport::write_frame(const ConnPtr& conn, const Bytes& payload) {
  if (conn->dead.load()) return false;
  Bytes framed = frame::frame_payload(payload);
  bool ok;
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    ok = conn->socket.send_all(framed.data(), framed.size());
  }
  if (!ok) {
    kill_conn(conn);
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.bytes_sent += framed.size();
  return true;
}

void TcpTransport::kill_conn(const ConnPtr& conn) {
  conn->dead = true;
  // shutdown, not close: a reader blocked in recv() wakes with EOF, and
  // the fd stays valid for any writer racing us. close() happens once,
  // at transport shutdown.
  conn->socket.shutdown_both();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = active_.find(conn->peer);
  if (it != active_.end() && it->second == conn) active_.erase(it);
}

void TcpTransport::register_handshake(const ConnPtr& conn, PartyId peer,
                                      std::uint64_t peer_incarnation) {
  std::lock_guard<std::mutex> lock(mutex_);
  conn->peer = std::move(peer);
  conn->peer_incarnation = peer_incarnation;
  conn->handshaken = true;
  auto it = peer_incarnation_.find(conn->peer);
  if (it == peer_incarnation_.end() || it->second != peer_incarnation) {
    // A new incarnation means the peer's sequence numbers restarted:
    // drop the old dedup window. Duplicates *across* the restart are
    // the coordinator journal's responsibility (DESIGN.md §7).
    peer_incarnation_[conn->peer] = peer_incarnation;
    delivered_.erase(conn->peer);
  }
  // Latest handshake wins: an inbound connection from a restarted peer
  // (possibly at a new address) supersedes whatever we were using, so a
  // process that comes back only needs to know *our* address.
  active_[conn->peer] = conn;
  auto& backoff = backoff_[conn->peer];
  backoff.delay_micros = 0;
  backoff.not_before_micros = 0;
  ++stats_.connects;
  if (backoff.ever_connected) ++stats_.reconnects;
  backoff.ever_connected = true;
}

bool TcpTransport::handle_data(const ConnPtr& conn, std::uint64_t frame_inc,
                               std::uint64_t seq, Bytes payload) {
  Handler handler;
  bool deliver = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Crashed (set_alive(false)): drop un-acked, so the peer keeps
    // retransmitting into the downtime and delivery resumes on recovery.
    if (!alive_) return true;
    // A data frame whose incarnation is not the one this connection
    // handshook is proof of splicing — a peer never changes incarnation
    // mid-connection. Kill the connection before the alien sequence
    // number can poison the dedup window (wire v2, DESIGN.md §11); the
    // peer reconnects with a fresh handshake and retransmits.
    if (frame_inc != conn->peer_incarnation) {
      ++stats_.replays_suppressed;
      return false;
    }
    // Frames from a superseded incarnation of the peer: that process is
    // gone; acking or delivering against the fresh dedup window would
    // corrupt the once-only bookkeeping.
    auto it = peer_incarnation_.find(conn->peer);
    if (it == peer_incarnation_.end() ||
        it->second != conn->peer_incarnation) {
      ++stats_.replays_suppressed;
      return true;
    }
    ++stats_.acks_sent;
    if (delivered_[conn->peer].mark(seq)) {
      deliver = true;
      ++stats_.app_delivered;
      handler = handler_;
      if (handler) ++dispatching_;
    } else {
      ++stats_.duplicates_suppressed;
    }
  }
  Bytes ack = encode_ack(frame_inc, seq);
  if (config_.auth.enabled) append_mac(ack, conn->keys.send);
  write_frame(conn, ack);
  if (!deliver || !handler) return true;
  {
    // Serialise deliveries (Transport contract: at most one delivering
    // thread); the handler re-enters the transport and the coordinator,
    // so mutex_ must NOT be held here.
    std::lock_guard<std::mutex> deliver_lock(deliver_mutex_);
    handler(conn->peer, payload);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --dispatching_;
  }
  dispatch_cv_.notify_all();
  return true;
}

void TcpTransport::handle_ack(const PartyId& from, std::uint64_t frame_inc,
                              std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!alive_) return;
  // An ack retires outgoing_[seq] only if it echoes our *current*
  // incarnation: a recorded ack replayed across our restart (or spliced
  // from another stream) must not mark a live message delivered.
  if (frame_inc != incarnation_) {
    ++stats_.replays_suppressed;
    return;
  }
  outgoing_.erase({from, seq});
}

void TcpTransport::accept_loop() {
  for (;;) {
    Socket socket = listener_.accept();
    if (!socket.valid()) return;  // stop() or fatal accept error
    socket.set_nodelay();
    socket.set_recv_timeout(config_.handshake_timeout_micros);
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(socket);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(conn);
    reader_threads_.emplace_back(
        [this, conn] { reader_loop(conn); });
  }
}

void TcpTransport::reader_loop(ConnPtr conn) {
  bool handshaken = false;
  // Frames that fail pre-delivery vetting (hostile length, bad magic,
  // out-of-order or misdirected handshake, unknown type, malformed
  // encoding) reset the connection and are counted here.
  auto reject = [this] {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.frames_rejected_auth;
  };
  for (;;) {
    std::uint8_t header[kFrameHeaderLen];
    if (!conn->socket.recv_exact(header, sizeof header)) break;
    frame::Header hdr;
    if (!frame::decode_header(header, config_.max_frame_bytes, &hdr)) {
      B2B_WARN("tcp: rejecting hostile frame length (", hdr.len,
               " bytes) on ", self_);
      reject();
      break;
    }
    std::uint32_t len = hdr.len;
    Bytes payload(len);
    if (len > 0 && !conn->socket.recv_exact(payload.data(), len)) break;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.bytes_received += kFrameHeaderLen + len;
    }
    if (store::crc32(payload) != hdr.crc) {
      // The framing itself can no longer be trusted; drop the
      // connection and let retransmission recover over a fresh one.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.frames_dropped_crc;
      break;
    }
    try {
      // Wire v3: past the handshake every frame on an authenticated
      // connection ends in an HMAC tag verified (constant time) BEFORE
      // any parsing — a forged or rewritten frame dies right here.
      BytesView body{payload};
      if (handshaken && config_.auth.enabled) {
        if (!conn->keys.has_recv ||
            !verify_strip_mac(payload, conn->keys.recv, &body)) {
          B2B_WARN("tcp: bad frame MAC from ", conn->peer, " on ", self_);
          reject();
          break;
        }
      }
      wire::Decoder dec{body};
      std::uint8_t type = dec.u8();
      if (!handshaken) {
        if (type != kHello) {  // protocol: hello is always first
          reject();
          break;
        }
        frame::Hello hello = frame::decode_hello(dec);
        if (hello.magic != kMagic || hello.version != kVersion) {
          reject();
          break;
        }
        PartyId from{hello.from};
        if (PartyId{hello.to} != self_) {
          B2B_WARN("tcp: ", self_, " got a handshake meant for ", hello.to);
          reject();
          break;
        }
        // Auth vetting: mode mismatch (downgrade/strip), bad signature or
        // undecryptable key half all kill the connection before it can
        // carry a byte of data. On success the peer's half keys `recv`.
        if (!accept_hello(config_.auth, self_, hello, &conn->keys)) {
          B2B_WARN("tcp: rejecting unauthenticated/forged hello from ", from,
                   " on ", self_);
          reject();
          break;
        }
        bool reply = !conn->hello_sent;
        Bytes reply_hello;
        if (reply) {
          // Build (and key) the reply BEFORE register_handshake publishes
          // this conn as preferred: a send() racing us must find has_send.
          reply_hello = build_hello(config_.auth, self_, from, incarnation_,
                                    &conn->keys);
          if (reply_hello.empty()) {
            reject();  // auth on but no key for the peer: fail closed
            break;
          }
        }
        register_handshake(conn, from, hello.incarnation);
        conn->socket.set_recv_timeout(0);  // handshake phase over
        handshaken = true;
        if (reply) {
          conn->hello_sent = true;
          write_frame(conn, reply_hello);
        }
      } else if (type == kData) {
        std::uint64_t frame_inc = dec.u64();
        std::uint64_t seq = dec.u64();
        Bytes app_payload = dec.blob();
        dec.expect_done();
        if (!handle_data(conn, frame_inc, seq, std::move(app_payload))) break;
      } else if (type == kAck) {
        std::uint64_t frame_inc = dec.u64();
        std::uint64_t seq = dec.u64();
        dec.expect_done();
        handle_ack(conn->peer, frame_inc, seq);
      } else {
        reject();
        break;  // unknown frame type: corrupt or future peer
      }
    } catch (const CodecError&) {
      B2B_DEBUG("tcp: dropping connection with malformed frame on ", self_);
      reject();
      break;
    }
  }
  kill_conn(conn);
}

TcpTransport::ConnPtr TcpTransport::dial(const PartyId& to) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& backoff = backoff_[to];
    if (steady_micros() < backoff.not_before_micros) return nullptr;
  }
  auto bump_backoff = [this, &to] {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& backoff = backoff_[to];
    backoff.delay_micros =
        backoff.delay_micros == 0
            ? config_.reconnect_backoff_min_micros
            : std::min(backoff.delay_micros * 2,
                       config_.reconnect_backoff_max_micros);
    backoff.not_before_micros = steady_micros() + backoff.delay_micros;
  };
  auto address = directory_->lookup(to);
  if (!address || address->port == 0) {
    bump_backoff();
    return nullptr;
  }
  Socket socket =
      tcp_connect(address->host, address->port, config_.connect_timeout_micros);
  if (!socket.valid()) {
    bump_backoff();
    return nullptr;
  }
  socket.set_nodelay();
  auto conn = std::make_shared<Conn>();
  conn->socket = std::move(socket);
  conn->peer = to;
  conn->hello_sent = true;
  // Key the sending direction before the conn is visible anywhere: our
  // fresh ephemeral half rides in the hello, so data can be MAC'd and
  // sent the moment the hello is on the wire.
  Bytes hello = build_hello(config_.auth, self_, to, incarnation_,
                            &conn->keys);
  if (hello.empty()) {
    bump_backoff();  // auth on but no key for the peer: fail closed
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    {
      std::lock_guard<std::mutex> stop_lock(stop_mutex_);
      if (stopping_) return nullptr;
    }
    conns_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
  // Our hello goes first on the stream; data may follow immediately (the
  // peer processes frames in order, so it knows us before any payload).
  if (!write_frame(conn, hello)) {
    bump_backoff();
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Usable for sending right away; a handshaken connection registered in
  // the meantime keeps precedence.
  active_.try_emplace(to, conn);
  return conn;
}

void TcpTransport::retransmit_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      stop_cv_.wait_for(
          lock, std::chrono::microseconds(config_.retransmit_interval_micros),
          [this] { return stopping_; });
      if (stopping_) return;
    }
    struct Item {
      PartyId to;
      std::uint64_t seq;
      Bytes payload;
      int copies;
    };
    std::vector<Item> items;
    std::vector<PartyId> failed;
    DeliveryFailureHandler failure_handler;
    bool alive;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      alive = alive_;
      for (auto it = outgoing_.begin(); it != outgoing_.end();) {
        auto& [key, out] = *it;
        if (out.attempts >= config_.max_retransmits) {
          B2B_WARN("tcp: giving up on ", self_, " -> ", key.first, " seq ",
                   key.second);
          failed.push_back(key.first);
          it = outgoing_.erase(it);
          continue;
        }
        ++out.attempts;
        ++stats_.retransmissions;
        // Encoding happens per resolved connection below: the MAC key is
        // a property of the conn, not of the queued message.
        items.push_back({key.first, key.second, out.payload,
                         alive ? sample_faults_locked() : 0});
        ++it;
      }
      if (!failed.empty()) failure_handler = failure_handler_;
    }
    if (alive) {
      std::unordered_map<PartyId, ConnPtr> conns;
      for (auto& item : items) {
        auto [it, inserted] = conns.try_emplace(item.to, nullptr);
        if (inserted) {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            auto active = active_.find(item.to);
            if (active != active_.end()) {
              // A dead connection can be parked here: dial() registers the
              // conn *after* spawning its reader, so a reader that dies in
              // that window runs kill_conn before the entry exists and the
              // erase-if-same in kill_conn never fires. Left alone it wedges
              // retransmission forever (write_frame refuses dead conns and
              // this branch would never dial). Evict and redial instead.
              if (active->second->dead.load()) {
                active_.erase(active);
              } else {
                it->second = active->second;
              }
            }
          }
          if (!it->second) it->second = dial(item.to);
        }
        if (!it->second) continue;
        if (config_.auth.enabled && !it->second->keys.has_send) continue;
        Bytes framed = encode_data(incarnation_, item.seq, item.payload);
        if (config_.auth.enabled) append_mac(framed, it->second->keys.send);
        for (int i = 0; i < item.copies; ++i) {
          if (!write_frame(it->second, framed)) {
            it->second = nullptr;
            break;
          }
        }
      }
    }
    // Outside mutex_: the callback re-enters the coordinator, which may
    // call back into the transport (lock-order inversion otherwise).
    if (failure_handler) {
      for (const auto& to : failed) failure_handler(to);
    }
  }
}

// ---------------------------------------------------------------------------
// TcpRuntime
// ---------------------------------------------------------------------------

TcpRuntime::TcpRuntime(const Options& options)
    : options_(options),
      directory_(options.directory ? options.directory
                                   : std::make_shared<PeerDirectory>()),
      executor_([this] { return quiescent(); }, options.executor) {}

TcpRuntime::~TcpRuntime() { shutdown(); }

void TcpRuntime::shutdown() {
  // Stop barrier, as ThreadedRuntime: join the timer thread BEFORE any
  // transport shuts down, so an in-flight schedule_after callback cannot
  // race transport teardown.
  clock_.shutdown();
  for (auto& transport : transports_) transport->shutdown();
}

Transport& TcpRuntime::add_party(const PartyId& id) {
  std::string host = options_.default_host;
  std::uint16_t port = 0;
  if (auto address = directory_->lookup(id)) {
    host = address->host;
    port = address->port;
  }
  TcpTransport::Config config = options_.transport;
  config.faults = options_.faults;
  config.fault_seed =
      options_.seed ^ (0x7463'7000ULL + std::hash<std::string>{}(id.str()));
  if (options_.wire_auth) config.auth = options_.wire_auth(id);
  transports_.push_back(
      std::make_unique<TcpTransport>(id, host, port, directory_, config));
  // Write the bound port back (resolves port 0) so later parties in the
  // same directory can dial this one.
  directory_->set(id, PeerAddress{host, transports_.back()->port()});
  return *transports_.back();
}

TcpTransport* TcpRuntime::transport(const PartyId& id) {
  for (auto& transport : transports_) {
    if (transport->self() == id) return transport.get();
  }
  return nullptr;
}

void TcpRuntime::set_alive(const PartyId& id, bool alive) {
  TcpTransport* found = transport(id);
  if (found == nullptr) throw Error("tcp set_alive: unknown party " + id.str());
  found->set_alive(alive);
}

TcpFabricStats TcpRuntime::fabric_stats() const {
  TcpFabricStats total;
  for (const auto& transport : transports_) {
    TcpFabricStats one = transport->fabric_stats();
    total.frames_dropped_injected += one.frames_dropped_injected;
    total.frames_duplicated_injected += one.frames_duplicated_injected;
  }
  return total;
}

bool TcpRuntime::quiescent() const {
  for (const auto& transport : transports_) {
    if (!transport->quiescent()) return false;
  }
  for (const auto& probe : quiescence_probes_) {
    if (!probe()) return false;
  }
  return true;
}

}  // namespace b2b::net
