#include "net/peer_directory.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace b2b::net {

PeerDirectory::PeerDirectory(const PeerDirectory& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  entries_ = other.entries_;
}

PeerDirectory& PeerDirectory::operator=(const PeerDirectory& other) {
  if (this != &other) {
    std::map<PartyId, PeerAddress> copy;
    {
      std::lock_guard<std::mutex> lock(other.mutex_);
      copy = other.entries_;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    entries_ = std::move(copy);
  }
  return *this;
}

void PeerDirectory::set(const PartyId& party, PeerAddress address) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[party] = std::move(address);
}

std::optional<PeerAddress> PeerDirectory::lookup(const PartyId& party) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(party);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<PartyId, PeerAddress>> PeerDirectory::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

std::size_t PeerDirectory::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

PeerDirectory PeerDirectory::parse(const std::string& text) {
  PeerDirectory directory;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string party, address;
    if (!(fields >> party)) continue;  // blank / comment-only line
    std::string where = "peer directory line " + std::to_string(line_no);
    if (!(fields >> address)) throw Error(where + ": missing host:port");
    std::string extra;
    if (fields >> extra) throw Error(where + ": trailing garbage");
    // Split at the LAST colon so numeric hosts stay intact.
    auto colon = address.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == address.size()) {
      throw Error(where + ": expected host:port, got '" + address + "'");
    }
    unsigned long port = 0;
    try {
      port = std::stoul(address.substr(colon + 1));
    } catch (const std::exception&) {
      throw Error(where + ": bad port in '" + address + "'");
    }
    if (port > 65535) throw Error(where + ": port out of range");
    directory.set(PartyId{party},
                  PeerAddress{address.substr(0, colon),
                              static_cast<std::uint16_t>(port)});
  }
  return directory;
}

PeerDirectory PeerDirectory::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("peer directory: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

std::string PeerDirectory::to_string() const {
  std::ostringstream out;
  for (const auto& [party, address] : entries()) {
    out << party.str() << " " << address.host << ":" << address.port << "\n";
  }
  return out.str();
}

}  // namespace b2b::net
