#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"

namespace b2b::net {

namespace {

/// Resolve host:port to a sockaddr (IPv4; numeric or named hosts).
bool resolve(const std::string& host, std::uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof *out);
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &result) != 0 ||
      result == nullptr) {
    return false;
  }
  out->sin_addr = reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return true;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool Socket::send_all(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer reset surfaces as EPIPE, not a process signal.
    ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

long Socket::recv_some(void* buf, std::size_t len) {
  for (;;) {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

bool Socket::recv_exact(void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    long n = recv_some(p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::set_nodelay() {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Socket::set_nonblocking(bool nonblocking) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return;
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  ::fcntl(fd_, F_SETFL, flags);
}

void Socket::set_recv_timeout(std::uint64_t micros) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(micros / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(micros % 1'000'000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

void Socket::set_linger_reset() {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
}

Socket tcp_listen(const std::string& host, std::uint16_t port,
                  std::uint16_t* bound_port) {
  sockaddr_in addr{};
  if (!resolve(host, port, &addr)) {
    throw Error("listener: cannot resolve " + host);
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw Error("listener: socket() failed");
  // Restarted processes rebind their old port without waiting out
  // TIME_WAIT (the crash/recover path depends on this).
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw Error("listener: cannot bind " + host + ":" +
                std::to_string(port) + " (" + std::strerror(errno) + ")");
  }
  // SOMAXCONN: a gateway node can see hundreds of near-simultaneous
  // dials at startup; a short backlog turns those into connect timeouts.
  if (::listen(sock.fd(), SOMAXCONN) != 0) {
    throw Error("listener: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    throw Error("listener: getsockname() failed");
  }
  if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
  return sock;
}

Listener Listener::open(const std::string& host, std::uint16_t port) {
  Listener listener;
  listener.listen_ = tcp_listen(host, port, &listener.port_);
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw Error("listener: pipe() failed");
  listener.wake_read_ = Socket(pipe_fds[0]);
  listener.wake_write_ = Socket(pipe_fds[1]);
  return listener;
}

Socket Listener::accept() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_.fd(), POLLIN, 0};
    fds[1] = {wake_read_.fd(), POLLIN, 0};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Socket{};
    }
    if (fds[1].revents != 0) return Socket{};  // stop() was called
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_.fd(), nullptr, nullptr);
    if (fd < 0) {
      // ECONNABORTED and friends are transient; keep accepting.
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: shed this connection instead of killing
        // the acceptor. The peer's retransmit layer redials; back off
        // briefly so a sustained fd famine does not spin this thread.
        std::fprintf(stderr,
                     "[b2b.net] accept: out of file descriptors (%s); "
                     "dropping connection attempt\n",
                     std::strerror(errno));
        ::poll(nullptr, 0, 50);
        continue;
      }
      return Socket{};
    }
    return Socket(fd);
  }
}

void Listener::stop() {
  if (wake_write_.valid()) {
    char byte = 0;
    [[maybe_unused]] ssize_t n = ::write(wake_write_.fd(), &byte, 1);
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port,
                   std::uint64_t timeout_micros) {
  sockaddr_in addr{};
  if (!resolve(host, port, &addr)) return Socket{};
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Socket{};

  int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr);
  if (rc != 0) {
    if (errno != EINPROGRESS) return Socket{};
    pollfd pfd{sock.fd(), POLLOUT, 0};
    int timeout_ms = static_cast<int>(timeout_micros / 1000);
    if (::poll(&pfd, 1, timeout_ms) <= 0) return Socket{};
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      return Socket{};
    }
  }
  ::fcntl(sock.fd(), F_SETFL, flags);  // back to blocking
  return sock;
}

Socket tcp_connect_start(const std::string& host, std::uint16_t port,
                         bool* in_progress) {
  if (in_progress != nullptr) *in_progress = false;
  sockaddr_in addr{};
  if (!resolve(host, port, &addr)) return Socket{};
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!sock.valid()) return Socket{};
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno != EINPROGRESS) return Socket{};
    if (in_progress != nullptr) *in_progress = true;
  }
  return sock;
}

}  // namespace b2b::net
