#include "net/reliable.hpp"

#include <functional>
#include <string>

#include "common/logging.hpp"
#include "crypto/sha256.hpp"
#include "wire/codec.hpp"

namespace b2b::net {

namespace {

constexpr std::uint8_t kData = 0;
constexpr std::uint8_t kAck = 1;

// DATA frames carry an 8-byte integrity check over (seq, payload). A
// Dolev-Yao intruder tampering with a datagram in flight is thereby
// reduced to message loss: the frame is dropped *without acknowledgement*
// and retransmission delivers the original. (Without this, a tampered
// frame would be ACKed and its genuine content lost forever, turning a
// single tampering event into a permanent protocol block.)
constexpr std::size_t kChecksumLen = 8;

Bytes frame_checksum(std::uint64_t seq, BytesView payload) {
  wire::Encoder enc;
  enc.u64(seq).blob(payload);
  crypto::Digest digest = crypto::Sha256::hash(enc.bytes());
  return Bytes(digest.begin(), digest.begin() + kChecksumLen);
}

}  // namespace

ReliableEndpoint::ReliableEndpoint(SimNetwork& network, PartyId self,
                                   Config config, Rng* rng)
    : network_(network), self_(std::move(self)), config_(config) {
  if (rng == nullptr) {
    owned_rng_ = std::make_unique<DeterministicRng>(
        0x6a69'7474'6572ULL ^ std::hash<std::string>{}(self_.str()));
    rng_ = owned_rng_.get();
  } else {
    rng_ = rng;
  }
  network_.attach(self_, [this](const PartyId& from, const Bytes& datagram) {
    on_datagram(from, datagram);
  });
}

SimTime ReliableEndpoint::backoff_delay(const Config& config,
                                        std::size_t attempt) {
  double delay = static_cast<double>(config.retransmit_interval_micros);
  const double cap = static_cast<double>(config.retransmit_cap_micros);
  for (std::size_t i = 1; i < attempt && delay < cap; ++i) {
    delay *= config.retransmit_backoff;
  }
  if (delay > cap) delay = cap;
  if (delay < 1.0) delay = 1.0;
  return static_cast<SimTime>(delay);
}

SimTime ReliableEndpoint::jittered_delay(std::size_t attempt) {
  SimTime base = backoff_delay(config_, attempt);
  if (config_.retransmit_jitter <= 0.0) return base;
  // Uniform in [1-j, 1+j): 53-bit mantissa from the Rng seam.
  double u = static_cast<double>(rng_->next_u64() >> 11) *
             (1.0 / 9007199254740992.0);
  double factor = 1.0 + config_.retransmit_jitter * (2.0 * u - 1.0);
  double jittered = static_cast<double>(base) * factor;
  return jittered < 1.0 ? 1 : static_cast<SimTime>(jittered);
}

void ReliableEndpoint::send(const PartyId& to, Bytes payload) {
  std::uint64_t seq = next_seq_[to]++;
  outgoing_[{to, seq}] = Outgoing{std::move(payload), false};
  ++stats_.app_sent;
  transmit(to, seq);
  schedule_retransmit(to, seq, 1);
}

std::size_t ReliableEndpoint::unacked() const {
  std::size_t count = 0;
  for (const auto& [key, out] : outgoing_) {
    if (!out.acked) ++count;
  }
  return count;
}

void ReliableEndpoint::transmit(const PartyId& to, std::uint64_t seq) {
  auto it = outgoing_.find({to, seq});
  if (it == outgoing_.end() || it->second.acked) return;
  wire::Encoder enc;
  enc.u8(kData).u64(seq).blob(it->second.payload);
  enc.raw(frame_checksum(seq, it->second.payload));
  Bytes datagram = std::move(enc).take();
  stats_.bytes_sent += datagram.size();
  network_.send(self_, to, std::move(datagram));
}

void ReliableEndpoint::schedule_retransmit(const PartyId& to,
                                           std::uint64_t seq,
                                           std::size_t attempt) {
  if (attempt > config_.max_retransmits) {
    B2B_WARN("reliable: giving up on ", self_, " -> ", to, " seq ", seq);
    if (failure_handler_) failure_handler_(to);
    return;
  }
  network_.scheduler().after(
      jittered_delay(attempt), [this, to, seq, attempt] {
        auto it = outgoing_.find({to, seq});
        if (it == outgoing_.end() || it->second.acked) return;
        ++stats_.retransmissions;
        transmit(to, seq);
        schedule_retransmit(to, seq, attempt + 1);
      });
}

void ReliableEndpoint::on_datagram(const PartyId& from, const Bytes& datagram) {
  stats_.bytes_received += datagram.size();
  wire::Decoder dec{datagram};
  std::uint8_t type;
  std::uint64_t seq;
  Bytes payload;
  try {
    type = dec.u8();
    seq = dec.u64();
    if (type == kData) {
      payload = dec.blob();
      Bytes checksum = dec.raw(kChecksumLen);
      if (checksum != frame_checksum(seq, payload)) {
        // Tampered in flight: treat as loss (no ACK -> retransmission).
        B2B_DEBUG("reliable: dropping tampered datagram from ", from);
        return;
      }
    }
    dec.expect_done();
  } catch (const CodecError&) {
    // A corrupted datagram (e.g. intruder tampering with the transport
    // header) is indistinguishable from loss; retransmission recovers.
    B2B_DEBUG("reliable: dropping malformed datagram from ", from);
    return;
  }

  if (type == kAck) {
    auto it = outgoing_.find({from, seq});
    if (it != outgoing_.end()) {
      it->second.acked = true;
      it->second.payload.clear();
    }
    return;
  }

  // DATA: always acknowledge, deliver only the first copy.
  wire::Encoder ack;
  ack.u8(kAck).u64(seq);
  ++stats_.acks_sent;
  Bytes ack_datagram = std::move(ack).take();
  stats_.bytes_sent += ack_datagram.size();
  network_.send(self_, from, std::move(ack_datagram));

  if (!delivered_[from].mark(seq)) {
    ++stats_.duplicates_suppressed;
    return;
  }
  ++stats_.app_delivered;
  if (handler_) handler_(from, payload);
}

}  // namespace b2b::net
