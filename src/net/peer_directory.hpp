// PeerDirectory: party -> host:port, the out-of-band address registry a
// TCP federation shares.
//
// The paper's organisations learn each other's endpoints as part of the
// initial business agreement; here that is a config file (one
// `party host:port` per line) or programmatic set() calls. Port 0 means
// "ephemeral": TcpRuntime::add_party binds such a party to a kernel-
// chosen port and writes the actual one back, so a single shared
// directory instance lets later parties dial earlier ones in tests.
// Thread-safe: transports look addresses up from their worker threads
// while a harness is still registering parties.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace b2b::net {

struct PeerAddress {
  std::string host;
  std::uint16_t port = 0;
};

class PeerDirectory {
 public:
  PeerDirectory() = default;
  PeerDirectory(const PeerDirectory& other);
  PeerDirectory& operator=(const PeerDirectory& other);

  void set(const PartyId& party, PeerAddress address);
  std::optional<PeerAddress> lookup(const PartyId& party) const;

  /// All entries, in party-name order (the order also used for key
  /// assignment by b2bnode).
  std::vector<std::pair<PartyId, PeerAddress>> entries() const;
  std::size_t size() const;

  /// Parse `party host:port` lines; '#' starts a comment, blank lines
  /// are skipped. Throws b2b::Error on malformed input.
  static PeerDirectory parse(const std::string& text);

  /// Load from a config file. Throws b2b::Error if unreadable/malformed.
  static PeerDirectory load_file(const std::string& path);

  /// Render back to the config-file format.
  std::string to_string() const;

 private:
  mutable std::mutex mutex_;
  std::map<PartyId, PeerAddress> entries_;
};

}  // namespace b2b::net
