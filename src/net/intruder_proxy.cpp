#include "net/intruder_proxy.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "store/crc32.hpp"
#include "wire/codec.hpp"

namespace b2b::net {

namespace {

/// Human-readable label for a frame, refining data frames by the b2b
/// message type byte they carry (Envelope::encode puts it first; the
/// values mirror b2b::core::MsgType — kept as a local table so the net
/// layer does not depend on the protocol layer).
std::string frame_label(const FrameInfo& info) {
  if (info.frame_type == frame::kHello) return "hello";
  if (info.frame_type == frame::kAck) return "ack";
  if (info.frame_type != frame::kData) return "unknown";
  switch (info.msg_type) {
    case 1: return "data:propose";
    case 2: return "data:respond";
    case 3: return "data:decide";
    case 10: return "data:connect-req";
    case 11: return "data:m-propose";
    case 12: return "data:m-respond";
    case 13: return "data:m-decide";
    case 14: return "data:welcome";
    case 15: return "data:connect-reject";
    case 16: return "data:disconnect-req";
    case 17: return "data:disconnect-confirm";
    case 20: return "data:ttp-request";
    case 21: return "data:ttp-verdict";
    default: return "data:" + std::to_string(int{info.msg_type});
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// MutationSchedule
// ---------------------------------------------------------------------------

IntruderAction MutationSchedule::next_action(const FrameInfo& info) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string label = frame_label(info);
  const std::string dir = info.to_victim ? info.client + ">" + info.victim
                                         : info.victim + ">" + info.client;
  std::string& prev = prev_label_[dir];
  const std::string transition =
      (prev.empty() ? std::string("start") : prev) + ">" + label;
  prev = label;
  std::uint64_t& count = transitions_[transition];
  ++count;
  if (actions_ >= config_.max_actions) return IntruderAction::kForward;
  // Coverage guidance: spend the budget on transitions we have barely
  // seen; the steady state only gets the baseline rate.
  const double p =
      count <= 2 ? config_.novel_boost : config_.action_probability;
  if (rng_.next_double() >= p) return IntruderAction::kForward;
  ++actions_;
  static constexpr IntruderAction kArsenal[] = {
      IntruderAction::kDrop,    IntruderAction::kDelay,
      IntruderAction::kDuplicate, IntruderAction::kReorder,
      IntruderAction::kReplay,  IntruderAction::kTruncate,
      IntruderAction::kMutate,
      // The wire v3 tail: only drawn when auth_arsenal is set.
      IntruderAction::kRewrite, IntruderAction::kForgeAck,
      IntruderAction::kDowngrade, IntruderAction::kSplice,
  };
  const std::size_t pool = config_.auth_arsenal ? std::size(kArsenal) : 7;
  return kArsenal[rng_.next_below(pool)];
}

std::vector<std::string> MutationSchedule::transitions_covered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(transitions_.size());
  for (const auto& [transition, count] : transitions_) {
    out.push_back(transition);
  }
  return out;
}

std::size_t MutationSchedule::actions_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return actions_;
}

std::uint64_t MutationSchedule::next_below(std::uint64_t bound) {
  std::lock_guard<std::mutex> lock(mutex_);
  return rng_.next_below(bound);
}

// ---------------------------------------------------------------------------
// IntruderProxy
// ---------------------------------------------------------------------------

IntruderProxy::IntruderProxy(std::shared_ptr<PeerDirectory> directory,
                             Config config)
    : directory_(std::move(directory)),
      config_(std::move(config)),
      schedule_(config_.schedule),
      active_(config_.active) {
  if (!directory_) throw Error("intruder: a peer directory is required");
}

IntruderProxy::~IntruderProxy() { shutdown(); }

void IntruderProxy::interpose(const PartyId& victim) {
  auto real = directory_->lookup(victim);
  if (!real || real->port == 0) {
    throw Error("intruder: no bound address for " + victim.str() +
                " (interpose after the transport binds)");
  }
  auto tap = std::make_unique<Tap>();
  tap->victim = victim;
  tap->real = *real;
  tap->listener = Listener::open("127.0.0.1", 0);
  directory_->set(victim, PeerAddress{"127.0.0.1", tap->listener.port()});
  Tap* raw = tap.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw Error("intruder: interpose after shutdown");
    ++stats_.parties_interposed;
    taps_.push_back(std::move(tap));
  }
  raw->acceptor = std::thread([this, raw] { accept_loop(*raw); });
}

void IntruderProxy::set_active(bool active) { active_.store(active); }

IntruderStats IntruderProxy::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void IntruderProxy::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  for (auto& tap : taps_) tap->listener.stop();
  for (auto& tap : taps_) {
    if (tap->acceptor.joinable()) tap->acceptor.join();
  }
  std::vector<PairPtr> pairs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pairs = pairs_;
  }
  for (auto& pair : pairs) {
    pair->dead = true;
    pair->client_sock.shutdown_both();
    pair->victim_sock.shutdown_both();
  }
  for (auto& pair : pairs) {
    if (pair->c2v.joinable()) pair->c2v.join();
    if (pair->v2c.joinable()) pair->v2c.join();
  }
  // Point the victims' entries back at their real addresses so a
  // harness outliving the proxy keeps a working directory.
  for (auto& tap : taps_) directory_->set(tap->victim, tap->real);
}

void IntruderProxy::accept_loop(Tap& tap) {
  for (;;) {
    Socket client = tap.listener.accept();
    if (!client.valid()) return;  // stop()
    Socket victim =
        tcp_connect(tap.real.host, tap.real.port, config_.dial_timeout_micros);
    if (!victim.valid()) continue;  // victim down: client sees EOF
    client.set_nodelay();
    victim.set_nodelay();
    auto pair = std::make_shared<Pair>();
    pair->victim = tap.victim;
    pair->client_sock = std::move(client);
    pair->victim_sock = std::move(victim);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      ++stats_.connections_intercepted;
      pairs_.push_back(pair);
    }
    pair->c2v = std::thread([this, pair] { relay(pair, true); });
    pair->v2c = std::thread([this, pair] { relay(pair, false); });
  }
}

void IntruderProxy::kill_pair(const PairPtr& pair) {
  pair->dead = true;
  // shutdown, not close: the peer relay thread may be blocked in recv();
  // close() runs once, when the Pair is destroyed after both joins.
  pair->client_sock.shutdown_both();
  pair->victim_sock.shutdown_both();
}

void IntruderProxy::record(const std::string& flow, Bytes framed,
                           std::uint64_t inc) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& arsenal = recorded_[flow];
  if (arsenal.size() >= config_.max_recorded_per_flow) {
    arsenal.erase(arsenal.begin());
  }
  arsenal.push_back(Recorded{std::move(framed), inc});
}

IntruderAction IntruderProxy::decide(const FrameInfo& info) {
  if (!active_.load()) return IntruderAction::kForward;
  if (config_.script) {
    if (auto forced = config_.script(info)) return *forced;
  }
  return schedule_.next_action(info);
}

bool IntruderProxy::write_framed(Socket& out, const Bytes& framed,
                                 std::optional<Bytes>& held) {
  if (!out.send_all(framed.data(), framed.size())) return false;
  if (held) {
    // A reordered frame leaves right behind the frame that overtook it.
    Bytes h = std::move(*held);
    held.reset();
    if (!out.send_all(h.data(), h.size())) return false;
  }
  return true;
}

Bytes IntruderProxy::mutated_field_payload(const Bytes& payload) {
  try {
    wire::Decoder dec{payload};
    const std::uint8_t type = dec.u8();
    wire::Encoder enc;
    Bytes tail;  // bytes after the rewritten fields, preserved verbatim
    if (type == frame::kHello) {
      std::uint32_t magic = dec.u32();
      std::uint16_t version = dec.u16();
      const std::string from = dec.str();
      const std::string to = dec.str();
      std::uint64_t inc = dec.u64();
      tail = dec.raw(dec.remaining());  // v3 auth flag (+ key/signature)
      switch (schedule_.next_below(3)) {
        case 0: magic ^= 0x5A5A; break;       // rejected at the handshake
        case 1: version ^= 1; break;          // rejected at the handshake
        default:                              // wrong incarnation adopted:
          inc ^= 1ull << schedule_.next_below(64);  // later frames kill conn
          if (inc == 0) inc = 1;
          break;
      }
      enc.u8(type).u32(magic).u16(version).str(from).str(to).u64(inc);
    } else if (type == frame::kData) {
      std::uint64_t inc = dec.u64();
      const std::uint64_t seq = dec.u64();
      const Bytes app = dec.blob();
      tail = dec.raw(dec.remaining());  // session MAC, left stale
      // Only the incarnation: kMutate stays legal against a MAC-less
      // wire. Live seq/payload rewrites are kRewrite — the wire v3
      // arsenal that an authenticated transport must catch by MAC.
      inc ^= 1ull << schedule_.next_below(64);
      if (inc == 0) inc = 1;
      enc.u8(type).u64(inc).u64(seq).blob(app);
    } else if (type == frame::kAck) {
      std::uint64_t inc = dec.u64();
      std::uint64_t seq = dec.u64();
      tail = dec.raw(dec.remaining());  // session MAC, left stale
      if (schedule_.next_below(2) == 0) {
        inc ^= 1ull << schedule_.next_below(64);  // ignored by the receiver
        if (inc == 0) inc = 1;
      } else {
        seq |= 1ull << 63;  // acks a sequence number that can never exist
      }
      enc.u8(type).u64(inc).u64(seq);
    } else {
      return payload;
    }
    // On an authenticated wire the preserved-but-now-stale MAC (or the
    // re-signed-nothing hello tail) is exactly what gives the rewrite
    // away; on a MAC-less wire the frame stays structurally valid.
    Bytes out = std::move(enc).take();
    out.insert(out.end(), tail.begin(), tail.end());
    return out;
  } catch (const CodecError&) {
    return payload;
  }
}

bool IntruderProxy::apply(const PairPtr& pair, bool to_victim, Socket& out,
                          const FrameInfo& info, const Bytes& payload,
                          std::optional<Bytes>& held) {
  const IntruderAction action = decide(info);
  const Bytes framed = frame::frame_payload(payload);
  std::string flow = info.to_victim ? info.client + ">" + info.victim
                                    : info.victim + ">" + info.client;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.frames_seen;
  }
  record(flow, framed, info.incarnation);
  switch (action) {
    case IntruderAction::kForward: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.forwarded;
      }
      return write_framed(out, framed, held);
    }
    case IntruderAction::kDrop: {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.dropped;
      return true;
    }
    case IntruderAction::kDelay: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.delayed;
      }
      const std::uint64_t millis =
          1 + schedule_.next_below(schedule_.max_delay_millis());
      std::this_thread::sleep_for(std::chrono::milliseconds(millis));
      return write_framed(out, framed, held);
    }
    case IntruderAction::kDuplicate: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.duplicated;
      }
      if (!write_framed(out, framed, held)) return false;
      return out.send_all(framed.data(), framed.size());
    }
    case IntruderAction::kReorder: {
      // Hellos must stay first on the stream; holding one would wedge
      // the handshake with nothing behind it to trade places with.
      if (info.frame_type == frame::kHello || held) {
        return write_framed(out, framed, held);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.reordered;
      }
      held = framed;
      return true;
    }
    case IntruderAction::kReplay: {
      if (!write_framed(out, framed, held)) return false;
      Bytes recorded;
      bool cross = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = recorded_.find(flow);
        if (it != recorded_.end() && !it->second.empty()) {
          std::uint64_t leg_inc;
          {
            std::lock_guard<std::mutex> name_lock(pair->name_mutex);
            leg_inc = pair->leg_incarnation[to_victim ? 0 : 1];
          }
          // Prefer ammunition from another incarnation of the sender —
          // the nastiest splice available — and cycle the full arsenal
          // otherwise. A cursor (not a random draw) guarantees a long
          // campaign re-injects every recorded frame at least once; the
          // arsenal grows alongside it, so a plain modulo over the whole
          // vector would pin to the newest (harmless) frames forever.
          std::vector<const Recorded*> cross_picks;
          for (const Recorded& r : it->second) {
            if (r.incarnation != 0 && leg_inc != 0 &&
                r.incarnation != leg_inc) {
              cross_picks.push_back(&r);
            }
          }
          const Recorded& pick =
              cross_picks.empty()
                  ? it->second[replay_cursor_++ % it->second.size()]
                  : *cross_picks[replay_cursor_++ % cross_picks.size()];
          recorded = pick.framed;
          cross = pick.incarnation != 0 && leg_inc != 0 &&
                  pick.incarnation != leg_inc;
          ++stats_.replayed;
          if (cross) ++stats_.replayed_cross_incarnation;
        }
      }
      if (recorded.empty()) return true;
      return out.send_all(recorded.data(), recorded.size());
    }
    case IntruderAction::kTruncate: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.truncated;
      }
      const std::size_t cut = 1 + schedule_.next_below(framed.size() - 1);
      out.send_all(framed.data(), cut);  // best effort: the pair dies next
      return false;
    }
    case IntruderAction::kMutate: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.mutated;
      }
      Bytes attack;
      const std::uint64_t variant = schedule_.next_below(4);
      switch (variant) {
        case 0: {  // hostile length prefix: must be rejected, not malloc'd
          attack = framed;
          frame::put_u32_le(attack.data(), 0xFFFF'FFFFu);
          break;
        }
        case 1: {  // CRC flipped: checksum layer must reset the stream
          attack = framed;
          attack[4 + schedule_.next_below(4)] ^=
              static_cast<std::uint8_t>(1u << schedule_.next_below(8));
          break;
        }
        case 2: {  // off-by-one length: desyncs framing, CRC catches it
          attack = framed;
          frame::put_u32_le(attack.data(),
                            static_cast<std::uint32_t>(payload.size()) + 1);
          break;
        }
        default: {  // unsigned field rewritten, CRC recomputed
          attack = frame::frame_payload(mutated_field_payload(payload));
          break;
        }
      }
      if (!out.send_all(attack.data(), attack.size())) return false;
      // Variants 0-2 leave the stream unparseable past this frame; the
      // receiver resets, we fold the pair, and retransmission recovers
      // over a fresh connection. The recomputed-CRC variant (3) passes
      // the checksum layer, so the stream — and the attack — carry on.
      return variant == 3;
    }
    case IntruderAction::kRewrite: {
      // The wire v3 headline attack: rewrite a live data frame's seq or
      // payload, recompute the CRC (so the checksum layer waves it
      // through), leave the session MAC stale. Only the MAC can catch it.
      if (info.frame_type != frame::kData || payload.size() < 2) {
        return write_framed(out, framed, held);
      }
      Bytes attack = payload;
      // Flip a bit in the authenticated region (type byte excluded, the
      // trailing MAC — when the wire carries one — excluded).
      const std::size_t end = attack.size() > frame::kMacLen + 1
                                  ? attack.size() - frame::kMacLen
                                  : attack.size();
      const std::size_t at = 1 + schedule_.next_below(end - 1);
      attack[at] ^= static_cast<std::uint8_t>(1u << schedule_.next_below(8));
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.rewritten;
      }
      const Bytes attack_framed = frame::frame_payload(attack);
      return write_framed(out, attack_framed, held);
    }
    case IntruderAction::kForgeAck: {
      // Fabricate an ack for the destination's live incarnation without
      // the session key: on an authenticated wire the garbage MAC must
      // kill it before it can retire an in-flight message.
      if (!write_framed(out, framed, held)) return false;
      std::uint64_t dest_inc;
      {
        std::lock_guard<std::mutex> name_lock(pair->name_mutex);
        dest_inc = pair->leg_incarnation[to_victim ? 1 : 0];
      }
      Bytes forged = frame::encode_ack(
          dest_inc, info.frame_type == frame::kData ? info.seq
                                                    : schedule_.next_below(8));
      for (std::size_t i = 0; i < frame::kMacLen; ++i) {
        forged.push_back(static_cast<std::uint8_t>(schedule_.next_below(256)));
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.acks_forged;
      }
      const Bytes forged_framed = frame::frame_payload(forged);
      return out.send_all(forged_framed.data(), forged_framed.size());
    }
    case IntruderAction::kDowngrade: {
      // Strip the auth fields from a hello and force the flag to
      // kAuthNone: an auth-required endpoint must refuse the handshake
      // rather than fall back to a MAC-less connection.
      if (info.frame_type != frame::kHello) {
        return write_framed(out, framed, held);
      }
      Bytes stripped;
      try {
        wire::Decoder dec{payload};
        dec.u8();  // kHello
        const frame::Hello hello = frame::decode_hello(dec);
        if (hello.auth_flag == frame::kAuthNone) {
          return write_framed(out, framed, held);  // nothing to strip
        }
        stripped = frame::encode_hello(PartyId{hello.from}, PartyId{hello.to},
                                       hello.incarnation);
      } catch (const CodecError&) {
        return write_framed(out, framed, held);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.downgraded;
      }
      const Bytes stripped_framed = frame::frame_payload(stripped);
      return write_framed(out, stripped_framed, held);
    }
    case IntruderAction::kSplice: {
      // Inject a frame recorded on a *different* flow: internally
      // consistent bytes, wrong connection. Only a per-connection key
      // (or, pre-v3, the embedded incarnation) can tell it apart.
      if (!write_framed(out, framed, held)) return false;
      Bytes foreign;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<const Recorded*> picks;
        for (const auto& [other_flow, arsenal] : recorded_) {
          if (other_flow == flow) continue;
          for (const Recorded& r : arsenal) picks.push_back(&r);
        }
        if (!picks.empty()) {
          foreign = picks[replay_cursor_++ % picks.size()]->framed;
          ++stats_.spliced;
        }
      }
      if (foreign.empty()) return true;
      return out.send_all(foreign.data(), foreign.size());
    }
  }
  return true;
}

void IntruderProxy::relay(const PairPtr& pair, bool to_victim) {
  Socket& in = to_victim ? pair->client_sock : pair->victim_sock;
  Socket& out = to_victim ? pair->victim_sock : pair->client_sock;
  Bytes rbuf;
  std::size_t head = 0;
  std::optional<Bytes> held;  // kReorder slot
  std::uint8_t chunk[64 * 1024];
  bool alive = true;
  while (alive) {
    const long n = in.recv_some(chunk, sizeof chunk);
    if (n <= 0) break;
    rbuf.insert(rbuf.end(), chunk, chunk + n);
    for (;;) {
      if (rbuf.size() - head < frame::kHeaderLen) break;
      frame::Header hdr;
      if (!frame::decode_header(rbuf.data() + head, config_.max_frame_bytes,
                                &hdr)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.hostile_lengths_rejected;
        alive = false;
        break;
      }
      if (rbuf.size() - head < frame::kHeaderLen + hdr.len) break;
      Bytes payload(rbuf.begin() + static_cast<std::ptrdiff_t>(
                                       head + frame::kHeaderLen),
                    rbuf.begin() + static_cast<std::ptrdiff_t>(
                                       head + frame::kHeaderLen + hdr.len));
      head += frame::kHeaderLen + hdr.len;
      if (head == rbuf.size()) {
        rbuf.clear();
        head = 0;
      } else if (head > 65536) {
        rbuf.erase(rbuf.begin(), rbuf.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }

      FrameInfo info;
      info.victim = pair->victim.str();
      info.to_victim = to_victim;
      try {
        wire::Decoder dec{payload};
        info.frame_type = dec.u8();
        if (info.frame_type == frame::kData) {
          info.incarnation = dec.u64();
          info.seq = dec.u64();
          const Bytes app = dec.blob();
          if (!app.empty()) info.msg_type = app[0];
        } else if (info.frame_type == frame::kAck) {
          info.incarnation = dec.u64();
          info.seq = dec.u64();
        } else if (info.frame_type == frame::kHello) {
          dec.u32();  // magic
          dec.u16();  // version
          const std::string from = dec.str();
          dec.str();  // to
          info.incarnation = dec.u64();
          std::lock_guard<std::mutex> lock(pair->name_mutex);
          if (to_victim) pair->client_name = from;
          pair->leg_incarnation[to_victim ? 0 : 1] = info.incarnation;
        }
      } catch (const CodecError&) {
        info.frame_type = 0xFF;
      }
      {
        std::lock_guard<std::mutex> lock(pair->name_mutex);
        info.client = pair->client_name;
      }
      if (!apply(pair, to_victim, out, info, payload, held)) {
        alive = false;
        break;
      }
    }
  }
  if (held) out.send_all(held->data(), held->size());  // best effort
  kill_pair(pair);
}

}  // namespace b2b::net
