// Event-loop substrate for the reactor runtime: a bounded executor
// pool, FIFO strands over it, and an epoll Reactor with a hierarchical
// timer wheel.
//
// The thread model inverts the earlier runtimes'. TcpRuntime spends
// two threads per party plus one per connection, and ThreadedRuntime
// adds a lane thread per shard; here the process runs ONE loop thread
// (all socket I/O, all timers) plus a small fixed pool of workers that
// execute everything that may block or take real CPU — handler
// deliveries, shard-lane dispatch, Clock::schedule callbacks. Nothing
// on the loop thread blocks, so fan-in scales with descriptors instead
// of threads (the C10K shape; see DESIGN.md §10).
//
// Strand is the ordering primitive that lets many logical queues share
// the pool: tasks posted to one strand run FIFO and never concurrently,
// while different strands interleave freely across workers. Per-object
// shard lanes and per-transport delivery queues are strands.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/timer_wheel.hpp"

namespace b2b::net {

/// Fixed-size worker pool with an unbounded FIFO queue. The *thread*
/// count is the bounded resource — queue depth is observable via
/// queue_peak() so benches can show backlog instead of thread growth.
class TaskPool {
 public:
  explicit TaskPool(std::size_t workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueue a task. Silently dropped after shutdown().
  void post(std::function<void()> task);

  /// Discard queued tasks, let in-flight tasks finish, join workers
  /// (idempotent; the destructor calls it).
  void shutdown();

  /// True when the queue is empty and no worker is mid-task.
  bool idle() const;

  std::size_t workers() const { return workers_count_; }

  /// High-water mark of queued (not yet running) tasks.
  std::uint64_t queue_peak() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;
  std::uint64_t queue_peak_ = 0;
  bool stopping_ = false;
  std::size_t workers_count_;
  std::vector<std::thread> threads_;
};

/// A FIFO execution lane multiplexed onto a TaskPool: tasks posted to
/// one strand run in order, never concurrently. stop() discards queued
/// tasks and waits for the in-flight one — the same drop-on-crash
/// semantics as a dedicated lane thread. The queue state is held in a
/// shared_ptr so a drain task already scheduled on the pool stays valid
/// even if the Strand (and whatever owns it) is destroyed first.
class Strand {
 public:
  explicit Strand(std::shared_ptr<TaskPool> pool);
  ~Strand();

  Strand(const Strand&) = delete;
  Strand& operator=(const Strand&) = delete;

  /// Enqueue; dropped after stop().
  void post(std::function<void()> task);

  /// True when nothing is queued or running on this strand.
  bool idle() const;

  /// Block until idle (or stopped).
  void wait_idle() const;

  /// Discard queued tasks, wait for any in-flight task, refuse new ones
  /// (idempotent; the destructor calls it).
  void stop();

 private:
  struct Inner {
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool scheduled = false;  // a drain task is queued on the pool
    bool running = false;    // a task is executing right now
    bool stopping = false;
  };
  /// Run queued tasks in order; yields the worker back to the pool
  /// every few tasks so one busy strand cannot starve the others.
  static void drain(const std::shared_ptr<Inner>& inner,
                    const std::shared_ptr<TaskPool>& pool);

  std::shared_ptr<TaskPool> pool_;
  std::shared_ptr<Inner> inner_;
};

/// One epoll loop thread owning socket readiness, a timer wheel, and a
/// run-on-loop task queue. Everything that touches fd registrations or
/// connection state runs ON the loop (via post()); schedule/cancel and
/// post are thread-safe and wake the loop through an eventfd.
class Reactor {
 public:
  struct Config {
    TimerWheel::Config wheel{};
    int max_events = 256;
  };

  struct Stats {
    std::uint64_t epoll_wakeups = 0;
    std::uint64_t timers_fired = 0;
  };

  /// Registered-fd token. The handler runs on the loop thread with the
  /// ready event mask; after remove_fd it is never invoked again.
  struct FdHandler {
    int fd = -1;
    std::function<void(std::uint32_t events)> on_events;
    bool dead = false;
  };
  using FdHandlerPtr = std::shared_ptr<FdHandler>;

  Reactor() : Reactor(Config{}) {}
  explicit Reactor(Config config);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Loop-thread only. Registers `fd` for `events` (EPOLL* mask).
  FdHandlerPtr add_fd(int fd, std::uint32_t events,
                      std::function<void(std::uint32_t)> on_events);
  /// Loop-thread only. Change the armed event mask.
  void update_fd(const FdHandlerPtr& handle, std::uint32_t events);
  /// Loop-thread only. Unregister; the fd itself stays open.
  void remove_fd(const FdHandlerPtr& handle);

  /// Run `fn` on the loop thread (FIFO). Thread-safe. Returns false
  /// (task dropped) once the reactor has shut down.
  bool post(std::function<void()> fn);

  /// Arm a wheel timer; `fn` runs on the loop thread. Thread-safe.
  /// Returns kInvalidTimer after shutdown.
  TimerWheel::TimerId schedule_at(std::uint64_t due_micros,
                                  std::function<void()> fn);
  TimerWheel::TimerId schedule_after(std::uint64_t delay_micros,
                                     std::function<void()> fn);
  /// Thread-safe; false if already fired/cancelled.
  bool cancel(TimerWheel::TimerId id);

  /// Microseconds since this reactor was created (steady clock).
  std::uint64_t now_micros() const;

  bool on_loop_thread() const;

  Stats stats() const;

  /// Stop and join the loop thread; pending posts and timers are
  /// discarded (idempotent; the destructor calls it).
  void shutdown();

 private:
  void loop();
  void wake();
  void drain_wakeup_fd();

  Config config_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;  // wheel_, posted_, stopping_, stats
  TimerWheel wheel_;
  std::deque<std::function<void()>> posted_;
  bool stopping_ = false;
  Stats stats_;

  // Loop-thread only.
  std::vector<FdHandlerPtr> registered_;
  std::vector<FdHandlerPtr> graveyard_;

  std::thread loop_thread_;
};

}  // namespace b2b::net
