// Runtime seam: the abstract substrate the protocol core runs on.
//
// The paper's protocols (state coordination §4.3, connection/disconnection
// §4.5, TTP termination §7) are defined purely over message content plus
// the §4.2 assumption of eventual, once-only delivery — nothing in their
// correctness argument depends on *how* messages move or what drives the
// clock. This header captures exactly that contract as four small
// interfaces, so the protocol layer (b2b/, baseline/) compiles against an
// abstract runtime:
//
//  * Transport — eventual once-only unicast between named parties, plus a
//    quiescence probe (unacked) used by deployment harnesses.
//  * Clock     — monotonic microseconds and one-shot timers (evidence
//    time-stamps, §7 termination deadlines).
//  * Rng       — the randomness source for authenticators and nonces.
//  * Executor  — "make progress until P holds": how a caller blocks on a
//    coordination run without knowing whether progress means pumping a
//    discrete-event queue or merely waiting for worker threads.
//
// Two implementations exist: sim_runtime.hpp adapts the deterministic
// discrete-event stack (ReliableEndpoint / EventScheduler), preserving
// seeded reproducibility bit-for-bit; threaded_runtime.hpp runs each party
// on real OS threads over an in-process lossy channel with the same
// delivery semantics.
//
// Thread-safety contract: Transport::send and Clock::schedule_after may be
// called from any thread; a Transport delivers to its handler from at most
// one thread at a time but that thread is implementation-defined, so
// handler state needs its own synchronisation (Coordinator serialises with
// an internal mutex). Sim implementations are single-threaded and add no
// locking.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/chacha20.hpp"

namespace b2b::net {

/// Eventual once-only delivery between named parties (§4.2's assumed
/// communications infrastructure, whatever masks it underneath).
class Transport {
 public:
  using Handler =
      std::function<void(const PartyId& from, const Bytes& payload)>;

  /// Delivery/retransmission counters, comparable across implementations.
  struct Stats {
    std::uint64_t app_sent = 0;
    std::uint64_t app_delivered = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t duplicates_suppressed = 0;
    std::uint64_t acks_sent = 0;
    /// Wire-level totals (frame bytes incl. transport headers), so
    /// E-series benches can compare wire overhead across transports.
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    /// Connection-oriented counters; always 0 on datagram-style
    /// transports (sim, threaded), which have no connections to lose.
    std::uint64_t connects = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t frames_dropped_crc = 0;
    /// Adversarial-pressure counters (DESIGN.md §11 wire threat model);
    /// always 0 on sim/threaded. `frames_rejected_auth` counts frames
    /// that failed pre-delivery vetting — hostile length prefixes,
    /// bad magic/version, misdirected or out-of-order handshakes,
    /// unknown types, malformed encodings. `replays_suppressed` counts
    /// data/ack frames whose incarnation proves them replayed or
    /// spliced from another transport lifetime (distinct from
    /// `duplicates_suppressed`, the same-incarnation dedup window).
    std::uint64_t frames_rejected_auth = 0;
    std::uint64_t replays_suppressed = 0;
    /// Event-loop scheduling counters (reactor runtime); always 0 on
    /// sim/threaded/tcp, which have no loop, wheel, or shared pool.
    /// Reported per bundle (every transport of one reactor sees the
    /// same loop), so benches read them from any single transport.
    std::uint64_t epoll_wakeups = 0;
    std::uint64_t timers_fired = 0;
    std::uint64_t executor_queue_peak = 0;
  };

  virtual ~Transport() = default;

  /// Queue `payload` for eventual once-only delivery to `to`.
  virtual void send(const PartyId& to, Bytes payload) = 0;

  /// Sink for application payloads (each delivered exactly once).
  /// Replaces any previous handler.
  virtual void set_handler(Handler handler) = 0;

  /// Replace the handler and do not return while an invocation of the
  /// *previous* handler is still in flight on a transport thread. Needed
  /// before tearing down the handler's target (crash injection /
  /// recovery); equivalent to set_handler on single-threaded transports.
  virtual void set_handler_sync(Handler handler) {
    set_handler(std::move(handler));
  }

  /// Sink invoked when the transport permanently gives up delivering a
  /// message to a peer (retransmission budget exhausted) — the signal a
  /// coordinator uses to mark the peer suspect instead of blocking a run
  /// forever. Like Handler, it may be invoked from an implementation-
  /// defined thread. Default: failures stay silent (seed behaviour).
  using DeliveryFailureHandler = std::function<void(const PartyId& to)>;
  virtual void set_delivery_failure_handler(DeliveryFailureHandler handler) {
    (void)handler;
  }

  /// The party this transport speaks for.
  virtual const PartyId& self() const = 0;

  /// Messages queued but not yet acknowledged (any destination) — the
  /// quiescence probe deployment harnesses poll to detect settling.
  virtual std::size_t unacked() const = 0;

  virtual Stats stats() const = 0;
};

/// Time as the protocol layer sees it: monotonic microseconds (virtual in
/// the simulator, real otherwise) and one-shot timers.
class Clock {
 public:
  virtual ~Clock() = default;

  virtual std::uint64_t now_micros() const = 0;

  /// Run `fn` once, `delay_micros` from now. `fn` may be invoked from an
  /// implementation-defined thread; it must synchronise its own state.
  virtual void schedule_after(std::uint64_t delay_micros,
                              std::function<void()> fn) = 0;
};

/// Randomness seam for authenticators and nonces. Deterministic (seeded)
/// in simulation; any CSPRNG in deployment.
class Rng {
 public:
  virtual ~Rng() = default;

  virtual void fill(std::uint8_t* out, std::size_t len) = 0;

  Bytes bytes(std::size_t len) {
    Bytes out(len);
    if (len != 0) fill(out.data(), len);
    return out;
  }

  std::uint64_t next_u64() {
    std::uint8_t buf[8];
    fill(buf, sizeof buf);
    std::uint64_t v = 0;
    for (std::uint8_t b : buf) v = (v << 8) | b;
    return v;
  }
};

/// Seeded deterministic Rng (ChaCha20 keystream) — the default for both
/// runtimes; protocol randomness stays reproducible even over threads
/// because each coordinator draws from its own stream under its own lock.
class DeterministicRng final : public Rng {
 public:
  explicit DeterministicRng(std::uint64_t seed) : rng_(seed) {}
  explicit DeterministicRng(BytesView seed) : rng_(seed) {}

  void fill(std::uint8_t* out, std::size_t len) override {
    rng_.fill(out, len);
  }

 private:
  crypto::ChaCha20Rng rng_;
};

/// Drives (or awaits) protocol progress. The simulator implementation
/// pumps the event queue; the threaded implementation just waits while
/// worker threads do the work.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Make progress until `predicate()` holds. Returns false if the
  /// progress budget (event budget / real-time timeout) was exhausted or
  /// no further progress is possible while the predicate is still false.
  virtual bool run_until(const std::function<bool()>& predicate) = 0;

  /// Make progress until the deployment is quiescent (no pending events /
  /// all transports drained and idle).
  virtual void settle() = 0;
};

/// A bundled runtime: one clock, one executor, and a transport factory.
/// Deployment harnesses (Federation) assemble parties against this, so
/// the protocol layer never constructs a concrete substrate itself. The
/// bundle owns every transport it hands out; destroying it stops all
/// runtime threads, so harnesses must destroy the bundle *before* the
/// message handlers its transports deliver into.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Create (and own) the transport for one more party.
  virtual Transport& add_party(const PartyId& id) = 0;

  virtual Clock& clock() = 0;
  virtual Executor& executor() = 0;
};

}  // namespace b2b::net
