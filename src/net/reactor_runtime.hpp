// Event-driven (epoll) implementation of the runtime seam: the fourth
// Runtime, wire-compatible with TcpRuntime but C10K-shaped.
//
// TcpRuntime spends one acceptor + one retransmit thread per party and
// one reader thread per connection, so a gateway node fronting N
// counterpart organisations runs O(N) threads. ReactorRuntime hosts
// every local party on ONE epoll loop: all sockets are non-blocking,
// partial frames are reassembled in per-connection stream buffers, and
// the per-party retransmit threads collapse into per-transport timers
// on a hierarchical timer wheel (timer_wheel.hpp) that also backs the
// Clock::schedule seam. Handler deliveries — which block on RSA and the
// journal — run on a small fixed TaskPool, serialised per transport by
// a Strand, so the loop thread never blocks. Thread count is therefore
// flat: 1 loop + K workers, independent of parties, objects and
// connections (DESIGN.md §10).
//
// The wire protocol (frame.hpp) and the §4.2 reliability stack — ack/
// retransmit for *eventual* delivery, DedupWindow + incarnation
// handshake for *once-only* delivery — are exactly TcpRuntime's, so a
// reactor process interoperates with thread-per-peer processes and the
// protocol layer cannot tell the runtimes apart.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/chacha20.hpp"
#include "net/dedup.hpp"
#include "net/peer_directory.hpp"
#include "net/reactor.hpp"
#include "net/runtime.hpp"
#include "net/socket.hpp"
#include "net/tcp_runtime.hpp"      // TcpFaults, TcpFabricStats
#include "net/threaded_runtime.hpp"  // ThreadedExecutor

namespace b2b::net {

/// Eventual once-only delivery over non-blocking TCP on a shared epoll
/// loop. All connection state lives on the loop thread (no lock);
/// protocol bookkeeping (outgoing queue, dedup windows, stats) is under
/// one mutex so send()/stats()/quiescent() stay thread-safe.
class ReactorTransport final : public Transport {
 public:
  struct Config {
    /// Retransmission cadence for un-acked messages; also how often
    /// missing connections are redialled. One wheel timer per
    /// transport, not one thread per party.
    std::uint64_t retransmit_interval_micros = 20'000;
    /// Give-up bound so a dead peer cannot pin quiescence forever.
    std::size_t max_retransmits = 10'000;
    /// Reconnect backoff: first retry after the min, doubling up to the cap.
    std::uint64_t reconnect_backoff_min_micros = 20'000;
    std::uint64_t reconnect_backoff_max_micros = 1'000'000;
    /// Bound on one non-blocking connect attempt.
    std::uint64_t connect_timeout_micros = 2'000'000;
    /// An accepted connection that never sends its hello is dropped.
    std::uint64_t handshake_timeout_micros = 5'000'000;
    /// Frames larger than this are treated as stream corruption.
    std::size_t max_frame_bytes = 16u << 20;
    /// Write-side backpressure: once a connection's send buffer holds
    /// this much, further DATA frames are not buffered — the
    /// retransmit timer re-offers them once the buffer drains on
    /// EPOLLOUT. Acks and handshakes always queue.
    std::size_t max_send_buffer_bytes = 4u << 20;
    /// Seed for the injected-fault generator.
    std::uint64_t fault_seed = 1;
    TcpFaults faults{};
    /// Wire v3 session authentication (wire_auth.hpp): per-connection
    /// HMAC keys negotiated at the hello, every data/ack frame MAC'd.
    WireAuth auth{};
  };

  /// Binds host:port (port 0 = ephemeral, see port()) and registers
  /// with `reactor`'s loop. `reactor` and `pool` must outlive this
  /// transport (ReactorRuntime guarantees it).
  ReactorTransport(PartyId self, const std::string& host, std::uint16_t port,
                   std::shared_ptr<PeerDirectory> directory, Config config,
                   Reactor& reactor, std::shared_ptr<TaskPool> pool);
  ~ReactorTransport() override;

  ReactorTransport(const ReactorTransport&) = delete;
  ReactorTransport& operator=(const ReactorTransport&) = delete;

  // Transport interface — all entry points are thread-safe.
  void send(const PartyId& to, Bytes payload) override;
  void set_handler(Handler handler) override;
  void set_handler_sync(Handler handler) override;
  void set_delivery_failure_handler(DeliveryFailureHandler handler) override;
  const PartyId& self() const override { return self_; }
  std::size_t unacked() const override;
  Stats stats() const override;

  /// The port actually bound (resolves port 0).
  std::uint16_t port() const { return port_; }

  /// This transport instance's incarnation (fresh random per instance).
  std::uint64_t incarnation() const { return incarnation_; }

  /// Crash-model switch with TcpTransport semantics: while dead,
  /// outgoing writes are suppressed (but stay queued) and incoming
  /// frames are dropped un-acked.
  void set_alive(bool alive);

  /// Nothing un-acked and no delivery in flight or queued.
  bool quiescent() const;

  TcpFabricStats fabric_stats() const;

  /// Close the listener and every connection and stop the delivery
  /// strand (idempotent; the destructor calls it). Runs the teardown on
  /// the loop thread while the reactor is live, directly otherwise.
  void shutdown();

 private:
  /// One non-blocking connection (either direction), loop-thread only.
  struct StreamBuf {
    Bytes buf;
    std::size_t head = 0;
    std::size_t size() const { return buf.size() - head; }
    const std::uint8_t* data() const { return buf.data() + head; }
    bool empty() const { return size() == 0; }
    void append(const std::uint8_t* p, std::size_t n) {
      if (head > 4096 && head >= buf.size() - head) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
      buf.insert(buf.end(), p, p + n);
    }
    void consume(std::size_t n) {
      head += n;
      if (head == buf.size()) {
        buf.clear();
        head = 0;
      }
    }
  };
  struct Conn {
    Socket socket;
    PartyId peer;                        // known at dial / after handshake
    std::uint64_t peer_incarnation = 0;  // valid once handshaken
    bool handshaken = false;
    bool hello_sent = false;
    bool connecting = false;  // non-blocking connect still completing
    bool dead = false;
    /// Per-direction MAC keys (wire v3); loop-thread only like the rest.
    ConnKeys keys;
    StreamBuf rbuf;
    StreamBuf wbuf;
    Reactor::FdHandlerPtr handle;
    TimerWheel::TimerId deadline_timer = TimerWheel::kInvalidTimer;
  };
  using ConnPtr = std::shared_ptr<Conn>;
  struct Backoff {
    std::uint64_t delay_micros = 0;
    std::uint64_t not_before_micros = 0;
    bool ever_connected = false;
  };

  // Loop-thread methods.
  void start_on_loop();
  void teardown_on_loop();
  void on_listener_events(std::uint32_t events);
  void on_conn_events(const ConnPtr& conn, std::uint32_t events);
  void adopt_conn(const ConnPtr& conn, bool inbound);
  void finish_connect(const ConnPtr& conn);
  void read_conn(const ConnPtr& conn);
  bool parse_frames(const ConnPtr& conn);
  /// Append a framed payload `copies` times. DATA frames respect the
  /// send-buffer cap (`force == false`); acks/hellos always queue.
  void queue_frame(const ConnPtr& conn, const Bytes& framed, int copies,
                   bool force);
  void flush_conn(const ConnPtr& conn);
  void kill_conn(const ConnPtr& conn);
  void dial(const PartyId& to);
  void bump_backoff(const PartyId& to);
  void register_handshake(const ConnPtr& conn, PartyId peer,
                          std::uint64_t peer_incarnation);
  /// Returns false when the frame's incarnation proves it was spliced
  /// into this connection (caller must reset the connection).
  bool handle_data(const ConnPtr& conn, std::uint64_t frame_inc,
                   std::uint64_t seq, Bytes payload);
  void handle_ack(const PartyId& from, std::uint64_t frame_inc,
                  std::uint64_t seq);
  void retransmit_tick();
  /// Re-offer everything queued for `peer` on a freshly usable
  /// connection (initial transmission of frames that predate it).
  void flush_outgoing_to(const PartyId& peer, const ConnPtr& conn);

  /// 0 = drop, 1 = normal, 2 = duplicate. Caller holds mutex_.
  int sample_faults_locked();

  PartyId self_;
  std::shared_ptr<PeerDirectory> directory_;
  Config config_;
  std::uint64_t incarnation_;
  Reactor& reactor_;
  std::shared_ptr<TaskPool> pool_;
  // port_ precedes listen_socket_: tcp_listen writes the bound port
  // through &port_ during listen_socket_'s initialisation, so port_'s
  // own zero-init must run first.
  std::uint16_t port_ = 0;
  Socket listen_socket_;

  mutable std::mutex mutex_;  // protocol state below
  Handler handler_;
  DeliveryFailureHandler failure_handler_;
  Stats stats_;
  TcpFabricStats fabric_stats_;
  crypto::ChaCha20Rng fault_rng_;
  bool alive_ = true;
  bool shutdown_called_ = false;
  struct Outgoing {
    Bytes payload;
    std::size_t attempts = 1;
  };
  std::unordered_map<PartyId, std::uint64_t> next_seq_;
  std::map<std::pair<PartyId, std::uint64_t>, Outgoing> outgoing_;
  std::unordered_map<PartyId, DedupWindow> delivered_;
  std::unordered_map<PartyId, std::uint64_t> peer_incarnation_;
  std::size_t dispatching_ = 0;  // deliveries/failure callbacks in flight
  std::condition_variable dispatch_cv_;

  /// Serialises handler invocations on the pool (Transport contract:
  /// at most one delivering thread at a time).
  std::unique_ptr<Strand> delivery_strand_;

  // Loop-thread only.
  bool closed_ = false;
  Reactor::FdHandlerPtr listener_handle_;
  TimerWheel::TimerId retransmit_timer_ = TimerWheel::kInvalidTimer;
  /// EMFILE accept-pause re-arm timer; tracked so teardown can cancel
  /// it (an uncancelled timer would fire into a freed transport).
  TimerWheel::TimerId accept_pause_timer_ = TimerWheel::kInvalidTimer;
  std::vector<ConnPtr> conns_;
  std::unordered_map<PartyId, ConnPtr> active_;
  std::unordered_map<PartyId, Backoff> backoff_;
};

/// Clock over the reactor's wheel: no timer thread. Callbacks fire on
/// the loop and are immediately handed to the pool, so protocol timer
/// work (run probes, §7 deadlines) never blocks socket I/O.
class ReactorClock final : public Clock {
 public:
  ReactorClock(Reactor& reactor, std::shared_ptr<TaskPool> pool)
      : reactor_(reactor), pool_(std::move(pool)) {}

  std::uint64_t now_micros() const override { return reactor_.now_micros(); }

  void schedule_after(std::uint64_t delay_micros,
                      std::function<void()> fn) override {
    reactor_.schedule_after(delay_micros,
                            [pool = pool_, fn = std::move(fn)] {
                              pool->post(fn);
                            });
  }

 private:
  Reactor& reactor_;
  std::shared_ptr<TaskPool> pool_;
};

/// The epoll substrate as one bundle: a shared peer directory, one
/// Reactor (loop + wheel), one bounded TaskPool, a wheel-backed clock,
/// one ReactorTransport per local party, and an executor whose
/// quiescence probe covers the local transports. The pool is exposed so
/// the Coordinator can run its shard lanes on it as strands (thread
/// count stays flat in the number of objects too).
class ReactorRuntime final : public Runtime {
 public:
  struct Options {
    /// Shared address registry; created (empty) when null.
    std::shared_ptr<PeerDirectory> directory;
    std::string default_host = "127.0.0.1";
    /// Per-party fault seed base (patterns repeatable per seed+party).
    std::uint64_t seed = 1;
    TcpFaults faults{};
    ReactorTransport::Config transport{};
    ThreadedExecutor::Config executor{};
    Reactor::Config reactor{};
    /// Bounded pool width: deliveries, lane dispatch and clock
    /// callbacks all share these workers.
    std::size_t workers = 4;
    /// Session-auth hook: called once per add_party to produce that
    /// party's WireAuth (its private key + the shared peer-key lookup).
    /// Null = wire auth off for every party in the bundle.
    std::function<WireAuth(const PartyId&)> wire_auth;
  };

  explicit ReactorRuntime(const Options& options);
  ~ReactorRuntime() override;

  /// Stop everything: transports (on the live loop), then the loop
  /// thread, then the pool workers. Idempotent; the destructor calls it.
  void shutdown();

  ReactorRuntime(const ReactorRuntime&) = delete;
  ReactorRuntime& operator=(const ReactorRuntime&) = delete;

  Transport& add_party(const PartyId& id) override;
  Clock& clock() override { return clock_; }
  Executor& executor() override { return executor_; }

  PeerDirectory& directory() { return *directory_; }
  std::shared_ptr<PeerDirectory> directory_ptr() { return directory_; }

  /// The local transport for `id` (nullptr if unknown to this bundle).
  ReactorTransport* transport(const PartyId& id);

  /// Crash-model switch for a local party.
  void set_alive(const PartyId& id, bool alive);

  /// Aggregate injected-fault counters across local transports.
  TcpFabricStats fabric_stats() const;

  bool quiescent() const;

  /// Extra quiescence condition consulted by settle() (shard lanes).
  void add_quiescence_probe(std::function<bool()> probe) {
    quiescence_probes_.push_back(std::move(probe));
  }

  /// The bounded executor pool (shared with coordinator shard lanes).
  std::shared_ptr<TaskPool> pool() { return pool_; }
  Reactor& reactor() { return reactor_; }

 private:
  Options options_;
  std::shared_ptr<PeerDirectory> directory_;
  Reactor reactor_;
  std::shared_ptr<TaskPool> pool_;
  ReactorClock clock_;
  std::vector<std::unique_ptr<ReactorTransport>> transports_;
  std::vector<std::function<bool()>> quiescence_probes_;
  ThreadedExecutor executor_;
  bool shutdown_done_ = false;
};

}  // namespace b2b::net
