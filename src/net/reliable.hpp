// Eventual once-only delivery on top of the lossy SimNetwork.
//
// §4.2: "It is assumed that the communications infrastructure provides
// eventual, once-only message delivery. If the underlying communications
// system does not support these semantics then the coordination middleware
// masks this and presents the assumed semantics." This is that masking
// layer: positive acknowledgement with retransmission gives *eventual*
// delivery across loss, crashes and healing partitions; per-sender
// sequence-number dedup gives *once-only* delivery despite duplication and
// retransmission. No ordering guarantee is provided (none is assumed).
//
// Unacknowledged outgoing messages and the dedup state model the "local
// persistent storage" of protocol messages the paper requires: they
// survive a simulated crash (the endpoint object persists; the node is
// merely unreachable while down) so retransmission resumes on recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "net/dedup.hpp"
#include "net/network.hpp"
#include "net/runtime.hpp"
#include "net/scheduler.hpp"

namespace b2b::net {

class ReliableEndpoint {
 public:
  struct Config {
    /// Delay before the first retransmission of an un-acked message.
    /// Subsequent attempts back off exponentially (`retransmit_backoff`)
    /// up to `retransmit_cap_micros`, with ±`retransmit_jitter` drawn
    /// from the endpoint's Rng so synchronised peers do not stay in
    /// lockstep (deterministic in simulation: the Rng is seeded).
    SimTime retransmit_interval_micros = 50'000;
    /// Multiplier applied per attempt; 1.0 restores the fixed interval.
    double retransmit_backoff = 2.0;
    /// Ceiling on the per-attempt delay.
    SimTime retransmit_cap_micros = 1'000'000;
    /// Jitter as a fraction of the delay (0.1 = ±10%).
    double retransmit_jitter = 0.1;
    /// Safety bound so a simulation with a permanently dead peer
    /// terminates. Far above anything a liveness test needs.
    std::size_t max_retransmits = 10'000;
  };

  struct Stats {
    std::uint64_t app_sent = 0;
    std::uint64_t app_delivered = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t duplicates_suppressed = 0;
    std::uint64_t acks_sent = 0;
    /// Datagram bytes put on / taken off the simulated wire.
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
  };

  using Handler =
      std::function<void(const PartyId& from, const Bytes& payload)>;

  /// Attaches itself to `network` under `self`. `rng` feeds retransmit
  /// jitter (the injected Rng seam); when null the endpoint owns a
  /// DeterministicRng derived from `self`, so seeded simulations stay
  /// reproducible either way.
  ReliableEndpoint(SimNetwork& network, PartyId self, Config config,
                   Rng* rng = nullptr);
  ReliableEndpoint(SimNetwork& network, PartyId self)
      : ReliableEndpoint(network, std::move(self), Config{}) {}

  /// Sink for application payloads (each delivered exactly once).
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Sink invoked once per message when `max_retransmits` is exhausted:
  /// the message will never be delivered and the peer should be treated
  /// as suspect by whoever owns this endpoint.
  using DeliveryFailureHandler = std::function<void(const PartyId& to)>;
  void set_delivery_failure_handler(DeliveryFailureHandler handler) {
    failure_handler_ = std::move(handler);
  }

  /// Queue `payload` for eventual once-only delivery to `to`.
  void send(const PartyId& to, Bytes payload);

  /// Messages queued but not yet acknowledged (any destination).
  std::size_t unacked() const;

  /// The deterministic part of the retransmission schedule: the delay
  /// armed after send attempt `attempt` (1-based), before jitter —
  /// initial interval, exponential backoff, cap. Exposed so tests can
  /// assert the schedule without replaying a simulation.
  static SimTime backoff_delay(const Config& config, std::size_t attempt);

  const Stats& stats() const { return stats_; }
  const PartyId& self() const { return self_; }
  SimNetwork& network() { return network_; }

 private:
  void on_datagram(const PartyId& from, const Bytes& datagram);
  void transmit(const PartyId& to, std::uint64_t seq);
  void schedule_retransmit(const PartyId& to, std::uint64_t seq,
                           std::size_t attempt);

  SimTime jittered_delay(std::size_t attempt);

  SimNetwork& network_;
  PartyId self_;
  Config config_;
  Handler handler_;
  DeliveryFailureHandler failure_handler_;
  Stats stats_;
  std::unique_ptr<Rng> owned_rng_;  // used when no Rng was injected
  Rng* rng_;

  struct Outgoing {
    Bytes payload;
    bool acked = false;
  };
  std::unordered_map<PartyId, std::uint64_t> next_seq_;
  std::map<std::pair<PartyId, std::uint64_t>, Outgoing> outgoing_;
  /// Per-sender once-only bookkeeping: watermark + out-of-order window
  /// (bounded memory; the full-set version grew with connection lifetime).
  std::unordered_map<PartyId, DedupWindow> delivered_;

 public:
  /// Dedup introspection for tests: the contiguous delivered prefix and
  /// the out-of-order window held for `peer`.
  const DedupWindow* dedup_window(const PartyId& peer) const {
    auto it = delivered_.find(peer);
    return it == delivered_.end() ? nullptr : &it->second;
  }
};

}  // namespace b2b::net
