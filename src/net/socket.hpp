// Thin RAII layer over POSIX TCP sockets.
//
// Just enough for the TCP runtime (tcp_runtime.hpp): a move-only fd
// owner with blocking read/write helpers that absorb EINTR and partial
// transfers, a listener with a self-pipe so a blocked accept() can be
// woken for shutdown, and a connect with a real timeout. No buffering,
// no framing, no event loop — framing and reliability live a layer up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace b2b::net {

/// Move-only owner of a file descriptor (socket or pipe end).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Close the descriptor (idempotent).
  void close();

  /// shutdown(SHUT_RDWR): any thread blocked reading or writing this
  /// socket returns immediately. Safe to call concurrently with I/O —
  /// unlike close(), the descriptor stays valid until close().
  void shutdown_both();

  /// Write all of `data`, absorbing EINTR and partial writes. Returns
  /// false on any error (including a peer reset). Never raises SIGPIPE.
  bool send_all(const void* data, std::size_t len);

  /// One read: >0 bytes read, 0 on orderly EOF, -1 on error/timeout.
  long recv_some(void* buf, std::size_t len);

  /// Read exactly `len` bytes. False on EOF, error or timeout.
  bool recv_exact(void* buf, std::size_t len);

  /// Disable Nagle (frames are small and latency-sensitive).
  void set_nodelay();

  /// O_NONBLOCK on/off. The reactor runtime runs every socket
  /// non-blocking; the thread-per-connection runtime keeps them blocking.
  void set_nonblocking(bool nonblocking);

  /// SO_RCVTIMEO, 0 clears. Used to bound the handshake phase.
  void set_recv_timeout(std::uint64_t micros);

  /// SO_LINGER with timeout 0: close() sends RST instead of FIN. A test
  /// instrument for mid-stream connection resets.
  void set_linger_reset();

 private:
  int fd_ = -1;
};

/// A listening TCP socket. `stop()` wakes a blocked `accept()` via a
/// self-pipe so acceptor threads shut down without closing the fd out
/// from under a concurrent syscall.
class Listener {
 public:
  Listener() = default;

  /// Bind + listen on host:port. Port 0 picks an ephemeral port; the
  /// actual one is reported by port(). Throws b2b::Error on failure.
  static Listener open(const std::string& host, std::uint16_t port);

  bool valid() const { return listen_.valid(); }
  std::uint16_t port() const { return port_; }

  /// Block until a connection arrives; returns an invalid Socket once
  /// stop() has been called. Transient accept errors are retried.
  Socket accept();

  /// Wake any blocked accept() and make all further accepts fail.
  void stop();

 private:
  Socket listen_;
  Socket wake_read_;
  Socket wake_write_;
  std::uint16_t port_ = 0;
};

/// Blocking connect with a timeout (non-blocking connect + poll under
/// the hood; the returned socket is back in blocking mode). Returns an
/// invalid Socket on failure or timeout.
Socket tcp_connect(const std::string& host, std::uint16_t port,
                   std::uint64_t timeout_micros);

/// Bind + listen and return the listening socket (no wake pipe). Port 0
/// picks an ephemeral port reported through `bound_port`. Throws
/// b2b::Error on failure. The reactor runtime registers this fd with
/// epoll directly instead of parking a thread in accept().
Socket tcp_listen(const std::string& host, std::uint16_t port,
                  std::uint16_t* bound_port);

/// Start a non-blocking connect and return the socket immediately.
/// `*in_progress` is true when the connect is still completing; the
/// caller waits for writability and then checks SO_ERROR. An invalid
/// Socket means resolution or socket creation failed outright.
Socket tcp_connect_start(const std::string& host, std::uint16_t port,
                         bool* in_progress);

}  // namespace b2b::net
